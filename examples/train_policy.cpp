// Records expert demonstrations with the CO planner, trains the IL network
// (section IV-A architecture, eqs. 2-3 objective) and reports the learning
// curve plus the dataset composition — the workflow behind the paper's
// "5171 samples, 300 epochs" setup, extended with cross-family training
// curricula.
//
// Usage: train_policy [--curriculum all|canonical|g1,g2,...] [--bev N]
//                     [epochs] [expert-episodes]
// Caches il_dataset-<fp>.bin / il_policy-<fp>.bin in the working directory,
// keyed by a fingerprint of the curriculum + recorder + network spec, so
// differently-trained policies never clobber each other.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "il/action.hpp"
#include "il/trainer.hpp"
#include "mission/mission.hpp"
#include "sim/curriculum.hpp"
#include "sim/expert.hpp"
#include "sim/policy_store.hpp"

namespace {

int parse_positive_int(const char* arg, const char* what) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(arg, &end, 10);
  if (errno != 0 || end == arg || *end != '\0' || v < 1 ||
      v > 1000000000L) {
    std::fprintf(stderr, "train_policy: bad %s \"%s\"\n", what, arg);
    std::exit(2);
  }
  return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icoil;

  // Let curricula reference mission templates ("mission:quiet_lot" cells):
  // the expander turns each mission leg into a recordable static scenario.
  mission::install_curriculum_expander();

  sim::PolicyStoreOptions options = sim::default_policy_options();
  std::string curriculum_spec = "canonical";
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const bool is_curriculum = std::strcmp(argv[i], "--curriculum") == 0;
    const bool is_bev = std::strcmp(argv[i], "--bev") == 0;
    if (is_curriculum || is_bev) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "train_policy: missing value for %s\n", argv[i]);
        return 2;
      }
      if (is_curriculum)
        curriculum_spec = argv[++i];
      else
        options.policy.bev_size = parse_positive_int(argv[++i], "--bev size");
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: train_policy [--curriculum all|canonical|g1,g2,...] "
          "[--bev N] [epochs] [expert-episodes]\n"
          "  curriculum cells may also name mission templates, e.g. "
          "mission:quiet_lot\n");
      return 0;
    } else if (positional == 0) {
      options.train.epochs = parse_positive_int(argv[i], "epoch count");
      ++positional;
    } else if (positional == 1) {
      options.expert.episodes = parse_positive_int(argv[i], "episode count");
      ++positional;
    } else {
      std::fprintf(stderr, "train_policy: unexpected argument \"%s\"\n", argv[i]);
      return 2;
    }
  }

  try {
    options.expert.curriculum = sim::Curriculum::parse(curriculum_spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "train_policy: %s\n", e.what());
    return 2;
  }

  std::printf("curriculum \"%s\" (%zu cells):\n",
              options.expert.curriculum.name.c_str(),
              options.expert.curriculum.size());
  const auto counts =
      options.expert.curriculum.episode_counts(options.expert.episodes);
  for (std::size_t i = 0; i < options.expert.curriculum.size(); ++i)
    std::printf("  %-28s weight %.1f -> %d episodes\n",
                options.expert.curriculum.entries[i].label().c_str(),
                options.expert.curriculum.entries[i].weight, counts[i]);

  // Record (or load) the demonstration dataset under its fingerprint key.
  const std::string dataset_path = sim::dataset_cache_path(options);
  il::Dataset dataset;
  if (dataset.load(dataset_path)) {
    std::printf("loaded %zu cached samples from %s\n", dataset.size(),
                dataset_path.c_str());
  } else {
    std::printf("recording %d expert episodes...\n", options.expert.episodes);
    sim::ExpertRecorder recorder(options.expert, options.policy);
    sim::ExpertStats stats;
    dataset = recorder.record(&stats);
    std::printf("recorded %zu samples (%zu forward-moving, %zu reverse-parking); "
                "%d/%d episodes parked\n",
                stats.samples, stats.forward_samples, stats.reverse_samples,
                stats.episodes_succeeded, stats.episodes_run);
    dataset.save(dataset_path);
  }

  // Dataset composition by scenario family (curriculum provenance).
  std::printf("\nsamples by scenario family:\n");
  for (const auto& [family, count] : dataset.family_histogram())
    std::printf("  %-20s %6zu (%4.1f%%)\n", family.c_str(), count,
                100.0 * static_cast<double>(count) /
                    static_cast<double>(dataset.size()));

  // Dataset composition (the paper reports forward/reverse counts).
  const auto hist = dataset.class_histogram(il::ActionDiscretizer::num_classes());
  std::printf("\nclass histogram (steer level x longitudinal bin):\n");
  for (int c = 0; c < il::ActionDiscretizer::num_classes(); ++c) {
    const auto cmd = il::ActionDiscretizer::to_command(c);
    std::printf("  class %2d  long=%d steer=%+.1f : %5zu (%4.1f%%)\n", c,
                il::ActionDiscretizer::long_bin(c), cmd.steer, hist[c],
                100.0 * static_cast<double>(hist[c]) /
                    static_cast<double>(dataset.size()));
  }

  // Train.
  il::IlPolicy policy(options.policy);
  std::printf("\ntraining %d epochs (batch %d, lr %.4f, %zu parameters)...\n",
              options.train.epochs, options.train.batch_size,
              options.train.learning_rate, policy.network().num_parameters());
  il::Trainer trainer(options.train);
  const il::TrainReport report =
      trainer.train(policy, dataset, [](const il::EpochStats& e) {
        std::printf("  epoch %3d: loss %.4f, train acc %.3f, val acc %.3f\n",
                    e.epoch, e.train_loss, e.train_accuracy, e.val_accuracy);
      });

  std::printf("\nfinal validation accuracy: %.3f (%zu train / %zu val samples)\n",
              report.final_val_accuracy, report.train_samples,
              report.val_samples);
  const std::string policy_path = sim::policy_cache_path(options);
  if (policy.save(policy_path))
    std::printf("saved policy to %s\n", policy_path.c_str());
  return 0;
}
