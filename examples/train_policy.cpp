// Records expert demonstrations with the CO planner, trains the IL network
// (section IV-A architecture, eqs. 2-3 objective) and reports the learning
// curve plus the dataset composition — the workflow behind the paper's
// "5171 samples, 300 epochs" setup.
//
// Usage: train_policy [epochs] [expert-episodes]
// Caches il_dataset.bin / il_policy.bin in the working directory.

#include <cstdio>
#include <cstdlib>

#include "il/action.hpp"
#include "il/trainer.hpp"
#include "sim/expert.hpp"
#include "sim/policy_store.hpp"

int main(int argc, char** argv) {
  using namespace icoil;

  sim::PolicyStoreOptions options = sim::default_policy_options();
  if (argc > 1) options.train.epochs = std::atoi(argv[1]);
  if (argc > 2) options.expert.episodes = std::atoi(argv[2]);

  // Record (or load) the demonstration dataset.
  il::Dataset dataset;
  if (dataset.load(options.dataset_cache_path)) {
    std::printf("loaded %zu cached samples from %s\n", dataset.size(),
                options.dataset_cache_path.c_str());
  } else {
    std::printf("recording %d expert episodes...\n", options.expert.episodes);
    sim::ExpertRecorder recorder(options.expert, options.policy);
    sim::ExpertStats stats;
    dataset = recorder.record(&stats);
    std::printf("recorded %zu samples (%zu forward-moving, %zu reverse-parking); "
                "%d/%d episodes parked\n",
                stats.samples, stats.forward_samples, stats.reverse_samples,
                stats.episodes_succeeded, stats.episodes_run);
    dataset.save(options.dataset_cache_path);
  }

  // Dataset composition (the paper reports forward/reverse counts).
  const auto hist = dataset.class_histogram(il::ActionDiscretizer::num_classes());
  std::printf("\nclass histogram (steer level x longitudinal bin):\n");
  for (int c = 0; c < il::ActionDiscretizer::num_classes(); ++c) {
    const auto cmd = il::ActionDiscretizer::to_command(c);
    std::printf("  class %2d  long=%d steer=%+.1f : %5zu (%4.1f%%)\n", c,
                il::ActionDiscretizer::long_bin(c), cmd.steer, hist[c],
                100.0 * static_cast<double>(hist[c]) /
                    static_cast<double>(dataset.size()));
  }

  // Train.
  il::IlPolicy policy(options.policy);
  std::printf("\ntraining %d epochs (batch %d, lr %.4f, %zu parameters)...\n",
              options.train.epochs, options.train.batch_size,
              options.train.learning_rate, policy.network().num_parameters());
  il::Trainer trainer(options.train);
  const il::TrainReport report =
      trainer.train(policy, dataset, [](const il::EpochStats& e) {
        std::printf("  epoch %3d: loss %.4f, train acc %.3f, val acc %.3f\n",
                    e.epoch, e.train_loss, e.train_accuracy, e.val_accuracy);
      });

  std::printf("\nfinal validation accuracy: %.3f (%zu train / %zu val samples)\n",
              report.final_val_accuracy, report.train_samples,
              report.val_samples);
  if (policy.save(options.cache_path))
    std::printf("saved policy to %s\n", options.cache_path.c_str());
  return 0;
}
