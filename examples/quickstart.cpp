// Quickstart: train (or load) the IL policy, build an easy-level scenario
// and park with the iCOIL controller, printing what happened.
//
// Run from the repository root (the policy cache is created in the working
// directory):   ./build/examples/quickstart

#include <cstdio>

#include "core/icoil_controller.hpp"
#include "sim/policy_store.hpp"
#include "sim/simulator.hpp"
#include "world/scenario.hpp"

int main() {
  using namespace icoil;

  // 1. A trained IL policy (cached across runs as il_policy.bin).
  const auto policy = sim::get_or_train_policy(sim::default_policy_options());

  // 2. An easy-level scenario: three static obstacles, random start.
  world::ScenarioOptions options;
  options.difficulty = world::Difficulty::kEasy;
  options.start_class = world::StartClass::kRandom;
  const world::Scenario scenario = world::make_scenario(options, /*seed=*/42);
  std::printf("scenario: %s level, start (%.1f, %.1f, %.2f rad), %zu obstacles\n",
              world::to_string(scenario.difficulty).c_str(),
              scenario.start_pose.x(), scenario.start_pose.y(),
              scenario.start_pose.heading, scenario.obstacles.size());

  // 3. The iCOIL controller: IL + CO + HSA mode switching.
  core::IcoilConfig config;
  core::IcoilController controller(config, *policy);

  // 4. Simulate one parking episode and report.
  sim::SimConfig sim_config;
  sim_config.record_trace = true;
  sim::Simulator simulator(sim_config);
  const sim::EpisodeResult result = simulator.run(scenario, controller, 42);

  std::printf("outcome: %s after %.1f s (%zu frames)\n",
              sim::to_string(result.outcome), result.park_time, result.frames);
  std::printf("mode switches: %d, IL frames: %.0f%%, closest approach: %.2f m\n",
              result.mode_switches, 100.0 * result.il_fraction,
              result.min_clearance);

  // Print a sparse trajectory so the maneuver is visible in the terminal.
  std::printf("\n   t     x      y    heading  v      mode  U_i    C_i\n");
  for (std::size_t i = 0; i < result.trace.size(); i += 40) {
    const sim::FrameRecord& f = result.trace[i];
    std::printf("%5.1f  %5.2f  %5.2f  %6.2f  %5.2f   %-4s %5.3f  %5.2f\n", f.t,
                f.state.x(), f.state.y(), f.state.heading(), f.state.speed,
                core::to_string(f.info.mode), f.info.uncertainty,
                f.info.complexity);
  }
  return result.success() ? 0 : 1;
}
