// Quickstart: train (or load) the IL policy, build an easy-level scenario
// and park with the iCOIL controller — driving the episode through the
// stepwise sim::Session API (open -> step -> result), which is also how a
// serving loop would interleave many episodes.
//
// Run from the repository root (the policy cache is created in the working
// directory):   ./build/examples/quickstart

#include <cstdio>

#include "core/controller_registry.hpp"
#include "sim/policy_store.hpp"
#include "sim/session.hpp"
#include "world/scenario.hpp"

int main() {
  using namespace icoil;

  // 1. A trained IL policy (cached across runs as il_policy-<hex>.bin).
  const auto policy = sim::get_or_train_policy(sim::default_policy_options());

  // 2. An easy-level scenario: three static obstacles, random start.
  world::ScenarioOptions options;
  options.difficulty = world::Difficulty::kEasy;
  options.start_class = world::StartClass::kRandom;
  const world::Scenario scenario = world::make_scenario(options, /*seed=*/42);
  std::printf("scenario: %s level, start (%.1f, %.1f, %.2f rad), %zu obstacles\n",
              world::to_string(scenario.difficulty).c_str(),
              scenario.start_pose.x(), scenario.start_pose.y(),
              scenario.start_pose.heading, scenario.obstacles.size());

  // 3. The iCOIL controller (IL + CO + HSA mode switching), resolved from
  //    the method registry — swap the key for "il", "co", "co-fast", ...
  const auto controller = core::ControllerRegistry::instance().build(
      "icoil", {.policy = policy.get()});

  // 4. Step one parking episode frame by frame. Simulator::run wraps this
  //    exact loop; owning it ourselves shows the telemetry live.
  sim::SimConfig sim_config;
  sim_config.record_trace = true;
  sim::Session session =
      sim::Session::open(scenario, *controller, /*seed=*/42, sim_config);
  std::printf("\n   t     x      y    heading  v      mode  U_i    C_i\n");
  for (;;) {
    // Capture the pre-step state: after step() the controller's last_frame
    // describes the act() that ran on THIS state, so the pair matches.
    const double t = session.sim_time();
    const std::size_t frame = session.frame();
    const vehicle::State state = session.state();
    if (session.step() == sim::Session::Status::kDone) break;
    if (frame % 40 != 0) continue;
    const core::FrameInfo& f = controller->last_frame();
    std::printf("%5.1f  %5.2f  %5.2f  %6.2f  %5.2f   %-4s %5.3f  %5.2f\n", t,
                state.x(), state.y(), state.heading(), state.speed,
                core::to_string(f.mode), f.uncertainty, f.complexity);
  }

  // 5. Report the outcome.
  const sim::EpisodeResult& result = session.result();
  std::printf("\noutcome: %s after %.1f s (%zu frames)\n",
              sim::to_string(result.outcome), result.park_time, result.frames);
  std::printf("mode switches: %d, IL frames: %.0f%%, closest approach: %.2f m\n",
              result.mode_switches, 100.0 * result.il_fraction,
              result.min_clearance);
  return result.success() ? 0 : 1;
}
