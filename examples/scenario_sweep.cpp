// Runs the three controllers (iCOIL, pure IL, pure CO) across the paper's
// difficulty levels with a handful of seeds each and prints a compact
// comparison — a smaller, faster version of the Table II harness meant for
// interactive use.
//
// Usage: scenario_sweep [episodes-per-cell]   (default 10)

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/co_controller.hpp"
#include "core/icoil_controller.hpp"
#include "core/il_controller.hpp"
#include "mathkit/table.hpp"
#include "sim/evaluator.hpp"
#include "sim/policy_store.hpp"

int main(int argc, char** argv) {
  using namespace icoil;
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 10;

  const auto policy = sim::get_or_train_policy(sim::default_policy_options());

  sim::EvalConfig eval_config;
  eval_config.episodes = episodes;
  sim::Evaluator evaluator(eval_config);

  math::TextTable table({"level", "method", "success", "collisions", "timeouts",
                         "time mean [s]", "IL frames"});

  for (auto level : {world::Difficulty::kEasy, world::Difficulty::kNormal,
                     world::Difficulty::kHard}) {
    world::ScenarioOptions options;
    options.difficulty = level;

    const std::pair<const char*, core::ControllerFactory> methods[] = {
        {"iCOIL",
         [&] {
           return std::make_unique<core::IcoilController>(core::IcoilConfig{},
                                                          *policy);
         }},
        {"IL", [&] { return std::make_unique<core::IlController>(*policy); }},
        {"CO",
         [&] {
           return std::make_unique<core::CoController>(co::CoPlannerConfig{},
                                                       vehicle::VehicleParams{});
         }},
    };
    for (const auto& [name, factory] : methods) {
      const sim::Aggregate agg = evaluator.evaluate(factory, options, name);
      table.add_row(
          {world::to_string(level), name,
           math::format_double(100.0 * agg.success_ratio(), 0) + "%",
           std::to_string(agg.collisions), std::to_string(agg.timeouts),
           math::format_double(agg.park_time.mean(), 1),
           math::format_double(100.0 * agg.il_fraction.mean(), 0) + "%"});
    }
  }

  std::printf("\nScenario sweep (%d episodes per cell)\n\n", episodes);
  table.print(std::cout);
  return 0;
}
