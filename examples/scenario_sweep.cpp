// Runs the three controllers (iCOIL, pure IL, pure CO) across the paper's
// difficulty levels with a handful of seeds each and prints a compact
// comparison — a smaller, faster version of the Table II harness meant for
// interactive use.
//
// Usage: scenario_sweep [episodes-per-cell]   (default 10)

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/controller_registry.hpp"
#include "mathkit/table.hpp"
#include "sim/evaluator.hpp"
#include "sim/policy_store.hpp"

int main(int argc, char** argv) {
  using namespace icoil;
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 10;

  const auto policy = sim::get_or_train_policy(sim::default_policy_options());

  sim::EvalConfig eval_config;
  eval_config.episodes = episodes;
  sim::Evaluator evaluator(eval_config);

  math::TextTable table({"level", "method", "success", "collisions", "timeouts",
                         "time mean [s]", "IL frames"});

  // The standard methods come from the controller registry; the policy is
  // shared (each factory call clones it into its controller).
  const auto& registry = core::ControllerRegistry::instance();
  const core::ControllerBuildArgs build_args{.policy = policy.get()};

  for (auto level : {world::Difficulty::kEasy, world::Difficulty::kNormal,
                     world::Difficulty::kHard}) {
    world::ScenarioOptions options;
    options.difficulty = level;

    for (const char* key : {"icoil", "il", "co"}) {
      const char* name = registry.at(key).display_name.c_str();
      const sim::Aggregate agg =
          evaluator.evaluate(registry.factory(key, build_args), options, name);
      table.add_row(
          {world::to_string(level), name,
           math::format_double(100.0 * agg.success_ratio(), 0) + "%",
           std::to_string(agg.collisions), std::to_string(agg.timeouts),
           math::format_double(agg.park_time.mean(), 1),
           math::format_double(100.0 * agg.il_fraction.mean(), 0) + "%"});
    }
  }

  std::printf("\nScenario sweep (%d episodes per cell)\n\n", episodes);
  table.print(std::cout);
  return 0;
}
