// Dumps a full per-frame trace of one parking episode to CSV for external
// plotting: pose, speed, working mode, HSA series and control channels.
//
// Usage: episode_trace [seed] [level: easy|normal|hard] [out.csv]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/controller_registry.hpp"
#include "sim/policy_store.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace icoil;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 911;
  world::Difficulty level = world::Difficulty::kEasy;
  if (argc > 2) {
    if (std::strcmp(argv[2], "normal") == 0) level = world::Difficulty::kNormal;
    if (std::strcmp(argv[2], "hard") == 0) level = world::Difficulty::kHard;
  }
  const char* out_path = argc > 3 ? argv[3] : "episode_trace.csv";

  const auto policy = sim::get_or_train_policy(sim::default_policy_options());

  world::ScenarioOptions options;
  options.difficulty = level;
  const world::Scenario scenario = world::make_scenario(options, seed);

  const auto controller = core::ControllerRegistry::instance().build(
      "icoil", {.policy = policy.get()});
  sim::SimConfig sim_config;
  sim_config.record_trace = true;
  const sim::EpisodeResult result =
      sim::Simulator(sim_config).run(scenario, *controller, seed);

  std::ofstream csv(out_path);
  if (!csv) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  csv << "t,x,y,heading,speed,mode,entropy,uncertainty,complexity,ratio,"
         "throttle,brake,steer,reverse,solve_ms\n";
  for (const sim::FrameRecord& f : result.trace) {
    csv << f.t << ',' << f.state.x() << ',' << f.state.y() << ','
        << f.state.heading() << ',' << f.state.speed << ','
        << core::to_string(f.info.mode) << ',' << f.info.entropy << ','
        << f.info.uncertainty << ',' << f.info.complexity << ','
        << f.info.ratio << ',' << f.info.command.throttle << ','
        << f.info.command.brake << ',' << f.info.command.steer << ','
        << (f.info.command.reverse ? 1 : 0) << ',' << f.info.solve_ms << '\n';
  }

  std::printf("%s level, seed %llu: %s in %.1f s (%zu frames, %d mode "
              "switches) -> %s\n",
              world::to_string(level).c_str(),
              static_cast<unsigned long long>(seed),
              sim::to_string(result.outcome), result.park_time,
              result.frames, result.mode_switches, out_path);
  return result.success() ? 0 : 1;
}
