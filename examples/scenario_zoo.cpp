// Tours the scenario-generator registry: lists every registered family,
// then batch-evaluates the pure-CO controller across all (generator x
// difficulty) cells through the ScenarioSuite API. The CO baseline needs no
// trained policy, so the zoo runs in seconds and is the quickest way to see
// a new generator behaving end-to-end.
//
// Usage: scenario_zoo [episodes-per-cell]   (default 4)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/co_controller.hpp"
#include "mathkit/table.hpp"
#include "sim/evaluator.hpp"
#include "world/generators/registry.hpp"

int main(int argc, char** argv) {
  using namespace icoil;
  const int episodes = argc > 1 ? std::max(1, std::atoi(argv[1])) : 4;

  const auto& registry = world::GeneratorRegistry::instance();
  std::printf("Registered scenario generators (%zu):\n", registry.size());
  for (const std::string& name : registry.names())
    std::printf("  %-16s %s\n", name.c_str(),
                registry.find(name)->description().c_str());

  sim::ScenarioSuite suite = sim::ScenarioSuite::cross(
      registry.names(),
      {world::Difficulty::kEasy, world::Difficulty::kNormal},
      {world::StartClass::kRandom});
  suite.name = "zoo";

  sim::EvalConfig eval_config;
  eval_config.episodes = episodes;
  sim::Evaluator evaluator(eval_config);

  const auto results = evaluator.evaluate_suite(
      [] {
        return std::make_unique<core::CoController>(co::CoPlannerConfig{},
                                                    vehicle::VehicleParams{});
      },
      suite, "CO");

  math::TextTable table({"generator", "difficulty", "success", "collisions",
                         "timeouts", "time mean [s]", "clearance [m]"});
  for (const sim::SuiteCellResult& r : results) {
    const sim::Aggregate& agg = r.aggregate;
    table.add_row({r.cell.generator, world::to_string(r.cell.difficulty),
                   math::format_double(100.0 * agg.success_ratio(), 0) + "%",
                   std::to_string(agg.collisions), std::to_string(agg.timeouts),
                   math::format_double(agg.park_time.mean(), 1),
                   math::format_double(agg.min_clearance.mean(), 2)});
  }

  std::printf("\nScenario zoo — CO baseline, %d episodes per cell\n\n", episodes);
  table.print(std::cout);
  return 0;
}
