// Tours the scenario-generator registry: lists every registered family,
// then batch-evaluates the pure-CO controller across all (generator x
// difficulty) cells through the ScenarioSuite API. The CO baseline needs no
// trained policy, so the zoo runs in seconds and is the quickest way to see
// a new generator behaving end-to-end. (For reports/baselines over the same
// suite, use `bench_suite zoo`.)
//
// Usage: scenario_zoo [episodes-per-cell] [cell-wall-budget-seconds]
// (default 4 episodes, no budget). With a budget, episodes a cell cannot
// finish inside its wall-clock allowance come back as "budget_exceeded".

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/controller_registry.hpp"
#include "mathkit/table.hpp"
#include "sim/evaluator.hpp"
#include "world/generators/registry.hpp"

int main(int argc, char** argv) {
  using namespace icoil;
  int episodes = 4;
  if (argc > 1) {
    char* end = nullptr;
    episodes = static_cast<int>(std::strtol(argv[1], &end, 10));
    if (end == argv[1] || *end != '\0' || episodes < 1) {
      std::fprintf(stderr,
                   "scenario_zoo: \"%s\" is not an episode count "
                   "(usage: scenario_zoo [episodes] [wall-budget-s])\n",
                   argv[1]);
      return 2;
    }
  }
  double wall_budget = 0.0;
  if (argc > 2) {
    // Strict parse: a typo must not silently run without a budget.
    char* end = nullptr;
    wall_budget = std::strtod(argv[2], &end);
    if (end == argv[2] || *end != '\0' || wall_budget < 0.0) {
      std::fprintf(stderr,
                   "scenario_zoo: \"%s\" is not a budget in seconds "
                   "(usage: scenario_zoo [episodes] [wall-budget-s])\n",
                   argv[2]);
      return 2;
    }
  }

  const auto& registry = world::GeneratorRegistry::instance();
  std::printf("Registered scenario generators (%zu):\n", registry.size());
  for (const std::string& name : registry.names())
    std::printf("  %-16s %s\n", name.c_str(),
                registry.find(name)->description().c_str());

  sim::ScenarioSuite suite = sim::ScenarioSuite::cross(
      registry.names(),
      {world::Difficulty::kEasy, world::Difficulty::kNormal},
      {world::StartClass::kRandom});
  suite.name = "zoo";
  if (wall_budget > 0.0)
    for (sim::SuiteCell& cell : suite.cells) cell.wall_budget = wall_budget;

  sim::EvalConfig eval_config;
  eval_config.episodes = episodes;
  sim::Evaluator evaluator(eval_config);

  const auto results = evaluator.evaluate_suite(
      core::ControllerRegistry::instance().factory("co"), suite, "CO");

  math::TextTable table({"generator", "difficulty", "success", "collisions",
                         "timeouts", "over budget", "time mean [s]",
                         "clearance [m]"});
  for (const sim::SuiteCellResult& r : results) {
    const sim::Aggregate& agg = r.aggregate;
    table.add_row({r.cell.generator, world::to_string(r.cell.difficulty),
                   math::format_double(100.0 * agg.success_ratio(), 0) + "%",
                   std::to_string(agg.collisions), std::to_string(agg.timeouts),
                   std::to_string(agg.budget_exceeded),
                   math::format_double(agg.park_time.mean(), 1),
                   math::format_double(agg.min_clearance.mean(), 2)});
  }

  std::printf("\nScenario zoo — CO baseline, %d episodes per cell\n\n", episodes);
  table.print(std::cout);
  return 0;
}
