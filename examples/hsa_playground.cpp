// Interactive-style exploration of the HSA model (eqs. 7-8): shows how the
// scenario uncertainty and complexity indicators respond to synthetic
// situations, and where the eq. (1) switching rule lands for different
// lambda values. Useful when tuning lambda for a new map.

#include <cstdio>

#include "core/hsa.hpp"
#include "mathkit/table.hpp"

#include <iostream>

int main() {
  using namespace icoil;

  core::HsaConfig config;
  std::printf("HSA playground — window T=%d, H=%d, Na=%d, D0=%.1f m, "
              "C_base=%.0f\n\n",
              config.window, config.horizon, config.action_dim, config.d0,
              core::Hsa(config).complexity_base());

  struct Situation {
    const char* name;
    double entropy;                        // IL softmax entropy per frame
    std::vector<double> obstacle_distances;  // D_{i,k} per frame
  };
  const Situation situations[] = {
      {"open lot, confident IL", 0.10, {}},
      {"open lot, confused IL", 2.00, {}},
      {"one obstacle 5 m away, confident", 0.10, {5.0}},
      {"one obstacle at D0, confident", 0.10, {1.2}},
      {"bay entry: two parked cars close, confident", 0.15, {1.3, 1.4}},
      {"bay entry, confused IL", 1.50, {1.3, 1.4}},
      {"crowd of five obstacles, moderate", 0.80, {1.0, 1.5, 2.0, 1.2, 3.0}},
  };

  math::TextTable table({"situation", "U_i", "C_i (norm)", "U/C",
                         "mode @ l=0.3", "mode @ l=1.0", "mode @ l=3.0"});
  for (const Situation& s : situations) {
    core::Hsa hsa(config);
    for (int i = 0; i < config.window; ++i)
      hsa.push(s.entropy, s.obstacle_distances);
    const double ratio = hsa.ratio();
    auto mode_at = [&](double lambda) {
      return ratio > lambda ? "CO" : "IL";
    };
    table.add_row({s.name, math::format_double(hsa.uncertainty(), 3),
                   math::format_double(hsa.normalized_complexity(), 3),
                   math::format_double(ratio, 3), mode_at(0.3), mode_at(1.0),
                   mode_at(3.0)});
  }
  table.print(std::cout);

  std::printf("\nreading: high entropy in open space -> CO (reliability); "
              "low entropy near dense obstacles -> IL (efficiency), matching "
              "the paper's switch from CO to IL at the bay.\n");
  return 0;
}
