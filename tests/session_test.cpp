// Coverage for the controller/session API redesign: the string-keyed
// core::ControllerRegistry, the stepwise sim::Session (bit-for-bit equal to
// Simulator::run, which is a thin loop over it), per-frame budget contexts
// (FrameContext deadlines degrade CO frames instead of crashing them), and
// the pool-level abort token whose partial RunReport round-trips with the
// aborted flag.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <stdexcept>

#include "core/controller_registry.hpp"
#include "core/frame_context.hpp"
#include "sim/evaluator.hpp"
#include "sim/report.hpp"
#include "sim/session.hpp"

namespace icoil {
namespace {

// ---------------------------------------------------- ControllerRegistry

TEST(ControllerRegistryTest, BuiltInMethodsRegistered) {
  const auto& registry = core::ControllerRegistry::instance();
  const std::vector<std::string> keys = registry.keys();
  for (const char* expected : {"icoil", "icoil-safe", "il", "co", "co-fast"})
    EXPECT_NE(registry.find(expected), nullptr) << expected;
  // keys() is sorted (stable output for --list-methods and error messages).
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_GE(keys.size(), 5u);
  // Display names are the historical table labels.
  EXPECT_EQ(registry.at("icoil").display_name, "iCOIL");
  EXPECT_EQ(registry.at("co").display_name, "CO (ref)");
  EXPECT_EQ(registry.at("il").display_name, "IL [2]");
}

TEST(ControllerRegistryTest, UnknownKeyNamesTheKnownKeys) {
  const auto& registry = core::ControllerRegistry::instance();
  try {
    registry.at("warp-drive");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp-drive"), std::string::npos) << what;
    EXPECT_NE(what.find("icoil"), std::string::npos) << what;
    EXPECT_NE(what.find("co"), std::string::npos) << what;
  }
  EXPECT_THROW(registry.factory("warp-drive"), std::invalid_argument);
  EXPECT_THROW(registry.build("warp-drive"), std::invalid_argument);
}

TEST(ControllerRegistryTest, PolicyRequirementValidatedUpFront) {
  const auto& registry = core::ControllerRegistry::instance();
  EXPECT_TRUE(registry.at("icoil").needs_policy);
  EXPECT_TRUE(registry.at("il").needs_policy);
  EXPECT_FALSE(registry.at("co").needs_policy);
  // factory() must throw NOW, not when a pool worker later invokes it.
  EXPECT_THROW(registry.factory("icoil"), std::invalid_argument);
  EXPECT_THROW(registry.build("il"), std::invalid_argument);
}

TEST(ControllerRegistryTest, BuildsWorkingControllers) {
  const auto& registry = core::ControllerRegistry::instance();
  const auto co = registry.build("co");
  ASSERT_NE(co, nullptr);
  EXPECT_EQ(co->name(), "CO");
  const auto co_fast = registry.build("co-fast");
  ASSERT_NE(co_fast, nullptr);
  // The factory form produces fresh instances per call.
  const core::ControllerFactory factory = registry.factory("co");
  EXPECT_NE(factory().get(), factory().get());
}

// ------------------------------------------------------------- Session

world::Scenario easy_scenario(std::uint64_t seed = 500) {
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  return world::make_scenario(opt, seed);
}

void expect_bit_identical(const sim::EpisodeResult& a,
                          const sim::EpisodeResult& b) {
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.mode_switches, b.mode_switches);
  EXPECT_EQ(a.deadline_hits, b.deadline_hits);
  // Bit-identical, not approximately equal:
  EXPECT_EQ(a.park_time, b.park_time);
  EXPECT_EQ(a.min_clearance, b.min_clearance);
  EXPECT_EQ(a.il_fraction, b.il_fraction);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].t, b.trace[i].t) << i;
    EXPECT_EQ(a.trace[i].state.x(), b.trace[i].state.x()) << i;
    EXPECT_EQ(a.trace[i].state.speed, b.trace[i].state.speed) << i;
    EXPECT_EQ(a.trace[i].info.command.steer, b.trace[i].info.command.steer)
        << i;
  }
}

TEST(SessionTest, StepLoopBitIdenticalToSimulatorRun) {
  // Manually stepping a Session must reproduce Simulator::run exactly —
  // the whole-episode API is a thin loop over the stepwise one.
  const world::Scenario scenario = easy_scenario(500);
  sim::SimConfig config;
  config.record_trace = true;

  const auto& registry = core::ControllerRegistry::instance();
  const auto run_controller = registry.build("co");
  const sim::EpisodeResult via_run =
      sim::Simulator(config).run(scenario, *run_controller, 500);

  const auto step_controller = registry.build("co");
  sim::Session session(scenario, *step_controller, 500, config);
  std::size_t steps = 0;
  while (session.step() == sim::Session::Status::kRunning) ++steps;
  ASSERT_TRUE(session.done());

  expect_bit_identical(via_run, session.result());
  EXPECT_EQ(session.result().outcome, sim::Outcome::kSuccess);
  // Each kRunning return was one frame; the terminal step added the last.
  EXPECT_EQ(session.result().frames, session.frame());
  EXPECT_GE(steps + 1, session.result().frames);
}

TEST(SessionTest, TimeoutAndPostDoneStepsAreStable) {
  const auto controller = core::ControllerRegistry::instance().build("co");
  world::Scenario sc = easy_scenario();
  sc.time_limit = 1.0;  // 20 frames: far too short to park
  sim::Session session(sc, *controller, 7);
  while (session.step() == sim::Session::Status::kRunning) {
  }
  EXPECT_EQ(session.result().outcome, sim::Outcome::kTimeout);
  EXPECT_DOUBLE_EQ(session.result().park_time, 1.0);
  // Stepping a finished session is a no-op, not a crash or a new frame.
  const std::size_t frames = session.result().frames;
  EXPECT_EQ(session.step(), sim::Session::Status::kDone);
  EXPECT_EQ(session.result().frames, frames);
}

TEST(SessionTest, CancelTokenEndsEpisodeAsBudgetExceeded) {
  const auto controller = core::ControllerRegistry::instance().build("co");
  core::CancelToken cancel;
  sim::Session session(easy_scenario(), *controller, 7, {}, &cancel);
  EXPECT_EQ(session.step(), sim::Session::Status::kRunning);
  cancel.cancel();
  EXPECT_EQ(session.step(), sim::Session::Status::kDone);
  EXPECT_EQ(session.result().outcome, sim::Outcome::kBudgetExceeded);
  EXPECT_EQ(session.result().frames, 1u);
}

// ------------------------------------------------- per-frame budgets

TEST(FrameContextTest, UnlimitedContextNeverExpires) {
  math::Rng rng(1);
  core::FrameContext ctx(rng);
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.expired());
  EXPECT_FALSE(ctx.deadline_hit());
  EXPECT_EQ(&ctx.rng(), &rng);
}

TEST(FrameContextTest, TinyDeadlineTripsAndSticks) {
  math::Rng rng(1);
  core::FrameContext ctx(rng, nullptr, /*deadline_ms=*/1e-6);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.expired());
  EXPECT_TRUE(ctx.deadline_hit());
}

TEST(FrameContextTest, CancelExpiresWithoutCountingAsDeadlineHit) {
  math::Rng rng(1);
  core::CancelToken cancel;
  cancel.cancel();
  core::FrameContext ctx(rng, &cancel);
  EXPECT_TRUE(ctx.expired());
  EXPECT_FALSE(ctx.deadline_hit());  // the episode died, not the frame budget
}

TEST(FrameDeadlineTest, CoActReturnsBestSoFarUnderExpiredDeadline) {
  // A frame whose budget is already gone must still produce a command (the
  // SQP loop always runs one round) and must flag the degradation.
  const auto controller = core::ControllerRegistry::instance().build("co");
  const world::Scenario sc = easy_scenario();
  controller->reset(sc);
  world::World world(sc);
  vehicle::State state;
  state.pose = sc.start_pose;
  math::Rng rng(1);
  core::FrameContext ctx(rng, nullptr, /*deadline_ms=*/1e-6);
  const vehicle::Command cmd = controller->act(world, state, ctx);
  EXPECT_TRUE(ctx.deadline_hit());
  EXPECT_TRUE(controller->last_frame().deadline_hit);
  // Best-so-far, not a refusal: the single SQP round still tracks the
  // reference, so the command is a real driving command.
  (void)cmd;
}

TEST(FrameDeadlineTest, SessionCountsDeadlineHitsAndFinishes) {
  const auto controller = core::ControllerRegistry::instance().build("co");
  world::Scenario sc = easy_scenario();
  sc.time_limit = 2.0;
  sim::SimConfig config;
  config.frame_deadline_ms = 1e-6;  // every CO frame degrades
  sim::Session session(sc, *controller, 11, config);
  while (session.step() == sim::Session::Status::kRunning) {
  }
  EXPECT_GT(session.result().deadline_hits, 0);
  EXPECT_EQ(session.result().deadline_hits,
            static_cast<int>(session.result().frames));
}

// ------------------------------------- pool-level abort + partial report

TEST(CancelTokenTest, LinkedParentPropagates) {
  core::CancelToken parent;
  core::CancelToken child;
  child.link_parent(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.cancel();
  EXPECT_TRUE(child.cancelled());
}

/// Always emits a fixed command — cheap deterministic episodes.
class FixedController final : public core::Controller {
 public:
  explicit FixedController(vehicle::Command cmd) : cmd_(cmd) {}
  std::string name() const override { return "fixed"; }
  void reset(const world::Scenario&) override {}
  using core::Controller::act;
  vehicle::Command act(const world::World&, const vehicle::State&,
                       core::FrameContext&) override {
    frame_.command = cmd_;
    frame_.mode = core::Mode::kCo;
    return cmd_;
  }
  const core::FrameInfo& last_frame() const override { return frame_; }

 private:
  vehicle::Command cmd_;
  core::FrameInfo frame_;
};

TEST(AbortTokenTest, PartialReportRoundTripsWithAbortedFlag) {
  // The SIGINT path minus the signal: a pre-tripped abort token drains the
  // suite (episodes come back budget_exceeded), and the partial report
  // still writes, loads, and carries meta.aborted.
  core::CancelToken abort;
  abort.cancel();

  sim::EvalConfig cfg;
  cfg.episodes = 3;
  cfg.abort = &abort;
  sim::ScenarioSuite suite;
  sim::SuiteCell cell;
  cell.time_limit = 30.0;
  suite.add(cell);

  const auto detailed = sim::Evaluator(cfg).evaluate_suite_detailed(
      [] {
        return std::make_unique<FixedController>(vehicle::Command::full_stop());
      },
      suite);
  ASSERT_EQ(detailed.size(), 1u);
  const auto results = sim::aggregate_suite(detailed, "fixed");
  EXPECT_EQ(results[0].aggregate.budget_exceeded, 3);

  sim::RunReport report;
  report.meta.suite = "abort_test";
  report.meta.aborted = true;
  report.add_cells(results);

  const std::string path =
      (std::filesystem::temp_directory_path() / "icoil_aborted_report.json")
          .string();
  std::string error;
  ASSERT_TRUE(report.save(path, &error)) << error;
  sim::RunReport loaded;
  ASSERT_TRUE(sim::RunReport::load(path, &loaded, &error)) << error;
  std::filesystem::remove(path);

  EXPECT_TRUE(loaded.meta.aborted);
  ASSERT_EQ(loaded.cells.size(), 1u);
  EXPECT_EQ(loaded.cells[0].budget_exceeded, 3);
  EXPECT_EQ(loaded.cells[0].episodes, 3);
  // A non-aborted report loads back non-aborted (the flag is real data,
  // not a loader default).
  report.meta.aborted = false;
  ASSERT_TRUE(sim::RunReport::parse(report.to_json(), &loaded, &error))
      << error;
  EXPECT_FALSE(loaded.meta.aborted);
}

TEST(ServeStatsTest, RoundTripsThroughJson) {
  sim::RunReport report;
  report.meta.suite = "serve";
  sim::ServeStats stats;
  stats.method = "co";
  stats.sessions = 8;
  stats.threads = 4;
  stats.offered = 8;
  stats.admitted = 6;
  stats.queued = 2;
  stats.shed = 2;
  stats.frames = 1234;
  stats.wall_seconds = 2.5;
  stats.frames_per_second = 493.6;
  stats.frame = {1222, 13.0, 11.25, 30.0, 48.5, 97.0};
  stats.queue = {6, 0.4, 0.0, 1.5, 2.25, 2.5};
  stats.warmup = {12, 40.0, 38.0, 55.0, 60.0, 61.5};
  stats.warmup_frames_per_session = 2;
  stats.frame_deadline_ms = 50.0;
  stats.deadline_hits = 17;
  sim::ServeStats::Tuning tuning;
  tuning.min_ms = 5.0;
  tuning.max_ms = 200.0;
  tuning.headroom = 1.5;
  tuning.window = 64;
  tuning.deadline_min_ms = 18.5;
  tuning.deadline_mean_ms = 42.0;
  tuning.deadline_max_ms = 200.0;
  stats.tuning = tuning;
  sim::ServeLoadLevel level;
  level.offered = 8;
  level.admitted = 6;
  level.shed = 2;
  level.frames = 1234;
  level.wall_seconds = 2.5;
  level.frames_per_second = 493.6;
  level.frame_p50_ms = 11.25;
  level.frame_p99_ms = 48.5;
  level.queue_p99_ms = 2.25;
  level.deadline_hits = 17;
  level.knee = true;
  stats.levels = {level};
  stats.knee_offered = 8;
  report.serve = stats;

  sim::RunReport loaded;
  std::string error;
  ASSERT_TRUE(sim::RunReport::parse(report.to_json(), &loaded, &error))
      << error;
  ASSERT_TRUE(loaded.serve.has_value());
  const sim::ServeStats& s = *loaded.serve;
  EXPECT_EQ(s.version, sim::kServeStatsVersion);
  EXPECT_EQ(s.method, "co");
  EXPECT_EQ(s.sessions, 8);
  EXPECT_EQ(s.threads, 4);
  EXPECT_EQ(s.offered, 8);
  EXPECT_EQ(s.admitted, 6);
  EXPECT_EQ(s.queued, 2);
  EXPECT_EQ(s.shed, 2);
  EXPECT_EQ(s.frames, 1234u);
  EXPECT_DOUBLE_EQ(s.wall_seconds, 2.5);
  EXPECT_DOUBLE_EQ(s.frames_per_second, 493.6);
  EXPECT_EQ(s.frame.count, 1222u);
  EXPECT_DOUBLE_EQ(s.frame.mean_ms, 13.0);
  EXPECT_DOUBLE_EQ(s.frame.p50_ms, 11.25);
  EXPECT_DOUBLE_EQ(s.frame.p90_ms, 30.0);
  EXPECT_DOUBLE_EQ(s.frame.p99_ms, 48.5);
  EXPECT_DOUBLE_EQ(s.frame.max_ms, 97.0);
  EXPECT_EQ(s.queue.count, 6u);
  EXPECT_DOUBLE_EQ(s.queue.p99_ms, 2.25);
  EXPECT_EQ(s.warmup.count, 12u);
  EXPECT_DOUBLE_EQ(s.warmup.p50_ms, 38.0);
  EXPECT_EQ(s.warmup_frames_per_session, 2);
  EXPECT_DOUBLE_EQ(s.frame_deadline_ms, 50.0);
  EXPECT_EQ(s.deadline_hits, 17);
  ASSERT_TRUE(s.tuning.has_value());
  EXPECT_DOUBLE_EQ(s.tuning->min_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.tuning->max_ms, 200.0);
  EXPECT_DOUBLE_EQ(s.tuning->headroom, 1.5);
  EXPECT_EQ(s.tuning->window, 64);
  EXPECT_DOUBLE_EQ(s.tuning->deadline_min_ms, 18.5);
  EXPECT_DOUBLE_EQ(s.tuning->deadline_mean_ms, 42.0);
  EXPECT_DOUBLE_EQ(s.tuning->deadline_max_ms, 200.0);
  ASSERT_EQ(s.levels.size(), 1u);
  EXPECT_EQ(s.levels[0].offered, 8);
  EXPECT_EQ(s.levels[0].admitted, 6);
  EXPECT_EQ(s.levels[0].shed, 2);
  EXPECT_EQ(s.levels[0].frames, 1234u);
  EXPECT_DOUBLE_EQ(s.levels[0].frames_per_second, 493.6);
  EXPECT_DOUBLE_EQ(s.levels[0].frame_p50_ms, 11.25);
  EXPECT_DOUBLE_EQ(s.levels[0].frame_p99_ms, 48.5);
  EXPECT_DOUBLE_EQ(s.levels[0].queue_p99_ms, 2.25);
  EXPECT_EQ(s.levels[0].deadline_hits, 17);
  EXPECT_TRUE(s.levels[0].knee);
  EXPECT_EQ(s.knee_offered, 8);

  // Reports without a serve block load with none, and a serve block
  // written without batching loads with no batching.
  sim::RunReport plain;
  ASSERT_TRUE(sim::RunReport::parse(sim::RunReport{}.to_json(), &plain, &error))
      << error;
  EXPECT_FALSE(plain.serve.has_value());
  EXPECT_FALSE(loaded.serve->batching.has_value());
}

TEST(ServeStatsTest, LoadsLegacyV1ServeBlock) {
  // A serve block written before kServeStatsVersion existed: flat latency
  // scalars, no admission counters, no version field. The loader must map
  // the legacy scalars into the frame summary and default the admission
  // counters to "everyone admitted".
  const std::string json = R"({
    "schema_version": 1,
    "meta": {"suite": "serve"},
    "serve": {
      "method": "co",
      "sessions": 8,
      "threads": 4,
      "frames": "1234",
      "wall_seconds": 2.5,
      "frames_per_second": 493.6,
      "frame_p50_ms": 11.25,
      "frame_p99_ms": 48.5,
      "frame_max_ms": 97.0,
      "frame_deadline_ms": 50.0,
      "deadline_hits": 17
    },
    "cells": []
  })";
  sim::RunReport loaded;
  std::string error;
  ASSERT_TRUE(sim::RunReport::parse(json, &loaded, &error)) << error;
  ASSERT_TRUE(loaded.serve.has_value());
  const sim::ServeStats& s = *loaded.serve;
  EXPECT_EQ(s.version, 1);
  EXPECT_EQ(s.method, "co");
  EXPECT_EQ(s.frames, 1234u);
  EXPECT_DOUBLE_EQ(s.frame.p50_ms, 11.25);
  EXPECT_DOUBLE_EQ(s.frame.p99_ms, 48.5);
  EXPECT_DOUBLE_EQ(s.frame.max_ms, 97.0);
  EXPECT_EQ(s.frame.count, 1234u);
  EXPECT_EQ(s.offered, 8);
  EXPECT_EQ(s.admitted, 8);
  EXPECT_EQ(s.queued, 0);
  EXPECT_EQ(s.shed, 0);
  EXPECT_EQ(s.queue.count, 0u);
  EXPECT_EQ(s.warmup.count, 0u);
  EXPECT_FALSE(s.tuning.has_value());
  EXPECT_TRUE(s.levels.empty());
  EXPECT_EQ(s.knee_offered, 0);
  EXPECT_DOUBLE_EQ(s.frame_deadline_ms, 50.0);
  EXPECT_EQ(s.deadline_hits, 17);
}

TEST(ServeStatsTest, BatchingBlockRoundTripsThroughJson) {
  sim::RunReport report;
  report.meta.suite = "serve";
  sim::ServeStats stats;
  stats.method = "il";
  stats.sessions = 8;
  stats.frames = 945;
  sim::ServeStats::Batching batching;
  batching.ticks = 120;
  batching.requests = 945;
  batching.batches = 121;
  batching.max_batch = 8;
  batching.mean_batch = 7.81;
  batching.gather_seconds = 0.0035;
  batching.forward_seconds = 0.2025;
  batching.scatter_seconds = 0.0006;
  stats.batching = batching;
  report.serve = stats;

  sim::RunReport loaded;
  std::string error;
  ASSERT_TRUE(sim::RunReport::parse(report.to_json(), &loaded, &error))
      << error;
  ASSERT_TRUE(loaded.serve.has_value());
  ASSERT_TRUE(loaded.serve->batching.has_value());
  const sim::ServeStats::Batching& b = *loaded.serve->batching;
  EXPECT_EQ(b.ticks, 120u);
  EXPECT_EQ(b.requests, 945u);
  EXPECT_EQ(b.batches, 121u);
  EXPECT_EQ(b.max_batch, 8u);
  EXPECT_DOUBLE_EQ(b.mean_batch, 7.81);
  EXPECT_DOUBLE_EQ(b.gather_seconds, 0.0035);
  EXPECT_DOUBLE_EQ(b.forward_seconds, 0.2025);
  EXPECT_DOUBLE_EQ(b.scatter_seconds, 0.0006);
}

TEST(EvaluatorTest, DetailedStillMatchesSeedOrderThroughSuitePath) {
  // evaluate_detailed is now a one-cell suite through the single fan-out;
  // seeds and results must be unchanged (seed order, thread invariant).
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  opt.time_limit = 3.0;
  sim::EvalConfig cfg;
  cfg.episodes = 4;
  cfg.num_threads = 2;
  const auto detailed = sim::Evaluator(cfg).evaluate_detailed(
      [] {
        return std::make_unique<FixedController>(
            vehicle::Command{1.0, 0.0, 0.2, false});
      },
      opt);
  ASSERT_EQ(detailed.size(), 4u);

  // Same episodes via the explicit suite path.
  sim::ScenarioSuite suite;
  suite.add(sim::SuiteCell::from_options(opt));
  const auto via_suite =
      sim::Evaluator(cfg).evaluate_suite_detailed(
          [] {
            return std::make_unique<FixedController>(
                vehicle::Command{1.0, 0.0, 0.2, false});
          },
          suite);
  ASSERT_EQ(via_suite.size(), 1u);
  ASSERT_EQ(via_suite[0].episodes.size(), detailed.size());
  for (std::size_t i = 0; i < detailed.size(); ++i) {
    EXPECT_EQ(detailed[i].outcome, via_suite[0].episodes[i].outcome) << i;
    EXPECT_EQ(detailed[i].park_time, via_suite[0].episodes[i].park_time) << i;
    EXPECT_EQ(detailed[i].min_clearance,
              via_suite[0].episodes[i].min_clearance)
        << i;
  }
}

}  // namespace
}  // namespace icoil
