#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/controller_registry.hpp"
#include "geom/angles.hpp"
#include "geom/broadphase.hpp"
#include "mathkit/rng.hpp"
#include "sim/session.hpp"
#include "vehicle/kinematics.hpp"
#include "world/distance_field.hpp"
#include "world/scenario.hpp"
#include "world/world.hpp"

namespace icoil::world {
namespace {

// ------------------------------------------------------------ backend names

TEST(CollisionBackendTest, RoundTripNames) {
  EXPECT_STREQ(to_string(CollisionBackend::kAnalytic), "analytic");
  EXPECT_STREQ(to_string(CollisionBackend::kGrid), "grid");
  CollisionBackend backend = CollisionBackend::kAnalytic;
  EXPECT_TRUE(parse_collision_backend("grid", &backend));
  EXPECT_EQ(backend, CollisionBackend::kGrid);
  EXPECT_TRUE(parse_collision_backend("analytic", &backend));
  EXPECT_EQ(backend, CollisionBackend::kAnalytic);
  EXPECT_FALSE(parse_collision_backend("octree", &backend));
  EXPECT_EQ(backend, CollisionBackend::kAnalytic);  // untouched on failure
}

// -------------------------------------------------------------- EDT goldens

/// Brute-force reference: distance from each cell centre to the nearest
/// occupied cell centre, in metres.
std::vector<double> brute_force_edt(int width, int height, double resolution,
                                    const std::vector<std::uint8_t>& occ) {
  std::vector<double> out(static_cast<std::size_t>(width) * height,
                          geom::kMaxClearance);
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x) {
      double best_sq = -1.0;
      for (int oy = 0; oy < height; ++oy)
        for (int ox = 0; ox < width; ++ox) {
          if (occ[static_cast<std::size_t>(oy) * width + ox] == 0) continue;
          const double dx = x - ox, dy = y - oy;
          const double sq = dx * dx + dy * dy;
          if (best_sq < 0.0 || sq < best_sq) best_sq = sq;
        }
      if (best_sq >= 0.0)
        out[static_cast<std::size_t>(y) * width + x] =
            std::sqrt(best_sq) * resolution;
    }
  return out;
}

TEST(DistanceFieldTest, EdtGoldenSingleOccupiedCell) {
  const int w = 7, h = 5;
  std::vector<std::uint8_t> occ(static_cast<std::size_t>(w) * h, 0);
  occ[2 * w + 3] = 1;  // (ix=3, iy=2)
  const DistanceField field =
      DistanceField::from_raster({0.0, 0.0}, w, h, 1.0, occ);
  EXPECT_DOUBLE_EQ(field.cell_distance(3, 2), 0.0);
  EXPECT_DOUBLE_EQ(field.cell_distance(4, 2), 1.0);
  EXPECT_DOUBLE_EQ(field.cell_distance(3, 4), 2.0);
  // EDT values are stored as float, so irrational distances round there.
  EXPECT_NEAR(field.cell_distance(0, 0), std::sqrt(9.0 + 4.0), 1e-6);
  EXPECT_NEAR(field.cell_distance(6, 4), std::sqrt(9.0 + 4.0), 1e-6);
}

TEST(DistanceFieldTest, EdtMatchesBruteForceOnRandomRasters) {
  math::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const int w = rng.uniform_int(1, 24);
    const int h = rng.uniform_int(1, 24);
    const double res = rng.uniform(0.05, 0.5);
    std::vector<std::uint8_t> occ(static_cast<std::size_t>(w) * h, 0);
    for (auto& c : occ) c = rng.uniform() < 0.15 ? 1 : 0;
    const DistanceField field =
        DistanceField::from_raster({-3.0, 2.0}, w, h, res, occ);
    const std::vector<double> expected = brute_force_edt(w, h, res, occ);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x)
        EXPECT_NEAR(field.cell_distance(x, y),
                    expected[static_cast<std::size_t>(y) * w + x], 1e-6)
            << "trial " << trial << " cell (" << x << "," << y << ")";
  }
}

TEST(DistanceFieldTest, EmptyRasterReportsMaxClearance) {
  const DistanceField field = DistanceField::from_raster(
      {0.0, 0.0}, 4, 4, 0.5, std::vector<std::uint8_t>(16, 0));
  EXPECT_DOUBLE_EQ(field.cell_distance(1, 1), geom::kMaxClearance);
  EXPECT_DOUBLE_EQ(field.point_clearance({1.0, 1.0}), geom::kMaxClearance);
}

TEST(DistanceFieldTest, PointOutsideGridIsUnknown) {
  std::vector<std::uint8_t> occ(16, 0);
  occ[0] = 1;
  const DistanceField field =
      DistanceField::from_raster({0.0, 0.0}, 4, 4, 0.5, occ);
  EXPECT_DOUBLE_EQ(field.point_clearance({-1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(field.point_clearance({1.0, 99.0}), 0.0);
}

// ------------------------------------------------- conservativeness property

vehicle::State state_at(double x, double y, double heading) {
  vehicle::State s;
  s.pose = {x, y, heading};
  return s;
}

/// Across every registered generator family: the distance-field clearance
/// never exceeds the analytic distance (it is a lower bound), the upper
/// bound of clearance_bounds never undercuts it, and a certainly-free probe
/// implies the analytic narrow phase agrees.
TEST(DistanceFieldTest, ConservativeAgainstAnalyticAcrossGenerators) {
  const vehicle::BicycleModel model{vehicle::VehicleParams{}};
  for (const std::string& generator : {"canonical", "crowded_lot",
                                       "dynamic_gauntlet", "parallel_street",
                                       "perpendicular"}) {
    ScenarioOptions opt;
    opt.generator = generator;
    opt.difficulty = Difficulty::kNormal;
    const Scenario sc = make_scenario(opt, 11);

    std::vector<geom::Obb> statics;
    for (const Obstacle& o : sc.obstacles)
      if (!o.dynamic()) statics.push_back(o.shape);
    const geom::ObbSet analytic(statics);
    const DistanceField field(sc.map.bounds, statics);

    math::Rng rng(17);
    for (int i = 0; i < 400; ++i) {
      const geom::Aabb& b = sc.map.bounds;
      const geom::Obb fp = model.footprint(
          state_at(rng.uniform(b.min.x, b.max.x), rng.uniform(b.min.y, b.max.y),
                   rng.uniform(0.0, geom::kTwoPi)));
      const double truth = analytic.min_distance(fp);
      const double grid = field.clearance(fp);
      if (statics.empty()) {
        EXPECT_DOUBLE_EQ(grid, geom::kMaxClearance);
        continue;
      }
      // Lower bound, with only float-storage rounding as margin.
      EXPECT_LE(grid, truth + field.resolution())
          << generator << " pose " << i;
      if (grid < geom::kMaxClearance)
        EXPECT_LE(grid, truth + 1e-6) << generator << " pose " << i;
      // Certainly-free probe => the analytic phase agrees.
      if (field.probe(fp) == DistanceField::Probe::kFree)
        EXPECT_FALSE(analytic.any_overlap(fp)) << generator << " pose " << i;
      // The bracket is ordered and its upper side really is an upper bound.
      const DistanceField::ClearanceBounds bounds = field.clearance_bounds(fp);
      EXPECT_LE(bounds.lower, bounds.upper) << generator << " pose " << i;
      if (bounds.upper < geom::kMaxClearance)
        EXPECT_GE(bounds.upper, truth - 1e-6) << generator << " pose " << i;
    }
  }
}

// ------------------------------------------------------ world backend parity

TEST(WorldBackendTest, StaticVerdictsIdenticalAcrossBackends) {
  ScenarioOptions opt;
  opt.generator = "crowded_lot";
  opt.difficulty = Difficulty::kNormal;
  const Scenario sc = make_scenario(opt, 23);
  const World analytic(sc, {CollisionBackend::kAnalytic});
  const World grid(sc, {CollisionBackend::kGrid});
  ASSERT_NE(grid.distance_field(), nullptr);
  EXPECT_EQ(analytic.distance_field(), nullptr);

  const vehicle::BicycleModel model{vehicle::VehicleParams{}};
  math::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const geom::Aabb& b = sc.map.bounds;
    const geom::Obb fp = model.footprint(
        state_at(rng.uniform(b.min.x, b.max.x), rng.uniform(b.min.y, b.max.y),
                 rng.uniform(0.0, geom::kTwoPi)));
    EXPECT_EQ(analytic.static_collision(fp), grid.static_collision(fp))
        << "pose " << i;
    EXPECT_EQ(analytic.in_collision(fp), grid.in_collision(fp)) << "pose " << i;
    // Grid clearance is a conservative lower bound on the analytic value.
    EXPECT_LE(grid.static_clearance(fp), analytic.static_clearance(fp) + 1e-6)
        << "pose " << i;
  }
}

TEST(WorldBackendTest, CanonicalEpisodeVerdictsMatch) {
  ScenarioOptions opt;  // canonical / easy
  const Scenario sc = make_scenario(opt, 7);
  const auto& registry = core::ControllerRegistry::instance();
  sim::EpisodeResult results[2];
  const CollisionBackend backends[2] = {CollisionBackend::kAnalytic,
                                        CollisionBackend::kGrid};
  for (int i = 0; i < 2; ++i) {
    sim::SimConfig config;
    config.collision_backend = backends[i];
    auto controller = registry.build("co");
    sim::Session session(sc, *controller, 1234, config);
    while (session.step() == sim::Session::Status::kRunning) {
    }
    results[i] = session.result();
  }
  EXPECT_EQ(results[0].outcome, results[1].outcome);
  EXPECT_EQ(results[0].frames, results[1].frames);
  EXPECT_DOUBLE_EQ(results[0].park_time, results[1].park_time);
  // Clearance stats may differ (grid is conservative) but never upward.
  EXPECT_LE(results[1].min_clearance, results[0].min_clearance + 1e-6);
}

// ------------------------------------------------------- dynamic box caching

TEST(WorldBackendTest, DynamicBoxCacheTracksSteps) {
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kNormal;  // patrol + pedestrian
  const Scenario sc = make_scenario(opt, 5);
  World world(sc);
  ASSERT_EQ(world.dynamic_boxes().size(),
            world.dynamic_obstacle_indices().size());
  for (int step = 0; step < 30; ++step) world.step(0.05);
  const auto& indices = world.dynamic_obstacle_indices();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const geom::Obb expected =
        sc.obstacles[indices[k]].footprint_at(world.time());
    EXPECT_NEAR(world.dynamic_boxes()[k].center.x, expected.center.x, 1e-12);
    EXPECT_NEAR(world.dynamic_boxes()[k].center.y, expected.center.y, 1e-12);
    EXPECT_NEAR(world.dynamic_boxes()[k].heading, expected.heading, 1e-12);
  }
  world.reset();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const geom::Obb expected = sc.obstacles[indices[k]].footprint_at(0.0);
    EXPECT_NEAR(world.dynamic_boxes()[k].center.x, expected.center.x, 1e-12);
  }
}

TEST(WorldBackendTest, CrowdedLotDensityScalesClutter) {
  for (const double density : {1.0, 4.0}) {
    ScenarioOptions opt;
    opt.generator = "crowded_lot";
    opt.difficulty = Difficulty::kNormal;
    opt.params.set("density", density);
    const Scenario sc = make_scenario(opt, 3);
    int statics = 0;
    for (const Obstacle& o : sc.obstacles)
      if (!o.dynamic()) ++statics;
    // 4 fixed roster entries + 6 * density clutter boxes (placement may
    // drop a few at high density when the lot saturates).
    EXPECT_GE(statics, 2 + static_cast<int>(3 * density));
    EXPECT_LE(statics, 2 + static_cast<int>(6 * density));
  }
}

}  // namespace
}  // namespace icoil::world
