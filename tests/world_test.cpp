#include <gtest/gtest.h>

#include <cmath>

#include "geom/angles.hpp"
#include "world/map.hpp"
#include "world/obstacle.hpp"
#include "world/scenario.hpp"
#include "world/world.hpp"

namespace icoil::world {
namespace {

// ---------------------------------------------------------- MotionScript

TEST(MotionScriptTest, StaticWhenNoWaypoints) {
  MotionScript script;
  EXPECT_FALSE(script.dynamic());
  EXPECT_DOUBLE_EQ(script.path_length(), 0.0);
}

TEST(MotionScriptTest, PathLengthSumsSegments) {
  MotionScript script;
  script.waypoints = {{0, 0}, {3, 0}, {3, 4}};
  script.speed = 1.0;
  EXPECT_DOUBLE_EQ(script.path_length(), 7.0);
}

TEST(MotionScriptTest, PoseAdvancesAlongPath) {
  MotionScript script;
  script.waypoints = {{0, 0}, {10, 0}};
  script.speed = 2.0;
  const geom::Pose2 p = script.pose_at(1.0);
  EXPECT_NEAR(p.x(), 2.0, 1e-9);
  EXPECT_NEAR(p.heading, 0.0, 1e-9);
}

TEST(MotionScriptTest, PingPongReflectsAtEnds) {
  MotionScript script;
  script.waypoints = {{0, 0}, {10, 0}};
  script.speed = 1.0;
  // After 15 s: went 10 forward, 5 back -> x = 5, heading flipped.
  const geom::Pose2 p = script.pose_at(15.0);
  EXPECT_NEAR(p.x(), 5.0, 1e-9);
  EXPECT_NEAR(std::abs(p.heading), geom::kPi, 1e-9);
}

TEST(MotionScriptTest, PeriodicOverFullCycle) {
  MotionScript script;
  script.waypoints = {{0, 0}, {10, 0}};
  script.speed = 1.0;
  const geom::Pose2 a = script.pose_at(3.0);
  const geom::Pose2 b = script.pose_at(3.0 + 20.0);  // full out-and-back
  EXPECT_NEAR(a.x(), b.x(), 1e-9);
  EXPECT_NEAR(a.y(), b.y(), 1e-9);
}

TEST(MotionScriptTest, PhaseShiftsStart) {
  MotionScript script;
  script.waypoints = {{0, 0}, {10, 0}};
  script.speed = 1.0;
  script.phase = 4.0;
  EXPECT_NEAR(script.pose_at(0.0).x(), 4.0, 1e-9);
}

TEST(ObstacleTest, StaticFootprintConstant) {
  Obstacle o;
  o.shape = geom::Obb{{3, 4}, 0.5, 1.0, 0.5};
  const geom::Obb a = o.footprint_at(0.0);
  const geom::Obb b = o.footprint_at(100.0);
  EXPECT_NEAR(a.center.x, b.center.x, 1e-12);
  EXPECT_DOUBLE_EQ(o.velocity_at(5.0).norm(), 0.0);
}

TEST(ObstacleTest, DynamicVelocityMagnitude) {
  Obstacle o;
  o.shape = geom::Obb{{0, 0}, 0, 1, 0.5};
  o.motion.waypoints = {{0, 0}, {20, 0}};
  o.motion.speed = 1.5;
  EXPECT_TRUE(o.dynamic());
  EXPECT_NEAR(o.velocity_at(2.0).norm(), 1.5, 1e-6);
  EXPECT_NEAR(o.velocity_at(2.0).x, 1.5, 1e-6);
}

// ------------------------------------------------------------------- map

TEST(MapTest, StandardLotGeometry) {
  const ParkingLotMap map = ParkingLotMap::standard();
  EXPECT_EQ(map.bays.size(), 6u);
  EXPECT_LT(map.goal_bay_index, map.bays.size());
  EXPECT_TRUE(map.bounds.contains(map.goal_pose.position));
  // The goal pose sits inside the goal bay.
  EXPECT_TRUE(map.goal_bay().contains(map.goal_pose.position));
  // Spawn regions are inside the lot.
  EXPECT_TRUE(map.bounds.contains(map.spawn_close.center()));
  EXPECT_TRUE(map.bounds.contains(map.spawn_remote.center()));
}

TEST(MapTest, SpawnRegionsOrdered) {
  const ParkingLotMap map = ParkingLotMap::standard();
  const double d_close =
      geom::distance(map.spawn_close.center(), map.goal_pose.position);
  const double d_remote =
      geom::distance(map.spawn_remote.center(), map.goal_pose.position);
  EXPECT_LT(d_close, d_remote);
}

TEST(MapTest, BayInteriorsDoNotOverlap) {
  // Adjacent bays share an edge; their shrunken interiors must be disjoint.
  const ParkingLotMap map = ParkingLotMap::standard();
  for (std::size_t i = 0; i < map.bays.size(); ++i)
    for (std::size_t j = i + 1; j < map.bays.size(); ++j)
      EXPECT_FALSE(
          geom::overlaps(map.bays[i].inflated(-0.01), map.bays[j]));
}

// -------------------------------------------------------------- scenario

TEST(ScenarioTest, DifficultyObstacleCounts) {
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kEasy;
  EXPECT_EQ(make_scenario(opt, 1).obstacles.size(), 3u);
  opt.difficulty = Difficulty::kNormal;
  EXPECT_EQ(make_scenario(opt, 1).obstacles.size(), 5u);
  opt.difficulty = Difficulty::kHard;
  EXPECT_EQ(make_scenario(opt, 1).obstacles.size(), 5u);
}

TEST(ScenarioTest, EasyHasNoDynamicObstacles) {
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kEasy;
  for (const Obstacle& o : make_scenario(opt, 3).obstacles)
    EXPECT_FALSE(o.dynamic());
}

TEST(ScenarioTest, NormalHasTwoDynamicObstacles) {
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kNormal;
  int dynamic = 0;
  for (const Obstacle& o : make_scenario(opt, 3).obstacles)
    if (o.dynamic()) ++dynamic;
  EXPECT_EQ(dynamic, 2);
}

TEST(ScenarioTest, OnlyHardHasNoise) {
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kNormal;
  EXPECT_FALSE(make_scenario(opt, 1).noise.any());
  opt.difficulty = Difficulty::kHard;
  EXPECT_TRUE(make_scenario(opt, 1).noise.any());
}

TEST(ScenarioTest, DeterministicForSeed) {
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kNormal;
  const Scenario a = make_scenario(opt, 77);
  const Scenario b = make_scenario(opt, 77);
  EXPECT_DOUBLE_EQ(a.start_pose.x(), b.start_pose.x());
  EXPECT_DOUBLE_EQ(a.start_pose.heading, b.start_pose.heading);
  ASSERT_EQ(a.obstacles.size(), b.obstacles.size());
  for (std::size_t i = 0; i < a.obstacles.size(); ++i)
    EXPECT_DOUBLE_EQ(a.obstacles[i].motion.phase, b.obstacles[i].motion.phase);
}

TEST(ScenarioTest, DifferentSeedsDiffer) {
  ScenarioOptions opt;
  const Scenario a = make_scenario(opt, 1);
  const Scenario b = make_scenario(opt, 2);
  EXPECT_NE(a.start_pose.x(), b.start_pose.x());
}

TEST(ScenarioTest, StartClassRespectsRegion) {
  ScenarioOptions opt;
  for (auto cls : {StartClass::kClose, StartClass::kRemote, StartClass::kRandom}) {
    opt.start_class = cls;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const Scenario sc = make_scenario(opt, seed);
      const geom::Aabb& region = cls == StartClass::kClose ? sc.map.spawn_close
                                 : cls == StartClass::kRemote
                                     ? sc.map.spawn_remote
                                     : sc.map.spawn_random;
      EXPECT_TRUE(region.contains(sc.start_pose.position))
          << to_string(cls) << " seed " << seed;
    }
  }
}

TEST(ScenarioTest, ObstacleOverrideTruncatesRoster) {
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kNormal;
  opt.num_obstacles_override = 2;
  EXPECT_EQ(make_scenario(opt, 1).obstacles.size(), 2u);
  opt.num_obstacles_override = 99;  // clamped to roster size
  EXPECT_EQ(make_scenario(opt, 1).obstacles.size(), 5u);
}

TEST(ScenarioTest, CanonicalObstaclesClearOfGoalBay) {
  const ParkingLotMap map = ParkingLotMap::standard();
  for (const Obstacle& o : canonical_obstacles()) {
    if (!o.dynamic()) {
      EXPECT_FALSE(geom::overlaps(o.shape, map.goal_bay())) << o.name;
    }
  }
}

TEST(ScenarioTest, ToStringNames) {
  EXPECT_EQ(to_string(Difficulty::kEasy), "easy");
  EXPECT_EQ(to_string(Difficulty::kHard), "hard");
  EXPECT_EQ(to_string(StartClass::kRemote), "remote");
}

// ----------------------------------------------------------------- world

TEST(WorldTest, ObstacleStatesMatchScenario) {
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kNormal;
  World world(make_scenario(opt, 5));
  const auto states = world.obstacle_states();
  EXPECT_EQ(states.size(), 5u);
  int dynamic = 0;
  for (const auto& s : states) dynamic += s.dynamic ? 1 : 0;
  EXPECT_EQ(dynamic, 2);
}

TEST(WorldTest, SteppingMovesDynamicObstacles) {
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kNormal;
  World world(make_scenario(opt, 5));
  const auto before = world.obstacle_boxes();
  for (int i = 0; i < 40; ++i) world.step(0.05);
  const auto after = world.obstacle_boxes();
  double moved = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i)
    moved += geom::distance(before[i].center, after[i].center);
  EXPECT_GT(moved, 1.0);
  world.reset();
  EXPECT_DOUBLE_EQ(world.time(), 0.0);
}

TEST(WorldTest, CollisionWithObstacle) {
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kEasy;
  const Scenario sc = make_scenario(opt, 1);
  World world(sc);
  const geom::Obb& first = sc.obstacles[0].shape;
  const geom::Obb at_obstacle{first.center, first.heading, 1.0, 1.0};
  EXPECT_TRUE(world.in_collision(at_obstacle));
}

TEST(WorldTest, CollisionOutOfBounds) {
  ScenarioOptions opt;
  World world(make_scenario(opt, 1));
  const geom::Obb outside{{-5.0, 15.0}, 0.0, 1.0, 1.0};
  EXPECT_TRUE(world.in_collision(outside));
  // Straddling the boundary also counts.
  const geom::Obb straddle{{0.0, 15.0}, 0.0, 1.0, 1.0};
  EXPECT_TRUE(world.in_collision(straddle));
}

TEST(WorldTest, FreeSpaceNotColliding) {
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kEasy;
  World world(make_scenario(opt, 1));
  const geom::Obb free_box{{10.0, 25.0}, 0.3, 1.0, 1.0};
  EXPECT_FALSE(world.in_collision(free_box));
  EXPECT_GT(world.clearance(free_box), 0.5);
}

TEST(WorldTest, AtGoalToleranceBands) {
  ScenarioOptions opt;
  const Scenario sc = make_scenario(opt, 1);
  World world(sc);
  EXPECT_TRUE(world.at_goal(sc.map.goal_pose));
  geom::Pose2 off = sc.map.goal_pose;
  off.position.x += 0.5;
  EXPECT_TRUE(world.at_goal(off, 0.6, 0.35));
  off.position.x += 1.0;
  EXPECT_FALSE(world.at_goal(off, 0.6, 0.35));
  geom::Pose2 rotated = sc.map.goal_pose;
  rotated.heading += 1.0;
  EXPECT_FALSE(world.at_goal(rotated, 0.6, 0.35));
}

TEST(WorldTest, ClearanceDecreasesNearObstacle) {
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kEasy;
  const Scenario sc = make_scenario(opt, 1);
  World world(sc);
  const geom::Vec2 c = sc.obstacles[0].shape.center;
  const geom::Obb near_box{{c.x, c.y + 3.5}, 0.0, 0.5, 0.5};
  const geom::Obb far_box{{c.x, c.y + 8.0}, 0.0, 0.5, 0.5};
  EXPECT_LT(world.clearance(near_box), world.clearance(far_box));
}

}  // namespace
}  // namespace icoil::world
