#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "geom/angles.hpp"
#include "vehicle/kinematics.hpp"
#include "world/generators/registry.hpp"
#include "world/scenario.hpp"

namespace icoil::world {
namespace {

const char* kBuiltins[] = {"canonical",     "perpendicular", "parallel_street",
                           "crowded_lot",   "dynamic_gauntlet",
                           "multi_row_lot", "angled_bays",   "narrow_garage"};

Scenario build(const std::string& generator, std::uint64_t seed,
               Difficulty difficulty = Difficulty::kNormal) {
  ScenarioOptions opt;
  opt.generator = generator;
  opt.difficulty = difficulty;
  return make_scenario(opt, seed);
}

// ---------------------------------------------------------------- registry

TEST(GeneratorRegistryTest, BuiltinFamilyRegistered) {
  const auto& registry = GeneratorRegistry::instance();
  EXPECT_GE(registry.size(), 8u);
  for (const char* name : kBuiltins) {
    const ScenarioGenerator* gen = registry.find(name);
    ASSERT_NE(gen, nullptr) << name;
    EXPECT_EQ(gen->name(), name);
    EXPECT_FALSE(gen->description().empty());
  }
  // names() is sorted and contains every builtin.
  const auto names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(GeneratorRegistryTest, UnknownGeneratorIsNullAndThrows) {
  EXPECT_EQ(GeneratorRegistry::instance().find("no_such_family"), nullptr);
  ScenarioOptions opt;
  opt.generator = "no_such_family";
  EXPECT_THROW(make_scenario(opt, 1), std::invalid_argument);
}

TEST(GeneratorRegistryTest, CustomGeneratorRegisters) {
  class OneBoxGenerator final : public ScenarioGenerator {
   public:
    std::string name() const override { return "test_one_box"; }
    std::string description() const override { return "single crate"; }
    GeneratorOutput build(const GeneratorParams&, Difficulty,
                          math::Rng&) const override {
      GeneratorOutput out;
      out.map = ParkingLotMap::standard();
      out.obstacles.push_back(
          {0, "crate", geom::Obb{{10.0, 25.0}, 0.0, 0.5, 0.5}, {}});
      return out;
    }
  };
  GeneratorRegistry::instance().add(std::make_unique<OneBoxGenerator>());
  const Scenario sc = build("test_one_box", 3);
  EXPECT_EQ(sc.obstacles.size(), 1u);
  EXPECT_EQ(sc.generator, "test_one_box");
}

// ------------------------------------------------------------- determinism

TEST(GeneratorDeterminismTest, SameSeedReproducesScenario) {
  for (const char* name : kBuiltins) {
    for (std::uint64_t seed : {1ull, 42ull, 977ull}) {
      const Scenario a = build(name, seed);
      const Scenario b = build(name, seed);
      EXPECT_DOUBLE_EQ(a.start_pose.x(), b.start_pose.x()) << name;
      EXPECT_DOUBLE_EQ(a.start_pose.y(), b.start_pose.y()) << name;
      EXPECT_DOUBLE_EQ(a.start_pose.heading, b.start_pose.heading) << name;
      ASSERT_EQ(a.obstacles.size(), b.obstacles.size()) << name;
      for (std::size_t i = 0; i < a.obstacles.size(); ++i) {
        const Obstacle& oa = a.obstacles[i];
        const Obstacle& ob = b.obstacles[i];
        EXPECT_EQ(oa.name, ob.name) << name;
        EXPECT_DOUBLE_EQ(oa.shape.center.x, ob.shape.center.x) << name;
        EXPECT_DOUBLE_EQ(oa.shape.center.y, ob.shape.center.y) << name;
        EXPECT_DOUBLE_EQ(oa.shape.heading, ob.shape.heading) << name;
        EXPECT_DOUBLE_EQ(oa.shape.half_length, ob.shape.half_length) << name;
        EXPECT_DOUBLE_EQ(oa.shape.half_width, ob.shape.half_width) << name;
        EXPECT_DOUBLE_EQ(oa.motion.phase, ob.motion.phase) << name;
        EXPECT_DOUBLE_EQ(oa.motion.speed, ob.motion.speed) << name;
      }
    }
  }
}

TEST(GeneratorDeterminismTest, DifferentSeedsDiffer) {
  for (const char* name : kBuiltins) {
    const Scenario a = build(name, 11);
    const Scenario b = build(name, 12);
    EXPECT_NE(a.start_pose.x(), b.start_pose.x()) << name;
  }
}

// ------------------------------------------------------------ start safety

TEST(GeneratorSafetyTest, StartPoseCollisionFreeAndInsideRegion) {
  const vehicle::BicycleModel model;
  for (const char* name : kBuiltins) {
    for (auto difficulty : {Difficulty::kEasy, Difficulty::kNormal}) {
      for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const Scenario sc = build(name, seed, difficulty);
        const geom::Obb fp = model.footprint(sc.start_pose);
        for (const Obstacle& o : sc.obstacles)
          EXPECT_FALSE(geom::overlaps(fp, o.footprint_at(0.0)))
              << name << " seed " << seed << " vs " << o.name;
        EXPECT_TRUE(sc.map.spawn_random.contains(sc.start_pose.position))
            << name << " seed " << seed;
        for (const geom::Vec2& c : fp.corners())
          EXPECT_TRUE(sc.map.bounds.contains(c)) << name << " seed " << seed;
      }
    }
  }
}

// ------------------------------------------------------- canonical goldens

TEST(CanonicalGoldenTest, ExactObstacleSet) {
  // Golden values of the seed code's canonical_obstacles(): any drift here
  // silently invalidates every paper-comparison number.
  const auto obs = canonical_obstacles();
  ASSERT_EQ(obs.size(), 5u);

  EXPECT_EQ(obs[0].name, "parked_car_left");
  EXPECT_DOUBLE_EQ(obs[0].shape.center.x, 27.5);
  EXPECT_DOUBLE_EQ(obs[0].shape.center.y, 2.9);
  EXPECT_DOUBLE_EQ(obs[0].shape.heading, geom::kPi / 2.0);
  EXPECT_DOUBLE_EQ(obs[0].shape.half_length, 2.1);
  EXPECT_DOUBLE_EQ(obs[0].shape.half_width, 0.9);

  EXPECT_EQ(obs[1].name, "parked_car_right");
  EXPECT_DOUBLE_EQ(obs[1].shape.center.x, 33.5);
  EXPECT_DOUBLE_EQ(obs[1].shape.center.y, 2.9);

  EXPECT_EQ(obs[2].name, "aisle_pillar");
  EXPECT_DOUBLE_EQ(obs[2].shape.center.x, 14.0);
  EXPECT_DOUBLE_EQ(obs[2].shape.center.y, 17.0);
  EXPECT_DOUBLE_EQ(obs[2].shape.half_length, 1.0);
  EXPECT_DOUBLE_EQ(obs[2].shape.half_width, 1.0);

  EXPECT_EQ(obs[3].name, "patrol_vehicle");
  ASSERT_EQ(obs[3].motion.waypoints.size(), 2u);
  EXPECT_DOUBLE_EQ(obs[3].motion.waypoints[0].x, 10.0);
  EXPECT_DOUBLE_EQ(obs[3].motion.waypoints[0].y, 19.5);
  EXPECT_DOUBLE_EQ(obs[3].motion.waypoints[1].x, 30.0);
  EXPECT_DOUBLE_EQ(obs[3].motion.waypoints[1].y, 19.5);
  EXPECT_DOUBLE_EQ(obs[3].motion.speed, 1.2);
  EXPECT_DOUBLE_EQ(obs[3].motion.phase, 0.0);

  EXPECT_EQ(obs[4].name, "pedestrian");
  EXPECT_DOUBLE_EQ(obs[4].shape.half_length, 0.35);
  ASSERT_EQ(obs[4].motion.waypoints.size(), 2u);
  EXPECT_DOUBLE_EQ(obs[4].motion.waypoints[0].x, 26.0);
  EXPECT_DOUBLE_EQ(obs[4].motion.waypoints[0].y, 9.0);
  EXPECT_DOUBLE_EQ(obs[4].motion.speed, 0.7);
  EXPECT_DOUBLE_EQ(obs[4].motion.phase, 3.0);
}

TEST(CanonicalGoldenTest, RegistryBuildMatchesLegacyRoster) {
  const ScenarioGenerator* gen =
      GeneratorRegistry::instance().find("canonical");
  ASSERT_NE(gen, nullptr);
  math::Rng rng(7);
  const GeneratorOutput out = gen->build({}, Difficulty::kNormal, rng);
  const auto legacy = canonical_obstacles();
  ASSERT_EQ(out.obstacles.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(out.obstacles[i].name, legacy[i].name);
    EXPECT_DOUBLE_EQ(out.obstacles[i].shape.center.x,
                     legacy[i].shape.center.x);
    EXPECT_DOUBLE_EQ(out.obstacles[i].shape.center.y,
                     legacy[i].shape.center.y);
    EXPECT_DOUBLE_EQ(out.obstacles[i].motion.phase, legacy[i].motion.phase);
  }
  // The canonical generator never consumes the RNG: the stream continues
  // exactly where it started, preserving bit-for-bit scenario equality
  // with the pre-registry code.
  math::Rng untouched(7);
  EXPECT_DOUBLE_EQ(rng.uniform(), untouched.uniform());
}

TEST(CanonicalGoldenTest, MakeScenarioStartPoseGolden) {
  // The sampled start pose for (easy, seed 500) must match the pre-registry
  // pipeline: same RNG construction, same consumption order.
  ScenarioOptions opt;
  opt.difficulty = Difficulty::kEasy;
  const Scenario sc = make_scenario(opt, 500);
  math::Rng rng(500ull ^ 0xA5C3D2E1ull);
  const geom::Pose2 expected{rng.uniform(2.0, 24.0), rng.uniform(10.0, 14.0),
                             geom::wrap_angle(rng.uniform(-0.25, 0.25))};
  EXPECT_DOUBLE_EQ(sc.start_pose.x(), expected.x());
  EXPECT_DOUBLE_EQ(sc.start_pose.y(), expected.y());
  EXPECT_DOUBLE_EQ(sc.start_pose.heading, expected.heading);
}

// ------------------------------------------------------ family invariants

TEST(CrowdedLotTest, AtLeastEightObstacles) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Scenario sc = build("crowded_lot", seed);
    EXPECT_GE(sc.obstacles.size(), 8u) << "seed " << seed;
    int dynamic = 0;
    for (const Obstacle& o : sc.obstacles) dynamic += o.dynamic() ? 1 : 0;
    EXPECT_EQ(dynamic, 2) << "seed " << seed;
  }
}

TEST(CrowdedLotTest, ObstacleCountParameter) {
  ScenarioOptions opt;
  opt.generator = "crowded_lot";
  opt.difficulty = Difficulty::kNormal;
  opt.params.set("num_obstacles", 14);
  const Scenario sc = make_scenario(opt, 5);
  EXPECT_GE(sc.obstacles.size(), 10u);
  EXPECT_LE(sc.obstacles.size(), 14u);
}

TEST(CrowdedLotTest, EasyKeepsOnlyStatics) {
  const Scenario sc = build("crowded_lot", 3, Difficulty::kEasy);
  EXPECT_GE(sc.obstacles.size(), 6u);
  for (const Obstacle& o : sc.obstacles) EXPECT_FALSE(o.dynamic()) << o.name;
}

TEST(DynamicGauntletTest, MoverCountAndSpeedScale) {
  ScenarioOptions opt;
  opt.generator = "dynamic_gauntlet";
  opt.difficulty = Difficulty::kNormal;
  opt.params.set("num_movers", 6);
  opt.params.set("speed_scale", 2.0);
  const Scenario sc = make_scenario(opt, 9);
  int dynamic = 0;
  for (const Obstacle& o : sc.obstacles) dynamic += o.dynamic() ? 1 : 0;
  EXPECT_EQ(dynamic, 6);
  EXPECT_EQ(sc.obstacles.size(), 8u);  // 2 statics + 6 movers
  // First mover is the aisle patrol: template speed 1.3 doubled.
  EXPECT_DOUBLE_EQ(sc.obstacles[2].motion.speed, 2.6);
}

TEST(ParallelStreetTest, MapShapeAndParkedParameter) {
  const Scenario sc = build("parallel_street", 4);
  EXPECT_DOUBLE_EQ(sc.map.bounds.max.x, 40.0);
  EXPECT_DOUBLE_EQ(sc.map.bounds.max.y, 14.0);
  EXPECT_EQ(sc.map.bays.size(), 5u);
  EXPECT_DOUBLE_EQ(sc.map.goal_pose.heading, 0.0);
  EXPECT_TRUE(sc.map.goal_bay().contains(sc.map.goal_pose.position));
  EXPECT_TRUE(sc.map.bounds.contains(sc.map.goal_pose.position));

  ScenarioOptions opt;
  opt.generator = "parallel_street";
  opt.difficulty = Difficulty::kNormal;
  opt.params.set("parked", 2);
  const Scenario two = make_scenario(opt, 4);
  int statics = 0;
  for (const Obstacle& o : two.obstacles) statics += o.dynamic() ? 0 : 1;
  EXPECT_EQ(statics, 2);
}

TEST(PerpendicularTest, OccupancyBounds) {
  ScenarioOptions opt;
  opt.generator = "perpendicular";
  opt.difficulty = Difficulty::kNormal;
  opt.params.set("occupancy", 1.0);
  const Scenario full = make_scenario(opt, 2);
  int statics = 0;
  for (const Obstacle& o : full.obstacles) statics += o.dynamic() ? 0 : 1;
  EXPECT_EQ(statics, 5);  // every non-goal bay occupied

  opt.params.set("occupancy", 0.0);
  const Scenario none = make_scenario(opt, 2);
  for (const Obstacle& o : none.obstacles) EXPECT_TRUE(o.dynamic());
}

TEST(MissionFamilyTest, MultiRowLotLayout) {
  const Scenario sc = build("multi_row_lot", 6);
  EXPECT_EQ(sc.map.bays.size(), 32u);  // 4 rows x 8 bays
  EXPECT_DOUBLE_EQ(sc.map.bounds.max.x, 48.0);
  EXPECT_DOUBLE_EQ(sc.map.bounds.max.y, 36.0);
  // Goal is the parked pose of the goal bay under the shared convention.
  const geom::Pose2 parked = sc.map.bay_parked_pose(sc.map.goal_bay_index);
  EXPECT_DOUBLE_EQ(sc.map.goal_pose.x(), parked.x());
  EXPECT_DOUBLE_EQ(sc.map.goal_pose.y(), parked.y());
  EXPECT_DOUBLE_EQ(sc.map.goal_pose.heading, parked.heading);
  // Every bay heading points toward an aisle, so the parked pose of any bay
  // stays inside its bay (missions retarget arbitrary free bays).
  for (std::size_t b = 0; b < sc.map.bays.size(); ++b)
    EXPECT_TRUE(sc.map.bays[b].contains(sc.map.bay_parked_pose(b).position))
        << "bay " << b;
}

TEST(MissionFamilyTest, MultiRowLotBayCountParameter) {
  ScenarioOptions opt;
  opt.generator = "multi_row_lot";
  opt.difficulty = Difficulty::kNormal;
  opt.params.set("bays_per_row", 4);
  const Scenario sc = make_scenario(opt, 1);
  EXPECT_EQ(sc.map.bays.size(), 16u);
  opt.params.set("occupancy", 1.0);
  const Scenario full = make_scenario(opt, 1);
  int statics = 0;
  for (const Obstacle& o : full.obstacles) statics += o.dynamic() ? 0 : 1;
  EXPECT_EQ(statics, 15);  // every non-goal bay holds a parked car
}

TEST(MissionFamilyTest, AngledBaysLeanAndConvention) {
  ScenarioOptions opt;
  opt.generator = "angled_bays";
  opt.difficulty = Difficulty::kNormal;
  opt.params.set("angle_deg", 45.0);
  const Scenario sc = make_scenario(opt, 3);
  EXPECT_EQ(sc.map.bays.size(), 8u);
  for (const geom::Obb& bay : sc.map.bays)
    EXPECT_NEAR(bay.heading, geom::kPi / 4.0, 1e-12);
  const geom::Pose2 parked = sc.map.bay_parked_pose(sc.map.goal_bay_index);
  EXPECT_DOUBLE_EQ(sc.map.goal_pose.heading, parked.heading);
  EXPECT_TRUE(sc.map.goal_bay().contains(sc.map.goal_pose.position));
  // Adjacent bays never overlap despite the lean.
  for (std::size_t i = 0; i + 1 < sc.map.bays.size(); ++i)
    EXPECT_FALSE(geom::overlaps(sc.map.bays[i], sc.map.bays[i + 1])) << i;
}

TEST(MissionFamilyTest, NarrowGarageAisleParameter) {
  ScenarioOptions opt;
  opt.generator = "narrow_garage";
  opt.difficulty = Difficulty::kNormal;
  opt.params.set("aisle_width", 5.0);
  const Scenario sc = make_scenario(opt, 2);
  EXPECT_EQ(sc.map.bays.size(), 14u);  // 2 rows x 7 bays
  EXPECT_DOUBLE_EQ(sc.map.bounds.max.y, 15.0);  // 2 x 5.0 depth + aisle
  // Facing rows: bottom opens up, top opens down.
  EXPECT_NEAR(sc.map.bays.front().heading, geom::kPi / 2.0, 1e-12);
  EXPECT_NEAR(sc.map.bays.back().heading, -geom::kPi / 2.0, 1e-12);
  int pillars = 0;
  for (const Obstacle& o : sc.obstacles) pillars += o.name == "pillar" ? 1 : 0;
  EXPECT_EQ(pillars, 4);
}

TEST(GeneratorOverrideTest, RosterTruncationAppliesToEveryFamily) {
  for (const char* name : kBuiltins) {
    ScenarioOptions opt;
    opt.generator = name;
    opt.difficulty = Difficulty::kNormal;
    opt.num_obstacles_override = 1;
    EXPECT_EQ(make_scenario(opt, 1).obstacles.size(), 1u) << name;
  }
}

}  // namespace
}  // namespace icoil::world
