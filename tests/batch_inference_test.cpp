#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/icoil_controller.hpp"
#include "core/il_controller.hpp"
#include "il/batch_inferencer.hpp"
#include "il/observation.hpp"
#include "il/policy.hpp"
#include "sensing/bev.hpp"
#include "sim/session.hpp"
#include "world/generators/registry.hpp"
#include "world/scenario.hpp"
#include "world/world.hpp"

namespace icoil {
namespace {

// A freshly initialized policy suffices for the identity contract: nothing
// below depends on the weights being trained, only on the batched forward
// replaying the per-observation forward bit for bit.
il::IlPolicy make_policy() { return il::IlPolicy(il::IlPolicyConfig(), 99u); }

sense::BevImage observation_for(const il::IlPolicy& policy,
                                const std::string& family, std::uint64_t seed,
                                double speed) {
  world::ScenarioOptions opt;
  opt.generator = family;
  const world::Scenario scenario = world::make_scenario(opt, seed);
  const world::World world(scenario);
  const sense::BevRasterizer rasterizer(policy.bev_spec());
  const sense::BevImage bev = rasterizer.render(world, scenario.start_pose);
  return il::make_observation(bev, speed);
}

void expect_same_inference(const il::Inference& batched,
                           const il::Inference& single, const char* what) {
  ASSERT_EQ(batched.probs.size(), single.probs.size()) << what;
  for (std::size_t j = 0; j < single.probs.size(); ++j)
    EXPECT_EQ(batched.probs[j], single.probs[j]) << what << " prob " << j;
  EXPECT_EQ(batched.action_class, single.action_class) << what;
  EXPECT_EQ(batched.entropy, single.entropy) << what;
  EXPECT_EQ(batched.command.steer, single.command.steer) << what;
  EXPECT_EQ(batched.command.throttle, single.command.throttle) << what;
  EXPECT_EQ(batched.command.brake, single.command.brake) << what;
  EXPECT_EQ(batched.command.reverse, single.command.reverse) << what;
}

// ------------------------------------------------- batched == single infer

TEST(BatchInferencerTest, MatchesSingleInferAcrossScenarioFamilies) {
  il::IlPolicy policy = make_policy();
  il::BatchInferencer service(policy, 32);

  std::vector<sense::BevImage> observations;
  const auto families = world::GeneratorRegistry::instance().names();
  ASSERT_GE(families.size(), 2u);
  for (std::size_t f = 0; f < families.size(); ++f)
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
      observations.push_back(observation_for(policy, families[f], seed,
                                             0.4 * static_cast<double>(f) -
                                                 0.5));

  std::vector<std::size_t> slots;
  for (const sense::BevImage& obs : observations)
    slots.push_back(service.submit(obs));
  service.run_tick();

  for (std::size_t i = 0; i < observations.size(); ++i) {
    const il::Inference single = policy.infer(observations[i]);
    expect_same_inference(service.result(slots[i]), single,
                          ("obs " + std::to_string(i)).c_str());
  }
}

TEST(BatchInferencerTest, MatchesSingleInferAtEachBatchSize) {
  il::IlPolicy policy = make_policy();
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
    il::BatchInferencer service(policy, 32);
    std::vector<sense::BevImage> observations;
    for (std::size_t i = 0; i < n; ++i)
      observations.push_back(observation_for(
          policy, "canonical", 10 + i, 0.1 * static_cast<double>(i)));

    for (const sense::BevImage& obs : observations) service.submit(obs);
    service.run_tick();

    EXPECT_EQ(service.stats().requests, n);
    EXPECT_EQ(service.stats().batches, 1u);
    EXPECT_EQ(service.stats().max_batch, n);
    for (std::size_t i = 0; i < n; ++i)
      expect_same_inference(service.result(i), policy.infer(observations[i]),
                            ("batch " + std::to_string(n) + " obs " +
                             std::to_string(i))
                                .c_str());
  }
}

TEST(BatchInferencerTest, RaggedFinalChunkMatchesSingleInfer) {
  il::IlPolicy policy = make_policy();
  il::BatchInferencer service(policy, 32);

  // 37 submissions against a 32 cap: one full chunk plus a ragged 5-tail.
  std::vector<sense::BevImage> observations;
  for (std::size_t i = 0; i < 37; ++i)
    observations.push_back(
        observation_for(policy, "canonical", 100 + i, i % 2 == 0 ? 0.3 : -0.2));
  for (const sense::BevImage& obs : observations) service.submit(obs);
  service.run_tick();

  EXPECT_EQ(service.stats().ticks, 1u);
  EXPECT_EQ(service.stats().requests, 37u);
  EXPECT_EQ(service.stats().batches, 2u);
  EXPECT_EQ(service.stats().max_batch, 32u);
  EXPECT_DOUBLE_EQ(service.stats().mean_batch(), 18.5);

  for (std::size_t i = 0; i < observations.size(); ++i)
    expect_same_inference(service.result(i), policy.infer(observations[i]),
                          ("obs " + std::to_string(i)).c_str());
}

TEST(BatchInferencerTest, EmptyTickIsANoOp) {
  il::IlPolicy policy = make_policy();
  il::BatchInferencer service(policy);
  service.run_tick();
  EXPECT_EQ(service.stats().ticks, 0u);
  EXPECT_EQ(service.stats().requests, 0u);
}

// ------------------------------------- staged sessions == stepped sessions

void expect_same_result(const sim::EpisodeResult& batched,
                        const sim::EpisodeResult& stepped) {
  EXPECT_EQ(batched.outcome, stepped.outcome);
  EXPECT_EQ(batched.frames, stepped.frames);
  EXPECT_EQ(batched.park_time, stepped.park_time);
  EXPECT_EQ(batched.min_clearance, stepped.min_clearance);
  EXPECT_EQ(batched.mode_switches, stepped.mode_switches);
  EXPECT_EQ(batched.il_fraction, stepped.il_fraction);
}

TEST(SessionBatchingTest, IlSessionStageCommitReplaysStep) {
  il::IlPolicy policy = make_policy();

  world::ScenarioOptions opt;
  opt.generator = "canonical";
  opt.time_limit = 4.0;
  const world::Scenario scenario = world::make_scenario(opt, 7u);

  core::IlController stepped_ctrl(policy);
  sim::Session stepped(scenario, stepped_ctrl, 21u);
  while (stepped.step() == sim::Session::Status::kRunning) {
  }

  il::BatchInferencer service(policy, 32);
  core::IlController batched_ctrl(policy);
  sim::Session batched(scenario, batched_ctrl, 21u);
  ASSERT_TRUE(batched.supports_batching());
  while (!batched.done()) {
    if (!batched.stage(service)) break;
    service.run_tick();
    batched.commit(service);
  }

  expect_same_result(batched.result(), stepped.result());
  EXPECT_EQ(batched.state().pose.position.x, stepped.state().pose.position.x);
  EXPECT_EQ(batched.state().pose.position.y, stepped.state().pose.position.y);
  EXPECT_EQ(batched.state().speed, stepped.state().speed);
}

TEST(SessionBatchingTest, IcoilSessionStageCommitReplaysStep) {
  il::IlPolicy policy = make_policy();

  world::ScenarioOptions opt;
  opt.generator = "perpendicular";
  opt.time_limit = 2.0;
  const world::Scenario scenario = world::make_scenario(opt, 3u);

  core::IcoilController stepped_ctrl(core::IcoilConfig(), policy);
  sim::Session stepped(scenario, stepped_ctrl, 5u);
  while (stepped.step() == sim::Session::Status::kRunning) {
  }

  il::BatchInferencer service(policy, 32);
  core::IcoilController batched_ctrl(core::IcoilConfig(), policy);
  sim::Session batched(scenario, batched_ctrl, 5u);
  ASSERT_TRUE(batched.supports_batching());
  while (!batched.done()) {
    if (!batched.stage(service)) break;
    service.run_tick();
    batched.commit(service);
  }

  expect_same_result(batched.result(), stepped.result());
  EXPECT_EQ(batched.state().pose.position.x, stepped.state().pose.position.x);
  EXPECT_EQ(batched.state().pose.position.y, stepped.state().pose.position.y);
  EXPECT_EQ(batched.state().speed, stepped.state().speed);
  EXPECT_GT(service.stats().ticks, 0u);
}

// Two interleaved sessions sharing one service must still replay their
// solo runs exactly — the batch rows of other sessions cannot bleed in.
TEST(SessionBatchingTest, InterleavedSessionsMatchSoloRuns) {
  il::IlPolicy policy = make_policy();

  world::ScenarioOptions opt;
  opt.time_limit = 3.0;
  const world::Scenario sa = world::make_scenario(opt, 11u);
  const world::Scenario sb = world::make_scenario(opt, 12u);

  core::IlController solo_a_ctrl(policy), solo_b_ctrl(policy);
  sim::Session solo_a(sa, solo_a_ctrl, 1u);
  sim::Session solo_b(sb, solo_b_ctrl, 2u);
  while (solo_a.step() == sim::Session::Status::kRunning) {
  }
  while (solo_b.step() == sim::Session::Status::kRunning) {
  }

  il::BatchInferencer service(policy, 32);
  core::IlController ctrl_a(policy), ctrl_b(policy);
  sim::Session sess_a(sa, ctrl_a, 1u);
  sim::Session sess_b(sb, ctrl_b, 2u);
  while (!sess_a.done() || !sess_b.done()) {
    bool any = false;
    if (!sess_a.done()) any |= sess_a.stage(service);
    if (!sess_b.done()) any |= sess_b.stage(service);
    if (!any) break;
    service.run_tick();
    sess_a.commit(service);
    sess_b.commit(service);
  }

  expect_same_result(sess_a.result(), solo_a.result());
  expect_same_result(sess_b.result(), solo_b.result());
}

}  // namespace
}  // namespace icoil
