#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "mathkit/gemm.hpp"
#include "mathkit/ldlt.hpp"
#include "mathkit/matrix.hpp"
#include "mathkit/qp.hpp"
#include "mathkit/rng.hpp"
#include "mathkit/stats.hpp"
#include "mathkit/table.hpp"

namespace icoil::math {
namespace {

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, InitializerListAndAccess) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Matrix d = Matrix::diagonal({2, 3});
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  const Matrix tt = t.transpose();
  EXPECT_DOUBLE_EQ(tt(1, 2), 6.0);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, ApplyMatchesMultiply) {
  const Matrix a{{1, 2, 0}, {0, -1, 3}};
  const std::vector<double> x{1, 2, 3};
  const auto y = a.apply(x);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(MatrixTest, ApplyTransposeMatchesTransposeApply) {
  const Matrix a{{1, 2, 0}, {0, -1, 3}};
  const std::vector<double> x{2, -1};
  const auto y1 = a.apply_transpose(x);
  const auto y2 = a.transpose().apply(x);
  ASSERT_EQ(y1.size(), y2.size());
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(MatrixTest, SetBlock) {
  Matrix m(4, 4);
  m.set_block(1, 1, Matrix{{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(m(2, 2), 4.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, VectorHelpers) {
  const std::vector<double> a{1, -2, 3}, b{2, 2, 2};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 3.0);
  EXPECT_NEAR(norm2(b), std::sqrt(12.0), 1e-12);
  EXPECT_DOUBLE_EQ(add(a, b)[1], 0.0);
  EXPECT_DOUBLE_EQ(sub(a, b)[0], -1.0);
  EXPECT_DOUBLE_EQ(scale(a, -1.0)[2], -3.0);
}

// ------------------------------------------------------------------ LDLT

TEST(LdltTest, SolvesSpdSystem) {
  const Matrix m{{4, 1, 0}, {1, 3, -1}, {0, -1, 2}};
  const std::vector<double> b{1, 2, 3};
  const auto x = solve_spd(m, b);
  ASSERT_TRUE(x.has_value());
  const auto r = m.apply(*x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(r[i], b[i], 1e-9);
}

TEST(LdltTest, FailsOnSingular) {
  const Matrix m{{1, 1}, {1, 1}};
  EXPECT_FALSE(Ldlt::factorize(m).has_value());
}

TEST(LdltTest, FailsOnNonSquare) {
  const Matrix m(2, 3);
  EXPECT_FALSE(Ldlt::factorize(m).has_value());
}

TEST(LdltTest, HandlesIndefiniteQuasiDefinite) {
  // Symmetric quasi-definite (positive then negative block) still factors.
  const Matrix m{{2, 1}, {1, -3}};
  const auto f = Ldlt::factorize(m);
  ASSERT_TRUE(f.has_value());
  const std::vector<double> b{1, 1};
  const auto x = f->solve(b);
  const auto r = m.apply(x);
  EXPECT_NEAR(r[0], 1.0, 1e-9);
  EXPECT_NEAR(r[1], 1.0, 1e-9);
}

class LdltRandomSpd : public ::testing::TestWithParam<int> {};

TEST_P(LdltRandomSpd, ResidualSmall) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const std::size_t n = 3 + static_cast<std::size_t>(GetParam()) % 8;
  // A^T A + I is SPD.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  Matrix m = a.transpose() * a;
  for (std::size_t i = 0; i < n; ++i) m(i, i) += 1.0;
  std::vector<double> b(n);
  for (double& v : b) v = rng.normal();
  const auto x = solve_spd(m, b);
  ASSERT_TRUE(x.has_value());
  const auto r = sub(m.apply(*x), b);
  EXPECT_LT(norm_inf(r), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, LdltRandomSpd, ::testing::Range(0, 20));

// -------------------------------------------------------------------- QP

TEST(QpTest, UnconstrainedQuadratic) {
  // min 0.5 x^T I x - [1,2]^T x  ->  x = (1, 2)
  QpProblem p;
  p.p = Matrix::identity(2);
  p.q = {-1, -2};
  p.a = Matrix(0, 2);
  const QpResult r = QpSolver().solve(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 2.0, 1e-3);
}

TEST(QpTest, BoxConstrainedProjectsOntoBounds) {
  // min (x-5)^2 s.t. x <= 1
  QpProblem p;
  p.p = Matrix{{2}};
  p.q = {-10};
  p.a = Matrix{{1}};
  p.l = {-kQpInf};
  p.u = {1.0};
  const QpResult r = QpSolver().solve(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
}

TEST(QpTest, EqualityConstraint) {
  // min x^2 + y^2 s.t. x + y = 2 -> (1, 1)
  QpProblem p;
  p.p = Matrix::identity(2) * 2.0;
  p.q = {0, 0};
  p.a = Matrix{{1, 1}};
  p.l = {2.0};
  p.u = {2.0};
  const QpResult r = QpSolver().solve(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(QpTest, ActiveInequalityMixesWithEquality) {
  // min (x-3)^2 + (y+1)^2  s.t. x + y = 1, y >= 0  ->  x = 1, y = 0.
  QpProblem p;
  p.p = Matrix::identity(2) * 2.0;
  p.q = {-6.0, 2.0};
  p.a = Matrix{{1, 1}, {0, 1}};
  p.l = {1.0, 0.0};
  p.u = {1.0, kQpInf};
  const QpResult r = QpSolver().solve(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 1.0, 5e-3);
  EXPECT_NEAR(r.x[1], 0.0, 5e-3);
}

TEST(QpTest, WarmStartReducesIterations) {
  QpProblem p;
  p.p = Matrix::identity(4) * 2.0;
  p.q = {-1, -2, -3, -4};
  p.a = Matrix::identity(4);
  p.l = {0, 0, 0, 0};
  p.u = {1, 1, 1, 1};
  QpSolver solver;
  const QpResult cold = solver.solve(p);
  ASSERT_TRUE(cold.ok());
  const QpResult warm = solver.solve(p, &cold.x, &cold.y);
  ASSERT_TRUE(warm.ok());
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(QpTest, RejectsInvalidProblem) {
  QpProblem p;  // empty everything but mismatched bounds
  p.p = Matrix::identity(2);
  p.q = {0, 0};
  p.a = Matrix{{1, 0}};
  p.l = {1.0};
  p.u = {0.0};  // l > u
  const QpResult r = QpSolver().solve(p);
  EXPECT_EQ(r.status, QpStatus::kInvalidProblem);
}

TEST(QpTest, SolutionSatisfiesConstraints) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal() * 0.3;
    QpProblem p;
    p.p = a.transpose() * a;
    for (std::size_t i = 0; i < n; ++i) p.p(i, i) += 1.0;
    p.q.assign(n, 0.0);
    for (double& v : p.q) v = rng.normal();
    p.a = Matrix::identity(n);
    p.l.assign(n, -1.0);
    p.u.assign(n, 1.0);
    const QpResult r = QpSolver().solve(p);
    ASSERT_TRUE(r.ok());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(r.x[i], -1.0 - 1e-3);
      EXPECT_LE(r.x[i], 1.0 + 1e-3);
    }
  }
}

TEST(QpTest, ObjectiveNotWorseThanFeasibleGuess) {
  // Compare solver objective against an arbitrary feasible point.
  QpProblem p;
  p.p = Matrix{{2, 0}, {0, 4}};
  p.q = {-2, -8};
  p.a = Matrix::identity(2);
  p.l = {0, 0};
  p.u = {10, 10};
  const QpResult r = QpSolver().solve(p);
  ASSERT_TRUE(r.ok());
  const std::vector<double> guess{0.5, 0.5};
  const double guess_obj = 0.5 * dot(guess, p.p.apply(guess)) + dot(p.q, guess);
  EXPECT_LE(r.objective, guess_obj + 1e-6);
}

// ----------------------------------------------------------------- stats

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, MergeMatchesCombined) {
  RunningStats a, b, all;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const double v = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatsTest, EmptyStatsAreZero) {
  const RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(StatsTest, Mean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

// ------------------------------------------------------------------- RNG

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, ForkDiverges) {
  Rng a(9);
  Rng b = a.fork();
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.uniform() != b.uniform();
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

// ------------------------------------------------------------------ gemm

// The dispatched blocked kernel promises BIT-identical results to the
// reference triple loop (see gemm.hpp): exercise full tiles, ragged edges
// in both m and n, and the accumulate path, in both precisions, with exact
// equality.
template <typename T, typename GemmFn, typename NaiveFn>
void check_gemm_matches_naive(GemmFn gemm, NaiveFn naive) {
  Rng rng(2024);
  const std::size_t sizes[] = {1, 2, 5, 6, 7, 13, 16, 31, 37, 64, 70};
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = sizes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(std::size(sizes)) - 1))];
    const std::size_t n = sizes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(std::size(sizes)) - 1))];
    const std::size_t k = sizes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(std::size(sizes)) - 1))];
    const bool accumulate = trial % 2 == 1;

    std::vector<T> a(m * k), b(k * n);
    std::vector<T> c_blocked(m * n), c_naive(m * n);
    for (auto& v : a) v = static_cast<T>(rng.normal());
    for (auto& v : b) v = static_cast<T>(rng.normal());
    for (std::size_t i = 0; i < m * n; ++i)
      c_blocked[i] = c_naive[i] = static_cast<T>(rng.normal());

    gemm(m, n, k, a.data(), k, b.data(), n, c_blocked.data(), n, accumulate);
    naive(m, n, k, a.data(), k, b.data(), n, c_naive.data(), n, accumulate);

    for (std::size_t i = 0; i < m * n; ++i)
      ASSERT_EQ(c_blocked[i], c_naive[i])
          << "m=" << m << " n=" << n << " k=" << k
          << " accumulate=" << accumulate << " elem " << i;
  }
}

TEST(GemmTest, BlockedMatchesNaiveBitwiseF32) {
  check_gemm_matches_naive<float>(&gemm_f32, &gemm_naive_f32);
}

TEST(GemmTest, BlockedMatchesNaiveBitwiseF64) {
  check_gemm_matches_naive<double>(&gemm_f64, &gemm_naive_f64);
}

TEST(GemmTest, KernelNameIsKnown) {
  const std::string name = gemm_kernel_name();
  EXPECT_TRUE(name == "avx2" || name == "portable") << name;
}

TEST(MatrixTest, ElementwiseOpsMatchManualLoops) {
  Rng rng(9);
  Matrix a(5, 7), b(5, 7);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = rng.normal();
      b(i, j) = rng.normal();
    }
  const Matrix sum = a + b;
  const Matrix diff = a - b;
  const Matrix scaled = a * 2.5;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(sum(i, j), a(i, j) + b(i, j));
      EXPECT_EQ(diff(i, j), a(i, j) - b(i, j));
      EXPECT_EQ(scaled(i, j), a(i, j) * 2.5);
    }
}

TEST(MatrixTest, MultiplyMatchesNaiveGemm) {
  Rng rng(17);
  Matrix a(11, 23), b(23, 6);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = rng.normal();
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.normal();
  const Matrix c = a * b;
  std::vector<double> av(a.rows() * a.cols()), bv(b.rows() * b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) av[i * a.cols() + j] = a(i, j);
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) bv[i * b.cols() + j] = b(i, j);
  std::vector<double> cv(a.rows() * b.cols());
  gemm_naive_f64(a.rows(), b.cols(), a.cols(), av.data(), a.cols(), bv.data(),
                 b.cols(), cv.data(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j)
      EXPECT_EQ(c(i, j), cv[i * b.cols() + j]) << i << "," << j;
}

// ----------------------------------------------------------------- table

TEST(TableTest, PrintAlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row_numeric("b", {2.5}, 1);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvOutput) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

}  // namespace
}  // namespace icoil::math
