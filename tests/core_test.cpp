#include <gtest/gtest.h>

#include <cmath>

#include "core/co_controller.hpp"
#include "core/hsa.hpp"
#include "core/icoil_controller.hpp"
#include "core/il_controller.hpp"
#include "il/observation.hpp"

namespace icoil::core {
namespace {

// ------------------------------------------------------------------- HSA

TEST(HsaTest, InstantComplexityMatchesFormula) {
  HsaConfig cfg;
  cfg.horizon = 15;
  cfg.action_dim = 2;
  cfg.d0 = 1.2;
  Hsa hsa(cfg);
  // No obstacles: [H * Na]^3.5.
  EXPECT_NEAR(hsa.instant_complexity({}), std::pow(15.0 * 2.0, 3.5), 1e-6);
  // One obstacle exactly at D0 contributes e^0 = 1.
  EXPECT_NEAR(hsa.instant_complexity({1.2}), std::pow(15.0 * 3.0, 3.5), 1e-6);
  // A far obstacle contributes almost nothing.
  EXPECT_NEAR(hsa.instant_complexity({50.0}), std::pow(15.0 * 2.0, 3.5),
              std::pow(15.0 * 2.0, 3.5) * 0.01);
}

TEST(HsaTest, ComplexityIncreasesAsObstacleApproachesD0) {
  Hsa hsa;
  const double far = hsa.instant_complexity({8.0});
  const double mid = hsa.instant_complexity({3.0});
  const double close = hsa.instant_complexity({1.2});
  EXPECT_LT(far, mid);
  EXPECT_LT(mid, close);
}

TEST(HsaTest, UncertaintyIsWindowedMeanEntropy) {
  HsaConfig cfg;
  cfg.window = 3;
  Hsa hsa(cfg);
  hsa.push(1.0, {});
  hsa.push(2.0, {});
  EXPECT_NEAR(hsa.uncertainty(), 1.5, 1e-12);
  hsa.push(3.0, {});
  EXPECT_NEAR(hsa.uncertainty(), 2.0, 1e-12);
  hsa.push(4.0, {});  // evicts the 1.0
  EXPECT_NEAR(hsa.uncertainty(), 3.0, 1e-12);
  EXPECT_EQ(hsa.frames(), 3u);
}

TEST(HsaTest, ComplexityBaseNormalization) {
  HsaConfig cfg;
  Hsa hsa(cfg);
  EXPECT_NEAR(hsa.complexity_base(),
              std::pow(cfg.horizon * (cfg.action_dim + 1.0), 3.5), 1e-9);
  // With one obstacle pinned at d0 every frame, normalized complexity == 1.
  for (int i = 0; i < 5; ++i) hsa.push(0.5, {cfg.d0});
  EXPECT_NEAR(hsa.normalized_complexity(), 1.0, 1e-9);
}

TEST(HsaTest, RatioHighWhenUncertainAndEmpty) {
  Hsa hsa;
  // High entropy, no obstacles -> IL threatened, CO cheap -> large ratio.
  for (int i = 0; i < 5; ++i) hsa.push(2.0, {});
  const double open_ratio = hsa.ratio();
  hsa.reset();
  // Low entropy, three hugging obstacles -> small ratio (choose IL).
  for (int i = 0; i < 5; ++i) hsa.push(0.05, {1.2, 1.2, 1.0});
  EXPECT_LT(hsa.ratio(), open_ratio * 0.1);
}

TEST(HsaTest, ResetClearsWindows) {
  Hsa hsa;
  hsa.push(1.0, {2.0});
  hsa.reset();
  EXPECT_EQ(hsa.frames(), 0u);
  EXPECT_DOUBLE_EQ(hsa.uncertainty(), 0.0);
}

// ---------------------------------------------------------- ModeSwitcher

TEST(ModeSwitcherTest, SwitchesOnThreshold) {
  HsaConfig cfg;
  cfg.lambda = 1.0;
  cfg.guard_frames = 0;
  ModeSwitcher sw(cfg, Mode::kCo);
  EXPECT_EQ(sw.update(2.0), Mode::kCo);   // ratio > lambda -> CO
  EXPECT_EQ(sw.update(0.5), Mode::kIl);   // ratio <= lambda -> IL
  EXPECT_EQ(sw.update(2.0), Mode::kCo);
}

TEST(ModeSwitcherTest, GuardTimeHoldsMode) {
  HsaConfig cfg;
  cfg.lambda = 1.0;
  cfg.guard_frames = 5;
  ModeSwitcher sw(cfg, Mode::kCo);
  // First decision switches to IL (no guard on the first decision).
  EXPECT_EQ(sw.update(0.1), Mode::kIl);
  // Immediately demanding CO is held back for guard_frames frames.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(sw.update(10.0), Mode::kIl);
  EXPECT_EQ(sw.update(10.0), Mode::kCo);
}

TEST(ModeSwitcherTest, ResetRestoresInitial) {
  HsaConfig cfg;
  cfg.guard_frames = 0;
  ModeSwitcher sw(cfg, Mode::kCo);
  sw.update(0.0);
  EXPECT_EQ(sw.mode(), Mode::kIl);
  sw.reset(Mode::kCo);
  EXPECT_EQ(sw.mode(), Mode::kCo);
}

TEST(ModeSwitcherTest, ToString) {
  EXPECT_STREQ(to_string(Mode::kIl), "IL");
  EXPECT_STREQ(to_string(Mode::kCo), "CO");
}

TEST(ModeSwitcherTest, CounterSaturatesAtSentinel) {
  // Before any switch the counter sits at the named sentinel and must not
  // grow past it no matter how many frames elapse (overflow guard for long
  // episodes), while still allowing an immediate first switch.
  HsaConfig cfg;
  cfg.lambda = 1.0;
  cfg.guard_frames = 5;
  ModeSwitcher sw(cfg, Mode::kCo);
  EXPECT_EQ(sw.frames_since_switch(), ModeSwitcher::kNeverSwitched);
  for (int i = 0; i < 1000; ++i) sw.update(10.0);  // agrees with CO: no switch
  EXPECT_EQ(sw.frames_since_switch(), ModeSwitcher::kNeverSwitched);
  EXPECT_EQ(sw.update(0.1), Mode::kIl);  // first switch never guard-held
  EXPECT_EQ(sw.frames_since_switch(), 0);
  sw.reset(Mode::kCo);
  EXPECT_EQ(sw.frames_since_switch(), ModeSwitcher::kNeverSwitched);
}

TEST(HsaTest, ComplexityWellBehavedWithManyObstacles) {
  // Crowded generators put 8+ obstacles in the detector output; eq. (8)
  // must stay finite and strictly monotone in the obstacle count, with the
  // closed form ((Na + K) / (Na + 1))^3.5 when all K sit at D0.
  HsaConfig cfg;
  Hsa hsa(cfg);
  double prev = 0.0;
  for (int k = 1; k <= 12; ++k) {
    hsa.reset();
    const std::vector<double> at_d0(static_cast<std::size_t>(k), cfg.d0);
    hsa.push(0.3, at_d0);
    const double c = hsa.normalized_complexity();
    const double expected =
        std::pow((cfg.action_dim + k) / (cfg.action_dim + 1.0), 3.5);
    EXPECT_NEAR(c, expected, 1e-9) << k;
    EXPECT_TRUE(std::isfinite(c)) << k;
    EXPECT_GT(c, prev) << k;
    prev = c;
    // The switching ratio stays positive and finite: more obstacles push
    // toward IL smoothly instead of saturating.
    EXPECT_GT(hsa.ratio(), 0.0);
    EXPECT_TRUE(std::isfinite(hsa.ratio()));
  }
}

// ------------------------------------------------------------ controllers

il::IlPolicyConfig tiny_policy_config() {
  il::IlPolicyConfig cfg;
  cfg.bev_size = 16;
  cfg.conv_channels[0] = 4;
  cfg.conv_channels[1] = 4;
  cfg.conv_channels[2] = 8;
  cfg.fc_sizes[0] = 32;
  cfg.fc_sizes[1] = 16;
  cfg.fc_sizes[2] = 16;
  return cfg;
}

world::Scenario easy_scenario(std::uint64_t seed = 500) {
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  return world::make_scenario(opt, seed);
}

TEST(IlControllerTest, ProducesDiscretizedCommands) {
  il::IlPolicy policy(tiny_policy_config());
  IlController controller(policy);
  EXPECT_EQ(controller.name(), "IL");
  const world::Scenario sc = easy_scenario();
  controller.reset(sc);
  world::World world(sc);
  vehicle::State state;
  state.pose = sc.start_pose;
  math::Rng rng(1);
  const vehicle::Command cmd = controller.act(world, state, rng);
  // The command is one of the 15 representative commands.
  const int cls = il::ActionDiscretizer::to_class(cmd);
  const vehicle::Command expected = il::ActionDiscretizer::to_command(cls);
  EXPECT_DOUBLE_EQ(cmd.steer, expected.steer);
  EXPECT_EQ(controller.last_frame().mode, Mode::kIl);
  EXPECT_GT(controller.last_frame().entropy, 0.0);
}

TEST(CoControllerTest, PlansAndDrivesTowardGoal) {
  CoController controller(co::CoPlannerConfig{}, vehicle::VehicleParams{});
  EXPECT_EQ(controller.name(), "CO");
  const world::Scenario sc = easy_scenario();
  controller.reset(sc);
  world::World world(sc);
  vehicle::State state;
  state.pose = sc.start_pose;
  math::Rng rng(1);
  const vehicle::Command cmd = controller.act(world, state, rng);
  // The reference is planned lazily on the first (budgeted) frame.
  EXPECT_TRUE(controller.planner().has_reference());
  EXPECT_GT(cmd.throttle, 0.0);  // starts moving
  EXPECT_EQ(controller.last_frame().mode, Mode::kCo);
}

TEST(IcoilControllerTest, StartsInCoAndTracksHsa) {
  il::IlPolicy policy(tiny_policy_config());
  IcoilController controller(IcoilConfig{}, policy);
  EXPECT_EQ(controller.name(), "iCOIL");
  const world::Scenario sc = easy_scenario();
  controller.reset(sc);
  world::World world(sc);
  vehicle::State state;
  state.pose = sc.start_pose;
  math::Rng rng(1);
  controller.act(world, state, rng);
  const FrameInfo& frame = controller.last_frame();
  // Telemetry populated.
  EXPECT_GT(frame.entropy, 0.0);
  EXPECT_GT(frame.uncertainty, 0.0);
  EXPECT_GT(frame.complexity, 0.0);
  EXPECT_GE(frame.ratio, 0.0);
  EXPECT_EQ(controller.hsa().frames(), 1u);
}

TEST(IcoilControllerTest, UntrainedPolicyKeepsCoMode) {
  // An untrained policy outputs near-uniform distributions -> high entropy
  // -> large ratio in open space -> CO stays in control.
  il::IlPolicy policy(tiny_policy_config());
  IcoilConfig cfg;
  IcoilController controller(cfg, policy);
  const world::Scenario sc = easy_scenario();
  controller.reset(sc);
  world::World world(sc);
  vehicle::State state;
  state.pose = sc.start_pose;  // spawn region: far from obstacles
  math::Rng rng(1);
  for (int i = 0; i < 10; ++i) controller.act(world, state, rng);
  EXPECT_EQ(controller.mode(), Mode::kCo);
}

TEST(IcoilControllerTest, ResetClearsState) {
  il::IlPolicy policy(tiny_policy_config());
  IcoilController controller(IcoilConfig{}, policy);
  const world::Scenario sc = easy_scenario();
  controller.reset(sc);
  world::World world(sc);
  vehicle::State state;
  state.pose = sc.start_pose;
  math::Rng rng(1);
  for (int i = 0; i < 5; ++i) controller.act(world, state, rng);
  controller.reset(sc);
  EXPECT_EQ(controller.hsa().frames(), 0u);
  EXPECT_EQ(controller.mode(), Mode::kCo);
}

}  // namespace
}  // namespace icoil::core
