#include <gtest/gtest.h>

#include <cmath>

#include "geom/angles.hpp"
#include "vehicle/kinematics.hpp"

namespace icoil::vehicle {
namespace {

BicycleModel make_model() { return BicycleModel{}; }

TEST(ParamsTest, TurnRadiusMatchesFormula) {
  VehicleParams p;
  EXPECT_NEAR(p.min_turn_radius(), p.wheelbase / std::tan(p.max_steer), 1e-12);
  EXPECT_GT(p.min_turn_radius(), 2.0);
}

TEST(CommandTest, ClampedLimitsChannels) {
  const Command c{2.0, -1.0, 3.0, true};
  const Command k = c.clamped();
  EXPECT_DOUBLE_EQ(k.throttle, 1.0);
  EXPECT_DOUBLE_EQ(k.brake, 0.0);
  EXPECT_DOUBLE_EQ(k.steer, 1.0);
  EXPECT_TRUE(k.reverse);
}

TEST(BicycleTest, StraightLineIntegration) {
  const BicycleModel m = make_model();
  State s;
  const Command c{1.0, 0.0, 0.0, false};
  for (int i = 0; i < 100; ++i) s = m.step(s, c, 0.05);
  EXPECT_GT(s.x(), 3.0);
  EXPECT_NEAR(s.y(), 0.0, 1e-9);
  EXPECT_NEAR(s.heading(), 0.0, 1e-9);
  EXPECT_GT(s.speed, 0.0);
}

TEST(BicycleTest, SpeedSaturatesAtForwardCap) {
  const BicycleModel m = make_model();
  State s;
  const Command c{1.0, 0.0, 0.0, false};
  for (int i = 0; i < 400; ++i) s = m.step(s, c, 0.05);
  EXPECT_NEAR(s.speed, m.params().max_speed_fwd, 1e-6);
}

TEST(BicycleTest, ReverseGearDrivesBackwards) {
  const BicycleModel m = make_model();
  State s;
  const Command c{1.0, 0.0, 0.0, true};
  for (int i = 0; i < 100; ++i) s = m.step(s, c, 0.05);
  EXPECT_LT(s.x(), -1.0);
  EXPECT_LT(s.speed, 0.0);
  EXPECT_GE(s.speed, -m.params().max_speed_rev - 1e-9);
}

TEST(BicycleTest, LeftSteerTurnsLeft) {
  const BicycleModel m = make_model();
  State s;
  const Command c{0.8, 0.0, 1.0, false};
  for (int i = 0; i < 100; ++i) s = m.step(s, c, 0.05);
  EXPECT_GT(s.heading(), 0.2);
  EXPECT_GT(s.y(), 0.0);
}

TEST(BicycleTest, ReverseWithLeftSteerTurnsRight) {
  // Backing up with wheels left swings the heading clockwise.
  const BicycleModel m = make_model();
  State s;
  const Command c{0.8, 0.0, 1.0, true};
  for (int i = 0; i < 100; ++i) s = m.step(s, c, 0.05);
  EXPECT_LT(s.heading(), -0.1);
}

TEST(BicycleTest, BrakeStopsAndDoesNotReverseDirection) {
  const BicycleModel m = make_model();
  State s;
  s.speed = 2.0;
  const Command brake{0.0, 1.0, 0.0, false};
  State prev = s;
  for (int i = 0; i < 200; ++i) {
    s = m.step(s, brake, 0.05);
    EXPECT_LE(s.speed, prev.speed + 1e-9);
    prev = s;
  }
  EXPECT_NEAR(s.speed, 0.0, 1e-6);
  EXPECT_GE(s.speed, 0.0);
}

TEST(BicycleTest, DragDecaysCoastingSpeed) {
  const BicycleModel m = make_model();
  State s;
  s.speed = 2.0;
  for (int i = 0; i < 100; ++i) s = m.step(s, Command::coast(), 0.05);
  EXPECT_LT(s.speed, 1.0);
  EXPECT_GE(s.speed, 0.0);
}

TEST(BicycleTest, TurningRadiusMatchesAckermann) {
  // At constant speed and steer, the vehicle traces a circle of radius
  // L / tan(delta).
  const BicycleModel m = make_model();
  const double delta_frac = 0.7;
  const double radius =
      m.params().wheelbase / std::tan(delta_frac * m.params().max_steer);
  State s;
  s.speed = 1.0;
  // Use planner stepping to hold speed exactly.
  const PlannerControl u{0.0, delta_frac * m.params().max_steer};
  double prev_heading = 0.0;
  double total_arc = 0.0;
  geom::Vec2 prev_pos = s.pose.position;
  // Drive a quarter circle.
  while (std::abs(geom::angle_diff(s.pose.heading, geom::kPi / 2.0)) > 0.02 &&
         total_arc < 50.0) {
    // counteract drag to hold speed
    PlannerControl hold = u;
    hold.accel = m.params().rolling_drag * s.speed;
    s = m.step_planner(s, hold, 0.01);
    total_arc += geom::distance(prev_pos, s.pose.position);
    prev_pos = s.pose.position;
    prev_heading = s.pose.heading;
  }
  (void)prev_heading;
  EXPECT_NEAR(total_arc, radius * geom::kPi / 2.0, 0.15);
}

TEST(BicycleTest, PlannerStepMatchesCommandStepQualitatively) {
  const BicycleModel m = make_model();
  State s1, s2;
  const Command c{0.5, 0.0, 0.5, false};
  const PlannerControl u{0.5 * m.params().max_accel,
                         0.5 * m.params().max_steer};
  for (int i = 0; i < 40; ++i) {
    s1 = m.step(s1, c, 0.05);
    s2 = m.step_planner(s2, u, 0.05);
  }
  // Same inputs expressed two ways; drag applies to both.
  EXPECT_NEAR(s1.x(), s2.x(), 0.05);
  EXPECT_NEAR(s1.heading(), s2.heading(), 0.05);
}

TEST(BicycleTest, ToCommandAcceleratesForward) {
  const BicycleModel m = make_model();
  State s;
  const Command c = m.to_command(s, {1.0, 0.2});
  EXPECT_GT(c.throttle, 0.0);
  EXPECT_DOUBLE_EQ(c.brake, 0.0);
  EXPECT_FALSE(c.reverse);
  EXPECT_NEAR(c.steer, 0.2 / m.params().max_steer, 1e-9);
}

TEST(BicycleTest, ToCommandBrakesWhenOpposingMotion) {
  const BicycleModel m = make_model();
  State s;
  s.speed = 2.0;
  const Command c = m.to_command(s, {-3.0, 0.0});
  EXPECT_GT(c.brake, 0.0);
  EXPECT_DOUBLE_EQ(c.throttle, 0.0);
}

TEST(BicycleTest, ToCommandReverseFromStandstill) {
  const BicycleModel m = make_model();
  State s;
  const Command c = m.to_command(s, {-1.0, 0.0});
  EXPECT_TRUE(c.reverse);
  EXPECT_GT(c.throttle, 0.0);
}

TEST(BicycleTest, FootprintCentredAheadOfRearAxle) {
  const BicycleModel m = make_model();
  State s;
  const geom::Obb fp = m.footprint(s);
  EXPECT_NEAR(fp.center.x, m.params().center_offset, 1e-12);
  EXPECT_NEAR(fp.length(), m.params().length, 1e-12);
  EXPECT_NEAR(fp.width(), m.params().width, 1e-12);
  EXPECT_TRUE(fp.contains({m.params().center_offset, 0.0}));
}

TEST(BicycleTest, FootprintFollowsHeading) {
  const BicycleModel m = make_model();
  geom::Pose2 pose{0, 0, geom::kPi / 2.0};
  const geom::Obb fp = m.footprint(pose);
  EXPECT_NEAR(fp.center.x, 0.0, 1e-9);
  EXPECT_NEAR(fp.center.y, m.params().center_offset, 1e-9);
}

TEST(BicycleTest, SubstepsMatchFineIntegration) {
  // One big dt must agree closely with many small steps.
  const BicycleModel m = make_model();
  State coarse, fine;
  const Command c{0.7, 0.0, 0.6, false};
  coarse = m.step(coarse, c, 0.5);
  for (int i = 0; i < 50; ++i) fine = m.step(fine, c, 0.01);
  EXPECT_NEAR(coarse.x(), fine.x(), 0.02);
  EXPECT_NEAR(coarse.y(), fine.y(), 0.02);
  EXPECT_NEAR(coarse.heading(), fine.heading(), 0.02);
  EXPECT_NEAR(coarse.speed, fine.speed, 0.02);
}

TEST(BicycleTest, GearBlocksPushThroughZeroForward) {
  // In forward gear with positive throttle from reverse motion, the vehicle
  // first brakes toward zero rather than instantly accelerating forward.
  const BicycleModel m = make_model();
  State s;
  s.speed = -1.0;
  const Command c{1.0, 0.0, 0.0, false};
  const State next = m.step(s, c, 0.05);
  EXPECT_GE(next.speed, s.speed);
  EXPECT_LE(next.speed, m.params().max_speed_fwd);
}

}  // namespace
}  // namespace icoil::vehicle
