#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "nn/tensor.hpp"

namespace icoil::nn {
namespace {

// -------------------------------------------------------------- Tensor

TEST(TensorTest, ShapeAndFill) {
  Tensor t({2, 3, 4, 4});
  EXPECT_EQ(t.size(), 96u);
  t.fill(2.5f);
  EXPECT_FLOAT_EQ(t[95], 2.5f);
  t.zero();
  EXPECT_FLOAT_EQ(t[0], 0.0f);
}

TEST(TensorTest, At4Indexing) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  // Last element of the buffer.
  EXPECT_FLOAT_EQ(t[t.size() - 1], 7.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  t.reshape({4, 1});
  EXPECT_FLOAT_EQ(t.at2(2, 0), 3.0f);
}

// ------------------------------------------- numerical gradient checking

/// Central-difference check of dL/d(input) and dL/d(params) for one layer,
/// with L = sum(output * weights) for fixed random weights.
void check_layer_gradients(Layer& layer, const std::vector<int>& input_shape,
                           double tol = 2e-2) {
  math::Rng rng(99);
  layer.init(rng);

  Tensor input(input_shape);
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.normal(0.0, 1.0));

  // Fixed projection so L is a scalar function.
  Tensor out0 = layer.forward(input, /*training=*/true);
  Tensor proj(out0.shape());
  for (std::size_t i = 0; i < proj.size(); ++i)
    proj[i] = static_cast<float>(rng.normal(0.0, 1.0));

  auto loss_of = [&](const Tensor& in) {
    Tensor out = layer.forward(in, /*training=*/true);
    double acc = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      acc += static_cast<double>(out[i]) * proj[i];
    return acc;
  };

  // Analytic gradients.
  for (Param* p : layer.params()) p->grad.zero();
  layer.forward(input, true);
  const Tensor grad_in = layer.backward(proj);

  // Input gradient check (sample a few coordinates).
  const double eps = 1e-3;
  for (std::size_t i = 0; i < input.size();
       i += std::max<std::size_t>(1, input.size() / 7)) {
    Tensor plus = input, minus = input;
    plus[i] += static_cast<float>(eps);
    minus[i] -= static_cast<float>(eps);
    const double num = (loss_of(plus) - loss_of(minus)) / (2 * eps);
    EXPECT_NEAR(grad_in[i], num, tol * std::max(1.0, std::abs(num)))
        << "input grad at " << i;
  }

  // Parameter gradient check.
  for (Param* p : layer.params()) {
    // Re-run analytic pass to fill p->grad (zeroed above, already filled).
    for (std::size_t i = 0; i < p->value.size();
         i += std::max<std::size_t>(1, p->value.size() / 5)) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(eps);
      const double lp = loss_of(input);
      p->value[i] = saved - static_cast<float>(eps);
      const double lm = loss_of(input);
      p->value[i] = saved;
      const double num = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p->grad[i], num, tol * std::max(1.0, std::abs(num)))
          << layer.name() << " param grad at " << i;
    }
  }
}

TEST(GradCheckTest, Dense) {
  Dense layer(6, 4);
  check_layer_gradients(layer, {2, 6});
}

TEST(GradCheckTest, Conv2D) {
  Conv2D layer(2, 3, 3, 1);
  check_layer_gradients(layer, {2, 2, 6, 6});
}

TEST(GradCheckTest, ReLU) {
  ReLU layer;
  check_layer_gradients(layer, {2, 8});
}

TEST(GradCheckTest, MaxPool) {
  MaxPool2D layer;
  check_layer_gradients(layer, {1, 2, 6, 6});
}

TEST(GradCheckTest, Softmax) {
  Softmax layer;
  check_layer_gradients(layer, {3, 5});
}

TEST(GradCheckTest, CrossEntropyAgainstNumerical) {
  math::Rng rng(5);
  Tensor logits({3, 4});
  for (std::size_t i = 0; i < logits.size(); ++i)
    logits[i] = static_cast<float>(rng.normal());
  const std::vector<int> labels{1, 3, 0};
  const auto res = CrossEntropyLoss::compute(logits, labels);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor plus = logits, minus = logits;
    plus[i] += static_cast<float>(eps);
    minus[i] -= static_cast<float>(eps);
    const double num =
        (CrossEntropyLoss::compute(plus, labels).loss -
         CrossEntropyLoss::compute(minus, labels).loss) /
        (2 * eps);
    EXPECT_NEAR(res.grad[i], num, 1e-3);
  }
}

// ---------------------------------------------------------------- layers

TEST(LayerTest, ConvOutputShapeSamePadding) {
  Conv2D conv(3, 8, 3, 1);
  math::Rng rng(1);
  conv.init(rng);
  Tensor in({2, 3, 16, 16});
  const Tensor out = conv.forward(in, false);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 8, 16, 16}));
}

TEST(LayerTest, ConvKnownKernel) {
  // Identity-ish kernel: single 1 at the center of a 3x3, one channel.
  Conv2D conv(1, 1, 3, 1);
  for (Param* p : conv.params()) p->value.zero();
  conv.params()[0]->value.at4(0, 0, 1, 1) = 1.0f;  // center tap
  Tensor in({1, 1, 4, 4});
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<float>(i);
  const Tensor out = conv.forward(in, false);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_FLOAT_EQ(out[i], in[i]);
}

TEST(LayerTest, ReluClampsNegatives) {
  ReLU relu;
  Tensor in = Tensor::from_data({1, 4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  const Tensor out = relu.forward(in, false);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(LayerTest, MaxPoolPicksMaxAndHalvesSize) {
  MaxPool2D pool;
  Tensor in({1, 1, 4, 4});
  in.at4(0, 0, 0, 0) = 5.0f;
  in.at4(0, 0, 2, 3) = 7.0f;
  const Tensor out = pool.forward(in, false);
  EXPECT_EQ(out.shape(), (std::vector<int>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 7.0f);
}

TEST(LayerTest, FlattenRoundTrip) {
  Flatten flat;
  Tensor in({2, 3, 4, 4});
  const Tensor out = flat.forward(in, true);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 48}));
  const Tensor back = flat.backward(out);
  EXPECT_EQ(back.shape(), in.shape());
}

TEST(LayerTest, SoftmaxRowsSumToOne) {
  Softmax sm;
  math::Rng rng(2);
  Tensor in({4, 6});
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<float>(rng.normal(0, 3));
  const Tensor out = sm.forward(in, false);
  for (int r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 6; ++c) {
      EXPECT_GE(out.at2(r, c), 0.0f);
      sum += out.at2(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(LayerTest, SoftmaxRowNumericalStability) {
  const float big[3] = {1000.0f, 1001.0f, 999.0f};
  const auto p = softmax_row(big, 3);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_GT(p[1], p[0]);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0f, 1e-5f);
}

TEST(LossTest, EntropyUniformIsLogM) {
  const std::vector<float> uniform(8, 1.0f / 8.0f);
  EXPECT_NEAR(entropy(uniform), std::log(8.0), 1e-6);
  const std::vector<float> onehot{1.0f, 0.0f, 0.0f};
  EXPECT_NEAR(entropy(onehot), 0.0, 1e-9);
}

TEST(LossTest, AccuracyCountsArgmax) {
  Tensor logits = Tensor::from_data({2, 3}, {0.1f, 0.9f, 0.0f,   // -> 1
                                             0.9f, 0.0f, 0.1f});  // -> 0
  EXPECT_DOUBLE_EQ(CrossEntropyLoss::accuracy(logits, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CrossEntropyLoss::accuracy(logits, {1, 2}), 0.5);
}

// ------------------------------------------------------------ Sequential

Sequential make_mlp(int in, int hidden, int out) {
  Sequential net;
  net.add<Dense>(in, hidden);
  net.add<ReLU>();
  net.add<Dense>(hidden, out);
  return net;
}

TEST(SequentialTest, ParamCollection) {
  Sequential net = make_mlp(4, 8, 3);
  EXPECT_EQ(net.params().size(), 4u);  // two dense layers, weight+bias each
  EXPECT_EQ(net.num_parameters(), 4u * 8u + 8u + 8u * 3u + 3u);
}

TEST(SequentialTest, DeterministicInit) {
  Sequential a = make_mlp(4, 8, 3);
  Sequential b = make_mlp(4, 8, 3);
  math::Rng r1(5), r2(5);
  a.init(r1);
  b.init(r2);
  const auto pa = a.params();
  const auto pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t j = 0; j < pa[i]->value.size(); ++j)
      EXPECT_FLOAT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(TrainingTest, SgdReducesLossOnLinearlySeparableData) {
  // Two gaussian blobs -> binary classification via tiny MLP.
  Sequential net = make_mlp(2, 16, 2);
  math::Rng rng(3);
  net.init(rng);

  const int n = 64;
  Tensor x({n, 2});
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    y[static_cast<std::size_t>(i)] = cls;
    x.at2(i, 0) = static_cast<float>(rng.normal(cls ? 2.0 : -2.0, 0.5));
    x.at2(i, 1) = static_cast<float>(rng.normal(cls ? -1.0 : 1.0, 0.5));
  }

  Sgd opt(net.params(), 0.05);
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int epoch = 0; epoch < 60; ++epoch) {
    opt.zero_grad();
    const Tensor logits = net.forward(x, true);
    const auto ce = CrossEntropyLoss::compute(logits, y);
    net.backward(ce.grad);
    opt.step();
    if (epoch == 0) first_loss = ce.loss;
    last_loss = ce.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.3f);
  EXPECT_GT(CrossEntropyLoss::accuracy(net.forward(x, false), y), 0.95);
}

TEST(TrainingTest, AdamConvergesFasterThanHighLrIsStable) {
  Sequential net = make_mlp(2, 8, 2);
  math::Rng rng(4);
  net.init(rng);
  const int n = 32;
  Tensor x({n, 2});
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    y[static_cast<std::size_t>(i)] = cls;
    x.at2(i, 0) = static_cast<float>(rng.normal(cls ? 1.5 : -1.5, 0.4));
    x.at2(i, 1) = static_cast<float>(rng.normal(0.0, 0.4));
  }
  Adam opt(net.params(), 1e-2);
  float last = 0.0f;
  for (int epoch = 0; epoch < 50; ++epoch) {
    opt.zero_grad();
    const auto ce = CrossEntropyLoss::compute(net.forward(x, true), y);
    net.backward(ce.grad);
    opt.step();
    last = ce.loss;
    ASSERT_FALSE(std::isnan(last));
  }
  EXPECT_LT(last, 0.2f);
}

// ----------------------------------------------------------- serialization

TEST(SerializeTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "icoil_nn_test.bin").string();
  Sequential a = make_mlp(3, 5, 2);
  math::Rng rng(7);
  a.init(rng);
  ASSERT_TRUE(save_params(a, path));

  Sequential b = make_mlp(3, 5, 2);
  math::Rng rng2(123);
  b.init(rng2);
  ASSERT_TRUE(load_params(b, path));

  Tensor x = Tensor::from_data({1, 3}, {0.3f, -0.7f, 1.1f});
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
  std::filesystem::remove(path);
}

TEST(SerializeTest, LoadRejectsArchitectureMismatch) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "icoil_nn_bad.bin").string();
  Sequential a = make_mlp(3, 5, 2);
  math::Rng rng(7);
  a.init(rng);
  ASSERT_TRUE(save_params(a, path));
  Sequential b = make_mlp(3, 6, 2);  // different hidden width
  EXPECT_FALSE(load_params(b, path));
  std::filesystem::remove(path);
}

TEST(SerializeTest, LoadRejectsMissingFile) {
  Sequential a = make_mlp(2, 2, 2);
  EXPECT_FALSE(load_params(a, "/nonexistent/path/net.bin"));
}

// ---------------------------------------------------- forward_eval parity

// The allocation-free eval path promises BIT-identical outputs to
// forward(., training=false) for every layer — exact equality, no
// tolerance.
Tensor random_tensor(std::vector<int> shape, math::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.normal());
  return t;
}

void expect_eval_matches_forward(Layer& layer, const Tensor& in,
                                 const char* what) {
  const Tensor ref = layer.forward(in, false);
  Tensor out;
  layer.forward_eval(in, out);
  ASSERT_EQ(out.shape(), ref.shape()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(out[i], ref[i]) << what << " elem " << i;
  // Second pass through the same layer reuses its scratch buffers — the
  // reuse must not leak state between calls.
  Tensor again;
  layer.forward_eval(in, again);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(again[i], ref[i]) << what << " repeat elem " << i;
}

TEST(EvalPathTest, EachLayerMatchesForward) {
  math::Rng rng(31);
  Tensor img = random_tensor({3, 4, 10, 10}, rng);

  Conv2D conv(4, 6, 3, 1);
  conv.init(rng);
  expect_eval_matches_forward(conv, img, "conv");

  ReLU relu;
  expect_eval_matches_forward(relu, img, "relu");

  MaxPool2D pool;
  expect_eval_matches_forward(pool, img, "pool");

  Flatten flatten;
  expect_eval_matches_forward(flatten, img, "flatten");

  Dense dense(12, 5);
  dense.init(rng);
  Tensor rows = random_tensor({3, 12}, rng);
  expect_eval_matches_forward(dense, rows, "dense");

  Softmax softmax;
  expect_eval_matches_forward(softmax, rows, "softmax");
}

TEST(EvalPathTest, DenseRepacksAfterTrainingStep) {
  math::Rng rng(5);
  Dense dense(8, 4);
  dense.init(rng);
  Tensor in = random_tensor({2, 8}, rng);

  Tensor out;
  dense.forward_eval(in, out);  // packs the transposed weights

  // Perturb the weights the way training would (forward+backward), then
  // eval again: the pack must be refreshed, not stale.
  Tensor up = dense.forward(in, true);
  Tensor grad(up.shape());
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] = 0.25f;
  dense.backward(grad);
  for (auto* p : dense.params())
    for (std::size_t i = 0; i < p->value.size(); ++i)
      p->value[i] -= 0.1f * p->grad[i];

  const Tensor ref = dense.forward(in, false);
  dense.forward_eval(in, out);
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(out[i], ref[i]);
}

TEST(EvalPathTest, SequentialMatchesForwardThroughWorkspace) {
  math::Rng rng(77);
  Sequential net;
  net.add<Conv2D>(2, 4, 3, 1);
  net.add<ReLU>();
  net.add<MaxPool2D>();
  net.add<Flatten>();
  net.add<Dense>(4 * 6 * 6, 10);
  net.add<Softmax>();
  net.init(rng);

  EvalWorkspace ws;
  for (int pass = 0; pass < 3; ++pass) {
    const Tensor in = random_tensor({2, 2, 12, 12}, rng);
    const Tensor ref = net.forward(in, false);
    const Tensor& out = net.forward_eval(in, ws);
    ASSERT_EQ(out.shape(), ref.shape());
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_EQ(out[i], ref[i]) << "pass " << pass << " elem " << i;
  }
}

}  // namespace
}  // namespace icoil::nn
