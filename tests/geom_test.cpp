#include <gtest/gtest.h>

#include <cmath>

#include "geom/aabb.hpp"
#include "geom/angles.hpp"
#include "geom/broadphase.hpp"
#include "geom/obb.hpp"
#include "geom/pose2.hpp"
#include "geom/segment.hpp"
#include "geom/vec2.hpp"
#include "mathkit/rng.hpp"

namespace icoil::geom {
namespace {

// ------------------------------------------------------------------ Vec2

TEST(Vec2Test, ArithmeticBasics) {
  const Vec2 a{1.0, 2.0}, b{3.0, -4.0};
  EXPECT_DOUBLE_EQ((a + b).x, 4.0);
  EXPECT_DOUBLE_EQ((a + b).y, -2.0);
  EXPECT_DOUBLE_EQ((a - b).x, -2.0);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ((2.0 * a).y, 4.0);
  EXPECT_DOUBLE_EQ((a / 2.0).x, 0.5);
}

TEST(Vec2Test, DotAndCross) {
  const Vec2 a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);
}

TEST(Vec2Test, NormAndNormalize) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Vec2{}.normalized().norm(), 0.0);
}

TEST(Vec2Test, PerpIsCcwRotation) {
  const Vec2 v{1.0, 0.0};
  EXPECT_DOUBLE_EQ(v.perp().x, 0.0);
  EXPECT_DOUBLE_EQ(v.perp().y, 1.0);
  EXPECT_DOUBLE_EQ(v.dot(v.perp()), 0.0);
}

TEST(Vec2Test, RotationRoundTrip) {
  const Vec2 v{2.0, -1.0};
  const Vec2 r = v.rotated(0.7).rotated(-0.7);
  EXPECT_NEAR(r.x, v.x, 1e-12);
  EXPECT_NEAR(r.y, v.y, 1e-12);
}

TEST(Vec2Test, RotationPreservesNorm) {
  math::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Vec2 v{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    EXPECT_NEAR(v.rotated(rng.uniform(-6, 6)).norm(), v.norm(), 1e-9);
  }
}

TEST(Vec2Test, LerpEndpointsAndMidpoint) {
  const Vec2 a{0.0, 0.0}, b{10.0, -2.0};
  EXPECT_TRUE(almost_equal(lerp(a, b, 0.0), a));
  EXPECT_TRUE(almost_equal(lerp(a, b, 1.0), b));
  EXPECT_TRUE(almost_equal(lerp(a, b, 0.5), Vec2{5.0, -1.0}));
}

// ---------------------------------------------------------------- angles

TEST(AnglesTest, WrapAngleRange) {
  for (double a = -20.0; a < 20.0; a += 0.37) {
    const double w = wrap_angle(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
    EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
  }
}

TEST(AnglesTest, Wrap2PiRange) {
  for (double a = -20.0; a < 20.0; a += 0.41) {
    const double w = wrap_angle_2pi(a);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, kTwoPi);
  }
}

TEST(AnglesTest, AngleDiffShortestArc) {
  EXPECT_NEAR(angle_diff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_diff(-3.1, 3.1), kTwoPi - 6.2, 1e-9);
  EXPECT_NEAR(angle_diff(kPi, -kPi), 0.0, 1e-12);
}

TEST(AnglesTest, Deg2RadRoundTrip) {
  EXPECT_NEAR(rad2deg(deg2rad(123.0)), 123.0, 1e-12);
  EXPECT_NEAR(deg2rad(180.0), kPi, 1e-12);
}

// ----------------------------------------------------------------- Pose2

TEST(Pose2Test, ToWorldToLocalRoundTrip) {
  const Pose2 pose{3.0, -2.0, 0.9};
  const Vec2 p{1.5, 0.4};
  EXPECT_TRUE(almost_equal(pose.to_local(pose.to_world(p)), p, 1e-9));
}

TEST(Pose2Test, ForwardLeftOrthonormal) {
  const Pose2 pose{0.0, 0.0, 0.63};
  EXPECT_NEAR(pose.forward().dot(pose.left()), 0.0, 1e-12);
  EXPECT_NEAR(pose.forward().norm(), 1.0, 1e-12);
  EXPECT_NEAR(pose.forward().cross(pose.left()), 1.0, 1e-12);
}

TEST(Pose2Test, ComposeWithInverseIsIdentity) {
  const Pose2 pose{1.0, 2.0, -1.1};
  const Pose2 id = pose.compose(pose.inverse());
  EXPECT_NEAR(id.x(), 0.0, 1e-9);
  EXPECT_NEAR(id.y(), 0.0, 1e-9);
  EXPECT_NEAR(id.heading, 0.0, 1e-9);
}

TEST(Pose2Test, ComposeTranslatesInLocalFrame) {
  const Pose2 pose{0.0, 0.0, kPi / 2.0};
  const Pose2 moved = pose.compose({1.0, 0.0, 0.0});
  EXPECT_NEAR(moved.x(), 0.0, 1e-9);
  EXPECT_NEAR(moved.y(), 1.0, 1e-9);
}

TEST(Pose2Test, Se2DistanceWeightsHeading) {
  const Pose2 a{0, 0, 0}, b{0, 0, 0.5};
  EXPECT_NEAR(se2_distance(a, b, 2.0), 1.0, 1e-12);
}

// --------------------------------------------------------------- Segment

TEST(SegmentTest, ClosestPointClampsToEndpoints) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_TRUE(almost_equal(s.closest_point({-5, 3}), Vec2{0, 0}));
  EXPECT_TRUE(almost_equal(s.closest_point({15, 3}), Vec2{10, 0}));
  EXPECT_TRUE(almost_equal(s.closest_point({5, 3}), Vec2{5, 0}));
}

TEST(SegmentTest, DistanceToPoint) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_NEAR(s.distance_to({5, 3}), 3.0, 1e-12);
  EXPECT_NEAR(s.distance_to({-3, 4}), 5.0, 1e-12);
}

TEST(SegmentTest, IntersectionCross) {
  const Segment a{{0, -1}, {0, 1}};
  const Segment b{{-1, 0}, {1, 0}};
  EXPECT_TRUE(a.intersects(b));
}

TEST(SegmentTest, NoIntersectionParallel) {
  const Segment a{{0, 0}, {10, 0}};
  const Segment b{{0, 1}, {10, 1}};
  EXPECT_FALSE(a.intersects(b));
  EXPECT_NEAR(segment_distance(a, b), 1.0, 1e-12);
}

TEST(SegmentTest, CollinearTouching) {
  const Segment a{{0, 0}, {5, 0}};
  const Segment b{{5, 0}, {9, 0}};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_NEAR(segment_distance(a, b), 0.0, 1e-12);
}

// ------------------------------------------------------------------ Aabb

TEST(AabbTest, ExpandAndContain) {
  Aabb box;
  EXPECT_FALSE(box.valid());
  box.expand({1, 1});
  box.expand({-1, 3});
  EXPECT_TRUE(box.valid());
  EXPECT_TRUE(box.contains({0, 2}));
  EXPECT_FALSE(box.contains({2, 2}));
  EXPECT_NEAR(box.width(), 2.0, 1e-12);
  EXPECT_NEAR(box.height(), 2.0, 1e-12);
}

TEST(AabbTest, OverlapAndInflate) {
  const Aabb a{{0, 0}, {2, 2}};
  const Aabb b{{3, 3}, {4, 4}};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.inflated(1.0).overlaps(b));
  EXPECT_TRUE(a.overlaps(a));
}

TEST(AabbTest, FromCenter) {
  const Aabb box = Aabb::from_center({5, 5}, 2, 1);
  EXPECT_TRUE(box.contains({6.9, 5.9}));
  EXPECT_FALSE(box.contains({7.1, 5.0}));
  EXPECT_TRUE(almost_equal(box.center(), Vec2{5, 5}));
}

// ------------------------------------------------------------------- Obb

TEST(ObbTest, CornersAxisAligned) {
  const Obb box{{0, 0}, 0.0, 2.0, 1.0};
  const auto corners = box.corners();
  Aabb aabb;
  for (const Vec2& c : corners) aabb.expand(c);
  EXPECT_NEAR(aabb.width(), 4.0, 1e-12);
  EXPECT_NEAR(aabb.height(), 2.0, 1e-12);
}

TEST(ObbTest, ContainsRespectsRotation) {
  const Obb box{{0, 0}, kPi / 2.0, 2.0, 0.5};
  EXPECT_TRUE(box.contains({0.0, 1.9}));   // along rotated long axis
  EXPECT_FALSE(box.contains({1.9, 0.0}));  // along rotated short axis
}

TEST(ObbTest, SignedDistanceInsideNegative) {
  const Obb box{{0, 0}, 0.3, 2.0, 1.0};
  EXPECT_LT(box.signed_distance_to({0, 0}), 0.0);
  EXPECT_GT(box.signed_distance_to({5, 5}), 0.0);
}

TEST(ObbTest, DistanceToExternalPoint) {
  const Obb box{{0, 0}, 0.0, 1.0, 1.0};
  EXPECT_NEAR(box.distance_to({3.0, 0.0}), 2.0, 1e-12);
  EXPECT_NEAR(box.distance_to({0.0, -4.0}), 3.0, 1e-12);
  EXPECT_NEAR(box.distance_to({0.5, 0.5}), 0.0, 1e-12);
}

TEST(ObbTest, OverlapSeparatedBoxes) {
  const Obb a{{0, 0}, 0.0, 1.0, 1.0};
  const Obb b{{3.0, 0}, 0.0, 1.0, 1.0};
  EXPECT_FALSE(overlaps(a, b));
  const Obb c{{1.5, 0}, 0.0, 1.0, 1.0};
  EXPECT_TRUE(overlaps(a, c));
}

TEST(ObbTest, OverlapNeedsBothProjections) {
  // Rotated box near the corner of an axis-aligned box: SAT must catch it.
  const Obb a{{0, 0}, 0.0, 1.0, 1.0};
  const Obb b{{2.0, 2.0}, kPi / 4.0, 1.2, 0.2};
  EXPECT_FALSE(overlaps(a, b));
  const Obb c{{1.2, 1.2}, kPi / 4.0, 1.2, 0.2};
  EXPECT_TRUE(overlaps(a, c));
}

TEST(ObbTest, DistanceMatchesGapBetweenParallelBoxes) {
  const Obb a{{0, 0}, 0.0, 1.0, 1.0};
  const Obb b{{5.0, 0.0}, 0.0, 1.0, 1.0};
  EXPECT_NEAR(obb_distance(a, b), 3.0, 1e-9);
  EXPECT_NEAR(obb_distance(b, a), 3.0, 1e-9);
}

TEST(ObbTest, DistanceZeroWhenOverlapping) {
  const Obb a{{0, 0}, 0.2, 1.0, 1.0};
  const Obb b{{0.5, 0.5}, -0.4, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(obb_distance(a, b), 0.0);
}

TEST(ObbTest, InflatedGrowsDistanceShrinks) {
  const Obb a{{0, 0}, 0.0, 1.0, 1.0};
  const Obb b{{4.0, 0.0}, 0.0, 1.0, 1.0};
  EXPECT_NEAR(obb_distance(a.inflated(0.5), b), 1.5, 1e-9);
}

TEST(ObbTest, FromPoseAppliesOffset) {
  const Pose2 pose{0, 0, 0};
  const Obb box = Obb::from_pose(pose, 4.0, 2.0, 1.0);
  EXPECT_NEAR(box.center.x, 1.0, 1e-12);
  EXPECT_TRUE(box.contains({2.9, 0.0}));
  EXPECT_FALSE(box.contains({-1.1, 0.0}));
}

TEST(ObbTest, ClosestPointsSymmetricGap) {
  const Obb a{{0, 0}, 0.0, 1.0, 1.0};
  const Obb b{{4.0, 0.0}, 0.0, 1.0, 1.0};
  const auto [pa, pb] = closest_points(a, b);
  EXPECT_NEAR(distance(pa, pb), obb_distance(a, b), 1e-9);
  EXPECT_NEAR(pa.x, 1.0, 1e-9);
  EXPECT_NEAR(pb.x, 3.0, 1e-9);
}

// Property sweep: distance is symmetric, non-negative, and zero iff overlap.
class ObbPairProperty : public ::testing::TestWithParam<int> {};

TEST_P(ObbPairProperty, DistanceInvariants) {
  math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const Obb a{{rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(-3, 3),
              rng.uniform(0.2, 2.0), rng.uniform(0.2, 2.0)};
  const Obb b{{rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(-3, 3),
              rng.uniform(0.2, 2.0), rng.uniform(0.2, 2.0)};
  const double dab = obb_distance(a, b);
  const double dba = obb_distance(b, a);
  EXPECT_NEAR(dab, dba, 1e-9);
  EXPECT_GE(dab, 0.0);
  EXPECT_EQ(dab == 0.0, overlaps(a, b));
  // Triangle-ish sanity: centre distance bounds box distance from above.
  EXPECT_LE(dab, distance(a.center, b.center) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, ObbPairProperty, ::testing::Range(0, 40));

// Property: contains(corner midpoint) for random boxes.
class ObbContainsProperty : public ::testing::TestWithParam<int> {};

TEST_P(ObbContainsProperty, CentreAndEdgeMidpoints) {
  math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const Obb box{{rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(-3, 3),
                rng.uniform(0.3, 3.0), rng.uniform(0.3, 3.0)};
  EXPECT_TRUE(box.contains(box.center));
  const auto corners = box.corners();
  for (int i = 0; i < 4; ++i) {
    const Vec2 mid = (corners[i] + corners[(i + 1) % 4]) * 0.5;
    // Slightly inside the edge midpoint must be contained.
    EXPECT_TRUE(box.contains(lerp(mid, box.center, 1e-6)));
    // Slightly outside must not.
    EXPECT_FALSE(box.contains(mid + (mid - box.center).normalized() * 1e-3));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBoxes, ObbContainsProperty, ::testing::Range(0, 25));

// ---------------------------------------------------------------- ObbSet

TEST(ObbSetTest, MinDistanceClampsToCutoff) {
  const Obb query{{0.0, 0.0}, 0.0, 1.0, 1.0};
  // Empty set: exactly the cutoff, never +inf.
  EXPECT_DOUBLE_EQ(ObbSet{}.min_distance(query), kMaxClearance);
  EXPECT_DOUBLE_EQ(ObbSet{}.min_distance(query, 5.0), 5.0);

  ObbSet set;
  set.push({{100.0, 0.0}, 0.0, 1.0, 1.0});
  // The only member is 98 m away; a 5 m cutoff prunes it and the call must
  // report the cutoff, not +inf.
  EXPECT_DOUBLE_EQ(set.min_distance(query, 5.0), 5.0);
  // Within the cutoff the true distance comes back.
  EXPECT_NEAR(set.min_distance(query, 200.0), 98.0, 1e-9);
  EXPECT_NEAR(set.min_distance(query), 98.0, 1e-9);
  // A member inside the cutoff always beats it.
  set.push({{3.0, 0.0}, 0.0, 1.0, 1.0});
  EXPECT_NEAR(set.min_distance(query, 5.0), 1.0, 1e-9);
}

}  // namespace
}  // namespace icoil::geom
