// Regression tests pinning fixes made during development — each encodes a
// failure mode that once existed, so it cannot silently return.

#include <gtest/gtest.h>

#include <cmath>

#include "co/planner.hpp"
#include "co/trajopt.hpp"
#include "geom/angles.hpp"
#include "mathkit/qp.hpp"
#include "vehicle/kinematics.hpp"

namespace icoil {
namespace {

// The MPC once "tunneled": with a constant-speed cold-start nominal the
// per-step half-space linearization put the horizon tail on the far side
// of an obstacle, producing plans that drove straight through. The fix is
// the braking cold-start nominal plus slack-penalized constraints.
TEST(RegressionTest, ColdStartMpcDoesNotTunnelThroughObstacle) {
  co::TrajOptConfig cfg;
  co::TrajOpt opt(cfg, vehicle::VehicleParams{});
  vehicle::State s;
  s.speed = 1.5;
  std::vector<co::TargetPoint> targets;
  for (int i = 1; i <= cfg.horizon; ++i)
    targets.push_back({{i * 1.5 * cfg.dt, 0, 0}, 1.5});
  const co::PredictedObstacle obstacle{geom::Obb{{5.5, 0.0}, 0.0, 0.4, 0.4}, {}};
  const co::TrajOptResult res = opt.solve(s, targets, {obstacle});
  ASSERT_TRUE(res.ok);
  vehicle::BicycleModel model;
  for (const vehicle::State& p : res.predicted)
    ASSERT_FALSE(geom::overlaps(model.footprint(p), obstacle.box))
        << "tunneled to x=" << p.x();
}

// Same scenario in reverse gear: braking nominal must handle negative speed.
TEST(RegressionTest, ColdStartMpcReverseDirection) {
  co::TrajOptConfig cfg;
  co::TrajOpt opt(cfg, vehicle::VehicleParams{});
  vehicle::State s;
  s.speed = -1.2;
  std::vector<co::TargetPoint> targets;
  for (int i = 1; i <= cfg.horizon; ++i)
    targets.push_back({{-i * 1.2 * cfg.dt, 0, 0}, -1.2});
  const co::PredictedObstacle obstacle{geom::Obb{{-4.5, 0.0}, 0.0, 0.4, 0.4}, {}};
  const co::TrajOptResult res = opt.solve(s, targets, {obstacle});
  ASSERT_TRUE(res.ok);
  vehicle::BicycleModel model;
  for (const vehicle::State& p : res.predicted)
    ASSERT_FALSE(geom::overlaps(model.footprint(p), obstacle.box));
}

// ADMM once stalled at max iterations on every MPC QP because all rows
// shared one rho; equality rows need a much stiffer penalty. Pin that an
// equality+inequality mix converges quickly.
TEST(RegressionTest, MixedEqualityQpConvergesFast) {
  math::QpProblem p;
  p.p = math::Matrix::identity(4) * 2.0;
  p.q = {-1, -2, 0, 1};
  p.a = math::Matrix(3, 4);
  // x0 + x1 = 1 (equality), x2 in [0, 1], x3 >= -1.
  p.a(0, 0) = 1.0;
  p.a(0, 1) = 1.0;
  p.a(1, 2) = 1.0;
  p.a(2, 3) = 1.0;
  p.l = {1.0, 0.0, -1.0};
  p.u = {1.0, 1.0, math::kQpInf};
  const math::QpResult r = math::QpSolver().solve(p);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.iterations, 500);
  EXPECT_NEAR(r.x[0] + r.x[1], 1.0, 1e-3);
}

// The reverse maneuver once started from a misaligned switch pose (the
// tracker cut the corner), saturating steering into the parked cars. Pin
// that the planner's phases carry the straight switch extensions on both
// sides of every switch.
TEST(RegressionTest, SwitchExtensionsOnBothSides) {
  co::CoPlannerConfig cfg;
  co::CoPlanner planner(cfg, vehicle::VehicleParams{});
  std::vector<co::PathPoint> pts;
  for (int i = 0; i <= 20; ++i) pts.push_back({{i * 0.25, 0, 0}, 1, 0});
  for (int i = 1; i <= 12; ++i) pts.push_back({{5.0 - i * 0.25, 0.0, 0}, -1, 0});
  planner.set_reference(co::RefPath(std::move(pts)));
  ASSERT_EQ(planner.phases().size(), 2u);
  const co::PathPhase& fwd = planner.phases()[0];
  const co::PathPhase& rev = planner.phases()[1];
  // Forward phase extended past x = 5 along +x.
  EXPECT_GT(fwd.points.back().pose.x(), 5.0 + 0.5 * cfg.switch_extension);
  // Reverse phase starts at the extended point and walks back through the
  // switch pose.
  EXPECT_GT(rev.points.front().pose.x(), 5.0 + 0.5 * cfg.switch_extension);
  EXPECT_LT(rev.points.back().pose.x(), 2.5);
  // Direction labels are consistent within each phase.
  for (const co::PathPoint& p : rev.points) EXPECT_EQ(p.direction, -1);
}

// Dynamic obstacles' patrols cross the spawn region; scenario generation
// once produced start poses already in collision (episodes died at frame
// zero and polluted the success statistics).
TEST(RegressionTest, StartPosesNeverCollideOnAnyLevel) {
  const vehicle::BicycleModel model;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    for (auto level : {world::Difficulty::kNormal, world::Difficulty::kHard}) {
      world::ScenarioOptions opt;
      opt.difficulty = level;
      const world::Scenario sc = world::make_scenario(opt, seed);
      const world::World world(sc);
      ASSERT_FALSE(world.in_collision(model.footprint(sc.start_pose)))
          << world::to_string(level) << " seed " << seed;
    }
  }
}

// The bicycle model once let the brake flip the direction of motion at
// low speed (sign oscillation around zero).
TEST(RegressionTest, BrakeNeverReversesMotion) {
  const vehicle::BicycleModel model;
  vehicle::State s;
  s.speed = 0.08;
  const vehicle::Command brake{0.0, 1.0, 0.0, false};
  for (int i = 0; i < 40; ++i) {
    s = model.step(s, brake, 0.05);
    ASSERT_GE(s.speed, 0.0);
  }
  EXPECT_NEAR(s.speed, 0.0, 1e-9);
}

// Heading lift in the MPC linearization: targets near +/- pi once caused
// 2*pi jumps in the tracking cost. Pin that tracking a straight path at
// heading pi produces a straight plan.
TEST(RegressionTest, TrackingAcrossHeadingWrap) {
  co::TrajOptConfig cfg;
  co::TrajOpt opt(cfg, vehicle::VehicleParams{});
  vehicle::State s;
  s.pose = {0, 0, geom::kPi - 1e-3};  // driving toward -x
  s.speed = 1.0;
  std::vector<co::TargetPoint> targets;
  for (int i = 1; i <= cfg.horizon; ++i)
    targets.push_back({{-i * 1.0 * cfg.dt, 0.0, -geom::kPi + 1e-3}, 1.0});
  const co::TrajOptResult res = opt.solve(s, targets, {});
  ASSERT_TRUE(res.ok);
  EXPECT_NEAR(res.control.steer, 0.0, 0.08);
  for (const vehicle::State& p : res.predicted) EXPECT_NEAR(p.y(), 0.0, 0.1);
}

}  // namespace
}  // namespace icoil
