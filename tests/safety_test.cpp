#include <gtest/gtest.h>

#include "core/icoil_controller.hpp"
#include "core/safety.hpp"
#include "sim/simulator.hpp"

namespace icoil::core {
namespace {

world::Scenario easy_scenario(std::uint64_t seed = 500) {
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  return world::make_scenario(opt, seed);
}

TEST(SafetyMonitorTest, DisabledPassesEverythingThrough) {
  SafetyMonitor monitor;  // default: disabled
  const world::Scenario sc = easy_scenario();
  world::World world(sc);
  vehicle::State state;
  state.pose = sc.start_pose;
  const vehicle::Command reckless{1.0, 0.0, 0.0, false};
  const vehicle::Command out = monitor.filter(world, state, reckless);
  EXPECT_DOUBLE_EQ(out.throttle, reckless.throttle);
  EXPECT_EQ(monitor.interventions(), 0);
}

TEST(SafetyMonitorTest, VetoesImminentCollision) {
  SafetyConfig cfg;
  cfg.enabled = true;
  cfg.horizon = 2.0;
  SafetyMonitor monitor(cfg);

  const world::Scenario sc = easy_scenario();
  world::World world(sc);
  // Park the ego right in front of a static obstacle, driving at it.
  const geom::Obb& pillar = sc.obstacles[2].shape;  // aisle pillar
  vehicle::State state;
  state.pose = {pillar.center.x - 6.0, pillar.center.y, 0.0};
  state.speed = 2.0;

  const vehicle::Command forward{1.0, 0.0, 0.0, false};
  const vehicle::Command out = monitor.filter(world, state, forward);
  EXPECT_GT(out.brake, 0.5);
  EXPECT_DOUBLE_EQ(out.throttle, 0.0);
  EXPECT_EQ(monitor.interventions(), 1);
}

TEST(SafetyMonitorTest, AllowsSafeMotion) {
  SafetyConfig cfg;
  cfg.enabled = true;
  SafetyMonitor monitor(cfg);
  const world::Scenario sc = easy_scenario();
  world::World world(sc);
  vehicle::State state;
  state.pose = {8.0, 25.0, 0.0};  // open area, heading along the lot
  state.speed = 1.0;
  const vehicle::Command forward{0.4, 0.0, 0.0, false};
  const vehicle::Command out = monitor.filter(world, state, forward);
  EXPECT_DOUBLE_EQ(out.throttle, forward.throttle);
  EXPECT_EQ(monitor.interventions(), 0);
}

TEST(SafetyMonitorTest, RolloutDetectsWallDeparture) {
  SafetyConfig cfg;
  cfg.enabled = true;
  cfg.horizon = 3.0;
  SafetyMonitor monitor(cfg);
  const world::Scenario sc = easy_scenario();
  world::World world(sc);
  vehicle::State state;
  state.pose = {38.0, 25.0, 0.0};  // facing the east wall
  state.speed = 2.0;
  EXPECT_TRUE(monitor.rollout_collides(world, state, {1.0, 0.0, 0.0, false}));
}

TEST(SafetyMonitorTest, AccountsForMovingObstacles) {
  SafetyConfig cfg;
  cfg.enabled = true;
  cfg.horizon = 3.0;
  SafetyMonitor monitor(cfg);
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kNormal;
  const world::Scenario sc = world::make_scenario(opt, 77);
  world::World world(sc);

  // Place the ego stationary directly on the patrol vehicle's future path
  // (patrol runs along y = 19.5); creeping forward into it must be vetoed
  // at SOME phase of the patrol. Probe several world times.
  bool vetoed_somewhere = false;
  for (double t = 0.0; t < 30.0 && !vetoed_somewhere; t += 1.0) {
    world::World w2(sc);
    w2.step(t);
    vehicle::State state;
    state.pose = {20.0, 19.5, 0.0};
    state.speed = 0.5;
    vetoed_somewhere =
        monitor.rollout_collides(w2, state, {0.5, 0.0, 0.0, false});
  }
  EXPECT_TRUE(vetoed_somewhere);
}

TEST(SafetyMonitorTest, ResetClearsCounter) {
  SafetyConfig cfg;
  cfg.enabled = true;
  SafetyMonitor monitor(cfg);
  const world::Scenario sc = easy_scenario();
  world::World world(sc);
  vehicle::State state;
  state.pose = {sc.obstacles[2].shape.center.x - 5.0,
                sc.obstacles[2].shape.center.y, 0.0};
  state.speed = 2.5;
  monitor.filter(world, state, {1.0, 0.0, 0.0, false});
  EXPECT_GE(monitor.interventions(), 1);
  monitor.reset();
  EXPECT_EQ(monitor.interventions(), 0);
}

TEST(SafetyGuardedIcoilTest, RunsWithGuardEnabled) {
  il::IlPolicyConfig tiny;
  tiny.bev_size = 16;
  tiny.conv_channels[0] = 4;
  tiny.conv_channels[1] = 4;
  tiny.conv_channels[2] = 8;
  tiny.fc_sizes[0] = 32;
  tiny.fc_sizes[1] = 16;
  tiny.fc_sizes[2] = 16;
  il::IlPolicy policy(tiny);

  IcoilConfig config;
  config.safety.enabled = true;
  IcoilController controller(config, policy);
  const world::Scenario sc = easy_scenario(500);
  const sim::EpisodeResult res = sim::Simulator().run(sc, controller, 500);
  // The guard may intervene but must not break the episode loop.
  EXPECT_NE(res.frames, 0u);
  EXPECT_EQ(res.outcome, sim::Outcome::kSuccess);
}

}  // namespace
}  // namespace icoil::core
