#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>

#include "il/observation.hpp"
#include "sim/curriculum.hpp"
#include "sim/expert.hpp"
#include "sim/policy_store.hpp"
#include "world/generators/registry.hpp"

namespace icoil::sim {
namespace {

il::IlPolicyConfig tiny_policy_config() {
  il::IlPolicyConfig cfg;
  cfg.bev_size = 16;
  cfg.conv_channels[0] = 4;
  cfg.conv_channels[1] = 4;
  cfg.conv_channels[2] = 8;
  cfg.fc_sizes[0] = 32;
  cfg.fc_sizes[1] = 16;
  cfg.fc_sizes[2] = 16;
  return cfg;
}

// ------------------------------------------------------------- assignment

TEST(CurriculumTest, EpisodeCountsFollowWeights) {
  Curriculum c;
  CurriculumEntry heavy;
  heavy.generator = "canonical";
  heavy.weight = 3.0;
  CurriculumEntry light;
  light.generator = "crowded_lot";
  light.weight = 1.0;
  c.entries = {heavy, light};

  const auto counts = c.episode_counts(8);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 6);
  EXPECT_EQ(counts[1], 2);

  // Counts always sum to the episode total, whatever the remainders.
  for (int n : {1, 3, 7, 10, 31}) {
    const auto k = c.episode_counts(n);
    EXPECT_EQ(k[0] + k[1], n) << n;
  }
}

TEST(CurriculumTest, AssignmentsDeterministicAndInterleaved) {
  Curriculum c = Curriculum::all_families();
  ASSERT_GE(c.size(), 4u);

  const auto a = c.assignments(20);
  const auto b = c.assignments(20);
  ASSERT_EQ(a.size(), 20u);
  EXPECT_EQ(a, b);  // deterministic

  // Every family appears, matching its episode_counts share.
  const auto counts = c.episode_counts(20);
  std::vector<int> seen(c.size(), 0);
  for (int idx : a) {
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, static_cast<int>(c.size()));
    ++seen[static_cast<std::size_t>(idx)];
  }
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(seen[i], counts[i]) << i;

  // Interleaving: a prefix of one family-count already mixes families.
  std::set<int> prefix(a.begin(), a.begin() + static_cast<int>(c.size()));
  EXPECT_GT(prefix.size(), 1u);
}

TEST(CurriculumTest, ParseSpecs) {
  EXPECT_EQ(Curriculum::parse("canonical").size(), 1u);
  EXPECT_EQ(Curriculum::parse("").size(), 1u);
  EXPECT_EQ(Curriculum::parse("all").size(),
            world::GeneratorRegistry::instance().size());
  const Curriculum two = Curriculum::parse("crowded_lot,parallel_street");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two.entries[0].generator, "crowded_lot");
  EXPECT_EQ(two.entries[1].generator, "parallel_street");
  EXPECT_THROW(Curriculum::parse("not_a_generator"), std::invalid_argument);
  EXPECT_THROW(Curriculum::parse("canonical,nope"), std::invalid_argument);
}

// ------------------------------------------------------------ fingerprint

TEST(CurriculumTest, FingerprintSeparatesSpecs) {
  const std::uint64_t canonical = Curriculum::canonical().fingerprint();
  EXPECT_EQ(canonical, Curriculum::canonical().fingerprint());
  EXPECT_NE(canonical, Curriculum::all_families().fingerprint());

  Curriculum tweaked = Curriculum::canonical();
  tweaked.entries[0].difficulty = world::Difficulty::kHard;
  EXPECT_NE(canonical, tweaked.fingerprint());

  Curriculum reweighted = Curriculum::canonical();
  reweighted.entries[0].weight = 2.0;
  EXPECT_NE(canonical, reweighted.fingerprint());

  // The display name is excluded: equal specs share a fingerprint.
  Curriculum renamed = Curriculum::canonical();
  renamed.name = "renamed";
  EXPECT_EQ(canonical, renamed.fingerprint());
}

// ------------------------------------------------------------- provenance

TEST(CurriculumTest, ExpertRecordsProvenanceAcrossFamilies) {
  ExpertConfig cfg;
  cfg.curriculum = Curriculum::all_families();
  cfg.episodes = static_cast<int>(cfg.curriculum.size());
  cfg.frame_stride = 16;
  ExpertStats stats;
  const il::Dataset dataset =
      ExpertRecorder(cfg, tiny_policy_config()).record(&stats);
  ASSERT_GT(dataset.size(), 0u);

  // One episode per family -> every registered family contributes samples.
  const auto hist = dataset.family_histogram();
  EXPECT_GE(hist.size(), 4u);
  EXPECT_EQ(hist.count("unknown"), 0u);
  for (const std::string& name : world::GeneratorRegistry::instance().names())
    EXPECT_GT(hist.at(name), 0u) << name;
  EXPECT_EQ(stats.episodes_by_family.size(), cfg.curriculum.size());

  // Per-sample provenance is consistent with the curriculum difficulty.
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_GE(dataset[i].family, 0);
    EXPECT_EQ(dataset[i].difficulty,
              static_cast<std::uint8_t>(world::Difficulty::kEasy));
  }

  // Filtering by family keeps exactly that family's samples.
  const il::Dataset canonical_only = dataset.filter_family("canonical");
  EXPECT_EQ(canonical_only.size(), hist.at("canonical"));
  for (std::size_t i = 0; i < canonical_only.size(); ++i)
    EXPECT_EQ(canonical_only.family_name(canonical_only[i].family), "canonical");
}

TEST(CurriculumTest, ProvenanceRoundTripsThroughSaveLoad) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "icoil_curriculum_ds.bin")
          .string();
  ExpertConfig cfg;
  cfg.curriculum = Curriculum::parse("canonical,dynamic_gauntlet");
  cfg.episodes = 4;
  cfg.frame_stride = 16;
  const il::Dataset a = ExpertRecorder(cfg, tiny_policy_config()).record();
  ASSERT_GT(a.size(), 0u);
  ASSERT_TRUE(a.save(path));

  il::Dataset b;
  ASSERT_TRUE(b.load(path));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.family_names(), b.family_names());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].family, b[i].family);
    EXPECT_EQ(a[i].difficulty, b[i].difficulty);
    EXPECT_EQ(a[i].label, b[i].label);
  }
  EXPECT_EQ(a.family_histogram(), b.family_histogram());
  std::filesystem::remove(path);
}

TEST(CurriculumTest, LegacyV1DatasetStillLoads) {
  // Hand-write a pre-provenance (v1) file: magic, n=1, channels=1, size=2,
  // then per sample label + raw pixels.
  const std::string path =
      (std::filesystem::temp_directory_path() / "icoil_legacy_ds.bin").string();
  {
    std::ofstream f(path, std::ios::binary);
    const std::uint32_t magic = 0x1C011D5Eu, n = 1, channels = 1, size = 2;
    const std::int32_t label = 7;
    const std::uint8_t pixels[4] = {0, 128, 255, 64};
    f.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    f.write(reinterpret_cast<const char*>(&n), sizeof(n));
    f.write(reinterpret_cast<const char*>(&channels), sizeof(channels));
    f.write(reinterpret_cast<const char*>(&size), sizeof(size));
    f.write(reinterpret_cast<const char*>(&label), sizeof(label));
    f.write(reinterpret_cast<const char*>(pixels), sizeof(pixels));
  }
  il::Dataset d;
  ASSERT_TRUE(d.load(path));
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].label, 7);
  EXPECT_EQ(d[0].family, -1);  // no provenance in v1 files
  EXPECT_EQ(d.family_name(d[0].family), "unknown");
  EXPECT_EQ(d.family_histogram().at("unknown"), 1u);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------ cache keying

TEST(PolicyStoreCurriculumTest, FingerprintMismatchForcesRetrain) {
  const auto dir =
      std::filesystem::temp_directory_path() / "icoil_curriculum_store";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  PolicyStoreOptions opts;
  opts.cache_path = (dir / "policy.bin").string();
  opts.dataset_cache_path = (dir / "dataset.bin").string();
  opts.verbose = false;
  opts.expert.episodes = 1;
  opts.expert.frame_stride = 16;
  opts.train.epochs = 1;
  opts.policy = tiny_policy_config();

  const std::string canonical_path = policy_cache_path(opts);
  const auto canonical_policy = get_or_train_policy(opts);
  ASSERT_NE(canonical_policy, nullptr);
  EXPECT_TRUE(std::filesystem::exists(canonical_path));

  // Same spec -> same fingerprint -> the cache is reused, not retrained
  // (the dataset cache would be rewritten on a retrain; its write time is
  // not observable here, so assert via identical inference instead).
  const auto reloaded = get_or_train_policy(opts);
  sense::BevImage obs(il::kObservationChannels, 16);
  obs.at(0, 5, 5) = 1.0f;
  const auto ia = canonical_policy->infer(obs);
  const auto ib = reloaded->infer(obs);
  for (std::size_t i = 0; i < ia.probs.size(); ++i)
    EXPECT_FLOAT_EQ(ia.probs[i], ib.probs[i]);

  // A different curriculum fingerprints to a different path: the canonical
  // cache cannot be silently reused and a fresh policy is trained.
  PolicyStoreOptions curriculum_opts = opts;
  curriculum_opts.expert.curriculum = Curriculum::parse("crowded_lot");
  const std::string curriculum_path = policy_cache_path(curriculum_opts);
  EXPECT_NE(canonical_path, curriculum_path);
  EXPECT_FALSE(std::filesystem::exists(curriculum_path));
  const auto curriculum_policy = get_or_train_policy(curriculum_opts);
  ASSERT_NE(curriculum_policy, nullptr);
  EXPECT_TRUE(std::filesystem::exists(curriculum_path));
  EXPECT_TRUE(std::filesystem::exists(canonical_path));  // both coexist

  std::filesystem::remove_all(dir);
}

TEST(PolicyStoreCurriculumTest, EnvIntOrValidatesStrictly) {
  ASSERT_EQ(setenv("ICOIL_TEST_ENV_INT", "12", 1), 0);
  EXPECT_EQ(env_int_or("ICOIL_TEST_ENV_INT", 3), 12);
  setenv("ICOIL_TEST_ENV_INT", "12abc", 1);
  EXPECT_EQ(env_int_or("ICOIL_TEST_ENV_INT", 3), 3);
  setenv("ICOIL_TEST_ENV_INT", "garbage", 1);
  EXPECT_EQ(env_int_or("ICOIL_TEST_ENV_INT", 3), 3);
  setenv("ICOIL_TEST_ENV_INT", "0", 1);
  EXPECT_EQ(env_int_or("ICOIL_TEST_ENV_INT", 3), 3);  // below min_value = 1
  setenv("ICOIL_TEST_ENV_INT", "-5", 1);
  EXPECT_EQ(env_int_or("ICOIL_TEST_ENV_INT", 3), 3);
  setenv("ICOIL_TEST_ENV_INT", "", 1);
  EXPECT_EQ(env_int_or("ICOIL_TEST_ENV_INT", 3), 3);
  unsetenv("ICOIL_TEST_ENV_INT");
  EXPECT_EQ(env_int_or("ICOIL_TEST_ENV_INT", 3), 3);
}

}  // namespace
}  // namespace icoil::sim
