// Coverage for the execution runtime (core::TaskPool + CancelToken) and the
// RunReport results subsystem: pool semantics, deadline cancellation through
// the evaluator, thread-count invariance of suite results, and the report
// write -> load -> baseline-compare loop.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "core/task_pool.hpp"
#include "sim/evaluator.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"

namespace icoil {
namespace {

// ------------------------------------------------------------- TaskPool

TEST(TaskPoolTest, RecommendedWorkersRule) {
  // An explicit request wins (the cap tames only the hardware default);
  // jobs always bound the width; floor 1.
  EXPECT_EQ(core::TaskPool::recommended_workers(4, 100, 16), 4);
  EXPECT_EQ(core::TaskPool::recommended_workers(4, 2, 16), 2);
  EXPECT_EQ(core::TaskPool::recommended_workers(32, 100, 16), 32);
  EXPECT_EQ(core::TaskPool::recommended_workers(5, 100, 0), 5);
  EXPECT_EQ(core::TaskPool::recommended_workers(0, 0, 16), 1);
  EXPECT_EQ(core::TaskPool::recommended_workers(-3, 1, 16), 1);
  // requested = 0 falls back to hardware concurrency, clamped to the cap.
  EXPECT_GE(core::TaskPool::recommended_workers(0, 100, 16), 1);
  EXPECT_LE(core::TaskPool::recommended_workers(0, 100, 16), 16);
  EXPECT_EQ(core::TaskPool::recommended_workers(0, 100, 1), 1);
}

TEST(TaskPoolTest, RunsEveryTaskWithValidWorkerIndex) {
  core::TaskPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  std::atomic<bool> index_ok{true};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&](const core::TaskPool::Context& ctx) {
      if (ctx.worker < 0 || ctx.worker >= 4) index_ok = false;
      if (ctx.cancelled()) index_ok = false;  // nobody cancelled us
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_TRUE(index_ok.load());
}

TEST(TaskPoolTest, ReusableAcrossWaves) {
  core::TaskPool pool(2);
  std::atomic<int> done{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i)
      pool.submit([&](const core::TaskPool::Context&) { done.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(done.load(), (wave + 1) * 10);
  }
}

TEST(TaskPoolTest, WaitIdleRethrowsFirstTaskError) {
  core::TaskPool pool(2);
  pool.submit([](const core::TaskPool::Context&) {
    throw std::runtime_error("task boom");
  });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed; the pool keeps working.
  std::atomic<int> done{0};
  pool.submit([&](const core::TaskPool::Context&) { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
}

TEST(TaskPoolTest, DeadlineTripsCancelToken) {
  core::TaskPool pool(1);
  std::atomic<bool> saw_cancel{false};
  std::atomic<int> iterations{0};
  pool.submit(
      [&](const core::TaskPool::Context& ctx) {
        // Busy task that politely polls its token.
        for (int i = 0; i < 10000; ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          iterations.fetch_add(1);
          if (ctx.cancelled()) {
            saw_cancel = true;
            return;
          }
        }
      },
      /*budget_seconds=*/0.05);
  pool.wait_idle();
  EXPECT_TRUE(saw_cancel.load());
  EXPECT_LT(iterations.load(), 10000);
}

TEST(TaskPoolTest, SharedTokenArmsOnceAndCancelsTheGroup) {
  auto token = std::make_shared<core::CancelToken>();
  EXPECT_FALSE(token->deadline_armed());
  core::TaskPool pool(2);
  std::atomic<int> cancelled_count{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit(
        [&](const core::TaskPool::Context& ctx) {
          while (!ctx.cancelled())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          cancelled_count.fetch_add(1);
        },
        token, /*budget_seconds=*/0.05);
  }
  pool.wait_idle();
  EXPECT_TRUE(token->deadline_armed());
  EXPECT_TRUE(token->cancelled());
  EXPECT_EQ(cancelled_count.load(), 4);
}

TEST(CancelTokenTest, ExplicitCancelWithoutDeadline) {
  core::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
}

// ------------------------------------------- evaluator on the runtime

/// Always emits the same command — cheap deterministic episodes.
class FixedController final : public core::Controller {
 public:
  explicit FixedController(vehicle::Command cmd, double act_sleep_ms = 0.0)
      : cmd_(cmd), act_sleep_ms_(act_sleep_ms) {}
  std::string name() const override { return "fixed"; }
  void reset(const world::Scenario&) override {}
  using core::Controller::act;
  vehicle::Command act(const world::World&, const vehicle::State&,
                       core::FrameContext&) override {
    if (act_sleep_ms_ > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(act_sleep_ms_));
    frame_.command = cmd_;
    frame_.mode = core::Mode::kCo;
    return cmd_;
  }
  const core::FrameInfo& last_frame() const override { return frame_; }

 private:
  vehicle::Command cmd_;
  double act_sleep_ms_;
  core::FrameInfo frame_;
};

sim::ScenarioSuite small_suite() {
  sim::ScenarioSuite suite;
  sim::SuiteCell easy;
  easy.difficulty = world::Difficulty::kEasy;
  easy.time_limit = 3.0;
  suite.add(easy);
  sim::SuiteCell gauntlet;
  gauntlet.generator = "dynamic_gauntlet";
  gauntlet.difficulty = world::Difficulty::kNormal;
  gauntlet.time_limit = 3.0;
  suite.add(gauntlet);
  sim::SuiteCell crowded;
  crowded.generator = "crowded_lot";
  crowded.difficulty = world::Difficulty::kNormal;
  crowded.time_limit = 3.0;
  suite.add(crowded);
  return suite;
}

core::ControllerFactory fixed_factory() {
  return [] {
    return std::make_unique<FixedController>(
        vehicle::Command{1.0, 0.0, 0.25, false});
  };
}

TEST(RuntimeEvaluatorTest, SuiteBitIdenticalAcross1_4_16Threads) {
  const sim::ScenarioSuite suite = small_suite();
  std::vector<std::vector<sim::SuiteCellEpisodes>> runs;
  for (int threads : {1, 4, 16}) {
    sim::EvalConfig cfg;
    cfg.episodes = 5;
    cfg.num_threads = threads;
    cfg.thread_cap = 16;
    runs.push_back(
        sim::Evaluator(cfg).evaluate_suite_detailed(fixed_factory(), suite));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[0].size(), runs[r].size());
    for (std::size_t c = 0; c < runs[0].size(); ++c) {
      ASSERT_EQ(runs[0][c].episodes.size(), runs[r][c].episodes.size());
      for (std::size_t e = 0; e < runs[0][c].episodes.size(); ++e) {
        const sim::EpisodeResult& a = runs[0][c].episodes[e];
        const sim::EpisodeResult& b = runs[r][c].episodes[e];
        EXPECT_EQ(a.outcome, b.outcome) << c << "/" << e;
        EXPECT_EQ(a.frames, b.frames) << c << "/" << e;
        // Bit-identical, not approximately equal:
        EXPECT_EQ(a.park_time, b.park_time) << c << "/" << e;
        EXPECT_EQ(a.min_clearance, b.min_clearance) << c << "/" << e;
        EXPECT_EQ(a.il_fraction, b.il_fraction) << c << "/" << e;
      }
    }
  }
}

TEST(RuntimeEvaluatorTest, SuiteRejectsNonPositiveEpisodes) {
  sim::EvalConfig cfg;
  cfg.episodes = 0;
  EXPECT_THROW(
      sim::Evaluator(cfg).evaluate_suite(fixed_factory(), small_suite(), "x"),
      std::invalid_argument);
  cfg.episodes = -3;
  EXPECT_THROW(
      sim::Evaluator(cfg).evaluate_suite_detailed(fixed_factory(),
                                                  small_suite()),
      std::invalid_argument);
}

TEST(RuntimeEvaluatorTest, SlowCellReportsBudgetExceeded) {
  // One deliberately slow cell (controller sleeps every frame, long time
  // limit) with a tiny wall budget: its episodes must come back as
  // kBudgetExceeded instead of finishing late. The fast cell is unaffected.
  sim::ScenarioSuite suite;
  sim::SuiteCell slow;
  slow.time_limit = 60.0;
  slow.wall_budget = 0.05;
  slow.label = "slow";
  suite.add(slow);
  sim::SuiteCell fast;
  fast.time_limit = 1.0;
  fast.label = "fast";
  suite.add(fast);

  sim::EvalConfig cfg;
  cfg.episodes = 2;
  cfg.num_threads = 2;
  const auto results = sim::Evaluator(cfg).evaluate_suite(
      [] {
        return std::make_unique<FixedController>(vehicle::Command::full_stop(),
                                                 /*act_sleep_ms=*/2.0);
      },
      suite, "fixed");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].aggregate.budget_exceeded, 2);
  EXPECT_EQ(results[0].aggregate.successes, 0);
  EXPECT_EQ(results[1].aggregate.budget_exceeded, 0);
  EXPECT_EQ(results[1].aggregate.episodes, 2);
}

TEST(RuntimeEvaluatorTest, OutcomeStringCoversBudgetExceeded) {
  EXPECT_STREQ(sim::to_string(sim::Outcome::kBudgetExceeded),
               "budget_exceeded");
}

// --------------------------------------------------------------- RunReport

sim::RunReport tiny_report() {
  sim::EvalConfig cfg;
  cfg.episodes = 3;
  sim::Evaluator ev(cfg);
  sim::ScenarioSuite suite = small_suite();
  // A label with JSON specials: user-settable labels must survive the
  // writer/loader round trip.
  suite.cells[0].label = "easy \"quoted\" \\ backslash";

  sim::RunReport report;
  report.meta.suite = "runtime_test";
  report.meta.git_describe = sim::build_git_describe();
  report.meta.threads = 2;
  report.meta.episodes_per_cell = cfg.episodes;
  // Above 2^53: must survive the round trip exactly (u64s travel as
  // strings, not lossy JSON numbers).
  report.meta.base_seed = (1ull << 60) + 7;
  report.meta.config_fingerprint = sim::config_fingerprint(cfg);
  const auto detailed = ev.evaluate_suite_detailed(fixed_factory(), suite);
  report.add_cells_detailed(sim::aggregate_suite(detailed, "fixed"), detailed);
  return report;
}

TEST(RunReportTest, RoundTripsThroughJson) {
  const sim::RunReport report = tiny_report();
  const std::string path =
      (std::filesystem::temp_directory_path() / "icoil_report_test.json")
          .string();
  std::string error;
  ASSERT_TRUE(report.save(path, &error)) << error;

  sim::RunReport loaded;
  ASSERT_TRUE(sim::RunReport::load(path, &loaded, &error)) << error;
  std::filesystem::remove(path);

  EXPECT_EQ(loaded.meta.schema_version, sim::kRunReportSchemaVersion);
  EXPECT_EQ(loaded.meta.suite, report.meta.suite);
  EXPECT_EQ(loaded.meta.git_describe, report.meta.git_describe);
  EXPECT_EQ(loaded.meta.threads, report.meta.threads);
  EXPECT_EQ(loaded.meta.episodes_per_cell, report.meta.episodes_per_cell);
  EXPECT_EQ(loaded.meta.base_seed, report.meta.base_seed);
  EXPECT_EQ(loaded.meta.config_fingerprint, report.meta.config_fingerprint);

  ASSERT_EQ(loaded.cells.size(), report.cells.size());
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const sim::CellRecord& a = report.cells[c];
    const sim::CellRecord& b = loaded.cells[c];
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.method, b.method);
    EXPECT_EQ(a.generator, b.generator);
    EXPECT_EQ(a.episodes, b.episodes);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.budget_exceeded, b.budget_exceeded);
    EXPECT_DOUBLE_EQ(a.success_ratio, b.success_ratio);
    EXPECT_DOUBLE_EQ(a.park_time_mean, b.park_time_mean);
    EXPECT_DOUBLE_EQ(a.min_clearance_mean, b.min_clearance_mean);
    ASSERT_EQ(a.episode_records.size(), b.episode_records.size());
    for (std::size_t e = 0; e < a.episode_records.size(); ++e) {
      EXPECT_EQ(a.episode_records[e].outcome, b.episode_records[e].outcome);
      EXPECT_DOUBLE_EQ(a.episode_records[e].park_time,
                       b.episode_records[e].park_time);
    }
  }
}

TEST(RunReportTest, LoaderRejectsGarbageAndFutureSchema) {
  sim::RunReport out;
  std::string error;
  EXPECT_FALSE(sim::RunReport::parse("not json at all", &out, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(sim::RunReport::parse("[1,2,3]", &out, &error));
  error.clear();
  EXPECT_FALSE(sim::RunReport::parse(
      "{\"schema_version\": 999, \"meta\": {}, \"cells\": []}", &out, &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos);
  error.clear();
  // Merge-mangled numbers must be rejected, not prefix-parsed.
  EXPECT_FALSE(sim::RunReport::parse(
      "{\"schema_version\":1,\"meta\":{},\"cells\":[{\"success_ratio\":1..0}]}",
      &out, &error));
  EXPECT_NE(error.find("number"), std::string::npos);
  EXPECT_FALSE(sim::RunReport::load("/nonexistent/nope.json", &out, &error));
}

TEST(RunReportTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(sim::json_escape("plain"), "plain");
  EXPECT_EQ(sim::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(sim::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(sim::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(RunReportTest, AggregateJsonLineIsParseableJson) {
  sim::Aggregate agg;
  agg.method = "m\"x";
  agg.episodes = 2;
  agg.successes = 1;
  // Wrap the line into a document our own parser accepts: proof it is
  // well-formed JSON despite the quote in the method name.
  const std::string line =
      sim::aggregate_json_line("bench\\name", "cell \"q\"", agg);
  sim::RunReport dummy;
  std::string error;
  const std::string doc =
      "{\"schema_version\":1,\"meta\":{},\"cells\":[" + line + "]}";
  ASSERT_TRUE(sim::RunReport::parse(doc, &dummy, &error)) << error;
  ASSERT_EQ(dummy.cells.size(), 1u);
  EXPECT_EQ(dummy.cells[0].method, "m\"x");
  EXPECT_EQ(dummy.cells[0].episodes, 2);
}

TEST(RunReportTest, BaselineCompareVerdicts) {
  const sim::RunReport report = tiny_report();

  // Self-compare is clean.
  sim::BaselineVerdict verdict = sim::compare_to_baseline(report, report);
  EXPECT_TRUE(verdict.ok) << verdict.summary();
  EXPECT_TRUE(verdict.failures.empty());

  // Doctored baseline with an inflated success rate -> regression.
  sim::RunReport doctored = report;
  doctored.cells[0].success_ratio += 0.5;
  doctored.cells[0].successes += 1;
  verdict = sim::compare_to_baseline(report, doctored);
  EXPECT_FALSE(verdict.ok);
  ASSERT_EQ(verdict.failures.size(), 1u);
  EXPECT_NE(verdict.failures[0].find("success ratio"), std::string::npos);

  // A slower run fails the park-time gate (only over parked episodes).
  sim::RunReport slower = report;
  bool bumped = false;
  for (sim::CellRecord& cell : slower.cells) {
    if (cell.successes > 0 && cell.park_time_mean > 0) {
      cell.park_time_mean *= 2.0;
      bumped = true;
    }
  }
  if (bumped) {
    verdict = sim::compare_to_baseline(slower, report);
    EXPECT_FALSE(verdict.ok);
  }

  // Missing cell in the current run -> regression; extra cell -> note only.
  sim::RunReport shrunk = report;
  shrunk.cells.pop_back();
  verdict = sim::compare_to_baseline(shrunk, report);
  EXPECT_FALSE(verdict.ok);
  verdict = sim::compare_to_baseline(report, shrunk);
  EXPECT_TRUE(verdict.ok);
  EXPECT_FALSE(verdict.notes.empty());

  // Tolerance absorbs small drift.
  sim::BaselineTolerance loose;
  loose.success_drop = 0.95;
  loose.park_time_slowdown = 10.0;
  verdict = sim::compare_to_baseline(report, doctored, loose);
  EXPECT_TRUE(verdict.ok);
}

}  // namespace
}  // namespace icoil
