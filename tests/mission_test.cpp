// Mission-layer tests: BayLedger semantics, traffic-agent determinism,
// the multi-leg mission state machine (golden leg sequences, forced
// replans), bit-identical results across TaskPool widths, the curriculum
// mission-leg expander wiring, and the RunReport v2 mission block.
//
// Full mission runs are wall-expensive (seconds each), so every test that
// needs one reads the shared fixture below — two missions run once per
// width, reused by the golden, replan and determinism tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/controller_registry.hpp"
#include "core/task_pool.hpp"
#include "mission/mission.hpp"
#include "mission/traffic.hpp"
#include "sim/curriculum.hpp"
#include "sim/report.hpp"
#include "sim/session.hpp"
#include "world/scenario.hpp"
#include "world/world.hpp"

namespace icoil::mission {
namespace {

// ---------------------------------------------------------------- ledger

TEST(BayLedgerTest, ClaimStealReleaseSemantics) {
  BayLedger ledger(4);
  EXPECT_EQ(ledger.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) EXPECT_TRUE(ledger.is_free(b));

  EXPECT_TRUE(ledger.claim(1, BayLedger::kEgoOwner));
  EXPECT_EQ(ledger.owner_of(1), BayLedger::kEgoOwner);
  EXPECT_FALSE(ledger.is_free(1));
  // Re-claim by the same owner is idempotent; another owner is refused.
  EXPECT_TRUE(ledger.claim(1, BayLedger::kEgoOwner));
  EXPECT_FALSE(ledger.claim(1, 3));
  EXPECT_EQ(ledger.owner_of(1), BayLedger::kEgoOwner);

  // Steal overrides and reports the evicted owner.
  EXPECT_EQ(ledger.steal(1, 3), BayLedger::kEgoOwner);
  EXPECT_EQ(ledger.owner_of(1), 3);
  EXPECT_EQ(ledger.steal(0, 2), BayLedger::kFree);

  // Release is owner-checked: the wrong owner cannot free a bay.
  ledger.release(1, BayLedger::kEgoOwner);
  EXPECT_EQ(ledger.owner_of(1), 3);
  ledger.release(1, 3);
  EXPECT_TRUE(ledger.is_free(1));
}

// --------------------------------------------------------------- traffic

/// Base world for traffic-only tests: the quiet_lot statics plus the
/// traffic roster, assembled the same way Mission::run_leg does.
world::Scenario traffic_world_scenario(const MissionSpec& spec,
                                       const TrafficSimulator& traffic) {
  world::ScenarioOptions options;
  options.generator = spec.generator;
  options.params = spec.params;
  options.difficulty = spec.difficulty;
  world::Scenario sc = world::make_scenario(options, 42);
  sc.obstacles.erase(
      std::remove_if(sc.obstacles.begin(), sc.obstacles.end(),
                     [](const world::Obstacle& o) { return o.dynamic(); }),
      sc.obstacles.end());
  for (world::Obstacle& o : traffic.roster(1000)) sc.obstacles.push_back(o);
  return sc;
}

TEST(TrafficSimulatorTest, SameSeedReplaysBitForBit) {
  // rush_hour has a 0.4-probability bay claimer, so behaviour dice actually
  // roll; quiet_lot traffic can stay fully deterministic for hundreds of
  // frames and would not distinguish seeds.
  const MissionSpec& spec = MissionRegistry::instance().at("rush_hour");
  world::ScenarioOptions options;
  options.generator = spec.generator;
  options.params = spec.params;
  const world::Scenario probe = world::make_scenario(options, 42);

  TrafficSimulator a(spec.traffic, probe.map, 123);
  TrafficSimulator b(spec.traffic, probe.map, 123);
  TrafficSimulator c(spec.traffic, probe.map, 456);

  world::World wa(traffic_world_scenario(spec, a));
  world::World wb(traffic_world_scenario(spec, b));
  world::World wc(traffic_world_scenario(spec, c));
  a.attach(wa);
  b.attach(wb);
  c.attach(wc);

  // Ego parked well away from every staging point so the ego-clearance
  // gate never suppresses bay claims; run long enough for several claim
  // dice to roll.
  for (int frame = 0; frame < 1600; ++frame) {
    const double t = 0.05 * frame;
    const geom::Pose2 ego{{2.0, 2.0}, 0.0};
    a.set_ego(ego);
    b.set_ego(ego);
    c.set_ego(ego);
    wa.step(0.05);
    wb.step(0.05);
    wc.step(0.05);
    ASSERT_EQ(a.state_fingerprint(), b.state_fingerprint())
        << "diverged at t=" << t;
  }
  for (std::size_t i = 0; i < a.agent_count(); ++i) {
    EXPECT_EQ(a.agent_pose(i).position.x, b.agent_pose(i).position.x);
    EXPECT_EQ(a.agent_pose(i).position.y, b.agent_pose(i).position.y);
    EXPECT_EQ(a.agent_pose(i).heading, b.agent_pose(i).heading);
  }
  // A different seed must diverge (start offsets are seed-independent but
  // behaviour dice are not; the cheapest observable is the fingerprint).
  EXPECT_NE(a.state_fingerprint(), c.state_fingerprint());
}

TEST(TrafficSimulatorTest, RosterNamesAndAttachValidation) {
  const MissionSpec& spec = MissionRegistry::instance().at("quiet_lot");
  world::ScenarioOptions options;
  options.generator = spec.generator;
  const world::Scenario probe = world::make_scenario(options, 42);
  TrafficSimulator traffic(spec.traffic, probe.map, 7);

  const std::vector<world::Obstacle> roster = traffic.roster(500);
  ASSERT_EQ(roster.size(), spec.traffic.agents.size());
  EXPECT_EQ(roster[0].name, "traffic_cruiser_a");
  EXPECT_EQ(roster[0].id, 500);
  for (const world::Obstacle& o : roster) EXPECT_TRUE(o.driven);

  // Attaching to a world without the roster must fail loudly.
  world::Scenario bare = probe;
  world::World world(bare);
  EXPECT_THROW(traffic.attach(world), std::logic_error);
}

// ------------------------------------------------- shared mission fixture

struct MissionFixture {
  MissionResult quiet;        ///< quiet_lot seed 9001 (clean golden run)
  MissionResult contested;    ///< contested_lot seed 9000 (forced replan)
  MissionResult quiet_wide;   ///< same missions, 16-worker pool
  MissionResult contested_wide;
  std::vector<world::Scenario> quiet_legs;  ///< leg_scenarios of `quiet`
  bool quiet_rival_fired = false;
  bool contested_rival_fired = false;
};

/// Runs the two fixture missions on a pool of `workers`; results land in
/// submission order regardless of completion order.
void run_fixture_pair(int workers, MissionResult* quiet,
                      MissionResult* contested,
                      std::vector<world::Scenario>* quiet_legs,
                      bool* quiet_rival, bool* contested_rival) {
  core::TaskPool pool(workers);
  pool.submit([&](const core::TaskPool::Context&) {
    const auto controller = core::ControllerRegistry::instance().build("co");
    Mission m(MissionRegistry::instance().at("quiet_lot"), 9001);
    *quiet = m.run(*controller);
    if (quiet_legs) *quiet_legs = m.leg_scenarios();
    if (quiet_rival) *quiet_rival = m.traffic().rival_fired();
  });
  pool.submit([&](const core::TaskPool::Context&) {
    const auto controller = core::ControllerRegistry::instance().build("co");
    Mission m(MissionRegistry::instance().at("contested_lot"), 9000);
    *contested = m.run(*controller);
    if (contested_rival) *contested_rival = m.traffic().rival_fired();
  });
  pool.wait_idle();
}

const MissionFixture& fixture() {
  static const MissionFixture fx = [] {
    MissionFixture f;
    run_fixture_pair(1, &f.quiet, &f.contested, &f.quiet_legs,
                     &f.quiet_rival_fired, &f.contested_rival_fired);
    run_fixture_pair(16, &f.quiet_wide, &f.contested_wide, nullptr, nullptr,
                     nullptr);
    return f;
  }();
  return fx;
}

// --------------------------------------------------------------- mission

TEST(MissionTest, QuietLotGoldenLegSequence) {
  const MissionResult& r = fixture().quiet;
  EXPECT_EQ(r.version, kMissionResultVersion);
  EXPECT_EQ(r.mission, "quiet_lot");
  EXPECT_EQ(r.method, "CO");  // MissionResult records the controller's name
  EXPECT_EQ(r.seed, 9001u);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.replans, 0);
  EXPECT_GE(r.parked_bay, 0);
  EXPECT_GT(r.park_time, 0.0);
  EXPECT_GT(r.exit_time, r.park_time);

  ASSERT_EQ(r.legs.size(), 6u);
  const LegType golden[6] = {LegType::kEnterLot, LegType::kCruiseToBay,
                             LegType::kPark,     LegType::kDwell,
                             LegType::kUnpark,   LegType::kExit};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(r.legs[i].type, golden[i]) << "leg " << i;
    EXPECT_EQ(r.legs[i].status, LegStatus::kCompleted) << "leg " << i;
  }
  // The park/dwell/unpark legs all reference the bay the mission parked in.
  EXPECT_EQ(r.legs[2].target_bay, r.parked_bay);
  EXPECT_EQ(r.legs[3].target_bay, r.parked_bay);
  EXPECT_EQ(r.legs[4].target_bay, r.parked_bay);
  // No rival in the quiet template.
  EXPECT_FALSE(fixture().quiet_rival_fired);

  // Driving legs only (dwell has no Session), tagged with goals.
  const std::vector<world::Scenario>& legs = fixture().quiet_legs;
  ASSERT_EQ(legs.size(), 5u);
  for (const world::Scenario& sc : legs) {
    bool has_traffic = false;
    for (const world::Obstacle& o : sc.obstacles)
      if (o.driven) has_traffic = true;
    EXPECT_TRUE(has_traffic);
  }
}

TEST(MissionTest, ContestedLotForcesReplan) {
  const MissionResult& r = fixture().contested;
  EXPECT_TRUE(fixture().contested_rival_fired);
  EXPECT_GE(r.replans, 1);

  int cruise_legs = 0, replanned_legs = 0;
  for (const LegResult& leg : r.legs) {
    if (leg.type == LegType::kCruiseToBay) ++cruise_legs;
    if (leg.status == LegStatus::kReplanned) ++replanned_legs;
  }
  EXPECT_GE(cruise_legs, 2);
  EXPECT_GE(replanned_legs, 1);
  EXPECT_GE(r.legs.size(), 3u);
  // Seed 9000 is a verified full success: the mission recovers from the
  // steal, parks in another bay and exits.
  EXPECT_TRUE(r.success);
  EXPECT_NE(r.parked_bay, 4) << "the rival kept the stolen bay";
}

TEST(MissionTest, BitIdenticalAcrossTaskPoolWidths) {
  const MissionFixture& f = fixture();
  EXPECT_EQ(f.quiet.fingerprint(), f.quiet_wide.fingerprint());
  EXPECT_EQ(f.contested.fingerprint(), f.contested_wide.fingerprint());
  // The fingerprint digests outcome-bearing fields only; spot-check the raw
  // fields too so a fingerprint bug cannot mask a divergence.
  EXPECT_EQ(f.quiet.parked_bay, f.quiet_wide.parked_bay);
  EXPECT_EQ(f.quiet.park_time, f.quiet_wide.park_time);
  EXPECT_EQ(f.quiet.exit_time, f.quiet_wide.exit_time);
  EXPECT_EQ(f.quiet.legs.size(), f.quiet_wide.legs.size());
  EXPECT_EQ(f.contested.replans, f.contested_wide.replans);
  EXPECT_EQ(f.contested.legs.size(), f.contested_wide.legs.size());
  // Wall clock may differ between runs — and must not affect fingerprints.
  EXPECT_EQ(MissionResult{}.fingerprint(), MissionResult{}.fingerprint());
}

TEST(MissionTest, RegistryBuiltinsAndLookup) {
  MissionRegistry& registry = MissionRegistry::instance();
  const std::vector<std::string> names = registry.names();
  for (const char* want : {"quiet_lot", "contested_lot", "rush_hour"})
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
  EXPECT_THROW(registry.at("no_such_mission"), std::invalid_argument);
  EXPECT_EQ(registry.find("no_such_mission"), nullptr);
  // Template fingerprints separate revisions AND templates.
  EXPECT_NE(registry.at("quiet_lot").fingerprint(),
            registry.at("contested_lot").fingerprint());
  EXPECT_NE(registry.at("contested_lot").fingerprint(),
            registry.at("rush_hour").fingerprint());
}

// --------------------------------------------------------------- session

TEST(MissionSessionTest, ExplicitStartCarriesStateAndClock) {
  world::ScenarioOptions options;
  options.generator = "multi_row_lot";
  world::Scenario sc = world::make_scenario(options, 42);
  const auto controller = core::ControllerRegistry::instance().build("co");

  vehicle::State start;
  start.pose = {{10.0, 9.6}, 0.5};
  start.speed = 1.25;
  sim::Session session =
      sim::Session::open(sc, *controller, 7, start, /*world_time=*/12.5);

  EXPECT_EQ(session.frames(), 0u);
  EXPECT_EQ(session.sim_time(), 0.0);
  EXPECT_EQ(session.state().pose.x(), 10.0);
  EXPECT_EQ(session.state().speed, 1.25);
  EXPECT_EQ(session.world().time(), 12.5);

  session.step();
  EXPECT_EQ(session.frames(), 1u);
  EXPECT_EQ(session.sim_time(), session.config().dt);
  EXPECT_NEAR(session.world().time(), 12.5 + session.config().dt, 1e-12);
}

// ------------------------------------------------------------ curriculum

TEST(MissionCurriculumTest, ParseAndLabelMissionCells) {
  const sim::Curriculum c = sim::Curriculum::parse("mission:quiet_lot,canonical");
  ASSERT_EQ(c.entries.size(), 2u);
  EXPECT_EQ(c.entries[0].mission, "quiet_lot");
  EXPECT_EQ(c.entries[0].label(), "mission:quiet_lot");
  EXPECT_TRUE(c.entries[1].mission.empty());
  EXPECT_THROW(sim::Curriculum::parse("mission:"), std::invalid_argument);

  // The mission field participates in the fingerprint only when set, so
  // pre-mission curricula keep their cached dataset/policy fingerprints.
  sim::Curriculum plain = sim::Curriculum::canonical();
  sim::Curriculum with_mission = sim::Curriculum::canonical();
  with_mission.entries[0].mission = "quiet_lot";
  EXPECT_NE(plain.fingerprint(), with_mission.fingerprint());
}

TEST(MissionCurriculumTest, ExpanderProducesRecordableLegs) {
  // Without the hook, mission cells have no expansion.
  sim::set_mission_leg_expander({});
  EXPECT_FALSE(static_cast<bool>(sim::mission_leg_expander()));

  install_curriculum_expander();
  const sim::MissionLegExpander& expand = sim::mission_leg_expander();
  ASSERT_TRUE(static_cast<bool>(expand));

  const std::vector<world::Scenario> legs = expand("quiet_lot", 9001);
  ASSERT_GE(legs.size(), 5u);
  for (const world::Scenario& sc : legs) {
    EXPECT_EQ(sc.generator, "mission:quiet_lot");
    // Traffic is frozen: every obstacle records as a plain static, so the
    // expert's reference planner treats the snapshot as a static scene.
    for (const world::Obstacle& o : sc.obstacles) {
      EXPECT_FALSE(o.driven);
      EXPECT_FALSE(o.dynamic());
    }
  }
  // Legs end at distinct goals (cruise staging vs bay interior vs exit).
  EXPECT_NE(legs.front().map.goal_pose.position.x,
            legs.back().map.goal_pose.position.x);
}

// ---------------------------------------------------------------- report

TEST(MissionReportTest, MissionBlockRoundTrips) {
  sim::RunReport report;
  report.meta.suite = "mission";
  report.meta.threads = 16;
  report.meta.episodes_per_cell = 4;
  report.meta.base_seed = 9000;

  sim::MissionTemplateRow row;
  row.mission = "contested_lot";
  row.method = "co";
  row.missions = 4;
  row.succeeded = 3;
  row.success_ratio = 0.75;
  row.legs = 27;
  row.legs_per_mission = 6.75;
  row.replans = 5;
  row.replans_per_mission = 1.25;
  row.collisions = 1;
  row.timeouts = 0;
  row.park_time_p50 = 38.4;
  row.park_time_p95 = 51.9;
  row.exit_time_p50 = 64.2;
  row.exit_time_p95 = 80.8;
  row.wall_seconds_mean = 12.5;
  row.spec_fingerprint = 0xf2a08233e0abb0fdull;
  row.result_fingerprint = 0xbfe3f6a9d0787646ull;
  sim::MissionStats stats;
  stats.rows.push_back(row);
  report.mission = stats;

  sim::RunReport loaded;
  std::string error;
  ASSERT_TRUE(sim::RunReport::parse(report.to_json(), &loaded, &error))
      << error;
  EXPECT_EQ(loaded.meta.schema_version, sim::kRunReportSchemaVersion);
  ASSERT_TRUE(loaded.mission.has_value());
  ASSERT_EQ(loaded.mission->rows.size(), 1u);
  const sim::MissionTemplateRow& got = loaded.mission->rows[0];
  EXPECT_EQ(got.mission, row.mission);
  EXPECT_EQ(got.method, row.method);
  EXPECT_EQ(got.missions, row.missions);
  EXPECT_EQ(got.succeeded, row.succeeded);
  EXPECT_EQ(got.success_ratio, row.success_ratio);
  EXPECT_EQ(got.legs, row.legs);
  EXPECT_EQ(got.legs_per_mission, row.legs_per_mission);
  EXPECT_EQ(got.replans, row.replans);
  EXPECT_EQ(got.replans_per_mission, row.replans_per_mission);
  EXPECT_EQ(got.collisions, row.collisions);
  EXPECT_EQ(got.timeouts, row.timeouts);
  EXPECT_EQ(got.park_time_p50, row.park_time_p50);
  EXPECT_EQ(got.park_time_p95, row.park_time_p95);
  EXPECT_EQ(got.exit_time_p50, row.exit_time_p50);
  EXPECT_EQ(got.exit_time_p95, row.exit_time_p95);
  EXPECT_EQ(got.wall_seconds_mean, row.wall_seconds_mean);
  EXPECT_EQ(got.spec_fingerprint, row.spec_fingerprint);
  EXPECT_EQ(got.result_fingerprint, row.result_fingerprint);
}

TEST(MissionReportTest, V1DocumentsStillLoadAndFutureRejected) {
  // A v1 document (no mission block) must load with mission absent.
  const std::string v1 =
      "{\"schema_version\":1,\"meta\":{\"suite\":\"table2\","
      "\"git_describe\":\"test\",\"threads\":2,\"episodes_per_cell\":1,"
      "\"base_seed\":\"5\",\"config_fingerprint\":\"00000000000000aa\","
      "\"aborted\":false},\"cells\":[]}";
  sim::RunReport loaded;
  std::string error;
  ASSERT_TRUE(sim::RunReport::parse(v1, &loaded, &error)) << error;
  EXPECT_EQ(loaded.meta.schema_version, 1);
  EXPECT_FALSE(loaded.mission.has_value());

  // A future schema version is refused, not misread.
  const std::string v99 = "{\"schema_version\":99,\"cells\":[]}";
  EXPECT_FALSE(sim::RunReport::parse(v99, &loaded, &error));
  EXPECT_NE(error.find("unsupported"), std::string::npos);
}

TEST(MissionReportTest, BaselineComparatorCatchesMissionRegressions) {
  const auto make_report = [](double success, double replans_per_mission,
                              std::uint64_t spec_fp) {
    sim::RunReport r;
    sim::MissionTemplateRow row;
    row.mission = "contested_lot";
    row.method = "co";
    row.missions = 4;
    row.success_ratio = success;
    row.replans_per_mission = replans_per_mission;
    row.spec_fingerprint = spec_fp;
    sim::MissionStats stats;
    stats.rows.push_back(row);
    r.mission = stats;
    return r;
  };

  const sim::RunReport baseline = make_report(0.75, 1.0, 0xabc);
  // Identical run: clean.
  EXPECT_TRUE(sim::compare_to_baseline(make_report(0.75, 1.0, 0xabc), baseline)
                  .ok);
  // Success collapse: regression.
  EXPECT_FALSE(sim::compare_to_baseline(make_report(0.25, 1.0, 0xabc), baseline)
                   .ok);
  // Replans stopped firing: regression (the contested template's reason to
  // exist is the forced replan).
  EXPECT_FALSE(sim::compare_to_baseline(make_report(0.75, 0.0, 0xabc), baseline)
                   .ok);
  // Template changed: note, not failure — numbers are not comparable.
  const sim::BaselineVerdict changed =
      sim::compare_to_baseline(make_report(0.10, 0.0, 0xdef), baseline);
  EXPECT_TRUE(changed.ok);
  EXPECT_FALSE(changed.notes.empty());
  // Missing row: regression.
  sim::RunReport empty;
  EXPECT_FALSE(sim::compare_to_baseline(empty, baseline).ok);
}

}  // namespace
}  // namespace icoil::mission
