#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "co/hybrid_astar.hpp"
#include "co/planner.hpp"
#include "co/reeds_shepp.hpp"
#include "co/refpath.hpp"
#include "co/trajopt.hpp"
#include "geom/angles.hpp"
#include "mathkit/rng.hpp"
#include "world/scenario.hpp"

namespace icoil::co {
namespace {

// ------------------------------------------------------------ ReedsShepp

TEST(ReedsSheppTest, StraightAhead) {
  const ReedsShepp rs(3.0);
  const auto path = rs.shortest_path({0, 0, 0}, {10, 0, 0});
  ASSERT_TRUE(path.has_value());
  EXPECT_NEAR(rs.length(*path), 10.0, 1e-6);
}

TEST(ReedsSheppTest, StraightBack) {
  const ReedsShepp rs(3.0);
  const auto path = rs.shortest_path({0, 0, 0}, {-5, 0, 0});
  ASSERT_TRUE(path.has_value());
  EXPECT_NEAR(rs.length(*path), 5.0, 1e-6);
  // Must be driven in reverse.
  double signed_sum = 0.0;
  for (const RsSegment& s : path->segments) signed_sum += s.length;
  EXPECT_LT(signed_sum, 0.0);
}

TEST(ReedsSheppTest, QuarterTurnArcLength) {
  const double r = 2.5;
  const ReedsShepp rs(r);
  // Goal on the turning circle: quarter left turn.
  const auto path = rs.shortest_path({0, 0, 0}, {r, r, geom::kPi / 2.0});
  ASSERT_TRUE(path.has_value());
  EXPECT_NEAR(rs.length(*path), r * geom::kPi / 2.0, 1e-6);
}

TEST(ReedsSheppTest, LengthAtLeastEuclidean) {
  const ReedsShepp rs(2.0);
  math::Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const geom::Pose2 from{rng.uniform(-5, 5), rng.uniform(-5, 5),
                           rng.uniform(-3, 3)};
    const geom::Pose2 to{rng.uniform(-5, 5), rng.uniform(-5, 5),
                         rng.uniform(-3, 3)};
    const auto path = rs.shortest_path(from, to);
    ASSERT_TRUE(path.has_value());
    EXPECT_GE(rs.length(*path),
              geom::distance(from.position, to.position) - 1e-6);
  }
}

// The decisive property: sampling the chosen word must land on the goal.
class ReedsSheppEndpoint : public ::testing::TestWithParam<int> {};

TEST_P(ReedsSheppEndpoint, SampledPathReachesGoal) {
  math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const ReedsShepp rs(rng.uniform(1.5, 4.0));
  const geom::Pose2 from{rng.uniform(-8, 8), rng.uniform(-8, 8),
                         rng.uniform(-geom::kPi, geom::kPi)};
  const geom::Pose2 to{rng.uniform(-8, 8), rng.uniform(-8, 8),
                       rng.uniform(-geom::kPi, geom::kPi)};
  const auto path = rs.shortest_path(from, to);
  ASSERT_TRUE(path.has_value());
  const auto samples = rs.sample(from, *path, 0.05);
  ASSERT_FALSE(samples.empty());
  const geom::Pose2& end = samples.back().pose;
  EXPECT_NEAR(end.x(), to.x(), 0.02);
  EXPECT_NEAR(end.y(), to.y(), 0.02);
  EXPECT_NEAR(std::abs(geom::angle_diff(end.heading, to.heading)), 0.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(RandomPoses, ReedsSheppEndpoint, ::testing::Range(0, 60));

TEST(ReedsSheppTest, SampleStepRespected) {
  const ReedsShepp rs(3.0);
  const auto path = rs.shortest_path({0, 0, 0}, {8, 3, 1.0});
  ASSERT_TRUE(path.has_value());
  const auto samples = rs.sample({0, 0, 0}, *path, 0.2);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double step =
        geom::distance(samples[i - 1].pose.position, samples[i].pose.position);
    EXPECT_LE(step, 0.25);
  }
}

TEST(ReedsSheppTest, AllPathsNonEmptyAndFinite) {
  const ReedsShepp rs(2.0);
  const auto all = rs.all_paths({0, 0, 0}, {4, 2, 0.5});
  EXPECT_GT(all.size(), 3u);
  for (const RsPath& p : all) {
    EXPECT_FALSE(p.segments.empty());
    EXPECT_LT(p.total(), 100.0);
  }
}

// --------------------------------------------------------------- RefPath

TEST(RefPathTest, ArcLengthRecomputed) {
  std::vector<PathPoint> pts = {{{0, 0, 0}, 1, 99.0},
                                {{1, 0, 0}, 1, 99.0},
                                {{1, 2, 0}, 1, 99.0}};
  const RefPath path(std::move(pts));
  EXPECT_DOUBLE_EQ(path[0].s, 0.0);
  EXPECT_DOUBLE_EQ(path[1].s, 1.0);
  EXPECT_DOUBLE_EQ(path[2].s, 3.0);
  EXPECT_DOUBLE_EQ(path.length(), 3.0);
}

TEST(RefPathTest, NearestIndexWithHint) {
  std::vector<PathPoint> pts;
  for (int i = 0; i <= 20; ++i) pts.push_back({{i * 1.0, 0, 0}, 1, 0});
  const RefPath path(std::move(pts));
  EXPECT_EQ(path.nearest_index({5.2, 1.0}), 5u);
  // With a hint past the point, the search cannot go back.
  EXPECT_GE(path.nearest_index({5.2, 1.0}, 10), 10u);
}

TEST(RefPathTest, IndexAtArc) {
  std::vector<PathPoint> pts;
  for (int i = 0; i <= 10; ++i) pts.push_back({{i * 2.0, 0, 0}, 1, 0});
  const RefPath path(std::move(pts));
  EXPECT_EQ(path.index_at_arc(0.0), 0u);
  EXPECT_EQ(path.index_at_arc(5.0), 3u);   // first s >= 5 is 6.0 at index 3
  EXPECT_EQ(path.index_at_arc(999.0), 10u);
}

TEST(RefPathTest, DirectionSwitchCount) {
  std::vector<PathPoint> pts = {{{0, 0, 0}, 1, 0},
                                {{1, 0, 0}, 1, 0},
                                {{2, 0, 0}, -1, 0},
                                {{1, 0, 0}, -1, 0},
                                {{2, 0, 0}, 1, 0}};
  const RefPath path(std::move(pts));
  EXPECT_EQ(path.num_direction_switches(), 2);
}

// ------------------------------------------------------------ HybridAStar

std::vector<geom::Obb> static_obstacles(const world::Scenario& sc) {
  std::vector<geom::Obb> out;
  for (const world::Obstacle& o : sc.obstacles)
    if (!o.dynamic()) out.push_back(o.shape);
  return out;
}

TEST(HybridAStarTest, PlansToParkingBay) {
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  const world::Scenario sc = world::make_scenario(opt, 500);
  HybridAStar astar(HybridAStarConfig{}, vehicle::VehicleParams{});
  const auto path = astar.plan(sc.start_pose, sc.map.goal_pose,
                               static_obstacles(sc), sc.map.bounds);
  ASSERT_TRUE(path.has_value());
  EXPECT_GT(path->size(), 10u);
  // Ends at the goal pose.
  EXPECT_NEAR(path->back().pose.x(), sc.map.goal_pose.x(), 0.3);
  EXPECT_NEAR(path->back().pose.y(), sc.map.goal_pose.y(), 0.3);
  // A reverse-in park needs at least one direction switch.
  EXPECT_GE(path->num_direction_switches(), 1);
  // Final approach into the bay is in reverse.
  EXPECT_EQ(path->back().direction, -1);
}

TEST(HybridAStarTest, PathAvoidsObstacles) {
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  const world::Scenario sc = world::make_scenario(opt, 501);
  HybridAStar astar(HybridAStarConfig{}, vehicle::VehicleParams{});
  const auto obstacles = static_obstacles(sc);
  const auto path = astar.plan(sc.start_pose, sc.map.goal_pose, obstacles,
                               sc.map.bounds);
  ASSERT_TRUE(path.has_value());
  vehicle::BicycleModel model;
  for (const PathPoint& p : path->points()) {
    const geom::Obb fp = model.footprint(p.pose);
    for (const geom::Obb& o : obstacles)
      EXPECT_FALSE(geom::overlaps(fp, o))
          << "at s=" << p.s << " (" << p.pose.x() << "," << p.pose.y() << ")";
  }
}

TEST(HybridAStarTest, FailsWhenStartBlocked) {
  HybridAStar astar(HybridAStarConfig{}, vehicle::VehicleParams{});
  const std::vector<geom::Obb> wall = {geom::Obb{{5.0, 5.0}, 0.0, 3.0, 3.0}};
  const geom::Aabb bounds{{0, 0}, {10, 10}};
  const auto path = astar.plan({5.0, 5.0, 0.0}, {1.0, 1.0, 0.0}, wall, bounds);
  EXPECT_FALSE(path.has_value());
}

TEST(HybridAStarTest, FallbackAlwaysProducesPath) {
  HybridAStar astar(HybridAStarConfig{}, vehicle::VehicleParams{});
  const RefPath path = astar.reeds_shepp_fallback({0, 0, 0}, {10, 5, 1.0});
  EXPECT_GT(path.size(), 2u);
  EXPECT_NEAR(path.back().pose.x(), 10.0, 0.1);
}

TEST(HybridAStarTest, PoseFreeChecksBoundsAndObstacles) {
  HybridAStar astar(HybridAStarConfig{}, vehicle::VehicleParams{});
  const geom::Aabb bounds{{0, 0}, {20, 20}};
  const std::vector<geom::Obb> obs = {geom::Obb{{10, 10}, 0.0, 1.0, 1.0}};
  EXPECT_TRUE(astar.pose_free({5, 5, 0}, obs, bounds));
  EXPECT_FALSE(astar.pose_free({10, 10, 0}, obs, bounds));
  EXPECT_FALSE(astar.pose_free({0.5, 0.5, 0.7}, obs, bounds));  // corner out
}

// --------------------------------------------------------------- TrajOpt

std::vector<TargetPoint> straight_targets(int h, double v, double spacing,
                                          double y = 0.0) {
  std::vector<TargetPoint> out;
  for (int i = 1; i <= h; ++i)
    out.push_back({{i * spacing, y, 0.0}, v});
  return out;
}

TEST(TrajOptTest, TracksStraightLine) {
  TrajOptConfig cfg;
  TrajOpt opt(cfg, vehicle::VehicleParams{});
  vehicle::State s;
  s.speed = 1.0;
  const auto targets = straight_targets(cfg.horizon, 1.0, 1.0 * cfg.dt);
  const TrajOptResult res = opt.solve(s, targets, {});
  ASSERT_TRUE(res.ok);
  EXPECT_NEAR(res.control.steer, 0.0, 0.05);
  // Predicted trajectory stays near y=0.
  for (const vehicle::State& p : res.predicted) EXPECT_NEAR(p.y(), 0.0, 0.05);
}

TEST(TrajOptTest, AcceleratesTowardTargetSpeed) {
  TrajOptConfig cfg;
  TrajOpt opt(cfg, vehicle::VehicleParams{});
  vehicle::State s;  // at rest
  const auto targets = straight_targets(cfg.horizon, 1.5, 1.5 * cfg.dt);
  const TrajOptResult res = opt.solve(s, targets, {});
  ASSERT_TRUE(res.ok);
  EXPECT_GT(res.control.accel, 0.2);
}

TEST(TrajOptTest, BrakesWhenTargetsStop) {
  TrajOptConfig cfg;
  TrajOpt opt(cfg, vehicle::VehicleParams{});
  vehicle::State s;
  s.speed = 2.0;
  std::vector<TargetPoint> targets;
  for (int i = 1; i <= cfg.horizon; ++i) targets.push_back({{0.5, 0, 0}, 0.0});
  const TrajOptResult res = opt.solve(s, targets, {});
  ASSERT_TRUE(res.ok);
  EXPECT_LT(res.control.accel, -0.5);
}

TEST(TrajOptTest, SteersTowardOffsetPath) {
  TrajOptConfig cfg;
  TrajOpt opt(cfg, vehicle::VehicleParams{});
  vehicle::State s;
  s.speed = 1.5;
  // Reference runs parallel but 1 m to the left.
  const auto targets = straight_targets(cfg.horizon, 1.5, 1.5 * cfg.dt, 1.0);
  const TrajOptResult res = opt.solve(s, targets, {});
  ASSERT_TRUE(res.ok);
  EXPECT_GT(res.control.steer, 0.05);
}

TEST(TrajOptTest, ObstacleConstraintPushesAside) {
  TrajOptConfig cfg;
  TrajOpt opt(cfg, vehicle::VehicleParams{});
  vehicle::State s;
  s.speed = 1.5;
  const auto targets = straight_targets(cfg.horizon, 1.5, 1.5 * cfg.dt);
  // A box sitting on the reference, ahead of the initial footprint (the
  // front bumper starts at x = 3.4).
  PredictedObstacle obstacle{geom::Obb{{5.5, 0.0}, 0.0, 0.4, 0.4}, {}};
  const TrajOptResult with_obs = opt.solve(s, targets, {obstacle});
  ASSERT_TRUE(with_obs.ok);
  EXPECT_GT(with_obs.active_obstacle_constraints, 0);
  // The plan must keep the footprint clear of the obstacle (it may swerve
  // or stop short — both are valid avoidance maneuvers).
  vehicle::BicycleModel model;
  for (const vehicle::State& p : with_obs.predicted) {
    EXPECT_FALSE(geom::overlaps(model.footprint(p), obstacle.box))
        << "penetration at (" << p.x() << ", " << p.y() << ")";
  }
  // An unconstrained solve would have sailed straight through; with the
  // box present the plan cannot pass the obstacle on the reference line.
  const vehicle::State& last = with_obs.predicted.back();
  EXPECT_TRUE(last.x() < 5.0 || std::abs(last.y()) > 0.5)
      << "end state (" << last.x() << ", " << last.y() << ")";
}

TEST(TrajOptTest, RespectsControlBounds) {
  TrajOptConfig cfg;
  vehicle::VehicleParams params;
  TrajOpt opt(cfg, params);
  vehicle::State s;
  // Absurd target: 100 m ahead in one horizon.
  std::vector<TargetPoint> targets;
  for (int i = 1; i <= cfg.horizon; ++i)
    targets.push_back({{100.0, 0, 0}, params.max_speed_fwd});
  const TrajOptResult res = opt.solve(s, targets, {});
  ASSERT_TRUE(res.ok);
  for (const auto& u : res.controls) {
    EXPECT_LE(u.accel, params.max_accel + 1e-6);
    EXPECT_GE(u.accel, -params.max_brake - 1e-6);
    EXPECT_LE(std::abs(u.steer), params.max_steer + 1e-6);
  }
}

TEST(TrajOptTest, WarmStartAccepted) {
  TrajOptConfig cfg;
  TrajOpt opt(cfg, vehicle::VehicleParams{});
  vehicle::State s;
  s.speed = 1.0;
  const auto targets = straight_targets(cfg.horizon, 1.0, 1.0 * cfg.dt);
  const TrajOptResult cold = opt.solve(s, targets, {});
  ASSERT_TRUE(cold.ok);
  const TrajOptResult warm = opt.solve(s, targets, {}, &cold.controls);
  ASSERT_TRUE(warm.ok);
  EXPECT_NEAR(warm.control.accel, cold.control.accel, 0.3);
}

TEST(TrajOptTest, TooFewTargetsRejected) {
  TrajOptConfig cfg;
  TrajOpt opt(cfg, vehicle::VehicleParams{});
  vehicle::State s;
  const TrajOptResult res = opt.solve(s, straight_targets(3, 1.0, 0.2), {});
  EXPECT_FALSE(res.ok);
}

TEST(TrajOptTest, DiscCoverFootprint) {
  TrajOptConfig cfg;
  vehicle::VehicleParams params;
  TrajOpt opt(cfg, params);
  const auto offsets = opt.disc_offsets();
  EXPECT_EQ(offsets.size(), static_cast<std::size_t>(cfg.collision_discs));
  const double r = opt.disc_radius();
  // Every footprint corner is inside some disc.
  vehicle::BicycleModel model(params);
  const geom::Obb fp = model.footprint(geom::Pose2{0, 0, 0});
  for (const geom::Vec2& corner : fp.corners()) {
    bool covered = false;
    for (double off : offsets)
      covered |= geom::distance(corner, {off, 0.0}) <= r + 1e-9;
    EXPECT_TRUE(covered);
  }
}

// --------------------------------------------------------------- planner

TEST(CoPlannerTest, PhasesSplitAtSwitches) {
  CoPlanner planner(CoPlannerConfig{}, vehicle::VehicleParams{});
  std::vector<PathPoint> pts;
  for (int i = 0; i <= 10; ++i) pts.push_back({{i * 0.5, 0, 0}, 1, 0});
  for (int i = 1; i <= 6; ++i) pts.push_back({{5.0 - i * 0.4, 0, 0}, -1, 0});
  planner.set_reference(RefPath(std::move(pts)));
  ASSERT_EQ(planner.phases().size(), 2u);
  EXPECT_EQ(planner.phases()[0].direction, 1);
  EXPECT_EQ(planner.phases()[1].direction, -1);
  // Switch extensions lengthen both phases beyond their raw points.
  EXPECT_GT(planner.phases()[0].length(), 5.0);
}

TEST(CoPlannerTest, TargetsComeFromCurrentPhase) {
  CoPlannerConfig cfg;
  CoPlanner planner(cfg, vehicle::VehicleParams{});
  std::vector<PathPoint> pts;
  for (int i = 0; i <= 40; ++i) pts.push_back({{i * 0.25, 0, 0}, 1, 0});
  planner.set_reference(RefPath(std::move(pts)));
  vehicle::State s;
  s.pose = {1.0, 0.3, 0.0};
  const auto targets = planner.build_targets(s);
  ASSERT_EQ(static_cast<int>(targets.size()), cfg.trajopt.horizon);
  for (const TargetPoint& t : targets) {
    EXPECT_GE(t.speed, 0.0);  // forward phase
    EXPECT_NEAR(t.pose.y(), 0.0, 1e-9);
  }
  // Targets progress along +x.
  EXPECT_GE(targets.back().pose.x(), targets.front().pose.x());
}

TEST(CoPlannerTest, SpeedTapersNearPhaseEnd) {
  CoPlannerConfig cfg;
  CoPlanner planner(cfg, vehicle::VehicleParams{});
  std::vector<PathPoint> pts;
  for (int i = 0; i <= 12; ++i) pts.push_back({{i * 0.25, 0, 0}, 1, 0});
  planner.set_reference(RefPath(std::move(pts)));  // 3 m path
  vehicle::State s;
  s.pose = {2.0, 0.0, 0.0};
  const auto targets = planner.build_targets(s);
  EXPECT_LT(std::abs(targets.back().speed), cfg.cruise_speed);
  EXPECT_NEAR(targets.back().speed, 0.0, cfg.min_speed + 1e-9);
}

TEST(CoPlannerTest, ActWithoutReferenceStops) {
  CoPlanner planner(CoPlannerConfig{}, vehicle::VehicleParams{});
  vehicle::State s;
  const vehicle::Command cmd = planner.act(s, {});
  EXPECT_GT(cmd.brake, 0.5);
}

TEST(CoPlannerTest, HoldsStillAtGoal) {
  CoPlanner planner(CoPlannerConfig{}, vehicle::VehicleParams{});
  std::vector<PathPoint> pts;
  for (int i = 0; i <= 10; ++i) pts.push_back({{i * 0.3, 0, 0}, 1, 0});
  planner.set_reference(RefPath(std::move(pts)));
  vehicle::State s;
  s.pose = {3.0, 0.0, 0.0};  // exactly at the goal
  s.speed = 0.0;
  const vehicle::Command cmd = planner.act(s, {});
  EXPECT_DOUBLE_EQ(cmd.throttle, 0.0);
  EXPECT_GT(cmd.brake, 0.5);
}

TEST(HybridAStarTest, GridKeyPackingDoesNotAlias) {
  // Pairs that collided under the old ((xi * 4096 + yi) * 64 + ti) * 2 + dir
  // scheme: a y overflow into the x field, and mixed-sign aliasing.
  EXPECT_EQ(((5L * 4096 + 2048) * 64 + 3) * 2 + 1,
            ((6L * 4096 - 2048) * 64 + 3) * 2 + 1);
  EXPECT_NE(pack_grid_key(5, 2048, 3, 1), pack_grid_key(6, -2048, 3, 1));
  EXPECT_EQ(((-1L * 4096 + 0) * 64 + 0) * 2 + 1,
            ((0L * 4096 - 4096) * 64 + 0) * 2 + 1);
  EXPECT_NE(pack_grid_key(-1, 0, 0, 1), pack_grid_key(0, -4096, 0, 1));

  // Exhaustive uniqueness over a sampled state block: every component must
  // participate in the key.
  std::set<std::int64_t> seen;
  int count = 0;
  for (long xi : {-2048L, -7L, 0L, 9L, 2048L})
    for (long yi : {-2048L, -3L, 0L, 11L, 2048L})
      for (long ti : {0L, 1L, 35L})
        for (int dir : {1, -1}) {
          EXPECT_TRUE(seen.insert(pack_grid_key(xi, yi, ti, dir)).second)
              << xi << "," << yi << "," << ti << "," << dir;
          ++count;
        }
  EXPECT_EQ(static_cast<int>(seen.size()), count);
}

TEST(CoPlannerTest, PlanReferenceOnScenario) {
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  const world::Scenario sc = world::make_scenario(opt, 502);
  CoPlanner planner(CoPlannerConfig{}, vehicle::VehicleParams{});
  std::vector<geom::Obb> obs;
  for (const auto& o : sc.obstacles)
    if (!o.dynamic()) obs.push_back(o.shape);
  EXPECT_TRUE(planner.plan_reference(sc.start_pose, sc.map.goal_pose, obs,
                                     sc.map.bounds));
  EXPECT_TRUE(planner.has_reference());
  EXPECT_GE(planner.phases().size(), 2u);
}

}  // namespace
}  // namespace icoil::co
