#include <gtest/gtest.h>

#include <cmath>

#include "geom/angles.hpp"
#include "sensing/bev.hpp"
#include "sensing/detector.hpp"
#include "sensing/noise.hpp"
#include "world/scenario.hpp"

namespace icoil::sense {
namespace {

world::World make_world(world::Difficulty d = world::Difficulty::kEasy,
                        std::uint64_t seed = 1) {
  world::ScenarioOptions opt;
  opt.difficulty = d;
  return world::World(world::make_scenario(opt, seed));
}

// ------------------------------------------------------------------- BEV

TEST(BevImageTest, ShapeAndAccess) {
  BevImage img(3, 8);
  EXPECT_EQ(img.channels(), 3);
  EXPECT_EQ(img.size(), 8);
  EXPECT_EQ(img.num_values(), 3u * 64u);
  img.at(2, 7, 7) = 1.0f;
  EXPECT_FLOAT_EQ(img.at(2, 7, 7), 1.0f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 0.0f);
}

TEST(BevImageTest, ChannelMean) {
  BevImage img(2, 4);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) img.at(1, r, c) = 1.0f;
  EXPECT_FLOAT_EQ(img.channel_mean(0), 0.0f);
  EXPECT_FLOAT_EQ(img.channel_mean(1), 1.0f);
}

TEST(BevRasterizerTest, PixelToWorldCenterIsEgo) {
  BevRasterizer raster({64, 24.0});
  const geom::Pose2 ego{10.0, 12.0, 0.5};
  // The four central pixels straddle the ego position.
  const geom::Vec2 w = raster.pixel_to_world(ego, 32, 32);
  EXPECT_LT(geom::distance(w, ego.position), raster.spec().metres_per_pixel());
}

TEST(BevRasterizerTest, ObstacleAheadLandsInTopHalf) {
  // Ego heading +x; obstacle directly ahead must appear in rows < center.
  world::World world = make_world();
  const geom::Obb& obstacle = world.scenario().obstacles[0].shape;
  geom::Pose2 ego{obstacle.center.x - 6.0, obstacle.center.y, 0.0};
  BevRasterizer raster({64, 24.0});
  const BevImage img = raster.render(world, ego);
  float top = 0.0f, bottom = 0.0f;
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 64; ++c) top += img.at(kBevObstacles, r, c);
  for (int r = 32; r < 64; ++r)
    for (int c = 0; c < 64; ++c) bottom += img.at(kBevObstacles, r, c);
  EXPECT_GT(top, 0.0f);
  EXPECT_GT(top, bottom);
}

TEST(BevRasterizerTest, EgoCentricRotationInvariance) {
  // Same relative geometry under a global rotation yields the same image.
  world::World world = make_world();
  BevRasterizer raster({32, 24.0});
  const geom::Obb& obstacle = world.scenario().obstacles[0].shape;

  const geom::Pose2 ego1{obstacle.center.x - 6.0, obstacle.center.y, 0.0};
  const BevImage img1 = raster.render(world, ego1);
  // Approach the same obstacle from below instead: rotate the relative pose.
  const geom::Pose2 ego2{obstacle.center.x, obstacle.center.y - 6.0,
                         geom::kPi / 2.0};
  const BevImage img2 = raster.render(world, ego2);
  // The obstacle occupies the same *rows* (ahead of ego) in both.
  float ahead1 = 0.0f, ahead2 = 0.0f;
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 32; ++c) {
      ahead1 += img1.at(kBevObstacles, r, c);
      ahead2 += img2.at(kBevObstacles, r, c);
    }
  EXPECT_GT(ahead1, 0.0f);
  EXPECT_GT(ahead2, 0.0f);
  // Obstacle heading differs relative to ego, so pixel counts differ, but
  // both views must be within a small factor (same box, same range).
  EXPECT_LT(std::abs(ahead1 - ahead2) / std::max(ahead1, ahead2), 0.8f);
}

TEST(BevRasterizerTest, GoalChannelVisibleNearGoal) {
  world::World world = make_world();
  const geom::Pose2 goal = world.map().goal_pose;
  BevRasterizer raster({64, 24.0});
  const BevImage img = raster.render(world, goal);
  EXPECT_GT(img.channel_mean(kBevGoal), 0.01f);
}

TEST(BevRasterizerTest, BoundsChannelAtLotEdge) {
  world::World world = make_world();
  BevRasterizer raster({64, 24.0});
  // Near the west wall, half the window is out of the lot.
  const BevImage img = raster.render(world, {1.0, 15.0, 0.0});
  EXPECT_GT(img.channel_mean(kBevBounds), 0.2f);
  // In the middle, much less.
  const BevImage mid = raster.render(world, {20.0, 15.0, 0.0});
  EXPECT_LT(mid.channel_mean(kBevBounds), img.channel_mean(kBevBounds));
}

TEST(BevRasterizerTest, FarObstaclesCulled) {
  world::World world = make_world();
  BevRasterizer raster({32, 10.0});  // narrow window
  const BevImage img = raster.render(world, {5.0, 25.0, 0.0});
  EXPECT_FLOAT_EQ(img.channel_mean(kBevObstacles), 0.0f);
}

// ----------------------------------------------------------------- noise

TEST(ImageNoiseTest, DisabledLeavesImageUntouched) {
  BevImage img(1, 8);
  img.at(0, 3, 3) = 1.0f;
  const BevImage before = img;
  math::Rng rng(1);
  ImageNoise noise(world::NoiseConfig{});
  EXPECT_FALSE(noise.enabled());
  noise.apply(img, rng);
  for (std::size_t i = 0; i < img.num_values(); ++i)
    EXPECT_FLOAT_EQ(img.data()[i], before.data()[i]);
}

TEST(ImageNoiseTest, GaussianStaysInRange) {
  BevImage img(1, 16);
  world::NoiseConfig cfg;
  cfg.image_gaussian_sigma = 0.5;
  ImageNoise noise(cfg);
  math::Rng rng(3);
  noise.apply(img, rng);
  bool any_nonzero = false;
  for (std::size_t i = 0; i < img.num_values(); ++i) {
    EXPECT_GE(img.data()[i], 0.0f);
    EXPECT_LE(img.data()[i], 1.0f);
    any_nonzero |= img.data()[i] != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(ImageNoiseTest, SaltPepperFlipsExpectedFraction) {
  BevImage img(1, 32);  // 1024 zero pixels
  world::NoiseConfig cfg;
  cfg.image_salt_pepper = 0.1;
  ImageNoise noise(cfg);
  math::Rng rng(5);
  noise.apply(img, rng);
  int flipped = 0;
  for (std::size_t i = 0; i < img.num_values(); ++i)
    flipped += img.data()[i] > 0.5f ? 1 : 0;
  EXPECT_GT(flipped, 60);
  EXPECT_LT(flipped, 160);
}

TEST(ImageNoiseTest, DeterministicForSeed) {
  world::NoiseConfig cfg;
  cfg.image_gaussian_sigma = 0.2;
  cfg.image_salt_pepper = 0.05;
  ImageNoise noise(cfg);
  BevImage a(1, 16), b(1, 16);
  math::Rng r1(9), r2(9);
  noise.apply(a, r1);
  noise.apply(b, r2);
  for (std::size_t i = 0; i < a.num_values(); ++i)
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
}

// -------------------------------------------------------------- detector

TEST(DetectorTest, CleanDetectionsMatchGroundTruth) {
  world::World world = make_world(world::Difficulty::kNormal, 2);
  Detector detector;
  math::Rng rng(1);
  const auto dets = detector.detect(world, {20.0, 10.0}, rng);
  EXPECT_EQ(dets.size(), world.scenario().obstacles.size());
  for (const Detection& d : dets) {
    const auto& truth = world.scenario().obstacles[static_cast<std::size_t>(d.id)];
    EXPECT_NEAR(d.box.half_length, truth.shape.half_length, 1e-9);
    EXPECT_DOUBLE_EQ(d.confidence, 1.0);
  }
}

TEST(DetectorTest, RangeLimitsDetections) {
  world::World world = make_world(world::Difficulty::kNormal, 2);
  Detector detector;
  math::Rng rng(1);
  const auto near = detector.detect(world, {30.0, 4.0}, rng, 8.0);
  const auto all = detector.detect(world, {30.0, 4.0}, rng, 100.0);
  EXPECT_LT(near.size(), all.size());
}

TEST(DetectorTest, NoiseJittersBoxes) {
  world::World world = make_world(world::Difficulty::kNormal, 2);
  world::NoiseConfig cfg;
  cfg.box_position_sigma = 0.2;
  Detector detector(cfg);
  math::Rng rng(4);
  const auto dets = detector.detect(world, {20.0, 10.0}, rng);
  double total_offset = 0.0;
  for (const Detection& d : dets) {
    const auto& truth = world.scenario().obstacles[static_cast<std::size_t>(d.id)];
    total_offset += geom::distance(d.box.center, truth.footprint_at(0.0).center);
  }
  EXPECT_GT(total_offset, 0.05);
}

TEST(DetectorTest, DropoutRemovesSomeDetections) {
  world::World world = make_world(world::Difficulty::kNormal, 2);
  world::NoiseConfig cfg;
  cfg.box_dropout = 0.5;
  Detector detector(cfg);
  math::Rng rng(8);
  int total = 0;
  for (int i = 0; i < 30; ++i)
    total += static_cast<int>(detector.detect(world, {20.0, 10.0}, rng).size());
  EXPECT_LT(total, 30 * 5);
  EXPECT_GT(total, 0);
}

TEST(DetectorTest, DynamicObstaclesCarryVelocity) {
  world::World world = make_world(world::Difficulty::kNormal, 2);
  Detector detector;
  math::Rng rng(1);
  for (const Detection& d : detector.detect(world, {20.0, 10.0}, rng)) {
    if (d.dynamic)
      EXPECT_GT(d.velocity.norm(), 0.1);
    else
      EXPECT_DOUBLE_EQ(d.velocity.norm(), 0.0);
  }
}

TEST(DetectorTest, ExtentNoiseNeverNegative) {
  world::World world = make_world(world::Difficulty::kNormal, 2);
  world::NoiseConfig cfg;
  cfg.box_extent_sigma = 5.0;  // absurd jitter
  Detector detector(cfg);
  math::Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    for (const Detection& d : detector.detect(world, {20.0, 10.0}, rng)) {
      EXPECT_GE(d.box.half_length, 0.05);
      EXPECT_GE(d.box.half_width, 0.05);
    }
  }
}

}  // namespace
}  // namespace icoil::sense
