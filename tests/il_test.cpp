#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "il/action.hpp"
#include "il/dataset.hpp"
#include "il/policy.hpp"
#include "il/trainer.hpp"

namespace icoil::il {
namespace {

// ----------------------------------------------------------- discretizer

TEST(ActionTest, NumClasses) {
  EXPECT_EQ(ActionDiscretizer::num_classes(), 15);
  EXPECT_EQ(ActionDiscretizer::kSteerBins * ActionDiscretizer::kLongBins, 15);
}

TEST(ActionTest, ClassCommandRoundTrip) {
  // to_class(to_command(c)) == c for every class.
  for (int c = 0; c < ActionDiscretizer::num_classes(); ++c) {
    const vehicle::Command cmd = ActionDiscretizer::to_command(c);
    EXPECT_EQ(ActionDiscretizer::to_class(cmd), c) << "class " << c;
  }
}

TEST(ActionTest, SteerSnapsToNearestLevel) {
  vehicle::Command cmd;
  cmd.throttle = 0.5;
  cmd.steer = 0.4;  // nearest level is 0.5
  const int cls = ActionDiscretizer::to_class(cmd);
  EXPECT_DOUBLE_EQ(ActionDiscretizer::to_command(cls).steer, 0.5);
  cmd.steer = -0.9;  // nearest level is -1.0
  EXPECT_DOUBLE_EQ(
      ActionDiscretizer::to_command(ActionDiscretizer::to_class(cmd)).steer,
      -1.0);
}

TEST(ActionTest, BrakeDominatesThrottle) {
  vehicle::Command cmd;
  cmd.throttle = 0.3;
  cmd.brake = 0.5;
  const int cls = ActionDiscretizer::to_class(cmd);
  EXPECT_EQ(ActionDiscretizer::long_bin(cls), 1);
  EXPECT_GT(ActionDiscretizer::to_command(cls).brake, 0.0);
}

TEST(ActionTest, ReverseBinPreserved) {
  vehicle::Command cmd;
  cmd.throttle = 0.6;
  cmd.reverse = true;
  const int cls = ActionDiscretizer::to_class(cmd);
  EXPECT_EQ(ActionDiscretizer::long_bin(cls), 2);
  EXPECT_TRUE(ActionDiscretizer::to_command(cls).reverse);
}

TEST(ActionTest, BinHelpers) {
  for (int l = 0; l < ActionDiscretizer::kLongBins; ++l)
    for (int s = 0; s < ActionDiscretizer::kSteerBins; ++s) {
      const int c = ActionDiscretizer::make_class(l, s);
      EXPECT_EQ(ActionDiscretizer::long_bin(c), l);
      EXPECT_EQ(ActionDiscretizer::steer_bin(c), s);
    }
}

// ----------------------------------------------------------- observation

TEST(ObservationTest, AppendsSpeedChannel) {
  sense::BevImage bev(sense::kBevChannels, 8);
  bev.at(0, 1, 1) = 1.0f;
  const sense::BevImage obs = make_observation(bev, 1.5);
  EXPECT_EQ(obs.channels(), kObservationChannels);
  EXPECT_FLOAT_EQ(obs.at(0, 1, 1), 1.0f);
  const float expected = static_cast<float>(1.5 / kSpeedNormalization);
  EXPECT_FLOAT_EQ(obs.at(sense::kBevChannels, 0, 0), expected);
  EXPECT_FLOAT_EQ(obs.at(sense::kBevChannels, 7, 7), expected);
}

TEST(ObservationTest, SpeedChannelClampsAndSigns) {
  sense::BevImage bev(sense::kBevChannels, 4);
  EXPECT_FLOAT_EQ(make_observation(bev, -99.0).at(sense::kBevChannels, 0, 0),
                  -1.0f);
  EXPECT_FLOAT_EQ(make_observation(bev, 99.0).at(sense::kBevChannels, 0, 0),
                  1.0f);
  EXPECT_LT(make_observation(bev, -1.0).at(sense::kBevChannels, 0, 0), 0.0f);
}

// ---------------------------------------------------------------- policy

IlPolicyConfig tiny_config() {
  IlPolicyConfig cfg;
  cfg.bev_size = 16;
  cfg.conv_channels[0] = 4;
  cfg.conv_channels[1] = 4;
  cfg.conv_channels[2] = 8;
  cfg.fc_sizes[0] = 32;
  cfg.fc_sizes[1] = 16;
  cfg.fc_sizes[2] = 16;
  return cfg;
}

sense::BevImage random_bev(int size, std::uint64_t seed) {
  sense::BevImage img(sense::kBevChannels, size);
  math::Rng rng(seed);
  for (float& v : img.data()) v = rng.bernoulli(0.2) ? 1.0f : 0.0f;
  return img;
}

/// Random full observation (BEV + speed channel) for policy-level tests.
sense::BevImage random_obs(int size, std::uint64_t seed, double speed = 1.0) {
  return make_observation(random_bev(size, seed), speed);
}

TEST(PolicyTest, InferenceShapeAndDistribution) {
  IlPolicy policy(tiny_config());
  const Inference inf = policy.infer(random_obs(16, 1));
  ASSERT_EQ(inf.probs.size(), 15u);
  float sum = 0.0f;
  for (float p : inf.probs) {
    EXPECT_GE(p, 0.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
  EXPECT_GE(inf.action_class, 0);
  EXPECT_LT(inf.action_class, 15);
  EXPECT_GE(inf.entropy, 0.0);
  EXPECT_LE(inf.entropy, std::log(15.0) + 1e-6);
}

TEST(PolicyTest, ArgmaxMatchesCommand) {
  IlPolicy policy(tiny_config());
  const Inference inf = policy.infer(random_obs(16, 2));
  const vehicle::Command expected =
      ActionDiscretizer::to_command(inf.action_class);
  EXPECT_DOUBLE_EQ(inf.command.steer, expected.steer);
  EXPECT_EQ(inf.command.reverse, expected.reverse);
}

TEST(PolicyTest, DeterministicForSeed) {
  IlPolicy a(tiny_config(), 5), b(tiny_config(), 5);
  const auto bev = random_obs(16, 3);
  const Inference ia = a.infer(bev), ib = b.infer(bev);
  ASSERT_EQ(ia.probs.size(), ib.probs.size());
  for (std::size_t i = 0; i < ia.probs.size(); ++i)
    EXPECT_FLOAT_EQ(ia.probs[i], ib.probs[i]);
}

TEST(PolicyTest, CloneProducesIdenticalOutputs) {
  IlPolicy policy(tiny_config(), 11);
  const auto clone = policy.clone();
  const auto bev = random_obs(16, 4);
  const Inference a = policy.infer(bev);
  const Inference b = clone->infer(bev);
  for (std::size_t i = 0; i < a.probs.size(); ++i)
    EXPECT_FLOAT_EQ(a.probs[i], b.probs[i]);
}

TEST(PolicyTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "icoil_policy_test.bin").string();
  IlPolicy a(tiny_config(), 11);
  ASSERT_TRUE(a.save(path));
  IlPolicy b(tiny_config(), 99);
  ASSERT_TRUE(b.load(path));
  const auto bev = random_obs(16, 5);
  const Inference ia = a.infer(bev), ib = b.infer(bev);
  for (std::size_t i = 0; i < ia.probs.size(); ++i)
    EXPECT_FLOAT_EQ(ia.probs[i], ib.probs[i]);
  std::filesystem::remove(path);
}

TEST(PolicyTest, BevSpecMatchesConfig) {
  IlPolicy policy(tiny_config());
  EXPECT_EQ(policy.bev_spec().size, 16);
  EXPECT_DOUBLE_EQ(policy.bev_spec().range, IlPolicyConfig{}.bev_range);
}

// --------------------------------------------------------------- dataset

Dataset make_dataset(int n, int size = 16) {
  Dataset d;
  for (int i = 0; i < n; ++i) {
    Sample s;
    s.observation = random_obs(size, static_cast<std::uint64_t>(i),
                               (i % 3 - 1) * 0.5);
    s.label = i % 15;
    d.add(std::move(s));
  }
  return d;
}

TEST(DatasetTest, SizeAndHistogram) {
  const Dataset d = make_dataset(30);
  EXPECT_EQ(d.size(), 30u);
  const auto hist = d.class_histogram(15);
  for (std::size_t c = 0; c < 15; ++c) EXPECT_EQ(hist[c], 2u);
}

TEST(DatasetTest, SplitFractions) {
  const Dataset d = make_dataset(20);
  const auto [train, val] = d.split(0.25);
  EXPECT_EQ(train.size(), 15u);
  EXPECT_EQ(val.size(), 5u);
}

TEST(DatasetTest, ShuffleDeterministicPermutation) {
  Dataset a = make_dataset(20), b = make_dataset(20);
  math::Rng r1(3), r2(3);
  a.shuffle(r1);
  b.shuffle(r2);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].label, b[i].label);
}

TEST(DatasetTest, MakeBatchShapesAndLabels) {
  const Dataset d = make_dataset(10);
  const auto [batch, labels] = d.make_batch(2, 4);
  EXPECT_EQ(batch.shape(),
            (std::vector<int>{4, kObservationChannels, 16, 16}));
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], 2);
  EXPECT_EQ(labels[3], 5);
}

// --------------------------------------------------------------- trainer

TEST(TrainerTest, LearnsSyntheticMapping) {
  // Observation encodes the label geometrically: a bright row per class.
  Dataset d;
  math::Rng rng(7);
  for (int i = 0; i < 240; ++i) {
    const int label = i % 4;  // use 4 distinct classes
    sense::BevImage img(kObservationChannels, 16);
    for (int c = 0; c < 16; ++c) img.at(0, label * 4 + 1, c) = 1.0f;
    // mild noise
    for (int k = 0; k < 8; ++k)
      img.at(1, rng.uniform_int(0, 15), rng.uniform_int(0, 15)) = 1.0f;
    d.add({std::move(img), label});
  }

  IlPolicy policy(tiny_config(), 3);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.learning_rate = 3e-3;
  cfg.num_threads = 2;
  Trainer trainer(cfg);
  const TrainReport report = trainer.train(policy, d);
  ASSERT_EQ(report.epochs.size(), 8u);
  EXPECT_GT(report.final_val_accuracy, 0.8);
  // Loss must broadly decrease.
  EXPECT_LT(report.epochs.back().train_loss, report.epochs.front().train_loss);
}

TEST(TrainerTest, ThreadCountsAgreeOnResultQuality) {
  Dataset d;
  for (int i = 0; i < 120; ++i) {
    const int label = i % 3;
    sense::BevImage img(kObservationChannels, 16);
    for (int c = 0; c < 16; ++c) img.at(0, label * 5, c) = 1.0f;
    d.add({std::move(img), label});
  }
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.learning_rate = 3e-3;

  cfg.num_threads = 1;
  IlPolicy p1(tiny_config(), 3);
  const double acc1 = Trainer(cfg).train(p1, d).final_val_accuracy;

  cfg.num_threads = 4;
  IlPolicy p4(tiny_config(), 3);
  const double acc4 = Trainer(cfg).train(p4, d).final_val_accuracy;

  // Far above 1/3 chance on three classes, for any thread count.
  EXPECT_GT(acc1, 0.6);
  EXPECT_GT(acc4, 0.6);
}

TEST(TrainerTest, EmptyDatasetIsNoop) {
  IlPolicy policy(tiny_config());
  const TrainReport report = Trainer().train(policy, Dataset{});
  EXPECT_TRUE(report.epochs.empty());
  EXPECT_EQ(report.train_samples, 0u);
}

TEST(TrainerTest, EvaluateAccuracyBounds) {
  IlPolicy policy(tiny_config());
  const Dataset d = make_dataset(32);
  const double acc = Trainer::evaluate_accuracy(policy, d);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(TrainerTest, ProgressCallbackInvoked) {
  Dataset d = make_dataset(40);
  IlPolicy policy(tiny_config());
  TrainConfig cfg;
  cfg.epochs = 3;
  int calls = 0;
  Trainer(cfg).train(policy, d, [&](const EpochStats& e) {
    ++calls;
    EXPECT_GE(e.epoch, 1);
    EXPECT_LE(e.epoch, 3);
  });
  EXPECT_EQ(calls, 3);
}

}  // namespace
}  // namespace icoil::il
