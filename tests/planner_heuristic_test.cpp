// Admissibility and determinism of the cached planner heuristics.
//
// The planner's speed rests on two precomputed lower bounds: the
// Reeds-Shepp table (RsHeuristicLut) and the obstacle-aware Dijkstra
// cost-to-go (DijkstraCostMap). Each is tested directly against the exact
// quantity it claims to lower-bound, and the planner is checked to be
// bit-deterministic under every heuristic mode — the bench's speedup and
// parity numbers are only meaningful if repeated runs do identical work.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "co/heuristic.hpp"
#include "co/hybrid_astar.hpp"
#include "co/planner.hpp"
#include "co/reeds_shepp.hpp"
#include "co/refpath.hpp"
#include "core/controller_registry.hpp"
#include "geom/obb.hpp"
#include "mathkit/rng.hpp"
#include "sim/evaluator.hpp"
#include "vehicle/params.hpp"
#include "world/distance_field.hpp"
#include "world/scenario.hpp"

namespace icoil::co {
namespace {

// Small spec so the table builds in well under a second; admissibility is a
// per-entry property, so a small lattice exercises the same construction.
RsLutSpec small_spec() {
  RsLutSpec spec;
  spec.radius = 4.0;
  spec.xy_resolution = 0.7;
  spec.extent = 6.0;
  spec.heading_bins = 24;
  return spec;
}

// ------------------------------------------------------- RsHeuristicLut

TEST(RsHeuristicLutTest, LowerBoundsExactReedsShepp) {
  const RsHeuristicLut lut(small_spec());
  math::Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const double dx = rng.uniform(-6.0, 6.0);
    const double dy = rng.uniform(-6.0, 6.0);
    const double dth = rng.uniform(-geom::kPi, geom::kPi);
    EXPECT_LE(lut.value_rel(dx, dy, dth), lut.exact_rel(dx, dy, dth) + 1e-9)
        << "dx=" << dx << " dy=" << dy << " dth=" << dth;
  }
}

TEST(RsHeuristicLutTest, NonNegativeAndZeroOffLattice) {
  const RsHeuristicLut lut(small_spec());
  EXPECT_GE(lut.value_rel(3.0, -2.0, 1.0), 0.0);
  // Outside the lattice extent the table abstains; callers keep their
  // euclidean floor.
  EXPECT_EQ(lut.value_rel(100.0, 0.0, 0.0), 0.0);
  EXPECT_EQ(lut.value_rel(0.0, -50.0, 2.0), 0.0);
}

TEST(RsHeuristicLutTest, SharedCacheReturnsSameTable) {
  const auto a = RsHeuristicLut::shared(small_spec());
  const auto b = RsHeuristicLut::shared(small_spec());
  EXPECT_EQ(a.get(), b.get());
  RsLutSpec other = small_spec();
  other.heading_bins = 12;
  const auto c = RsHeuristicLut::shared(other);
  EXPECT_NE(a.get(), c.get());
}

// ------------------------------------------------------- DijkstraCostMap

// Double-precision reference Dijkstra over the costmap's own blocked grid,
// from its own goal cell (the unique cell with cost exactly 0).
std::vector<double> brute_force_octile(const DijkstraCostMap& cm) {
  const int w = cm.width(), h = cm.height();
  const double res = cm.resolution();
  std::vector<double> dist(static_cast<std::size_t>(w) * h,
                           std::numeric_limits<double>::infinity());
  int goal = -1;
  for (int iy = 0; iy < h && goal < 0; ++iy)
    for (int ix = 0; ix < w && goal < 0; ++ix)
      if (cm.cell_cost(ix, iy) == 0.0) goal = iy * w + ix;
  if (goal < 0) return dist;

  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
  dist[static_cast<std::size_t>(goal)] = 0.0;
  open.push({0.0, goal});
  while (!open.empty()) {
    const auto [d, idx] = open.top();
    open.pop();
    if (d > dist[static_cast<std::size_t>(idx)]) continue;
    const int ix = idx % w, iy = idx / w;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const int nx = ix + dx, ny = iy + dy;
        if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
        if (cm.blocked(nx, ny)) continue;
        const double nd =
            d + (dx != 0 && dy != 0 ? res * std::sqrt(2.0) : res);
        auto& slot = dist[static_cast<std::size_t>(ny) * w + nx];
        if (nd < slot) {
          slot = nd;
          open.push({nd, ny * w + nx});
        }
      }
    }
  }
  return dist;
}

TEST(DijkstraCostMapTest, MatchesBruteForceOctileDistance) {
  // A wall with one gap forces genuine detours.
  const geom::Aabb bounds{{0.0, 0.0}, {20.0, 16.0}};
  const std::vector<geom::Obb> obstacles = {
      {{10.0, 5.0}, 0.0, 0.5, 5.0},   // vertical wall, gap above y = 10
      {{5.0, 12.0}, 0.0, 2.0, 0.5},   // horizontal slab in the upper half
  };
  const world::DistanceField field(bounds, obstacles, 0.4);
  const DijkstraCostMap cm(field, {17.0, 3.0}, 1.0);
  ASSERT_TRUE(cm.goal_reached());

  const std::vector<double> brute = brute_force_octile(cm);
  int reachable = 0;
  for (int iy = 0; iy < cm.height(); ++iy) {
    for (int ix = 0; ix < cm.width(); ++ix) {
      const double got = cm.cell_cost(ix, iy);
      const double want = brute[static_cast<std::size_t>(iy) * cm.width() + ix];
      if (got < 0.0) {
        EXPECT_TRUE(cm.blocked(ix, iy) || std::isinf(want));
        continue;
      }
      ASSERT_FALSE(std::isinf(want)) << "cell " << ix << "," << iy;
      ++reachable;
      // The sweep runs on integer ticks (58 / 82 per straight / diagonal
      // step), which undershoots sqrt(2) by < 0.04% — never overshoots.
      EXPECT_LE(got, want + 1e-5) << "cell " << ix << "," << iy;
      EXPECT_GE(got, want * 0.999 - 1e-5) << "cell " << ix << "," << iy;
    }
  }
  EXPECT_GT(reachable, 100);  // the map is mostly traversable
}

TEST(DijkstraCostMapTest, LowerBoundsEuclideanInEmptyMap) {
  const geom::Aabb bounds{{0.0, 0.0}, {20.0, 16.0}};
  const world::DistanceField field(bounds, {}, 0.4);
  const geom::Vec2 goal{12.0, 9.0};
  const DijkstraCostMap cm(field, goal, 1.0);
  ASSERT_TRUE(cm.goal_reached());
  math::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const geom::Vec2 p{rng.uniform(0.5, 19.5), rng.uniform(0.5, 15.5)};
    const double d = cm.cost_to_go(p);
    if (d < 0.0) continue;  // outside / unknown: callers fall back, never prune
    EXPECT_LE(d, geom::distance(p, goal) + 1e-6) << p.x << "," << p.y;
  }
}

TEST(DijkstraCostMapTest, SeesDetourAroundWall) {
  // Start and goal on opposite sides of a wall whose only gap is far above:
  // the euclidean bound is blind to it, the Dijkstra bound is not.
  const geom::Aabb bounds{{0.0, 0.0}, {20.0, 16.0}};
  const std::vector<geom::Obb> obstacles = {{{10.0, 6.0}, 0.0, 0.5, 6.0}};
  const world::DistanceField field(bounds, obstacles, 0.4);
  const geom::Vec2 goal{16.0, 2.0};
  const DijkstraCostMap cm(field, goal, 1.0);
  ASSERT_TRUE(cm.goal_reached());
  const geom::Vec2 p{4.0, 2.0};
  const double d = cm.cost_to_go(p);
  ASSERT_GE(d, 0.0);
  // Straight-line distance is 12 m; the detour over the wall (top at y = 12)
  // is at least 10 m longer even before deflation.
  EXPECT_GT(d, geom::distance(p, goal) + 5.0);
}

// ------------------------------------------------------------- planner

world::Scenario crowded_scenario(std::uint64_t seed) {
  world::ScenarioOptions opts;
  opts.generator = "crowded_lot";
  return world::make_scenario(opts, seed);
}

struct PlanProblem {
  geom::Pose2 start, goal;
  std::vector<geom::Obb> obstacles;
  geom::Aabb bounds;
};

PlanProblem static_problem(const world::Scenario& s) {
  PlanProblem p;
  p.start = s.start_pose;
  p.goal = s.map.goal_pose;
  p.bounds = s.map.bounds;
  for (const world::Obstacle& o : s.obstacles)
    if (!o.dynamic()) p.obstacles.push_back(o.shape);
  return p;
}

TEST(PlannerHeuristicTest, DeterministicAcrossRepeatedRuns) {
  const PlanProblem p = static_problem(crowded_scenario(301));
  const vehicle::VehicleParams params;
  for (const HeuristicMode mode :
       {HeuristicMode::kEuclidRs, HeuristicMode::kLut, HeuristicMode::kDijkstra,
        HeuristicMode::kMax}) {
    HybridAStarConfig config;
    config.heuristic = mode;
    const HybridAStar astar(config, params);
    PlanStats a_stats, b_stats;
    const auto a = astar.plan(p.start, p.goal, p.obstacles, p.bounds, nullptr,
                              nullptr, &a_stats);
    const auto b = astar.plan(p.start, p.goal, p.obstacles, p.bounds, nullptr,
                              nullptr, &b_stats);
    ASSERT_EQ(a.has_value(), b.has_value()) << to_string(mode);
    EXPECT_EQ(a_stats.expansions, b_stats.expansions) << to_string(mode);
    EXPECT_EQ(a_stats.nodes, b_stats.nodes) << to_string(mode);
    EXPECT_EQ(a_stats.rs_shot_attempts, b_stats.rs_shot_attempts)
        << to_string(mode);
    if (!a.has_value()) continue;
    ASSERT_EQ(a->size(), b->size()) << to_string(mode);
    for (std::size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].pose.position.x, (*b)[i].pose.position.x);
      EXPECT_EQ((*a)[i].pose.position.y, (*b)[i].pose.position.y);
      EXPECT_EQ((*a)[i].pose.heading, (*b)[i].pose.heading);
    }
  }
}

TEST(PlannerHeuristicTest, SuiteBitIdenticalAcrossThreadCountsPerMode) {
  // Suite-level determinism: CO-backed episodes (which plan through hybrid
  // A*) must be bit-identical across worker counts under every heuristic
  // mode — the caches are per-plan or immutable-shared state, never racy.
  sim::ScenarioSuite suite;
  sim::SuiteCell crowded;
  crowded.generator = "crowded_lot";
  crowded.difficulty = world::Difficulty::kNormal;
  crowded.time_limit = 2.0;
  suite.add(crowded);

  for (const HeuristicMode mode :
       {HeuristicMode::kEuclidRs, HeuristicMode::kLut, HeuristicMode::kDijkstra,
        HeuristicMode::kMax}) {
    CoPlannerConfig co_config;
    co_config.astar.heuristic = mode;
    core::ControllerBuildArgs args;
    args.co = &co_config;
    const auto factory =
        core::ControllerRegistry::instance().factory("co", args);

    std::vector<std::vector<sim::SuiteCellEpisodes>> runs;
    for (int threads : {1, 4}) {
      sim::EvalConfig cfg;
      cfg.episodes = 2;
      cfg.num_threads = threads;
      cfg.thread_cap = 4;
      runs.push_back(sim::Evaluator(cfg).evaluate_suite_detailed(factory, suite));
    }
    ASSERT_EQ(runs[0].size(), runs[1].size());
    for (std::size_t c = 0; c < runs[0].size(); ++c) {
      ASSERT_EQ(runs[0][c].episodes.size(), runs[1][c].episodes.size());
      for (std::size_t e = 0; e < runs[0][c].episodes.size(); ++e) {
        const sim::EpisodeResult& a = runs[0][c].episodes[e];
        const sim::EpisodeResult& b = runs[1][c].episodes[e];
        EXPECT_EQ(a.outcome, b.outcome) << to_string(mode) << " ep " << e;
        EXPECT_EQ(a.frames, b.frames) << to_string(mode) << " ep " << e;
        EXPECT_EQ(a.park_time, b.park_time) << to_string(mode) << " ep " << e;
        EXPECT_EQ(a.min_clearance, b.min_clearance)
            << to_string(mode) << " ep " << e;
      }
    }
  }
}

TEST(PlannerHeuristicTest, HolonomicBoundNeverExceedsReturnedPathLength) {
  // The Dijkstra term lower-bounds the arc length of ANY collision-free
  // path to the goal, so in particular the one the planner returns. (The
  // RS terms use rs_radius_factor > 1 — an intentional inflation the seed
  // planner also used — so their strict comparator is the exact RS solve,
  // covered by RsHeuristicLutTest above, not the returned path.)
  const vehicle::VehicleParams params;
  HybridAStarConfig config;
  config.heuristic = HeuristicMode::kMax;
  const HybridAStar astar(config, params);
  for (std::uint64_t seed : {300u, 301u, 302u, 303u}) {
    const PlanProblem p = static_problem(crowded_scenario(seed));
    PlanStats stats;
    const auto path = astar.plan(p.start, p.goal, p.obstacles, p.bounds,
                                 nullptr, nullptr, &stats);
    ASSERT_TRUE(path.has_value()) << "seed " << seed;

    const double axle_disc =
        std::min(params.width / 2.0,
                 params.length / 2.0 - std::abs(params.center_offset)) +
        config.obstacle_margin;
    const world::DistanceField field(p.bounds, p.obstacles,
                                     config.costmap_resolution);
    const DijkstraCostMap cm(field, p.goal.position, axle_disc);
    const double bound = cm.cost_to_go(p.start.position);
    if (bound < 0.0) continue;  // start outside the known region: no claim
    EXPECT_LE(bound, path->length() + 1e-6) << "seed " << seed;
    // The reported solution cost includes penalty terms on top of length.
    EXPECT_GE(stats.solution_cost, path->length() - 1e-6) << "seed " << seed;
  }
}

}  // namespace
}  // namespace icoil::co
