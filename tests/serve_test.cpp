// Coverage for the serve:: front-end subsystem: AdmissionController
// sequencing and determinism (same seed + capacity => identical shed set),
// serve::Frontend bit-identity against Simulator::run at unconstrained
// capacity (serving interleave must never change outcomes), the
// DeadlineTuner clamp/convergence contract, the shared
// core::LatencyHistogram, warmup-frame exclusion, and the saturation-knee
// heuristic of the sweep driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/cancel_token.hpp"
#include "core/controller_registry.hpp"
#include "core/latency_histogram.hpp"
#include "il/policy.hpp"
#include "mathkit/stats.hpp"
#include "serve/admission.hpp"
#include "serve/deadline_tuner.hpp"
#include "serve/frontend.hpp"
#include "sim/session.hpp"
#include "sim/simulator.hpp"
#include "world/scenario.hpp"

namespace icoil {
namespace {

/// Always emits a fixed command — cheap deterministic episodes that time
/// out after exactly time_limit / dt frames.
class FixedController final : public core::Controller {
 public:
  explicit FixedController(vehicle::Command cmd) : cmd_(cmd) {}
  std::string name() const override { return "fixed"; }
  void reset(const world::Scenario&) override {}
  using core::Controller::act;
  vehicle::Command act(const world::World&, const vehicle::State&,
                       core::FrameContext&) override {
    frame_.command = cmd_;
    frame_.mode = core::Mode::kCo;
    return cmd_;
  }
  const core::FrameInfo& last_frame() const override { return frame_; }

 private:
  vehicle::Command cmd_;
  core::FrameInfo frame_;
};

/// Registers (idempotently) a registry method serving FixedController
/// full-stops — the cheapest deterministic serving workload a test can ask
/// for — and returns its key.
const std::string& fixed_method() {
  static const std::string key = [] {
    core::ControllerSpec spec;
    spec.key = "test-fixed-stop";
    spec.display_name = "FixedStop";
    spec.description = "test-only: holds a full stop until timeout";
    spec.needs_policy = false;
    spec.build = [](const core::ControllerBuildArgs&) {
      return std::make_unique<FixedController>(vehicle::Command::full_stop());
    };
    core::ControllerRegistry::instance().add(spec);
    return spec.key;
  }();
  return key;
}

// ------------------------------------------------- AdmissionController

TEST(AdmissionControllerTest, CapacityAndQueueSequencing) {
  serve::AdmissionConfig config;
  config.max_active = 2;
  config.queue_limit = 2;
  serve::AdmissionController admission(config);

  using Decision = serve::AdmissionController::Decision;
  EXPECT_EQ(admission.offer(0), Decision::kAdmit);
  EXPECT_EQ(admission.offer(1), Decision::kAdmit);
  EXPECT_EQ(admission.offer(2), Decision::kQueue);
  EXPECT_EQ(admission.offer(3), Decision::kQueue);
  EXPECT_EQ(admission.offer(4), Decision::kShed);
  EXPECT_EQ(admission.offer(5), Decision::kShed);

  EXPECT_EQ(admission.offered(), 6);
  EXPECT_EQ(admission.active(), 2);
  EXPECT_EQ(admission.waiting(), 2);
  EXPECT_EQ(admission.shed(), 2);
  EXPECT_EQ(admission.shed_sessions(), (std::vector<int>{4, 5}));

  // Completions admit the queue FIFO, then leave slots idle.
  EXPECT_EQ(admission.on_complete(), 2);
  EXPECT_EQ(admission.on_complete(), 3);
  EXPECT_EQ(admission.on_complete(), -1);
  EXPECT_EQ(admission.on_complete(), -1);
  EXPECT_EQ(admission.active(), 0);
  EXPECT_EQ(admission.admitted(), 4);
  EXPECT_EQ(admission.queued(), 2);
}

TEST(AdmissionControllerTest, UnlimitedAdmitsEverything) {
  serve::AdmissionController admission({});  // max_active 0 = unlimited
  using Decision = serve::AdmissionController::Decision;
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(admission.offer(i), Decision::kAdmit) << i;
  EXPECT_EQ(admission.admitted(), 100);
  EXPECT_EQ(admission.queued(), 0);
  EXPECT_EQ(admission.shed(), 0);
}

TEST(AdmissionControllerTest, ShedSetDeterministicThroughFrontend) {
  // The shed set must be a pure function of (N, capacity, queue limit) —
  // independent of thread scheduling. 12 arrivals into capacity 3 with a
  // queue of 4 always sheds exactly the last five.
  serve::FrontendConfig config;
  config.method = fixed_method();
  config.sessions = 12;
  config.time_limit = 0.5;
  config.difficulty = world::Difficulty::kEasy;
  config.admission.max_active = 3;
  config.admission.queue_limit = 4;
  config.threads = 4;

  const serve::FrontendResult first = serve::Frontend(config).run();
  const serve::FrontendResult second = serve::Frontend(config).run();

  EXPECT_EQ(first.shed_sessions, (std::vector<int>{7, 8, 9, 10, 11}));
  EXPECT_EQ(second.shed_sessions, first.shed_sessions);
  EXPECT_EQ(first.stats.offered, 12);
  EXPECT_EQ(first.stats.admitted, 7);
  EXPECT_EQ(first.stats.queued, 4);
  EXPECT_EQ(first.stats.shed, 5);
  EXPECT_EQ(first.episodes.size(), 7u);
  // Queue times were recorded for every admission (zeros for the
  // immediately admitted, waits for the queued).
  EXPECT_EQ(first.stats.queue.count, 7u);
}

// ---------------------------------------------------------- Frontend

void expect_bit_identical(const sim::EpisodeResult& a,
                          const sim::EpisodeResult& b) {
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.mode_switches, b.mode_switches);
  EXPECT_EQ(a.deadline_hits, b.deadline_hits);
  EXPECT_EQ(a.park_time, b.park_time);
  EXPECT_EQ(a.min_clearance, b.min_clearance);
  EXPECT_EQ(a.il_fraction, b.il_fraction);
}

TEST(FrontendTest, UnconstrainedOutcomesBitIdenticalToSimulatorRun) {
  // With admission unconstrained and autotuning off, serving N sessions
  // interleaved on a pool must produce the same episodes as running each
  // alone through Simulator::run — the refactor's no-behavior-change gate.
  serve::FrontendConfig config;
  config.method = "co";
  config.sessions = 3;
  config.time_limit = 6.0;
  config.difficulty = world::Difficulty::kEasy;
  config.base_seed = 4200;
  config.threads = 3;
  const serve::FrontendResult result = serve::Frontend(config).run();
  ASSERT_EQ(result.episodes.size(), 3u);
  EXPECT_TRUE(result.shed_sessions.empty());
  EXPECT_FALSE(result.aborted);

  const auto& registry = core::ControllerRegistry::instance();
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t seed =
        config.base_seed + static_cast<std::uint64_t>(i);
    world::ScenarioOptions opt;
    opt.difficulty = config.difficulty;
    opt.time_limit = config.time_limit;
    const world::Scenario scenario = world::make_scenario(opt, seed);
    const auto controller = registry.build("co");
    const sim::EpisodeResult lone =
        sim::Simulator().run(scenario, *controller, seed);
    expect_bit_identical(result.episodes[static_cast<std::size_t>(i)], lone);
  }
}

TEST(FrontendTest, BatchInferencePathBitIdenticalToStepPath) {
  // The tick-synchronized batched path must replay the per-session step
  // path bit for bit (the BatchInferencer contract, now via Frontend).
  il::IlPolicy policy(il::IlPolicyConfig(), 99);
  serve::FrontendConfig config;
  config.method = "il";
  config.sessions = 3;
  config.time_limit = 1.5;
  config.difficulty = world::Difficulty::kEasy;
  config.policy = &policy;
  config.threads = 2;

  const serve::FrontendResult stepped = serve::Frontend(config).run();
  config.batch_inference = true;
  config.max_batch = 2;  // forces batch splits mid-tick
  const serve::FrontendResult batched = serve::Frontend(config).run();

  ASSERT_EQ(stepped.episodes.size(), 3u);
  ASSERT_EQ(batched.episodes.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    expect_bit_identical(stepped.episodes[i], batched.episodes[i]);
  ASSERT_TRUE(batched.stats.batching.has_value());
  EXPECT_GT(batched.stats.batching->requests, 0u);
  EXPECT_FALSE(stepped.stats.batching.has_value());
}

TEST(FrontendTest, WarmupFramesKeptOutOfThePercentiles) {
  serve::FrontendConfig config;
  config.method = fixed_method();
  config.sessions = 3;
  config.time_limit = 1.0;  // 20 frames per session at dt = 0.05
  config.difficulty = world::Difficulty::kEasy;
  config.warmup_frames = 2;
  const serve::FrontendResult result = serve::Frontend(config).run();

  EXPECT_EQ(result.stats.warmup.count, 6u);  // 3 sessions x 2 cold frames
  EXPECT_EQ(result.stats.warmup_frames_per_session, 2);
  // Warmup still counts toward total throughput, just not the percentiles.
  EXPECT_EQ(result.stats.frames,
            result.stats.frame.count + result.stats.warmup.count);
  EXPECT_GT(result.stats.frame.count, 0u);
}

TEST(FrontendTest, TunerFeedsSessionDeadlinesWithinClamp) {
  serve::FrontendConfig config;
  config.method = fixed_method();
  config.sessions = 2;
  config.time_limit = 2.0;
  config.difficulty = world::Difficulty::kEasy;
  config.tuner.enabled = true;
  config.tuner.min_ms = 5.0;
  config.tuner.max_ms = 150.0;
  const serve::FrontendResult result = serve::Frontend(config).run();

  ASSERT_TRUE(result.stats.tuning.has_value());
  const sim::ServeStats::Tuning& tuning = *result.stats.tuning;
  EXPECT_DOUBLE_EQ(tuning.min_ms, 5.0);
  EXPECT_DOUBLE_EQ(tuning.max_ms, 150.0);
  // Every deadline the tuner applied respected the clamp.
  EXPECT_GE(tuning.deadline_min_ms, 5.0);
  EXPECT_LE(tuning.deadline_max_ms, 150.0);
  EXPECT_GE(tuning.deadline_mean_ms, tuning.deadline_min_ms);
  EXPECT_LE(tuning.deadline_mean_ms, tuning.deadline_max_ms);
}

TEST(FrontendTest, PreTrippedAbortYieldsPartialAbortedResult) {
  core::CancelToken abort;
  abort.cancel();
  serve::FrontendConfig config;
  config.method = fixed_method();
  config.sessions = 3;
  config.time_limit = 5.0;
  config.difficulty = world::Difficulty::kEasy;
  const serve::FrontendResult result =
      serve::Frontend(config, &abort).run();
  EXPECT_TRUE(result.aborted);
  ASSERT_EQ(result.episodes.size(), 3u);
  for (const sim::EpisodeResult& episode : result.episodes)
    EXPECT_EQ(episode.outcome, sim::Outcome::kBudgetExceeded);
}

TEST(FrontendTest, InvalidConfigsThrowAndValidateExplains) {
  serve::FrontendConfig config;
  config.method = "warp-drive";
  std::string why;
  EXPECT_FALSE(serve::Frontend::validate(config, &why));
  EXPECT_NE(why.find("warp-drive"), std::string::npos) << why;
  EXPECT_THROW(serve::Frontend(config).run(), std::invalid_argument);

  config.method = "il";  // needs a policy
  EXPECT_FALSE(serve::Frontend::validate(config, &why));
  config.method = "co";
  config.batch_inference = true;  // batching needs a policy-backed method
  EXPECT_FALSE(serve::Frontend::validate(config, &why));
  config.batch_inference = false;
  config.sessions = 0;
  EXPECT_FALSE(serve::Frontend::validate(config, &why));
}

// ------------------------------------------------------ DeadlineTuner

TEST(DeadlineTunerTest, StartsPermissiveAndClampsToRange) {
  serve::DeadlineTunerConfig config;
  config.enabled = true;
  config.min_ms = 10.0;
  config.max_ms = 100.0;
  config.headroom = 1.5;
  config.window = 8;
  serve::DeadlineTuner tuner(config);
  EXPECT_DOUBLE_EQ(tuner.deadline_ms(), 100.0);  // no static deadline given

  // A latency stream whose headroomed p99 exceeds the ceiling pins the
  // deadline at max_ms; one below the floor converges down to min_ms.
  for (int i = 0; i < 200; ++i) EXPECT_LE(tuner.observe(500.0), 100.0);
  EXPECT_DOUBLE_EQ(tuner.deadline_ms(), 100.0);
  for (int i = 0; i < 500; ++i) EXPECT_GE(tuner.observe(0.5), 10.0);
  EXPECT_NEAR(tuner.deadline_ms(), 10.0, 1e-6);
}

TEST(DeadlineTunerTest, ConvergesMonotonicallyOnConstantLatency) {
  serve::DeadlineTunerConfig config;
  config.enabled = true;
  config.min_ms = 5.0;
  config.max_ms = 200.0;
  config.headroom = 1.5;
  config.window = 4;
  serve::DeadlineTuner tuner(config, 200.0);
  // Constant 20 ms frames: target = 1.5 * 20 = 30 ms. The deadline must
  // descend toward it without ever crossing below.
  double prev = tuner.deadline_ms();
  for (int i = 0; i < 300; ++i) {
    const double next = tuner.observe(20.0);
    EXPECT_LE(next, prev + 1e-12) << i;
    EXPECT_GE(next, 30.0 - 1e-9) << i;
    prev = next;
  }
  EXPECT_NEAR(prev, 30.0, 0.5);

  // Determinism: the same latency stream reproduces the same deadlines.
  serve::DeadlineTuner replay(config, 200.0);
  for (int i = 0; i < 300; ++i) replay.observe(20.0);
  EXPECT_DOUBLE_EQ(replay.deadline_ms(), tuner.deadline_ms());
}

// --------------------------------------------------- LatencyHistogram

TEST(LatencyHistogramTest, SummaryAndMergeMatchManualPercentiles) {
  core::LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
  core::LatencySummary zero = h.summary();
  EXPECT_EQ(zero.count, 0u);

  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  const core::LatencySummary s = h.summary();
  EXPECT_DOUBLE_EQ(s.p50_ms, math::percentile(
      [] { std::vector<double> v; for (int i = 1; i <= 100; ++i)
             v.push_back(i); return v; }(), 50.0));
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  EXPECT_GT(s.p99_ms, s.p90_ms);
  EXPECT_GT(s.p90_ms, s.p50_ms);

  // merge == adding the samples to one histogram.
  core::LatencyHistogram a, b, all;
  for (int i = 0; i < 50; ++i) {
    a.add(i * 0.25);
    all.add(i * 0.25);
  }
  for (int i = 0; i < 50; ++i) {
    b.add(100.0 + i);
    all.add(100.0 + i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.percentile(50.0), all.percentile(50.0));
  EXPECT_DOUBLE_EQ(a.percentile(99.0), all.percentile(99.0));
}

// ----------------------------------------------------------- find_knee

sim::ServeLoadLevel level_fps(int offered, double fps) {
  sim::ServeLoadLevel level;
  level.offered = offered;
  level.frames_per_second = fps;
  return level;
}

TEST(FindKneeTest, FlagsTheLastScalingLevel) {
  // 1 -> 10 scales 8x, 10 -> 100 gains under 10%: the knee is at 10.
  const std::vector<sim::ServeLoadLevel> saturating = {
      level_fps(1, 50.0), level_fps(10, 400.0), level_fps(100, 420.0)};
  EXPECT_EQ(serve::find_knee(saturating), 1);

  // Throughput keeps scaling: no knee.
  const std::vector<sim::ServeLoadLevel> scaling = {
      level_fps(1, 50.0), level_fps(10, 400.0), level_fps(100, 3000.0)};
  EXPECT_EQ(serve::find_knee(scaling), -1);

  // Degenerate sweeps cannot have one.
  EXPECT_EQ(serve::find_knee({}), -1);
  EXPECT_EQ(serve::find_knee({level_fps(1, 50.0)}), -1);

  // Outright regression past the first level knees immediately.
  const std::vector<sim::ServeLoadLevel> collapsing = {
      level_fps(1, 50.0), level_fps(10, 30.0)};
  EXPECT_EQ(serve::find_knee(collapsing), 0);
}

}  // namespace
}  // namespace icoil
