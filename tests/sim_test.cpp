#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/co_controller.hpp"
#include "sim/evaluator.hpp"
#include "sim/expert.hpp"
#include "sim/policy_store.hpp"
#include "sim/simulator.hpp"

namespace icoil::sim {
namespace {

/// A controller that always emits a fixed command — handy for forcing
/// specific simulator outcomes.
class FixedController final : public core::Controller {
 public:
  explicit FixedController(vehicle::Command cmd) : cmd_(cmd) {}
  std::string name() const override { return "fixed"; }
  void reset(const world::Scenario&) override {}
  using core::Controller::act;
  vehicle::Command act(const world::World&, const vehicle::State&,
                       core::FrameContext&) override {
    frame_.command = cmd_;
    frame_.mode = core::Mode::kCo;
    return cmd_;
  }
  const core::FrameInfo& last_frame() const override { return frame_; }

 private:
  vehicle::Command cmd_;
  core::FrameInfo frame_;
};

world::Scenario easy_scenario(std::uint64_t seed = 500) {
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  return world::make_scenario(opt, seed);
}

TEST(SimulatorTest, FullThrottleEndsInCollision) {
  // Driving straight at full throttle must eventually leave the lot or hit
  // something.
  FixedController controller({1.0, 0.0, 0.0, false});
  Simulator sim;
  const EpisodeResult res = sim.run(easy_scenario(), controller, 1);
  EXPECT_EQ(res.outcome, Outcome::kCollision);
  EXPECT_GT(res.frames, 10u);
  EXPECT_LT(res.park_time, 60.0);
}

TEST(SimulatorTest, HoldingStillTimesOut) {
  FixedController controller(vehicle::Command::full_stop());
  world::Scenario sc = easy_scenario();
  sc.time_limit = 3.0;
  Simulator sim;
  const EpisodeResult res = sim.run(sc, controller, 1);
  EXPECT_EQ(res.outcome, Outcome::kTimeout);
  EXPECT_DOUBLE_EQ(res.park_time, 3.0);
}

TEST(SimulatorTest, TraceRecordingRespectsFlag) {
  FixedController controller(vehicle::Command::full_stop());
  world::Scenario sc = easy_scenario();
  sc.time_limit = 1.0;
  SimConfig cfg;
  cfg.record_trace = false;
  EXPECT_TRUE(Simulator(cfg).run(sc, controller, 1).trace.empty());
  cfg.record_trace = true;
  const EpisodeResult res = Simulator(cfg).run(sc, controller, 1);
  EXPECT_EQ(res.trace.size(), res.frames);
  // Frame times increase monotonically.
  for (std::size_t i = 1; i < res.trace.size(); ++i)
    EXPECT_GT(res.trace[i].t, res.trace[i - 1].t);
}

TEST(SimulatorTest, CoControllerParksOnEasyScenario) {
  core::CoController controller(co::CoPlannerConfig{}, vehicle::VehicleParams{});
  Simulator sim;
  const EpisodeResult res = sim.run(easy_scenario(500), controller, 500);
  EXPECT_EQ(res.outcome, Outcome::kSuccess) << to_string(res.outcome);
  EXPECT_GT(res.park_time, 5.0);
  EXPECT_GT(res.min_clearance, 0.0);
}

TEST(SimulatorTest, DeterministicForSameSeed) {
  auto run_once = [] {
    core::CoController controller(co::CoPlannerConfig{},
                                  vehicle::VehicleParams{});
    Simulator sim;
    return sim.run(easy_scenario(501), controller, 7);
  };
  const EpisodeResult a = run_once();
  const EpisodeResult b = run_once();
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_DOUBLE_EQ(a.park_time, b.park_time);
  EXPECT_EQ(a.frames, b.frames);
}

TEST(SimulatorTest, OutcomeToString) {
  EXPECT_STREQ(to_string(Outcome::kSuccess), "success");
  EXPECT_STREQ(to_string(Outcome::kCollision), "collision");
  EXPECT_STREQ(to_string(Outcome::kTimeout), "timeout");
  EXPECT_STREQ(to_string(Outcome::kBudgetExceeded), "budget_exceeded");
}

TEST(SimulatorTest, CancelledTokenCutsEpisodeShort) {
  FixedController controller(vehicle::Command::full_stop());
  world::Scenario sc = easy_scenario();
  sc.time_limit = 30.0;
  core::CancelToken cancel;
  cancel.cancel();
  const EpisodeResult res = Simulator().run(sc, controller, 1, &cancel);
  EXPECT_EQ(res.outcome, Outcome::kBudgetExceeded);
  EXPECT_EQ(res.frames, 0u);
}

// -------------------------------------------------------------- evaluator

TEST(EvaluatorTest, AggregateCountsAddUp) {
  EvalConfig cfg;
  cfg.episodes = 6;
  cfg.sim.dt = 0.05;
  Evaluator ev(cfg);
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  opt.time_limit = 5.0;  // too short to park: all timeout or collide
  const Aggregate agg = ev.evaluate(
      [] {
        return std::make_unique<FixedController>(vehicle::Command::full_stop());
      },
      opt, "fixed");
  EXPECT_EQ(agg.episodes, 6);
  EXPECT_EQ(agg.successes + agg.collisions + agg.timeouts, 6);
  EXPECT_EQ(agg.timeouts, 6);
  EXPECT_DOUBLE_EQ(agg.success_ratio(), 0.0);
  EXPECT_EQ(agg.method, "fixed");
  EXPECT_EQ(agg.level, "easy");
}

TEST(EvaluatorTest, DetailedResultsInSeedOrderAndThreadInvariant) {
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  opt.time_limit = 4.0;

  EvalConfig cfg1;
  cfg1.episodes = 8;
  cfg1.num_threads = 1;
  const auto r1 = Evaluator(cfg1).evaluate_detailed(
      [] {
        return std::make_unique<FixedController>(
            vehicle::Command{1.0, 0.0, 0.3, false});
      },
      opt);

  EvalConfig cfg4 = cfg1;
  cfg4.num_threads = 4;
  const auto r4 = Evaluator(cfg4).evaluate_detailed(
      [] {
        return std::make_unique<FixedController>(
            vehicle::Command{1.0, 0.0, 0.3, false});
      },
      opt);

  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].outcome, r4[i].outcome) << i;
    EXPECT_DOUBLE_EQ(r1[i].park_time, r4[i].park_time) << i;
  }
}

// -------------------------------------------------------------- suite API

TEST(ScenarioSuiteTest, CrossBuildsEveryCell) {
  const ScenarioSuite suite = ScenarioSuite::cross(
      {"canonical", "dynamic_gauntlet"},
      {world::Difficulty::kEasy, world::Difficulty::kNormal},
      {world::StartClass::kClose});
  ASSERT_EQ(suite.cells.size(), 4u);
  EXPECT_EQ(suite.cells[0].generator, "canonical");
  EXPECT_EQ(suite.cells[3].generator, "dynamic_gauntlet");
  EXPECT_EQ(suite.cells[1].display_label(), "canonical/normal/close");
}

TEST(ScenarioSuiteTest, CellLabelOverride) {
  SuiteCell cell;
  cell.label = "custom";
  EXPECT_EQ(cell.display_label(), "custom");
  cell.label.clear();
  EXPECT_EQ(cell.display_label(), "canonical/easy/random");
}

TEST(EvaluatorTest, SuiteMatchesPerCellEvaluate) {
  // The batched fan-out must reproduce per-cell evaluation exactly: same
  // seeds, same scenarios, same outcomes.
  EvalConfig cfg;
  cfg.episodes = 5;
  Evaluator ev(cfg);
  const core::ControllerFactory factory = [] {
    return std::make_unique<FixedController>(
        vehicle::Command{1.0, 0.0, 0.3, false});
  };

  ScenarioSuite suite;
  SuiteCell easy;
  easy.difficulty = world::Difficulty::kEasy;
  easy.time_limit = 4.0;
  suite.add(easy);
  SuiteCell gauntlet;
  gauntlet.generator = "dynamic_gauntlet";
  gauntlet.difficulty = world::Difficulty::kNormal;
  gauntlet.time_limit = 4.0;
  suite.add(gauntlet);

  const auto batched = ev.evaluate_suite(factory, suite, "fixed");
  ASSERT_EQ(batched.size(), 2u);
  for (std::size_t c = 0; c < suite.cells.size(); ++c) {
    const Aggregate solo =
        ev.evaluate(factory, suite.cells[c].options(), "fixed");
    const Aggregate& agg = batched[c].aggregate;
    EXPECT_EQ(agg.episodes, solo.episodes);
    EXPECT_EQ(agg.successes, solo.successes);
    EXPECT_EQ(agg.collisions, solo.collisions);
    EXPECT_EQ(agg.timeouts, solo.timeouts);
    EXPECT_DOUBLE_EQ(agg.park_time.mean(), solo.park_time.mean());
    EXPECT_DOUBLE_EQ(agg.min_clearance.mean(), solo.min_clearance.mean());
    EXPECT_EQ(agg.level, suite.cells[c].display_label());
    EXPECT_EQ(agg.method, "fixed");
  }
}

TEST(EvaluatorTest, SuiteProgressStrictlyIncreasing) {
  // Regression: the `done` counter used to be incremented before taking the
  // progress mutex, so two workers finishing cells back-to-back could enter
  // the lock in swapped order and report counts out of order. With many
  // cells and wide fan-out, the callback must see 1, 2, ..., N exactly.
  const core::ControllerFactory factory = [] {
    return std::make_unique<FixedController>(
        vehicle::Command{1.0, 0.0, 0.2, false});
  };
  ScenarioSuite suite = ScenarioSuite::cross(
      {"canonical", "perpendicular", "crowded_lot", "parallel_street"},
      {world::Difficulty::kEasy, world::Difficulty::kNormal,
       world::Difficulty::kHard},
      {world::StartClass::kRandom});
  for (SuiteCell& cell : suite.cells) cell.time_limit = 1.0;

  EvalConfig cfg;
  cfg.episodes = 2;
  cfg.num_threads = 8;
  cfg.thread_cap = 8;
  std::vector<int> seen;  // appended under the evaluator's progress lock
  const auto results = Evaluator(cfg).evaluate_suite(
      factory, suite, "fixed",
      [&](const SuiteCell&, int completed, int total) {
        EXPECT_EQ(total, static_cast<int>(suite.cells.size()));
        seen.push_back(completed);
      });
  ASSERT_EQ(results.size(), suite.cells.size());
  ASSERT_EQ(seen.size(), suite.cells.size());
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], static_cast<int>(i) + 1);
}

TEST(EvaluatorTest, ThreadCapRespectsConfigAndPreservesResults) {
  // Raising the cap beyond the old hard-coded 16 must not change outcomes.
  const core::ControllerFactory factory = [] {
    return std::make_unique<FixedController>(
        vehicle::Command{1.0, 0.0, -0.1, false});
  };
  world::ScenarioOptions opt;
  opt.time_limit = 2.0;
  EvalConfig narrow;
  narrow.episodes = 6;
  narrow.num_threads = 1;
  EvalConfig wide = narrow;
  wide.num_threads = 0;
  wide.thread_cap = 64;
  const auto a = Evaluator(narrow).evaluate_detailed(factory, opt);
  const auto b = Evaluator(wide).evaluate_detailed(factory, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome, b[i].outcome) << i;
    EXPECT_DOUBLE_EQ(a[i].min_clearance, b[i].min_clearance) << i;
  }
}

TEST(EvaluatorTest, SuiteThreadInvariant) {
  const core::ControllerFactory factory = [] {
    return std::make_unique<FixedController>(
        vehicle::Command{1.0, 0.0, -0.2, false});
  };
  ScenarioSuite suite;
  SuiteCell cell;
  cell.generator = "crowded_lot";
  cell.difficulty = world::Difficulty::kNormal;
  cell.time_limit = 3.0;
  suite.add(cell);
  SuiteCell street;
  street.generator = "parallel_street";
  street.time_limit = 3.0;
  suite.add(street);

  EvalConfig cfg1;
  cfg1.episodes = 6;
  cfg1.num_threads = 1;
  EvalConfig cfg4 = cfg1;
  cfg4.num_threads = 4;
  const auto r1 = Evaluator(cfg1).evaluate_suite(factory, suite, "fixed");
  const auto r4 = Evaluator(cfg4).evaluate_suite(factory, suite, "fixed");
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t c = 0; c < r1.size(); ++c) {
    EXPECT_EQ(r1[c].aggregate.successes, r4[c].aggregate.successes);
    EXPECT_EQ(r1[c].aggregate.collisions, r4[c].aggregate.collisions);
    EXPECT_DOUBLE_EQ(r1[c].aggregate.park_time.mean(),
                     r4[c].aggregate.park_time.mean());
  }
}

// ----------------------------------------------------------------- expert

TEST(ExpertTest, RecordsLabelledSamples) {
  ExpertConfig cfg;
  cfg.episodes = 1;
  cfg.frame_stride = 4;
  il::IlPolicyConfig policy_cfg;
  policy_cfg.bev_size = 16;
  ExpertRecorder recorder(cfg, policy_cfg);
  ExpertStats stats;
  const il::Dataset dataset = recorder.record(&stats);
  EXPECT_EQ(stats.episodes_run, 1);
  EXPECT_GT(dataset.size(), 50u);
  EXPECT_EQ(stats.samples, dataset.size());
  EXPECT_GT(stats.forward_samples, 0u);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_GE(dataset[i].label, 0);
    EXPECT_LT(dataset[i].label, 15);
    EXPECT_EQ(dataset[i].observation.channels(), il::kObservationChannels);
    EXPECT_EQ(dataset[i].observation.size(), 16);
  }
}

TEST(ExpertTest, DeterministicDataset) {
  ExpertConfig cfg;
  cfg.episodes = 2;
  cfg.frame_stride = 8;
  il::IlPolicyConfig policy_cfg;
  policy_cfg.bev_size = 16;
  const il::Dataset a = ExpertRecorder(cfg, policy_cfg).record();
  const il::Dataset b = ExpertRecorder(cfg, policy_cfg).record();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    for (std::size_t j = 0; j < a[i].observation.num_values(); ++j)
      ASSERT_FLOAT_EQ(a[i].observation.data()[j], b[i].observation.data()[j]);
  }
}

TEST(ExpertTest, DatasetSaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "icoil_dataset_test.bin").string();
  ExpertConfig cfg;
  cfg.episodes = 1;
  cfg.frame_stride = 10;
  il::IlPolicyConfig policy_cfg;
  policy_cfg.bev_size = 16;
  const il::Dataset a = ExpertRecorder(cfg, policy_cfg).record();
  ASSERT_TRUE(a.save(path));
  il::Dataset b;
  ASSERT_TRUE(b.load(path));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    for (std::size_t j = 0; j < a[i].observation.num_values(); ++j)
      ASSERT_NEAR(a[i].observation.data()[j], b[i].observation.data()[j],
                  1.5f / 255.0f);
  }
  std::filesystem::remove(path);
}

TEST(ExpertTest, DatasetLoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "icoil_garbage.bin").string();
  {
    std::ofstream f(path, std::ios::binary);
    f << "not a dataset";
  }
  il::Dataset d;
  EXPECT_FALSE(d.load(path));
  EXPECT_FALSE(d.load("/nonexistent/nope.bin"));
  std::filesystem::remove(path);
}

// ------------------------------------------------------------ policy store

TEST(PolicyStoreTest, TrainsAndCaches) {
  const auto dir = std::filesystem::temp_directory_path() / "icoil_store_test";
  std::filesystem::create_directories(dir);
  PolicyStoreOptions opts;
  opts.cache_path = (dir / "policy.bin").string();
  opts.dataset_cache_path = (dir / "dataset.bin").string();
  opts.verbose = false;
  opts.expert.episodes = 1;
  opts.expert.frame_stride = 6;
  opts.train.epochs = 1;
  opts.policy.bev_size = 16;
  opts.policy.conv_channels[0] = 4;
  opts.policy.conv_channels[1] = 4;
  opts.policy.conv_channels[2] = 8;
  opts.policy.fc_sizes[0] = 32;
  opts.policy.fc_sizes[1] = 16;
  opts.policy.fc_sizes[2] = 16;

  // The store keys its caches by training-spec fingerprint.
  const std::string policy_path = policy_cache_path(opts);
  const std::string dataset_path = dataset_cache_path(opts);
  std::filesystem::remove(policy_path);
  std::filesystem::remove(dataset_path);

  const auto first = get_or_train_policy(opts);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(std::filesystem::exists(policy_path));
  EXPECT_TRUE(std::filesystem::exists(dataset_path));

  // Second call loads the cache and produces identical outputs.
  const auto second = get_or_train_policy(opts);
  sense::BevImage obs(il::kObservationChannels, 16);
  obs.at(0, 3, 3) = 1.0f;
  const auto ia = first->infer(obs);
  const auto ib = second->infer(obs);
  for (std::size_t i = 0; i < ia.probs.size(); ++i)
    EXPECT_FLOAT_EQ(ia.probs[i], ib.probs[i]);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace icoil::sim
