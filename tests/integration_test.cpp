// Cross-module integration tests: full episodes through the simulator with
// the real controllers, the expert->dataset->training->inference loop, and
// determinism of the whole pipeline.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/co_controller.hpp"
#include "core/controller_registry.hpp"
#include "core/icoil_controller.hpp"
#include "core/il_controller.hpp"
#include "il/trainer.hpp"
#include "sim/evaluator.hpp"
#include "sim/expert.hpp"
#include "sim/simulator.hpp"

namespace icoil {
namespace {

il::IlPolicyConfig tiny_policy_config() {
  il::IlPolicyConfig cfg;
  cfg.bev_size = 16;
  cfg.conv_channels[0] = 4;
  cfg.conv_channels[1] = 4;
  cfg.conv_channels[2] = 8;
  cfg.fc_sizes[0] = 32;
  cfg.fc_sizes[1] = 16;
  cfg.fc_sizes[2] = 16;
  return cfg;
}

TEST(IntegrationTest, CoParksAcrossSeedsEasy) {
  // The CO stack (hybrid A* + SQP MPC) parks on several easy seeds.
  sim::Simulator simulator;
  int successes = 0;
  for (std::uint64_t seed : {500ull, 501ull, 502ull}) {
    world::ScenarioOptions opt;
    opt.difficulty = world::Difficulty::kEasy;
    const world::Scenario sc = world::make_scenario(opt, seed);
    core::CoController controller(co::CoPlannerConfig{},
                                  vehicle::VehicleParams{});
    const sim::EpisodeResult res = simulator.run(sc, controller, seed);
    successes += res.success() ? 1 : 0;
  }
  EXPECT_GE(successes, 2);
}

TEST(IntegrationTest, CoHandlesDynamicObstacles) {
  sim::Simulator simulator;
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kNormal;
  const world::Scenario sc = world::make_scenario(opt, 510);
  core::CoController controller(co::CoPlannerConfig{}, vehicle::VehicleParams{});
  const sim::EpisodeResult res = simulator.run(sc, controller, 510);
  // Either parks or at minimum never collides before timeout.
  if (!res.success()) EXPECT_NE(res.outcome, sim::Outcome::kCollision);
}

TEST(IntegrationTest, ExpertToTrainingToInferenceLoop) {
  // Record one short expert episode, train a tiny policy briefly, and check
  // the trained policy produces sharper (lower-entropy) outputs on the
  // demonstration distribution than an untrained one.
  sim::ExpertConfig expert_cfg;
  expert_cfg.episodes = 1;
  expert_cfg.frame_stride = 3;
  const il::IlPolicyConfig policy_cfg = tiny_policy_config();
  const il::Dataset dataset =
      sim::ExpertRecorder(expert_cfg, policy_cfg).record();
  ASSERT_GT(dataset.size(), 50u);

  il::IlPolicy trained(policy_cfg, 3);
  il::IlPolicy untrained(policy_cfg, 3);
  il::TrainConfig train_cfg;
  train_cfg.epochs = 10;
  train_cfg.learning_rate = 3e-3;
  const il::TrainReport report = il::Trainer(train_cfg).train(trained, dataset);
  EXPECT_GT(report.final_val_accuracy, 0.15);  // above 1/15 chance

  double trained_entropy = 0.0, untrained_entropy = 0.0;
  const std::size_t probe = std::min<std::size_t>(dataset.size(), 40);
  for (std::size_t i = 0; i < probe; ++i) {
    trained_entropy += trained.infer(dataset[i].observation).entropy;
    untrained_entropy += untrained.infer(dataset[i].observation).entropy;
  }
  EXPECT_LT(trained_entropy, untrained_entropy);
}

TEST(IntegrationTest, IcoilEpisodeRunsEndToEnd) {
  // With an untrained policy iCOIL stays mostly in CO mode and still parks.
  il::IlPolicy policy(tiny_policy_config());
  core::IcoilConfig config;
  core::IcoilController controller(config, policy);
  sim::SimConfig sim_cfg;
  sim_cfg.record_trace = true;
  sim::Simulator simulator(sim_cfg);

  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  const world::Scenario sc = world::make_scenario(opt, 500);
  const sim::EpisodeResult res = simulator.run(sc, controller, 500);
  EXPECT_EQ(res.outcome, sim::Outcome::kSuccess);
  // Telemetry present on every frame.
  ASSERT_FALSE(res.trace.empty());
  for (const sim::FrameRecord& f : res.trace) {
    EXPECT_GE(f.info.ratio, 0.0);
    EXPECT_GE(f.info.complexity, 0.0);
  }
  // Untrained -> high entropy -> CO-dominated episode.
  EXPECT_LT(res.il_fraction, 0.5);
}

TEST(IntegrationTest, HardLevelNoiseReachesControllers) {
  // On the hard level the detector jitters: two iCOIL episodes with
  // different sim seeds on the same scenario diverge, while easy-level
  // noise-free episodes with the same seed are bitwise deterministic.
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kHard;
  const world::Scenario sc = world::make_scenario(opt, 600);

  auto run_with = [&](std::uint64_t sim_seed) {
    core::CoController controller(co::CoPlannerConfig{},
                                  vehicle::VehicleParams{});
    sim::SimConfig cfg;
    cfg.record_trace = true;
    return sim::Simulator(cfg).run(sc, controller, sim_seed);
  };
  const sim::EpisodeResult a = run_with(1);
  const sim::EpisodeResult b = run_with(2);
  // Different noise draws -> different trajectories.
  bool diverged = a.frames != b.frames;
  const std::size_t n = std::min(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < n && !diverged; ++i)
    diverged = std::abs(a.trace[i].state.x() - b.trace[i].state.x()) > 1e-9;
  EXPECT_TRUE(diverged);
}

TEST(IntegrationTest, EvaluatorMatchesSimulatorSingleEpisode) {
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  sim::EvalConfig eval_cfg;
  eval_cfg.episodes = 1;
  eval_cfg.base_seed = 500;
  const auto detailed = sim::Evaluator(eval_cfg).evaluate_detailed(
      core::ControllerRegistry::instance().factory("co"), opt);
  ASSERT_EQ(detailed.size(), 1u);

  const world::Scenario sc = world::make_scenario(opt, 500);
  core::CoController controller(co::CoPlannerConfig{}, vehicle::VehicleParams{});
  const sim::EpisodeResult direct = sim::Simulator().run(sc, controller, 500);
  EXPECT_EQ(detailed[0].outcome, direct.outcome);
  EXPECT_DOUBLE_EQ(detailed[0].park_time, direct.park_time);
}

}  // namespace
}  // namespace icoil
