// Property-based sweeps across modules: invariants that must hold for any
// seed, checked over parameterized ranges (TEST_P).

#include <gtest/gtest.h>

#include <cmath>

#include "co/reeds_shepp.hpp"
#include "core/hsa.hpp"
#include "geom/angles.hpp"
#include "mathkit/qp.hpp"
#include "mathkit/rng.hpp"
#include "sensing/bev.hpp"
#include "vehicle/kinematics.hpp"
#include "world/scenario.hpp"

namespace icoil {
namespace {

// ----------------------------------------------------------- QP/KKT

class QpKktProperty : public ::testing::TestWithParam<int> {};

TEST_P(QpKktProperty, SolutionSatisfiesKktConditions) {
  math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 11);
  const std::size_t n = 4 + static_cast<std::size_t>(GetParam()) % 6;

  math::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal() * 0.4;
  math::QpProblem p;
  p.p = a.transpose() * a;
  for (std::size_t i = 0; i < n; ++i) p.p(i, i) += 0.5;
  p.q.assign(n, 0.0);
  for (double& v : p.q) v = rng.normal();
  p.a = math::Matrix::identity(n);
  p.l.assign(n, -1.5);
  p.u.assign(n, 1.5);

  math::QpSettings settings;
  settings.eps_abs = 1e-5;
  settings.eps_rel = 1e-5;
  settings.max_iterations = 20000;
  const math::QpResult r = math::QpSolver(settings).solve(p);
  ASSERT_TRUE(r.ok());

  // Primal feasibility.
  const auto ax = p.a.apply(r.x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(ax[i], p.l[i] - 1e-3);
    EXPECT_LE(ax[i], p.u[i] + 1e-3);
  }
  // Stationarity: P x + q + A^T y = 0.
  const auto px = p.p.apply(r.x);
  const auto aty = p.a.apply_transpose(r.y);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(px[i] + p.q[i] + aty[i], 0.0, 5e-3);
  // Complementary slackness sign convention: y_i < 0 only at the lower
  // bound, y_i > 0 only at the upper bound.
  for (std::size_t i = 0; i < n; ++i) {
    if (r.y[i] > 1e-3) EXPECT_NEAR(ax[i], p.u[i], 1e-2);
    if (r.y[i] < -1e-3) EXPECT_NEAR(ax[i], p.l[i], 1e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBoxQps, QpKktProperty, ::testing::Range(0, 25));

// ------------------------------------------------------ bicycle model

class BicycleProperty : public ::testing::TestWithParam<int> {};

TEST_P(BicycleProperty, MotionInvariants) {
  math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 3);
  const vehicle::BicycleModel model;
  vehicle::State s;
  s.pose = {rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-3, 3)};
  s.speed = rng.uniform(-1.5, 2.5);

  vehicle::Command cmd;
  cmd.throttle = rng.uniform(0, 1);
  cmd.brake = rng.uniform(0, 0.5);
  cmd.steer = rng.uniform(-1, 1);
  cmd.reverse = rng.bernoulli(0.3);

  vehicle::State prev = s;
  for (int i = 0; i < 50; ++i) {
    const vehicle::State next = model.step(prev, cmd, 0.05);
    // Speed limits always respected.
    EXPECT_LE(next.speed, model.params().max_speed_fwd + 1e-9);
    EXPECT_GE(next.speed, -model.params().max_speed_rev - 1e-9);
    // Heading stays wrapped.
    EXPECT_LE(std::abs(next.pose.heading), geom::kPi + 1e-9);
    // Displacement bounded by |v_max| dt.
    EXPECT_LE(geom::distance(next.pose.position, prev.pose.position),
              model.params().max_speed_fwd * 0.05 + 1e-6);
    prev = next;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDrives, BicycleProperty, ::testing::Range(0, 30));

TEST_P(BicycleProperty, PlannerModelRotationEquivariance) {
  // Rotating the start pose rotates the trajectory: the model must not
  // depend on absolute heading.
  math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 59 + 1);
  const vehicle::BicycleModel model;
  const vehicle::PlannerControl u{rng.uniform(-2, 2), rng.uniform(-0.5, 0.5)};
  const double rot = rng.uniform(-3, 3);

  vehicle::State a;
  a.speed = rng.uniform(-1, 2);
  vehicle::State b = a;
  b.pose.heading = geom::wrap_angle(a.pose.heading + rot);

  for (int i = 0; i < 20; ++i) {
    a = model.step_planner(a, u, 0.05);
    b = model.step_planner(b, u, 0.05);
  }
  const geom::Vec2 a_rotated = a.pose.position.rotated(rot);
  EXPECT_NEAR(a_rotated.x, b.pose.position.x, 1e-6);
  EXPECT_NEAR(a_rotated.y, b.pose.position.y, 1e-6);
  EXPECT_NEAR(geom::angle_diff(b.pose.heading, a.pose.heading), rot, 1e-6);
  EXPECT_NEAR(a.speed, b.speed, 1e-9);
}

// ------------------------------------------------------- Reeds-Shepp

class RsTriangleProperty : public ::testing::TestWithParam<int> {};

TEST_P(RsTriangleProperty, ApproximateTriangleInequalityViaMidpoint) {
  // With the FULL Reeds-Shepp word set, A->B is never longer than A->M->B.
  // This implementation searches the CSC/CCC/SCS families (see
  // reeds_shepp.hpp), so the concatenation A->M->B is not always
  // representable as a single word; allow bounded suboptimality.
  math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 23);
  const co::ReedsShepp rs(2.5);
  const geom::Pose2 a{rng.uniform(-6, 6), rng.uniform(-6, 6), rng.uniform(-3, 3)};
  const geom::Pose2 m{rng.uniform(-6, 6), rng.uniform(-6, 6), rng.uniform(-3, 3)};
  const geom::Pose2 b{rng.uniform(-6, 6), rng.uniform(-6, 6), rng.uniform(-3, 3)};
  const auto ab = rs.shortest_path(a, b);
  const auto am = rs.shortest_path(a, m);
  const auto mb = rs.shortest_path(m, b);
  ASSERT_TRUE(ab && am && mb);
  EXPECT_LE(rs.length(*ab),
            1.35 * (rs.length(*am) + rs.length(*mb)) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomTriples, RsTriangleProperty, ::testing::Range(0, 30));

class RsScaleProperty : public ::testing::TestWithParam<int> {};

TEST_P(RsScaleProperty, LengthScalesWithRadiusForPureRotation) {
  // For a pure in-place heading change, path length grows with radius.
  math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 9);
  const double heading = rng.uniform(0.5, 3.0);
  const co::ReedsShepp small(1.5), big(4.0);
  const geom::Pose2 from{0, 0, 0}, to{0, 0, heading};
  const auto ps = small.shortest_path(from, to);
  const auto pb = big.shortest_path(from, to);
  ASSERT_TRUE(ps && pb);
  EXPECT_LE(small.length(*ps), big.length(*pb) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomHeadings, RsScaleProperty, ::testing::Range(0, 15));

// ------------------------------------------------------------- HSA

class HsaMonotoneProperty : public ::testing::TestWithParam<int> {};

TEST_P(HsaMonotoneProperty, ComplexityMonotoneInObstacleCount) {
  // Adding an obstacle at the most dangerous distance can only increase
  // instantaneous complexity.
  math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 2);
  core::HsaConfig cfg;
  core::Hsa hsa(cfg);
  std::vector<double> distances;
  double prev = hsa.instant_complexity(distances);
  for (int k = 0; k < 6; ++k) {
    distances.push_back(rng.uniform(0.5, 8.0));
    const double next = hsa.instant_complexity(distances);
    EXPECT_GT(next, prev);
    prev = next;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDistances, HsaMonotoneProperty,
                         ::testing::Range(0, 15));

TEST(HsaPropertyTest, RatioMonotoneInEntropy) {
  core::HsaConfig cfg;
  double prev_ratio = -1.0;
  for (double entropy : {0.0, 0.3, 0.9, 1.8, 2.7}) {
    core::Hsa hsa(cfg);
    for (int i = 0; i < cfg.window; ++i) hsa.push(entropy, {2.0, 3.0});
    EXPECT_GT(hsa.ratio(), prev_ratio);
    prev_ratio = hsa.ratio();
  }
}

// --------------------------------------------------------------- BEV

class BevProperty : public ::testing::TestWithParam<int> {};

TEST_P(BevProperty, TranslationInvarianceInFreeSpace) {
  // Far from all obstacles and walls, the BEV is identical regardless of
  // where the ego stands (all channels empty).
  math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 29 + 4);
  world::ScenarioOptions opt;
  opt.difficulty = world::Difficulty::kEasy;
  const world::World world{world::make_scenario(opt, 9)};
  const sense::BevRasterizer raster({24, 6.0});  // tiny 6 m window

  const geom::Pose2 a{rng.uniform(10, 14), rng.uniform(24, 26), rng.uniform(-3, 3)};
  const geom::Pose2 b{rng.uniform(16, 20), rng.uniform(24, 26), rng.uniform(-3, 3)};
  const sense::BevImage ia = raster.render(world, a);
  const sense::BevImage ib = raster.render(world, b);
  for (std::size_t i = 0; i < ia.num_values(); ++i)
    ASSERT_FLOAT_EQ(ia.data()[i], ib.data()[i]);
}

INSTANTIATE_TEST_SUITE_P(RandomPoses, BevProperty, ::testing::Range(0, 10));

// ------------------------------------------------------------ scenario

class ScenarioProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioProperty, StartPoseNeverCollides) {
  // The sampled start pose must leave the ego footprint collision-free for
  // every difficulty and seed (otherwise episodes die at frame zero).
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const vehicle::BicycleModel model;
  for (auto level : {world::Difficulty::kEasy, world::Difficulty::kNormal,
                     world::Difficulty::kHard}) {
    world::ScenarioOptions opt;
    opt.difficulty = level;
    const world::Scenario sc = world::make_scenario(opt, seed);
    const world::World world(sc);
    EXPECT_FALSE(world.in_collision(model.footprint(sc.start_pose)))
        << world::to_string(level) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace icoil
