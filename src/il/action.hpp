#pragma once

#include <vector>

#include "vehicle/command.hpp"

namespace icoil::il {

/// Discretization of the continuous driving action into M classes
/// (section IV-A formulates IL as multi-category classification).
/// Classes are the cross product of steer bins and longitudinal bins:
/// steer in {-1, -0.5, 0, +0.5, +1} x {forward, brake, reverse}.
class ActionDiscretizer {
 public:
  static constexpr int kSteerBins = 5;
  static constexpr int kLongBins = 3;  // 0 = forward, 1 = brake, 2 = reverse
  static constexpr int kNumClasses = kSteerBins * kLongBins;

  /// Representative steer fraction of each steer bin.
  static const std::vector<double>& steer_levels();

  /// Number of classes M.
  static constexpr int num_classes() { return kNumClasses; }

  /// Map a continuous command onto the nearest class id.
  static int to_class(const vehicle::Command& cmd);

  /// Representative command executed for a class id.
  static vehicle::Command to_command(int class_id);

  static int steer_bin(int class_id) { return class_id % kSteerBins; }
  static int long_bin(int class_id) { return class_id / kSteerBins; }
  static int make_class(int long_bin, int steer_bin) {
    return long_bin * kSteerBins + steer_bin;
  }
};

}  // namespace icoil::il
