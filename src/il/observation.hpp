#pragma once

#include "sensing/bev.hpp"

namespace icoil::il {

/// Number of channels the IL network consumes: the BEV channels plus one
/// ego-state channel (normalized signed speed, constant across the plane).
/// The state channel disambiguates the approach phase from the reverse
/// phase when the scene geometry alone is ambiguous — the DNN controller of
/// [2] (Chai et al.) similarly feeds vehicle state alongside imagery.
inline constexpr int kObservationChannels = sense::kBevChannels + 1;

/// Reference speed used to normalize the state channel.
inline constexpr double kSpeedNormalization = 3.0;

/// Build the network observation: BEV channels + the ego-speed plane.
sense::BevImage make_observation(const sense::BevImage& bev, double ego_speed);

}  // namespace icoil::il
