#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "il/policy.hpp"
#include "nn/sequential.hpp"

namespace icoil::il {

/// Counters the batching service keeps so the serve report can show what
/// batching actually did: how many ticks had work, how large the batches
/// were, and how much time went into the batched forward versus the
/// gather/scatter machinery around it.
struct BatchStats {
  std::uint64_t ticks = 0;       ///< run_tick calls that had pending work
  std::uint64_t requests = 0;    ///< observations submitted
  std::uint64_t batches = 0;     ///< batched forward passes run
  std::size_t max_batch = 0;     ///< largest single forward batch
  double gather_seconds = 0.0;   ///< packing observations into batch tensors
  double forward_seconds = 0.0;  ///< the batched network forwards themselves
  double scatter_seconds = 0.0;  ///< unpacking logits into Inference results

  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
};

/// Batched inference front-end for one shared IlPolicy. Concurrent sessions
/// submit() their observation for the current tick (thread-safe; the copy
/// into the staging tensor is the gather step), the driver then calls
/// run_tick() once — a single forward over the packed (N,C,H,W) batch on
/// shared weights — and each session reads back result(slot). Results are
/// bit-identical to calling policy.infer() per observation: the eval-path
/// kernels never reassociate per-element sums (mathkit/gemm.hpp) and every
/// layer treats batch rows independently.
class BatchInferencer {
 public:
  /// `max_batch` caps one forward pass; a tick with more submissions runs
  /// in chunks of that size, the last one ragged. 0 means unbounded.
  explicit BatchInferencer(IlPolicy& policy, std::size_t max_batch = 32);

  /// Stage one observation for this tick. Returns the slot to read the
  /// result from after run_tick(). Safe to call from worker threads.
  std::size_t submit(const sense::BevImage& observation);

  /// Gather -> batched forward(s) -> scatter for everything submitted since
  /// the previous tick. Call from one thread, with no submit() in flight.
  void run_tick();

  /// Result for a slot returned by submit(); valid until the tick after
  /// the next run_tick().
  const Inference& result(std::size_t slot) const { return results_[slot]; }

  std::size_t pending() const { return count_; }
  std::size_t max_batch() const { return max_batch_; }
  const BatchStats& stats() const { return stats_; }

 private:
  IlPolicy& policy_;
  std::size_t max_batch_;
  std::mutex mutex_;
  nn::Tensor staged_;  ///< (N,C,H,W) staging tensor; N grows with submits
  std::size_t count_ = 0;
  nn::Tensor chunk_;  ///< sub-batch copy when a tick exceeds max_batch
  nn::EvalWorkspace ws_;
  std::vector<Inference> results_;
  BatchStats stats_;
};

}  // namespace icoil::il
