#include "il/action.hpp"

#include <algorithm>
#include <cmath>

namespace icoil::il {

const std::vector<double>& ActionDiscretizer::steer_levels() {
  static const std::vector<double> kLevels = {-1.0, -0.5, 0.0, 0.5, 1.0};
  return kLevels;
}

int ActionDiscretizer::to_class(const vehicle::Command& raw) {
  const vehicle::Command cmd = raw.clamped();
  // Longitudinal bin: braking wins when brake dominates throttle.
  int lbin;
  if (cmd.brake >= cmd.throttle)
    lbin = 1;  // brake / hold
  else
    lbin = cmd.reverse ? 2 : 0;

  // Nearest steer level.
  int sbin = 0;
  double best = 1e9;
  const auto& levels = steer_levels();
  for (int i = 0; i < kSteerBins; ++i) {
    const double d = std::abs(cmd.steer - levels[static_cast<std::size_t>(i)]);
    if (d < best) {
      best = d;
      sbin = i;
    }
  }
  return make_class(lbin, sbin);
}

vehicle::Command ActionDiscretizer::to_command(int class_id) {
  const int lbin = long_bin(class_id);
  const int sbin = steer_bin(class_id);
  vehicle::Command cmd;
  cmd.steer = steer_levels()[static_cast<std::size_t>(sbin)];
  switch (lbin) {
    case 0:  // forward
      cmd.throttle = 0.5;
      break;
    case 1:  // brake
      cmd.brake = 0.8;
      break;
    case 2:  // reverse
      cmd.throttle = 0.45;
      cmd.reverse = true;
      break;
    default:
      break;
  }
  return cmd;
}

}  // namespace icoil::il
