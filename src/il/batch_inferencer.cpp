#include "il/batch_inferencer.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace icoil::il {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

BatchInferencer::BatchInferencer(IlPolicy& policy, std::size_t max_batch)
    : policy_(policy), max_batch_(max_batch) {}

std::size_t BatchInferencer::submit(const sense::BevImage& observation) {
  const int side = policy_.config().bev_size;
  assert(observation.channels() == kObservationChannels &&
         observation.size() == side);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto t0 = Clock::now();
  const std::size_t slot = count_++;
  staged_.resize({static_cast<int>(count_), kObservationChannels, side, side});
  const std::vector<float>& src = observation.data();
  std::copy(src.begin(), src.end(), staged_.data() + slot * src.size());
  stats_.gather_seconds += seconds_since(t0);
  return slot;
}

void BatchInferencer::run_tick() {
  const std::size_t n = count_;
  if (n == 0) return;
  count_ = 0;
  if (results_.size() < n) results_.resize(n);

  stats_.ticks += 1;
  stats_.requests += n;

  const int side = policy_.config().bev_size;
  const std::size_t item =
      static_cast<std::size_t>(kObservationChannels) * side * side;
  const int m = policy_.num_classes();
  const std::size_t cap = max_batch_ == 0 ? n : max_batch_;

  for (std::size_t start = 0; start < n; start += cap) {
    const std::size_t bn = std::min(cap, n - start);

    const nn::Tensor* batch = &staged_;
    if (bn != n) {
      // Chunked tick: copy this slice of the staging tensor. Counted as
      // gather — it is batching machinery, not network time.
      const auto t0 = Clock::now();
      chunk_.resize({static_cast<int>(bn), kObservationChannels, side, side});
      std::copy(staged_.data() + start * item,
                staged_.data() + (start + bn) * item, chunk_.data());
      stats_.gather_seconds += seconds_since(t0);
      batch = &chunk_;
    }

    const auto t1 = Clock::now();
    const nn::Tensor& logits = policy_.forward_eval(*batch, ws_);
    stats_.forward_seconds += seconds_since(t1);
    stats_.batches += 1;
    stats_.max_batch = std::max(stats_.max_batch, bn);

    const auto t2 = Clock::now();
    assert(logits.dim(0) == static_cast<int>(bn) && logits.dim(1) == m);
    for (std::size_t i = 0; i < bn; ++i)
      results_[start + i] = IlPolicy::inference_from_logits(
          logits.data() + i * static_cast<std::size_t>(m), m);
    stats_.scatter_seconds += seconds_since(t2);
  }
}

}  // namespace icoil::il
