#include "il/policy.hpp"

#include <algorithm>
#include <cassert>

#include "nn/layers.hpp"
#include "nn/loss.hpp"

namespace icoil::il {

namespace {

nn::Sequential build_network(const IlPolicy::Config& c) {
  nn::Sequential net;
  // Feature extraction: three conv/ReLU/maxpool stages (section IV-A).
  int ch = kObservationChannels;
  int side = c.bev_size;
  for (int stage = 0; stage < 3; ++stage) {
    net.add<nn::Conv2D>(ch, c.conv_channels[stage], 3, 1);
    net.add<nn::ReLU>();
    net.add<nn::MaxPool2D>();
    ch = c.conv_channels[stage];
    side /= 2;
  }
  net.add<nn::Flatten>();
  // State-action network: four fully connected layers; the last outputs the
  // M logits consumed by the softmax.
  int features = ch * side * side;
  for (int i = 0; i < 3; ++i) {
    net.add<nn::Dense>(features, c.fc_sizes[i]);
    net.add<nn::ReLU>();
    features = c.fc_sizes[i];
  }
  net.add<nn::Dense>(features, ActionDiscretizer::num_classes());
  return net;
}

}  // namespace

IlPolicy::IlPolicy(Config config, std::uint64_t init_seed)
    : config_(config), net_(build_network(config)) {
  math::Rng rng(init_seed);
  net_.init(rng);
}

nn::Tensor IlPolicy::to_input(const sense::BevImage& observation) const {
  assert(observation.size() == config_.bev_size &&
         observation.channels() == kObservationChannels);
  return nn::Tensor::from_data(
      {1, observation.channels(), observation.size(), observation.size()},
      observation.data());
}

nn::Tensor IlPolicy::forward_batch(const nn::Tensor& batch, bool training) {
  return net_.forward(batch, training);
}

const nn::Tensor& IlPolicy::forward_eval(const nn::Tensor& batch,
                                         nn::EvalWorkspace& ws) {
  return net_.forward_eval(batch, ws);
}

Inference IlPolicy::inference_from_logits(const float* logits, int m) {
  Inference out;
  out.probs = nn::softmax_row(logits, m);
  out.action_class = static_cast<int>(
      std::max_element(out.probs.begin(), out.probs.end()) - out.probs.begin());
  out.command = ActionDiscretizer::to_command(out.action_class);
  out.entropy = nn::entropy(out.probs);
  return out;
}

Inference IlPolicy::infer(const sense::BevImage& observation) {
  const nn::Tensor logits =
      net_.forward(to_input(observation), /*training=*/false);
  return inference_from_logits(logits.data(), logits.dim(1));
}

std::unique_ptr<IlPolicy> IlPolicy::clone() const {
  auto copy = std::make_unique<IlPolicy>(config_);
  auto* self = const_cast<IlPolicy*>(this);
  const auto src = self->net_.params();
  const auto dst = copy->net_.params();
  assert(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    assert(src[i]->value.shape() == dst[i]->value.shape());
    dst[i]->value = src[i]->value;
  }
  return copy;
}

}  // namespace icoil::il
