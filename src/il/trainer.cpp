#include "il/trainer.hpp"

#include <algorithm>
#include <cassert>

#include "core/task_pool.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace icoil::il {

namespace {

void copy_params(const std::vector<nn::Param*>& src,
                 const std::vector<nn::Param*>& dst) {
  assert(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
}

}  // namespace

double Trainer::evaluate_accuracy(IlPolicy& policy, const Dataset& dataset,
                                  std::size_t batch_size) {
  if (dataset.empty()) return 0.0;
  std::size_t correct_total = 0;
  for (std::size_t begin = 0; begin < dataset.size(); begin += batch_size) {
    const std::size_t count = std::min(batch_size, dataset.size() - begin);
    auto [batch, labels] = dataset.make_batch(begin, count);
    const nn::Tensor logits = policy.forward_batch(batch, /*training=*/false);
    correct_total += static_cast<std::size_t>(
        nn::CrossEntropyLoss::accuracy(logits, labels) * static_cast<double>(count) +
        0.5);
  }
  return static_cast<double>(correct_total) / static_cast<double>(dataset.size());
}

TrainReport Trainer::train(IlPolicy& policy, const Dataset& dataset,
                           ProgressFn progress) const {
  TrainReport report;
  if (dataset.empty()) return report;

  Dataset shuffled = dataset;
  math::Rng rng(config_.shuffle_seed);
  shuffled.shuffle(rng);
  auto [train_set, val_set] = shuffled.split(config_.validation_fraction);
  report.train_samples = train_set.size();
  report.val_samples = val_set.size();
  if (train_set.empty()) return report;

  const int threads = core::TaskPool::recommended_workers(
      config_.num_threads, static_cast<int>(train_set.size()),
      config_.thread_cap);

  // Worker clones: each gradient shard needs its own activation caches.
  std::vector<std::unique_ptr<IlPolicy>> workers;
  for (int t = 0; t < threads; ++t) workers.push_back(policy.clone());

  // One persistent pool for the whole training run; wait_idle() is the
  // per-batch barrier (the old code spawned and joined a fresh thread set
  // for every batch).
  core::TaskPool pool(threads);

  const auto main_params = policy.network().params();
  nn::Adam optimizer(main_params, config_.learning_rate);

  struct ShardResult {
    double loss_sum = 0.0;  // loss * shard size
    double correct = 0.0;
  };

  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    train_set.shuffle(rng);
    double epoch_loss = 0.0;
    double epoch_correct = 0.0;

    for (std::size_t begin = 0; begin < train_set.size();
         begin += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t batch_n = std::min<std::size_t>(
          static_cast<std::size_t>(config_.batch_size), train_set.size() - begin);
      const int active = static_cast<int>(
          std::min<std::size_t>(static_cast<std::size_t>(threads), batch_n));
      const std::size_t shard = (batch_n + active - 1) / active;

      policy.network().zero_grad();
      std::vector<ShardResult> results(static_cast<std::size_t>(active));
      for (int t = 0; t < active; ++t) {
        // Shards are keyed by shard index (not pool worker index): clones
        // outnumber concurrent shards, so any worker may run any shard.
        pool.submit([&, t](const core::TaskPool::Context&) {
          IlPolicy& w = *workers[static_cast<std::size_t>(t)];
          copy_params(main_params, w.network().params());
          w.network().zero_grad();
          const std::size_t lo = begin + static_cast<std::size_t>(t) * shard;
          const std::size_t n =
              std::min(shard, begin + batch_n > lo ? begin + batch_n - lo : 0);
          if (n == 0) return;
          auto [batch, labels] = train_set.make_batch(lo, n);
          const nn::Tensor logits = w.forward_batch(batch, /*training=*/true);
          const auto ce = nn::CrossEntropyLoss::compute(logits, labels);
          w.network().backward(ce.grad);
          results[static_cast<std::size_t>(t)].loss_sum =
              static_cast<double>(ce.loss) * static_cast<double>(n);
          results[static_cast<std::size_t>(t)].correct =
              nn::CrossEntropyLoss::accuracy(logits, labels) *
              static_cast<double>(n);
        });
      }
      pool.wait_idle();

      // Average the shard gradients (each shard's CE already divides by its
      // own size, so reweight by shard/batch).
      for (int t = 0; t < active; ++t) {
        const std::size_t lo = begin + static_cast<std::size_t>(t) * shard;
        const std::size_t n =
            std::min(shard, begin + batch_n > lo ? begin + batch_n - lo : 0);
        if (n == 0) continue;
        const float scale =
            static_cast<float>(n) / static_cast<float>(batch_n);
        const auto wparams = workers[static_cast<std::size_t>(t)]->network().params();
        for (std::size_t p = 0; p < main_params.size(); ++p)
          for (std::size_t i = 0; i < main_params[p]->grad.size(); ++i)
            main_params[p]->grad[i] += scale * wparams[p]->grad[i];
        epoch_loss += results[static_cast<std::size_t>(t)].loss_sum;
        epoch_correct += results[static_cast<std::size_t>(t)].correct;
      }
      optimizer.step();
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = epoch_loss / static_cast<double>(train_set.size());
    stats.train_accuracy = epoch_correct / static_cast<double>(train_set.size());
    stats.val_accuracy =
        val_set.empty() ? 0.0 : evaluate_accuracy(policy, val_set);
    report.epochs.push_back(stats);
    if (progress) progress(stats);
  }

  report.final_val_accuracy =
      report.epochs.empty() ? 0.0 : report.epochs.back().val_accuracy;
  return report;
}

}  // namespace icoil::il
