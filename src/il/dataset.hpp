#pragma once

#include <string>
#include <utility>
#include <vector>

#include "mathkit/rng.hpp"
#include "nn/tensor.hpp"
#include "sensing/bev.hpp"

namespace icoil::il {

/// One behaviour-cloning sample: a BEV observation and the expert's
/// discretized action class.
struct Sample {
  sense::BevImage observation;
  int label = 0;
};

/// The demonstration dataset D of eq. (2). Stores samples, shuffles
/// deterministically, splits train/validation and assembles batch tensors.
class Dataset {
 public:
  void add(Sample sample) { samples_.push_back(std::move(sample)); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }

  /// Per-class sample counts (distribution diagnostics / class balance).
  std::vector<std::size_t> class_histogram(int num_classes) const;

  void shuffle(math::Rng& rng);

  /// Split off the last `fraction` of samples as a validation set.
  std::pair<Dataset, Dataset> split(double validation_fraction) const;

  /// Assemble samples [begin, begin+count) into an input tensor (N,C,H,W)
  /// and a label vector.
  std::pair<nn::Tensor, std::vector<int>> make_batch(std::size_t begin,
                                                     std::size_t count) const;

  /// Persist to a compact binary file (pixels quantized to 8 bits — the
  /// observations are occupancy masks plus one constant channel, so the
  /// quantization is lossless in practice). Returns false on I/O error.
  bool save(const std::string& path) const;
  /// Load a dataset saved by `save`. Replaces current contents.
  bool load(const std::string& path);

 private:
  std::vector<Sample> samples_;
};

}  // namespace icoil::il
