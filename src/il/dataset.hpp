#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mathkit/rng.hpp"
#include "nn/tensor.hpp"
#include "sensing/bev.hpp"

namespace icoil::il {

/// One behaviour-cloning sample: a BEV observation, the expert's discretized
/// action class, and recording provenance — which scenario family and
/// difficulty produced it. `family` indexes the owning Dataset's family-name
/// table (-1 = unknown, e.g. legacy files); `difficulty` is the numeric
/// value of world::Difficulty at record time.
struct Sample {
  sense::BevImage observation;
  int label = 0;
  std::int16_t family = -1;
  std::uint8_t difficulty = 0;
};

/// The demonstration dataset D of eq. (2). Stores samples, shuffles
/// deterministically, splits train/validation and assembles batch tensors.
/// Samples carry provenance (scenario family + difficulty) through
/// serialization so a trained policy's data composition can be reported and
/// filtered after the fact.
class Dataset {
 public:
  void add(Sample sample) { samples_.push_back(std::move(sample)); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  /// Append every sample of `other`, remapping its family indices into this
  /// dataset's family table.
  void append(const Dataset& other);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }

  /// Intern a scenario-family name, returning its index for Sample::family.
  int intern_family(const std::string& name);
  /// Family-name table; Sample::family indexes into it.
  const std::vector<std::string>& family_names() const { return family_names_; }
  /// Name for a Sample::family index ("unknown" for -1 / out of range).
  const std::string& family_name(int index) const;

  /// Per-class sample counts (distribution diagnostics / class balance).
  std::vector<std::size_t> class_histogram(int num_classes) const;

  /// Sample counts keyed by scenario-family name (legacy samples without
  /// provenance count under "unknown").
  std::map<std::string, std::size_t> family_histogram() const;

  /// The subset of samples recorded from scenario family `name`.
  Dataset filter_family(const std::string& name) const;

  void shuffle(math::Rng& rng);

  /// Split off the last `fraction` of samples as a validation set.
  std::pair<Dataset, Dataset> split(double validation_fraction) const;

  /// Assemble samples [begin, begin+count) into an input tensor (N,C,H,W)
  /// and a label vector.
  std::pair<nn::Tensor, std::vector<int>> make_batch(std::size_t begin,
                                                     std::size_t count) const;

  /// Persist to a compact binary file (pixels quantized to 8 bits — the
  /// observations are occupancy masks plus one constant channel, so the
  /// quantization is lossless in practice). Returns false on I/O error.
  bool save(const std::string& path) const;
  /// Load a dataset saved by `save`. Replaces current contents. Accepts both
  /// the current format and the pre-provenance v1 format (whose samples load
  /// with family = -1).
  bool load(const std::string& path);

 private:
  std::vector<Sample> samples_;
  std::vector<std::string> family_names_;
};

}  // namespace icoil::il
