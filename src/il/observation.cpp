#include "il/observation.hpp"

#include <algorithm>

namespace icoil::il {

sense::BevImage make_observation(const sense::BevImage& bev, double ego_speed) {
  sense::BevImage out(kObservationChannels, bev.size());
  std::copy(bev.data().begin(), bev.data().end(), out.data().begin());
  const float v = static_cast<float>(
      std::clamp(ego_speed / kSpeedNormalization, -1.0, 1.0));
  const std::size_t plane = static_cast<std::size_t>(bev.size()) * bev.size();
  float* state = out.data().data() + static_cast<std::size_t>(sense::kBevChannels) * plane;
  std::fill(state, state + plane, v);
  return out;
}

}  // namespace icoil::il
