#include "il/dataset.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <fstream>

namespace icoil::il {

void Dataset::append(const Dataset& other) {
  std::vector<std::int16_t> remap(other.family_names_.size(), -1);
  for (std::size_t i = 0; i < other.family_names_.size(); ++i)
    remap[i] = static_cast<std::int16_t>(intern_family(other.family_names_[i]));
  samples_.reserve(samples_.size() + other.samples_.size());
  for (const Sample& s : other.samples_) {
    Sample copy = s;
    copy.family =
        (s.family >= 0 &&
         static_cast<std::size_t>(s.family) < remap.size())
            ? remap[static_cast<std::size_t>(s.family)]
            : std::int16_t{-1};
    samples_.push_back(std::move(copy));
  }
}

int Dataset::intern_family(const std::string& name) {
  for (std::size_t i = 0; i < family_names_.size(); ++i)
    if (family_names_[i] == name) return static_cast<int>(i);
  family_names_.push_back(name);
  return static_cast<int>(family_names_.size()) - 1;
}

const std::string& Dataset::family_name(int index) const {
  static const std::string kUnknown = "unknown";
  if (index < 0 || static_cast<std::size_t>(index) >= family_names_.size())
    return kUnknown;
  return family_names_[static_cast<std::size_t>(index)];
}

std::vector<std::size_t> Dataset::class_histogram(int num_classes) const {
  std::vector<std::size_t> hist(static_cast<std::size_t>(num_classes), 0);
  for (const Sample& s : samples_)
    if (s.label >= 0 && s.label < num_classes) ++hist[static_cast<std::size_t>(s.label)];
  return hist;
}

std::map<std::string, std::size_t> Dataset::family_histogram() const {
  std::map<std::string, std::size_t> hist;
  for (const Sample& s : samples_) ++hist[family_name(s.family)];
  return hist;
}

Dataset Dataset::filter_family(const std::string& name) const {
  Dataset out;
  for (const Sample& s : samples_) {
    if (family_name(s.family) != name) continue;
    Sample copy = s;
    copy.family = static_cast<std::int16_t>(out.intern_family(name));
    out.add(std::move(copy));
  }
  return out;
}

void Dataset::shuffle(math::Rng& rng) {
  std::shuffle(samples_.begin(), samples_.end(), rng.engine());
}

std::pair<Dataset, Dataset> Dataset::split(double validation_fraction) const {
  const std::size_t val_count = static_cast<std::size_t>(
      static_cast<double>(samples_.size()) * validation_fraction);
  const std::size_t train_count = samples_.size() - val_count;
  Dataset train, val;
  train.family_names_ = family_names_;
  val.family_names_ = family_names_;
  train.reserve(train_count);
  val.reserve(val_count);
  for (std::size_t i = 0; i < samples_.size(); ++i)
    (i < train_count ? train : val).add(samples_[i]);
  return {std::move(train), std::move(val)};
}

std::pair<nn::Tensor, std::vector<int>> Dataset::make_batch(std::size_t begin,
                                                            std::size_t count) const {
  assert(begin + count <= samples_.size() && count > 0);
  const sense::BevImage& first = samples_[begin].observation;
  const int c = first.channels(), s = first.size();
  nn::Tensor batch({static_cast<int>(count), c, s, s});
  std::vector<int> labels(count);
  const std::size_t stride = first.num_values();
  for (std::size_t i = 0; i < count; ++i) {
    const Sample& sample = samples_[begin + i];
    assert(sample.observation.num_values() == stride);
    std::copy(sample.observation.data().begin(), sample.observation.data().end(),
              batch.data() + i * stride);
    labels[i] = sample.label;
  }
  return {std::move(batch), std::move(labels)};
}

namespace {
// v1 files predate per-sample provenance; load() still accepts them.
constexpr std::uint32_t kDatasetMagicV1 = 0x1C011D5Eu;
constexpr std::uint32_t kDatasetMagicV2 = 0x1C011D5Fu;

// The speed channel holds values in [-1, 1]; map [-1,1] -> [0,255].
std::uint8_t quantize(float v) {
  const float clamped = std::clamp(v, -1.0f, 1.0f);
  return static_cast<std::uint8_t>(std::lround((clamped + 1.0f) * 127.5f));
}
float dequantize(std::uint8_t q) {
  return static_cast<float>(q) / 127.5f - 1.0f;
}
}  // namespace

bool Dataset::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::uint32_t n = static_cast<std::uint32_t>(samples_.size());
  const std::uint32_t channels =
      samples_.empty() ? 0 : static_cast<std::uint32_t>(samples_[0].observation.channels());
  const std::uint32_t size =
      samples_.empty() ? 0 : static_cast<std::uint32_t>(samples_[0].observation.size());
  f.write(reinterpret_cast<const char*>(&kDatasetMagicV2), sizeof(kDatasetMagicV2));
  f.write(reinterpret_cast<const char*>(&n), sizeof(n));
  f.write(reinterpret_cast<const char*>(&channels), sizeof(channels));
  f.write(reinterpret_cast<const char*>(&size), sizeof(size));
  const std::uint32_t families = static_cast<std::uint32_t>(family_names_.size());
  f.write(reinterpret_cast<const char*>(&families), sizeof(families));
  for (const std::string& name : family_names_) {
    const std::uint32_t len = static_cast<std::uint32_t>(name.size());
    f.write(reinterpret_cast<const char*>(&len), sizeof(len));
    f.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  std::vector<std::uint8_t> buffer;
  for (const Sample& s : samples_) {
    const std::int32_t label = s.label;
    f.write(reinterpret_cast<const char*>(&label), sizeof(label));
    f.write(reinterpret_cast<const char*>(&s.family), sizeof(s.family));
    f.write(reinterpret_cast<const char*>(&s.difficulty), sizeof(s.difficulty));
    buffer.resize(s.observation.num_values());
    for (std::size_t i = 0; i < buffer.size(); ++i)
      buffer[i] = quantize(s.observation.data()[i]);
    f.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
  }
  return static_cast<bool>(f);
}

bool Dataset::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::uint32_t magic = 0, n = 0, channels = 0, size = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&n), sizeof(n));
  f.read(reinterpret_cast<char*>(&channels), sizeof(channels));
  f.read(reinterpret_cast<char*>(&size), sizeof(size));
  if ((magic != kDatasetMagicV1 && magic != kDatasetMagicV2) || !f) return false;
  const bool has_provenance = magic == kDatasetMagicV2;

  std::vector<std::string> families;
  if (has_provenance) {
    std::uint32_t count = 0;
    f.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (!f || count > 0xFFFF) return false;
    families.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t len = 0;
      f.read(reinterpret_cast<char*>(&len), sizeof(len));
      if (!f || len > 4096) return false;
      std::string name(len, '\0');
      f.read(name.data(), static_cast<std::streamsize>(len));
      if (!f) return false;
      families.push_back(std::move(name));
    }
  }

  std::vector<Sample> loaded;
  loaded.reserve(n);
  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(channels) * size * size);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::int32_t label = 0;
    f.read(reinterpret_cast<char*>(&label), sizeof(label));
    Sample s;
    if (has_provenance) {
      f.read(reinterpret_cast<char*>(&s.family), sizeof(s.family));
      f.read(reinterpret_cast<char*>(&s.difficulty), sizeof(s.difficulty));
    }
    f.read(reinterpret_cast<char*>(buffer.data()),
           static_cast<std::streamsize>(buffer.size()));
    if (!f) return false;
    s.observation = sense::BevImage(static_cast<int>(channels), static_cast<int>(size));
    for (std::size_t j = 0; j < buffer.size(); ++j)
      s.observation.data()[j] = dequantize(buffer[j]);
    s.label = label;
    if (s.family >= 0 && static_cast<std::size_t>(s.family) >= families.size())
      s.family = -1;
    loaded.push_back(std::move(s));
  }
  samples_ = std::move(loaded);
  family_names_ = std::move(families);
  return true;
}

}  // namespace icoil::il
