#include "il/dataset.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <fstream>

namespace icoil::il {

std::vector<std::size_t> Dataset::class_histogram(int num_classes) const {
  std::vector<std::size_t> hist(static_cast<std::size_t>(num_classes), 0);
  for (const Sample& s : samples_)
    if (s.label >= 0 && s.label < num_classes) ++hist[static_cast<std::size_t>(s.label)];
  return hist;
}

void Dataset::shuffle(math::Rng& rng) {
  std::shuffle(samples_.begin(), samples_.end(), rng.engine());
}

std::pair<Dataset, Dataset> Dataset::split(double validation_fraction) const {
  const std::size_t val_count = static_cast<std::size_t>(
      static_cast<double>(samples_.size()) * validation_fraction);
  const std::size_t train_count = samples_.size() - val_count;
  Dataset train, val;
  train.reserve(train_count);
  val.reserve(val_count);
  for (std::size_t i = 0; i < samples_.size(); ++i)
    (i < train_count ? train : val).add(samples_[i]);
  return {std::move(train), std::move(val)};
}

std::pair<nn::Tensor, std::vector<int>> Dataset::make_batch(std::size_t begin,
                                                            std::size_t count) const {
  assert(begin + count <= samples_.size() && count > 0);
  const sense::BevImage& first = samples_[begin].observation;
  const int c = first.channels(), s = first.size();
  nn::Tensor batch({static_cast<int>(count), c, s, s});
  std::vector<int> labels(count);
  const std::size_t stride = first.num_values();
  for (std::size_t i = 0; i < count; ++i) {
    const Sample& sample = samples_[begin + i];
    assert(sample.observation.num_values() == stride);
    std::copy(sample.observation.data().begin(), sample.observation.data().end(),
              batch.data() + i * stride);
    labels[i] = sample.label;
  }
  return {std::move(batch), std::move(labels)};
}

namespace {
constexpr std::uint32_t kDatasetMagic = 0x1C011D5Eu;

// The speed channel holds values in [-1, 1]; map [-1,1] -> [0,255].
std::uint8_t quantize(float v) {
  const float clamped = std::clamp(v, -1.0f, 1.0f);
  return static_cast<std::uint8_t>(std::lround((clamped + 1.0f) * 127.5f));
}
float dequantize(std::uint8_t q) {
  return static_cast<float>(q) / 127.5f - 1.0f;
}
}  // namespace

bool Dataset::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::uint32_t n = static_cast<std::uint32_t>(samples_.size());
  const std::uint32_t channels =
      samples_.empty() ? 0 : static_cast<std::uint32_t>(samples_[0].observation.channels());
  const std::uint32_t size =
      samples_.empty() ? 0 : static_cast<std::uint32_t>(samples_[0].observation.size());
  f.write(reinterpret_cast<const char*>(&kDatasetMagic), sizeof(kDatasetMagic));
  f.write(reinterpret_cast<const char*>(&n), sizeof(n));
  f.write(reinterpret_cast<const char*>(&channels), sizeof(channels));
  f.write(reinterpret_cast<const char*>(&size), sizeof(size));
  std::vector<std::uint8_t> buffer;
  for (const Sample& s : samples_) {
    const std::int32_t label = s.label;
    f.write(reinterpret_cast<const char*>(&label), sizeof(label));
    buffer.resize(s.observation.num_values());
    for (std::size_t i = 0; i < buffer.size(); ++i)
      buffer[i] = quantize(s.observation.data()[i]);
    f.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
  }
  return static_cast<bool>(f);
}

bool Dataset::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::uint32_t magic = 0, n = 0, channels = 0, size = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&n), sizeof(n));
  f.read(reinterpret_cast<char*>(&channels), sizeof(channels));
  f.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (magic != kDatasetMagic || !f) return false;
  std::vector<Sample> loaded;
  loaded.reserve(n);
  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(channels) * size * size);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::int32_t label = 0;
    f.read(reinterpret_cast<char*>(&label), sizeof(label));
    f.read(reinterpret_cast<char*>(buffer.data()),
           static_cast<std::streamsize>(buffer.size()));
    if (!f) return false;
    Sample s;
    s.observation = sense::BevImage(static_cast<int>(channels), static_cast<int>(size));
    for (std::size_t j = 0; j < buffer.size(); ++j)
      s.observation.data()[j] = dequantize(buffer[j]);
    s.label = label;
    loaded.push_back(std::move(s));
  }
  samples_ = std::move(loaded);
  return true;
}

}  // namespace icoil::il
