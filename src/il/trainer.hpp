#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "il/dataset.hpp"
#include "il/policy.hpp"

namespace icoil::il {

/// Hyperparameters of the behaviour-cloning optimization (eq. 2).
struct TrainConfig {
  int epochs = 15;
  int batch_size = 32;
  double learning_rate = 1e-3;
  double validation_fraction = 0.1;
  std::uint64_t shuffle_seed = 11u;
  /// Worker threads for data-parallel gradient computation (0 = hardware).
  int num_threads = 0;
  /// Upper bound on the hardware-derived default worker count (gradient
  /// shards stop paying off beyond a handful of workers at these batch
  /// sizes). An explicit num_threads request is honoured above the cap.
  int thread_cap = 8;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
};

struct TrainReport {
  std::vector<EpochStats> epochs;
  double final_val_accuracy = 0.0;
  std::size_t train_samples = 0;
  std::size_t val_samples = 0;
};

/// Behaviour-cloning trainer: minimizes the cross-entropy between the DNN
/// output distribution and the expert's discretized actions (eqs. 2-3)
/// with Adam. Gradients are computed data-parallel across worker clones of
/// the policy network (layers cache activations, so workers cannot share
/// one network).
class Trainer {
 public:
  explicit Trainer(TrainConfig config = {}) : config_(config) {}

  const TrainConfig& config() const { return config_; }

  /// Optional per-epoch progress callback.
  using ProgressFn = std::function<void(const EpochStats&)>;

  TrainReport train(IlPolicy& policy, const Dataset& dataset,
                    ProgressFn progress = nullptr) const;

  /// Accuracy of `policy` on `dataset` (no gradient).
  static double evaluate_accuracy(IlPolicy& policy, const Dataset& dataset,
                                  std::size_t batch_size = 64);

 private:
  TrainConfig config_;
};

}  // namespace icoil::il
