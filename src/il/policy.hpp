#pragma once

#include <memory>
#include <string>
#include <vector>

#include "il/action.hpp"
#include "il/observation.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "sensing/bev.hpp"
#include "vehicle/command.hpp"

namespace icoil::il {

/// Result of one IL inference: the probabilistic action distribution, the
/// argmax class, its executable command and the softmax entropy (the instant
/// scenario uncertainty omega_i of eq. (7)).
struct Inference {
  std::vector<float> probs;
  int action_class = 0;
  vehicle::Command command;
  double entropy = 0.0;
};

/// Architecture/input description of the IL network. The input is the
/// observation of il/observation.hpp: BEV channels + ego-speed channel.
struct IlPolicyConfig {
  int bev_size = 48;         ///< input side length (pixels)
  double bev_range = 19.2;   ///< metres covered by the BEV window (0.4 m/px)
  int conv_channels[3] = {8, 16, 32};
  int fc_sizes[3] = {128, 64, 32};  ///< hidden FC widths (4th FC = output)
};

/// The IL module f_IL of section IV-A: a feature-extraction network of three
/// conv+ReLU+maxpool stages followed by a state-action network of four fully
/// connected layers and a softmax output over the M discretized actions.
class IlPolicy {
 public:
  using Config = IlPolicyConfig;

  explicit IlPolicy(Config config = Config(), std::uint64_t init_seed = 7u);

  const Config& config() const { return config_; }
  sense::BevSpec bev_spec() const { return {config_.bev_size, config_.bev_range}; }
  int num_classes() const { return ActionDiscretizer::num_classes(); }
  nn::Sequential& network() { return net_; }

  /// Forward pass on a single observation (use il::make_observation to
  /// build one from a BEV image and the ego speed).
  Inference infer(const sense::BevImage& observation);

  /// Forward pass on a prepared batch tensor (N,C,H,W) -> logits (N,M).
  nn::Tensor forward_batch(const nn::Tensor& batch, bool training);

  /// Inference-only batched forward through a caller-owned workspace: routes
  /// every layer through its GEMM/no-allocation kernel and returns a
  /// reference into `ws` (valid until the next call with that workspace).
  /// Bit-identical to forward_batch(batch, false), row for row.
  const nn::Tensor& forward_eval(const nn::Tensor& batch, nn::EvalWorkspace& ws);

  /// The post-processing infer() applies to one row of M logits: softmax,
  /// argmax class, executable command, entropy. Exposed so a batching layer
  /// can scatter logits rows into the exact same Inference records.
  static Inference inference_from_logits(const float* logits, int m);

  /// Convert an observation into the network's input tensor (batch of one).
  nn::Tensor to_input(const sense::BevImage& observation) const;

  /// Deep copy with identical weights (Sequential is not shareable across
  /// threads because layers cache forward activations).
  std::unique_ptr<IlPolicy> clone() const;

  bool save(const std::string& path) { return nn::save_params(net_, path); }
  bool load(const std::string& path) { return nn::load_params(net_, path); }

 private:
  Config config_;
  nn::Sequential net_;
};

}  // namespace icoil::il
