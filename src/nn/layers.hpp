#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace icoil::nn {

/// 2-D convolution, stride 1, zero padding `pad`, square kernel.
/// Input/output NCHW. Naive loops — fast enough for the 64x64 BEV inputs.
class Conv2D final : public Layer {
 public:
  Conv2D(int in_channels, int out_channels, int kernel = 3, int pad = 1);

  std::string name() const override { return "conv2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_eval(const Tensor& input, Tensor& output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void init(math::Rng& rng) override;

  int in_channels() const { return in_c_; }
  int out_channels() const { return out_c_; }

 private:
  int in_c_, out_c_, k_, pad_;
  Param weight_;  ///< (out_c, in_c, k, k)
  Param bias_;    ///< (out_c)
  Tensor cached_input_;
  Tensor col_;  ///< im2col scratch for forward_eval, reused across frames
};

/// Elementwise max(0, x).
class ReLU final : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_eval(const Tensor& input, Tensor& output) override;

 private:
  Tensor mask_;
};

/// 2x2 max pooling with stride 2 (input H, W must be even).
class MaxPool2D final : public Layer {
 public:
  std::string name() const override { return "maxpool2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_eval(const Tensor& input, Tensor& output) override;

 private:
  Tensor input_shape_cache_;
  std::vector<int> in_shape_;
  std::vector<std::size_t> argmax_;
};

/// Collapse (N, C, H, W) -> (N, C*H*W).
class Flatten final : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_eval(const Tensor& input, Tensor& output) override;

 private:
  std::vector<int> in_shape_;
};

/// Fully connected layer: y = x W^T + b.
class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features);

  std::string name() const override { return "dense"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_eval(const Tensor& input, Tensor& output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void init(math::Rng& rng) override;

  int in_features() const { return in_f_; }
  int out_features() const { return out_f_; }

 private:
  int in_f_, out_f_;
  Param weight_;  ///< (out_f, in_f)
  Param bias_;    ///< (out_f)
  Tensor cached_input_;
  // Transposed (in_f, out_f) copy of weight_ for forward_eval's GEMM: the
  // kernel then vectorizes across output features while each feature's
  // k-sum stays sequential — the bit-identity requirement. Rebuilt lazily
  // whenever training may have touched the weights.
  std::vector<float> packed_wt_;
  bool packed_dirty_ = true;
};

/// Row-wise softmax over (N, M) logits. Backward assumes the incoming
/// gradient is dL/d(prob) and applies the softmax Jacobian.
class Softmax final : public Layer {
 public:
  std::string name() const override { return "softmax"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_eval(const Tensor& input, Tensor& output) override;

 private:
  Tensor cached_output_;
};

/// Numerically stable standalone softmax over one row of logits.
std::vector<float> softmax_row(const float* logits, int m);
/// Same computation written into a caller-owned buffer of m floats.
void softmax_row_into(const float* logits, int m, float* out);

}  // namespace icoil::nn
