#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace icoil::nn {

/// Cross-entropy over logits (softmax applied internally, numerically
/// stable log-sum-exp) — the training objective of eq. (3) in the paper.
struct CrossEntropyLoss {
  /// Mean loss over the batch plus dL/d(logits).
  struct Result {
    float loss = 0.0f;
    Tensor grad;  ///< same shape as logits
  };

  /// `logits` is (N, M); `labels` holds N class indices in [0, M).
  static Result compute(const Tensor& logits, const std::vector<int>& labels);

  /// Classification accuracy of argmax(logits) vs labels.
  static double accuracy(const Tensor& logits, const std::vector<int>& labels);
};

/// Shannon entropy of a probability row (natural log) — the instant scenario
/// uncertainty omega_i of eq. (7).
double entropy(const std::vector<float>& probs);

}  // namespace icoil::nn
