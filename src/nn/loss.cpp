#include "nn/loss.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/layers.hpp"

namespace icoil::nn {

CrossEntropyLoss::Result CrossEntropyLoss::compute(const Tensor& logits,
                                                   const std::vector<int>& labels) {
  const int n = logits.dim(0), m = logits.dim(1);
  assert(labels.size() == static_cast<std::size_t>(n));
  Result res;
  res.grad = Tensor({n, m});
  double total = 0.0;
  for (int b = 0; b < n; ++b) {
    const float* row = logits.data() + static_cast<std::size_t>(b) * m;
    const auto p = softmax_row(row, m);
    const int y = labels[static_cast<std::size_t>(b)];
    total += -std::log(std::max(p[static_cast<std::size_t>(y)], 1e-12f));
    float* g = res.grad.data() + static_cast<std::size_t>(b) * m;
    for (int j = 0; j < m; ++j)
      g[j] = (p[static_cast<std::size_t>(j)] - (j == y ? 1.0f : 0.0f)) /
             static_cast<float>(n);
  }
  res.loss = static_cast<float>(total / n);
  return res;
}

double CrossEntropyLoss::accuracy(const Tensor& logits,
                                  const std::vector<int>& labels) {
  const int n = logits.dim(0), m = logits.dim(1);
  int correct = 0;
  for (int b = 0; b < n; ++b) {
    const float* row = logits.data() + static_cast<std::size_t>(b) * m;
    const int pred = static_cast<int>(std::max_element(row, row + m) - row);
    if (pred == labels[static_cast<std::size_t>(b)]) ++correct;
  }
  return n > 0 ? static_cast<double>(correct) / n : 0.0;
}

double entropy(const std::vector<float>& probs) {
  double h = 0.0;
  for (float p : probs)
    if (p > 1e-12f) h -= static_cast<double>(p) * std::log(static_cast<double>(p));
  return h;
}

}  // namespace icoil::nn
