#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace icoil::nn {

/// An ordered stack of layers — the network container used by the IL policy.
class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Initialize every layer's parameters from a seeded RNG.
  void init(math::Rng& rng) {
    for (auto& l : layers_) l->init(rng);
  }

  Tensor forward(const Tensor& input, bool training = false) {
    Tensor x = input;
    for (auto& l : layers_) x = l->forward(x, training);
    return x;
  }

  /// Backpropagate dL/d(output); parameter grads accumulate into params().
  Tensor backward(const Tensor& grad_output) {
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
      g = (*it)->backward(g);
    return g;
  }

  std::vector<Param*> params() {
    std::vector<Param*> out;
    for (auto& l : layers_)
      for (Param* p : l->params()) out.push_back(p);
    return out;
  }

  void zero_grad() {
    for (Param* p : params()) p->grad.zero();
  }

  /// Total learnable scalar count.
  std::size_t num_parameters() {
    std::size_t n = 0;
    for (Param* p : params()) n += p->value.size();
    return n;
  }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace icoil::nn
