#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace icoil::nn {

/// Reusable intermediate buffers for Sequential::forward_eval. Own one per
/// call site (e.g. per batching service) and the inference path stops
/// allocating once shapes stabilize.
struct EvalWorkspace {
  Tensor ping;
  Tensor pong;
};

/// An ordered stack of layers — the network container used by the IL policy.
class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Initialize every layer's parameters from a seeded RNG.
  void init(math::Rng& rng) {
    for (auto& l : layers_) l->init(rng);
  }

  Tensor forward(const Tensor& input, bool training = false) {
    Tensor x = input;
    for (auto& l : layers_) x = l->forward(x, training);
    return x;
  }

  /// Inference-only forward through the caller's workspace: layers ping-pong
  /// between the two buffers, so a steady-state caller allocates nothing per
  /// call. Returns a reference into `ws` (or `input` for an empty network);
  /// valid until the next forward_eval with the same workspace. Results are
  /// bit-identical to forward(input, false).
  const Tensor& forward_eval(const Tensor& input, EvalWorkspace& ws) {
    const Tensor* cur = &input;
    Tensor* bufs[2] = {&ws.ping, &ws.pong};
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      Tensor& dst = *bufs[i % 2];
      layers_[i]->forward_eval(*cur, dst);
      cur = &dst;
    }
    return *cur;
  }

  /// Backpropagate dL/d(output); parameter grads accumulate into params().
  Tensor backward(const Tensor& grad_output) {
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
      g = (*it)->backward(g);
    return g;
  }

  std::vector<Param*> params() {
    std::vector<Param*> out;
    for (auto& l : layers_)
      for (Param* p : l->params()) out.push_back(p);
    return out;
  }

  void zero_grad() {
    for (Param* p : params()) p->grad.zero();
  }

  /// Total learnable scalar count.
  std::size_t num_parameters() {
    std::size_t n = 0;
    for (Param* p : params()) n += p->value.size();
    return n;
  }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace icoil::nn
