#include "nn/optimizer.hpp"

#include <cmath>

namespace icoil::nn {

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    Tensor& vel = velocity_[k];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      vel[i] = static_cast<float>(momentum_ * vel[i] - lr_ * p.grad[i]);
      p.value[i] += vel[i];
    }
  }
}

Adam::Adam(std::vector<Param*> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const double g = p.grad[i];
      m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * g);
      v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * g * g);
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      p.value[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace icoil::nn
