#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

namespace icoil::nn {

// ---------------------------------------------------------------- Conv2D

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int pad)
    : in_c_(in_channels), out_c_(out_channels), k_(kernel), pad_(pad),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}) {}

void Conv2D::init(math::Rng& rng) {
  // He initialization for ReLU networks.
  const double fan_in = static_cast<double>(in_c_) * k_ * k_;
  const double stddev = std::sqrt(2.0 / fan_in);
  for (float& w : weight_.value.vec()) w = static_cast<float>(rng.normal(0.0, stddev));
  bias_.value.zero();
}

// The conv kernels are written as shifted-row AXPY loops: for each kernel
// tap the inner loop is a contiguous multiply-add over a row, which the
// compiler vectorizes. This is the throughput kernel of the whole IL stack.

Tensor Conv2D::forward(const Tensor& input, bool training) {
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int oh = h + 2 * pad_ - k_ + 1;
  const int ow = w + 2 * pad_ - k_ + 1;
  if (training) cached_input_ = input;

  Tensor out({n, out_c_, oh, ow});
  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;

  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_c_; ++oc) {
      float* out_base = out.data() +
                        (static_cast<std::size_t>(b) * out_c_ + oc) * out_plane;
      const float bias = bias_.value[static_cast<std::size_t>(oc)];
      for (std::size_t i = 0; i < out_plane; ++i) out_base[i] = bias;

      for (int ic = 0; ic < in_c_; ++ic) {
        const float* in_base =
            input.data() + (static_cast<std::size_t>(b) * in_c_ + ic) * in_plane;
        for (int ky = 0; ky < k_; ++ky) {
          for (int kx = 0; kx < k_; ++kx) {
            const float wv = weight_.value.at4(oc, ic, ky, kx);
            if (wv == 0.0f) continue;
            const int dy = ky - pad_, dx = kx - pad_;
            const int y_lo = std::max(0, -dy), y_hi = std::min(oh, h - dy);
            const int x_lo = std::max(0, -dx), x_hi = std::min(ow, w - dx);
            for (int y = y_lo; y < y_hi; ++y) {
              float* orow = out_base + static_cast<std::size_t>(y) * ow;
              const float* irow =
                  in_base + static_cast<std::size_t>(y + dy) * w + dx;
              for (int x = x_lo; x < x_hi; ++x) orow[x] += wv * irow[x];
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  const Tensor& input = cached_input_;
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int oh = grad_out.dim(2), ow = grad_out.dim(3);
  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;

  Tensor grad_in({n, in_c_, h, w});
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_c_; ++oc) {
      const float* g_base =
          grad_out.data() +
          (static_cast<std::size_t>(b) * out_c_ + oc) * out_plane;
      float bias_acc = 0.0f;
      for (std::size_t i = 0; i < out_plane; ++i) bias_acc += g_base[i];
      bias_.grad[static_cast<std::size_t>(oc)] += bias_acc;

      for (int ic = 0; ic < in_c_; ++ic) {
        const float* in_base =
            input.data() + (static_cast<std::size_t>(b) * in_c_ + ic) * in_plane;
        float* gi_base = grad_in.data() +
                         (static_cast<std::size_t>(b) * in_c_ + ic) * in_plane;
        for (int ky = 0; ky < k_; ++ky) {
          for (int kx = 0; kx < k_; ++kx) {
            const int dy = ky - pad_, dx = kx - pad_;
            const int y_lo = std::max(0, -dy), y_hi = std::min(oh, h - dy);
            const int x_lo = std::max(0, -dx), x_hi = std::min(ow, w - dx);
            const float wv = weight_.value.at4(oc, ic, ky, kx);
            float w_acc = 0.0f;
            for (int y = y_lo; y < y_hi; ++y) {
              const float* grow = g_base + static_cast<std::size_t>(y) * ow;
              const float* irow =
                  in_base + static_cast<std::size_t>(y + dy) * w + dx;
              float* girow =
                  gi_base + static_cast<std::size_t>(y + dy) * w + dx;
              for (int x = x_lo; x < x_hi; ++x) {
                w_acc += grow[x] * irow[x];
                girow[x] += grow[x] * wv;
              }
            }
            weight_.grad.at4(oc, ic, ky, kx) += w_acc;
          }
        }
      }
    }
  }
  return grad_in;
}

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& input, bool training) {
  Tensor out = input;
  if (training) {
    mask_ = Tensor(input.shape());
    for (std::size_t i = 0; i < out.size(); ++i) {
      const bool pos = out[i] > 0.0f;
      mask_[i] = pos ? 1.0f : 0.0f;
      if (!pos) out[i] = 0.0f;
    }
  } else {
    for (std::size_t i = 0; i < out.size(); ++i)
      if (out[i] < 0.0f) out[i] = 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

// ------------------------------------------------------------- MaxPool2D

Tensor MaxPool2D::forward(const Tensor& input, bool training) {
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int oh = h / 2, ow = w / 2;
  in_shape_ = input.shape();
  Tensor out({n, c, oh, ow});
  if (training) argmax_.assign(out.size(), 0);

  std::size_t oi = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x, ++oi) {
          float best = -1e30f;
          std::size_t best_idx = 0;
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
              const int iy = 2 * y + dy, ix = 2 * x + dx;
              const float v = input.at4(b, ch, iy, ix);
              if (v > best) {
                best = v;
                best_idx = ((static_cast<std::size_t>(b) * c + ch) * h + iy) * w + ix;
              }
            }
          }
          out.at4(b, ch, y, x) = best;
          if (training) argmax_[oi] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  for (std::size_t i = 0; i < grad_out.size(); ++i)
    grad_in[argmax_[i]] += grad_out[i];
  return grad_in;
}

// --------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input, bool) {
  in_shape_ = input.shape();
  Tensor out = input;
  const int n = input.dim(0);
  out.reshape({n, static_cast<int>(input.size()) / n});
  return out;
}

Tensor Flatten::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  grad_in.reshape(in_shape_);
  return grad_in;
}

// ----------------------------------------------------------------- Dense

Dense::Dense(int in_features, int out_features)
    : in_f_(in_features), out_f_(out_features),
      weight_({out_features, in_features}), bias_({out_features}) {}

void Dense::init(math::Rng& rng) {
  // Xavier/Glorot uniform.
  const double limit = std::sqrt(6.0 / (in_f_ + out_f_));
  for (float& w : weight_.value.vec())
    w = static_cast<float>(rng.uniform(-limit, limit));
  bias_.value.zero();
}

Tensor Dense::forward(const Tensor& input, bool training) {
  const int n = input.dim(0);
  if (training) cached_input_ = input;
  Tensor out({n, out_f_});
  for (int b = 0; b < n; ++b) {
    const float* x = input.data() + static_cast<std::size_t>(b) * in_f_;
    for (int o = 0; o < out_f_; ++o) {
      const float* wrow = weight_.value.data() + static_cast<std::size_t>(o) * in_f_;
      float acc = bias_.value[static_cast<std::size_t>(o)];
      for (int i = 0; i < in_f_; ++i) acc += wrow[i] * x[i];
      out.at2(b, o) = acc;
    }
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_out) {
  const int n = grad_out.dim(0);
  Tensor grad_in({n, in_f_});
  for (int b = 0; b < n; ++b) {
    const float* x = cached_input_.data() + static_cast<std::size_t>(b) * in_f_;
    float* gi = grad_in.data() + static_cast<std::size_t>(b) * in_f_;
    for (int o = 0; o < out_f_; ++o) {
      const float g = grad_out.at2(b, o);
      if (g == 0.0f) continue;
      bias_.grad[static_cast<std::size_t>(o)] += g;
      float* wg = weight_.grad.data() + static_cast<std::size_t>(o) * in_f_;
      const float* wv = weight_.value.data() + static_cast<std::size_t>(o) * in_f_;
      for (int i = 0; i < in_f_; ++i) {
        wg[i] += g * x[i];
        gi[i] += g * wv[i];
      }
    }
  }
  return grad_in;
}

// --------------------------------------------------------------- Softmax

std::vector<float> softmax_row(const float* logits, int m) {
  float mx = logits[0];
  for (int j = 1; j < m; ++j) mx = std::max(mx, logits[j]);
  std::vector<float> p(static_cast<std::size_t>(m));
  float sum = 0.0f;
  for (int j = 0; j < m; ++j) {
    p[static_cast<std::size_t>(j)] = std::exp(logits[j] - mx);
    sum += p[static_cast<std::size_t>(j)];
  }
  for (float& v : p) v /= sum;
  return p;
}

Tensor Softmax::forward(const Tensor& input, bool training) {
  const int n = input.dim(0), m = input.dim(1);
  Tensor out({n, m});
  for (int b = 0; b < n; ++b) {
    const auto p = softmax_row(input.data() + static_cast<std::size_t>(b) * m, m);
    std::copy(p.begin(), p.end(), out.data() + static_cast<std::size_t>(b) * m);
  }
  if (training) cached_output_ = out;
  return out;
}

Tensor Softmax::backward(const Tensor& grad_out) {
  const int n = grad_out.dim(0), m = grad_out.dim(1);
  Tensor grad_in({n, m});
  for (int b = 0; b < n; ++b) {
    const float* p = cached_output_.data() + static_cast<std::size_t>(b) * m;
    const float* g = grad_out.data() + static_cast<std::size_t>(b) * m;
    float gp = 0.0f;
    for (int j = 0; j < m; ++j) gp += g[j] * p[j];
    float* gi = grad_in.data() + static_cast<std::size_t>(b) * m;
    for (int j = 0; j < m; ++j) gi[j] = p[j] * (g[j] - gp);
  }
  return grad_in;
}

}  // namespace icoil::nn
