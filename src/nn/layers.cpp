#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

#include "mathkit/gemm.hpp"

namespace icoil::nn {

// ---------------------------------------------------------------- Conv2D

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int pad)
    : in_c_(in_channels), out_c_(out_channels), k_(kernel), pad_(pad),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}) {}

void Conv2D::init(math::Rng& rng) {
  // He initialization for ReLU networks.
  const double fan_in = static_cast<double>(in_c_) * k_ * k_;
  const double stddev = std::sqrt(2.0 / fan_in);
  for (float& w : weight_.value.vec()) w = static_cast<float>(rng.normal(0.0, stddev));
  bias_.value.zero();
}

// The conv kernels are written as shifted-row AXPY loops: for each kernel
// tap the inner loop is a contiguous multiply-add over a row, which the
// compiler vectorizes. This is the throughput kernel of the whole IL stack.

Tensor Conv2D::forward(const Tensor& input, bool training) {
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int oh = h + 2 * pad_ - k_ + 1;
  const int ow = w + 2 * pad_ - k_ + 1;
  if (training) cached_input_ = input;

  Tensor out({n, out_c_, oh, ow});
  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;

  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_c_; ++oc) {
      float* out_base = out.data() +
                        (static_cast<std::size_t>(b) * out_c_ + oc) * out_plane;
      const float bias = bias_.value[static_cast<std::size_t>(oc)];
      for (std::size_t i = 0; i < out_plane; ++i) out_base[i] = bias;

      for (int ic = 0; ic < in_c_; ++ic) {
        const float* in_base =
            input.data() + (static_cast<std::size_t>(b) * in_c_ + ic) * in_plane;
        for (int ky = 0; ky < k_; ++ky) {
          for (int kx = 0; kx < k_; ++kx) {
            const float wv = weight_.value.at4(oc, ic, ky, kx);
            if (wv == 0.0f) continue;
            const int dy = ky - pad_, dx = kx - pad_;
            const int y_lo = std::max(0, -dy), y_hi = std::min(oh, h - dy);
            const int x_lo = std::max(0, -dx), x_hi = std::min(ow, w - dx);
            for (int y = y_lo; y < y_hi; ++y) {
              float* orow = out_base + static_cast<std::size_t>(y) * ow;
              const float* irow =
                  in_base + static_cast<std::size_t>(y + dy) * w + dx;
              for (int x = x_lo; x < x_hi; ++x) orow[x] += wv * irow[x];
            }
          }
        }
      }
    }
  }
  return out;
}

// Inference path: per-item im2col + one GEMM per item against the shared
// weights. Column rows are ordered (ic, ky, kx) — exactly the weight layout
// and exactly the tap order of the AXPY forward above — and the output is
// bias-initialized before an accumulating GEMM, so every output element is
// the same ascending sum as the AXPY path and the two are bit-identical
// (see mathkit/gemm.hpp for why the GEMM itself never reassociates).
void Conv2D::forward_eval(const Tensor& input, Tensor& out) {
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int oh = h + 2 * pad_ - k_ + 1;
  const int ow = w + 2 * pad_ - k_ + 1;
  out.resize({n, out_c_, oh, ow});

  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;
  const int taps = in_c_ * k_ * k_;

  // The im2col scratch persists across frames. Entries that correspond to
  // zero padding are never touched in the per-item fill below, so the
  // buffer is zeroed once per geometry change and the padding zeros simply
  // persist from frame to frame.
  const std::vector<int> col_shape = {taps, static_cast<int>(out_plane)};
  if (col_.shape() != col_shape) {
    col_.resize(col_shape);
    col_.zero();
  }

  for (int b = 0; b < n; ++b) {
    for (int ic = 0; ic < in_c_; ++ic) {
      const float* in_base =
          input.data() + (static_cast<std::size_t>(b) * in_c_ + ic) * in_plane;
      for (int ky = 0; ky < k_; ++ky) {
        for (int kx = 0; kx < k_; ++kx) {
          const int dy = ky - pad_, dx = kx - pad_;
          const int y_lo = std::max(0, -dy), y_hi = std::min(oh, h - dy);
          const int x_lo = std::max(0, -dx), x_hi = std::min(ow, w - dx);
          float* crow = col_.data() +
                        static_cast<std::size_t>((ic * k_ + ky) * k_ + kx) *
                            out_plane;
          for (int y = y_lo; y < y_hi; ++y) {
            const float* irow =
                in_base + static_cast<std::size_t>(y + dy) * w + dx;
            float* cdst = crow + static_cast<std::size_t>(y) * ow;
            std::copy(irow + x_lo, irow + x_hi, cdst + x_lo);
          }
        }
      }
    }

    float* out_base =
        out.data() + static_cast<std::size_t>(b) * out_c_ * out_plane;
    for (int oc = 0; oc < out_c_; ++oc) {
      const float bias = bias_.value[static_cast<std::size_t>(oc)];
      float* orow = out_base + static_cast<std::size_t>(oc) * out_plane;
      for (std::size_t i = 0; i < out_plane; ++i) orow[i] = bias;
    }
    math::gemm_f32(static_cast<std::size_t>(out_c_), out_plane,
                   static_cast<std::size_t>(taps), weight_.value.data(),
                   static_cast<std::size_t>(taps), col_.data(), out_plane,
                   out_base, out_plane, /*accumulate=*/true);
  }
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  const Tensor& input = cached_input_;
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int oh = grad_out.dim(2), ow = grad_out.dim(3);
  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;

  Tensor grad_in({n, in_c_, h, w});
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_c_; ++oc) {
      const float* g_base =
          grad_out.data() +
          (static_cast<std::size_t>(b) * out_c_ + oc) * out_plane;
      float bias_acc = 0.0f;
      for (std::size_t i = 0; i < out_plane; ++i) bias_acc += g_base[i];
      bias_.grad[static_cast<std::size_t>(oc)] += bias_acc;

      for (int ic = 0; ic < in_c_; ++ic) {
        const float* in_base =
            input.data() + (static_cast<std::size_t>(b) * in_c_ + ic) * in_plane;
        float* gi_base = grad_in.data() +
                         (static_cast<std::size_t>(b) * in_c_ + ic) * in_plane;
        for (int ky = 0; ky < k_; ++ky) {
          for (int kx = 0; kx < k_; ++kx) {
            const int dy = ky - pad_, dx = kx - pad_;
            const int y_lo = std::max(0, -dy), y_hi = std::min(oh, h - dy);
            const int x_lo = std::max(0, -dx), x_hi = std::min(ow, w - dx);
            const float wv = weight_.value.at4(oc, ic, ky, kx);
            float w_acc = 0.0f;
            for (int y = y_lo; y < y_hi; ++y) {
              const float* grow = g_base + static_cast<std::size_t>(y) * ow;
              const float* irow =
                  in_base + static_cast<std::size_t>(y + dy) * w + dx;
              float* girow =
                  gi_base + static_cast<std::size_t>(y + dy) * w + dx;
              for (int x = x_lo; x < x_hi; ++x) {
                w_acc += grow[x] * irow[x];
                girow[x] += grow[x] * wv;
              }
            }
            weight_.grad.at4(oc, ic, ky, kx) += w_acc;
          }
        }
      }
    }
  }
  return grad_in;
}

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& input, bool training) {
  Tensor out = input;
  if (training) {
    mask_ = Tensor(input.shape());
    for (std::size_t i = 0; i < out.size(); ++i) {
      const bool pos = out[i] > 0.0f;
      mask_[i] = pos ? 1.0f : 0.0f;
      if (!pos) out[i] = 0.0f;
    }
  } else {
    for (std::size_t i = 0; i < out.size(); ++i)
      if (out[i] < 0.0f) out[i] = 0.0f;
  }
  return out;
}

void ReLU::forward_eval(const Tensor& input, Tensor& out) {
  out.resize(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const float v = input[i];
    out[i] = v < 0.0f ? 0.0f : v;
  }
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

// ------------------------------------------------------------- MaxPool2D

Tensor MaxPool2D::forward(const Tensor& input, bool training) {
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int oh = h / 2, ow = w / 2;
  in_shape_ = input.shape();
  Tensor out({n, c, oh, ow});
  if (training) argmax_.assign(out.size(), 0);

  std::size_t oi = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x, ++oi) {
          float best = -1e30f;
          std::size_t best_idx = 0;
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
              const int iy = 2 * y + dy, ix = 2 * x + dx;
              const float v = input.at4(b, ch, iy, ix);
              if (v > best) {
                best = v;
                best_idx = ((static_cast<std::size_t>(b) * c + ch) * h + iy) * w + ix;
              }
            }
          }
          out.at4(b, ch, y, x) = best;
          if (training) argmax_[oi] = best_idx;
        }
      }
    }
  }
  return out;
}

void MaxPool2D::forward_eval(const Tensor& input, Tensor& out) {
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  const int oh = h / 2, ow = w / 2;
  out.resize({n, c, oh, ow});
  // Same scan order and tie-breaking as forward(), minus the argmax record.
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const float* in_base =
          input.data() +
          (static_cast<std::size_t>(b) * c + ch) * static_cast<std::size_t>(h) * w;
      float* out_base =
          out.data() +
          (static_cast<std::size_t>(b) * c + ch) * static_cast<std::size_t>(oh) * ow;
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          float best = -1e30f;
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
              const float v =
                  in_base[static_cast<std::size_t>(2 * y + dy) * w + 2 * x + dx];
              if (v > best) best = v;
            }
          }
          out_base[static_cast<std::size_t>(y) * ow + x] = best;
        }
      }
    }
  }
}

Tensor MaxPool2D::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  for (std::size_t i = 0; i < grad_out.size(); ++i)
    grad_in[argmax_[i]] += grad_out[i];
  return grad_in;
}

// --------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input, bool) {
  in_shape_ = input.shape();
  Tensor out = input;
  const int n = input.dim(0);
  out.reshape({n, static_cast<int>(input.size()) / n});
  return out;
}

void Flatten::forward_eval(const Tensor& input, Tensor& out) {
  const int n = input.dim(0);
  out.resize({n, static_cast<int>(input.size()) / n});
  std::copy(input.data(), input.data() + input.size(), out.data());
}

Tensor Flatten::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  grad_in.reshape(in_shape_);
  return grad_in;
}

// ----------------------------------------------------------------- Dense

Dense::Dense(int in_features, int out_features)
    : in_f_(in_features), out_f_(out_features),
      weight_({out_features, in_features}), bias_({out_features}) {}

void Dense::init(math::Rng& rng) {
  // Xavier/Glorot uniform.
  const double limit = std::sqrt(6.0 / (in_f_ + out_f_));
  for (float& w : weight_.value.vec())
    w = static_cast<float>(rng.uniform(-limit, limit));
  bias_.value.zero();
  packed_dirty_ = true;
}

Tensor Dense::forward(const Tensor& input, bool training) {
  const int n = input.dim(0);
  if (training) {
    cached_input_ = input;
    // A training forward means an optimizer step is coming: the packed
    // transpose must be rebuilt before the next forward_eval.
    packed_dirty_ = true;
  }
  Tensor out({n, out_f_});
  for (int b = 0; b < n; ++b) {
    const float* x = input.data() + static_cast<std::size_t>(b) * in_f_;
    for (int o = 0; o < out_f_; ++o) {
      const float* wrow = weight_.value.data() + static_cast<std::size_t>(o) * in_f_;
      float acc = bias_.value[static_cast<std::size_t>(o)];
      for (int i = 0; i < in_f_; ++i) acc += wrow[i] * x[i];
      out.at2(b, o) = acc;
    }
  }
  return out;
}

// Inference path: pack W^T once (in_f, out_f) and run one GEMM over the
// whole batch. Each output element's k-sum runs over in_f in ascending
// order — the same sequence as the scalar dot loop in forward() — while the
// kernel vectorizes across output features, so results stay bit-identical.
void Dense::forward_eval(const Tensor& input, Tensor& out) {
  const int n = input.dim(0);
  out.resize({n, out_f_});

  if (packed_dirty_) {
    packed_wt_.resize(static_cast<std::size_t>(in_f_) * out_f_);
    for (int o = 0; o < out_f_; ++o)
      for (int i = 0; i < in_f_; ++i)
        packed_wt_[static_cast<std::size_t>(i) * out_f_ + o] =
            weight_.value[static_cast<std::size_t>(o) * in_f_ + i];
    packed_dirty_ = false;
  }

  for (int b = 0; b < n; ++b) {
    float* orow = out.data() + static_cast<std::size_t>(b) * out_f_;
    std::copy(bias_.value.data(), bias_.value.data() + out_f_, orow);
  }
  math::gemm_f32(static_cast<std::size_t>(n), static_cast<std::size_t>(out_f_),
                 static_cast<std::size_t>(in_f_), input.data(),
                 static_cast<std::size_t>(in_f_), packed_wt_.data(),
                 static_cast<std::size_t>(out_f_), out.data(),
                 static_cast<std::size_t>(out_f_), /*accumulate=*/true);
}

Tensor Dense::backward(const Tensor& grad_out) {
  const int n = grad_out.dim(0);
  packed_dirty_ = true;
  Tensor grad_in({n, in_f_});
  for (int b = 0; b < n; ++b) {
    const float* x = cached_input_.data() + static_cast<std::size_t>(b) * in_f_;
    float* gi = grad_in.data() + static_cast<std::size_t>(b) * in_f_;
    for (int o = 0; o < out_f_; ++o) {
      const float g = grad_out.at2(b, o);
      if (g == 0.0f) continue;
      bias_.grad[static_cast<std::size_t>(o)] += g;
      float* wg = weight_.grad.data() + static_cast<std::size_t>(o) * in_f_;
      const float* wv = weight_.value.data() + static_cast<std::size_t>(o) * in_f_;
      for (int i = 0; i < in_f_; ++i) {
        wg[i] += g * x[i];
        gi[i] += g * wv[i];
      }
    }
  }
  return grad_in;
}

// --------------------------------------------------------------- Softmax

void softmax_row_into(const float* logits, int m, float* out) {
  float mx = logits[0];
  for (int j = 1; j < m; ++j) mx = std::max(mx, logits[j]);
  float sum = 0.0f;
  for (int j = 0; j < m; ++j) {
    out[j] = std::exp(logits[j] - mx);
    sum += out[j];
  }
  for (int j = 0; j < m; ++j) out[j] /= sum;
}

std::vector<float> softmax_row(const float* logits, int m) {
  std::vector<float> p(static_cast<std::size_t>(m));
  softmax_row_into(logits, m, p.data());
  return p;
}

Tensor Softmax::forward(const Tensor& input, bool training) {
  const int n = input.dim(0), m = input.dim(1);
  Tensor out({n, m});
  for (int b = 0; b < n; ++b) {
    const auto p = softmax_row(input.data() + static_cast<std::size_t>(b) * m, m);
    std::copy(p.begin(), p.end(), out.data() + static_cast<std::size_t>(b) * m);
  }
  if (training) cached_output_ = out;
  return out;
}

void Softmax::forward_eval(const Tensor& input, Tensor& out) {
  const int n = input.dim(0), m = input.dim(1);
  out.resize({n, m});
  for (int b = 0; b < n; ++b)
    softmax_row_into(input.data() + static_cast<std::size_t>(b) * m, m,
                     out.data() + static_cast<std::size_t>(b) * m);
}

Tensor Softmax::backward(const Tensor& grad_out) {
  const int n = grad_out.dim(0), m = grad_out.dim(1);
  Tensor grad_in({n, m});
  for (int b = 0; b < n; ++b) {
    const float* p = cached_output_.data() + static_cast<std::size_t>(b) * m;
    const float* g = grad_out.data() + static_cast<std::size_t>(b) * m;
    float gp = 0.0f;
    for (int j = 0; j < m; ++j) gp += g[j] * p[j];
    float* gi = grad_in.data() + static_cast<std::size_t>(b) * m;
    for (int j = 0; j < m; ++j) gi[j] = p[j] * (g[j] - gp);
  }
  return grad_in;
}

}  // namespace icoil::nn
