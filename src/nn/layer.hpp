#pragma once

#include <string>
#include <vector>

#include "mathkit/rng.hpp"
#include "nn/tensor.hpp"

namespace icoil::nn {

/// A learnable parameter with its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(std::vector<int> shape)
      : value(shape), grad(std::move(shape)) {}
};

/// Base class for network layers. Layers cache whatever they need from
/// `forward` so the subsequent `backward` can produce input gradients —
/// the classic define-by-layer backprop contract.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;
  /// Compute the layer output for a batch input.
  virtual Tensor forward(const Tensor& input, bool training) = 0;
  /// Given dL/d(output), accumulate parameter grads and return dL/d(input).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Inference-only forward into a caller-owned tensor: no training caches,
  /// and once shapes stabilize no allocation either (`output` is resized in
  /// place). Results must be bit-identical to forward(input, false); layers
  /// with a faster inference kernel override this, the default just
  /// delegates. `output` must not alias `input`.
  virtual void forward_eval(const Tensor& input, Tensor& output) {
    output = forward(input, false);
  }

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }
  /// Initialize parameters from `rng` (no-op for stateless layers).
  virtual void init(math::Rng& rng) { (void)rng; }
};

}  // namespace icoil::nn
