#pragma once

#include <cassert>
#include <cstddef>
#include <numeric>
#include <vector>

namespace icoil::nn {

/// Minimal dense float tensor (row-major, up to 4-D in practice: NCHW for
/// images, NF for feature vectors). The whole IL stack — layers, losses,
/// optimizers — operates on these.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, float fill = 0.0f)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(count(shape_)), fill) {}

  static Tensor from_data(std::vector<int> shape, std::vector<float> data) {
    Tensor t;
    assert(static_cast<std::size_t>(count(shape)) == data.size());
    t.shape_ = std::move(shape);
    t.data_ = std::move(data);
    return t;
  }

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const { return shape_[static_cast<std::size_t>(i)]; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// NCHW accessor.
  float& at4(int n, int c, int h, int w) {
    return data_[index4(n, c, h, w)];
  }
  float at4(int n, int c, int h, int w) const {
    return data_[index4(n, c, h, w)];
  }
  /// NF accessor.
  float& at2(int n, int f) {
    return data_[static_cast<std::size_t>(n) * shape_[1] + f];
  }
  float at2(int n, int f) const {
    return data_[static_cast<std::size_t>(n) * shape_[1] + f];
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0f); }

  /// Change the logical shape; element count must match.
  void reshape(std::vector<int> shape) {
    assert(static_cast<std::size_t>(count(shape)) == data_.size());
    shape_ = std::move(shape);
  }

  /// Reshape to `shape`, resizing storage as needed. Unlike constructing a
  /// fresh Tensor this keeps the vector's capacity, so steady-state callers
  /// (the per-frame inference path) stop allocating once shapes stabilize.
  /// Elements grown beyond the old size are zero; existing elements keep
  /// their values — callers must overwrite what they read.
  void resize(std::vector<int> shape) {
    data_.resize(static_cast<std::size_t>(count(shape)));
    shape_ = std::move(shape);
  }

  static long count(const std::vector<int>& shape) {
    long n = 1;
    for (int d : shape) n *= d;
    return shape.empty() ? 0 : n;
  }

 private:
  std::size_t index4(int n, int c, int h, int w) const {
    assert(shape_.size() == 4);
    return ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
               shape_[3] + w;
  }
  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace icoil::nn
