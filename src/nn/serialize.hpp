#pragma once

#include <string>

#include "nn/sequential.hpp"

namespace icoil::nn {

/// Save every parameter tensor of `net` to a flat binary file
/// (magic + per-tensor shape + float32 payload). Returns false on I/O error.
bool save_params(Sequential& net, const std::string& path);

/// Load parameters saved by `save_params`. The network must already be built
/// with identical architecture; returns false on mismatch or I/O error.
bool load_params(Sequential& net, const std::string& path);

}  // namespace icoil::nn
