#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace icoil::nn {

/// Optimizer interface: consumes accumulated gradients and updates values.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad() {
    for (Param* p : params_) p->grad.zero();
  }

 protected:
  std::vector<Param*> params_;
};

/// Stochastic gradient descent with classical momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, double lr, double momentum = 0.9);
  void step() override;

 private:
  double lr_, momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction — the default IL trainer choice.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, double lr = 1e-3, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace icoil::nn
