#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

namespace icoil::nn {

namespace {
constexpr std::uint32_t kMagic = 0x1C011A11u;
}

bool save_params(Sequential& net, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const auto params = net.params();
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  f.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (Param* p : params) {
    const auto& shape = p->value.shape();
    const std::uint32_t ndim = static_cast<std::uint32_t>(shape.size());
    f.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
    for (int d : shape) {
      const std::int32_t v = d;
      f.write(reinterpret_cast<const char*>(&v), sizeof(v));
    }
    f.write(reinterpret_cast<const char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  return static_cast<bool>(f);
}

bool load_params(Sequential& net, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::uint32_t magic = 0, count = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  const auto params = net.params();
  if (magic != kMagic || count != params.size()) return false;
  for (Param* p : params) {
    std::uint32_t ndim = 0;
    f.read(reinterpret_cast<char*>(&ndim), sizeof(ndim));
    std::vector<int> shape(ndim);
    for (std::uint32_t i = 0; i < ndim; ++i) {
      std::int32_t v = 0;
      f.read(reinterpret_cast<char*>(&v), sizeof(v));
      shape[i] = v;
    }
    if (shape != p->value.shape()) return false;
    f.read(reinterpret_cast<char*>(p->value.data()),
           static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!f) return false;
  }
  return true;
}

}  // namespace icoil::nn
