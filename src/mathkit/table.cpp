#include "mathkit/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace icoil::math {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_row_numeric(const std::string& label,
                                const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell << " | ";
    }
    os << '\n';
  };

  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool TextTable::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  print_csv(f);
  return static_cast<bool>(f);
}

}  // namespace icoil::math
