#pragma once

#include <optional>
#include <vector>

#include "mathkit/matrix.hpp"

namespace icoil::math {

/// Quadratic program in OSQP standard form:
///   minimize   0.5 x^T P x + q^T x
///   subject to l <= A x <= u
/// P must be symmetric positive semidefinite. Equality constraints are
/// expressed with l == u; one-sided constraints with +/- kQpInf.
struct QpProblem {
  Matrix p;                ///< n x n cost Hessian
  std::vector<double> q;   ///< n cost gradient
  Matrix a;                ///< m x n constraint matrix
  std::vector<double> l;   ///< m lower bounds
  std::vector<double> u;   ///< m upper bounds

  std::size_t num_vars() const { return q.size(); }
  std::size_t num_constraints() const { return l.size(); }
  /// Basic shape/consistency validation.
  bool valid() const;
};

inline constexpr double kQpInf = 1e20;

struct QpSettings {
  int max_iterations = 4000;
  double rho = 0.1;          ///< ADMM penalty
  double sigma = 1e-6;       ///< proximal regularization
  double alpha = 1.6;        ///< over-relaxation
  double eps_abs = 1e-4;
  double eps_rel = 1e-4;
  int check_interval = 25;   ///< residual check cadence
  bool adaptive_rho = true;
};

enum class QpStatus { kSolved, kMaxIterations, kSingularKkt, kInvalidProblem };

struct QpResult {
  QpStatus status = QpStatus::kInvalidProblem;
  std::vector<double> x;       ///< primal solution
  std::vector<double> y;       ///< dual solution (Lagrange multipliers)
  double objective = 0.0;
  int iterations = 0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;

  bool ok() const { return status == QpStatus::kSolved; }
};

/// Dense ADMM solver implementing the OSQP algorithm
/// (Stellato et al., "OSQP: an operator splitting solver for quadratic
/// programs"). Suitable for the few-hundred-variable QPs produced by the
/// parking MPC. Supports warm starting via `x0`/`y0`.
class QpSolver {
 public:
  explicit QpSolver(QpSettings settings = {}) : settings_(settings) {}

  QpResult solve(const QpProblem& problem,
                 const std::vector<double>* x0 = nullptr,
                 const std::vector<double>* y0 = nullptr) const;

  const QpSettings& settings() const { return settings_; }

 private:
  QpSettings settings_;
};

}  // namespace icoil::math
