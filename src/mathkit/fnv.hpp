#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace icoil::math {

/// Streaming 64-bit FNV-1a hash. The training-spec fingerprints (curriculum
/// -> dataset -> policy) chain through this one implementation, so cache
/// keys stay stable across the call sites that extend each other's hashes.
class Fnv1a {
 public:
  Fnv1a() = default;
  /// Continue an existing hash chain (e.g. extend a curriculum fingerprint
  /// with recorder and network parameters).
  explicit Fnv1a(std::uint64_t seed) : state_(seed) {}

  std::uint64_t value() const { return state_; }

  void add_bytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state_ ^= p[i];
      state_ *= kPrime;
    }
  }
  void add_int(std::int64_t v) { add_bytes(&v, sizeof(v)); }
  void add_double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    add_bytes(&bits, sizeof(bits));
  }
  /// Length-prefixed, so ("ab","c") and ("a","bc") hash differently.
  void add_string(const std::string& s) {
    add_int(static_cast<std::int64_t>(s.size()));
    add_bytes(s.data(), s.size());
  }

 private:
  static constexpr std::uint64_t kPrime = 0x100000001B3ull;

  std::uint64_t state_ = 0xCBF29CE484222325ull;
};

}  // namespace icoil::math
