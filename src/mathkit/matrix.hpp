#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace icoil::math {

/// Dense row-major matrix of doubles. Sized for the small/medium problems a
/// parking MPC produces (tens to a few hundred variables), so simplicity and
/// cache-friendly loops beat sparse machinery.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  static Matrix diagonal(const std::vector<double>& d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  Matrix transpose() const;
  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(const Matrix& o) const;
  Matrix operator*(double s) const;
  Matrix& operator+=(const Matrix& o);
  Matrix& operator*=(double s);

  /// y = M x
  std::vector<double> apply(const std::vector<double>& x) const;
  /// y = M^T x  (without forming the transpose)
  std::vector<double> apply_transpose(const std::vector<double>& x) const;

  /// Frobenius norm.
  double norm() const;
  /// Largest absolute entry.
  double max_abs() const;

  /// Write `block` into this matrix with its top-left corner at (r, c).
  void set_block(std::size_t r, std::size_t c, const Matrix& block);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Vector helpers shared by the solvers.
double dot(const std::vector<double>& a, const std::vector<double>& b);
double norm_inf(const std::vector<double>& v);
double norm2(const std::vector<double>& v);
std::vector<double> add(const std::vector<double>& a, const std::vector<double>& b);
std::vector<double> sub(const std::vector<double>& a, const std::vector<double>& b);
std::vector<double> scale(const std::vector<double>& a, double s);

}  // namespace icoil::math
