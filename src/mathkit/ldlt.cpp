#include "mathkit/ldlt.hpp"

#include <cmath>

namespace icoil::math {

std::optional<Ldlt> Ldlt::factorize(const Matrix& m, double pivot_tol) {
  if (m.rows() != m.cols()) return std::nullopt;
  const std::size_t n = m.rows();
  Ldlt f;
  f.n_ = n;
  f.l_ = Matrix::identity(n);
  f.d_.assign(n, 0.0);

  for (std::size_t j = 0; j < n; ++j) {
    double dj = m(j, j);
    for (std::size_t k = 0; k < j; ++k) dj -= f.l_(j, k) * f.l_(j, k) * f.d_[k];
    if (std::abs(dj) < pivot_tol) return std::nullopt;
    f.d_[j] = dj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = m(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= f.l_(i, k) * f.l_(j, k) * f.d_[k];
      f.l_(i, j) = v / dj;
    }
  }
  return f;
}

std::vector<double> Ldlt::solve(const std::vector<double>& b) const {
  std::vector<double> x = b;
  // Forward: L y = b
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = 0; k < i; ++k) x[i] -= l_(i, k) * x[k];
  // Diagonal: D z = y
  for (std::size_t i = 0; i < n_; ++i) x[i] /= d_[i];
  // Backward: L^T x = z
  for (std::size_t ii = n_; ii-- > 0;)
    for (std::size_t k = ii + 1; k < n_; ++k) x[ii] -= l_(k, ii) * x[k];
  return x;
}

std::optional<std::vector<double>> solve_spd(const Matrix& m,
                                             const std::vector<double>& b) {
  auto f = Ldlt::factorize(m);
  if (!f) return std::nullopt;
  return f->solve(b);
}

}  // namespace icoil::math
