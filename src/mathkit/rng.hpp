#pragma once

#include <cstdint>
#include <random>

namespace icoil::math {

/// Seeded pseudo-random generator wrapping a fixed engine so every stochastic
/// component in the library is reproducible from an explicit 64-bit seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1c011u) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }
  /// Normal with given mean / stddev.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  /// Bernoulli with probability p of true.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Derive an independent child stream (for per-episode / per-module seeds).
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }
  std::uint64_t next_seed() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace icoil::math
