#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace icoil::math {

/// Minimal text-table / CSV writer used by the benchmark harnesses to print
/// the rows the paper's tables and figure series report.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);
  /// Convenience: format doubles with fixed precision.
  void add_row_numeric(const std::string& label, const std::vector<double>& values,
                       int precision = 2);

  std::size_t num_rows() const { return rows_.size(); }

  /// Pretty-print with aligned columns.
  void print(std::ostream& os) const;
  /// Comma-separated output (no alignment) for downstream plotting.
  void print_csv(std::ostream& os) const;
  /// Write CSV to a file; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int precision = 2);

}  // namespace icoil::math
