// AVX2 build of the blocked GEMM kernel. This translation unit is compiled
// with -mavx2 -ffp-contract=off on x86 (see CMakeLists); everywhere else it
// compiles to stubs and the dispatcher in gemm.cpp keeps the portable
// kernel. The -ffp-contract=off is load-bearing: it forbids FMA fusion, so
// this build rounds every multiply and add exactly like the portable one
// and the two are bit-interchangeable (see gemm.hpp).

#include <cstddef>

namespace icoil::math::detail {

using GemmF32Fn = void (*)(std::size_t, std::size_t, std::size_t, const float*,
                           std::size_t, const float*, std::size_t, float*,
                           std::size_t, bool);
using GemmF64Fn = void (*)(std::size_t, std::size_t, std::size_t,
                           const double*, std::size_t, const double*,
                           std::size_t, double*, std::size_t, bool);

}  // namespace icoil::math::detail

#if defined(__AVX2__)

#define ICOIL_GEMM_KERNEL_NS gemm_avx2
#include "mathkit/gemm_kernel.inc"
#undef ICOIL_GEMM_KERNEL_NS

namespace icoil::math::detail {

GemmF32Fn avx2_gemm_f32() { return &gemm_avx2::gemm_blocked<float>; }
GemmF64Fn avx2_gemm_f64() { return &gemm_avx2::gemm_blocked<double>; }

}  // namespace icoil::math::detail

#else  // built without AVX2 support (non-x86, or the flag was not applied)

namespace icoil::math::detail {

GemmF32Fn avx2_gemm_f32() { return nullptr; }
GemmF64Fn avx2_gemm_f64() { return nullptr; }

}  // namespace icoil::math::detail

#endif
