#pragma once

#include <cstddef>
#include <vector>

namespace icoil::math {

/// Streaming accumulator for min/max/mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& o);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile via linear interpolation on a copy of the data; p in [0, 100].
double percentile(std::vector<double> values, double p);

/// Same interpolation over values that are ALREADY sorted ascending — the
/// one percentile kernel (core::LatencyHistogram keeps its samples sorted
/// and calls this to avoid re-copying per query).
double percentile_sorted(const std::vector<double>& sorted, double p);

double mean(const std::vector<double>& values);

}  // namespace icoil::math
