#include "mathkit/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "mathkit/gemm.hpp"

namespace icoil::math {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const std::vector<double>& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator+(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + o.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - o.data_[i];
  return out;
}

Matrix Matrix::operator*(const Matrix& o) const {
  assert(cols_ == o.rows_);
  Matrix out(rows_, o.cols_);
  gemm_f64(rows_, o.cols_, cols_, data_.data(), cols_, o.data_.data(), o.cols_,
           out.data_.data(), o.cols_);
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

std::vector<double> Matrix::apply(const std::vector<double>& x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> Matrix::apply_transpose(const std::vector<double>& x) const {
  assert(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double v = x[r];
    if (v == 0.0) continue;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * v;
  }
  return y;
}

double Matrix::norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

void Matrix::set_block(std::size_t r, std::size_t c, const Matrix& block) {
  assert(r + block.rows() <= rows_ && c + block.cols() <= cols_);
  for (std::size_t i = 0; i < block.rows(); ++i)
    for (std::size_t j = 0; j < block.cols(); ++j) (*this)(r + i, c + j) = block(i, j);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm_inf(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double norm2(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

std::vector<double> add(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> sub(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> scale(const std::vector<double>& a, double s) {
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

}  // namespace icoil::math
