#include "mathkit/stats.hpp"

#include <algorithm>
#include <cmath>

namespace icoil::math {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += o.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

}  // namespace icoil::math
