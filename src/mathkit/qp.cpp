#include "mathkit/qp.hpp"

#include <algorithm>
#include <cmath>

#include "mathkit/ldlt.hpp"

namespace icoil::math {

bool QpProblem::valid() const {
  const std::size_t n = q.size();
  const std::size_t m = l.size();
  if (p.rows() != n || p.cols() != n) return false;
  if (m > 0 && (a.rows() != m || a.cols() != n)) return false;
  if (u.size() != m) return false;
  for (std::size_t i = 0; i < m; ++i)
    if (l[i] > u[i]) return false;
  return true;
}

namespace {

std::vector<double> clamp_to(const std::vector<double>& v,
                             const std::vector<double>& lo,
                             const std::vector<double>& hi) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::clamp(v[i], lo[i], hi[i]);
  return out;
}

}  // namespace

QpResult QpSolver::solve(const QpProblem& prob, const std::vector<double>* x0,
                         const std::vector<double>* y0) const {
  QpResult res;
  if (!prob.valid()) {
    res.status = QpStatus::kInvalidProblem;
    return res;
  }
  const std::size_t n = prob.num_vars();
  const std::size_t m = prob.num_constraints();

  double rho = settings_.rho;
  const double sigma = settings_.sigma;
  const double alpha = settings_.alpha;

  // Unconstrained problem: a single regularized solve suffices.
  if (m == 0) {
    Matrix k = prob.p;
    for (std::size_t i = 0; i < n; ++i) k(i, i) += sigma;
    auto sol = solve_spd(k, scale(prob.q, -1.0));
    if (!sol) {
      res.status = QpStatus::kSingularKkt;
      return res;
    }
    res.x = std::move(*sol);
    res.y = {};
    res.status = QpStatus::kSolved;
    res.objective = 0.5 * dot(res.x, prob.p.apply(res.x)) + dot(prob.q, res.x);
    return res;
  }

  const Matrix at = prob.a.transpose();

  // Per-row penalty: equality rows (l == u) converge far faster with a
  // much stiffer rho (the OSQP rule: rho_eq = 1e3 * rho).
  auto rho_row = [&](double rho_val, std::size_t i) {
    return prob.l[i] == prob.u[i] ? 1e3 * rho_val : rho_val;
  };
  auto build_kkt = [&](double rho_val) {
    // K = P + sigma I + A^T diag(rho_vec) A
    Matrix k = prob.p;
    for (std::size_t i = 0; i < n; ++i) k(i, i) += sigma;
    for (std::size_t r = 0; r < m; ++r) {
      const double rr = rho_row(rho_val, r);
      for (std::size_t i = 0; i < n; ++i) {
        const double ari = prob.a(r, i);
        if (ari == 0.0) continue;
        for (std::size_t j = 0; j < n; ++j) {
          const double arj = prob.a(r, j);
          if (arj != 0.0) k(i, j) += rr * ari * arj;
        }
      }
    }
    return Ldlt::factorize(k);
  };

  auto kkt = build_kkt(rho);
  if (!kkt) {
    res.status = QpStatus::kSingularKkt;
    return res;
  }

  std::vector<double> x = x0 && x0->size() == n ? *x0 : std::vector<double>(n, 0.0);
  std::vector<double> y = y0 && y0->size() == m ? *y0 : std::vector<double>(m, 0.0);
  std::vector<double> z = clamp_to(prob.a.apply(x), prob.l, prob.u);

  int iter = 0;
  for (iter = 1; iter <= settings_.max_iterations; ++iter) {
    // x-update:
    //   (P + sigma I + A^T R A) x+ = sigma x - q + A^T (R z - y)
    std::vector<double> rz_y(m);
    for (std::size_t i = 0; i < m; ++i)
      rz_y[i] = rho_row(rho, i) * z[i] - y[i];
    const std::vector<double> azy = at.apply(rz_y);
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = sigma * x[i] - prob.q[i] + azy[i];
    std::vector<double> x_next = kkt->solve(rhs);

    // z-update with over-relaxation.
    const std::vector<double> ax_next = prob.a.apply(x_next);
    std::vector<double> z_tilde(m);
    for (std::size_t i = 0; i < m; ++i)
      z_tilde[i] = alpha * ax_next[i] + (1.0 - alpha) * z[i];
    std::vector<double> z_next(m);
    for (std::size_t i = 0; i < m; ++i)
      z_next[i] = std::clamp(z_tilde[i] + y[i] / rho_row(rho, i), prob.l[i],
                             prob.u[i]);

    // y-update.
    for (std::size_t i = 0; i < m; ++i)
      y[i] += rho_row(rho, i) * (z_tilde[i] - z_next[i]);

    x = std::move(x_next);
    z = std::move(z_next);

    if (iter % settings_.check_interval != 0 && iter != settings_.max_iterations)
      continue;

    // Residuals (OSQP section 3.4).
    const std::vector<double> ax = prob.a.apply(x);
    const double r_prim = norm_inf(sub(ax, z));
    const std::vector<double> px = prob.p.apply(x);
    const std::vector<double> aty = at.apply(y);
    std::vector<double> r_dual_vec(n);
    for (std::size_t i = 0; i < n; ++i)
      r_dual_vec[i] = px[i] + prob.q[i] + aty[i];
    const double r_dual = norm_inf(r_dual_vec);

    const double eps_prim =
        settings_.eps_abs +
        settings_.eps_rel * std::max(norm_inf(ax), norm_inf(z));
    const double eps_dual =
        settings_.eps_abs +
        settings_.eps_rel *
            std::max({norm_inf(px), norm_inf(aty), norm_inf(prob.q)});

    res.primal_residual = r_prim;
    res.dual_residual = r_dual;
    if (r_prim <= eps_prim && r_dual <= eps_dual) {
      res.status = QpStatus::kSolved;
      break;
    }

    // Adaptive rho (geometric update toward residual balance).
    if (settings_.adaptive_rho && r_dual > 0.0 && r_prim > 0.0) {
      const double ratio = std::sqrt(r_prim / r_dual);
      if (ratio > 5.0 || ratio < 0.2) {
        rho = std::clamp(rho * ratio, 1e-6, 1e6);
        kkt = build_kkt(rho);
        if (!kkt) {
          res.status = QpStatus::kSingularKkt;
          return res;
        }
      }
    }
  }

  if (res.status != QpStatus::kSolved) res.status = QpStatus::kMaxIterations;
  res.x = std::move(x);
  res.y = std::move(y);
  res.iterations = std::min(iter, settings_.max_iterations);
  res.objective = 0.5 * dot(res.x, prob.p.apply(res.x)) + dot(prob.q, res.x);
  return res;
}

}  // namespace icoil::math
