// Portable build of the blocked GEMM kernel plus the one-time dispatch that
// upgrades to the AVX2 build (gemm_avx2.cpp) when the CPU supports it. Both
// builds are compiled with -ffp-contract=off and accumulate each output
// element in ascending k order, so the choice never changes results — only
// how fast they arrive.

#include "mathkit/gemm.hpp"

#define ICOIL_GEMM_KERNEL_NS gemm_portable
#include "mathkit/gemm_kernel.inc"
#undef ICOIL_GEMM_KERNEL_NS

namespace icoil::math {

namespace detail {

using GemmF32Fn = void (*)(std::size_t, std::size_t, std::size_t, const float*,
                           std::size_t, const float*, std::size_t, float*,
                           std::size_t, bool);
using GemmF64Fn = void (*)(std::size_t, std::size_t, std::size_t,
                           const double*, std::size_t, const double*,
                           std::size_t, double*, std::size_t, bool);

// Implemented in gemm_avx2.cpp; nullptr when that TU was built without AVX2.
GemmF32Fn avx2_gemm_f32();
GemmF64Fn avx2_gemm_f64();

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool use_avx2_kernel() {
  static const bool use =
      avx2_gemm_f32() != nullptr && avx2_gemm_f64() != nullptr &&
      cpu_has_avx2();
  return use;
}

}  // namespace detail

void gemm_f32(std::size_t m, std::size_t n, std::size_t k, const float* a,
              std::size_t lda, const float* b, std::size_t ldb, float* c,
              std::size_t ldc, bool accumulate) {
  static const detail::GemmF32Fn fn = detail::use_avx2_kernel()
                                          ? detail::avx2_gemm_f32()
                                          : &gemm_portable::gemm_blocked<float>;
  fn(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

void gemm_f64(std::size_t m, std::size_t n, std::size_t k, const double* a,
              std::size_t lda, const double* b, std::size_t ldb, double* c,
              std::size_t ldc, bool accumulate) {
  static const detail::GemmF64Fn fn =
      detail::use_avx2_kernel() ? detail::avx2_gemm_f64()
                                : &gemm_portable::gemm_blocked<double>;
  fn(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

const char* gemm_kernel_name() {
  return detail::use_avx2_kernel() ? "avx2" : "portable";
}

namespace {

template <typename T>
void gemm_naive_impl(std::size_t m, std::size_t n, std::size_t k, const T* a,
                     std::size_t lda, const T* b, std::size_t ldb, T* c,
                     std::size_t ldc, bool accumulate) {
  for (std::size_t r = 0; r < m; ++r) {
    T* crow = c + r * ldc;
    if (!accumulate)
      for (std::size_t j = 0; j < n; ++j) crow[j] = T(0);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const T av = a[r * lda + kk];
      const T* brow = b + kk * ldb;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void gemm_naive_f32(std::size_t m, std::size_t n, std::size_t k,
                    const float* a, std::size_t lda, const float* b,
                    std::size_t ldb, float* c, std::size_t ldc,
                    bool accumulate) {
  gemm_naive_impl(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

void gemm_naive_f64(std::size_t m, std::size_t n, std::size_t k,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc,
                    bool accumulate) {
  gemm_naive_impl(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

}  // namespace icoil::math
