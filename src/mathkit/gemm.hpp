#pragma once

#include <cstddef>

namespace icoil::math {

/// Blocked, cache-friendly GEMM kernels: C (m x n) = A (m x k) * B (k x n),
/// all row-major with explicit leading dimensions. When `accumulate` is true
/// the product is added into the existing contents of C (the idiom for
/// bias-initialized layer outputs); otherwise C is overwritten.
///
/// Numerics contract (what the IL batching layer relies on): for every
/// output element the k-sum is accumulated in strictly ascending k order,
/// each multiply and add rounded separately (the kernel translation units
/// are built with -ffp-contract=off, so no code path fuses them into an
/// FMA). That makes the result BIT-IDENTICAL to the naive r/k/c triple loop
/// — and identical across the portable and SIMD builds of the kernel, which
/// differ only in how many independent elements they process per
/// instruction, never in per-element rounding.
///
/// The SIMD (AVX2) build of the kernel is selected once at first use when
/// the CPU supports it; gemm_kernel_name() reports which build won.
void gemm_f32(std::size_t m, std::size_t n, std::size_t k, const float* a,
              std::size_t lda, const float* b, std::size_t ldb, float* c,
              std::size_t ldc, bool accumulate = false);
void gemm_f64(std::size_t m, std::size_t n, std::size_t k, const double* a,
              std::size_t lda, const double* b, std::size_t ldb, double* c,
              std::size_t ldc, bool accumulate = false);

/// Reference implementation (the plain r/k/c loop the blocked kernel must
/// match bit-for-bit) — kept for the equivalence tests and the
/// naive-vs-blocked micro-benchmarks.
void gemm_naive_f32(std::size_t m, std::size_t n, std::size_t k,
                    const float* a, std::size_t lda, const float* b,
                    std::size_t ldb, float* c, std::size_t ldc,
                    bool accumulate = false);
void gemm_naive_f64(std::size_t m, std::size_t n, std::size_t k,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc,
                    bool accumulate = false);

/// "avx2" or "portable": the kernel build serving gemm_f32/gemm_f64 on this
/// machine (for benchmark output and serve-report provenance).
const char* gemm_kernel_name();

}  // namespace icoil::math
