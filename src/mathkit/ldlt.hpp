#pragma once

#include <optional>
#include <vector>

#include "mathkit/matrix.hpp"

namespace icoil::math {

/// LDL^T factorization of a symmetric quasi-definite matrix.
/// Used as the linear-system kernel of the ADMM QP solver, where the KKT
/// matrix (P + sigma*I + rho*A^T A) is symmetric positive definite.
class Ldlt {
 public:
  /// Factorize `m` (must be square, symmetric). Returns std::nullopt when a
  /// pivot collapses below `pivot_tol` (matrix numerically singular).
  static std::optional<Ldlt> factorize(const Matrix& m, double pivot_tol = 1e-12);

  /// Solve M x = b for x.
  std::vector<double> solve(const std::vector<double>& b) const;

  std::size_t dim() const { return n_; }

 private:
  Ldlt() = default;
  std::size_t n_ = 0;
  Matrix l_;                // unit lower triangular
  std::vector<double> d_;  // diagonal
};

/// One-shot positive-definite solve; returns nullopt on singular systems.
std::optional<std::vector<double>> solve_spd(const Matrix& m,
                                             const std::vector<double>& b);

}  // namespace icoil::math
