#pragma once

#include <algorithm>
#include <cmath>

#include "geom/vec2.hpp"

namespace icoil::geom {

/// Axis-aligned bounding box (min/max corners).
struct Aabb {
  Vec2 min{1e300, 1e300};
  Vec2 max{-1e300, -1e300};

  static Aabb from_center(Vec2 center, double half_w, double half_h) {
    return {{center.x - half_w, center.y - half_h},
            {center.x + half_w, center.y + half_h}};
  }

  bool valid() const { return min.x <= max.x && min.y <= max.y; }
  double width() const { return max.x - min.x; }
  double height() const { return max.y - min.y; }
  Vec2 center() const { return (min + max) * 0.5; }

  void expand(Vec2 p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }
  void expand(const Aabb& o) {
    expand(o.min);
    expand(o.max);
  }
  /// Grow the box outwards by `margin` on every side.
  Aabb inflated(double margin) const {
    return {{min.x - margin, min.y - margin}, {max.x + margin, max.y + margin}};
  }

  bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  bool overlaps(const Aabb& o) const {
    return min.x <= o.max.x && o.min.x <= max.x && min.y <= o.max.y && o.min.y <= max.y;
  }
};

/// Minimum distance between two boxes (0 when overlapping). A cheap lower
/// bound on the distance between any shapes the boxes enclose — the pruning
/// predicate of the broad-phase collision filter.
inline double aabb_distance(const Aabb& a, const Aabb& b) {
  const double dx = std::max({0.0, a.min.x - b.max.x, b.min.x - a.max.x});
  const double dy = std::max({0.0, a.min.y - b.max.y, b.min.y - a.max.y});
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace icoil::geom
