#pragma once

#include <cmath>
#include <numbers>

namespace icoil::geom {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Wrap an angle to (-pi, pi].
inline double wrap_angle(double a) {
  a = std::fmod(a + kPi, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a - kPi;
}

/// Wrap an angle to [0, 2*pi).
inline double wrap_angle_2pi(double a) {
  a = std::fmod(a, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a;
}

/// Signed shortest rotation taking angle `from` to angle `to`, in (-pi, pi].
inline double angle_diff(double to, double from) { return wrap_angle(to - from); }

/// Interpolate between two angles along the shortest arc.
inline double slerp_angle(double a, double b, double t) {
  return wrap_angle(a + angle_diff(b, a) * t);
}

inline constexpr double deg2rad(double d) { return d * kPi / 180.0; }
inline constexpr double rad2deg(double r) { return r * 180.0 / kPi; }

}  // namespace icoil::geom
