#include "geom/segment.hpp"

#include <algorithm>

namespace icoil::geom {

Vec2 Segment::closest_point(Vec2 p) const {
  const Vec2 d = b - a;
  const double len_sq = d.norm_sq();
  if (len_sq <= 0.0) return a;
  const double t = std::clamp((p - a).dot(d) / len_sq, 0.0, 1.0);
  return a + d * t;
}

namespace {

int orientation(Vec2 p, Vec2 q, Vec2 r) {
  const double v = (q - p).cross(r - p);
  if (v > 1e-12) return 1;
  if (v < -1e-12) return -1;
  return 0;
}

bool on_segment(Vec2 p, Vec2 q, Vec2 r) {
  return std::min(p.x, r.x) - 1e-12 <= q.x && q.x <= std::max(p.x, r.x) + 1e-12 &&
         std::min(p.y, r.y) - 1e-12 <= q.y && q.y <= std::max(p.y, r.y) + 1e-12;
}

}  // namespace

bool Segment::intersects(const Segment& o) const {
  const int o1 = orientation(a, b, o.a);
  const int o2 = orientation(a, b, o.b);
  const int o3 = orientation(o.a, o.b, a);
  const int o4 = orientation(o.a, o.b, b);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(a, o.a, b)) return true;
  if (o2 == 0 && on_segment(a, o.b, b)) return true;
  if (o3 == 0 && on_segment(o.a, a, o.b)) return true;
  if (o4 == 0 && on_segment(o.a, b, o.b)) return true;
  return false;
}

double segment_distance(const Segment& s1, const Segment& s2) {
  if (s1.intersects(s2)) return 0.0;
  return std::min({s1.distance_to(s2.a), s1.distance_to(s2.b),
                   s2.distance_to(s1.a), s2.distance_to(s1.b)});
}

}  // namespace icoil::geom
