#pragma once

#include <vector>

#include "geom/aabb.hpp"
#include "geom/obb.hpp"

namespace icoil::geom {

/// "Nothing within range" distance sentinel: ObbSet::min_distance clamps its
/// result to the query cutoff, and clearance-style queries pass this value
/// so "no obstacle observed" never leaks an unbounded +inf into downstream
/// statistics. Aggregators filter out values >= this sentinel.
inline constexpr double kMaxClearance = 1e9;

/// Broad-phase accelerated set of oriented boxes: caches each box's AABB at
/// build time so overlap and distance queries can prune with cheap
/// axis-aligned tests before running the SAT / closest-point narrow phase.
/// This is the collision front-end for the simulator world, the hybrid-A*
/// planner and the safety monitor, where crowded scenarios put tens of
/// obstacles in front of every footprint check.
class ObbSet {
 public:
  ObbSet() = default;
  explicit ObbSet(const std::vector<Obb>& boxes) { build(boxes); }

  /// Replace the contents with `boxes` (AABBs recomputed).
  void build(const std::vector<Obb>& boxes);
  void clear();
  /// Append one box.
  void push(const Obb& box);

  std::size_t size() const { return boxes_.size(); }
  bool empty() const { return boxes_.empty(); }
  const std::vector<Obb>& boxes() const { return boxes_; }

  /// True when `query` overlaps any box in the set (AABB prefilter, then
  /// separating-axis narrow phase).
  bool any_overlap(const Obb& query) const;

  /// Minimum distance from `query` to the set; `cutoff` (and every distance
  /// found so far) prunes members whose AABB lower bound cannot improve on
  /// it. The result is clamped to `cutoff`: an empty set or a fully pruned
  /// query returns exactly `cutoff` (the "nothing within range" sentinel),
  /// never +inf, so callers can seed further min-searches with it safely.
  double min_distance(const Obb& query, double cutoff = kMaxClearance) const;

 private:
  std::vector<Obb> boxes_;
  std::vector<Aabb> aabbs_;
};

}  // namespace icoil::geom
