#pragma once

#include <cmath>

namespace icoil::geom {

/// 2-D vector in metres (world frame unless stated otherwise).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  Vec2& operator*=(double s) { x *= s; y *= s; return *this; }

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product (positive = counter-clockwise).
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  double norm() const { return std::hypot(x, y); }
  constexpr double norm_sq() const { return x * x + y * y; }
  /// Unit vector; returns {0,0} for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Perpendicular vector, rotated +90 degrees.
  constexpr Vec2 perp() const { return {-y, x}; }
  /// Rotate counter-clockwise by `angle` radians.
  Vec2 rotated(double angle) const {
    const double c = std::cos(angle), s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }
  double angle() const { return std::atan2(y, x); }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline constexpr double distance_sq(Vec2 a, Vec2 b) { return (a - b).norm_sq(); }

/// Linear interpolation, t in [0,1] maps a -> b.
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

inline bool almost_equal(Vec2 a, Vec2 b, double eps = 1e-9) {
  return std::abs(a.x - b.x) <= eps && std::abs(a.y - b.y) <= eps;
}

}  // namespace icoil::geom
