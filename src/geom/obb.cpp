#include "geom/obb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace icoil::geom {

Obb Obb::from_pose(const Pose2& pose, double length, double width,
                   double longitudinal_offset) {
  const Vec2 c = pose.to_world({longitudinal_offset, 0.0});
  return {c, pose.heading, length * 0.5, width * 0.5};
}

std::array<Vec2, 4> Obb::corners() const {
  const Vec2 fx = Vec2{std::cos(heading), std::sin(heading)} * half_length;
  const Vec2 fy = Vec2{-std::sin(heading), std::cos(heading)} * half_width;
  return {center + fx + fy, center - fx + fy, center - fx - fy, center + fx - fy};
}

std::array<Segment, 4> Obb::edges() const {
  const auto c = corners();
  return {Segment{c[0], c[1]}, Segment{c[1], c[2]}, Segment{c[2], c[3]},
          Segment{c[3], c[0]}};
}

Aabb Obb::aabb() const {
  Aabb box;
  for (const Vec2& c : corners()) box.expand(c);
  return box;
}

bool Obb::contains(Vec2 p) const {
  const Vec2 local = (p - center).rotated(-heading);
  return std::abs(local.x) <= half_length && std::abs(local.y) <= half_width;
}

Vec2 Obb::closest_point(Vec2 p) const {
  Vec2 local = (p - center).rotated(-heading);
  local.x = std::clamp(local.x, -half_length, half_length);
  local.y = std::clamp(local.y, -half_width, half_width);
  return center + local.rotated(heading);
}

double Obb::distance_to(Vec2 p) const { return distance(p, closest_point(p)); }

double Obb::signed_distance_to(Vec2 p) const {
  const Vec2 local = (p - center).rotated(-heading);
  const double dx = std::abs(local.x) - half_length;
  const double dy = std::abs(local.y) - half_width;
  if (dx <= 0.0 && dy <= 0.0) return std::max(dx, dy);  // inside
  const double cx = std::max(dx, 0.0), cy = std::max(dy, 0.0);
  return std::hypot(cx, cy);
}

namespace {

struct Projection {
  double lo, hi;
};

Projection project(const Obb& box, Vec2 axis) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const Vec2& c : box.corners()) {
    const double v = c.dot(axis);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return {lo, hi};
}

}  // namespace

bool overlaps(const Obb& a, const Obb& b) {
  const std::array<Vec2, 4> axes = {
      Vec2{std::cos(a.heading), std::sin(a.heading)},
      Vec2{-std::sin(a.heading), std::cos(a.heading)},
      Vec2{std::cos(b.heading), std::sin(b.heading)},
      Vec2{-std::sin(b.heading), std::cos(b.heading)}};
  for (const Vec2& axis : axes) {
    const Projection pa = project(a, axis);
    const Projection pb = project(b, axis);
    if (pa.hi < pb.lo || pb.hi < pa.lo) return false;
  }
  return true;
}

double obb_distance(const Obb& a, const Obb& b) {
  if (overlaps(a, b)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  const auto ea = a.edges();
  const auto eb = b.edges();
  for (const Segment& s1 : ea)
    for (const Segment& s2 : eb) best = std::min(best, segment_distance(s1, s2));
  return best;
}

std::pair<Vec2, Vec2> closest_points(const Obb& a, const Obb& b) {
  if (overlaps(a, b)) {
    const Vec2 mid = (a.center + b.center) * 0.5;
    return {mid, mid};
  }
  double best = std::numeric_limits<double>::infinity();
  std::pair<Vec2, Vec2> out{a.center, b.center};
  for (const Vec2& ca : a.corners()) {
    const Vec2 pb = b.closest_point(ca);
    const double d = distance(ca, pb);
    if (d < best) {
      best = d;
      out = {ca, pb};
    }
  }
  for (const Vec2& cb : b.corners()) {
    const Vec2 pa = a.closest_point(cb);
    const double d = distance(pa, cb);
    if (d < best) {
      best = d;
      out = {pa, cb};
    }
  }
  return out;
}

}  // namespace icoil::geom
