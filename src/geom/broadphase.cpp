#include "geom/broadphase.hpp"

namespace icoil::geom {

void ObbSet::build(const std::vector<Obb>& boxes) {
  boxes_ = boxes;
  aabbs_.clear();
  aabbs_.reserve(boxes_.size());
  for (const Obb& b : boxes_) aabbs_.push_back(b.aabb());
}

void ObbSet::clear() {
  boxes_.clear();
  aabbs_.clear();
}

void ObbSet::push(const Obb& box) {
  boxes_.push_back(box);
  aabbs_.push_back(box.aabb());
}

bool ObbSet::any_overlap(const Obb& query) const {
  const Aabb qbb = query.aabb();
  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    if (!qbb.overlaps(aabbs_[i])) continue;
    if (overlaps(query, boxes_[i])) return true;
  }
  return false;
}

double ObbSet::min_distance(const Obb& query, double cutoff) const {
  const Aabb qbb = query.aabb();
  double best = cutoff;
  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    const double bound = aabb_distance(qbb, aabbs_[i]);
    if (bound >= best) continue;
    best = std::min(best, obb_distance(query, boxes_[i]));
  }
  return best;
}

}  // namespace icoil::geom
