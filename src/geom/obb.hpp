#pragma once

#include <array>

#include "geom/aabb.hpp"
#include "geom/pose2.hpp"
#include "geom/segment.hpp"
#include "geom/vec2.hpp"

namespace icoil::geom {

/// Oriented bounding box: rectangle centred at `center`, rotated by `heading`,
/// with half extents along its local x (length) and y (width) axes.
/// This is the footprint primitive for vehicles, obstacles and parking bays.
struct Obb {
  Vec2 center;
  double heading = 0.0;
  double half_length = 0.5;  ///< half extent along local x
  double half_width = 0.5;   ///< half extent along local y

  Obb() = default;
  Obb(Vec2 c, double h, double hl, double hw)
      : center(c), heading(h), half_length(hl), half_width(hw) {}

  static Obb from_pose(const Pose2& pose, double length, double width,
                       double longitudinal_offset = 0.0);

  Pose2 pose() const { return {center, heading}; }
  double length() const { return 2.0 * half_length; }
  double width() const { return 2.0 * half_width; }
  double area() const { return length() * width(); }

  /// Corners in counter-clockwise order (front-left first in local frame).
  std::array<Vec2, 4> corners() const;
  std::array<Segment, 4> edges() const;
  Aabb aabb() const;

  /// Inflate both half extents by `margin` (Minkowski-style safety margin).
  Obb inflated(double margin) const {
    return {center, heading, half_length + margin, half_width + margin};
  }

  bool contains(Vec2 p) const;
  /// Closest point on the box boundary or interior to `p`.
  Vec2 closest_point(Vec2 p) const;
  /// Distance from `p` to the box (0 when inside).
  double distance_to(Vec2 p) const;
  /// Signed distance: negative inside, positive outside.
  double signed_distance_to(Vec2 p) const;
};

/// Separating-axis overlap test for two oriented boxes.
bool overlaps(const Obb& a, const Obb& b);

/// Minimum distance between two oriented boxes (0 when overlapping).
double obb_distance(const Obb& a, const Obb& b);

/// Closest pair of points (on a, on b); both equal when overlapping.
std::pair<Vec2, Vec2> closest_points(const Obb& a, const Obb& b);

}  // namespace icoil::geom
