#pragma once

#include "geom/vec2.hpp"

namespace icoil::geom {

/// Line segment between two points.
struct Segment {
  Vec2 a;
  Vec2 b;

  Vec2 direction() const { return (b - a).normalized(); }
  double length() const { return distance(a, b); }

  /// Closest point on the segment to `p`.
  Vec2 closest_point(Vec2 p) const;
  /// Distance from `p` to the segment.
  double distance_to(Vec2 p) const { return distance(p, closest_point(p)); }
  /// True if the two segments intersect (including touching).
  bool intersects(const Segment& other) const;
};

/// Minimum distance between two segments (0 when they intersect).
double segment_distance(const Segment& s1, const Segment& s2);

}  // namespace icoil::geom
