#pragma once

#include "geom/angles.hpp"
#include "geom/vec2.hpp"

namespace icoil::geom {

/// SE(2) pose: position in metres, heading in radians (wrapped by callers).
struct Pose2 {
  Vec2 position;
  double heading = 0.0;

  constexpr Pose2() = default;
  constexpr Pose2(Vec2 p, double h) : position(p), heading(h) {}
  constexpr Pose2(double x, double y, double h) : position(x, y), heading(h) {}

  double x() const { return position.x; }
  double y() const { return position.y; }

  /// Unit vector along the heading.
  Vec2 forward() const { return {std::cos(heading), std::sin(heading)}; }
  /// Unit vector to the left of the heading.
  Vec2 left() const { return forward().perp(); }

  /// Map a point expressed in this pose's local frame into the world frame.
  Vec2 to_world(Vec2 local) const { return position + local.rotated(heading); }
  /// Map a world-frame point into this pose's local frame.
  Vec2 to_local(Vec2 world) const { return (world - position).rotated(-heading); }

  /// Compose: apply `delta` (expressed in this pose's frame) after this pose.
  Pose2 compose(const Pose2& delta) const {
    return {to_world(delta.position), wrap_angle(heading + delta.heading)};
  }
  /// Inverse pose such that compose(inverse()) is identity.
  Pose2 inverse() const {
    return {(-position).rotated(-heading), wrap_angle(-heading)};
  }
};

/// Euclidean distance between pose positions.
inline double distance(const Pose2& a, const Pose2& b) {
  return distance(a.position, b.position);
}

/// Weighted SE(2) distance used for goal tolerance checks.
inline double se2_distance(const Pose2& a, const Pose2& b, double heading_weight = 1.0) {
  return distance(a.position, b.position) +
         heading_weight * std::abs(angle_diff(a.heading, b.heading));
}

}  // namespace icoil::geom
