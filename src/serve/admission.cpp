#include "serve/admission.hpp"

namespace icoil::serve {

AdmissionController::Decision AdmissionController::offer(int session) {
  ++offered_;
  if (config_.max_active <= 0 || active_ < config_.max_active) {
    ++active_;
    ++admitted_;
    return Decision::kAdmit;
  }
  if (config_.queue_limit < 0 ||
      static_cast<int>(queue_.size()) < config_.queue_limit) {
    queue_.push_back(session);
    return Decision::kQueue;
  }
  shed_sessions_.push_back(session);
  return Decision::kShed;
}

int AdmissionController::on_complete() {
  --active_;
  if (queue_.empty()) return -1;
  const int session = queue_.front();
  queue_.pop_front();
  ++active_;
  ++admitted_;
  ++queued_;
  return session;
}

}  // namespace icoil::serve
