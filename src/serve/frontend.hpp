#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cancel_token.hpp"
#include "serve/admission.hpp"
#include "serve/deadline_tuner.hpp"
#include "sim/evaluator.hpp"
#include "sim/report.hpp"
#include "world/scenario.hpp"

namespace icoil::il {
class IlPolicy;
}

namespace icoil::serve {

/// Everything one serving run needs: the workload shape (method, offered
/// load, scenario knobs), the execution shape (threads, batching) and the
/// front-end policies (admission, warmup, deadline autotuning).
struct FrontendConfig {
  std::string method = "co";         ///< controller registry key
  int sessions = 8;                  ///< offered load (arrivals)
  double frame_deadline_ms = 0.0;    ///< static per-frame budget (0 = none)
  double time_limit = 60.0;          ///< per-episode simulated seconds
  world::Difficulty difficulty = world::Difficulty::kNormal;
  int threads = 0;                   ///< pool workers (0 = hardware)
  int thread_cap = 16;               ///< cap on the hardware-derived default
  std::uint64_t base_seed = 1000;    ///< session i uses base_seed + i
  bool batch_inference = false;      ///< tick-synchronized batched IL path
  int max_batch = 32;                ///< cap on one batched forward
  /// Leading frames of each session classed as cold-start warmup: their
  /// latencies are recorded separately (ServeStats::warmup) and excluded
  /// from the frame percentiles and the deadline tuner.
  int warmup_frames = 1;
  /// The policy for policy-backed methods; must outlive the Frontend.
  /// Required when the registry spec says needs_policy (validate()).
  /// Non-const because the BatchInferencer shares its eval workspace.
  il::IlPolicy* policy = nullptr;
  std::string label = "serve";       ///< aggregate/report cell label
  AdmissionConfig admission;
  DeadlineTunerConfig tuner;
};

/// What one serving run produced: the folded ServeStats block (sans sweep
/// rows — the driver owns multi-level runs), the admitted episodes and
/// their aggregate, and the shed set for determinism checks.
struct FrontendResult {
  sim::ServeStats stats;
  /// Episode outcomes of the admitted sessions, ascending session index.
  std::vector<sim::EpisodeResult> episodes;
  /// Session indices admission dropped, offer order (never ran at all).
  std::vector<int> shed_sessions;
  sim::Aggregate aggregate;          ///< folded over `episodes`
  int workers = 0;                   ///< resolved pool width
  bool aborted = false;              ///< the abort token tripped mid-run
};

/// The serving front end: owns session lifecycle (scenario + controller +
/// sim::Session per arrival), pushes arrivals through an
/// AdmissionController, runs the tick loop on one core::TaskPool — the
/// self-rescheduling per-session pump, or the tick-synchronized
/// il::BatchInferencer path — times every served frame into
/// core::LatencyHistograms (warmup split out), and feeds a per-session
/// DeadlineTuner back into Session::set_frame_deadline_ms.
///
/// With admission unconstrained and autotuning off, episode outcomes are
/// bit-identical to stepping each session alone (Simulator::run) — serving
/// interleave never changes results (tested).
class Frontend {
 public:
  /// Checks `config` against the controller registry without running
  /// anything: unknown method, missing policy, batching on a non-policy
  /// method, bad knob ranges. False fills *error with a CLI-ready message.
  static bool validate(const FrontendConfig& config, std::string* error);

  /// `abort` (e.g. a SIGINT token) is polled by every session; tripping it
  /// finishes remaining episodes as budget_exceeded and run() returns a
  /// partial, aborted-flagged result. Must outlive the Frontend.
  explicit Frontend(FrontendConfig config,
                    const core::CancelToken* abort = nullptr)
      : config_(std::move(config)), abort_(abort) {}

  /// Runs the whole serving workload to completion (or abort). Call once.
  /// Throws std::invalid_argument on a config validate() would reject.
  FrontendResult run();

  const FrontendConfig& config() const { return config_; }

 private:
  FrontendConfig config_;
  const core::CancelToken* abort_;
};

/// Converts one level's folded stats into its sweep-table row.
sim::ServeLoadLevel to_load_level(const sim::ServeStats& stats);

/// Identifies the saturation knee of an offered-load-ascending sweep: the
/// last level whose throughput still grew meaningfully — i.e. the level
/// before the first one whose frames/sec gained less than 10% over its
/// predecessor. Returns the knee index, or -1 when throughput kept scaling
/// through the final level (no saturation observed).
int find_knee(const std::vector<sim::ServeLoadLevel>& levels);

}  // namespace icoil::serve
