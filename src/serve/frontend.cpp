#include "serve/frontend.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/controller_registry.hpp"
#include "core/latency_histogram.hpp"
#include "core/task_pool.hpp"
#include "il/batch_inferencer.hpp"
#include "mathkit/stats.hpp"
#include "sim/session.hpp"

namespace icoil::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Everything one arrival owns. Controllers and sessions are built up front
/// on the calling thread (workers only ever step), measurements accumulate
/// per session so the hot loop shares nothing across threads.
struct Served {
  std::unique_ptr<core::Controller> controller;
  std::unique_ptr<sim::Session> session;
  core::LatencyHistogram frame_hist;   ///< steady-state frame latencies
  core::LatencyHistogram warmup_hist;  ///< cold-start frame latencies
  std::optional<DeadlineTuner> tuner;
  math::RunningStats applied_deadlines;
};

}  // namespace

bool Frontend::validate(const FrontendConfig& config, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  const core::ControllerSpec* spec =
      core::ControllerRegistry::instance().find(config.method);
  if (spec == nullptr)
    return fail("unknown method \"" + config.method +
                "\" — run `bench_suite --list-methods` for the registered "
                "keys");
  if (config.sessions < 1) return fail("sessions must be >= 1");
  if (spec->needs_policy && config.policy == nullptr)
    return fail("method \"" + config.method +
                "\" needs a policy (set FrontendConfig::policy)");
  if (config.batch_inference && !spec->needs_policy)
    return fail("batch inference requires a policy-backed method (il or "
                "icoil), not \"" + config.method + "\"");
  if (config.batch_inference && config.max_batch < 1)
    return fail("max_batch must be >= 1");
  if (config.warmup_frames < 0) return fail("warmup_frames must be >= 0");
  if (config.admission.max_active < 0)
    return fail("admission.max_active must be >= 0 (0 = unlimited)");
  if (config.tuner.enabled &&
      !(config.tuner.min_ms > 0.0 &&
        config.tuner.max_ms >= config.tuner.min_ms))
    return fail("deadline tuner needs 0 < min_ms <= max_ms");
  return true;
}

FrontendResult Frontend::run() {
  std::string error;
  if (!validate(config_, &error))
    throw std::invalid_argument("serve::Frontend: " + error);

  const auto& registry = core::ControllerRegistry::instance();
  const core::ControllerSpec& spec = registry.at(config_.method);
  core::ControllerBuildArgs args;
  args.policy = config_.policy;

  // The static deadline every session starts with; the tuner (when on)
  // replaces it frame by frame from its permissive end.
  sim::SimConfig sim_config;
  sim_config.frame_deadline_ms = config_.frame_deadline_ms;
  if (config_.tuner.enabled) {
    DeadlineTuner seed_tuner(config_.tuner, config_.frame_deadline_ms);
    sim_config.frame_deadline_ms = seed_tuner.deadline_ms();
  }

  const int n = config_.sessions;
  std::vector<Served> served(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::uint64_t seed =
        config_.base_seed + static_cast<std::uint64_t>(i);
    world::ScenarioOptions scenario_opts;
    scenario_opts.difficulty = config_.difficulty;
    scenario_opts.time_limit = config_.time_limit;
    const world::Scenario scenario = world::make_scenario(scenario_opts, seed);
    Served& s = served[static_cast<std::size_t>(i)];
    s.controller = registry.build(config_.method, args);
    s.session = std::make_unique<sim::Session>(scenario, *s.controller, seed,
                                               sim_config, abort_);
    const std::size_t frame_cap =
        static_cast<std::size_t>(config_.time_limit / sim_config.dt) + 1;
    s.frame_hist.reserve(frame_cap);
    if (config_.tuner.enabled)
      s.tuner.emplace(config_.tuner, config_.frame_deadline_ms);
  }

  std::unique_ptr<il::BatchInferencer> service;
  if (config_.batch_inference) {
    service = std::make_unique<il::BatchInferencer>(
        *config_.policy, static_cast<std::size_t>(config_.max_batch));
    for (const Served& s : served)
      if (!s.session->supports_batching())
        throw std::invalid_argument(
            "serve::Frontend: method \"" + config_.method +
            "\" does not implement core::BatchClient");
  }

  // ---- admission: every arrival is offered up front (offered load), so
  // the admit/queue/shed split is a pure function of N and the capacity
  // policy — deterministic across runs and thread counts.
  AdmissionController admission(config_.admission);
  std::mutex admission_mutex;  ///< guards admission + queue_hist + arrivals
  core::LatencyHistogram queue_hist;
  std::vector<Clock::time_point> offered_at(static_cast<std::size_t>(n));
  std::vector<std::size_t> initial;
  for (int i = 0; i < n; ++i) {
    offered_at[static_cast<std::size_t>(i)] = Clock::now();
    switch (admission.offer(i)) {
      case AdmissionController::Decision::kAdmit:
        queue_hist.add(0.0);  // admitted on arrival: zero queue time
        initial.push_back(static_cast<std::size_t>(i));
        break;
      case AdmissionController::Decision::kQueue:
      case AdmissionController::Decision::kShed:
        break;  // queued arrivals are timed at admission; shed never run
    }
  }

  // Pool width follows the concurrency admission actually allows, not the
  // raw offered load — a capacity of 4 never needs 16 workers.
  const int effective_jobs =
      config_.admission.max_active > 0
          ? std::min(n, config_.admission.max_active)
          : n;
  const int workers = core::TaskPool::recommended_workers(
      config_.threads, effective_jobs, config_.thread_cap);
  core::TaskPool pool(workers);

  // One served frame's bookkeeping: warmup split, steady-state histogram,
  // tuner feedback into the session's next-frame deadline. `frame_index` is
  // the index of the frame that just ran.
  auto record_frame = [&](Served& s, std::size_t frame_index, double ms) {
    if (frame_index < static_cast<std::size_t>(config_.warmup_frames)) {
      s.warmup_hist.add(ms);
      return;
    }
    s.frame_hist.add(ms);
    if (s.tuner.has_value()) {
      const double deadline = s.tuner->observe(ms);
      s.session->set_frame_deadline_ms(deadline);
      s.applied_deadlines.add(deadline);
    }
  };

  // A finished session frees its slot; the queue head (if any) is admitted,
  // its queue time recorded, and the caller pumps/activates it.
  auto admit_next = [&]() -> int {
    std::lock_guard<std::mutex> lock(admission_mutex);
    const int next = admission.on_complete();
    if (next >= 0)
      queue_hist.add(ms_since(offered_at[static_cast<std::size_t>(next)]));
    return next;
  };

  const auto wall0 = Clock::now();
  if (!config_.batch_inference) {
    // Self-rescheduling frame tasks: one step per task, FIFO through the
    // shared queue, so no session monopolizes a worker; completions admit
    // the next queued arrival from the worker that observed them.
    std::function<void(std::size_t)> pump = [&](std::size_t i) {
      pool.submit([&, i](const core::TaskPool::Context&) {
        Served& s = served[i];
        const std::size_t before = s.session->frame();
        const auto t0 = Clock::now();
        const sim::Session::Status status = s.session->step();
        // Only steps that ran a control frame count as served: the
        // terminal timeout/cancel finalize does no work and would deflate
        // the latency percentiles it is supposed to measure.
        if (s.session->frame() > before)
          record_frame(s, before, ms_since(t0));
        if (status == sim::Session::Status::kRunning) {
          pump(i);
        } else {
          const int next = admit_next();
          if (next >= 0) pump(static_cast<std::size_t>(next));
        }
      });
    };
    for (const std::size_t i : initial) pump(i);
    pool.wait_idle();
  } else {
    // Tick-synchronized loop over the ACTIVE set: stage all live sessions
    // (parallel), one batched forward for the tick, commit the staged
    // frames (parallel), then swap finished sessions for queued arrivals.
    // SIGINT needs no special casing — stage() finalizes cancelled
    // episodes exactly like step() would, and the loop drains.
    std::vector<std::size_t> active = initial;
    std::vector<char> staged(served.size(), 0);
    std::vector<Clock::time_point> stage_t0(served.size());
    std::vector<std::size_t> frame_before(served.size(), 0);
    while (!active.empty()) {
      for (const std::size_t i : active) {
        if (served[i].session->done()) continue;
        pool.submit([&, i](const core::TaskPool::Context&) {
          stage_t0[i] = Clock::now();
          frame_before[i] = served[i].session->frame();
          staged[i] = served[i].session->stage(*service) ? 1 : 0;
        });
      }
      pool.wait_idle();

      service->run_tick();

      for (const std::size_t i : active) {
        if (staged[i] == 0) continue;
        staged[i] = 0;
        pool.submit([&, i](const core::TaskPool::Context&) {
          served[i].session->commit(*service);
          // A batched frame's latency spans stage-start to commit-end: the
          // synchronization wall of its tick is part of what it costs.
          record_frame(served[i], frame_before[i], ms_since(stage_t0[i]));
        });
      }
      pool.wait_idle();

      std::vector<std::size_t> still_active;
      still_active.reserve(active.size());
      for (const std::size_t i : active) {
        if (!served[i].session->done()) {
          still_active.push_back(i);
          continue;
        }
        const int next = admit_next();
        if (next >= 0) still_active.push_back(static_cast<std::size_t>(next));
      }
      active = std::move(still_active);
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  // ---- fold the per-session measurements --------------------------------
  FrontendResult out;
  out.workers = workers;
  out.aborted = abort_ != nullptr && abort_->cancelled();
  out.shed_sessions = admission.shed_sessions();

  core::LatencyHistogram frame_hist;
  core::LatencyHistogram warmup_hist;
  math::RunningStats applied_deadlines;
  int deadline_hits = 0;
  std::vector<char> was_shed(static_cast<std::size_t>(n), 0);
  for (const int i : out.shed_sessions)
    was_shed[static_cast<std::size_t>(i)] = 1;
  for (int i = 0; i < n; ++i) {
    if (was_shed[static_cast<std::size_t>(i)]) continue;
    const Served& s = served[static_cast<std::size_t>(i)];
    frame_hist.merge(s.frame_hist);
    warmup_hist.merge(s.warmup_hist);
    applied_deadlines.merge(s.applied_deadlines);
    out.episodes.push_back(s.session->result());
    deadline_hits += s.session->result().deadline_hits;
  }
  out.aggregate =
      sim::aggregate_episodes(out.episodes, spec.display_name, config_.label);

  sim::ServeStats& stats = out.stats;
  stats.method = config_.method;
  stats.sessions = n;
  stats.threads = workers;
  stats.offered = admission.offered();
  stats.admitted = admission.admitted();
  stats.queued = admission.queued();
  stats.shed = admission.shed();
  stats.frames = frame_hist.count() + warmup_hist.count();
  stats.wall_seconds = wall_seconds;
  stats.frames_per_second =
      wall_seconds > 0.0 ? static_cast<double>(stats.frames) / wall_seconds
                         : 0.0;
  stats.frame = frame_hist.summary();
  stats.queue = queue_hist.summary();
  stats.warmup = warmup_hist.summary();
  stats.warmup_frames_per_session = config_.warmup_frames;
  stats.frame_deadline_ms = config_.frame_deadline_ms;
  stats.deadline_hits = deadline_hits;
  if (config_.tuner.enabled) {
    sim::ServeStats::Tuning tuning;
    tuning.min_ms = config_.tuner.min_ms;
    tuning.max_ms = config_.tuner.max_ms;
    tuning.headroom = config_.tuner.headroom;
    tuning.window = static_cast<int>(config_.tuner.window);
    tuning.deadline_min_ms = applied_deadlines.min();
    tuning.deadline_mean_ms = applied_deadlines.mean();
    tuning.deadline_max_ms = applied_deadlines.max();
    stats.tuning = tuning;
  }
  if (service != nullptr) {
    const il::BatchStats& bs = service->stats();
    sim::ServeStats::Batching batching;
    batching.ticks = bs.ticks;
    batching.requests = bs.requests;
    batching.batches = bs.batches;
    batching.max_batch = bs.max_batch;
    batching.mean_batch = bs.mean_batch();
    batching.gather_seconds = bs.gather_seconds;
    batching.forward_seconds = bs.forward_seconds;
    batching.scatter_seconds = bs.scatter_seconds;
    stats.batching = batching;
  }
  return out;
}

sim::ServeLoadLevel to_load_level(const sim::ServeStats& stats) {
  sim::ServeLoadLevel level;
  level.offered = stats.offered;
  level.admitted = stats.admitted;
  level.shed = stats.shed;
  level.frames = stats.frames;
  level.wall_seconds = stats.wall_seconds;
  level.frames_per_second = stats.frames_per_second;
  level.frame_p50_ms = stats.frame.p50_ms;
  level.frame_p99_ms = stats.frame.p99_ms;
  level.queue_p99_ms = stats.queue.p99_ms;
  level.deadline_hits = stats.deadline_hits;
  return level;
}

int find_knee(const std::vector<sim::ServeLoadLevel>& levels) {
  constexpr double kMinGain = 1.10;  // < 10% throughput gain = saturated
  for (std::size_t i = 1; i < levels.size(); ++i) {
    if (levels[i].frames_per_second <
        kMinGain * levels[i - 1].frames_per_second)
      return static_cast<int>(i - 1);
  }
  return -1;
}

}  // namespace icoil::serve
