#pragma once

#include <deque>
#include <vector>

namespace icoil::serve {

/// Capacity policy of the serving front end: how many sessions may be
/// active at once and how many arrivals may wait for a slot before the
/// front end starts shedding load.
struct AdmissionConfig {
  /// Maximum concurrently active sessions; 0 = unlimited (every arrival is
  /// admitted immediately and nothing queues or sheds — the legacy
  /// admit-everything behavior).
  int max_active = 0;
  /// Bound on arrivals waiting for a slot once max_active is reached.
  /// < 0 = unbounded queue (arrivals wait forever, nothing is shed).
  /// Ignored when max_active == 0: without a capacity there is no queue.
  int queue_limit = -1;
};

/// Bounded-arrival-queue admission with load shedding — the front door of
/// serve::Frontend. Arrivals are offered in order; each is admitted (a slot
/// is free), queued (capacity full, queue has room) or shed (queue full
/// too). Completions pop the queue FIFO.
///
/// Decisions are a pure function of the offer/complete sequence — no clock,
/// no randomness — so the shed set is deterministic for a given arrival
/// order and capacity policy (tested). NOT thread-safe: the caller
/// serializes offer()/on_complete() (serve::Frontend holds one mutex
/// around them; wall-clock queue-time accounting lives there too, since
/// admission decisions must not depend on timing).
class AdmissionController {
 public:
  enum class Decision { kAdmit, kQueue, kShed };

  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  /// One arrival (identified by its session index). kAdmit activates it
  /// now; kQueue parks it FIFO until on_complete frees a slot; kShed drops
  /// it for good.
  Decision offer(int session);

  /// One active session finished. Returns the session index admitted from
  /// the head of the queue to take its slot, or -1 when the queue is empty.
  int on_complete();

  int active() const { return active_; }
  int waiting() const { return static_cast<int>(queue_.size()); }

  // Cumulative tallies for ServeStats.
  int offered() const { return offered_; }
  int admitted() const { return admitted_; }
  /// Arrivals that went through the queue before being admitted.
  int queued() const { return queued_; }
  int shed() const { return static_cast<int>(shed_sessions_.size()); }
  /// The exact arrivals that were shed, in offer order.
  const std::vector<int>& shed_sessions() const { return shed_sessions_; }

 private:
  AdmissionConfig config_;
  std::deque<int> queue_;
  std::vector<int> shed_sessions_;
  int active_ = 0;
  int offered_ = 0;
  int admitted_ = 0;
  int queued_ = 0;
};

}  // namespace icoil::serve
