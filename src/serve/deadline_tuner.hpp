#pragma once

#include <cstddef>
#include <vector>

namespace icoil::serve {

/// Autotuning policy for per-session frame deadlines.
struct DeadlineTunerConfig {
  bool enabled = false;
  double min_ms = 5.0;      ///< clamp floor for the tuned deadline
  double max_ms = 200.0;    ///< clamp ceiling (and the starting deadline
                            ///< when no static frame_deadline_ms is set)
  double headroom = 1.5;    ///< deadline target = headroom * rolling p99
  std::size_t window = 64;  ///< rolling window of observed frame latencies
  double gain = 0.25;       ///< fraction of (target - deadline) applied per
                            ///< observation; in (0, 1]
};

/// Per-session frame-deadline autotuner: tracks a rolling p99 of observed
/// frame latency and steers the deadline toward headroom * p99, clamped to
/// [min_ms, max_ms]. The tuned value feeds sim::Session::
/// set_frame_deadline_ms, i.e. the existing core::FrameContext budget
/// machinery — controllers degrade to best-so-far when it trips.
///
/// The update is a pure function of the observed latency sequence (no
/// internal clock or randomness), so for a fixed latency stream the tuned
/// deadline sequence is deterministic; for a CONSTANT latency stream it
/// converges monotonically to the clamped target (tested). One instance
/// per session — never shared across threads.
class DeadlineTuner {
 public:
  /// `initial_ms` seeds the deadline (a configured static
  /// frame_deadline_ms); <= 0 starts at max_ms, the permissive end, so the
  /// tuner only tightens once it has evidence.
  explicit DeadlineTuner(const DeadlineTunerConfig& config,
                         double initial_ms = 0.0);

  /// Feed one observed frame latency; returns the deadline to apply to the
  /// NEXT frame (already clamped).
  double observe(double frame_ms);

  double deadline_ms() const { return deadline_ms_; }
  /// Current clamped target (headroom * rolling p99); min_ms before any
  /// observation.
  double target_ms() const;

 private:
  double clamp(double ms) const;

  DeadlineTunerConfig config_;
  std::vector<double> window_;  ///< ring buffer of recent frame latencies
  std::size_t next_ = 0;
  double deadline_ms_;
};

}  // namespace icoil::serve
