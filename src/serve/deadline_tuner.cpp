#include "serve/deadline_tuner.hpp"

#include <algorithm>

#include "mathkit/stats.hpp"

namespace icoil::serve {

DeadlineTuner::DeadlineTuner(const DeadlineTunerConfig& config,
                             double initial_ms)
    : config_(config) {
  if (config_.window == 0) config_.window = 1;
  config_.gain = std::clamp(config_.gain, 1e-3, 1.0);
  deadline_ms_ = clamp(initial_ms > 0.0 ? initial_ms : config_.max_ms);
  window_.reserve(config_.window);
}

double DeadlineTuner::clamp(double ms) const {
  return std::clamp(ms, config_.min_ms, config_.max_ms);
}

double DeadlineTuner::target_ms() const {
  if (window_.empty()) return config_.min_ms;
  return clamp(config_.headroom * math::percentile(window_, 99.0));
}

double DeadlineTuner::observe(double frame_ms) {
  if (window_.size() < config_.window) {
    window_.push_back(frame_ms);
  } else {
    window_[next_] = frame_ms;
    next_ = (next_ + 1) % config_.window;
  }
  // Exponential approach: monotone toward the target while the target holds
  // still, smooth when it moves. Always clamped.
  const double target = target_ms();
  deadline_ms_ = clamp(deadline_ms_ + config_.gain * (target - deadline_ms_));
  return deadline_ms_;
}

}  // namespace icoil::serve
