#include "sensing/detector.hpp"

#include <algorithm>

#include "geom/angles.hpp"

namespace icoil::sense {

std::vector<Detection> Detector::detect(const world::World& world,
                                        const geom::Vec2& ego_position,
                                        math::Rng& rng, double max_range) const {
  std::vector<Detection> out;
  for (const world::ObstacleState& o : world.obstacle_states()) {
    if (geom::distance(o.box.center, ego_position) > max_range) continue;
    if (noise_.box_dropout > 0.0 && rng.bernoulli(noise_.box_dropout)) continue;

    Detection d;
    d.id = o.id;
    d.box = o.box;
    d.velocity = o.velocity;
    d.dynamic = o.dynamic;
    if (noise_.box_position_sigma > 0.0) {
      d.box.center.x += rng.normal(0.0, noise_.box_position_sigma);
      d.box.center.y += rng.normal(0.0, noise_.box_position_sigma);
    }
    if (noise_.box_extent_sigma > 0.0) {
      d.box.half_length = std::max(0.05, d.box.half_length +
                                             rng.normal(0.0, noise_.box_extent_sigma));
      d.box.half_width = std::max(0.05, d.box.half_width +
                                            rng.normal(0.0, noise_.box_extent_sigma));
    }
    if (noise_.box_heading_sigma > 0.0)
      d.box.heading = geom::wrap_angle(d.box.heading +
                                       rng.normal(0.0, noise_.box_heading_sigma));
    d.confidence = noise_.any() ? 0.9 : 1.0;
    out.push_back(d);
  }
  return out;
}

}  // namespace icoil::sense
