#pragma once

#include "mathkit/rng.hpp"
#include "sensing/bev.hpp"
#include "world/scenario.hpp"

namespace icoil::sense {

/// Applies the hard-level sensor corruptions of section V-B to a BEV image:
/// additive Gaussian pixel noise plus salt-and-pepper flips, clamped to [0,1].
class ImageNoise {
 public:
  explicit ImageNoise(world::NoiseConfig config) : config_(config) {}

  const world::NoiseConfig& config() const { return config_; }
  bool enabled() const {
    return config_.image_gaussian_sigma > 0.0 || config_.image_salt_pepper > 0.0;
  }

  /// Corrupt `img` in place using `rng`.
  void apply(BevImage& img, math::Rng& rng) const;

 private:
  world::NoiseConfig config_;
};

}  // namespace icoil::sense
