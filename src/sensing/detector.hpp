#pragma once

#include <vector>

#include "geom/obb.hpp"
#include "mathkit/rng.hpp"
#include "world/world.hpp"

namespace icoil::sense {

/// One detected obstacle: `z_i = h(y_i)` element of the paper's pipeline.
struct Detection {
  int id = -1;               ///< track id (stable across frames)
  geom::Obb box;             ///< detected oriented bounding box
  geom::Vec2 velocity;       ///< estimated centre velocity
  bool dynamic = false;      ///< classified as moving
  double confidence = 1.0;
};

/// The object detector `h`: produces oriented bounding boxes of obstacles.
/// Implemented as a ground-truth observer with configurable corruption
/// (centre/extent/heading jitter, missed detections) — the same interface
/// and failure modes as the paper's off-the-shelf detector node, whose noise
/// the hard level amplifies.
class Detector {
 public:
  explicit Detector(world::NoiseConfig noise = {}) : noise_(noise) {}

  const world::NoiseConfig& noise() const { return noise_; }

  /// Detect obstacles within `max_range` metres of the ego position.
  std::vector<Detection> detect(const world::World& world,
                                const geom::Vec2& ego_position, math::Rng& rng,
                                double max_range = 30.0) const;

 private:
  world::NoiseConfig noise_;
};

}  // namespace icoil::sense
