#include "sensing/noise.hpp"

#include <algorithm>

namespace icoil::sense {

void ImageNoise::apply(BevImage& img, math::Rng& rng) const {
  if (!enabled()) return;
  for (float& v : img.data()) {
    if (config_.image_salt_pepper > 0.0 && rng.bernoulli(config_.image_salt_pepper)) {
      v = v > 0.5f ? 0.0f : 1.0f;
      continue;
    }
    if (config_.image_gaussian_sigma > 0.0)
      v = std::clamp(v + static_cast<float>(rng.normal(0.0, config_.image_gaussian_sigma)),
                     0.0f, 1.0f);
  }
}

}  // namespace icoil::sense
