#include "sensing/bev.hpp"

#include <algorithm>

namespace icoil::sense {

float BevImage::channel_mean(int c) const {
  const std::size_t plane = static_cast<std::size_t>(size_) * size_;
  const float* p = data_.data() + static_cast<std::size_t>(c) * plane;
  float acc = 0.0f;
  for (std::size_t i = 0; i < plane; ++i) acc += p[i];
  return acc / static_cast<float>(plane);
}

geom::Vec2 BevRasterizer::pixel_to_world(const geom::Pose2& ego_pose, int row,
                                         int col) const {
  const double mpp = spec_.metres_per_pixel();
  const double half = spec_.range * 0.5;
  // Local frame: x forward (+row up in the image), y left (+col left->right
  // maps to -y ... +y reversed so the image reads naturally).
  const double lx = half - (row + 0.5) * mpp;
  const double ly = half - (col + 0.5) * mpp;
  return ego_pose.to_world({lx, ly});
}

BevImage BevRasterizer::render(const world::World& world,
                               const geom::Pose2& ego_pose) const {
  BevImage img(kBevChannels, spec_.size);
  const auto boxes = world.obstacle_boxes();
  const geom::Obb& goal = world.map().goal_bay();
  const geom::Aabb& bounds = world.map().bounds;

  // Cull obstacles entirely outside the raster window.
  const double reach = spec_.range * 0.75;
  std::vector<const geom::Obb*> near;
  for (const geom::Obb& b : boxes)
    if (geom::distance(b.center, ego_pose.position) <
        reach + std::max(b.half_length, b.half_width))
      near.push_back(&b);

  for (int r = 0; r < spec_.size; ++r) {
    for (int c = 0; c < spec_.size; ++c) {
      const geom::Vec2 w = pixel_to_world(ego_pose, r, c);
      for (const geom::Obb* b : near) {
        if (b->contains(w)) {
          img.at(kBevObstacles, r, c) = 1.0f;
          break;
        }
      }
      if (goal.contains(w)) img.at(kBevGoal, r, c) = 1.0f;
      if (!bounds.contains(w)) img.at(kBevBounds, r, c) = 1.0f;
    }
  }
  return img;
}

}  // namespace icoil::sense
