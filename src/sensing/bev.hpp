#pragma once

#include <cstddef>
#include <vector>

#include "geom/pose2.hpp"
#include "world/world.hpp"

namespace icoil::sense {

/// Geometry of the ego-centric BEV raster: `range` metres are mapped onto a
/// `size` x `size` grid with the ego at the centre, ego heading pointing
/// toward +row (up).
struct BevSpec {
  int size = 64;          ///< pixels per side
  double range = 24.0;    ///< metres covered per side
  double metres_per_pixel() const { return range / size; }
};

/// Channel layout of the BEV image.
enum BevChannel : int {
  kBevObstacles = 0,  ///< obstacle occupancy
  kBevGoal = 1,       ///< goal-bay mask
  kBevBounds = 2,     ///< out-of-lot mask
  kBevChannels = 3,
};

/// A float image in CHW layout, values in [0, 1]. This is `y_i = g(x_i)` of
/// the paper: the input the IL DNN consumes.
class BevImage {
 public:
  BevImage() = default;
  BevImage(int channels, int size) : channels_(channels), size_(size),
                                     data_(static_cast<std::size_t>(channels) * size * size, 0.0f) {}

  int channels() const { return channels_; }
  int size() const { return size_; }
  std::size_t num_values() const { return data_.size(); }

  float& at(int c, int row, int col) {
    return data_[(static_cast<std::size_t>(c) * size_ + row) * size_ + col];
  }
  float at(int c, int row, int col) const {
    return data_[(static_cast<std::size_t>(c) * size_ + row) * size_ + col];
  }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  /// Mean of one channel (useful for tests / uncertainty baselines).
  float channel_mean(int c) const;

 private:
  int channels_ = 0;
  int size_ = 0;
  std::vector<float> data_;
};

/// The BEV transformer `g`: rasterizes the world's ground-truth geometry into
/// an ego-centric multi-channel image. Replaces the camera + BEV network of
/// the paper's pipeline (see DESIGN.md substitutions).
class BevRasterizer {
 public:
  explicit BevRasterizer(BevSpec spec = {}) : spec_(spec) {}

  const BevSpec& spec() const { return spec_; }

  /// Render the scene as observed from `ego_pose`.
  BevImage render(const world::World& world, const geom::Pose2& ego_pose) const;

  /// World coordinates of a pixel centre as seen from `ego_pose`.
  geom::Vec2 pixel_to_world(const geom::Pose2& ego_pose, int row, int col) const;

 private:
  BevSpec spec_;
};

}  // namespace icoil::sense
