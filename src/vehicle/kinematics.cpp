#include "vehicle/kinematics.hpp"

#include <algorithm>
#include <cmath>

#include "geom/angles.hpp"

namespace icoil::vehicle {

double VehicleParams::min_turn_radius() const {
  return wheelbase / std::tan(max_steer);
}

State BicycleModel::integrate(const State& s, double accel, double wheel_angle,
                              double dt, bool limit_speed_by_gear,
                              bool reverse_gear) const {
  constexpr double kMaxSubDt = 0.01;
  const int substeps = std::max(1, static_cast<int>(std::ceil(dt / kMaxSubDt)));
  const double h = dt / substeps;

  State out = s;
  for (int i = 0; i < substeps; ++i) {
    double v = out.speed;
    // Speed-proportional drag always opposes motion.
    const double a_total = accel - params_.rolling_drag * v;
    v += a_total * h;
    if (limit_speed_by_gear) {
      // A gearbox cannot push the vehicle through zero: moving forward in
      // reverse gear (or vice versa) only brakes toward zero.
      if (reverse_gear)
        v = std::clamp(v, -params_.max_speed_rev, std::max(out.speed, 0.0));
      else
        v = std::clamp(v, std::min(out.speed, 0.0), params_.max_speed_fwd);
    } else {
      v = std::clamp(v, -params_.max_speed_rev, params_.max_speed_fwd);
    }

    const double theta = out.pose.heading;
    const double vm = (out.speed + v) * 0.5;  // midpoint speed
    out.pose.position.x += vm * std::cos(theta) * h;
    out.pose.position.y += vm * std::sin(theta) * h;
    out.pose.heading = geom::wrap_angle(
        theta + vm / params_.wheelbase * std::tan(wheel_angle) * h);
    out.speed = v;
  }
  return out;
}

State BicycleModel::step(const State& s, const Command& raw, double dt) const {
  const Command cmd = raw.clamped();
  const double wheel = cmd.steer * params_.max_steer;
  const double drive = cmd.throttle * params_.max_accel * (cmd.reverse ? -1.0 : 1.0);
  // Brake opposes current motion; at near-zero speed it simply holds.
  double brake_acc = 0.0;
  if (std::abs(s.speed) > 1e-3)
    brake_acc = -std::copysign(cmd.brake * params_.max_brake, s.speed);
  State next = integrate(s, drive + brake_acc, wheel, dt,
                         /*limit_speed_by_gear=*/true, cmd.reverse);
  // Brake cannot reverse the direction of motion.
  if (cmd.throttle <= 1e-9 && s.speed * next.speed < 0.0) next.speed = 0.0;
  return next;
}

State BicycleModel::step_planner(const State& s, const PlannerControl& u,
                                 double dt) const {
  const double wheel = std::clamp(u.steer, -params_.max_steer, params_.max_steer);
  const double accel = std::clamp(u.accel, -params_.max_brake, params_.max_accel);
  return integrate(s, accel, wheel, dt, /*limit_speed_by_gear=*/false, false);
}

Command BicycleModel::to_command(const State& s, const PlannerControl& u) const {
  Command cmd;
  cmd.steer = std::clamp(u.steer / params_.max_steer, -1.0, 1.0);
  // Decide gear by the direction the planner wants to move: the sign of the
  // post-acceleration speed.
  const double target_v = s.speed + u.accel * 0.1;
  cmd.reverse = target_v < -1e-3;
  const bool decelerating = u.accel * (s.speed >= 0 ? 1.0 : -1.0) < 0.0 &&
                            std::abs(s.speed) > 0.05;
  if (decelerating) {
    cmd.brake = std::clamp(std::abs(u.accel) / params_.max_brake, 0.0, 1.0);
  } else {
    cmd.throttle = std::clamp(std::abs(u.accel) / params_.max_accel, 0.0, 1.0);
  }
  return cmd;
}

geom::Obb BicycleModel::footprint(const State& s) const { return footprint(s.pose); }

geom::Obb BicycleModel::footprint(const geom::Pose2& pose) const {
  return geom::Obb::from_pose(pose, params_.length, params_.width,
                              params_.center_offset);
}

}  // namespace icoil::vehicle
