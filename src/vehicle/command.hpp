#pragma once

#include <algorithm>

namespace icoil::vehicle {

/// Driving action a_i of the paper: throttle, brake, steer, reverse.
/// throttle/brake in [0,1], steer in [-1,1] (fraction of max wheel angle,
/// positive = left), reverse flips the direction of throttle.
struct Command {
  double throttle = 0.0;
  double brake = 0.0;
  double steer = 0.0;
  bool reverse = false;

  /// Clamp all channels into their legal ranges.
  Command clamped() const {
    return {std::clamp(throttle, 0.0, 1.0), std::clamp(brake, 0.0, 1.0),
            std::clamp(steer, -1.0, 1.0), reverse};
  }

  static Command coast() { return {}; }
  static Command full_stop() { return {0.0, 1.0, 0.0, false}; }
};

}  // namespace icoil::vehicle
