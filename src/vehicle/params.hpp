#pragma once

#include "geom/angles.hpp"

namespace icoil::vehicle {

/// Physical and actuation limits of the ego vehicle. Defaults approximate a
/// compact passenger car (the MoCAM sandbox vehicles are 1:10-scale cars; we
/// keep full-scale metric values so distances read naturally).
struct VehicleParams {
  double wheelbase = 2.6;          ///< front-to-rear axle distance [m]
  double length = 4.2;             ///< overall footprint length [m]
  double width = 1.8;              ///< overall footprint width [m]
  /// Footprint centre offset forward of the rear axle [m].
  double center_offset = 1.3;

  double max_steer = icoil::geom::deg2rad(35.0);  ///< max wheel angle [rad]
  double max_speed_fwd = 3.0;      ///< parking-speed cap forward [m/s]
  double max_speed_rev = 2.0;      ///< parking-speed cap reverse [m/s]
  double max_accel = 2.0;          ///< full-throttle acceleration [m/s^2]
  double max_brake = 4.0;          ///< full-brake deceleration [m/s^2]
  double rolling_drag = 0.4;       ///< speed-proportional drag [1/s]

  /// Turning radius at full steer (rear-axle reference point).
  double min_turn_radius() const;
};

}  // namespace icoil::vehicle
