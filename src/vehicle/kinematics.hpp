#pragma once

#include "geom/obb.hpp"
#include "geom/pose2.hpp"
#include "vehicle/command.hpp"
#include "vehicle/params.hpp"

namespace icoil::vehicle {

/// Ackermann (kinematic bicycle) state, rear-axle reference point.
struct State {
  geom::Pose2 pose;
  double speed = 0.0;  ///< signed longitudinal speed [m/s], negative = reverse

  double x() const { return pose.x(); }
  double y() const { return pose.y(); }
  double heading() const { return pose.heading; }
};

/// Continuous control used by the CO planner's prediction model:
/// longitudinal acceleration and wheel angle.
struct PlannerControl {
  double accel = 0.0;  ///< [m/s^2], signed
  double steer = 0.0;  ///< wheel angle [rad], positive = left
};

/// Kinematic bicycle integrator s_{i+1} = u(s_i, a_i) — the paper's
/// Ackermann kinetics model. Deterministic; sub-steps internally for
/// numerical accuracy at large dt.
class BicycleModel {
 public:
  explicit BicycleModel(VehicleParams params = {}) : params_(params) {}

  const VehicleParams& params() const { return params_; }

  /// Advance by dt seconds under a discrete driving command
  /// (throttle/brake/steer/reverse semantics of the simulator).
  State step(const State& s, const Command& cmd, double dt) const;

  /// Advance by dt under the planner's continuous (accel, wheel angle)
  /// control — the model the CO module linearizes.
  State step_planner(const State& s, const PlannerControl& u, double dt) const;

  /// Convert a planner control into an equivalent driving command.
  Command to_command(const State& s, const PlannerControl& u) const;

  /// Vehicle footprint at a given state.
  geom::Obb footprint(const State& s) const;
  geom::Obb footprint(const geom::Pose2& pose) const;

 private:
  State integrate(const State& s, double accel, double wheel_angle, double dt,
                  bool limit_speed_by_gear, bool reverse_gear) const;
  VehicleParams params_;
};

}  // namespace icoil::vehicle
