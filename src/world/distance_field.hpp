#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/broadphase.hpp"
#include "geom/obb.hpp"
#include "geom/vec2.hpp"

namespace icoil::world {

/// Which narrow phase answers static collision/clearance queries.
///  kAnalytic — OBB-vs-OBB SAT / closest-point geometry per query (exact).
///  kGrid     — a rasterized DistanceField fast path: O(1) lookups decide
///              "certainly free" conservatively; queries inside the
///              conservative band fall back to the analytic phase, so the
///              collision verdict is ALWAYS exact — only clearance values
///              may be conservatively underestimated (see World).
enum class CollisionBackend { kAnalytic, kGrid };

const char* to_string(CollisionBackend backend);
/// Parses "analytic" / "grid"; false (out untouched) for anything else.
bool parse_collision_backend(const std::string& name, CollisionBackend* out);

/// A grid occupancy raster of static oriented-box obstacles with an exact
/// Euclidean distance transform (Felzenszwalb–Huttenlocher two-pass EDT):
/// every cell stores the distance from its centre to the nearest occupied
/// cell centre. Built once per scenario, it turns the per-query OBB
/// geometry of clearance/collision checks into O(1) lookups.
///
/// Conservativeness contract: the raster marks every cell whose centre lies
/// within an obstacle inflated by the half cell diagonal, so every obstacle
/// point lies in a marked cell. point_clearance subtracts
/// conservative_slack() (raster dilation + in-cell quantization, together
/// sqrt(2) * resolution) from the EDT lookup, making it a strict LOWER
/// bound on the true point-to-obstacle distance. clearance() extends the
/// bound to an OBB footprint via a covering set of discs along the long
/// axis. Hence probe() == kFree implies the analytic narrow phase would
/// also report the footprint collision-free.
class DistanceField {
 public:
  static constexpr double kDefaultResolution = 0.15;  ///< [m/cell]

  DistanceField() = default;

  /// Rasterize `statics` over `bounds` (plus a small pad) at `resolution`
  /// and build the EDT. An empty obstacle set yields an all-free field
  /// whose lookups return geom::kMaxClearance.
  DistanceField(const geom::Aabb& bounds, const std::vector<geom::Obb>& statics,
                double resolution = kDefaultResolution);

  /// Build from an explicit row-major occupancy raster (tests, goldens):
  /// `occupied[iy * width + ix]` nonzero marks the cell at centre
  /// origin + (ix + 0.5, iy + 0.5) * resolution. No extra dilation is
  /// applied; conservative_slack() still assumes the caller rasterized
  /// conservatively when it uses footprint queries.
  static DistanceField from_raster(geom::Vec2 origin, int width, int height,
                                   double resolution,
                                   const std::vector<std::uint8_t>& occupied);

  bool empty() const { return width_ == 0 || height_ == 0; }
  int width() const { return width_; }
  int height() const { return height_; }
  double resolution() const { return resolution_; }
  geom::Vec2 origin() const { return origin_; }

  /// Raw EDT value: distance [m] from the centre of cell (ix, iy) to the
  /// nearest occupied cell centre (geom::kMaxClearance when the raster has
  /// no occupied cell). Precondition: 0 <= ix < width, 0 <= iy < height.
  double cell_distance(int ix, int iy) const {
    return distance_[static_cast<std::size_t>(iy) * width_ + ix];
  }

  /// The occupancy raster the EDT was built from (dilated per the
  /// conservativeness contract). Precondition as cell_distance.
  bool cell_occupied(int ix, int iy) const {
    return occupied_[static_cast<std::size_t>(iy) * width_ + ix] != 0;
  }
  /// Row-major occupancy raster, one byte per cell (grid consumers — e.g.
  /// the planner's Dijkstra cost-to-go — sweep it directly).
  const std::vector<std::uint8_t>& occupancy() const { return occupied_; }

  /// Conservative clearance from point `p` to the static set: a lower
  /// bound on the true distance, 0 when `p` may touch an obstacle. Points
  /// outside the grid return 0 ("unknown" — callers fall back).
  double point_clearance(geom::Vec2 p) const;

  /// Conservative lower bound on the distance from footprint `fp` to the
  /// static set (0 when the footprint may collide), via a disc cover of
  /// the box: K discs along the long axis, each point_clearance minus the
  /// disc radius overshoot.
  double clearance(const geom::Obb& fp) const;

  /// Two-sided clearance bracket for `fp`. `lower` is clearance()'s
  /// conservative bound; `upper` is a guaranteed upper bound on the true
  /// footprint distance (the best disc centre's EDT value plus raster
  /// slack — the centre is IN the footprint, so the footprint can be no
  /// farther from the statics than it is). Callers falling back to the
  /// analytic narrow phase inside the conservative band pass `upper` as
  /// the cutoff so the broad phase prunes everything beyond it.
  struct ClearanceBounds {
    double lower = geom::kMaxClearance;
    double upper = geom::kMaxClearance;
  };
  ClearanceBounds clearance_bounds(const geom::Obb& fp) const;

  enum class Probe {
    kFree,       ///< certainly collision-free against the statics
    kUncertain,  ///< within the conservative band: run the analytic phase
  };
  Probe probe(const geom::Obb& fp) const {
    return clearance(fp) > 0.0 ? Probe::kFree : Probe::kUncertain;
  }

  /// The slack point_clearance subtracts from the raw EDT lookup: raster
  /// dilation (half cell diagonal) + in-cell quantization (half cell
  /// diagonal) = sqrt(2) * resolution.
  double conservative_slack() const { return slack_; }

 private:
  void build_edt(const std::vector<std::uint8_t>& occupied);

  int width_ = 0;
  int height_ = 0;
  double resolution_ = kDefaultResolution;
  double slack_ = 0.0;
  geom::Vec2 origin_;           ///< world position of the raster corner
  bool any_occupied_ = false;
  std::vector<std::uint8_t> occupied_;  ///< dilated raster, row-major
  std::vector<float> distance_;  ///< EDT at cell centres [m], row-major
};

}  // namespace icoil::world
