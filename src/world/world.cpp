#include "world/world.hpp"

#include <cmath>
#include <limits>

#include "geom/angles.hpp"

namespace icoil::world {

World::World(Scenario scenario) : scenario_(std::move(scenario)) {}

std::vector<ObstacleState> World::obstacle_states() const {
  std::vector<ObstacleState> out;
  out.reserve(scenario_.obstacles.size());
  for (const Obstacle& o : scenario_.obstacles) {
    out.push_back({o.id, o.footprint_at(time_), o.velocity_at(time_), o.dynamic()});
  }
  return out;
}

std::vector<geom::Obb> World::obstacle_boxes() const {
  std::vector<geom::Obb> out;
  out.reserve(scenario_.obstacles.size());
  for (const Obstacle& o : scenario_.obstacles) out.push_back(o.footprint_at(time_));
  return out;
}

bool World::in_collision(const geom::Obb& footprint) const {
  // Lot boundary: every footprint corner must stay inside.
  for (const geom::Vec2& c : footprint.corners())
    if (!scenario_.map.bounds.contains(c)) return true;
  for (const Obstacle& o : scenario_.obstacles)
    if (geom::overlaps(footprint, o.footprint_at(time_))) return true;
  return false;
}

double World::clearance(const geom::Obb& footprint) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Obstacle& o : scenario_.obstacles)
    best = std::min(best, geom::obb_distance(footprint, o.footprint_at(time_)));
  return best;
}

bool World::at_goal(const geom::Pose2& pose, double pos_tol,
                    double heading_tol) const {
  const geom::Pose2& goal = scenario_.map.goal_pose;
  return geom::distance(pose.position, goal.position) <= pos_tol &&
         std::abs(geom::angle_diff(pose.heading, goal.heading)) <= heading_tol;
}

}  // namespace icoil::world
