#include "world/world.hpp"

#include <cmath>

#include "geom/angles.hpp"

namespace icoil::world {

World::World(Scenario scenario, WorldConfig config)
    : scenario_(std::move(scenario)), config_(config) {
  slot_of_.assign(scenario_.obstacles.size(), -1);
  for (std::size_t i = 0; i < scenario_.obstacles.size(); ++i) {
    const Obstacle& o = scenario_.obstacles[i];
    if (o.dynamic() || o.driven) {
      slot_of_[i] = static_cast<int>(dynamic_indices_.size());
      dynamic_indices_.push_back(i);
    } else {
      static_set_.push(o.shape);
    }
  }
  driven_.resize(dynamic_indices_.size());
  if (config_.backend == CollisionBackend::kGrid)
    field_.emplace(scenario_.map.bounds, static_set_.boxes(),
                   config_.grid_resolution);
  refresh_dynamic_boxes();
}

geom::Obb World::dynamic_footprint(std::size_t slot) const {
  const Obstacle& o = scenario_.obstacles[dynamic_indices_[slot]];
  if (driven_[slot].active) {
    const DrivenPose& d = driven_[slot];
    return {d.pose.position, d.pose.heading, o.shape.half_length,
            o.shape.half_width};
  }
  return o.footprint_at(time_);
}

void World::refresh_dynamic_boxes() {
  dynamic_boxes_.resize(dynamic_indices_.size());
  dynamic_aabbs_.resize(dynamic_indices_.size());
  for (std::size_t k = 0; k < dynamic_indices_.size(); ++k) {
    dynamic_boxes_[k] = dynamic_footprint(k);
    dynamic_aabbs_[k] = dynamic_boxes_[k].aabb();
  }
}

void World::drive_obstacle(std::size_t index, const geom::Pose2& pose,
                           geom::Vec2 velocity) {
  const int slot = index < slot_of_.size() ? slot_of_[index] : -1;
  if (slot < 0) return;  // static obstacles cannot be driven
  driven_[static_cast<std::size_t>(slot)] = {pose, velocity, true};
  // Queries between now and the enclosing refresh must already see the new
  // pose (set_driver applies poses outside any step).
  dynamic_boxes_[static_cast<std::size_t>(slot)] =
      dynamic_footprint(static_cast<std::size_t>(slot));
  dynamic_aabbs_[static_cast<std::size_t>(slot)] =
      dynamic_boxes_[static_cast<std::size_t>(slot)].aabb();
}

std::vector<ObstacleState> World::obstacle_states() const {
  std::vector<ObstacleState> out;
  out.reserve(scenario_.obstacles.size());
  for (std::size_t i = 0; i < scenario_.obstacles.size(); ++i) {
    const Obstacle& o = scenario_.obstacles[i];
    const int slot = slot_of_[i];
    if (slot >= 0 && driven_[static_cast<std::size_t>(slot)].active) {
      const DrivenPose& d = driven_[static_cast<std::size_t>(slot)];
      out.push_back({o.id, dynamic_boxes_[static_cast<std::size_t>(slot)],
                     d.velocity, true});
    } else {
      out.push_back(
          {o.id, o.footprint_at(time_), o.velocity_at(time_), o.dynamic() || o.driven});
    }
  }
  return out;
}

std::vector<geom::Obb> World::obstacle_boxes() const {
  std::vector<geom::Obb> out;
  out.reserve(scenario_.obstacles.size());
  for (std::size_t i = 0; i < scenario_.obstacles.size(); ++i) {
    const int slot = slot_of_[i];
    out.push_back(slot >= 0 ? dynamic_boxes_[static_cast<std::size_t>(slot)]
                            : scenario_.obstacles[i].shape);
  }
  return out;
}

bool World::bay_occupied(std::size_t bay_index) const {
  const geom::Obb& bay = scenario_.map.bays[bay_index];
  for (const geom::Obb& s : static_set_.boxes())
    if (bay.contains(s.center)) return true;
  for (const geom::Obb& d : dynamic_boxes_)
    if (bay.contains(d.center)) return true;
  return false;
}

std::vector<std::size_t> World::free_bays() const {
  std::vector<std::size_t> out;
  for (std::size_t b = 0; b < scenario_.map.bays.size(); ++b)
    if (!bay_occupied(b)) out.push_back(b);
  return out;
}

bool World::static_collision(const geom::Obb& footprint) const {
  // Grid fast path: a certainly-free distance-field probe skips the
  // analytic narrow phase; anything within the conservative band runs it,
  // so the verdict matches the analytic backend exactly.
  if (field_.has_value() &&
      field_->probe(footprint) == DistanceField::Probe::kFree)
    return false;
  return static_set_.any_overlap(footprint);
}

double World::static_clearance(const geom::Obb& footprint,
                               double cutoff) const {
  if (field_.has_value()) {
    const DistanceField::ClearanceBounds b =
        field_->clearance_bounds(footprint);
    if (b.lower >= cutoff) return cutoff;
    // Outside the fallback band the conservative bound is the answer; near
    // contact the analytic distance keeps min-clearance stats sharp. The
    // field's upper bound caps that fallback's cutoff so the broad phase
    // prunes every box beyond it (the true distance can't exceed it).
    if (b.lower > config_.grid_resolution) return b.lower;
    return static_set_.min_distance(footprint, std::min(cutoff, b.upper));
  }
  return static_set_.min_distance(footprint, cutoff);
}

bool World::in_collision(const geom::Obb& footprint) const {
  // Lot boundary: every footprint corner must stay inside.
  for (const geom::Vec2& c : footprint.corners())
    if (!scenario_.map.bounds.contains(c)) return true;
  // Statics through the backend, dynamics with an AABB prefilter on their
  // cached current footprints.
  if (static_collision(footprint)) return true;
  const geom::Aabb fp_bb = footprint.aabb();
  for (std::size_t k = 0; k < dynamic_boxes_.size(); ++k) {
    if (!fp_bb.overlaps(dynamic_aabbs_[k])) continue;
    if (geom::overlaps(footprint, dynamic_boxes_[k])) return true;
  }
  return false;
}

double World::clearance(const geom::Obb& footprint) const {
  // static_clearance clamps to the kMaxClearance cutoff, so an
  // obstacle-free scenario reports the sentinel (not +inf) and the
  // dynamic-obstacle prune below starts from a finite bound.
  double best = static_clearance(footprint, geom::kMaxClearance);
  const geom::Aabb fp_bb = footprint.aabb();
  for (std::size_t k = 0; k < dynamic_boxes_.size(); ++k) {
    if (geom::aabb_distance(fp_bb, dynamic_aabbs_[k]) >= best) continue;
    best = std::min(best, geom::obb_distance(footprint, dynamic_boxes_[k]));
  }
  return best;
}

bool World::at_goal(const geom::Pose2& pose, double pos_tol,
                    double heading_tol) const {
  const geom::Pose2& goal = scenario_.map.goal_pose;
  return geom::distance(pose.position, goal.position) <= pos_tol &&
         std::abs(geom::angle_diff(pose.heading, goal.heading)) <= heading_tol;
}

}  // namespace icoil::world
