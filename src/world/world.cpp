#include "world/world.hpp"

#include <cmath>

#include "geom/angles.hpp"

namespace icoil::world {

World::World(Scenario scenario) : scenario_(std::move(scenario)) {
  for (std::size_t i = 0; i < scenario_.obstacles.size(); ++i) {
    const Obstacle& o = scenario_.obstacles[i];
    if (o.dynamic())
      dynamic_indices_.push_back(i);
    else
      static_set_.push(o.shape);
  }
}

std::vector<ObstacleState> World::obstacle_states() const {
  std::vector<ObstacleState> out;
  out.reserve(scenario_.obstacles.size());
  for (const Obstacle& o : scenario_.obstacles) {
    out.push_back({o.id, o.footprint_at(time_), o.velocity_at(time_), o.dynamic()});
  }
  return out;
}

std::vector<geom::Obb> World::obstacle_boxes() const {
  std::vector<geom::Obb> out;
  out.reserve(scenario_.obstacles.size());
  for (const Obstacle& o : scenario_.obstacles) out.push_back(o.footprint_at(time_));
  return out;
}

bool World::in_collision(const geom::Obb& footprint) const {
  // Lot boundary: every footprint corner must stay inside.
  for (const geom::Vec2& c : footprint.corners())
    if (!scenario_.map.bounds.contains(c)) return true;
  // Statics through the broad-phase cache, dynamics with a fresh AABB
  // prefilter on their current footprint.
  if (static_set_.any_overlap(footprint)) return true;
  const geom::Aabb fp_bb = footprint.aabb();
  for (std::size_t i : dynamic_indices_) {
    const geom::Obb box = scenario_.obstacles[i].footprint_at(time_);
    if (!fp_bb.overlaps(box.aabb())) continue;
    if (geom::overlaps(footprint, box)) return true;
  }
  return false;
}

double World::clearance(const geom::Obb& footprint) const {
  // min_distance clamps to the kMaxClearance cutoff, so an obstacle-free
  // scenario reports the sentinel (not +inf) and the dynamic-obstacle prune
  // below starts from a finite bound.
  double best = static_set_.min_distance(footprint, geom::kMaxClearance);
  const geom::Aabb fp_bb = footprint.aabb();
  for (std::size_t i : dynamic_indices_) {
    const geom::Obb box = scenario_.obstacles[i].footprint_at(time_);
    if (geom::aabb_distance(fp_bb, box.aabb()) >= best) continue;
    best = std::min(best, geom::obb_distance(footprint, box));
  }
  return best;
}

bool World::at_goal(const geom::Pose2& pose, double pos_tol,
                    double heading_tol) const {
  const geom::Pose2& goal = scenario_.map.goal_pose;
  return geom::distance(pose.position, goal.position) <= pos_tol &&
         std::abs(geom::angle_diff(pose.heading, goal.heading)) <= heading_tol;
}

}  // namespace icoil::world
