#include "world/generators/common.hpp"

#include "geom/angles.hpp"

namespace icoil::world {

Obstacle make_patrol_vehicle(int id) {
  Obstacle patrol;
  patrol.id = id;
  patrol.name = "patrol_vehicle";
  patrol.shape = geom::Obb{{0.0, 0.0}, 0.0, 2.1, 0.9};
  patrol.motion.waypoints = {{10.0, 19.5}, {30.0, 19.5}};
  patrol.motion.speed = 1.2;
  return patrol;
}

Obstacle make_crossing_pedestrian(int id) {
  Obstacle ped;
  ped.id = id;
  ped.name = "pedestrian";
  ped.shape = geom::Obb{{0.0, 0.0}, 0.0, 0.35, 0.35};
  ped.motion.waypoints = {{26.0, 9.0}, {26.0, 16.0}};
  ped.motion.speed = 0.7;
  ped.motion.phase = 3.0;
  return ped;
}

void append_parked_car(const ParkingLotMap& map, std::size_t bay_index,
                       math::Rng& rng, std::vector<Obstacle>& out,
                       int& next_id) {
  const geom::Obb& bay = map.bays[bay_index];
  const geom::Vec2 dir{std::cos(bay.heading), std::sin(bay.heading)};
  const geom::Vec2 lat = dir.perp();
  const double along = 0.15 + rng.uniform(-0.3, 0.3);
  const double across = rng.uniform(-0.15, 0.15);
  Obstacle car;
  car.id = next_id++;
  car.name = "parked_car_bay" + std::to_string(bay_index);
  car.shape = geom::Obb{bay.center + dir * along + lat * across,
                        bay.heading + rng.uniform(-0.05, 0.05), 2.1, 0.9};
  out.push_back(car);
}

void append_flanking_cars(const ParkingLotMap& map,
                          std::vector<Obstacle>& out, int& next_id) {
  const double bay_heading = geom::kPi / 2.0;
  const geom::Obb& left_bay = map.bays[map.goal_bay_index - 1];
  const geom::Obb& right_bay = map.bays[map.goal_bay_index + 1];
  out.push_back({next_id++, "parked_car_left",
                 geom::Obb{{left_bay.center.x, 2.9}, bay_heading, 2.1, 0.9},
                 {}});
  out.push_back({next_id++, "parked_car_right",
                 geom::Obb{{right_bay.center.x, 2.9}, bay_heading, 2.1, 0.9},
                 {}});
}

}  // namespace icoil::world
