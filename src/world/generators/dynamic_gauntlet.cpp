// Dynamic gauntlet: the standard lot with a configurable fleet of moving
// obstacles — aisle patrols, rectangular waypoint loops and crossing
// pedestrians — between the spawn region and the goal bay. Static content
// is just the two cars flanking the goal, so the difficulty comes almost
// entirely from timing gaps between movers. Recognized parameters:
//   num_movers    number of dynamic obstacles, 1..8 (default 4)
//   speed_scale   multiplier on every mover's speed (default 1.0)

#include <algorithm>

#include "geom/angles.hpp"
#include "world/generators/generator.hpp"

namespace icoil::world {
namespace {

class DynamicGauntletGenerator final : public ScenarioGenerator {
 public:
  std::string name() const override { return "dynamic_gauntlet"; }
  std::string description() const override {
    return "Standard lot with a fleet of patrols, waypoint loops and "
           "crossing pedestrians (num_movers 1..8, speed_scale)";
  }

  GeneratorOutput build(const GeneratorParams& params, Difficulty,
                        math::Rng&) const override {
    GeneratorOutput out;
    out.map = ParkingLotMap::standard();
    const int movers = std::clamp(params.get_int("num_movers", 4), 1, 8);
    const double speed_scale = std::max(0.1, params.get("speed_scale", 1.0));

    const double bay_heading = geom::kPi / 2.0;
    int id = 0;
    const geom::Obb& left_bay = out.map.bays[out.map.goal_bay_index - 1];
    const geom::Obb& right_bay = out.map.bays[out.map.goal_bay_index + 1];
    out.obstacles.push_back(
        {id++, "parked_car_left",
         geom::Obb{{left_bay.center.x, 2.9}, bay_heading, 2.1, 0.9}, {}});
    out.obstacles.push_back(
        {id++, "parked_car_right",
         geom::Obb{{right_bay.center.x, 2.9}, bay_heading, 2.1, 0.9}, {}});

    // Fixed mover templates (crossing lanes sit beyond the spawn region so
    // the start-pose search stays cheap); the shared phase jitter in
    // make_scenario desynchronizes them per seed.
    struct Template {
      const char* name;
      double half_length, half_width;
      std::vector<geom::Vec2> waypoints;
      double speed, phase;
    };
    const Template templates[] = {
        {"aisle_patrol", 2.1, 0.9, {{6.0, 19.5}, {34.0, 19.5}}, 1.3, 0.0},
        {"loop_vehicle", 2.1, 0.9,
         {{8.0, 16.0}, {32.0, 16.0}, {32.0, 24.0}, {8.0, 24.0}, {8.0, 16.0}},
         1.1, 18.0},
        {"crossing_ped_a", 0.35, 0.35, {{27.0, 8.0}, {27.0, 16.5}}, 0.8, 2.0},
        {"crossing_ped_b", 0.35, 0.35, {{31.5, 17.0}, {31.5, 7.0}}, 0.6, 0.0},
        {"upper_patrol", 2.1, 0.9, {{4.0, 22.5}, {36.0, 22.5}}, 1.6, 10.0},
        {"crossing_ped_c", 0.35, 0.35, {{25.0, 16.0}, {25.0, 8.5}}, 0.9, 4.0},
        {"wide_loop", 1.2, 0.6,
         {{12.0, 15.5}, {28.0, 15.5}, {28.0, 26.0}, {12.0, 26.0}, {12.0, 15.5}},
         1.0, 30.0},
        {"top_patrol", 2.1, 0.9, {{6.0, 26.5}, {34.0, 26.5}}, 1.8, 5.0},
    };

    for (int i = 0; i < movers; ++i) {
      const Template& t = templates[i];
      Obstacle mover;
      mover.id = id++;
      mover.name = t.name;
      mover.shape = geom::Obb{{0.0, 0.0}, 0.0, t.half_length, t.half_width};
      mover.motion.waypoints = t.waypoints;
      mover.motion.speed = t.speed * speed_scale;
      mover.motion.phase = t.phase;
      out.obstacles.push_back(mover);
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<ScenarioGenerator> make_dynamic_gauntlet_generator() {
  return std::make_unique<DynamicGauntletGenerator>();
}

}  // namespace icoil::world
