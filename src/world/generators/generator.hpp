#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mathkit/rng.hpp"
#include "world/generators/params.hpp"
#include "world/map.hpp"
#include "world/obstacle.hpp"
#include "world/scenario.hpp"

namespace icoil::world {

/// Static geometry plus the full obstacle roster produced by a generator,
/// before the shared scenario machinery applies difficulty truncation,
/// dynamic phase jitter, hard-level noise and the start-pose search.
struct GeneratorOutput {
  ParkingLotMap map;
  std::vector<Obstacle> obstacles;  ///< full roster: static first, then dynamic
};

/// One parametric scenario family. Implementations build the map and the
/// obstacle roster; `make_scenario` handles everything common to every
/// family (difficulty truncation, dynamic phase jitter, hard-level sensor
/// noise and the collision-free start-pose search).
///
/// Generators must consume `rng` only for randomized layout decisions so
/// fixed layouts stay bit-stable across runs — the canonical generator
/// never touches it, which keeps the paper's scenarios reproducible
/// byte-for-byte against the pre-registry code.
class ScenarioGenerator {
 public:
  virtual ~ScenarioGenerator() = default;

  /// Registry key, e.g. "canonical".
  virtual std::string name() const = 0;
  /// One-line human description, including recognized parameter keys.
  virtual std::string description() const = 0;

  /// Build the map and full obstacle roster for one scenario instance.
  virtual GeneratorOutput build(const GeneratorParams& params,
                                Difficulty difficulty, math::Rng& rng) const = 0;

  /// Default roster size at a difficulty when the caller gives no explicit
  /// override: easy keeps the leading static block, normal/hard keep all.
  virtual int default_count(Difficulty difficulty,
                            const std::vector<Obstacle>& roster) const;
};

/// Factories for the built-in generator family (registered automatically by
/// the GeneratorRegistry on first access).
std::unique_ptr<ScenarioGenerator> make_canonical_generator();
std::unique_ptr<ScenarioGenerator> make_perpendicular_generator();
std::unique_ptr<ScenarioGenerator> make_parallel_street_generator();
std::unique_ptr<ScenarioGenerator> make_crowded_lot_generator();
std::unique_ptr<ScenarioGenerator> make_dynamic_gauntlet_generator();
std::unique_ptr<ScenarioGenerator> make_multi_row_lot_generator();
std::unique_ptr<ScenarioGenerator> make_angled_bays_generator();
std::unique_ptr<ScenarioGenerator> make_narrow_garage_generator();

}  // namespace icoil::world
