#include "world/generators/generator.hpp"

namespace icoil::world {

int ScenarioGenerator::default_count(Difficulty difficulty,
                                     const std::vector<Obstacle>& roster) const {
  if (difficulty != Difficulty::kEasy) return static_cast<int>(roster.size());
  int statics = 0;
  for (const Obstacle& o : roster) {
    if (o.dynamic()) break;
    ++statics;
  }
  return statics;
}

}  // namespace icoil::world
