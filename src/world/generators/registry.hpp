#pragma once

#include <memory>
#include <string>
#include <vector>

#include "world/generators/generator.hpp"

namespace icoil::world {

/// Process-wide, string-keyed registry of scenario generators. The built-in
/// family is registered on first access; applications may `add` their own
/// generators (or replace built-ins by reusing a name) before building
/// scenarios. Registration must happen before concurrent use; lookups are
/// read-only afterwards and safe to share across evaluator worker threads.
class GeneratorRegistry {
 public:
  static GeneratorRegistry& instance();

  /// Register `generator` under its own name(), replacing any previous
  /// entry with the same name.
  void add(std::unique_ptr<ScenarioGenerator> generator);

  /// Look up by name; nullptr when unknown.
  const ScenarioGenerator* find(const std::string& name) const;

  /// Registered names in sorted order.
  std::vector<std::string> names() const;

  std::size_t size() const { return generators_.size(); }

 private:
  GeneratorRegistry();  // seeds the built-in family

  std::vector<std::unique_ptr<ScenarioGenerator>> generators_;
};

}  // namespace icoil::world
