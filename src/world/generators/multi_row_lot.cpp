// Four-row supermarket lot: two back-to-back middle rows between a bottom
// and a top row, served by two 7 m aisles that cruising traffic can loop
// around. This is the default mission map (quiet_lot / contested_lot /
// rush_hour reference its fixed aisle coordinates). The goal bay sits in
// the bottom row; every bay follows the bay-heading convention (heading
// points toward the aisle opening), so ParkingLotMap::bay_parked_pose is
// valid for all four rows and missions can retarget any free bay.
// Recognized parameters:
//   bays_per_row  bays in each of the four rows (default 8, clamped 4..12)
//   occupancy     probability a non-goal bay holds a parked car (default 0.6)

#include <algorithm>
#include <cmath>

#include "geom/angles.hpp"
#include "world/generators/common.hpp"
#include "world/generators/generator.hpp"

namespace icoil::world {
namespace {

class MultiRowLotGenerator final : public ScenarioGenerator {
 public:
  std::string name() const override { return "multi_row_lot"; }
  std::string description() const override {
    return "48x36 four-row lot with two aisles (bays_per_row, default 8; "
           "occupancy, default 0.6) + patrol and pedestrian";
  }

  GeneratorOutput build(const GeneratorParams& params, Difficulty,
                        math::Rng& rng) const override {
    GeneratorOutput out;
    const int n = std::clamp(params.get_int("bays_per_row", 8), 4, 12);
    const double occupancy = params.get("occupancy", 0.6);

    constexpr double kBayWidth = 3.0;
    constexpr double kHalfDepth = 2.75;  // 5.5 m bays, as everywhere else
    constexpr double kUp = geom::kPi / 2.0;

    ParkingLotMap& m = out.map;
    m.bounds = {{0.0, 0.0}, {48.0, 36.0}};
    const double x0 = (48.0 - kBayWidth * n) / 2.0 + kBayWidth * 0.5;

    // Row centre lines: bottom (opens up), back-to-back middle pair, top
    // (opens down). Aisles: y in [5.5, 12.5] and [23.5, 30.5].
    const struct {
      double cy;
      double heading;
    } rows[4] = {{2.75, kUp},     // bottom row -> bottom aisle
                 {15.25, -kUp},   // middle-lower -> bottom aisle
                 {20.75, kUp},    // middle-upper -> top aisle
                 {33.25, -kUp}};  // top row -> top aisle
    for (const auto& row : rows)
      for (int i = 0; i < n; ++i)
        m.bays.push_back(geom::Obb{{x0 + kBayWidth * i, row.cy}, row.heading,
                                   kHalfDepth, kBayWidth * 0.5});

    // Goal: middle of the bottom row (same reverse-in maneuver class as the
    // canonical lot).
    m.goal_bay_index = static_cast<std::size_t>(n / 2);
    m.goal_pose = m.bay_parked_pose(m.goal_bay_index);
    const double gx = m.goal_bay().center.x;

    // Spawn bands live in the lower half of the bottom aisle; cruising
    // traffic uses the upper half (y ~ 11.3), which keeps spawns clear of
    // the patrol lane for any start heading the scenario sampler draws.
    m.spawn_close = {{gx - 3.5, 6.9}, {gx + 3.5, 8.3}};
    m.spawn_remote = {{2.5, 6.9}, {8.5, 8.3}};
    m.spawn_random = {{2.5, 6.9}, {gx + 3.5, 8.3}};

    int id = 0;
    for (std::size_t b = 0; b < m.bays.size(); ++b) {
      if (b == m.goal_bay_index) continue;
      if (!rng.bernoulli(occupancy)) continue;
      append_parked_car(m, b, rng, out.obstacles, id);
    }

    // Dynamics last (easy difficulty keeps the leading static block): one
    // patrol in each aisle's traffic lane plus a crossing near the goal.
    Obstacle patrol;
    patrol.id = id++;
    patrol.name = "patrol_vehicle";
    patrol.shape = geom::Obb{{0.0, 0.0}, 0.0, 2.1, 0.9};
    patrol.motion.waypoints = {{6.0, 11.3}, {42.0, 11.3}};
    patrol.motion.speed = 1.2;
    out.obstacles.push_back(patrol);

    Obstacle ped;
    ped.id = id++;
    ped.name = "pedestrian";
    ped.shape = geom::Obb{{0.0, 0.0}, 0.0, 0.35, 0.35};
    ped.motion.waypoints = {{gx + 4.5, 5.8}, {gx + 4.5, 12.2}};
    ped.motion.speed = 0.7;
    ped.motion.phase = 2.0;
    out.obstacles.push_back(ped);
    return out;
  }
};

}  // namespace

std::unique_ptr<ScenarioGenerator> make_multi_row_lot_generator() {
  return std::make_unique<MultiRowLotGenerator>();
}

}  // namespace icoil::world
