// Perpendicular-bay variant of the standard lot: every non-goal bay is
// occupied with probability `occupancy`, each parked car slightly jittered
// in lateral position and heading (real lots are never perfectly aligned).
// Normal/hard difficulties add the aisle patrol vehicle and a crossing
// pedestrian. Recognized parameters:
//   occupancy   probability a non-goal bay holds a parked car (default 0.7)

#include "geom/angles.hpp"
#include "world/generators/common.hpp"
#include "world/generators/generator.hpp"

namespace icoil::world {
namespace {

class PerpendicularGenerator final : public ScenarioGenerator {
 public:
  std::string name() const override { return "perpendicular"; }
  std::string description() const override {
    return "Standard lot with randomly occupied neighbour bays "
           "(occupancy, default 0.7) + patrol and pedestrian";
  }

  GeneratorOutput build(const GeneratorParams& params, Difficulty,
                        math::Rng& rng) const override {
    GeneratorOutput out;
    out.map = ParkingLotMap::standard();
    const double occupancy = params.get("occupancy", 0.7);
    const double bay_heading = geom::kPi / 2.0;

    int id = 0;
    for (std::size_t i = 0; i < out.map.bays.size(); ++i) {
      if (i == out.map.goal_bay_index) continue;
      if (!rng.bernoulli(occupancy)) continue;
      Obstacle car;
      car.id = id++;
      car.name = "parked_car_bay" + std::to_string(i);
      car.shape = geom::Obb{{out.map.bays[i].center.x + rng.uniform(-0.15, 0.15),
                             2.9 + rng.uniform(-0.3, 0.3)},
                            bay_heading + rng.uniform(-0.05, 0.05), 2.1, 0.9};
      out.obstacles.push_back(car);
    }

    out.obstacles.push_back(make_patrol_vehicle(id++));
    out.obstacles.push_back(make_crossing_pedestrian(id++));
    return out;
  }
};

}  // namespace

std::unique_ptr<ScenarioGenerator> make_perpendicular_generator() {
  return std::make_unique<PerpendicularGenerator>();
}

}  // namespace icoil::world
