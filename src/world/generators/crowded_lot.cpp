// Crowded lot: the standard map densely cluttered with parked cars and
// randomly placed pillars/crates (N >= 8 obstacles) plus the canonical
// patrol vehicle and pedestrian. Clutter is sampled away from the spawn
// regions, the goal-approach corridor and the patrol lane so every seed
// keeps a feasible start and a reachable goal. Recognized parameters:
//   num_obstacles   total roster size incl. 2 dynamics (default 10, min 8)
//   density         multiplier on the clutter count (default 1.0); the
//                   10x setting of the collision-backend ablation packs
//                   ~60 clutter boxes into the same lot

#include <algorithm>
#include <cmath>

#include "geom/angles.hpp"
#include "world/generators/common.hpp"
#include "world/generators/generator.hpp"

namespace icoil::world {
namespace {

class CrowdedLotGenerator final : public ScenarioGenerator {
 public:
  std::string name() const override { return "crowded_lot"; }
  std::string description() const override {
    return "Standard lot with dense random clutter, N >= 8 obstacles "
           "(num_obstacles, default 10; density multiplies the clutter "
           "count) + patrol and pedestrian";
  }

  GeneratorOutput build(const GeneratorParams& params, Difficulty,
                        math::Rng& rng) const override {
    GeneratorOutput out;
    out.map = ParkingLotMap::standard();
    const int total = std::max(8, params.get_int("num_obstacles", 10));
    const double density = std::max(0.0, params.get("density", 1.0));
    // Density scales only the clutter: the fixed roster (parked cars,
    // patrol, pedestrian) anchors the scenario at every multiplier.
    const int num_clutter =
        static_cast<int>(std::lround((total - 4) * density));

    int id = 0;
    append_flanking_cars(out.map, out.obstacles, id);

    // Keep-out zones: spawn regions (inflated by the ego footprint radius),
    // the goal-approach corridor, and the patrol/pedestrian lanes.
    const geom::Aabb spawn_zone = out.map.spawn_random.inflated(2.6);
    const geom::Aabb goal_corridor{{26.5, 0.0}, {34.5, 21.0}};
    const geom::Aabb patrol_lane{{9.0, 18.4}, {31.0, 20.6}};
    const geom::Aabb ped_lane{{25.0, 8.0}, {27.0, 16.5}};

    for (int i = 0; i < num_clutter; ++i) {
      for (int attempt = 0; attempt < 40; ++attempt) {
        const double hl = rng.uniform(0.35, 1.1);
        const double hw = rng.uniform(0.35, 1.1);
        const double x = rng.uniform(3.0, 37.0);
        const double y = rng.uniform(15.0, 28.0);
        const geom::Obb box{{x, y}, rng.uniform(0.0, geom::kPi), hl, hw};
        const geom::Aabb bb = box.aabb();
        if (bb.overlaps(spawn_zone) || bb.overlaps(goal_corridor) ||
            bb.overlaps(patrol_lane) || bb.overlaps(ped_lane))
          continue;
        if (!out.map.bounds.inflated(-0.5).contains(bb.min) ||
            !out.map.bounds.inflated(-0.5).contains(bb.max))
          continue;
        bool clear = true;
        for (const Obstacle& o : out.obstacles)
          clear = clear && !geom::overlaps(box.inflated(0.4), o.shape);
        if (!clear) continue;
        out.obstacles.push_back(
            {id++, "clutter_" + std::to_string(i), box, {}});
        break;
      }
    }

    out.obstacles.push_back(make_patrol_vehicle(id++));
    out.obstacles.push_back(make_crossing_pedestrian(id++));
    return out;
  }
};

}  // namespace

std::unique_ptr<ScenarioGenerator> make_crowded_lot_generator() {
  return std::make_unique<CrowdedLotGenerator>();
}

}  // namespace icoil::world
