// Echelon (angled) bay row: bays lean toward oncoming aisle traffic so the
// drive-in maneuver is a shallow arc instead of a 90-degree turn. Bay
// headings follow the shared opening convention, so goal retargeting and
// ParkingLotMap::bay_parked_pose work unchanged; the maneuver class the
// planner sees is genuinely different from the perpendicular families.
// Recognized parameters:
//   angle_deg   bay lean from perpendicular (default 45, clamped 30..60)
//   bays        bays in the row (default 8, clamped 4..10)
//   occupancy   probability a non-goal bay holds a parked car (default 0.65)

#include <algorithm>
#include <cmath>

#include "geom/angles.hpp"
#include "world/generators/common.hpp"
#include "world/generators/generator.hpp"

namespace icoil::world {
namespace {

class AngledBaysGenerator final : public ScenarioGenerator {
 public:
  std::string name() const override { return "angled_bays"; }
  std::string description() const override {
    return "Echelon bay row at a lean angle (angle_deg, default 45; bays, "
           "default 8; occupancy, default 0.65) + patrol and pedestrian";
  }

  GeneratorOutput build(const GeneratorParams& params, Difficulty,
                        math::Rng& rng) const override {
    GeneratorOutput out;
    const double lean =
        geom::deg2rad(std::clamp(params.get("angle_deg", 45.0), 30.0, 60.0));
    const int n = std::clamp(params.get_int("bays", 8), 4, 10);
    const double occupancy = params.get("occupancy", 0.65);

    constexpr double kHalfDepth = 2.75;
    constexpr double kHalfWidth = 1.5;
    // Opening points up and toward +x: vehicles entering from the left
    // sweep into the bay without reversing direction.
    const double heading = geom::kPi / 2.0 - lean;

    ParkingLotMap& m = out.map;
    m.bounds = {{0.0, 0.0}, {44.0, 16.0}};
    // Horizontal pitch that keeps adjacent (parallel) bays from
    // overlapping: the centre offset projected on the bay's lateral axis
    // must exceed the bay width; cos(lean) is that projection factor.
    const double pitch = (2.0 * kHalfWidth + 0.2) / std::cos(lean);
    // Vertical half extent of a leaned bay, to sit the row on the bottom edge.
    const double cy =
        kHalfDepth * std::cos(lean) + kHalfWidth * std::sin(lean) + 0.1;
    const double x1 = 7.0;
    for (int i = 0; i < n; ++i)
      m.bays.push_back(
          geom::Obb{{x1 + pitch * i, cy}, heading, kHalfDepth, kHalfWidth});

    m.goal_bay_index = static_cast<std::size_t>(n / 2);
    m.goal_pose = m.bay_parked_pose(m.goal_bay_index);
    const double gx = m.goal_bay().center.x;
    const double row_top = 2.0 * cy;  // highest bay corner, by construction

    m.spawn_close = {{gx - 3.5, row_top + 1.2}, {gx + 3.5, row_top + 2.6}};
    m.spawn_remote = {{2.0, row_top + 1.2}, {6.5, row_top + 2.6}};
    m.spawn_random = {{2.0, row_top + 1.2}, {gx + 3.5, row_top + 2.6}};

    int id = 0;
    for (std::size_t b = 0; b < m.bays.size(); ++b) {
      if (b == m.goal_bay_index) continue;
      if (!rng.bernoulli(occupancy)) continue;
      append_parked_car(m, b, rng, out.obstacles, id);
    }

    Obstacle patrol;
    patrol.id = id++;
    patrol.name = "patrol_vehicle";
    patrol.shape = geom::Obb{{0.0, 0.0}, 0.0, 2.1, 0.9};
    patrol.motion.waypoints = {{5.0, 12.8}, {39.0, 12.8}};
    patrol.motion.speed = 1.2;
    out.obstacles.push_back(patrol);

    Obstacle ped;
    ped.id = id++;
    ped.name = "pedestrian";
    ped.shape = geom::Obb{{0.0, 0.0}, 0.0, 0.35, 0.35};
    ped.motion.waypoints = {{gx + 5.0, row_top + 0.4}, {gx + 5.0, 13.6}};
    ped.motion.speed = 0.7;
    ped.motion.phase = 2.5;
    out.obstacles.push_back(ped);
    return out;
  }
};

}  // namespace

std::unique_ptr<ScenarioGenerator> make_angled_bays_generator() {
  return std::make_unique<AngledBaysGenerator>();
}

}  // namespace icoil::world
