// The paper's Fig-4 parking lot: three static obstacles (parked cars
// flanking the goal bay + an aisle pillar) and two dynamic obstacles (a
// patrolling vehicle and a crossing pedestrian). This generator is the
// behavior-preserving port of the original hard-coded scenario builder: it
// never consumes the scenario RNG, so scenarios built through the registry
// are bit-for-bit identical to the pre-registry code.

#include "world/generators/common.hpp"
#include "world/generators/generator.hpp"

namespace icoil::world {

std::vector<Obstacle> canonical_obstacles() {
  std::vector<Obstacle> obs;
  const ParkingLotMap map = ParkingLotMap::standard();
  int id = 0;

  // Statics 1 & 2: cars parked in the bays flanking the goal bay.
  append_flanking_cars(map, obs, id);
  // Static 3: a pillar/crate on the aisle side, forcing a detour.
  obs.push_back({id++, "aisle_pillar", geom::Obb{{14.0, 17.0}, 0.0, 1.0, 1.0}, {}});
  // Dynamics: a vehicle patrolling the aisle above the bay row and a
  // pedestrian crossing between the bay row and the aisle.
  obs.push_back(make_patrol_vehicle(id++));
  obs.push_back(make_crossing_pedestrian(id++));
  return obs;
}

namespace {

class CanonicalGenerator final : public ScenarioGenerator {
 public:
  std::string name() const override { return "canonical"; }
  std::string description() const override {
    return "The paper's Fig-4 lot: 2 parked cars + aisle pillar, patrol "
           "vehicle and crossing pedestrian (no parameters)";
  }
  GeneratorOutput build(const GeneratorParams&, Difficulty,
                        math::Rng&) const override {
    return {ParkingLotMap::standard(), canonical_obstacles()};
  }
};

}  // namespace

std::unique_ptr<ScenarioGenerator> make_canonical_generator() {
  return std::make_unique<CanonicalGenerator>();
}

}  // namespace icoil::world
