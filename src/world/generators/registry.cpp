#include "world/generators/registry.hpp"

#include <algorithm>

namespace icoil::world {

GeneratorRegistry::GeneratorRegistry() {
  add(make_canonical_generator());
  add(make_perpendicular_generator());
  add(make_parallel_street_generator());
  add(make_crowded_lot_generator());
  add(make_dynamic_gauntlet_generator());
  add(make_multi_row_lot_generator());
  add(make_angled_bays_generator());
  add(make_narrow_garage_generator());
}

GeneratorRegistry& GeneratorRegistry::instance() {
  static GeneratorRegistry registry;
  return registry;
}

void GeneratorRegistry::add(std::unique_ptr<ScenarioGenerator> generator) {
  const std::string key = generator->name();
  for (auto& existing : generators_) {
    if (existing->name() == key) {
      existing = std::move(generator);
      return;
    }
  }
  generators_.push_back(std::move(generator));
}

const ScenarioGenerator* GeneratorRegistry::find(const std::string& name) const {
  for (const auto& g : generators_)
    if (g->name() == name) return g.get();
  return nullptr;
}

std::vector<std::string> GeneratorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(generators_.size());
  for (const auto& g : generators_) out.push_back(g->name());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace icoil::world
