// Underground-garage strip: two facing bay rows squeezed around a single
// narrow aisle, with structural pillars at the row ends. The aisle width is
// the difficulty knob — at the default 5.6 m the reverse-in maneuver needs
// a multi-point turn, which is exactly the regime the paper's CO planner is
// for. Bays are slightly shallower (5.0 m) than the open-lot families, as
// real garages are. Recognized parameters:
//   aisle_width   clear width between the rows (default 5.6, clamped 4.8..8)
//   bays_per_row  bays in each row (default 7, clamped 4..10)
//   occupancy     probability a non-goal bay holds a parked car (default 0.65)

#include <algorithm>
#include <cmath>

#include "geom/angles.hpp"
#include "world/generators/common.hpp"
#include "world/generators/generator.hpp"

namespace icoil::world {
namespace {

class NarrowGarageGenerator final : public ScenarioGenerator {
 public:
  std::string name() const override { return "narrow_garage"; }
  std::string description() const override {
    return "Two facing rows around one tight aisle with end pillars "
           "(aisle_width, default 5.6; bays_per_row, default 7; occupancy, "
           "default 0.65)";
  }

  GeneratorOutput build(const GeneratorParams& params, Difficulty,
                        math::Rng& rng) const override {
    GeneratorOutput out;
    const double aisle = std::clamp(params.get("aisle_width", 5.6), 4.8, 8.0);
    const int n = std::clamp(params.get_int("bays_per_row", 7), 4, 10);
    const double occupancy = params.get("occupancy", 0.65);

    constexpr double kBayWidth = 3.0;
    constexpr double kHalfDepth = 2.5;  // 5.0 m garage bays
    constexpr double kUp = geom::kPi / 2.0;

    ParkingLotMap& m = out.map;
    const double height = 2.0 * (2.0 * kHalfDepth) + aisle;
    const double width = 9.0 + kBayWidth * n;
    m.bounds = {{0.0, 0.0}, {width, height}};
    const double x0 = 6.0;
    for (int i = 0; i < n; ++i)  // bottom row, opens up
      m.bays.push_back(
          geom::Obb{{x0 + kBayWidth * i, kHalfDepth}, kUp, kHalfDepth,
                    kBayWidth * 0.5});
    for (int i = 0; i < n; ++i)  // top row, opens down
      m.bays.push_back(geom::Obb{{x0 + kBayWidth * i, height - kHalfDepth},
                                 -kUp, kHalfDepth, kBayWidth * 0.5});

    m.goal_bay_index = static_cast<std::size_t>(n / 2);
    m.goal_pose = m.bay_parked_pose(m.goal_bay_index);
    const double gx = m.goal_bay().center.x;

    // One spawn band along the aisle centre line; remote starts in the
    // pillar-free entry zone left of the rows.
    const double mid = height * 0.5;
    m.spawn_close = {{gx - 3.0, mid - 0.9}, {gx + 3.0, mid - 0.1}};
    m.spawn_remote = {{1.5, mid - 0.9}, {4.0, mid - 0.1}};
    m.spawn_random = {{1.5, mid - 0.9}, {gx + 3.0, mid - 0.1}};

    int id = 0;
    for (std::size_t b = 0; b < m.bays.size(); ++b) {
      if (b == m.goal_bay_index) continue;
      if (!rng.bernoulli(occupancy)) continue;
      append_parked_car(m, b, rng, out.obstacles, id);
    }

    // Structural pillars at the four row-end corners of the aisle.
    const double row_edge = 2.0 * kHalfDepth;
    for (const double px : {x0 - 1.9, x0 + kBayWidth * n - 1.1}) {
      for (const double py : {row_edge + 0.45, height - row_edge - 0.45}) {
        Obstacle pillar;
        pillar.id = id++;
        pillar.name = "pillar";
        pillar.shape = geom::Obb{{px, py}, 0.0, 0.35, 0.35};
        out.obstacles.push_back(pillar);
      }
    }

    // Dynamics: pedestrians only. The aisle is too narrow to y-separate a
    // patrol lane from the spawn band, and make_scenario's phase jitter can
    // park a patrol anywhere along its path — a vehicle here would make some
    // seeds' start-pose search unwinnable. Small crossing pedestrians keep
    // the scene dynamic without blocking spawns.
    Obstacle ped;
    ped.id = id++;
    ped.name = "pedestrian";
    ped.shape = geom::Obb{{0.0, 0.0}, 0.0, 0.35, 0.35};
    ped.motion.waypoints = {{gx - 4.5, row_edge + 0.4},
                            {gx - 4.5, height - row_edge - 0.4}};
    ped.motion.speed = 0.6;
    ped.motion.phase = 1.5;
    out.obstacles.push_back(ped);

    Obstacle ped2;
    ped2.id = id++;
    ped2.name = "pedestrian_far";
    ped2.shape = geom::Obb{{0.0, 0.0}, 0.0, 0.35, 0.35};
    ped2.motion.waypoints = {{x0 + kBayWidth * n - 2.0, row_edge + 0.4},
                             {x0 + kBayWidth * n - 2.0, height - row_edge - 0.4}};
    ped2.motion.speed = 0.7;
    ped2.motion.phase = 4.0;
    out.obstacles.push_back(ped2);
    return out;
  }
};

}  // namespace

std::unique_ptr<ScenarioGenerator> make_narrow_garage_generator() {
  return std::make_unique<NarrowGarageGenerator>();
}

}  // namespace icoil::world
