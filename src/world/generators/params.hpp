#pragma once

#include <cmath>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>

namespace icoil::world {

/// Free-form numeric parameters for a scenario generator (obstacle density,
/// mover counts, speed scales, ...). A flat string -> double map keeps the
/// registry API uniform across generator families; each generator documents
/// its keys and falls back to sensible defaults for missing ones.
class GeneratorParams {
 public:
  GeneratorParams() = default;
  GeneratorParams(
      std::initializer_list<std::pair<const std::string, double>> init)
      : values_(init) {}

  double get(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? it->second : fallback;
  }
  int get_int(const std::string& key, int fallback) const {
    return static_cast<int>(
        std::lround(get(key, static_cast<double>(fallback))));
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }
  void set(const std::string& key, double value) { values_[key] = value; }

  bool empty() const { return values_.empty(); }
  const std::map<std::string, double>& values() const { return values_; }

 private:
  std::map<std::string, double> values_;
};

}  // namespace icoil::world
