#pragma once

#include <vector>

#include "mathkit/rng.hpp"
#include "world/map.hpp"
#include "world/obstacle.hpp"

namespace icoil::world {

/// Shared obstacle builders for the built-in generator family. The values
/// are the canonical (paper Fig-4) definitions; generators that want a
/// variant build their own rather than parameterizing these, so the
/// canonical roster stays golden-test stable.

/// The vehicle patrolling the aisle above the bay row.
Obstacle make_patrol_vehicle(int id);

/// The pedestrian crossing between the bay row and the aisle.
Obstacle make_crossing_pedestrian(int id);

/// Append cars parked in the two bays flanking the goal bay; `next_id` is
/// advanced past the ids consumed.
void append_flanking_cars(const ParkingLotMap& map,
                          std::vector<Obstacle>& out, int& next_id);

/// Append one jittered parked car into bay `bay_index` of `map`, nudged
/// ~0.15 m toward the bay opening (the canonical parked-car placement),
/// valid for any bay orientation under the bay-heading convention.
void append_parked_car(const ParkingLotMap& map, std::size_t bay_index,
                       math::Rng& rng, std::vector<Obstacle>& out,
                       int& next_id);

}  // namespace icoil::world
