// Parallel street parking: a narrow 40 x 14 m street with a row of kerbside
// bays (heading 0) along the bottom edge. The ego must parallel-park into
// the middle gap between parked cars; normal/hard add an oncoming vehicle
// in the traffic lane and a pedestrian stepping off the kerb. Recognized
// parameters:
//   parked   number of occupied neighbour bays, 0..4 (default 4)

#include <algorithm>

#include "world/generators/generator.hpp"

namespace icoil::world {
namespace {

class ParallelStreetGenerator final : public ScenarioGenerator {
 public:
  std::string name() const override { return "parallel_street"; }
  std::string description() const override {
    return "Kerbside parallel parking on a narrow street (parked, "
           "default 4) + oncoming vehicle and pedestrian";
  }

  GeneratorOutput build(const GeneratorParams& params, Difficulty,
                        math::Rng&) const override {
    GeneratorOutput out;
    ParkingLotMap& m = out.map;
    m.bounds = {{0.0, 0.0}, {40.0, 14.0}};

    // Five kerbside bays along the bottom edge: 6.5 m long, 2.5 m deep,
    // opening toward the traffic lane (+y). Local x-axis along the kerb.
    constexpr double kBayLength = 6.5;
    constexpr double kBayDepth = 2.5;
    for (int i = 0; i < 5; ++i) {
      const double cx = 6.0 + 7.0 * i;
      m.bays.push_back(
          geom::Obb{{cx, kBayDepth * 0.5}, 0.0, kBayLength * 0.5, kBayDepth * 0.5});
    }
    m.goal_bay_index = 2;  // cx = 20

    // Parked pose: nose along +x, rear axle 1.3 m behind the bay centre
    // (the footprint centre offset), hugging the kerb.
    const geom::Vec2 bay_c = m.bays[m.goal_bay_index].center;
    m.goal_pose = {bay_c.x - 1.3, bay_c.y, 0.0};

    m.spawn_close = {{10.0, 5.0}, {16.0, 8.0}};
    m.spawn_remote = {{2.0, 5.0}, {6.0, 8.0}};
    m.spawn_random = {{2.0, 5.0}, {16.0, 8.0}};

    // Parked cars in the neighbour bays, nearest gap edges first so a small
    // `parked` still leaves a tight pocket around the goal.
    const int parked = std::clamp(params.get_int("parked", 4), 0, 4);
    const std::size_t order[4] = {1, 3, 0, 4};
    int id = 0;
    for (int i = 0; i < parked; ++i) {
      const geom::Obb& bay = m.bays[order[i]];
      Obstacle car;
      car.id = id++;
      car.name = "street_car_bay" + std::to_string(order[i]);
      car.shape = geom::Obb{{bay.center.x, bay.center.y}, 0.0, 2.1, 0.9};
      out.obstacles.push_back(car);
    }

    // Dynamic 1: oncoming traffic in the far lane.
    Obstacle oncoming;
    oncoming.id = id++;
    oncoming.name = "oncoming_vehicle";
    oncoming.shape = geom::Obb{{0.0, 0.0}, 0.0, 2.1, 0.9};
    oncoming.motion.waypoints = {{38.0, 11.0}, {2.0, 11.0}};
    oncoming.motion.speed = 1.6;
    out.obstacles.push_back(oncoming);

    // Dynamic 2: a pedestrian stepping between kerb and far pavement,
    // beyond the spawn region so starts stay clear.
    Obstacle ped;
    ped.id = id++;
    ped.name = "kerb_pedestrian";
    ped.shape = geom::Obb{{0.0, 0.0}, 0.0, 0.35, 0.35};
    ped.motion.waypoints = {{25.0, 3.5}, {25.0, 11.5}};
    ped.motion.speed = 0.7;
    out.obstacles.push_back(ped);
    return out;
  }
};

}  // namespace

std::unique_ptr<ScenarioGenerator> make_parallel_street_generator() {
  return std::make_unique<ParallelStreetGenerator>();
}

}  // namespace icoil::world
