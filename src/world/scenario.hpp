#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "world/generators/params.hpp"
#include "world/map.hpp"
#include "world/obstacle.hpp"

namespace icoil::world {

/// Paper difficulty levels (section V-B):
///  Easy   — three static obstacles.
///  Normal — three static + two dynamic obstacles.
///  Hard   — all obstacles + noise injected into BEV images and boxes.
enum class Difficulty { kEasy, kNormal, kHard };

/// Starting-point classes of the Fig-8 sensitivity study.
enum class StartClass { kClose, kRemote, kRandom };

std::string to_string(Difficulty d);
std::string to_string(StartClass s);

/// Sensor corruption levels (exercised at the hard difficulty).
struct NoiseConfig {
  double image_gaussian_sigma = 0.0;   ///< additive pixel noise
  double image_salt_pepper = 0.0;      ///< probability a pixel is flipped
  double box_position_sigma = 0.0;     ///< [m] detection centre jitter
  double box_extent_sigma = 0.0;       ///< [m] detection size jitter
  double box_heading_sigma = 0.0;      ///< [rad] detection heading jitter
  double box_dropout = 0.0;            ///< probability a detection is missed

  bool any() const {
    return image_gaussian_sigma > 0.0 || image_salt_pepper > 0.0 ||
           box_position_sigma > 0.0 || box_extent_sigma > 0.0 ||
           box_heading_sigma > 0.0 || box_dropout > 0.0;
  }
};

/// Complete description of one AP task instance.
struct Scenario {
  ParkingLotMap map;
  std::vector<Obstacle> obstacles;
  std::string generator = "canonical";  ///< generator that produced it
  Difficulty difficulty = Difficulty::kEasy;
  StartClass start_class = StartClass::kRandom;
  NoiseConfig noise;
  geom::Pose2 start_pose;       ///< sampled ego start (rear axle)
  std::uint64_t seed = 0;       ///< seed that generated this instance
  double time_limit = 60.0;     ///< episode timeout [s]
};

/// Options for building scenarios. `generator` selects a family from the
/// GeneratorRegistry ("canonical" is the paper's lot) and `params` carries
/// generator-specific knobs. `num_obstacles_override` (Fig 8) keeps the
/// first N obstacles of the generator's roster (static first, then dynamic).
struct ScenarioOptions {
  std::string generator = "canonical";
  GeneratorParams params;
  Difficulty difficulty = Difficulty::kEasy;
  StartClass start_class = StartClass::kRandom;
  int num_obstacles_override = -1;  ///< -1 = level default
  double time_limit = 60.0;
};

/// Deterministically build a scenario instance for a seed: dispatches to the
/// registered generator for the map and obstacle roster, then samples the
/// start pose inside the requested spawn region and applies the level's
/// noise settings. Throws std::invalid_argument for an unknown generator.
Scenario make_scenario(const ScenarioOptions& options, std::uint64_t seed);

/// The canonical obstacle roster of the Fig-4 map: three static (parked cars
/// flanking the goal bay + an aisle pillar) and two dynamic (a patrolling
/// vehicle and a crossing pedestrian). Implemented by the "canonical"
/// generator in world/generators/canonical.cpp.
std::vector<Obstacle> canonical_obstacles();

}  // namespace icoil::world
