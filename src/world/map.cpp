#include "world/map.hpp"

#include <cmath>

#include "geom/angles.hpp"

namespace icoil::world {

geom::Pose2 ParkingLotMap::bay_parked_pose(std::size_t i) const {
  const geom::Obb& bay = bays[i];
  // Rear axle 1.15 m behind the bay centre, nose toward the opening. With
  // the standard 5.5 m bay this reproduces the paper's goal pose exactly
  // (centre 2.75 - 1.15 = 1.6 m into the bay).
  const geom::Vec2 dir{std::cos(bay.heading), std::sin(bay.heading)};
  return {{bay.center.x - dir.x * 1.15, bay.center.y - dir.y * 1.15},
          bay.heading};
}

ParkingLotMap ParkingLotMap::standard() {
  ParkingLotMap m;
  m.bounds = {{0.0, 0.0}, {40.0, 30.0}};

  // Six vertical bays along the bottom edge: 3 m wide, 5.5 m deep, opening
  // toward the aisle (+y).
  constexpr double kBayWidth = 3.0;
  constexpr double kBayDepth = 5.5;
  constexpr double kRowStartX = 20.0;
  for (int i = 0; i < 6; ++i) {
    const double cx = kRowStartX + kBayWidth * (0.5 + i);
    // Bay local x-axis points along the bay depth (+y world): heading pi/2.
    m.bays.push_back(geom::Obb{{cx, kBayDepth * 0.5}, geom::kPi / 2.0,
                               kBayDepth * 0.5, kBayWidth * 0.5});
  }
  m.goal_bay_index = 3;  // cx = 30.5

  // Reverse-in parked pose: vehicle nose toward the aisle (+y), rear axle
  // deep in the bay.
  const geom::Vec2 bay_c = m.bays[m.goal_bay_index].center;
  m.goal_pose = {bay_c.x, 1.6, geom::kPi / 2.0};

  m.spawn_close = {{18.0, 10.0}, {24.0, 14.0}};
  m.spawn_remote = {{2.0, 10.0}, {8.0, 14.0}};
  m.spawn_random = {{2.0, 10.0}, {24.0, 14.0}};
  return m;
}

}  // namespace icoil::world
