#pragma once

#include <vector>

#include "geom/aabb.hpp"
#include "geom/obb.hpp"
#include "geom/pose2.hpp"

namespace icoil::world {

/// Static geometry of the Fig-4 parking lot: lot bounds, a row of parking
/// bays along the bottom edge, a driving aisle, a spawn region (the paper's
/// green area) and the goal bay (yellow box).
struct ParkingLotMap {
  geom::Aabb bounds;                 ///< drivable lot extent
  std::vector<geom::Obb> bays;       ///< all parking bays
  std::size_t goal_bay_index = 0;    ///< which bay is the goal
  geom::Pose2 goal_pose;             ///< target parked pose (rear axle)
  geom::Aabb spawn_close;            ///< close starting region
  geom::Aabb spawn_remote;           ///< remote starting region
  geom::Aabb spawn_random;           ///< union region for random starts

  const geom::Obb& goal_bay() const { return bays[goal_bay_index]; }

  /// Reverse-in parked pose for bay `i` under the shared bay convention: a
  /// bay OBB's heading points from the bay floor toward its aisle opening,
  /// so the parked vehicle faces the aisle with its rear axle 1.15 m behind
  /// the bay centre. Every generator's goal_pose is bay_parked_pose of its
  /// goal bay, which is what lets the mission layer retarget any free bay.
  geom::Pose2 bay_parked_pose(std::size_t i) const;

  /// The default MoCAM-style lot: 40 m x 30 m, six bays along the bottom,
  /// goal bay in the middle of the row.
  static ParkingLotMap standard();
};

}  // namespace icoil::world
