#include "world/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "geom/angles.hpp"
#include "mathkit/rng.hpp"
#include "vehicle/kinematics.hpp"
#include "world/generators/registry.hpp"

namespace icoil::world {

std::string to_string(Difficulty d) {
  switch (d) {
    case Difficulty::kEasy: return "easy";
    case Difficulty::kNormal: return "normal";
    case Difficulty::kHard: return "hard";
  }
  return "?";
}

std::string to_string(StartClass s) {
  switch (s) {
    case StartClass::kClose: return "close";
    case StartClass::kRemote: return "remote";
    case StartClass::kRandom: return "random";
  }
  return "?";
}

namespace {

const geom::Aabb& spawn_region(const ParkingLotMap& map, StartClass s) {
  switch (s) {
    case StartClass::kClose: return map.spawn_close;
    case StartClass::kRemote: return map.spawn_remote;
    case StartClass::kRandom: return map.spawn_random;
  }
  return map.spawn_random;
}

}  // namespace

Scenario make_scenario(const ScenarioOptions& options, std::uint64_t seed) {
  const ScenarioGenerator* generator =
      GeneratorRegistry::instance().find(options.generator);
  if (generator == nullptr)
    throw std::invalid_argument("make_scenario: unknown scenario generator \"" +
                                options.generator + "\"");

  math::Rng rng(seed ^ 0xA5C3D2E1ull);
  Scenario sc;
  sc.generator = options.generator;
  sc.difficulty = options.difficulty;
  sc.start_class = options.start_class;
  sc.seed = seed;
  sc.time_limit = options.time_limit;

  // Map + full obstacle roster from the generator family. The RNG is shared
  // with the steps below, so generators that do not randomize their layout
  // (e.g. canonical) leave the downstream stream untouched.
  GeneratorOutput built =
      generator->build(options.params, options.difficulty, rng);
  sc.map = std::move(built.map);
  std::vector<Obstacle> roster = std::move(built.obstacles);

  // Roster size: level default or explicit override (Fig 8 sweep).
  int count;
  if (options.num_obstacles_override >= 0) {
    count = std::min<int>(options.num_obstacles_override,
                          static_cast<int>(roster.size()));
  } else {
    count = generator->default_count(options.difficulty, roster);
  }
  roster.resize(count);
  // Jitter dynamic obstacle phases so seeds see different timings.
  for (Obstacle& o : roster)
    if (o.dynamic()) o.motion.phase += rng.uniform(0.0, o.motion.path_length());
  sc.obstacles = std::move(roster);

  // Hard level injects image and bounding-box noise (section V-B).
  if (options.difficulty == Difficulty::kHard) {
    sc.noise.image_gaussian_sigma = 0.08;
    sc.noise.image_salt_pepper = 0.02;
    sc.noise.box_position_sigma = 0.12;
    sc.noise.box_extent_sigma = 0.06;
    sc.noise.box_heading_sigma = 0.03;
    sc.noise.box_dropout = 0.03;
  }

  // Sample the start pose inside the spawn region, heading roughly along the
  // aisle (toward +x) with a small random offset. Re-sample (bounded) until
  // the ego footprint is clear of every obstacle's initial position —
  // a dynamic obstacle's patrol can otherwise cross the spawn region.
  const geom::Aabb& region = spawn_region(sc.map, options.start_class);
  const vehicle::BicycleModel model;
  for (int attempt = 0; attempt < 64; ++attempt) {
    sc.start_pose = {rng.uniform(region.min.x, region.max.x),
                     rng.uniform(region.min.y, region.max.y),
                     geom::wrap_angle(rng.uniform(-0.25, 0.25))};
    const geom::Obb fp = model.footprint(sc.start_pose).inflated(0.3);
    bool clear = true;
    for (const Obstacle& o : sc.obstacles)
      clear = clear && !geom::overlaps(fp, o.footprint_at(0.0));
    if (clear) break;
  }
  return sc;
}

}  // namespace icoil::world
