#include "world/scenario.hpp"

#include <algorithm>

#include "geom/angles.hpp"
#include "mathkit/rng.hpp"
#include "vehicle/kinematics.hpp"

namespace icoil::world {

std::string to_string(Difficulty d) {
  switch (d) {
    case Difficulty::kEasy: return "easy";
    case Difficulty::kNormal: return "normal";
    case Difficulty::kHard: return "hard";
  }
  return "?";
}

std::string to_string(StartClass s) {
  switch (s) {
    case StartClass::kClose: return "close";
    case StartClass::kRemote: return "remote";
    case StartClass::kRandom: return "random";
  }
  return "?";
}

std::vector<Obstacle> canonical_obstacles() {
  std::vector<Obstacle> obs;
  const ParkingLotMap map = ParkingLotMap::standard();
  const double bay_heading = geom::kPi / 2.0;

  // Static 1 & 2: cars parked in the bays flanking the goal bay.
  const geom::Obb& left_bay = map.bays[map.goal_bay_index - 1];
  const geom::Obb& right_bay = map.bays[map.goal_bay_index + 1];
  obs.push_back({0, "parked_car_left",
                 geom::Obb{{left_bay.center.x, 2.9}, bay_heading, 2.1, 0.9},
                 {}});
  obs.push_back({1, "parked_car_right",
                 geom::Obb{{right_bay.center.x, 2.9}, bay_heading, 2.1, 0.9},
                 {}});
  // Static 3: a pillar/crate on the aisle side, forcing a detour.
  obs.push_back({2, "aisle_pillar", geom::Obb{{14.0, 17.0}, 0.0, 1.0, 1.0}, {}});

  // Dynamic 1: a vehicle patrolling the aisle above the bay row.
  Obstacle patrol;
  patrol.id = 3;
  patrol.name = "patrol_vehicle";
  patrol.shape = geom::Obb{{0.0, 0.0}, 0.0, 2.1, 0.9};
  patrol.motion.waypoints = {{10.0, 19.5}, {30.0, 19.5}};
  patrol.motion.speed = 1.2;
  obs.push_back(patrol);

  // Dynamic 2: a pedestrian crossing between the bay row and the aisle.
  Obstacle ped;
  ped.id = 4;
  ped.name = "pedestrian";
  ped.shape = geom::Obb{{0.0, 0.0}, 0.0, 0.35, 0.35};
  ped.motion.waypoints = {{26.0, 9.0}, {26.0, 16.0}};
  ped.motion.speed = 0.7;
  ped.motion.phase = 3.0;
  obs.push_back(ped);

  return obs;
}

namespace {

const geom::Aabb& spawn_region(const ParkingLotMap& map, StartClass s) {
  switch (s) {
    case StartClass::kClose: return map.spawn_close;
    case StartClass::kRemote: return map.spawn_remote;
    case StartClass::kRandom: return map.spawn_random;
  }
  return map.spawn_random;
}

}  // namespace

Scenario make_scenario(const ScenarioOptions& options, std::uint64_t seed) {
  math::Rng rng(seed ^ 0xA5C3D2E1ull);
  Scenario sc;
  sc.map = ParkingLotMap::standard();
  sc.difficulty = options.difficulty;
  sc.start_class = options.start_class;
  sc.seed = seed;
  sc.time_limit = options.time_limit;

  // Obstacle roster: level default or explicit override (Fig 8 sweep).
  std::vector<Obstacle> roster = canonical_obstacles();
  int count;
  if (options.num_obstacles_override >= 0) {
    count = std::min<int>(options.num_obstacles_override,
                          static_cast<int>(roster.size()));
  } else {
    count = options.difficulty == Difficulty::kEasy ? 3
                                                    : static_cast<int>(roster.size());
  }
  roster.resize(count);
  // Jitter dynamic obstacle phases so seeds see different timings.
  for (Obstacle& o : roster)
    if (o.dynamic()) o.motion.phase += rng.uniform(0.0, o.motion.path_length());
  sc.obstacles = std::move(roster);

  // Hard level injects image and bounding-box noise (section V-B).
  if (options.difficulty == Difficulty::kHard) {
    sc.noise.image_gaussian_sigma = 0.08;
    sc.noise.image_salt_pepper = 0.02;
    sc.noise.box_position_sigma = 0.12;
    sc.noise.box_extent_sigma = 0.06;
    sc.noise.box_heading_sigma = 0.03;
    sc.noise.box_dropout = 0.03;
  }

  // Sample the start pose inside the spawn region, heading roughly along the
  // aisle (toward +x) with a small random offset. Re-sample (bounded) until
  // the ego footprint is clear of every obstacle's initial position —
  // a dynamic obstacle's patrol can otherwise cross the spawn region.
  const geom::Aabb& region = spawn_region(sc.map, options.start_class);
  const vehicle::BicycleModel model;
  for (int attempt = 0; attempt < 64; ++attempt) {
    sc.start_pose = {rng.uniform(region.min.x, region.max.x),
                     rng.uniform(region.min.y, region.max.y),
                     geom::wrap_angle(rng.uniform(-0.25, 0.25))};
    const geom::Obb fp = model.footprint(sc.start_pose).inflated(0.3);
    bool clear = true;
    for (const Obstacle& o : sc.obstacles)
      clear = clear && !geom::overlaps(fp, o.footprint_at(0.0));
    if (clear) break;
  }
  return sc;
}

}  // namespace icoil::world
