#include "world/obstacle.hpp"

#include <cmath>

#include "geom/angles.hpp"

namespace icoil::world {

double MotionScript::path_length() const {
  double len = 0.0;
  for (std::size_t i = 1; i < waypoints.size(); ++i)
    len += geom::distance(waypoints[i - 1], waypoints[i]);
  return len;
}

geom::Pose2 MotionScript::pose_at(double t) const {
  if (!dynamic()) {
    const geom::Vec2 p = waypoints.empty() ? geom::Vec2{} : waypoints.front();
    return {p, 0.0};
  }
  const double total = path_length();
  if (total <= 0.0) return {waypoints.front(), 0.0};

  // Ping-pong parameterization: distance advances, then reflects.
  double s = std::fmod(phase + speed * t, 2.0 * total);
  if (s < 0.0) s += 2.0 * total;
  const bool returning = s > total;
  if (returning) s = 2.0 * total - s;

  double acc = 0.0;
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    const double seg = geom::distance(waypoints[i - 1], waypoints[i]);
    if (acc + seg >= s || i + 1 == waypoints.size()) {
      const double frac = seg > 0.0 ? (s - acc) / seg : 0.0;
      const geom::Vec2 p = geom::lerp(waypoints[i - 1], waypoints[i], frac);
      geom::Vec2 dir = (waypoints[i] - waypoints[i - 1]).normalized();
      if (returning) dir = -dir;
      return {p, dir.angle()};
    }
    acc += seg;
  }
  return {waypoints.back(), 0.0};
}

geom::Obb Obstacle::footprint_at(double t) const {
  if (!dynamic()) return shape;
  const geom::Pose2 pose = motion.pose_at(t);
  return {pose.position, pose.heading, shape.half_length, shape.half_width};
}

geom::Vec2 Obstacle::velocity_at(double t) const {
  if (!dynamic()) return {};
  constexpr double kEps = 1e-3;
  const geom::Pose2 a = motion.pose_at(t);
  const geom::Pose2 b = motion.pose_at(t + kEps);
  return (b.position - a.position) / kEps;
}

}  // namespace icoil::world
