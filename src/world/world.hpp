#pragma once

#include <vector>

#include "geom/broadphase.hpp"
#include "geom/obb.hpp"
#include "vehicle/kinematics.hpp"
#include "world/scenario.hpp"

namespace icoil::world {

/// Ground-truth snapshot of one obstacle at the current world time.
struct ObstacleState {
  int id = 0;
  geom::Obb box;
  geom::Vec2 velocity;
  bool dynamic = false;
};

/// The live environment: advances dynamic obstacles and answers geometric
/// queries (collisions, goal membership). The World owns ground truth; the
/// sensing module corrupts it into observations.
class World {
 public:
  explicit World(Scenario scenario);

  const Scenario& scenario() const { return scenario_; }
  const ParkingLotMap& map() const { return scenario_.map; }
  double time() const { return time_; }

  /// Advance world time (moves scripted obstacles).
  void step(double dt) { time_ += dt; }
  /// Reset world time to zero.
  void reset() { time_ = 0.0; }

  /// Ground-truth obstacle footprints at the current time.
  std::vector<ObstacleState> obstacle_states() const;
  std::vector<geom::Obb> obstacle_boxes() const;

  /// Broad-phase cache over the static obstacles (footprints never move).
  const geom::ObbSet& static_obstacle_set() const { return static_set_; }
  /// Indices into scenario().obstacles of the dynamic obstacles.
  const std::vector<std::size_t>& dynamic_obstacle_indices() const {
    return dynamic_indices_;
  }

  /// True if `footprint` hits any obstacle or leaves the lot bounds.
  bool in_collision(const geom::Obb& footprint) const;
  /// Distance from `footprint` to the nearest obstacle
  /// (geom::kMaxClearance when there is none within that range).
  double clearance(const geom::Obb& footprint) const;

  /// True when the pose is parked: inside goal tolerance in SE(2).
  bool at_goal(const geom::Pose2& pose, double pos_tol = 0.6,
               double heading_tol = 0.35) const;

 private:
  Scenario scenario_;
  double time_ = 0.0;
  /// Broad-phase cache: static obstacle footprints never move, so their
  /// AABBs are computed once; dynamic obstacles are indexed for the
  /// per-query narrow phase.
  geom::ObbSet static_set_;
  std::vector<std::size_t> dynamic_indices_;
};

}  // namespace icoil::world
