#pragma once

#include <optional>
#include <vector>

#include "geom/broadphase.hpp"
#include "geom/obb.hpp"
#include "vehicle/kinematics.hpp"
#include "world/distance_field.hpp"
#include "world/scenario.hpp"

namespace icoil::world {

/// Ground-truth snapshot of one obstacle at the current world time.
struct ObstacleState {
  int id = 0;
  geom::Obb box;
  geom::Vec2 velocity;
  bool dynamic = false;
};

/// Collision-backend selection for a World instance. The grid backend
/// rasterizes the static obstacles into a DistanceField once at
/// construction; collision verdicts stay exact (uncertain lookups fall back
/// to the analytic narrow phase), clearance values become conservative
/// lower bounds outside the fallback band.
struct WorldConfig {
  CollisionBackend backend = CollisionBackend::kAnalytic;
  double grid_resolution = DistanceField::kDefaultResolution;  ///< [m/cell]
};

class World;

/// Per-step co-simulation hook: the mission layer attaches one of these to
/// drive behaviour-driven traffic agents (world::Obstacle::driven). The
/// World calls step(dt) inside World::step AFTER its clock advances and
/// BEFORE footprints are re-cached, so collision, clearance and sensing
/// queries in the same frame already see the driver's updated poses. The
/// driver must only mutate the world through drive_obstacle (never the
/// scenario roster) and must be deterministic in the world state it reads.
class WorldDriver {
 public:
  virtual ~WorldDriver() = default;
  virtual void step(World& world, double dt) = 0;
};

/// The live environment: advances dynamic obstacles and answers geometric
/// queries (collisions, goal membership). The World owns ground truth; the
/// sensing module corrupts it into observations.
class World {
 public:
  explicit World(Scenario scenario, WorldConfig config = {});

  const Scenario& scenario() const { return scenario_; }
  const ParkingLotMap& map() const { return scenario_.map; }
  const WorldConfig& config() const { return config_; }
  double time() const { return time_; }

  /// Advance world time (moves scripted obstacles, then the driver's).
  void step(double dt) {
    time_ += dt;
    if (driver_ != nullptr) driver_->step(*this, dt);
    refresh_dynamic_boxes();
  }
  /// Reset world time to zero.
  void reset() {
    time_ = 0.0;
    refresh_dynamic_boxes();
  }
  /// Set the world clock without stepping anything — mission legs carry the
  /// elapsed mission time into each leg's fresh World so scripted patrol
  /// phases (and the driver's time-triggered behaviours) stay continuous.
  void set_time(double t) {
    time_ = t;
    refresh_dynamic_boxes();
  }

  /// Attach (or detach, with nullptr) the co-simulation driver. On attach
  /// the driver is stepped once with dt = 0 — it applies its current agent
  /// poses without advancing behaviour, so the world is consistent before
  /// the first real step.
  void set_driver(WorldDriver* driver) {
    driver_ = driver;
    if (driver_ != nullptr) driver_->step(*this, 0.0);
    refresh_dynamic_boxes();
  }

  /// Override the pose/velocity of obstacle `index` (scenario order; the
  /// obstacle must be scripted-dynamic or driven). The override sticks until
  /// the next drive_obstacle for the same index and takes effect for every
  /// query immediately. WorldDrivers call this; nothing else should.
  void drive_obstacle(std::size_t index, const geom::Pose2& pose,
                      geom::Vec2 velocity = {});

  /// True when any obstacle footprint centre currently sits inside bay
  /// `bay_index` — the physical half of bay contention (the mission layer's
  /// BayLedger holds the intent half).
  bool bay_occupied(std::size_t bay_index) const;
  /// Indices of bays with no obstacle centre inside them, ascending.
  std::vector<std::size_t> free_bays() const;

  /// Ground-truth obstacle footprints at the current time.
  std::vector<ObstacleState> obstacle_states() const;
  std::vector<geom::Obb> obstacle_boxes() const;

  /// Broad-phase cache over the static obstacles (footprints never move).
  const geom::ObbSet& static_obstacle_set() const { return static_set_; }
  /// Indices into scenario().obstacles of the dynamic obstacles.
  const std::vector<std::size_t>& dynamic_obstacle_indices() const {
    return dynamic_indices_;
  }
  /// Dynamic obstacle footprints at the current time, cached per step():
  /// collision/clearance queries run many times per frame and must not
  /// re-derive the scripted poses each call. Index-aligned with
  /// dynamic_obstacle_indices().
  const std::vector<geom::Obb>& dynamic_boxes() const { return dynamic_boxes_; }

  /// The static distance field (grid backend only; nullptr for analytic).
  /// Stable for the World's lifetime — hand it to planners for the
  /// pose_free fast path.
  const DistanceField* distance_field() const {
    return field_.has_value() ? &*field_ : nullptr;
  }

  /// True when `footprint` hits a STATIC obstacle. Backend-aware but exact
  /// either way: the grid fast path only short-circuits certainly-free
  /// queries. (Shared with the safety monitor's rollout.)
  bool static_collision(const geom::Obb& footprint) const;
  /// Distance from `footprint` to the nearest static obstacle, clamped to
  /// `cutoff`. Under the grid backend this is a conservative lower bound
  /// when the footprint is more than one cell clear of the set, the exact
  /// analytic distance inside that band.
  double static_clearance(const geom::Obb& footprint,
                          double cutoff = geom::kMaxClearance) const;

  /// True if `footprint` hits any obstacle or leaves the lot bounds.
  bool in_collision(const geom::Obb& footprint) const;
  /// Distance from `footprint` to the nearest obstacle
  /// (geom::kMaxClearance when there is none within that range).
  double clearance(const geom::Obb& footprint) const;

  /// True when the pose is parked: inside goal tolerance in SE(2).
  bool at_goal(const geom::Pose2& pose, double pos_tol = 0.6,
               double heading_tol = 0.35) const;

 private:
  /// Driver-supplied pose override for one dynamic slot.
  struct DrivenPose {
    geom::Pose2 pose;
    geom::Vec2 velocity;
    bool active = false;
  };

  void refresh_dynamic_boxes();
  geom::Obb dynamic_footprint(std::size_t slot) const;

  Scenario scenario_;
  WorldConfig config_;
  double time_ = 0.0;
  WorldDriver* driver_ = nullptr;           ///< not owned; optional
  /// Broad-phase cache: static obstacle footprints never move, so their
  /// AABBs are computed once; dynamic obstacles are indexed for the
  /// per-query narrow phase.
  geom::ObbSet static_set_;
  std::vector<std::size_t> dynamic_indices_;
  std::vector<geom::Obb> dynamic_boxes_;    ///< footprints at time_
  std::vector<geom::Aabb> dynamic_aabbs_;   ///< their AABBs (prefilter)
  std::vector<DrivenPose> driven_;          ///< per-slot driver overrides
  std::vector<int> slot_of_;                ///< obstacle index -> dynamic slot (-1 static)
  std::optional<DistanceField> field_;      ///< grid backend only
};

}  // namespace icoil::world
