#pragma once

#include <string>
#include <vector>

#include "geom/obb.hpp"
#include "geom/vec2.hpp"

namespace icoil::world {

/// Motion script for a dynamic obstacle: patrol a polyline at constant speed,
/// reversing at the ends (ping-pong). Static obstacles have an empty script.
struct MotionScript {
  std::vector<geom::Vec2> waypoints;
  double speed = 0.0;  ///< [m/s]
  double phase = 0.0;  ///< initial position along the patrol, in metres

  bool dynamic() const { return waypoints.size() >= 2 && speed > 0.0; }
  /// Total one-way patrol length.
  double path_length() const;
  /// Centre position and heading after `t` seconds.
  geom::Pose2 pose_at(double t) const;
};

/// A parking-lot obstacle: an oriented-box footprint plus an optional motion
/// script. The paper's easy level uses three static obstacles (blue) and the
/// normal/hard levels add two dynamic obstacles (red).
struct Obstacle {
  int id = 0;
  std::string name;
  geom::Obb shape;       ///< footprint at t=0 (centre/heading overridden when dynamic)
  MotionScript motion;
  /// Pose supplied per step by a world::WorldDriver (mission traffic agents)
  /// instead of a MotionScript. The World classes driven obstacles as
  /// dynamic even with an empty script; until the driver's first override
  /// the footprint is `shape`.
  bool driven = false;

  bool dynamic() const { return motion.dynamic(); }
  /// Footprint at simulation time `t`.
  geom::Obb footprint_at(double t) const;
  /// Centre velocity at time `t` (zero for static obstacles).
  geom::Vec2 velocity_at(double t) const;
};

}  // namespace icoil::world
