#include "world/distance_field.hpp"

#include <algorithm>
#include <cmath>

namespace icoil::world {

const char* to_string(CollisionBackend backend) {
  switch (backend) {
    case CollisionBackend::kAnalytic: return "analytic";
    case CollisionBackend::kGrid: return "grid";
  }
  return "?";
}

bool parse_collision_backend(const std::string& name, CollisionBackend* out) {
  if (name == "analytic") {
    *out = CollisionBackend::kAnalytic;
    return true;
  }
  if (name == "grid") {
    *out = CollisionBackend::kGrid;
    return true;
  }
  return false;
}

namespace {

/// Squared-distance sentinel for "no occupied cell seen yet" — far above
/// any reachable squared cell distance, far below double overflow when the
/// parabola intersection arithmetic touches it.
constexpr double kInfSq = 1e18;

/// One pass of the Felzenszwalb–Huttenlocher exact 1D squared-distance
/// transform: d[q] = min_p (q - p)^2 + f[p], via the lower envelope of the
/// parabolas rooted at each sample. `v`/`z` are caller-provided scratch
/// (parabola apex indices / envelope boundaries) of size n and n + 1.
void edt_1d(const double* f, double* d, int* v, double* z, int n) {
  int k = 0;
  v[0] = 0;
  z[0] = -kInfSq;
  z[1] = kInfSq;
  for (int q = 1; q < n; ++q) {
    double s;
    for (;;) {
      const int p = v[k];
      s = ((f[q] + static_cast<double>(q) * q) -
           (f[p] + static_cast<double>(p) * p)) /
          (2.0 * q - 2.0 * p);
      if (s <= z[k] && k > 0) {
        --k;
        continue;
      }
      break;
    }
    ++k;
    v[k] = q;
    z[k] = s;
    z[k + 1] = kInfSq;
  }
  k = 0;
  for (int q = 0; q < n; ++q) {
    while (z[k + 1] < q) ++k;
    const double dq = q - v[k];
    d[q] = dq * dq + f[v[k]];
  }
}

}  // namespace

DistanceField::DistanceField(const geom::Aabb& bounds,
                             const std::vector<geom::Obb>& statics,
                             double resolution) {
  resolution_ = std::max(1e-3, resolution);
  slack_ = std::sqrt(2.0) * resolution_;
  // Pad the raster a couple of cells past the lot bounds so queries whose
  // footprint grazes the boundary still resolve instead of falling back.
  const double pad = 2.0 * resolution_;
  const geom::Aabb area = bounds.inflated(pad);
  origin_ = area.min;
  width_ = std::max(1, static_cast<int>(std::ceil(area.width() / resolution_)));
  height_ = std::max(1, static_cast<int>(std::ceil(area.height() / resolution_)));

  // Mark every cell whose centre lies within an obstacle inflated by the
  // half cell diagonal: every point of the true obstacle then lives in a
  // marked cell (the conservativeness contract point_clearance relies on).
  std::vector<std::uint8_t> occupied(
      static_cast<std::size_t>(width_) * height_, 0);
  const double dilation = 0.5 * std::sqrt(2.0) * resolution_;
  for (const geom::Obb& box : statics) {
    const geom::Obb fat = box.inflated(dilation);
    const geom::Aabb bb = fat.aabb();
    const int x0 = std::max(
        0, static_cast<int>(std::floor((bb.min.x - origin_.x) / resolution_)));
    const int y0 = std::max(
        0, static_cast<int>(std::floor((bb.min.y - origin_.y) / resolution_)));
    const int x1 = std::min(
        width_ - 1,
        static_cast<int>(std::ceil((bb.max.x - origin_.x) / resolution_)));
    const int y1 = std::min(
        height_ - 1,
        static_cast<int>(std::ceil((bb.max.y - origin_.y) / resolution_)));
    for (int iy = y0; iy <= y1; ++iy) {
      const double cy = origin_.y + (iy + 0.5) * resolution_;
      for (int ix = x0; ix <= x1; ++ix) {
        const double cx = origin_.x + (ix + 0.5) * resolution_;
        if (fat.contains({cx, cy}))
          occupied[static_cast<std::size_t>(iy) * width_ + ix] = 1;
      }
    }
  }
  build_edt(occupied);
}

DistanceField DistanceField::from_raster(
    geom::Vec2 origin, int width, int height, double resolution,
    const std::vector<std::uint8_t>& occupied) {
  DistanceField field;
  field.resolution_ = std::max(1e-3, resolution);
  field.slack_ = std::sqrt(2.0) * field.resolution_;
  field.origin_ = origin;
  field.width_ = std::max(0, width);
  field.height_ = std::max(0, height);
  field.build_edt(occupied);
  return field;
}

void DistanceField::build_edt(const std::vector<std::uint8_t>& occupied) {
  const std::size_t cells = static_cast<std::size_t>(width_) * height_;
  distance_.assign(cells, static_cast<float>(geom::kMaxClearance));
  occupied_.assign(cells, 0);
  for (std::size_t i = 0; i < cells && i < occupied.size(); ++i)
    occupied_[i] = occupied[i] != 0 ? 1 : 0;
  any_occupied_ = false;
  for (std::size_t i = 0; i < cells; ++i)
    if (occupied_[i] != 0) {
      any_occupied_ = true;
      break;
    }
  if (!any_occupied_) return;

  // Two-pass exact EDT over squared distances in cell units: columns first,
  // then rows of the column result.
  std::vector<double> sq(cells);
  const int n = std::max(width_, height_);
  std::vector<double> f(n), d(n), z(n + 1);
  std::vector<int> v(n);

  for (int ix = 0; ix < width_; ++ix) {
    for (int iy = 0; iy < height_; ++iy)
      f[iy] = occupied[static_cast<std::size_t>(iy) * width_ + ix] != 0
                  ? 0.0
                  : kInfSq;
    edt_1d(f.data(), d.data(), v.data(), z.data(), height_);
    for (int iy = 0; iy < height_; ++iy)
      sq[static_cast<std::size_t>(iy) * width_ + ix] = d[iy];
  }
  for (int iy = 0; iy < height_; ++iy) {
    double* row = sq.data() + static_cast<std::size_t>(iy) * width_;
    std::copy(row, row + width_, f.data());
    edt_1d(f.data(), d.data(), v.data(), z.data(), width_);
    for (int ix = 0; ix < width_; ++ix)
      row[ix] = d[ix];
  }

  for (std::size_t i = 0; i < cells; ++i)
    distance_[i] = static_cast<float>(
        std::min(std::sqrt(sq[i]) * resolution_, geom::kMaxClearance));
}

double DistanceField::point_clearance(geom::Vec2 p) const {
  if (empty() || !any_occupied_) return geom::kMaxClearance;
  const int ix = static_cast<int>(std::floor((p.x - origin_.x) / resolution_));
  const int iy = static_cast<int>(std::floor((p.y - origin_.y) / resolution_));
  if (ix < 0 || ix >= width_ || iy < 0 || iy >= height_) return 0.0;
  const double d = cell_distance(ix, iy);
  if (d >= geom::kMaxClearance) return geom::kMaxClearance;
  return std::max(0.0, d - slack_);
}

double DistanceField::clearance(const geom::Obb& fp) const {
  if (empty() || !any_occupied_) return geom::kMaxClearance;
  // Cover the box with K discs along its long local axis: slab half-length
  // d <= half-width/2 keeps the radius overshoot (r - hw) under ~12% of the
  // half width, so the bound stays tight enough for the fallback band.
  double hl = fp.half_length;
  double hw = fp.half_width;
  double axis_heading = fp.heading;
  if (hw > hl) {
    std::swap(hl, hw);
    axis_heading += geom::kPi / 2.0;
  }
  const int k = std::clamp(
      static_cast<int>(std::ceil(2.0 * hl / std::max(hw, 1e-6))), 1, 32);
  const double d = hl / k;
  const double r = std::sqrt(d * d + hw * hw);
  const geom::Vec2 axis{std::cos(axis_heading), std::sin(axis_heading)};

  double best = geom::kMaxClearance;
  for (int i = 0; i < k; ++i) {
    const geom::Vec2 c = fp.center + axis * (-hl + (2 * i + 1) * d);
    const double pc = point_clearance(c);
    if (pc >= geom::kMaxClearance) continue;
    best = std::min(best, pc - r);
    if (best <= 0.0) return 0.0;
  }
  if (best >= geom::kMaxClearance) return geom::kMaxClearance;
  return std::max(0.0, best);
}

DistanceField::ClearanceBounds DistanceField::clearance_bounds(
    const geom::Obb& fp) const {
  ClearanceBounds bounds;
  if (empty() || !any_occupied_) return bounds;
  double hl = fp.half_length;
  double hw = fp.half_width;
  double axis_heading = fp.heading;
  if (hw > hl) {
    std::swap(hl, hw);
    axis_heading += geom::kPi / 2.0;
  }
  const int k = std::clamp(
      static_cast<int>(std::ceil(2.0 * hl / std::max(hw, 1e-6))), 1, 32);
  const double d = hl / k;
  const double r = std::sqrt(d * d + hw * hw);
  const geom::Vec2 axis{std::cos(axis_heading), std::sin(axis_heading)};
  // Upper-bound slack: in-cell quantization of the disc centre (half cell
  // diagonal) + the marked cell centre's own distance to the true obstacle
  // (the raster dilation's worst corner, one full cell).
  const double upper_slack = (0.5 * std::sqrt(2.0) + 1.0) * resolution_;

  double lo = geom::kMaxClearance;
  double hi = geom::kMaxClearance;
  for (int i = 0; i < k; ++i) {
    const geom::Vec2 c = fp.center + axis * (-hl + (2 * i + 1) * d);
    const int ix =
        static_cast<int>(std::floor((c.x - origin_.x) / resolution_));
    const int iy =
        static_cast<int>(std::floor((c.y - origin_.y) / resolution_));
    if (ix < 0 || ix >= width_ || iy < 0 || iy >= height_) {
      lo = 0.0;  // unknown territory: no lower-bound claim, no upper info
      continue;
    }
    const double dist = cell_distance(ix, iy);
    if (dist >= geom::kMaxClearance) continue;
    lo = std::min(lo, dist - slack_ - r);
    hi = std::min(hi, dist + upper_slack);
  }
  bounds.lower = lo >= geom::kMaxClearance ? geom::kMaxClearance
                                           : std::max(0.0, lo);
  bounds.upper = hi;
  return bounds;
}

}  // namespace icoil::world
