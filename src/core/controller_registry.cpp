#include "core/controller_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace icoil::core {

namespace {

std::string join_keys(const std::vector<std::string>& keys) {
  std::string out;
  for (const std::string& k : keys) {
    if (!out.empty()) out += ", ";
    out += k;
  }
  return out;
}

}  // namespace

ControllerRegistry::ControllerRegistry() {
  add({"icoil", "iCOIL", "HSA-switched hybrid of IL and CO (the paper's method)",
       /*needs_policy=*/true, [](const ControllerBuildArgs& args) {
         return std::make_unique<IcoilController>(
             args.icoil != nullptr ? *args.icoil : IcoilConfig{}, *args.policy);
       }});
  add({"icoil-safe", "iCOIL+guard",
       "iCOIL with the forward-simulation safety guard on IL frames",
       /*needs_policy=*/true, [](const ControllerBuildArgs& args) {
         IcoilConfig config = args.icoil != nullptr ? *args.icoil : IcoilConfig{};
         config.safety.enabled = true;
         return std::make_unique<IcoilController>(config, *args.policy);
       }});
  add({"il", "IL [2]", "pure imitation-learning baseline (BEV DNN every frame)",
       /*needs_policy=*/true, [](const ControllerBuildArgs& args) {
         return std::make_unique<IlController>(*args.policy);
       }});
  add({"co", "CO (ref)",
       "pure constrained-optimization baseline (hybrid-A* + SQP MPC)",
       /*needs_policy=*/false, [](const ControllerBuildArgs& args) {
         return std::make_unique<CoController>(
             args.co != nullptr ? *args.co : co::CoPlannerConfig{},
             args.vehicle);
       }});
  add({"co-fast", "CO (fast)",
       "CO with a shortened MPC horizon and fewer SQP rounds for tight frames",
       /*needs_policy=*/false, [](const ControllerBuildArgs& args) {
         co::CoPlannerConfig config =
             args.co != nullptr ? *args.co : co::CoPlannerConfig{};
         config.trajopt.horizon = 10;
         config.trajopt.sqp_iterations = 2;
         return std::make_unique<CoController>(config, args.vehicle);
       }});
}

ControllerRegistry& ControllerRegistry::instance() {
  static ControllerRegistry registry;
  return registry;
}

void ControllerRegistry::add(ControllerSpec spec) {
  for (ControllerSpec& existing : specs_) {
    if (existing.key == spec.key) {
      existing = std::move(spec);
      return;
    }
  }
  specs_.push_back(std::move(spec));
}

const ControllerSpec* ControllerRegistry::find(const std::string& key) const {
  for (const ControllerSpec& spec : specs_)
    if (spec.key == key) return &spec;
  return nullptr;
}

const ControllerSpec& ControllerRegistry::at(const std::string& key) const {
  const ControllerSpec* spec = find(key);
  if (spec == nullptr)
    throw std::invalid_argument("unknown controller \"" + key +
                                "\" (known: " + join_keys(keys()) + ")");
  return *spec;
}

std::vector<std::string> ControllerRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const ControllerSpec& spec : specs_) out.push_back(spec.key);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// The one lookup + policy-requirement check behind build() and factory().
const ControllerSpec& validated(const ControllerRegistry& registry,
                                const std::string& key,
                                const ControllerBuildArgs& args) {
  const ControllerSpec& spec = registry.at(key);
  if (spec.needs_policy && args.policy == nullptr)
    throw std::invalid_argument("controller \"" + key +
                                "\" needs a trained IL policy "
                                "(ControllerBuildArgs::policy is null)");
  return spec;
}

}  // namespace

std::unique_ptr<Controller> ControllerRegistry::build(
    const std::string& key, ControllerBuildArgs args) const {
  return validated(*this, key, args).build(args);
}

ControllerFactory ControllerRegistry::factory(const std::string& key,
                                              ControllerBuildArgs args) const {
  const ControllerSpec& spec = validated(*this, key, args);
  // The factory is invoked from pool workers long after the caller's config
  // locals are gone: own copies of the overrides, not pointers into them.
  const auto icoil_copy =
      args.icoil != nullptr ? std::make_shared<IcoilConfig>(*args.icoil)
                            : nullptr;
  const auto co_copy = args.co != nullptr
                           ? std::make_shared<co::CoPlannerConfig>(*args.co)
                           : nullptr;
  return [build = spec.build, policy = args.policy, icoil_copy, co_copy,
          vehicle = args.vehicle] {
    ControllerBuildArgs built;
    built.policy = policy;
    built.icoil = icoil_copy.get();
    built.co = co_copy.get();
    built.vehicle = vehicle;
    return build(built);
  };
}

}  // namespace icoil::core
