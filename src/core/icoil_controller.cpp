#include "core/icoil_controller.hpp"

#include <chrono>

#include "il/observation.hpp"

namespace icoil::core {

IcoilController::IcoilController(IcoilConfig config,
                                 const il::IlPolicy& trained_policy)
    : config_(config), policy_(trained_policy.clone()),
      rasterizer_(trained_policy.bev_spec()),
      planner_(config.co, config.vehicle), hsa_(config.hsa),
      switcher_(config.hsa, Mode::kCo),
      safety_(config.safety, config.vehicle), model_(config.vehicle) {}

void IcoilController::reset(const world::Scenario& scenario) {
  noise_ = std::make_unique<sense::ImageNoise>(scenario.noise);
  detector_ = std::make_unique<sense::Detector>(scenario.noise);
  hsa_.reset();
  switcher_.reset(Mode::kCo);
  safety_.reset();
  frame_ = {};

  // Planning deferred to the first act() so hybrid-A* runs under that
  // frame's budget context.
  std::vector<geom::Obb> static_boxes;
  for (const world::Obstacle& o : scenario.obstacles)
    if (!o.dynamic()) static_boxes.push_back(o.shape);
  planner_.defer_reference(scenario.start_pose, scenario.map.goal_pose,
                           std::move(static_boxes), scenario.map.bounds);
}

sense::BevImage IcoilController::sense(const world::World& world,
                                       const vehicle::State& state,
                                       FrameContext& frame) {
  sense::BevImage bev = rasterizer_.render(world, state.pose);
  if (noise_) noise_->apply(bev, frame.rng());
  return bev;
}

vehicle::Command IcoilController::act(const world::World& world,
                                      const vehicle::State& state,
                                      FrameContext& frame) {
  const auto t0 = std::chrono::steady_clock::now();

  // Plan the deferred reference up front, not on the CO branch: it must
  // exist whichever mode wins this frame, or the first CO takeover after an
  // IL start would pay the full search mid-episode.
  planner_.set_distance_field(world.distance_field());
  planner_.ensure_reference(&frame);

  // (a) IL inference — always runs; HSA needs the output distribution.
  const sense::BevImage bev = sense(world, state, frame);
  const il::Inference inf =
      policy_->infer(il::make_observation(bev, state.speed));

  return finish_frame(world, state, frame, inf, t0);
}

void IcoilController::stage(const world::World& world,
                            const vehicle::State& state, FrameContext& frame,
                            il::BatchInferencer& service) {
  stage_t0_ = std::chrono::steady_clock::now();
  planner_.set_distance_field(world.distance_field());
  planner_.ensure_reference(&frame);
  const sense::BevImage bev = sense(world, state, frame);
  slot_ = service.submit(il::make_observation(bev, state.speed));
}

vehicle::Command IcoilController::commit(const world::World& world,
                                         const vehicle::State& state,
                                         FrameContext& frame,
                                         const il::BatchInferencer& service) {
  return finish_frame(world, state, frame, service.result(slot_), stage_t0_);
}

vehicle::Command IcoilController::finish_frame(
    const world::World& world, const vehicle::State& state,
    FrameContext& frame, const il::Inference& inf,
    std::chrono::steady_clock::time_point t0) {
  // (b) Obstacle distances for the complexity model (eq. 8).
  const auto detections =
      detector_->detect(world, state.pose.position, frame.rng());
  const geom::Obb ego = model_.footprint(state);
  std::vector<double> distances;
  distances.reserve(detections.size());
  for (const sense::Detection& d : detections)
    distances.push_back(geom::obb_distance(ego, d.box));

  // (c) Scenario analysis + guarded mode switch (eq. 1).
  hsa_.push(inf.entropy, distances);
  const Mode mode = switcher_.update(hsa_.ratio());

  // (d) Execute the selected working mode.
  vehicle::Command cmd;
  if (mode == Mode::kIl) {
    // Optional guard: veto IL actions whose short-horizon rollout collides.
    cmd = safety_.filter(world, state, inf.command);
  } else {
    cmd = planner_.act(state, detections, &frame);
  }

  frame_.mode = mode;
  frame_.entropy = inf.entropy;
  frame_.uncertainty = hsa_.uncertainty();
  frame_.complexity = hsa_.normalized_complexity();
  frame_.ratio = hsa_.ratio();
  frame_.command = cmd;
  frame_.deadline_hit = frame.deadline_hit();
  frame_.solve_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return cmd;
}

}  // namespace icoil::core
