#pragma once

#include <chrono>
#include <memory>

#include "co/planner.hpp"
#include "core/batch_client.hpp"
#include "core/controller.hpp"
#include "core/hsa.hpp"
#include "core/safety.hpp"
#include "il/policy.hpp"
#include "sensing/bev.hpp"
#include "sensing/detector.hpp"
#include "sensing/noise.hpp"

namespace icoil::core {

/// Top-level configuration of the iCOIL controller.
struct IcoilConfig {
  HsaConfig hsa;
  co::CoPlannerConfig co;
  vehicle::VehicleParams vehicle;
  /// Optional IL-mode safety guard (extension; disabled by default).
  SafetyConfig safety;
};

/// The paper's contribution: the scenario-aware hybrid controller. Every
/// frame it (a) runs the IL network to obtain the action distribution and
/// its entropy, (b) measures obstacle distances for the complexity model,
/// (c) lets HSA + the guard-time switcher choose the working mode (eq. 1),
/// and (d) executes either the IL action or the CO-optimized action.
///
/// Implements BatchClient: stage() covers the deferred reference plan plus
/// sensing (the image-noise RNG draw), commit() covers detection (the
/// detector RNG draws), HSA and mode execution — the same per-episode RNG
/// order as act(), so batched and unbatched episodes are bit-identical.
class IcoilController final : public Controller, public BatchClient {
 public:
  IcoilController(IcoilConfig config, const il::IlPolicy& trained_policy);

  std::string name() const override { return "iCOIL"; }
  void reset(const world::Scenario& scenario) override;
  using Controller::act;
  vehicle::Command act(const world::World& world, const vehicle::State& state,
                       FrameContext& frame) override;
  const FrameInfo& last_frame() const override { return frame_; }

  void stage(const world::World& world, const vehicle::State& state,
             FrameContext& frame, il::BatchInferencer& service) override;
  vehicle::Command commit(const world::World& world,
                          const vehicle::State& state, FrameContext& frame,
                          const il::BatchInferencer& service) override;

  const Hsa& hsa() const { return hsa_; }
  Mode mode() const { return switcher_.mode(); }
  co::CoPlanner& planner() { return planner_; }
  const SafetyMonitor& safety() const { return safety_; }

 private:
  sense::BevImage sense(const world::World& world, const vehicle::State& state,
                        FrameContext& frame);
  vehicle::Command finish_frame(const world::World& world,
                                const vehicle::State& state,
                                FrameContext& frame, const il::Inference& inf,
                                std::chrono::steady_clock::time_point t0);

  IcoilConfig config_;
  std::unique_ptr<il::IlPolicy> policy_;
  sense::BevRasterizer rasterizer_;
  std::unique_ptr<sense::ImageNoise> noise_;
  std::unique_ptr<sense::Detector> detector_;
  co::CoPlanner planner_;
  Hsa hsa_;
  ModeSwitcher switcher_;
  SafetyMonitor safety_;
  vehicle::BicycleModel model_;
  FrameInfo frame_;
  std::size_t slot_ = 0;  ///< batch slot between stage() and commit()
  std::chrono::steady_clock::time_point stage_t0_;
};

}  // namespace icoil::core
