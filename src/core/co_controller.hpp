#pragma once

#include <memory>

#include "co/planner.hpp"
#include "core/controller.hpp"
#include "sensing/detector.hpp"

namespace icoil::core {

/// Pure constrained-optimization baseline: hybrid-A* reference + SQP MPC
/// every frame. Reliable but the slowest per-frame policy (section V-E
/// measures ~18 Hz vs IL's ~75 Hz).
class CoController final : public Controller {
 public:
  CoController(co::CoPlannerConfig config, vehicle::VehicleParams params);

  std::string name() const override { return "CO"; }
  void reset(const world::Scenario& scenario) override;
  vehicle::Command act(const world::World& world, const vehicle::State& state,
                       math::Rng& rng) override;
  const FrameInfo& last_frame() const override { return frame_; }

  co::CoPlanner& planner() { return planner_; }

 private:
  co::CoPlanner planner_;
  std::unique_ptr<sense::Detector> detector_;
  FrameInfo frame_;
};

}  // namespace icoil::core
