#pragma once

#include <memory>

#include "co/planner.hpp"
#include "core/controller.hpp"
#include "sensing/detector.hpp"

namespace icoil::core {

/// Pure constrained-optimization baseline: hybrid-A* reference + SQP MPC
/// every frame. Reliable but the slowest per-frame policy (section V-E
/// measures ~18 Hz vs IL's ~75 Hz).
///
/// The hybrid-A* reference is planned lazily on the FIRST act() frame, not
/// in reset(): planning is by far the heaviest single computation, and the
/// first frame's FrameContext lets its node expansions poll the per-frame
/// budget (falling back to Reeds-Shepp when it trips) instead of running
/// unbudgeted at episode setup.
class CoController final : public Controller {
 public:
  CoController(co::CoPlannerConfig config, vehicle::VehicleParams params);

  std::string name() const override { return "CO"; }
  void reset(const world::Scenario& scenario) override;
  using Controller::act;
  vehicle::Command act(const world::World& world, const vehicle::State& state,
                       FrameContext& frame) override;
  const FrameInfo& last_frame() const override { return frame_; }

  co::CoPlanner& planner() { return planner_; }

 private:
  co::CoPlanner planner_;
  std::unique_ptr<sense::Detector> detector_;
  FrameInfo frame_;
};

}  // namespace icoil::core
