#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace icoil::core {

/// Working modes of the iCOIL controller (eq. 1).
enum class Mode { kIl, kCo };

const char* to_string(Mode m);

/// HSA tuning. `lambda` applies to the normalized ratio U / (C / C_base)
/// where C_base = [H (Na + 1)]^{3.5} — the complexity of one obstacle held
/// at the most dangerous distance. The raw eq.-(8) value spans orders of
/// magnitude (power 3.5), so normalizing keeps lambda O(1) across levels;
/// the decision rule is unchanged (monotone rescaling of the threshold).
///
/// Obstacle-count scaling: eq. (8) sums e^{-|D0 - D_k|} over every detected
/// obstacle, so with K obstacles pinned at D0 the normalized complexity is
/// ((Na + K) / (Na + 1))^{3.5} — finite, strictly monotone in K, and
/// independent of the window size. Crowded generators (K >= 8) therefore
/// push the ratio toward IL smoothly rather than saturating or overflowing;
/// the generator-suite tests pin this behavior.
struct HsaConfig {
  int window = 20;        ///< T, frames averaged by eqs. (7)-(8)
  double lambda = 0.2;    ///< switching threshold of eq. (1)
  int guard_frames = 20;  ///< hold-off after a switch (section V-C)
  int horizon = 15;       ///< H of eq. (8) (the CO prediction horizon)
  int action_dim = 2;     ///< Na of eq. (8) (accel, steer)
  double d0 = 1.2;        ///< D0, most dangerous obstacle distance [m]
};

/// Hybrid scenario analysis (section IV-C): tracks the windowed scenario
/// uncertainty U_i (entropy of the IL softmax, eq. 7) and the windowed
/// scenario complexity C_i (CO solve-cost proxy, eq. 8).
class Hsa {
 public:
  explicit Hsa(HsaConfig config = {}) : config_(config) {}

  const HsaConfig& config() const { return config_; }

  void reset();

  /// Record one frame: the IL output entropy omega_i and the distances
  /// D_{i,k} from the ego to each detected obstacle.
  void push(double entropy, const std::vector<double>& obstacle_distances);

  /// Instantaneous complexity term [H (Na + sum_k e^{-|D0 - D_k|})]^{3.5}.
  double instant_complexity(const std::vector<double>& obstacle_distances) const;

  /// U_i — mean entropy over the last T frames (eq. 7).
  double uncertainty() const;
  /// C_i — mean complexity over the last T frames (eq. 8), raw scale.
  double complexity() const;
  /// C_i normalized by C_base (see HsaConfig).
  double normalized_complexity() const;
  /// f_HSA = U_i / C_i (normalized); large ratio -> CO mode.
  double ratio() const;
  /// Normalization constant C_base = [H (Na + 1)]^{3.5}.
  double complexity_base() const;

  std::size_t frames() const { return entropies_.size(); }

 private:
  HsaConfig config_;
  std::deque<double> entropies_;
  std::deque<double> complexities_;
};

/// Guard-time mode switcher implementing eq. (1): IL when the HSA ratio is
/// <= lambda, CO otherwise, with a hold-off of `guard_frames` after every
/// switch to smooth transitions.
class ModeSwitcher {
 public:
  /// Counter value meaning "no switch has happened yet": any sane
  /// guard_frames is far below it, so the first decision is never held
  /// back. The counter saturates here instead of incrementing forever, so
  /// arbitrarily long episodes cannot overflow it.
  static constexpr int kNeverSwitched = 1 << 20;

  explicit ModeSwitcher(const HsaConfig& config, Mode initial = Mode::kCo)
      : config_(config), mode_(initial) {}

  Mode mode() const { return mode_; }
  int frames_since_switch() const { return frames_since_switch_; }

  /// Advance one frame with the current HSA ratio; returns the active mode.
  Mode update(double ratio);

  void reset(Mode initial = Mode::kCo);

 private:
  HsaConfig config_;
  Mode mode_;
  int frames_since_switch_ = kNeverSwitched;
};

}  // namespace icoil::core
