#pragma once

#include "vehicle/kinematics.hpp"
#include "world/world.hpp"

namespace icoil::core {

/// Settings for the forward-simulation safety guard.
struct SafetyConfig {
  bool enabled = false;     ///< off by default: the paper's iCOIL has no guard
  double horizon = 1.2;     ///< seconds of look-ahead
  double dt = 0.1;          ///< rollout step
  double margin = 0.05;     ///< extra footprint inflation [m]
};

/// Optional safety monitor (an extension, not part of the paper's design):
/// forward-simulates a proposed command under the bicycle model and
/// overrides it with a full stop when the rollout collides within the
/// look-ahead horizon. This emulates the "bounded actions inside a safety
/// region" property the paper attributes to optimization-based methods and
/// can be layered over the IL working mode.
class SafetyMonitor {
 public:
  explicit SafetyMonitor(SafetyConfig config = {},
                         vehicle::VehicleParams params = {})
      : config_(config), model_(params) {}

  const SafetyConfig& config() const { return config_; }
  /// Number of commands overridden since construction/reset.
  int interventions() const { return interventions_; }
  void reset() { interventions_ = 0; }

  /// Returns `proposed` when its rollout is collision-free, otherwise a
  /// full-stop command.
  vehicle::Command filter(const world::World& world, const vehicle::State& state,
                          const vehicle::Command& proposed);

  /// True when holding `cmd` from `state` collides within the horizon.
  bool rollout_collides(const world::World& world, const vehicle::State& state,
                        const vehicle::Command& cmd) const;

 private:
  SafetyConfig config_;
  vehicle::BicycleModel model_;
  int interventions_ = 0;
};

}  // namespace icoil::core
