#pragma once

#include "core/frame_context.hpp"
#include "il/batch_inferencer.hpp"
#include "vehicle/kinematics.hpp"
#include "world/world.hpp"

namespace icoil::core {

/// Capability interface for controllers whose per-frame IL inference can be
/// batched across sessions. One control frame splits into stage() — sense,
/// build the observation, submit it to the shared il::BatchInferencer — and
/// commit() — everything after the inference, consuming the tick's batched
/// result. Both halves receive the SAME FrameContext, and together they
/// must consume episode RNG draws in exactly the order act() does, so a
/// batched episode replays its unbatched twin bit for bit.
class BatchClient {
 public:
  virtual ~BatchClient() = default;

  /// Pre-inference half of a frame: render/corrupt the observation and
  /// submit it. The controller remembers its submission slot internally.
  virtual void stage(const world::World& world, const vehicle::State& state,
                     FrameContext& frame, il::BatchInferencer& service) = 0;

  /// Post-inference half: read this frame's result back from the service
  /// (run_tick() must have happened since stage) and finish the frame.
  virtual vehicle::Command commit(const world::World& world,
                                  const vehicle::State& state,
                                  FrameContext& frame,
                                  const il::BatchInferencer& service) = 0;
};

}  // namespace icoil::core
