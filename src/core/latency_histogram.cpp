#include "core/latency_histogram.hpp"

#include <algorithm>

#include "mathkit/stats.hpp"

namespace icoil::core {

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_ = false;
}

void LatencyHistogram::sort() const {
  if (sorted_) return;
  std::sort(samples_.begin(), samples_.end());
  sorted_ = true;
}

double LatencyHistogram::percentile(double p) const {
  sort();
  return math::percentile_sorted(samples_, p);
}

LatencySummary LatencyHistogram::summary() const {
  LatencySummary s;
  s.count = samples_.size();
  if (samples_.empty()) return s;
  sort();
  s.mean_ms = mean();
  s.p50_ms = math::percentile_sorted(samples_, 50.0);
  s.p90_ms = math::percentile_sorted(samples_, 90.0);
  s.p99_ms = math::percentile_sorted(samples_, 99.0);
  s.max_ms = samples_.back();
  return s;
}

}  // namespace icoil::core
