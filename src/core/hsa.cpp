#include "core/hsa.hpp"

#include <cmath>

namespace icoil::core {

const char* to_string(Mode m) { return m == Mode::kIl ? "IL" : "CO"; }

void Hsa::reset() {
  entropies_.clear();
  complexities_.clear();
}

double Hsa::instant_complexity(const std::vector<double>& distances) const {
  double sum = 0.0;
  for (double d : distances) sum += std::exp(-std::abs(config_.d0 - d));
  const double base = config_.horizon * (config_.action_dim + sum);
  return std::pow(base, 3.5);
}

void Hsa::push(double entropy, const std::vector<double>& distances) {
  entropies_.push_back(entropy);
  complexities_.push_back(instant_complexity(distances));
  while (entropies_.size() > static_cast<std::size_t>(config_.window))
    entropies_.pop_front();
  while (complexities_.size() > static_cast<std::size_t>(config_.window))
    complexities_.pop_front();
}

double Hsa::uncertainty() const {
  if (entropies_.empty()) return 0.0;
  double acc = 0.0;
  for (double e : entropies_) acc += e;
  return acc / static_cast<double>(entropies_.size());
}

double Hsa::complexity() const {
  if (complexities_.empty()) return complexity_base();
  double acc = 0.0;
  for (double c : complexities_) acc += c;
  return acc / static_cast<double>(complexities_.size());
}

double Hsa::complexity_base() const {
  return std::pow(static_cast<double>(config_.horizon) * (config_.action_dim + 1),
                  3.5);
}

double Hsa::normalized_complexity() const {
  return complexity() / complexity_base();
}

double Hsa::ratio() const {
  const double c = normalized_complexity();
  return c > 1e-12 ? uncertainty() / c : 0.0;
}

Mode ModeSwitcher::update(double ratio) {
  if (frames_since_switch_ < kNeverSwitched) ++frames_since_switch_;
  const Mode desired = ratio > config_.lambda ? Mode::kCo : Mode::kIl;
  if (desired != mode_ && frames_since_switch_ >= config_.guard_frames) {
    mode_ = desired;
    frames_since_switch_ = 0;
  }
  return mode_;
}

void ModeSwitcher::reset(Mode initial) {
  mode_ = initial;
  frames_since_switch_ = kNeverSwitched;
}

}  // namespace icoil::core
