#include "core/il_controller.hpp"

#include <chrono>

#include "il/observation.hpp"

namespace icoil::core {

IlController::IlController(const il::IlPolicy& trained_policy)
    : policy_(trained_policy.clone()), rasterizer_(trained_policy.bev_spec()) {}

void IlController::reset(const world::Scenario& scenario) {
  noise_ = std::make_unique<sense::ImageNoise>(scenario.noise);
  frame_ = {};
  frame_.mode = Mode::kIl;
}

sense::BevImage IlController::sense(const world::World& world,
                                    const vehicle::State& state,
                                    FrameContext& frame) {
  sense::BevImage bev = rasterizer_.render(world, state.pose);
  if (noise_) noise_->apply(bev, frame.rng());
  return bev;
}

vehicle::Command IlController::finish_frame(
    const il::Inference& inf, std::chrono::steady_clock::time_point t0) {
  frame_.mode = Mode::kIl;
  frame_.entropy = inf.entropy;
  frame_.uncertainty = inf.entropy;
  frame_.complexity = 0.0;
  frame_.ratio = 0.0;
  frame_.command = inf.command;
  // One indivisible forward pass: nothing to degrade, so a deadline is
  // never reported hit here.
  frame_.deadline_hit = false;
  frame_.solve_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return inf.command;
}

vehicle::Command IlController::act(const world::World& world,
                                   const vehicle::State& state,
                                   FrameContext& frame) {
  const auto t0 = std::chrono::steady_clock::now();
  const sense::BevImage bev = sense(world, state, frame);
  const il::Inference inf =
      policy_->infer(il::make_observation(bev, state.speed));
  return finish_frame(inf, t0);
}

void IlController::stage(const world::World& world, const vehicle::State& state,
                         FrameContext& frame, il::BatchInferencer& service) {
  stage_t0_ = std::chrono::steady_clock::now();
  const sense::BevImage bev = sense(world, state, frame);
  slot_ = service.submit(il::make_observation(bev, state.speed));
}

vehicle::Command IlController::commit(const world::World&,
                                      const vehicle::State&, FrameContext&,
                                      const il::BatchInferencer& service) {
  // solve_ms spans stage-start to commit-end: under batching that includes
  // the shared forward's synchronization wall, which IS this frame's
  // latency — the throughput-for-latency trade the serve report documents.
  return finish_frame(service.result(slot_), stage_t0_);
}

}  // namespace icoil::core
