#include "core/il_controller.hpp"

#include <chrono>

#include "il/observation.hpp"

namespace icoil::core {

IlController::IlController(const il::IlPolicy& trained_policy)
    : policy_(trained_policy.clone()), rasterizer_(trained_policy.bev_spec()) {}

void IlController::reset(const world::Scenario& scenario) {
  noise_ = std::make_unique<sense::ImageNoise>(scenario.noise);
  frame_ = {};
  frame_.mode = Mode::kIl;
}

vehicle::Command IlController::act(const world::World& world,
                                   const vehicle::State& state,
                                   FrameContext& frame) {
  const auto t0 = std::chrono::steady_clock::now();
  sense::BevImage bev = rasterizer_.render(world, state.pose);
  if (noise_) noise_->apply(bev, frame.rng());
  const il::Inference inf =
      policy_->infer(il::make_observation(bev, state.speed));
  frame_.mode = Mode::kIl;
  frame_.entropy = inf.entropy;
  frame_.uncertainty = inf.entropy;
  frame_.complexity = 0.0;
  frame_.ratio = 0.0;
  frame_.command = inf.command;
  // One indivisible forward pass: nothing to degrade, so a deadline is
  // never reported hit here.
  frame_.deadline_hit = false;
  frame_.solve_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return inf.command;
}

}  // namespace icoil::core
