#include "core/co_controller.hpp"

#include <chrono>

namespace icoil::core {

CoController::CoController(co::CoPlannerConfig config,
                           vehicle::VehicleParams params)
    : planner_(config, params) {}

void CoController::reset(const world::Scenario& scenario) {
  detector_ = std::make_unique<sense::Detector>(scenario.noise);
  frame_ = {};
  frame_.mode = Mode::kCo;

  // Reference path avoids the obstacles' initial footprints; moving
  // obstacles are handled reactively by the MPC. Planning itself is
  // deferred to the first act() so its hybrid-A* expansions run under that
  // frame's budget context.
  std::vector<geom::Obb> static_boxes;
  for (const world::Obstacle& o : scenario.obstacles)
    if (!o.dynamic()) static_boxes.push_back(o.shape);
  planner_.defer_reference(scenario.start_pose, scenario.map.goal_pose,
                           std::move(static_boxes), scenario.map.bounds);
}

vehicle::Command CoController::act(const world::World& world,
                                   const vehicle::State& state,
                                   FrameContext& frame) {
  const auto t0 = std::chrono::steady_clock::now();
  // Borrow the world's distance field (grid backend; nullptr otherwise) so a
  // deferred hybrid-A* plan running this frame gets the O(1) fast path.
  planner_.set_distance_field(world.distance_field());
  const auto detections =
      detector_->detect(world, state.pose.position, frame.rng());
  const vehicle::Command cmd = planner_.act(state, detections, &frame);
  frame_.mode = Mode::kCo;
  frame_.command = cmd;
  frame_.deadline_hit = frame.deadline_hit();
  frame_.solve_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return cmd;
}

}  // namespace icoil::core
