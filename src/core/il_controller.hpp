#pragma once

#include <chrono>
#include <memory>

#include "core/batch_client.hpp"
#include "core/controller.hpp"
#include "il/policy.hpp"
#include "sensing/bev.hpp"
#include "sensing/noise.hpp"

namespace icoil::core {

/// The conventional pure-IL baseline of the paper's comparison ([2] in the
/// paper): a DNN maps the BEV image directly to a discretized action every
/// frame. Owns a private clone of the trained policy (network forward
/// passes cache activations and cannot be shared). Implements BatchClient:
/// the frame splits at the inference, with the single RNG draw site (image
/// noise) in stage(), so batched and unbatched episodes are bit-identical.
class IlController final : public Controller, public BatchClient {
 public:
  explicit IlController(const il::IlPolicy& trained_policy);

  std::string name() const override { return "IL"; }
  void reset(const world::Scenario& scenario) override;
  using Controller::act;
  vehicle::Command act(const world::World& world, const vehicle::State& state,
                       FrameContext& frame) override;
  const FrameInfo& last_frame() const override { return frame_; }

  void stage(const world::World& world, const vehicle::State& state,
             FrameContext& frame, il::BatchInferencer& service) override;
  vehicle::Command commit(const world::World& world,
                          const vehicle::State& state, FrameContext& frame,
                          const il::BatchInferencer& service) override;

  /// Direct access to the policy inference for tests.
  il::IlPolicy& policy() { return *policy_; }

 private:
  sense::BevImage sense(const world::World& world, const vehicle::State& state,
                        FrameContext& frame);
  vehicle::Command finish_frame(const il::Inference& inf,
                                std::chrono::steady_clock::time_point t0);

  std::unique_ptr<il::IlPolicy> policy_;
  sense::BevRasterizer rasterizer_;
  std::unique_ptr<sense::ImageNoise> noise_;
  FrameInfo frame_;
  std::size_t slot_ = 0;  ///< batch slot between stage() and commit()
  std::chrono::steady_clock::time_point stage_t0_;
};

}  // namespace icoil::core
