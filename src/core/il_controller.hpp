#pragma once

#include <memory>

#include "core/controller.hpp"
#include "il/policy.hpp"
#include "sensing/bev.hpp"
#include "sensing/noise.hpp"

namespace icoil::core {

/// The conventional pure-IL baseline of the paper's comparison ([2] in the
/// paper): a DNN maps the BEV image directly to a discretized action every
/// frame. Owns a private clone of the trained policy (network forward
/// passes cache activations and cannot be shared).
class IlController final : public Controller {
 public:
  explicit IlController(const il::IlPolicy& trained_policy);

  std::string name() const override { return "IL"; }
  void reset(const world::Scenario& scenario) override;
  using Controller::act;
  vehicle::Command act(const world::World& world, const vehicle::State& state,
                       FrameContext& frame) override;
  const FrameInfo& last_frame() const override { return frame_; }

  /// Direct access to the policy inference for tests.
  il::IlPolicy& policy() { return *policy_; }

 private:
  std::unique_ptr<il::IlPolicy> policy_;
  sense::BevRasterizer rasterizer_;
  std::unique_ptr<sense::ImageNoise> noise_;
  FrameInfo frame_;
};

}  // namespace icoil::core
