#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace icoil::core {

/// Cooperative cancellation handle shared between a task submitter and the
/// code running inside the task. Cancellation has two sources — an explicit
/// cancel() and an optional wall-clock deadline armed when the first task
/// holding the token starts — and is advisory: long-running code polls
/// cancelled() and unwinds on its own schedule. Self-contained so consumers
/// that only poll (e.g. the simulator loop) need none of the pool machinery.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Links `parent` so this token also reports cancelled once the parent
  /// does — pool-level cancellation: one shared abort token (e.g. a SIGINT
  /// handler's) fans into every per-cell token of a suite run. The parent
  /// must outlive this token; link before sharing across threads.
  void link_parent(const CancelToken* parent) noexcept {
    parent_.store(parent, std::memory_order_relaxed);
  }

  /// True once cancel() was called, an armed deadline has passed, or a
  /// linked parent token reports cancelled.
  bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (const CancelToken* parent = parent_.load(std::memory_order_relaxed);
        parent != nullptr && parent->cancelled()) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == 0) return false;
    if (std::chrono::steady_clock::now().time_since_epoch().count() < deadline)
      return false;
    cancelled_.store(true, std::memory_order_relaxed);
    return true;
  }

  /// Arms the wall-clock deadline `budget_seconds` from now — once: later
  /// calls keep the first deadline, so a token shared by a group of tasks
  /// (e.g. every episode of one suite cell) starts its budget when the
  /// group's first task starts. `budget_seconds <= 0` never arms.
  void arm_deadline_once(double budget_seconds) noexcept {
    if (budget_seconds <= 0.0) return;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(budget_seconds));
    std::int64_t expected = 0;
    deadline_ns_.compare_exchange_strong(
        expected, deadline.time_since_epoch().count(),
        std::memory_order_relaxed);
  }

  bool deadline_armed() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  ///< steady_clock ns; 0 = none
  std::atomic<const CancelToken*> parent_{nullptr};
};

}  // namespace icoil::core
