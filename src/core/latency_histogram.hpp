#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace icoil::core {

/// Five-number latency digest (count/mean/p50/p90/p99/max, milliseconds):
/// the serialization-friendly snapshot a LatencyHistogram folds down to.
/// This is THE latency-summary shape — sim::RunReport serve blocks carry it,
/// serve::Frontend produces it, bench tables print it.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Exact-sample latency accumulator with interpolated percentiles — the one
/// place per-frame/queue-time latency math lives (previously ad-hoc
/// percentile folds copied into each serving driver). Samples are kept
/// verbatim (a serving run is at most a few million doubles) so percentiles
/// are exact and merge() loses nothing; the sort is lazy and cached.
/// Not thread-safe: accumulate per worker, merge() on the fold.
class LatencyHistogram {
 public:
  void reserve(std::size_t n) { samples_.reserve(n); }

  void add(double ms) {
    samples_.push_back(ms);
    sum_ += ms;
    sorted_ = false;
  }

  void merge(const LatencyHistogram& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const {
    return samples_.empty() ? 0.0
                            : sum_ / static_cast<double>(samples_.size());
  }

  /// Interpolated percentile, p in [0, 100]; 0 when empty.
  double percentile(double p) const;

  LatencySummary summary() const;

 private:
  void sort() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

}  // namespace icoil::core
