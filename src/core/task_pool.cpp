#include "core/task_pool.hpp"

#include <utility>

namespace icoil::core {

TaskPool::TaskPool(int workers)
    : default_token_(std::make_shared<CancelToken>()) {
  const int n = std::max(1, workers);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t)
    threads_.emplace_back([this, t] { worker_loop(t); });
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& th : threads_) th.join();
}

void TaskPool::submit(Task task) {
  submit(std::move(task), default_token_, 0.0);
}

void TaskPool::submit(Task task, double budget_seconds) {
  submit(std::move(task), std::make_shared<CancelToken>(), budget_seconds);
}

void TaskPool::submit(Task task, std::shared_ptr<CancelToken> token,
                      double budget_seconds) {
  if (!token) token = default_token_;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back({std::move(task), std::move(token), budget_seconds});
  }
  work_cv_.notify_one();
}

void TaskPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void TaskPool::worker_loop(int index) {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // queued-but-unstarted tasks are dropped on stop
      item = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }

    // The budget clock starts when the task starts, not when it was queued.
    item.token->arm_deadline_once(item.budget_seconds);
    Context ctx;
    ctx.worker = index;
    ctx.token = item.token.get();
    try {
      item.task(ctx);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace icoil::core
