#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "co/planner.hpp"
#include "core/co_controller.hpp"
#include "core/controller.hpp"
#include "core/icoil_controller.hpp"
#include "core/il_controller.hpp"

namespace icoil::core {

/// Everything a registered method may consume when it builds a controller.
/// `policy` must outlive any controller (and factory) built from it; the
/// config pointers are optional overrides consulted at build time (nullptr
/// means the spec's own defaults) and are copied into factories, so they
/// only need to live through the registry call itself.
struct ControllerBuildArgs {
  const il::IlPolicy* policy = nullptr;  ///< required when spec needs_policy
  const IcoilConfig* icoil = nullptr;    ///< override for iCOIL-family specs
  const co::CoPlannerConfig* co = nullptr;  ///< override for CO-family specs
  vehicle::VehicleParams vehicle;
};

/// One registered driving method: a stable string key, the label printed in
/// tables/reports, a one-line description for --list-methods, and the build
/// function.
struct ControllerSpec {
  std::string key;           ///< registry key ("icoil", "co-fast", ...)
  std::string display_name;  ///< table/report label ("iCOIL", "CO (ref)")
  std::string description;   ///< one-liner for discovery listings
  bool needs_policy = false; ///< true when build() dereferences args.policy
  std::function<std::unique_ptr<Controller>(const ControllerBuildArgs&)> build;
};

/// Process-wide, string-keyed registry of driving methods — the controller
/// mirror of world::GeneratorRegistry. The built-in methods (icoil, il, co,
/// plus config-overridden variants) are registered on first access;
/// applications may `add` their own (or replace built-ins by reusing a key)
/// before evaluation starts. Registration must happen before concurrent
/// use; lookups are read-only afterwards and safe to share across worker
/// threads.
class ControllerRegistry {
 public:
  static ControllerRegistry& instance();

  /// Register `spec` under spec.key, replacing any previous entry.
  void add(ControllerSpec spec);

  /// Look up by key; nullptr when unknown.
  const ControllerSpec* find(const std::string& key) const;

  /// Look up by key; throws std::invalid_argument naming the known keys
  /// when unknown (the error every CLI surfaces verbatim).
  const ControllerSpec& at(const std::string& key) const;

  /// Registered keys in sorted order.
  std::vector<std::string> keys() const;

  std::size_t size() const { return specs_.size(); }

  /// Build one controller now. Throws std::invalid_argument for an unknown
  /// key or when the spec needs a policy and args.policy is null.
  std::unique_ptr<Controller> build(const std::string& key,
                                    ControllerBuildArgs args = {}) const;

  /// A ControllerFactory for the evaluator/session fan-outs: validates the
  /// key and policy requirement NOW (on the calling thread, so a misconfig
  /// fails fast instead of inside a worker) and copies the config overrides
  /// into the closure. args.policy must outlive the returned factory.
  ControllerFactory factory(const std::string& key,
                            ControllerBuildArgs args = {}) const;

 private:
  ControllerRegistry();  // seeds the built-in methods

  std::vector<ControllerSpec> specs_;
};

}  // namespace icoil::core
