#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/frame_context.hpp"
#include "core/hsa.hpp"
#include "mathkit/rng.hpp"
#include "vehicle/kinematics.hpp"
#include "world/world.hpp"

namespace icoil::core {

/// Per-frame telemetry a controller exposes after each act() call — the
/// series plotted in Figs 5 and 7.
struct FrameInfo {
  Mode mode = Mode::kCo;
  double entropy = 0.0;       ///< omega_i, instant IL softmax entropy
  double uncertainty = 0.0;   ///< U_i (eq. 7)
  double complexity = 0.0;    ///< normalized C_i (eq. 8)
  double ratio = 0.0;         ///< f_HSA = U_i / C_i
  vehicle::Command command;
  double solve_ms = 0.0;      ///< wall time spent in this act() call
  /// True when this frame's FrameContext deadline tripped and the
  /// controller returned a best-so-far (degraded) command.
  bool deadline_hit = false;
};

/// Driving-policy interface shared by the iCOIL controller and the pure IL
/// / pure CO baselines. One controller instance drives one episode at a
/// time (controllers hold per-episode state such as reference paths and
/// HSA windows) and is not thread-safe across episodes.
class Controller {
 public:
  virtual ~Controller() = default;

  virtual std::string name() const = 0;

  /// Prepare for a new episode of `scenario` (plan references, configure
  /// sensor noise, clear windows).
  virtual void reset(const world::Scenario& scenario) = 0;

  /// Produce the driving command for the current frame. `frame` carries the
  /// episode RNG plus this frame's wall-clock budget and cancellation
  /// handle; budget-aware controllers poll frame.expired() inside their
  /// inner loops and return best-so-far commands when it trips.
  virtual vehicle::Command act(const world::World& world,
                               const vehicle::State& state,
                               FrameContext& frame) = 0;

  /// Convenience for callers without budget plumbing (tests, probes,
  /// micro-benchmarks): wraps `rng` in an unlimited FrameContext. Concrete
  /// controllers re-export it with `using Controller::act;`.
  vehicle::Command act(const world::World& world, const vehicle::State& state,
                       math::Rng& rng) {
    FrameContext frame(rng);
    return act(world, state, frame);
  }

  /// Telemetry of the most recent act() call.
  virtual const FrameInfo& last_frame() const = 0;
};

/// Factory used by the multi-threaded evaluator to build one controller per
/// worker (controllers are stateful and not shareable).
using ControllerFactory = std::function<std::unique_ptr<Controller>()>;

}  // namespace icoil::core
