#include "core/safety.hpp"

#include <cmath>

#include "geom/broadphase.hpp"

namespace icoil::core {

bool SafetyMonitor::rollout_collides(const world::World& world,
                                     const vehicle::State& state,
                                     const vehicle::Command& cmd) const {
  vehicle::State s = state;
  const int steps =
      std::max(1, static_cast<int>(std::ceil(config_.horizon / config_.dt)));
  for (int i = 1; i <= steps; ++i) {
    s = model_.step(s, cmd, config_.dt);
    const double t = world.time() + i * config_.dt;
    const geom::Obb fp = model_.footprint(s).inflated(config_.margin);
    // Statics hold still over the rollout: the world's backend-aware query
    // reuses its broad-phase cache (and, under the grid backend, the
    // distance field's O(1) certainly-free fast path).
    if (world.static_collision(fp)) return true;
    // Dynamic obstacles move during the rollout: check predicted footprints.
    const geom::Aabb fp_bb = fp.aabb();
    for (std::size_t idx : world.dynamic_obstacle_indices()) {
      const geom::Obb box = world.scenario().obstacles[idx].footprint_at(t);
      if (!fp_bb.overlaps(box.aabb())) continue;
      if (geom::overlaps(fp, box)) return true;
    }
    for (const geom::Vec2& c : fp.corners())
      if (!world.map().bounds.contains(c)) return true;
  }
  return false;
}

vehicle::Command SafetyMonitor::filter(const world::World& world,
                                       const vehicle::State& state,
                                       const vehicle::Command& proposed) {
  if (!config_.enabled) return proposed;
  if (!rollout_collides(world, state, proposed)) return proposed;
  ++interventions_;
  return vehicle::Command::full_stop();
}

}  // namespace icoil::core
