#include "core/safety.hpp"

#include <cmath>

namespace icoil::core {

bool SafetyMonitor::rollout_collides(const world::World& world,
                                     const vehicle::State& state,
                                     const vehicle::Command& cmd) const {
  vehicle::State s = state;
  const int steps =
      std::max(1, static_cast<int>(std::ceil(config_.horizon / config_.dt)));
  for (int i = 1; i <= steps; ++i) {
    s = model_.step(s, cmd, config_.dt);
    const double t = world.time() + i * config_.dt;
    const geom::Obb fp = model_.footprint(s).inflated(config_.margin);
    // Obstacles move during the rollout: check against predicted footprints.
    for (const world::Obstacle& o : world.scenario().obstacles)
      if (geom::overlaps(fp, o.footprint_at(t))) return true;
    for (const geom::Vec2& c : fp.corners())
      if (!world.map().bounds.contains(c)) return true;
  }
  return false;
}

vehicle::Command SafetyMonitor::filter(const world::World& world,
                                       const vehicle::State& state,
                                       const vehicle::Command& proposed) {
  if (!config_.enabled) return proposed;
  if (!rollout_collides(world, state, proposed)) return proposed;
  ++interventions_;
  return vehicle::Command::full_stop();
}

}  // namespace icoil::core
