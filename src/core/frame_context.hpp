#pragma once

#include <chrono>

#include "core/cancel_token.hpp"
#include "mathkit/rng.hpp"

namespace icoil::core {

/// Per-frame execution context handed to Controller::act: the episode RNG,
/// an optional episode-level CancelToken, and an optional wall-clock budget
/// for THIS control frame. Budgets are advisory: long-running code inside a
/// controller (hybrid-A* expansions, SQP rounds) polls expired() and
/// returns its best-so-far answer instead of blowing the frame, so one slow
/// frame degrades gracefully rather than eating the episode budget. The
/// clock starts at construction; a context is one frame's, not reusable.
class FrameContext {
 public:
  explicit FrameContext(math::Rng& rng, const CancelToken* cancel = nullptr,
                        double deadline_ms = 0.0)
      : rng_(&rng), cancel_(cancel), deadline_ms_(deadline_ms),
        start_(std::chrono::steady_clock::now()) {}

  FrameContext(const FrameContext&) = delete;
  FrameContext& operator=(const FrameContext&) = delete;

  math::Rng& rng() const { return *rng_; }
  const CancelToken* cancel_token() const { return cancel_; }

  bool has_deadline() const { return deadline_ms_ > 0.0; }
  double deadline_ms() const { return deadline_ms_; }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// True once the frame budget is exhausted or the episode token tripped.
  /// Polling is what arms the sticky deadline_hit() flag, so controllers
  /// that never poll never report a hit (they never promised to degrade).
  bool expired() const {
    if (deadline_ms_ > 0.0 && elapsed_ms() >= deadline_ms_) {
      deadline_hit_ = true;
      return true;
    }
    return cancel_ != nullptr && cancel_->cancelled();
  }

  /// True when a poll ever observed the frame deadline exhausted (episode
  /// cancellation does not count — that ends the episode, not the frame).
  bool deadline_hit() const { return deadline_hit_; }

 private:
  math::Rng* rng_;
  const CancelToken* cancel_;
  double deadline_ms_;
  std::chrono::steady_clock::time_point start_;
  mutable bool deadline_hit_ = false;
};

}  // namespace icoil::core
