#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cancel_token.hpp"

namespace icoil::core {

/// Persistent shared-queue worker pool: the one execution runtime behind the
/// evaluator, the expert recorder and the IL trainer. Workers pull tasks
/// FIFO from a single queue (a slow task never serializes the rest), each
/// task sees a stable worker index (for per-worker state such as controller
/// clones) and a CancelToken that trips when the task's wall-clock budget
/// runs out. wait_idle() is the barrier between submission waves, so one
/// pool can serve many rounds (e.g. one per training batch).
class TaskPool {
 public:
  /// What a running task gets to see.
  struct Context {
    int worker = 0;             ///< stable worker index in [0, size())
    const CancelToken* token = nullptr;  ///< never null inside a task
    bool cancelled() const { return token->cancelled(); }
  };
  using Task = std::function<void(const Context&)>;

  /// The one canonical pool-sizing rule (previously copied, with drift,
  /// into evaluator/expert/trainer): an explicit `requested` width wins;
  /// otherwise hardware concurrency bounded by `cap` (the cap tames the
  /// hardware-derived default, it does not override a deliberate request).
  /// Either way never wider than `jobs`, and always at least one.
  static int recommended_workers(int requested, int jobs, int cap) {
    const int hw =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    const int width =
        requested > 0 ? requested : std::min(hw, std::max(1, cap));
    return std::max(1, std::min(width, std::max(1, jobs)));
  }

  explicit TaskPool(int workers);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueue a task. With `budget_seconds > 0` the token's deadline is
  /// armed when a worker picks the task up (not at submission), so queue
  /// wait does not eat the budget. A shared `token` lets several tasks form
  /// one cancellation group with one collective budget.
  void submit(Task task);
  void submit(Task task, double budget_seconds);
  void submit(Task task, std::shared_ptr<CancelToken> token,
              double budget_seconds = 0.0);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task threw (if one did). The pool is reusable
  /// afterwards.
  void wait_idle();

 private:
  struct Item {
    Task task;
    std::shared_ptr<CancelToken> token;
    double budget_seconds = 0.0;
  };

  void worker_loop(int index);

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers: queue non-empty or stop
  std::condition_variable idle_cv_;   ///< wait_idle: queue drained
  std::deque<Item> queue_;            ///< guarded by mutex_
  std::size_t in_flight_ = 0;         ///< guarded by mutex_
  bool stop_ = false;                 ///< guarded by mutex_
  std::exception_ptr first_error_;    ///< guarded by mutex_
  std::shared_ptr<CancelToken> default_token_;  ///< for budget-less tasks
  std::vector<std::thread> threads_;
};

}  // namespace icoil::core
