#include "co/refpath.hpp"

#include <algorithm>

namespace icoil::co {

RefPath::RefPath(std::vector<PathPoint> points) : points_(std::move(points)) {
  // Recompute cumulative arc length so constructors don't need to.
  double s = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i > 0)
      s += geom::distance(points_[i - 1].pose.position, points_[i].pose.position);
    points_[i].s = s;
  }
}

std::size_t RefPath::nearest_index(geom::Vec2 p, std::size_t hint,
                                   std::size_t window) const {
  if (points_.empty()) return 0;
  const std::size_t begin = std::min(hint, points_.size() - 1);
  const std::size_t end =
      window == static_cast<std::size_t>(-1)
          ? points_.size()
          : std::min(points_.size(), begin + window);
  std::size_t best = begin;
  double best_d = geom::distance_sq(points_[begin].pose.position, p);
  for (std::size_t i = begin + 1; i < end; ++i) {
    const double d = geom::distance_sq(points_[i].pose.position, p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

std::size_t RefPath::index_at_arc(double s) const {
  if (points_.empty()) return 0;
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), s,
      [](const PathPoint& p, double value) { return p.s < value; });
  if (it == points_.end()) return points_.size() - 1;
  return static_cast<std::size_t>(it - points_.begin());
}

int RefPath::num_direction_switches() const {
  int switches = 0;
  for (std::size_t i = 1; i < points_.size(); ++i)
    if (points_[i].direction != points_[i - 1].direction) ++switches;
  return switches;
}

}  // namespace icoil::co
