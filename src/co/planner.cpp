#include "co/planner.hpp"

#include <algorithm>
#include <cmath>

#include "geom/angles.hpp"

namespace icoil::co {

CoPlanner::CoPlanner(CoPlannerConfig config, vehicle::VehicleParams params)
    : config_(config), params_(params), model_(params),
      trajopt_(config.trajopt, params), astar_(config.astar, params) {}

bool CoPlanner::plan_reference(const geom::Pose2& start, const geom::Pose2& goal,
                               const std::vector<geom::Obb>& static_obstacles,
                               const geom::Aabb& bounds,
                               const core::FrameContext* frame) {
  bool planned = true;
  pending_plan_ = false;  // a direct plan overrides a deferred one
  static_obstacles_ = static_obstacles;
  bounds_ = bounds;
  if (auto path = astar_.plan(start, goal, static_obstacles, bounds, frame,
                              field_, &plan_stats_)) {
    ref_ = std::move(*path);
  } else {
    ref_ = astar_.reeds_shepp_fallback(start, goal);
    planned = false;
  }
  reset_progress();
  return planned;
}

void CoPlanner::defer_reference(const geom::Pose2& start,
                                const geom::Pose2& goal,
                                std::vector<geom::Obb> static_obstacles,
                                const geom::Aabb& bounds) {
  pending_plan_ = true;
  pending_start_ = start;
  pending_goal_ = goal;
  pending_static_ = std::move(static_obstacles);
  pending_bounds_ = bounds;
  // The old episode's reference is stale the moment a new one is deferred,
  // and so is any distance field borrowed from that episode's world.
  field_ = nullptr;
  ref_ = RefPath{};
  reset_progress();
}

void CoPlanner::ensure_reference(const core::FrameContext* frame) {
  if (!pending_plan_) return;
  pending_plan_ = false;
  plan_reference(pending_start_, pending_goal_, pending_static_,
                 pending_bounds_, frame);
  pending_static_.clear();
}

void CoPlanner::set_reference(RefPath path,
                              std::vector<geom::Obb> static_obstacles,
                              std::optional<geom::Aabb> bounds) {
  pending_plan_ = false;  // an explicit reference overrides a deferred plan
  ref_ = std::move(path);
  static_obstacles_ = std::move(static_obstacles);
  bounds_ = bounds;
  reset_progress();
}

void CoPlanner::reset_progress() {
  phase_ = 0;
  progress_ = 0;
  stall_frames_ = 0;
  warm_.clear();
  last_result_ = {};
  rebuild_phases();
}

void CoPlanner::rebuild_phases() {
  phases_.clear();
  if (ref_.empty()) return;

  // Split the reference at direction switches.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;  // [begin, end]
  std::size_t begin = 0;
  for (std::size_t i = 1; i < ref_.size(); ++i) {
    if (ref_[i].direction != ref_[begin].direction) {
      ranges.emplace_back(begin, i - 1);
      begin = i;
    }
  }
  ranges.emplace_back(begin, ref_.size() - 1);

  // Collision probe for the straight switch extensions.
  auto extension_free = [&](const geom::Pose2& pose) {
    if (bounds_) return astar_.pose_free(pose, static_obstacles_, *bounds_);
    return true;
  };

  // Build the raw phases, then weave the straight switch extensions: phase r
  // is extended past the switch pose along its end heading, and phase r+1 is
  // prefixed with the same points in reverse order, so both maneuvers pass
  // through the switch pose aligned.
  constexpr double kExtStep = 0.2;
  std::vector<std::vector<PathPoint>> extensions(ranges.size());
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    PathPhase phase;
    phase.direction = ref_[ranges[r].first].direction;
    for (std::size_t i = ranges[r].first; i <= ranges[r].second; ++i)
      phase.points.push_back(ref_[i]);

    const bool last = r + 1 == ranges.size();
    if (!last && config_.switch_extension > 1e-6 && !phase.points.empty()) {
      const geom::Pose2 end_pose = phase.points.back().pose;
      const geom::Vec2 dir =
          end_pose.forward() * static_cast<double>(phase.direction);
      for (double e = kExtStep; e <= config_.switch_extension + 1e-9;
           e += kExtStep) {
        const geom::Pose2 p{end_pose.position + dir * e, end_pose.heading};
        if (!extension_free(p)) break;
        extensions[r].push_back({p, phase.direction, 0.0});
      }
      for (const PathPoint& p : extensions[r]) phase.points.push_back(p);
    }
    phases_.push_back(std::move(phase));
  }

  for (std::size_t r = 0; r + 1 < phases_.size(); ++r) {
    if (extensions[r].empty()) continue;
    PathPhase& b = phases_[r + 1];
    std::vector<PathPoint> prefix(extensions[r].rbegin(), extensions[r].rend());
    for (PathPoint& p : prefix) p.direction = b.direction;
    b.points.insert(b.points.begin(), prefix.begin(), prefix.end());
  }

  // Recompute per-phase cumulative arc length.
  for (PathPhase& phase : phases_) {
    double s = 0.0;
    for (std::size_t i = 0; i < phase.points.size(); ++i) {
      if (i > 0)
        s += geom::distance(phase.points[i - 1].pose.position,
                            phase.points[i].pose.position);
      phase.points[i].s = s;
    }
  }
}

void CoPlanner::maybe_advance_phase(const vehicle::State& state) {
  if (phase_ + 1 >= phases_.size()) return;
  const PathPhase& ph = phases_[phase_];
  if (ph.points.empty()) {
    ++phase_;
    progress_ = 0;
    return;
  }
  const geom::Pose2& end_pose = ph.points.back().pose;
  const double pos_err = geom::distance(state.pose.position, end_pose.position);
  const double heading_err =
      std::abs(geom::angle_diff(state.pose.heading, end_pose.heading));
  const bool slow = std::abs(state.speed) <= config_.phase_speed_tol;

  bool advance = pos_err <= config_.phase_pos_tol &&
                 heading_err <= config_.phase_heading_tol && slow;

  // Stall escape: when parked against the switch point but not exactly on
  // it, waiting forever is worse than starting the next maneuver.
  if (!advance && slow && pos_err <= 3.0 * config_.phase_pos_tol) {
    ++stall_frames_;
    const int limit =
        static_cast<int>(config_.stall_seconds / std::max(1e-3, config_.dt));
    if (stall_frames_ >= limit) advance = true;
  } else if (std::abs(state.speed) > config_.phase_speed_tol) {
    stall_frames_ = 0;
  }

  if (advance) {
    ++phase_;
    progress_ = 0;
    stall_frames_ = 0;
    warm_.clear();  // the gear flips; the old control sequence misleads
  }
}

std::vector<TargetPoint> CoPlanner::build_targets(const vehicle::State& state) {
  std::vector<TargetPoint> targets;
  const int H = config_.trajopt.horizon;
  if (phases_.empty()) return targets;

  const PathPhase& ph = phases_[phase_];
  const auto& pts = ph.points;
  if (pts.empty()) return targets;

  // Monotone nearest-point progress within the phase.
  progress_ = std::min(progress_, pts.size() - 1);
  {
    std::size_t best = progress_;
    double best_d =
        geom::distance_sq(pts[progress_].pose.position, state.pose.position);
    const std::size_t hi = std::min(pts.size() - 1, progress_ + 60);
    for (std::size_t i = progress_ + 1; i <= hi; ++i) {
      const double d = geom::distance_sq(pts[i].pose.position, state.pose.position);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    progress_ = best;
  }

  const double phase_len = pts.back().s;
  const bool last_phase = phase_ + 1 == phases_.size();
  const double cruise =
      ph.direction > 0 ? config_.cruise_speed : config_.reverse_speed;

  auto index_at = [&](double s) {
    std::size_t i = progress_;
    while (i + 1 < pts.size() && pts[i + 1].s < s) ++i;
    return i;
  };

  double s = pts[progress_].s;
  for (int h = 0; h < H; ++h) {
    const std::size_t idx = index_at(std::min(s, phase_len));
    const PathPoint& p = pts[idx];

    const double remain = std::max(0.0, phase_len - p.s);
    double speed = cruise;
    if (remain < config_.approach_distance) {
      speed = cruise * remain / config_.approach_distance;
      if (remain > 0.4) speed = std::max(speed, config_.min_speed);
      if (remain <= (last_phase ? 0.15 : 0.1)) speed = 0.0;
    }

    targets.push_back({p.pose, ph.direction > 0 ? speed : -speed});
    s += std::max(0.05, std::abs(targets.back().speed)) * config_.trajopt.dt;
  }
  return targets;
}

vehicle::Command CoPlanner::act(const vehicle::State& state,
                                const std::vector<sense::Detection>& detections,
                                const core::FrameContext* frame) {
  ensure_reference(frame);
  if (ref_.empty() || phases_.empty()) return vehicle::Command::full_stop();

  // Parked? Hold still.
  const geom::Pose2& goal = ref_.back().pose;
  if (geom::distance(state.pose.position, goal.position) < config_.goal_pos_tol &&
      std::abs(geom::angle_diff(state.pose.heading, goal.heading)) <
          config_.goal_heading_tol &&
      std::abs(state.speed) < 0.2) {
    return vehicle::Command::full_stop();
  }

  maybe_advance_phase(state);

  const std::vector<TargetPoint> targets = build_targets(state);
  if (static_cast<int>(targets.size()) < config_.trajopt.horizon)
    return vehicle::Command::full_stop();

  std::vector<PredictedObstacle> obstacles;
  obstacles.reserve(detections.size());
  for (const sense::Detection& d : detections)
    obstacles.push_back({d.box, d.dynamic ? d.velocity : geom::Vec2{}});

  last_result_ = trajopt_.solve(state, targets, obstacles,
                                warm_.empty() ? nullptr : &warm_, frame);
  if (!last_result_.ok) {
    warm_.clear();
    return vehicle::Command::full_stop();
  }
  warm_ = last_result_.controls;

  vehicle::Command cmd = model_.to_command(state, last_result_.control);
  // Gear selection: at near-zero speed `to_command` cannot infer intent, so
  // take the tracked direction of the current phase.
  if (std::abs(state.speed) < 0.15) {
    const bool want_reverse = phases_[phase_].direction < 0;
    if (cmd.throttle > 0.0) cmd.reverse = want_reverse;
  }
  return cmd;
}

}  // namespace icoil::co
