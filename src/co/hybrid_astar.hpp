#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "co/refpath.hpp"
#include "core/frame_context.hpp"
#include "geom/aabb.hpp"
#include "geom/broadphase.hpp"
#include "geom/obb.hpp"
#include "vehicle/kinematics.hpp"
#include "world/distance_field.hpp"

namespace icoil::co {

/// Packs a discretized SE(2) search state into disjoint bit fields of one
/// int64: bit 0 = direction, bits 1-8 = heading bin, bits 9-32 = grid y
/// (biased), bits 33-56 = grid x (biased). Every field gets its own bits, so
/// two states collide only when every component matches — unlike the old
/// `(xi * 4096 + yi) * ...` scheme, where |yi| >= 2048 overflowed into the
/// x field and mixed-sign coordinates aliased. 24 bits per axis at the
/// default 0.6 m resolution covers +/- 5000 km, far past any lot.
inline std::int64_t pack_grid_key(long xi, long yi, long ti, int dir) {
  constexpr long kBias = 1L << 23;
  const std::uint64_t ux = static_cast<std::uint64_t>(xi + kBias) & 0xFFFFFFu;
  const std::uint64_t uy = static_cast<std::uint64_t>(yi + kBias) & 0xFFFFFFu;
  const std::uint64_t ut = static_cast<std::uint64_t>(ti) & 0xFFu;
  return static_cast<std::int64_t>((ux << 33) | (uy << 9) | (ut << 1) |
                                   (dir > 0 ? 1u : 0u));
}

/// Tuning of the hybrid-A* search over SE(2).
struct HybridAStarConfig {
  double xy_resolution = 0.6;      ///< grid cell size for state binning [m]
  int heading_bins = 36;           ///< heading discretization (10 degrees)
  double step = 0.8;               ///< primitive arc length [m]
  int num_steer_levels = 5;        ///< steer samples across [-max, +max]
  double reverse_penalty = 1.5;    ///< cost multiplier for reverse arcs
  double switch_penalty = 2.5;     ///< cost for changing motion direction
  double steer_penalty = 0.15;     ///< cost per radian of steer per metre
  double steer_change_penalty = 0.4;
  double rs_shot_radius = 10.0;    ///< try the analytic expansion inside this
  double obstacle_margin = 0.1;    ///< extra footprint inflation [m]
  double sample_step = 0.25;       ///< output waypoint spacing [m]
  int max_expansions = 60000;
  /// Curvature headroom so the MPC can correct tracking errors: primitives
  /// use steer_fraction * max_steer and the Reeds-Shepp radius is scaled by
  /// rs_radius_factor above the vehicle minimum.
  double steer_fraction = 0.8;
  double rs_radius_factor = 1.35;
};

/// Hybrid A* path planner: searches kinematically feasible motion primitives
/// on a sparse SE(2) lattice with a Reeds-Shepp analytic expansion near the
/// goal. Produces the reference waypoints {s*} the CO module tracks.
class HybridAStar {
 public:
  HybridAStar(HybridAStarConfig config, vehicle::VehicleParams params);

  const HybridAStarConfig& config() const { return config_; }

  /// Plan from `start` to `goal` around `obstacles` inside `bounds`.
  /// Returns nullopt when no path is found within the expansion budget.
  /// With `frame` set, the node-expansion loop polls it and gives up early
  /// (nullopt — callers fall back to Reeds-Shepp) once the budget trips.
  /// With `field` set (the grid collision backend's distance field over the
  /// SAME static obstacles), every expansion probe first tries the O(1)
  /// certainly-free lookup and only runs the OBB narrow phase inside the
  /// conservative band — identical accept/reject decisions, cheaper search.
  std::optional<RefPath> plan(const geom::Pose2& start, const geom::Pose2& goal,
                              const std::vector<geom::Obb>& obstacles,
                              const geom::Aabb& bounds,
                              const core::FrameContext* frame = nullptr,
                              const world::DistanceField* field = nullptr) const;

  /// Straight-to-goal fallback: a pure Reeds-Shepp path ignoring obstacles.
  /// Used when the search budget is exhausted (the MPC still avoids
  /// obstacles locally).
  RefPath reeds_shepp_fallback(const geom::Pose2& start,
                               const geom::Pose2& goal) const;

  /// True when the vehicle footprint is collision-free at `pose`.
  bool pose_free(const geom::Pose2& pose, const std::vector<geom::Obb>& obstacles,
                 const geom::Aabb& bounds) const;
  /// Broad-phase variant used by the search loop: `obstacles` carries
  /// prebuilt AABBs so thousands of expansion probes prune cheaply. An
  /// optional distance `field` short-circuits certainly-free probes in O(1)
  /// before the set is consulted (exact — see plan()).
  bool pose_free(const geom::Pose2& pose, const geom::ObbSet& obstacles,
                 const geom::Aabb& bounds,
                 const world::DistanceField* field = nullptr) const;

 private:
  HybridAStarConfig config_;
  vehicle::VehicleParams params_;
  vehicle::BicycleModel model_;
};

}  // namespace icoil::co
