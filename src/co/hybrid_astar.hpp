#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "co/heuristic.hpp"
#include "co/refpath.hpp"
#include "core/frame_context.hpp"
#include "geom/aabb.hpp"
#include "geom/broadphase.hpp"
#include "geom/obb.hpp"
#include "vehicle/kinematics.hpp"
#include "world/distance_field.hpp"

namespace icoil::co {

/// Packs a discretized SE(2) search state into disjoint bit fields of one
/// int64: bit 0 = direction, bits 1-8 = heading bin, bits 9-32 = grid y
/// (biased), bits 33-56 = grid x (biased). Every field gets its own bits, so
/// two states collide only when every component matches — unlike the old
/// `(xi * 4096 + yi) * ...` scheme, where |yi| >= 2048 overflowed into the
/// x field and mixed-sign coordinates aliased. 24 bits per axis at the
/// default 0.6 m resolution covers +/- 5000 km, far past any lot.
inline std::int64_t pack_grid_key(long xi, long yi, long ti, int dir) {
  constexpr long kBias = 1L << 23;
  const std::uint64_t ux = static_cast<std::uint64_t>(xi + kBias) & 0xFFFFFFu;
  const std::uint64_t uy = static_cast<std::uint64_t>(yi + kBias) & 0xFFFFFFu;
  const std::uint64_t ut = static_cast<std::uint64_t>(ti) & 0xFFu;
  return static_cast<std::int64_t>((ux << 33) | (uy << 9) | (ut << 1) |
                                   (dir > 0 ? 1u : 0u));
}

/// Tuning of the hybrid-A* search over SE(2).
struct HybridAStarConfig {
  double xy_resolution = 0.6;      ///< grid cell size for state binning [m]
  int heading_bins = 36;           ///< heading discretization (10 degrees)
  double step = 0.8;               ///< primitive arc length [m]
  int num_steer_levels = 5;        ///< steer samples across [-max, +max]
  double reverse_penalty = 1.5;    ///< cost multiplier for reverse arcs
  double switch_penalty = 2.5;     ///< cost for changing motion direction
  double steer_penalty = 0.15;     ///< cost per radian of steer per metre
  double steer_change_penalty = 0.4;
  double rs_shot_radius = 10.0;    ///< try the analytic expansion inside this
  double obstacle_margin = 0.1;    ///< extra footprint inflation [m]
  double sample_step = 0.25;       ///< output waypoint spacing [m]
  int max_expansions = 60000;
  /// Curvature headroom so the MPC can correct tracking errors: primitives
  /// use steer_fraction * max_steer and the Reeds-Shepp radius is scaled by
  /// rs_radius_factor above the vehicle minimum.
  double steer_fraction = 0.8;
  double rs_radius_factor = 1.35;

  /// Which lower bound guides the search (see co/heuristic.hpp). kMax — the
  /// cached RS table max'd with the obstacle-aware Dijkstra sweep — is both
  /// the cheapest per evaluation and the most informed; kEuclidRs keeps the
  /// historical exact-RS-per-push behaviour for the ablation.
  HeuristicMode heuristic = HeuristicMode::kMax;
  /// Lattice of the shared Reeds-Shepp table (see RsLutSpec).
  double lut_xy_resolution = 0.7;
  /// Beyond the extent the table defers to the euclidean floor — far from
  /// the goal RS length converges to it anyway. 24 m covers every lot.
  double lut_extent = 24.0;
  int lut_heading_bins = 36;
  /// Second, finer LUT level over the near field, max'd with the coarse
  /// table. RS length varies fastest (heading alignment, cusps) within a
  /// few turning radii of the goal — exactly where the search density
  /// peaks — so that region gets 2x resolution in all three axes while the
  /// smooth far field stays cheap. 0 extent disables the level.
  double lut_fine_extent = 12.0;
  double lut_fine_xy_resolution = 0.35;
  int lut_fine_heading_bins = 72;
  /// Cell size of the per-plan Dijkstra cost-to-go raster [m]. Built by
  /// plan() itself from the raw obstacles (never from the caller's
  /// collision field), so the heuristic — and therefore the returned path —
  /// is identical under every collision backend. 0.4 m keeps the sweep
  /// under ~0.5 ms on a lot-sized raster.
  double costmap_resolution = 0.4;
  /// Analytic-expansion throttle: inside rs_shot_radius every pop attempts
  /// the RS shot; outside, one attempt every rs_shot_period pops per
  /// rs_shot_radius of distance (the period shrinks as the goal nears).
  int rs_shot_period = 8;
};

/// Counters from one plan() call, for the planner bench and ablations.
struct PlanStats {
  int expansions = 0;        ///< nodes popped from the open list
  int nodes = 0;             ///< nodes pushed (arena size)
  int rs_shot_attempts = 0;  ///< analytic expansions tried
  int heuristic_evals = 0;
  bool solved_by_shot = false;
  /// g at the shot node plus the analytic tail's length: the cost A*
  /// minimized. Lets benches compare solution quality across heuristics.
  double solution_cost = 0.0;
};

/// Hybrid A* path planner: searches kinematically feasible motion primitives
/// on a sparse SE(2) lattice with a Reeds-Shepp analytic expansion near the
/// goal. Produces the reference waypoints {s*} the CO module tracks.
class HybridAStar {
 public:
  HybridAStar(HybridAStarConfig config, vehicle::VehicleParams params);

  const HybridAStarConfig& config() const { return config_; }

  /// Plan from `start` to `goal` around `obstacles` inside `bounds`.
  /// Returns nullopt when no path is found within the expansion budget.
  /// With `frame` set, the node-expansion loop polls it and gives up early
  /// (nullopt — callers fall back to Reeds-Shepp) once the budget trips.
  /// With `field` set (the grid collision backend's distance field over the
  /// SAME static obstacles), every expansion probe first tries the O(1)
  /// certainly-free lookup and only runs the OBB narrow phase inside the
  /// conservative band — identical accept/reject decisions, cheaper search.
  /// With `stats` set, expansion/shot counters are written there.
  std::optional<RefPath> plan(const geom::Pose2& start, const geom::Pose2& goal,
                              const std::vector<geom::Obb>& obstacles,
                              const geom::Aabb& bounds,
                              const core::FrameContext* frame = nullptr,
                              const world::DistanceField* field = nullptr,
                              PlanStats* stats = nullptr) const;

  /// Straight-to-goal fallback: a pure Reeds-Shepp path ignoring obstacles.
  /// Used when the search budget is exhausted (the MPC still avoids
  /// obstacles locally).
  RefPath reeds_shepp_fallback(const geom::Pose2& start,
                               const geom::Pose2& goal) const;

  /// True when the vehicle footprint is collision-free at `pose`.
  bool pose_free(const geom::Pose2& pose, const std::vector<geom::Obb>& obstacles,
                 const geom::Aabb& bounds) const;
  /// Broad-phase variant used by the search loop: `obstacles` carries
  /// prebuilt AABBs so thousands of expansion probes prune cheaply. An
  /// optional distance `field` short-circuits certainly-free probes in O(1)
  /// before the set is consulted (exact — see plan()).
  bool pose_free(const geom::Pose2& pose, const geom::ObbSet& obstacles,
                 const geom::Aabb& bounds,
                 const world::DistanceField* field = nullptr) const;

 private:
  HybridAStarConfig config_;
  vehicle::VehicleParams params_;
  vehicle::BicycleModel model_;
};

}  // namespace icoil::co
