#include "co/heuristic.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "co/reeds_shepp.hpp"
#include "geom/angles.hpp"

namespace icoil::co {

const char* to_string(HeuristicMode mode) {
  switch (mode) {
    case HeuristicMode::kEuclidRs: return "euclid-rs";
    case HeuristicMode::kLut: return "lut";
    case HeuristicMode::kDijkstra: return "dijkstra";
    case HeuristicMode::kMax: return "max";
  }
  return "?";
}

bool parse_heuristic_mode(const std::string& name, HeuristicMode* out) {
  if (name == "euclid-rs") {
    *out = HeuristicMode::kEuclidRs;
    return true;
  }
  if (name == "lut") {
    *out = HeuristicMode::kLut;
    return true;
  }
  if (name == "dijkstra") {
    *out = HeuristicMode::kDijkstra;
    return true;
  }
  if (name == "max") {
    *out = HeuristicMode::kMax;
    return true;
  }
  return false;
}

RsHeuristicLut::RsHeuristicLut(const RsLutSpec& spec) : spec_(spec) {
  spec_.xy_resolution = std::max(1e-2, spec_.xy_resolution);
  spec_.extent = std::max(spec_.xy_resolution, spec_.extent);
  spec_.heading_bins = std::max(1, spec_.heading_bins);
  spec_.radius = std::max(1e-2, spec_.radius);
  cells_ = static_cast<int>(std::ceil(spec_.extent / spec_.xy_resolution));
  nx_ = 2 * cells_ + 1;
  const int bins = spec_.heading_bins;
  const double res = spec_.xy_resolution;
  const double hbin = geom::kTwoPi / bins;

  // A query rounds to the nearest lattice point, so each table entry must
  // lower-bound the RS length over the whole quantization box
  // (±res/2, ±res/2, ±hbin/2) around it. A triangle-inequality slack is
  // useless here: the RS metric prices tiny LATERAL offsets at parking-
  // manoeuvre lengths (metres for centimetres), which would swamp the
  // table. Instead each entry stores the MINIMUM over a 15-point stencil
  // of its quantization box — the centre, the four xy-corners at the bin
  // heading, and centre + corners at both heading faces — so quantization
  // biases the value downward by construction. A small residual margin
  // (slack_) covers dips between stencil samples; away from the goal the
  // length function is ~1-Lipschitz in position, so a fraction of the cell
  // diagonal suffices.
  slack_ = kResidualMarginCells * res;

  // Four sample lattices cover the stencil with no repeated solves:
  // centres/corners in xy, bin-centre/bin-face in heading. Corner lattice
  // point (ix, iy) is the (-res/2, -res/2) corner of cell (ix, iy); face
  // lattice plane it is the (it - 1/2) * hbin boundary below bin it.
  const int ncor = nx_ + 1;
  const std::size_t cell_n = static_cast<std::size_t>(nx_) * nx_;
  const std::size_t cor_n = static_cast<std::size_t>(ncor) * ncor;
  std::vector<float> cen_c(cell_n * bins), cen_f(cell_n * bins);
  std::vector<float> cor_c(cor_n * bins), cor_f(cor_n * bins);

  // Independent per-heading slabs: build them on all hardware threads (the
  // table is shared process-wide, so this cost is paid once per spec).
  const auto fill_slab = [&](int it) {
    const ReedsShepp rs(spec_.radius);
    const auto solve = [&](double dx, double dy, double dtheta) {
      const auto path = rs.shortest_path({dx, dy, dtheta}, {0.0, 0.0, 0.0});
      return path ? static_cast<float>(rs.length(*path)) : 0.0f;
    };
    const double tc = it * hbin;
    const double tf = (it - 0.5) * hbin;
    for (int iy = 0; iy < ncor; ++iy) {
      const double yc = (iy - cells_) * res;
      const double yf = yc - 0.5 * res;
      for (int ix = 0; ix < ncor; ++ix) {
        const double xc = (ix - cells_) * res;
        const double xf = xc - 0.5 * res;
        const std::size_t ci = static_cast<std::size_t>(it) * cor_n +
                               static_cast<std::size_t>(iy) * ncor + ix;
        cor_c[ci] = solve(xf, yf, tc);
        cor_f[ci] = solve(xf, yf, tf);
        if (ix < nx_ && iy < nx_) {
          const std::size_t ei = static_cast<std::size_t>(it) * cell_n +
                                 static_cast<std::size_t>(iy) * nx_ + ix;
          cen_c[ei] = solve(xc, yc, tc);
          cen_f[ei] = solve(xc, yc, tf);
        }
      }
    }
  };
  {
    const int workers = std::max(
        1, std::min<int>(bins, std::thread::hardware_concurrency()));
    std::atomic<int> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
      pool.emplace_back([&] {
        for (int it; (it = next.fetch_add(1)) < bins;) fill_slab(it);
      });
    for (std::thread& t : pool) t.join();
  }

  table_.resize(cell_n * bins);
  for (int it = 0; it < bins; ++it) {
    const int it_up = (it + 1) % bins;  // face above bin it = face of it+1
    for (int iy = 0; iy < nx_; ++iy) {
      for (int ix = 0; ix < nx_; ++ix) {
        const auto cor = [&](const std::vector<float>& lat, int slab) {
          const std::size_t base = static_cast<std::size_t>(slab) * cor_n;
          return std::min(
              std::min(lat[base + static_cast<std::size_t>(iy) * ncor + ix],
                       lat[base + static_cast<std::size_t>(iy) * ncor + ix + 1]),
              std::min(
                  lat[base + static_cast<std::size_t>(iy + 1) * ncor + ix],
                  lat[base + static_cast<std::size_t>(iy + 1) * ncor + ix + 1]));
        };
        const std::size_t ei = static_cast<std::size_t>(it) * cell_n +
                               static_cast<std::size_t>(iy) * nx_ + ix;
        const std::size_t ei_up = static_cast<std::size_t>(it_up) * cell_n +
                                  static_cast<std::size_t>(iy) * nx_ + ix;
        float v = std::min(cen_c[ei], std::min(cen_f[ei], cen_f[ei_up]));
        v = std::min(v, cor(cor_c, it));
        v = std::min(v, std::min(cor(cor_f, it), cor(cor_f, it_up)));
        table_[index(ix, iy, it)] = v;
      }
    }
  }
}

namespace {

/// The process-wide LUT cache. Leaked on purpose: planners on worker
/// threads may outlive static destruction order.
struct LutCache {
  std::mutex mutex;
  std::vector<std::shared_ptr<const RsHeuristicLut>> luts;
};
LutCache& lut_cache() {
  static LutCache* cache = new LutCache();
  return *cache;
}

}  // namespace

std::shared_ptr<const RsHeuristicLut> RsHeuristicLut::shared(
    const RsLutSpec& spec) {
  LutCache& cache = lut_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  for (const auto& lut : cache.luts)
    if (lut->spec() == spec) return lut;
  // Built under the lock: concurrent requests for one spec pay one build.
  cache.luts.push_back(std::make_shared<const RsHeuristicLut>(spec));
  return cache.luts.back();
}

std::size_t RsHeuristicLut::shared_cache_size() {
  LutCache& cache = lut_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  return cache.luts.size();
}

double RsHeuristicLut::value(const geom::Pose2& pose,
                             const geom::Pose2& goal) const {
  const geom::Vec2 rel = goal.to_local(pose.position);
  return value_rel(rel.x, rel.y, pose.heading - goal.heading);
}

double RsHeuristicLut::value_rel(double dx, double dy, double dtheta) const {
  const int ix = cells_ + static_cast<int>(std::lround(dx / spec_.xy_resolution));
  if (ix < 0 || ix >= nx_) return 0.0;
  const int iy = cells_ + static_cast<int>(std::lround(dy / spec_.xy_resolution));
  if (iy < 0 || iy >= nx_) return 0.0;
  const double hbin = geom::kTwoPi / spec_.heading_bins;
  const int it = static_cast<int>(std::lround(geom::wrap_angle_2pi(dtheta) /
                                              hbin)) %
                 spec_.heading_bins;
  const double v = static_cast<double>(table_[index(ix, iy, it)]) - slack_;
  return std::max(0.0, v);
}

double RsHeuristicLut::exact_rel(double dx, double dy, double dtheta) const {
  const ReedsShepp rs(spec_.radius);
  const auto path = rs.shortest_path({dx, dy, dtheta}, {0.0, 0.0, 0.0});
  return path ? rs.length(*path) : 0.0;
}

namespace {
constexpr float kUnreachable = std::numeric_limits<float>::infinity();
}  // namespace

DijkstraCostMap::DijkstraCostMap(const world::DistanceField& field,
                                 geom::Vec2 goal, double inflation)
    : width_(field.width()),
      height_(field.height()),
      resolution_(field.resolution()),
      origin_(field.origin()) {
  // Quantization slack: the query point and the goal each sit up to half a
  // cell diagonal from the cell centre the sweep measured between, so the
  // measured octile distance can exceed the true one by at most two
  // half-diagonals = sqrt(2) * resolution. Direction discretization is
  // already covered by the octile deflation in cost_to_go().
  slack_ = std::sqrt(2.0) * resolution_;
  const std::size_t cells = static_cast<std::size_t>(width_) * height_;
  blocked_.assign(cells, 0);
  cost_.assign(cells, kUnreachable);
  if (cells == 0) return;

  // A cell is provably infeasible for the axle point when even the most
  // favourable in-cell position plus raster dilation cannot reach the
  // required disc radius. Anything short of proof stays free: the sweep may
  // then underestimate (paths through uncertain cells), never overestimate.
  const double block_below = inflation - field.conservative_slack();
  for (int iy = 0; iy < height_; ++iy)
    for (int ix = 0; ix < width_; ++ix)
      if (field.cell_distance(ix, iy) < block_below)
        blocked_[static_cast<std::size_t>(iy) * width_ + ix] = 1;

  const int gx = static_cast<int>(std::floor((goal.x - origin_.x) / resolution_));
  const int gy = static_cast<int>(std::floor((goal.y - origin_.y) / resolution_));
  if (gx < 0 || gx >= width_ || gy < 0 || gy >= height_) return;
  const std::size_t gi = static_cast<std::size_t>(gy) * width_ + gx;
  if (blocked_[gi] != 0) return;
  goal_in_grid_ = true;

  // 8-connected Dijkstra from the goal cell, run as a Dial bucket sweep on
  // integer edge weights: straight = 58 ticks, diagonal = 82 ticks. Since
  // 82 = floor(58 * sqrt(2)), integer distances can only UNDERSHOOT the
  // exact octile distance (by < 0.04%) — slightly less tight, never
  // inadmissible — and monotone integer keys turn the O(log n) heap into
  // O(1) circular buckets. This build cost is what the `max` heuristic
  // pays on every plan() call, so it matters. Distances are exact integer
  // sums, so the sweep is deterministic regardless of platform.
  constexpr std::int32_t kStraightTicks = 58;
  constexpr std::int32_t kDiagTicks = 82;  // floor(58 * sqrt(2))
  constexpr std::int32_t kWindow = kDiagTicks + 1;
  const double tick = resolution_ / kStraightTicks;
  std::vector<std::int32_t> dist(cells,
                                 std::numeric_limits<std::int32_t>::max());
  std::array<std::vector<std::int32_t>, kWindow> buckets;
  dist[gi] = 0;
  buckets[0].push_back(static_cast<std::int32_t>(gi));
  std::size_t pending = 1;
  for (std::int32_t d = 0; pending > 0; ++d) {
    auto& bucket = buckets[d % kWindow];
    while (!bucket.empty()) {
      const std::int32_t idx = bucket.back();
      bucket.pop_back();
      --pending;
      if (dist[idx] != d) continue;  // stale (relaxed again since queued)
      const int cx = idx % width_;
      const int cy = idx / width_;
      for (int dy = -1; dy <= 1; ++dy) {
        const int ny = cy + dy;
        if (ny < 0 || ny >= height_) continue;
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const int nx = cx + dx;
          if (nx < 0 || nx >= width_) continue;
          const std::int32_t ni = static_cast<std::int32_t>(ny) * width_ + nx;
          if (blocked_[ni] != 0) continue;
          const std::int32_t nd =
              d + ((dx != 0 && dy != 0) ? kDiagTicks : kStraightTicks);
          if (nd < dist[ni]) {
            dist[ni] = nd;
            buckets[nd % kWindow].push_back(ni);
            ++pending;
          }
        }
      }
    }
  }
  // Truncate toward zero when quantizing: the stored cost must never exceed
  // the exact sweep distance, or the deflated lookup could overestimate.
  for (std::size_t i = 0; i < cells; ++i)
    if (dist[i] != std::numeric_limits<std::int32_t>::max())
      cost_[i] =
          std::nextafter(static_cast<float>(dist[i] * tick), 0.0f);
}

double DijkstraCostMap::cost_to_go(geom::Vec2 p) const {
  if (!goal_in_grid_) return -1.0;
  const int ix = static_cast<int>(std::floor((p.x - origin_.x) / resolution_));
  const int iy = static_cast<int>(std::floor((p.y - origin_.y) / resolution_));
  if (ix < 0 || ix >= width_ || iy < 0 || iy >= height_) return -1.0;
  const std::size_t i = static_cast<std::size_t>(iy) * width_ + ix;
  if (blocked_[i] != 0 || cost_[i] == kUnreachable) return -1.0;
  return std::max(0.0, kOctileDeflate * static_cast<double>(cost_[i]) - slack_);
}

double DijkstraCostMap::cell_cost(int ix, int iy) const {
  const std::size_t i = static_cast<std::size_t>(iy) * width_ + ix;
  if (blocked_[i] != 0 || cost_[i] == kUnreachable) return -1.0;
  return static_cast<double>(cost_[i]);
}

}  // namespace icoil::co
