#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "geom/pose2.hpp"

namespace icoil::co {

/// One segment of a Reeds-Shepp word: an arc (left/right at the minimum
/// turning radius) or a straight, with a signed normalized length
/// (negative = driven in reverse).
struct RsSegment {
  char type = 'S';       ///< 'L', 'S' or 'R'
  double length = 0.0;   ///< radius-normalized signed length
};

/// A candidate Reeds-Shepp path in normalized coordinates.
struct RsPath {
  std::vector<RsSegment> segments;
  /// Sum of |segment lengths| (normalized; multiply by radius for metres).
  double total() const {
    double acc = 0.0;
    for (const RsSegment& s : segments) acc += std::abs(s.length);
    return acc;
  }
};

/// A pose sample along an RS path with its motion direction.
struct RsSample {
  geom::Pose2 pose;
  int direction = 1;  ///< +1 forward, -1 reverse
};

/// Reeds-Shepp planner for a car with minimum turning radius `radius` that
/// drives both forwards and backwards. Implements the CSC, CCC and SCS word
/// families with time-flip/reflection/back transforms — sufficient for
/// existence between any pair of poses and near-optimal in length, which is
/// what the hybrid-A* heuristic and analytic expansion need.
class ReedsShepp {
 public:
  explicit ReedsShepp(double radius) : radius_(radius) {}

  double radius() const { return radius_; }

  /// Shortest candidate path from `from` to `to`; nullopt only when the
  /// poses coincide exactly.
  std::optional<RsPath> shortest_path(const geom::Pose2& from,
                                      const geom::Pose2& to) const;

  /// All candidate paths (used by tests to check invariants).
  std::vector<RsPath> all_paths(const geom::Pose2& from,
                                const geom::Pose2& to) const;

  /// Length in metres of a normalized path.
  double length(const RsPath& path) const { return path.total() * radius_; }

  /// Sample a path from `from` every `step` metres (always includes the
  /// exact endpoint).
  std::vector<RsSample> sample(const geom::Pose2& from, const RsPath& path,
                               double step) const;

  /// Streaming variant of sample(): invokes `visit` on each sample in path
  /// order and stops at the first false. Returns true when every sample was
  /// visited and accepted. Lets collision-checking callers (the hybrid-A*
  /// analytic expansion) reject a blocked path at its first colliding pose
  /// without materializing the whole sample vector first.
  bool for_each_sample(const geom::Pose2& from, const RsPath& path, double step,
                       const std::function<bool(const RsSample&)>& visit) const;

 private:
  double radius_;
};

}  // namespace icoil::co
