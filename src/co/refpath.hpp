#pragma once

#include <cstddef>
#include <vector>

#include "geom/pose2.hpp"

namespace icoil::co {

/// One waypoint of a reference path: pose, motion direction and cumulative
/// arc length. These are the target waypoints {s*} of eq. (4).
struct PathPoint {
  geom::Pose2 pose;
  int direction = 1;  ///< +1 forward, -1 reverse
  double s = 0.0;     ///< cumulative |arc length| from the start [m]
};

/// A piecewise reference path produced by the hybrid-A* planner (or a
/// Reeds-Shepp fallback). Immutable after construction.
class RefPath {
 public:
  RefPath() = default;
  explicit RefPath(std::vector<PathPoint> points);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const PathPoint& operator[](std::size_t i) const { return points_[i]; }
  const PathPoint& front() const { return points_.front(); }
  const PathPoint& back() const { return points_.back(); }
  const std::vector<PathPoint>& points() const { return points_; }

  double length() const { return points_.empty() ? 0.0 : points_.back().s; }

  /// Index of the waypoint closest to `p`, searched in
  /// [hint, min(hint+window, size)) — monotone progress tracking.
  std::size_t nearest_index(geom::Vec2 p, std::size_t hint = 0,
                            std::size_t window = static_cast<std::size_t>(-1)) const;

  /// First index at arc length >= s (clamped to the last index).
  std::size_t index_at_arc(double s) const;

  /// Number of direction switches along the path (a parking path usually
  /// has at least one: forward approach, reverse into the bay).
  int num_direction_switches() const;

 private:
  std::vector<PathPoint> points_;
};

}  // namespace icoil::co
