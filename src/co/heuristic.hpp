#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geom/pose2.hpp"
#include "geom/vec2.hpp"
#include "world/distance_field.hpp"

namespace icoil::co {

/// Which lower bound guides the hybrid-A* search.
///  kEuclidRs — max(euclidean, exact Reeds-Shepp solve) per evaluation: the
///              historical heuristic; a full RS word search on every push.
///  kLut      — max(euclidean, RsHeuristicLut lookup): the RS term served
///              from a precomputed goal-relative table, O(1) per eval.
///  kDijkstra — max(euclidean, DijkstraCostMap cost-to-go): obstacle-aware
///              holonomic bound; sees dead ends the RS term cannot.
///  kMax      — max of all three terms (LUT + Dijkstra + euclidean): still
///              admissible (max of lower bounds), dominates every other
///              mode in informativeness. The default.
enum class HeuristicMode { kEuclidRs, kLut, kDijkstra, kMax };

const char* to_string(HeuristicMode mode);
/// Parses "euclid-rs" / "lut" / "dijkstra" / "max"; false (out untouched)
/// for anything else.
bool parse_heuristic_mode(const std::string& name, HeuristicMode* out);

/// Cache key of a Reeds-Shepp heuristic table: the RS turning radius plus
/// the lattice geometry. Tables are immutable once built, so planners with
/// equal specs share one instance via RsHeuristicLut::shared().
struct RsLutSpec {
  double radius = 4.0;         ///< RS turning radius [m]
  double xy_resolution = 0.7;  ///< lattice cell size [m]
  double extent = 24.0;        ///< covers |dx|,|dy| <= extent [m]
  int heading_bins = 36;       ///< relative-heading discretization

  bool operator==(const RsLutSpec& o) const {
    return radius == o.radius && xy_resolution == o.xy_resolution &&
           extent == o.extent && heading_bins == o.heading_bins;
  }
};

/// Precomputed non-holonomic-without-obstacles heuristic: Reeds-Shepp
/// shortest-path lengths over a goal-relative (dx, dy, dtheta) lattice.
/// Because the RS metric is left-invariant, one table per (radius, lattice)
/// serves every (pose, goal) pair: the query transforms into the goal frame
/// and reads the nearest lattice sample. Admissibility: each entry is the
/// MINIMUM RS length over a 15-point stencil of its quantization box
/// (centre, xy-corners, heading-faces), so rounding biases the lookup
/// downward by construction; value() additionally subtracts slack() — a
/// small residual margin for dips between stencil samples — and clamps at
/// zero. (A triangle-inequality slack is unusable here: the RS metric
/// prices centimetre lateral offsets at whole parking manoeuvres.) Queries
/// outside the lattice extent return 0 (callers keep the euclidean floor).
class RsHeuristicLut {
 public:
  /// Residual admissibility margin as a fraction of the cell size: covers
  /// in-box dips of the length function between stencil samples.
  static constexpr double kResidualMarginCells = 0.25;

  explicit RsHeuristicLut(const RsLutSpec& spec);

  /// The process-wide table cache, keyed by spec. Building a table costs a
  /// few hundred ms; every planner/episode with the same spec shares one.
  static std::shared_ptr<const RsHeuristicLut> shared(const RsLutSpec& spec);
  static std::size_t shared_cache_size();

  const RsLutSpec& spec() const { return spec_; }
  /// The residual margin subtracted from every raw table read [m].
  double slack() const { return slack_; }

  /// Admissible lower bound on the Reeds-Shepp distance from `pose` to
  /// `goal` [m]; >= 0, and 0 when the relative pose falls off the lattice.
  double value(const geom::Pose2& pose, const geom::Pose2& goal) const;
  /// Same bound for an explicit goal-frame relative pose.
  double value_rel(double dx, double dy, double dtheta) const;
  /// Fresh exact RS solve for the same relative pose (tests compare
  /// value_rel against this).
  double exact_rel(double dx, double dy, double dtheta) const;

 private:
  std::size_t index(int ix, int iy, int it) const {
    return (static_cast<std::size_t>(it) * nx_ + iy) * nx_ + ix;
  }

  RsLutSpec spec_;
  int cells_ = 0;       ///< lattice points per half-axis
  int nx_ = 0;          ///< lattice points per axis (2 * cells_ + 1)
  double slack_ = 0.0;
  std::vector<float> table_;  ///< RS length [m], x-major within heading slab
};

/// Obstacle-aware holonomic cost-to-go: one 8-connected Dijkstra sweep from
/// the goal cell over a DistanceField occupancy raster. A cell is blocked
/// when the EDT proves a vehicle disc of radius `inflation` cannot sit at
/// its centre; everything uncertain stays free, keeping the grid distance a
/// lower bound on real path length through it. cost_to_go() deflates the
/// octile grid distance by cos(pi/8) (an 8-connected shortest path
/// overestimates the euclidean shortest path by at most 1/cos(pi/8)) and
/// subtracts the cell-quantization slack, so the result lower-bounds the
/// arc length of ANY collision-free path to the goal — which is what makes
/// it admissible for the primitive search, and what lets it see dead ends.
class DijkstraCostMap {
 public:
  /// 8-connected shortest-path deflation: octile / euclidean <= 1 / cos(pi/8).
  static constexpr double kOctileDeflate = 0.92387953251128674;

  DijkstraCostMap(const world::DistanceField& field, geom::Vec2 goal,
                  double inflation);

  int width() const { return width_; }
  int height() const { return height_; }
  double resolution() const { return resolution_; }
  geom::Vec2 origin() const { return origin_; }
  bool goal_reached() const { return goal_in_grid_; }

  /// Admissible lower bound on collision-free path length from `p` to the
  /// goal [m], or a negative value when the bound is unknown (p outside the
  /// grid, in a blocked cell, or unreachable from the goal) — callers fall
  /// back to their other heuristic terms, never prune.
  double cost_to_go(geom::Vec2 p) const;

  /// Raw (undeflated) grid distance of cell (ix, iy) [m]; negative when
  /// blocked or unreachable. Exposed for the brute-force admissibility test.
  double cell_cost(int ix, int iy) const;
  bool blocked(int ix, int iy) const {
    return blocked_[static_cast<std::size_t>(iy) * width_ + ix] != 0;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  double resolution_ = 1.0;
  double slack_ = 0.0;        ///< start+goal in-cell quantization [m]
  geom::Vec2 origin_;
  bool goal_in_grid_ = false;
  std::vector<std::uint8_t> blocked_;
  std::vector<float> cost_;   ///< octile distance from goal [m], row-major
};

}  // namespace icoil::co
