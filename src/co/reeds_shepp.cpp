#include "co/reeds_shepp.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "geom/angles.hpp"

namespace icoil::co {

namespace {

using geom::kPi;

// Wrap to (-pi, pi].
double mod2pi(double x) { return geom::wrap_angle(x); }

void polar(double x, double y, double& r, double& theta) {
  r = std::hypot(x, y);
  theta = std::atan2(y, x);
}

struct Word {
  bool ok = false;
  double t = 0.0, u = 0.0, v = 0.0;
};

// --- Base formulas (normalized target (x, y, phi), unit turning radius) ---

Word left_straight_left(double x, double y, double phi) {  // L+ S+ L+
  Word w;
  double u, t;
  polar(x - std::sin(phi), y - 1.0 + std::cos(phi), u, t);
  if (t >= 0.0) {
    const double v = mod2pi(phi - t);
    if (v >= 0.0) {
      w = {true, t, u, v};
    }
  }
  return w;
}

Word left_straight_right(double x, double y, double phi) {  // L+ S+ R+
  Word w;
  double u1, t1;
  polar(x + std::sin(phi), y - 1.0 - std::cos(phi), u1, t1);
  const double u1sq = u1 * u1;
  if (u1sq >= 4.0) {
    const double u = std::sqrt(u1sq - 4.0);
    const double theta = std::atan2(2.0, u);
    const double t = mod2pi(t1 + theta);
    const double v = mod2pi(t - phi);
    if (t >= 0.0 && v >= 0.0) w = {true, t, u, v};
  }
  return w;
}

Word left_right_left(double x, double y, double phi) {  // L+ R- L+ family
  Word w;
  double u1, t1;
  polar(x - std::sin(phi), y - 1.0 + std::cos(phi), u1, t1);
  if (u1 <= 4.0) {
    const double u = -2.0 * std::asin(0.25 * u1);
    const double t = mod2pi(t1 + 0.5 * u + kPi);
    const double v = mod2pi(phi - t + u);
    if (t >= 0.0 && u <= 0.0) w = {true, t, u, v};
  }
  return w;
}

Word straight_left_straight(double x, double y, double phi) {  // S L S
  Word w;
  phi = mod2pi(phi);
  if (y > 0.0 && phi > 0.0 && phi < kPi * 0.99) {
    const double xd = -y / std::tan(phi) + x;
    const double t = xd - std::tan(phi / 2.0);
    const double u = phi;
    const double v = std::hypot(x - xd, y) - std::tan(phi / 2.0);
    w = {true, t, u, v};
  } else if (y < 0.0 && phi > 0.0 && phi < kPi * 0.99) {
    const double xd = -y / std::tan(phi) + x;
    const double t = xd - std::tan(phi / 2.0);
    const double u = phi;
    const double v = -std::hypot(x - xd, y) - std::tan(phi / 2.0);
    w = {true, t, u, v};
  }
  return w;
}

void push(std::vector<RsPath>& out, const Word& w, const char (&types)[4],
          double sign_t = 1.0, double sign_u = 1.0, double sign_v = 1.0,
          bool flip_lr = false) {
  if (!w.ok) return;
  auto mapc = [&](char c) {
    if (!flip_lr) return c;
    if (c == 'L') return 'R';
    if (c == 'R') return 'L';
    return c;
  };
  RsPath p;
  p.segments = {{mapc(types[0]), sign_t * w.t},
                {mapc(types[1]), sign_u * w.u},
                {mapc(types[2]), sign_v * w.v}};
  // Drop zero-length segments for cleanliness.
  std::erase_if(p.segments,
                [](const RsSegment& s) { return std::abs(s.length) < 1e-10; });
  if (p.segments.empty()) return;
  out.push_back(std::move(p));
}

// Apply the classic transforms to one family evaluator.
template <typename F>
void family(std::vector<RsPath>& out, F base, const char (&types)[4], double x,
            double y, double phi) {
  // identity
  push(out, base(x, y, phi), types);
  // timeflip: (x,y,phi) -> (-x, y, -phi), all lengths negated
  push(out, base(-x, y, -phi), types, -1.0, -1.0, -1.0);
  // reflect: (x,y,phi) -> (x, -y, -phi), L<->R
  push(out, base(x, -y, -phi), types, 1.0, 1.0, 1.0, /*flip_lr=*/true);
  // timeflip + reflect
  push(out, base(-x, -y, phi), types, -1.0, -1.0, -1.0, /*flip_lr=*/true);
}

}  // namespace

std::vector<RsPath> ReedsShepp::all_paths(const geom::Pose2& from,
                                          const geom::Pose2& to) const {
  // Normalize: translate/rotate so `from` is the origin, scale by 1/radius.
  const geom::Vec2 d = to.position - from.position;
  const double c = std::cos(from.heading), s = std::sin(from.heading);
  const double x = (c * d.x + s * d.y) / radius_;
  const double y = (-s * d.x + c * d.y) / radius_;
  const double phi = mod2pi(to.heading - from.heading);

  std::vector<RsPath> out;
  family(out, left_straight_left, "LSL", x, y, phi);
  family(out, left_straight_right, "LSR", x, y, phi);
  family(out, left_right_left, "LRL", x, y, phi);
  // LRL driven backwards: swap roles via the "backwards" transform
  // (xb, yb) = (x cos phi + y sin phi, x sin phi - y cos phi), word reversed.
  {
    const double xb = x * std::cos(phi) + y * std::sin(phi);
    const double yb = x * std::sin(phi) - y * std::cos(phi);
    std::vector<RsPath> rev;
    family(rev, left_right_left, "LRL", xb, yb, phi);
    for (RsPath& p : rev) {
      std::reverse(p.segments.begin(), p.segments.end());
      out.push_back(std::move(p));
    }
  }
  family(out, straight_left_straight, "SLS", x, y, phi);
  return out;
}

std::optional<RsPath> ReedsShepp::shortest_path(const geom::Pose2& from,
                                                const geom::Pose2& to) const {
  const std::vector<RsPath> all = all_paths(from, to);
  const RsPath* best = nullptr;
  double best_len = 1e30;
  for (const RsPath& p : all) {
    const double len = p.total();
    if (len < best_len) {
      best_len = len;
      best = &p;
    }
  }
  if (!best) return std::nullopt;
  return *best;
}

bool ReedsShepp::for_each_sample(
    const geom::Pose2& from, const RsPath& path, double step,
    const std::function<bool(const RsSample&)>& visit) const {
  geom::Pose2 pose = from;
  if (!visit({pose, path.segments.empty()
                        ? 1
                        : (path.segments.front().length >= 0.0 ? 1 : -1)}))
    return false;

  for (const RsSegment& seg : path.segments) {
    const double seg_len_m = std::abs(seg.length) * radius_;
    if (seg_len_m < 1e-12) continue;
    const int dir = seg.length >= 0.0 ? 1 : -1;
    const double kappa = seg.type == 'L' ? 1.0 / radius_
                         : seg.type == 'R' ? -1.0 / radius_
                                           : 0.0;
    const geom::Pose2 seg_start = pose;
    const int n = std::max(1, static_cast<int>(std::ceil(seg_len_m / step)));
    for (int i = 1; i <= n; ++i) {
      const double sd = dir * seg_len_m * static_cast<double>(i) / n;  // signed
      geom::Pose2 p;
      if (kappa == 0.0) {
        p.position = seg_start.position +
                     geom::Vec2{std::cos(seg_start.heading), std::sin(seg_start.heading)} * sd;
        p.heading = seg_start.heading;
      } else {
        p.heading = geom::wrap_angle(seg_start.heading + kappa * sd);
        p.position.x = seg_start.position.x +
                       (std::sin(p.heading) - std::sin(seg_start.heading)) / kappa;
        p.position.y = seg_start.position.y -
                       (std::cos(p.heading) - std::cos(seg_start.heading)) / kappa;
      }
      pose = p;
      if (!visit({p, dir})) return false;
    }
  }
  return true;
}

std::vector<RsSample> ReedsShepp::sample(const geom::Pose2& from,
                                         const RsPath& path, double step) const {
  std::vector<RsSample> out;
  for_each_sample(from, path, step, [&out](const RsSample& s) {
    out.push_back(s);
    return true;
  });
  return out;
}

}  // namespace icoil::co
