#pragma once

#include <optional>
#include <vector>

#include "core/frame_context.hpp"
#include "geom/obb.hpp"
#include "mathkit/qp.hpp"
#include "vehicle/kinematics.hpp"

namespace icoil::co {

/// Reference state for one horizon step (a target waypoint s* of eq. (4)).
struct TargetPoint {
  geom::Pose2 pose;
  double speed = 0.0;  ///< signed target speed [m/s]
};

/// An obstacle with a constant-velocity prediction model — supplies the
/// o_{h,k} positions of the collision constraint (5).
struct PredictedObstacle {
  geom::Obb box;
  geom::Vec2 velocity;
};

/// Tuning of the constrained trajectory optimization (eq. 6).
struct TrajOptConfig {
  int horizon = 15;            ///< H, prediction steps
  double dt = 0.15;            ///< step length [s]
  int sqp_iterations = 3;      ///< convexify-and-solve rounds
  // Tracking weights (eq. 4 distance cost, split by component).
  double w_pos = 4.0;
  double w_heading = 6.0;
  double w_speed = 1.0;
  // Control effort / smoothness.
  double w_accel = 0.15;
  double w_steer = 0.08;
  double w_daccel = 0.2;
  double w_dsteer = 0.3;
  // Trust region half-widths around the linearization point.
  double trust_pos = 2.0;
  double trust_heading = 0.8;
  double trust_speed = 1.5;
  // Collision handling (eq. 5).
  double safety_margin = 0.15;       ///< d_safe additive margin [m]
  double obstacle_active_range = 16.0;
  int collision_discs = 3;           ///< discs covering the footprint
  /// MPC-grade QP settings: accuracy relaxed for real-time solves (the
  /// SQP loop re-solves anyway, and warm starts absorb the slack).
  math::QpSettings qp{.max_iterations = 500, .eps_abs = 1e-3, .eps_rel = 1e-3};
};

/// Result of one MPC solve.
struct TrajOptResult {
  bool ok = false;
  vehicle::PlannerControl control;        ///< first control a*_i to execute
  std::vector<vehicle::State> predicted;  ///< nonlinear rollout of the plan
  std::vector<vehicle::PlannerControl> controls;
  double objective = 0.0;
  int qp_iterations = 0;
  int active_obstacle_constraints = 0;
};

/// The CO trajectory optimizer: converts the nonconvex program (6) into a
/// sequence of convex QPs (linearized Ackermann dynamics + half-space
/// collision constraints + trust region) solved by the ADMM QP solver, in
/// the spirit of the convexification pipeline the paper implements on CVXPY.
class TrajOpt {
 public:
  TrajOpt(TrajOptConfig config, vehicle::VehicleParams params);

  const TrajOptConfig& config() const { return config_; }

  /// Solve the MPC from `current`, tracking `targets` (size >= horizon) and
  /// avoiding `obstacles`. `warm_start` carries the previous solution's
  /// controls (shifted internally). With `frame` set, the SQP loop polls it
  /// between convexify-and-solve rounds and returns the best-so-far result
  /// (at least one round always runs) once the frame budget trips.
  TrajOptResult solve(const vehicle::State& current,
                      const std::vector<TargetPoint>& targets,
                      const std::vector<PredictedObstacle>& obstacles,
                      const std::vector<vehicle::PlannerControl>* warm_start =
                          nullptr,
                      const core::FrameContext* frame = nullptr) const;

  /// Disc centres (longitudinal offsets from the rear axle) and radius used
  /// to approximate the footprint in constraint (5).
  std::vector<double> disc_offsets() const;
  double disc_radius() const;

 private:
  TrajOptConfig config_;
  vehicle::VehicleParams params_;
  vehicle::BicycleModel model_;
};

}  // namespace icoil::co
