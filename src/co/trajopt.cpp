#include "co/trajopt.hpp"

#include <algorithm>
#include <cmath>

#include "geom/angles.hpp"

namespace icoil::co {

TrajOpt::TrajOpt(TrajOptConfig config, vehicle::VehicleParams params)
    : config_(config), params_(params), model_(params) {}

std::vector<double> TrajOpt::disc_offsets() const {
  // Distribute disc centres evenly along the footprint length.
  const int n = std::max(1, config_.collision_discs);
  const double lo = params_.center_offset - params_.length * 0.5;
  const double hi = params_.center_offset + params_.length * 0.5;
  const double seg = (hi - lo) / n;
  std::vector<double> out;
  for (int i = 0; i < n; ++i) out.push_back(lo + seg * (0.5 + i));
  return out;
}

double TrajOpt::disc_radius() const {
  const int n = std::max(1, config_.collision_discs);
  const double seg = params_.length / n;
  return std::hypot(seg * 0.5, params_.width * 0.5);
}

namespace {

struct Lin {
  // s_{h+1} = A s_h + B u_h + c, all 4x4 / 4x2 / 4.
  double a[4][4];
  double b[4][2];
  double c[4];
};

vehicle::State euler_step(const vehicle::State& s, const vehicle::PlannerControl& u,
                          double dt, double wheelbase) {
  vehicle::State out = s;
  out.pose.position.x += s.speed * std::cos(s.pose.heading) * dt;
  out.pose.position.y += s.speed * std::sin(s.pose.heading) * dt;
  out.pose.heading = geom::wrap_angle(
      s.pose.heading + s.speed * std::tan(u.steer) / wheelbase * dt);
  out.speed = s.speed + u.accel * dt;
  return out;
}

// Linearize around the nominal with the heading expressed in its continuous
// lift `theta_lift` (NOT wrapped): the QP's theta variables, the tracking
// cost and the trust region all live in the lifted frame, so the dynamics
// constants must too — mixing frames across the +/-pi seam injects a 2*pi
// inconsistency that wrecks trajectories near the wrap.
Lin linearize(const vehicle::State& s, double theta_lift,
              const vehicle::PlannerControl& u, double dt, double wheelbase) {
  Lin lin{};
  const double v = s.speed;
  const double cth = std::cos(theta_lift), sth = std::sin(theta_lift);
  const double tand = std::tan(u.steer);
  const double sec2 = 1.0 + tand * tand;

  // A = d f / d s
  double a[4][4] = {{1, 0, -v * sth * dt, cth * dt},
                    {0, 1, v * cth * dt, sth * dt},
                    {0, 0, 1, tand / wheelbase * dt},
                    {0, 0, 0, 1}};
  double b[4][2] = {{0, 0}, {0, 0}, {0, v * sec2 / wheelbase * dt}, {dt, 0}};
  std::copy(&a[0][0], &a[0][0] + 16, &lin.a[0][0]);
  std::copy(&b[0][0], &b[0][0] + 8, &lin.b[0][0]);

  // Next state computed in the lifted frame (no wrap).
  const double nx[4] = {s.x() + v * cth * dt, s.y() + v * sth * dt,
                        theta_lift + v * tand / wheelbase * dt, v + u.accel * dt};
  const double sv[4] = {s.x(), s.y(), theta_lift, v};
  const double uv[2] = {u.accel, u.steer};
  for (int i = 0; i < 4; ++i) {
    double acc = nx[i];
    for (int j = 0; j < 4; ++j) acc -= lin.a[i][j] * sv[j];
    for (int j = 0; j < 2; ++j) acc -= lin.b[i][j] * uv[j];
    lin.c[i] = acc;
  }
  return lin;
}

}  // namespace

TrajOptResult TrajOpt::solve(const vehicle::State& current,
                             const std::vector<TargetPoint>& targets,
                             const std::vector<PredictedObstacle>& obstacles,
                             const std::vector<vehicle::PlannerControl>* warm,
                             const core::FrameContext* frame) const {
  TrajOptResult res;
  const int H = config_.horizon;
  if (static_cast<int>(targets.size()) < H) return res;
  const double dt = config_.dt;
  const double L = params_.wheelbase;

  // ---- nominal trajectory from warm-start controls (shifted) ----
  std::vector<vehicle::PlannerControl> nominal_u(static_cast<std::size_t>(H));
  if (warm && !warm->empty()) {
    for (int h = 0; h < H; ++h) {
      const std::size_t idx = std::min<std::size_t>(h + 1, warm->size() - 1);
      nominal_u[static_cast<std::size_t>(h)] = (*warm)[idx];
    }
  } else {
    // Cold start: a braking nominal. A constant-speed nominal can tunnel
    // through an obstacle, in which case the per-step half-space
    // linearization of (5) puts the tail of the horizon on the far side of
    // the obstacle and legitimizes driving through it.
    double v = current.speed;
    for (int h = 0; h < H; ++h) {
      double a = 0.0;
      if (std::abs(v) > 1e-6)
        a = -std::copysign(std::min(params_.max_brake, std::abs(v) / dt), v);
      nominal_u[static_cast<std::size_t>(h)].accel = a;
      v += a * dt;
    }
  }

  auto sx = [](int h, int comp) { return 4 * (h - 1) + comp; };   // h in 1..H
  auto ux = [H](int h, int comp) { return 4 * H + 2 * h + comp; };  // h in 0..H-1
  // Slack variables (one per obstacle row) are appended after the controls;
  // they keep the QP feasible when the trust region around a colliding
  // nominal conflicts with the separating half-spaces. Their count varies
  // per SQP iteration, so the variable layout is finalized inside the loop.

  // Unwrap targets' headings near the running nominal to avoid pi jumps.
  std::vector<TargetPoint> tgt(targets.begin(), targets.begin() + H);

  std::vector<double> prev_solution;
  const auto offsets = disc_offsets();
  const double r_disc = disc_radius();

  // Obstacles within range.
  std::vector<const PredictedObstacle*> active;
  for (const PredictedObstacle& o : obstacles)
    if (geom::distance(o.box.center, current.pose.position) <
        config_.obstacle_active_range)
      active.push_back(&o);

  for (int sqp = 0; sqp < config_.sqp_iterations; ++sqp) {
    // Frame-budget poll between SQP rounds: the first round always runs so
    // a deadline-pressed frame still gets a usable (best-so-far) control;
    // later rounds only refine it.
    if (sqp > 0 && frame != nullptr && frame->expired()) break;

    // Nominal rollout.
    std::vector<vehicle::State> nominal(static_cast<std::size_t>(H + 1));
    nominal[0] = current;
    for (int h = 0; h < H; ++h)
      nominal[static_cast<std::size_t>(h + 1)] =
          euler_step(nominal[static_cast<std::size_t>(h)],
                     nominal_u[static_cast<std::size_t>(h)], dt, L);

    // Unwrapped nominal headings (continuous lift).
    std::vector<double> nom_theta(static_cast<std::size_t>(H + 1));
    nom_theta[0] = current.pose.heading;
    for (int h = 0; h < H; ++h) {
      const vehicle::State& s = nominal[static_cast<std::size_t>(h)];
      nom_theta[static_cast<std::size_t>(h + 1)] =
          nom_theta[static_cast<std::size_t>(h)] +
          s.speed * std::tan(nominal_u[static_cast<std::size_t>(h)].steer) / L * dt;
    }

    // ---- assemble QP ----
    // Cost over the state/control block first; the matrix is widened to
    // cover the obstacle slacks once their count is known.
    const int base_n = 6 * H;
    math::QpProblem qp;
    qp.p = math::Matrix(static_cast<std::size_t>(base_n),
                        static_cast<std::size_t>(base_n));
    qp.q.assign(static_cast<std::size_t>(base_n), 0.0);

    // Tracking cost (eq. 4).
    for (int h = 1; h <= H; ++h) {
      const TargetPoint& t = tgt[static_cast<std::size_t>(h - 1)];
      const double theta_ref =
          nom_theta[static_cast<std::size_t>(h)] +
          geom::angle_diff(t.pose.heading, nom_theta[static_cast<std::size_t>(h)]);
      const int ix = sx(h, 0), iy = sx(h, 1), it = sx(h, 2), iv = sx(h, 3);
      qp.p(static_cast<std::size_t>(ix), static_cast<std::size_t>(ix)) += 2.0 * config_.w_pos;
      qp.p(static_cast<std::size_t>(iy), static_cast<std::size_t>(iy)) += 2.0 * config_.w_pos;
      qp.p(static_cast<std::size_t>(it), static_cast<std::size_t>(it)) += 2.0 * config_.w_heading;
      qp.p(static_cast<std::size_t>(iv), static_cast<std::size_t>(iv)) += 2.0 * config_.w_speed;
      qp.q[static_cast<std::size_t>(ix)] -= 2.0 * config_.w_pos * t.pose.x();
      qp.q[static_cast<std::size_t>(iy)] -= 2.0 * config_.w_pos * t.pose.y();
      qp.q[static_cast<std::size_t>(it)] -= 2.0 * config_.w_heading * theta_ref;
      qp.q[static_cast<std::size_t>(iv)] -= 2.0 * config_.w_speed * t.speed;
    }
    // Control effort.
    for (int h = 0; h < H; ++h) {
      const int ia = ux(h, 0), is = ux(h, 1);
      qp.p(static_cast<std::size_t>(ia), static_cast<std::size_t>(ia)) += 2.0 * config_.w_accel;
      qp.p(static_cast<std::size_t>(is), static_cast<std::size_t>(is)) += 2.0 * config_.w_steer;
    }
    // Control smoothness (u_h - u_{h-1})^2.
    for (int h = 1; h < H; ++h) {
      const double wd[2] = {config_.w_daccel, config_.w_dsteer};
      for (int c = 0; c < 2; ++c) {
        const int i0 = ux(h - 1, c), i1 = ux(h, c);
        qp.p(static_cast<std::size_t>(i0), static_cast<std::size_t>(i0)) += 2.0 * wd[c];
        qp.p(static_cast<std::size_t>(i1), static_cast<std::size_t>(i1)) += 2.0 * wd[c];
        qp.p(static_cast<std::size_t>(i0), static_cast<std::size_t>(i1)) -= 2.0 * wd[c];
        qp.p(static_cast<std::size_t>(i1), static_cast<std::size_t>(i0)) -= 2.0 * wd[c];
      }
    }

    // Constraint rows: 4H dynamics + 6H bounds + obstacles.
    int n_obs_rows = 0;
    struct ObsRow {
      int h;
      double nx, ny, jt, rhs;
    };
    std::vector<ObsRow> obs_rows;
    for (int h = 1; h <= H; ++h) {
      const vehicle::State& nom = nominal[static_cast<std::size_t>(h)];
      const double cth = std::cos(nom.pose.heading);
      const double sth = std::sin(nom.pose.heading);
      for (const PredictedObstacle* o : active) {
        geom::Obb box = o->box;
        box.center += o->velocity * (h * dt);
        for (double off : offsets) {
          const geom::Vec2 pd{nom.x() + cth * off, nom.y() + sth * off};
          const double sd = box.signed_distance_to(pd);
          if (sd > 3.0) continue;  // inactive constraint, skip for size
          geom::Vec2 n;
          if (sd > 1e-6) {
            n = (pd - box.closest_point(pd)).normalized();
          } else {
            n = (pd - box.center).normalized();
            if (n.norm_sq() < 0.5) n = {1.0, 0.0};
          }
          // d p_disc / d theta at the nominal.
          const geom::Vec2 jth{-sth * off, cth * off};
          const double g0 = sd - (r_disc + config_.safety_margin);
          // n·dp >= -g0  ->  n·p + (n·jth) theta >= n·p̄ + (n·jth) θ̄ - g0
          ObsRow row;
          row.h = h;
          row.nx = n.x;
          row.ny = n.y;
          row.jt = n.dot(jth);
          row.rhs = n.x * nom.x() + n.y * nom.y() +
                    row.jt * nom_theta[static_cast<std::size_t>(h)] - g0;
          obs_rows.push_back(row);
          ++n_obs_rows;
        }
      }
    }

    const int n_vars = 6 * H + n_obs_rows;
    const int slack0 = 6 * H;
    {
      // Grow the cost blocks to cover the slack variables: heavily
      // penalized quadratic slack keeps violations minimal.
      math::Matrix p_full(static_cast<std::size_t>(n_vars),
                          static_cast<std::size_t>(n_vars));
      p_full.set_block(0, 0, qp.p);
      constexpr double kSlackWeight = 400.0;
      for (int i = 0; i < n_obs_rows; ++i)
        p_full(static_cast<std::size_t>(slack0 + i),
               static_cast<std::size_t>(slack0 + i)) = 2.0 * kSlackWeight;
      qp.p = std::move(p_full);
      qp.q.resize(static_cast<std::size_t>(n_vars), 0.0);
    }

    const int m = 4 * H + 6 * H + 2 * n_obs_rows;
    qp.a = math::Matrix(static_cast<std::size_t>(m), static_cast<std::size_t>(n_vars));
    qp.l.assign(static_cast<std::size_t>(m), -math::kQpInf);
    qp.u.assign(static_cast<std::size_t>(m), math::kQpInf);

    int row = 0;
    // Dynamics equalities.
    for (int h = 0; h < H; ++h) {
      const Lin lin = linearize(nominal[static_cast<std::size_t>(h)],
                                nom_theta[static_cast<std::size_t>(h)],
                                nominal_u[static_cast<std::size_t>(h)], dt, L);
      for (int i = 0; i < 4; ++i, ++row) {
        qp.a(static_cast<std::size_t>(row), static_cast<std::size_t>(sx(h + 1, i))) = 1.0;
        double rhs = lin.c[i];
        if (h == 0) {
          const double s0[4] = {current.x(), current.y(), nom_theta[0],
                                current.speed};
          for (int j = 0; j < 4; ++j) rhs += lin.a[i][j] * s0[j];
        } else {
          for (int j = 0; j < 4; ++j)
            qp.a(static_cast<std::size_t>(row), static_cast<std::size_t>(sx(h, j))) =
                -lin.a[i][j];
        }
        for (int j = 0; j < 2; ++j)
          qp.a(static_cast<std::size_t>(row), static_cast<std::size_t>(ux(h, j))) =
              -lin.b[i][j];
        qp.l[static_cast<std::size_t>(row)] = rhs;
        qp.u[static_cast<std::size_t>(row)] = rhs;
      }
    }
    // State bounds: trust region around nominal; speed also physical.
    for (int h = 1; h <= H; ++h) {
      const vehicle::State& nom = nominal[static_cast<std::size_t>(h)];
      const double th_nom = nom_theta[static_cast<std::size_t>(h)];
      const double lo[4] = {nom.x() - config_.trust_pos, nom.y() - config_.trust_pos,
                            th_nom - config_.trust_heading,
                            std::max(-params_.max_speed_rev,
                                     nom.speed - config_.trust_speed)};
      const double hi[4] = {nom.x() + config_.trust_pos, nom.y() + config_.trust_pos,
                            th_nom + config_.trust_heading,
                            std::min(params_.max_speed_fwd,
                                     nom.speed + config_.trust_speed)};
      for (int i = 0; i < 4; ++i, ++row) {
        qp.a(static_cast<std::size_t>(row), static_cast<std::size_t>(sx(h, i))) = 1.0;
        qp.l[static_cast<std::size_t>(row)] = lo[i];
        qp.u[static_cast<std::size_t>(row)] = hi[i];
      }
    }
    // Control bounds (the boundary set A of eq. (6)).
    for (int h = 0; h < H; ++h) {
      qp.a(static_cast<std::size_t>(row), static_cast<std::size_t>(ux(h, 0))) = 1.0;
      qp.l[static_cast<std::size_t>(row)] = -params_.max_brake;
      qp.u[static_cast<std::size_t>(row)] = params_.max_accel;
      ++row;
      qp.a(static_cast<std::size_t>(row), static_cast<std::size_t>(ux(h, 1))) = 1.0;
      qp.l[static_cast<std::size_t>(row)] = -params_.max_steer;
      qp.u[static_cast<std::size_t>(row)] = params_.max_steer;
      ++row;
    }
    // Obstacle half-spaces (eq. 5 linearized) with non-negative slack:
    //   n.p + J theta + s >= rhs,  s >= 0.
    for (int i = 0; i < n_obs_rows; ++i) {
      const ObsRow& orow = obs_rows[static_cast<std::size_t>(i)];
      qp.a(static_cast<std::size_t>(row), static_cast<std::size_t>(sx(orow.h, 0))) = orow.nx;
      qp.a(static_cast<std::size_t>(row), static_cast<std::size_t>(sx(orow.h, 1))) = orow.ny;
      qp.a(static_cast<std::size_t>(row), static_cast<std::size_t>(sx(orow.h, 2))) = orow.jt;
      qp.a(static_cast<std::size_t>(row), static_cast<std::size_t>(slack0 + i)) = 1.0;
      qp.l[static_cast<std::size_t>(row)] = orow.rhs;
      ++row;
      qp.a(static_cast<std::size_t>(row), static_cast<std::size_t>(slack0 + i)) = 1.0;
      qp.l[static_cast<std::size_t>(row)] = 0.0;
      ++row;
    }

    math::QpSolver solver(config_.qp);
    const bool warm_ok = prev_solution.size() == qp.q.size();
    const math::QpResult sol =
        solver.solve(qp, warm_ok ? &prev_solution : nullptr, nullptr);
    if (!sol.ok() && sol.status != math::QpStatus::kMaxIterations) {
      // Singular/invalid — keep whatever nominal we have.
      break;
    }

    prev_solution = sol.x;
    res.objective = sol.objective;
    res.qp_iterations += sol.iterations;
    res.active_obstacle_constraints = n_obs_rows;

    // Update nominal controls from the solution.
    for (int h = 0; h < H; ++h) {
      nominal_u[static_cast<std::size_t>(h)].accel =
          std::clamp(sol.x[static_cast<std::size_t>(ux(h, 0))], -params_.max_brake,
                     params_.max_accel);
      nominal_u[static_cast<std::size_t>(h)].steer =
          std::clamp(sol.x[static_cast<std::size_t>(ux(h, 1))], -params_.max_steer,
                     params_.max_steer);
    }
    res.ok = true;
  }

  if (!res.ok) return res;

  // Final nonlinear rollout with the optimized controls.
  res.controls = nominal_u;
  res.control = nominal_u.front();
  res.predicted.assign(1, current);
  for (int h = 0; h < H; ++h)
    res.predicted.push_back(euler_step(res.predicted.back(),
                                       nominal_u[static_cast<std::size_t>(h)], dt,
                                       L));
  return res;
}

}  // namespace icoil::co
