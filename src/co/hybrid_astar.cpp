#include "co/hybrid_astar.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "co/reeds_shepp.hpp"
#include "geom/angles.hpp"

namespace icoil::co {

namespace {

/// Substeps per motion primitive — a compile-time constant so every node
/// carries its incoming arc inline (no per-node heap allocation).
constexpr int kArcSubsteps = 4;

/// Arena node: fixed-size, contiguous, POD-copyable. The incoming primitive
/// arc lives inline; `arc_len` is how many of the slots are valid (always
/// kArcSubsteps for primitive nodes, 0 for the root).
struct Node {
  geom::Pose2 pose;
  geom::Pose2 arc[kArcSubsteps];
  double g = 0.0;
  double steer = 0.0;  ///< steer of the arc that reached this node
  int parent = -1;
  int direction = 1;   ///< direction of the arc that reached this node
  int arc_len = 0;
};

struct QueueEntry {
  double f = 0.0;
  int node = 0;
  bool operator>(const QueueEntry& o) const {
    // Tie-break on arena index so the pop order (hence the returned path)
    // is deterministic whenever two entries share an f value.
    return f != o.f ? f > o.f : node > o.node;
  }
};

/// One motion primitive precomputed in the node's local frame: substep
/// offsets from the expanding pose plus the arc's fixed base cost. Per
/// expansion only one sin/cos of the node heading and a handful of
/// multiply-adds remain — tan(steer), the Euler chain and the cost terms
/// are computed once per plan() instead of once per substep.
struct ArcTemplate {
  struct Sub {
    double lx = 0.0;       ///< local-frame x offset
    double ly = 0.0;       ///< local-frame y offset
    double dheading = 0.0; ///< heading delta from the expanding pose
  };
  Sub sub[kArcSubsteps];
  double steer = 0.0;
  double base_cost = 0.0;  ///< step + steer penalty (direction-independent
                           ///  terms folded in; switch/steer-change are not)
  int direction = 1;
};

/// Flat open-addressed best-g table over packed grid keys: linear probing,
/// power-of-two capacity, grown at 70% load. Replaces unordered_map's
/// per-bucket allocations on the hottest per-push lookup.
class BestGTable {
 public:
  BestGTable() { slots_.resize(kInitialCapacity); }

  /// True when `g` improves (or first sets) the stored value for `key`;
  /// stores it in that case.
  bool improve(std::int64_t key, double g) {
    if (10 * (size_ + 1) >= 7 * slots_.size()) grow();
    Slot* slot = find(key);
    if (!slot->used) {
      slot->used = true;
      slot->key = key;
      slot->g = g;
      ++size_;
      return true;
    }
    if (slot->g <= g) return false;
    slot->g = g;
    return true;
  }

 private:
  struct Slot {
    std::int64_t key = 0;
    double g = 0.0;
    bool used = false;
  };
  static constexpr std::size_t kInitialCapacity = 1u << 13;

  Slot* find(std::int64_t key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i =
        (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> 32 & mask;
    while (slots_[i].used && slots_[i].key != key) i = (i + 1) & mask;
    return &slots_[i];
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (const Slot& s : old) {
      if (!s.used) continue;
      Slot* slot = find(s.key);
      *slot = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace

HybridAStar::HybridAStar(HybridAStarConfig config, vehicle::VehicleParams params)
    : config_(config), params_(params), model_(params) {}

bool HybridAStar::pose_free(const geom::Pose2& pose,
                            const std::vector<geom::Obb>& obstacles,
                            const geom::Aabb& bounds) const {
  const geom::Obb fp = model_.footprint(pose).inflated(config_.obstacle_margin);
  for (const geom::Vec2& c : fp.corners())
    if (!bounds.contains(c)) return false;
  for (const geom::Obb& o : obstacles)
    if (geom::overlaps(fp, o)) return false;
  return true;
}

bool HybridAStar::pose_free(const geom::Pose2& pose,
                            const geom::ObbSet& obstacles,
                            const geom::Aabb& bounds,
                            const world::DistanceField* field) const {
  const geom::Obb fp = model_.footprint(pose).inflated(config_.obstacle_margin);
  for (const geom::Vec2& c : fp.corners())
    if (!bounds.contains(c)) return false;
  if (field != nullptr &&
      field->probe(fp) == world::DistanceField::Probe::kFree)
    return true;
  return !obstacles.any_overlap(fp);
}

RefPath HybridAStar::reeds_shepp_fallback(const geom::Pose2& start,
                                          const geom::Pose2& goal) const {
  const ReedsShepp rs(params_.min_turn_radius() * config_.rs_radius_factor);
  const auto path = rs.shortest_path(start, goal);
  std::vector<PathPoint> pts;
  if (path) {
    for (const RsSample& s : rs.sample(start, *path, config_.sample_step))
      pts.push_back({s.pose, s.direction, 0.0});
  } else {
    pts.push_back({start, 1, 0.0});
    pts.push_back({goal, 1, 0.0});
  }
  return RefPath(std::move(pts));
}

std::optional<RefPath> HybridAStar::plan(const geom::Pose2& start,
                                         const geom::Pose2& goal,
                                         const std::vector<geom::Obb>& obstacles,
                                         const geom::Aabb& bounds,
                                         const core::FrameContext* frame,
                                         const world::DistanceField* field,
                                         PlanStats* stats) const {
  PlanStats local_stats;
  PlanStats& st = stats != nullptr ? *stats : local_stats;
  st = PlanStats{};

  const double radius = params_.min_turn_radius() * config_.rs_radius_factor;
  const ReedsShepp rs(radius);
  // Broad-phase cache: every expansion probes the same obstacle set.
  const geom::ObbSet obstacle_set(obstacles);

  // Heuristic terms per the configured mode. The Dijkstra sweep always runs
  // over a raster built HERE from the raw obstacles (never the caller's
  // collision `field`, whose presence and resolution depend on the
  // collision backend) — the heuristic, and so the returned path, must be
  // identical under every backend.
  const HeuristicMode mode = config_.heuristic;
  const bool use_exact_rs = mode == HeuristicMode::kEuclidRs;
  const bool use_lut =
      mode == HeuristicMode::kLut || mode == HeuristicMode::kMax;
  const bool use_dijkstra =
      mode == HeuristicMode::kDijkstra || mode == HeuristicMode::kMax;

  std::shared_ptr<const RsHeuristicLut> lut;
  std::shared_ptr<const RsHeuristicLut> lut_fine;
  if (use_lut) {
    lut = RsHeuristicLut::shared({radius, config_.lut_xy_resolution,
                                  config_.lut_extent,
                                  config_.lut_heading_bins});
    if (config_.lut_fine_extent > 0.0)
      lut_fine = RsHeuristicLut::shared({radius, config_.lut_fine_xy_resolution,
                                         config_.lut_fine_extent,
                                         config_.lut_fine_heading_bins});
  }
  std::optional<DijkstraCostMap> costmap;
  if (use_dijkstra) {
    // Disc the footprint is guaranteed to cover around the rear axle, plus
    // the same margin pose_free inflates by: cells the sweep blocks are
    // provably untraversable, so the cost-to-go stays a lower bound.
    const double axle_disc =
        std::min(params_.width / 2.0,
                 params_.length / 2.0 - std::abs(params_.center_offset)) +
        config_.obstacle_margin;
    const world::DistanceField costmap_field(bounds, obstacles,
                                             config_.costmap_resolution);
    costmap.emplace(costmap_field, goal.position, axle_disc);
  }

  // The RS-table term only applies OUTSIDE the analytic-expansion disc.
  // Inside it the RS shot fires on every pop, so near-goal ordering
  // precision buys nothing — while the table's quantization error (a few
  // decimetres) reshuffles the near-goal plateau and multiplies failing
  // shot attempts on hard instances. Outside the disc the error is small
  // relative to the distances involved and the table guides as well as the
  // exact solve at a fraction of the cost.
  const double lut_gate_sq = config_.rs_shot_radius * config_.rs_shot_radius;
  auto heuristic = [&](const geom::Pose2& p) {
    ++st.heuristic_evals;
    const double dx = p.position.x - goal.position.x;
    const double dy = p.position.y - goal.position.y;
    const double dist_sq = dx * dx + dy * dy;
    double h = std::sqrt(dist_sq);
    if (use_exact_rs) {
      const auto path = rs.shortest_path(p, goal);
      if (path) h = std::max(h, rs.length(*path));
    }
    if (use_lut && dist_sq > lut_gate_sq) {
      const geom::Vec2 rel = goal.to_local(p.position);
      const double dth = p.heading - goal.heading;
      h = std::max(h, lut->value_rel(rel.x, rel.y, dth));
      if (lut_fine) h = std::max(h, lut_fine->value_rel(rel.x, rel.y, dth));
    }
    if (use_dijkstra) {
      const double d = costmap->cost_to_go(p.position);
      if (d > h) h = d;
    }
    return h;
  };

  auto key_of = [&](const geom::Pose2& p, int dir) {
    const long xi = std::lround(p.x() / config_.xy_resolution);
    const long yi = std::lround(p.y() / config_.xy_resolution);
    const double h = geom::wrap_angle_2pi(p.heading);
    const long ti = std::lround(h / (geom::kTwoPi / config_.heading_bins)) %
                    config_.heading_bins;
    return pack_grid_key(xi, yi, ti, dir);
  };

  std::vector<Node> nodes;
  nodes.reserve(4096);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> open;
  BestGTable best_g;

  if (!pose_free(start, obstacle_set, bounds, field)) return std::nullopt;
  {
    Node root;
    root.pose = start;
    nodes.push_back(root);
  }
  open.push({heuristic(start), 0});
  best_g.improve(key_of(start, 1), 0.0);

  // Motion-primitive templates: steer levels across [-max, +max] in both
  // directions, substep geometry and base cost precomputed once.
  std::vector<ArcTemplate> templates;
  templates.reserve(static_cast<std::size_t>(2 * config_.num_steer_levels));
  for (const int dir : {1, -1}) {
    for (int i = 0; i < config_.num_steer_levels; ++i) {
      const double steer =
          config_.steer_fraction *
          (-params_.max_steer +
           2.0 * params_.max_steer * i / (config_.num_steer_levels - 1));
      ArcTemplate tmpl;
      tmpl.direction = dir;
      tmpl.steer = steer;
      tmpl.base_cost =
          config_.step * (dir < 0 ? config_.reverse_penalty : 1.0) +
          config_.steer_penalty * std::abs(steer) * config_.step;
      const double ds = dir * config_.step / kArcSubsteps;
      const double yaw_rate = std::tan(steer) / params_.wheelbase;
      double lx = 0.0, ly = 0.0, lh = 0.0;
      for (int k = 0; k < kArcSubsteps; ++k) {
        lx += ds * std::cos(lh);
        ly += ds * std::sin(lh);
        lh += ds * yaw_rate;
        tmpl.sub[k] = {lx, ly, lh};
      }
      templates.push_back(tmpl);
    }
  }

  // Sphere-marching short-circuit: with the EDT present, one conservative
  // point lookup certifies a travel budget — every footprint whose rear
  // axle stays within the returned distance of the probed point is provably
  // inside bounds and clear of the statics (the lookup is a lower bound and
  // r_cover is the footprint circumradius about the axle, margin included),
  // so per-pose narrow-phase checks inside the budget can be skipped
  // without changing a single accept/reject verdict.
  const double r_cover =
      std::abs(params_.center_offset) +
      std::hypot(params_.length / 2.0 + config_.obstacle_margin,
                 params_.width / 2.0 + config_.obstacle_margin);
  auto certified_travel = [&](geom::Vec2 pos) {
    if (field == nullptr) return 0.0;
    const double db =
        std::min(std::min(pos.x - bounds.min.x, bounds.max.x - pos.x),
                 std::min(pos.y - bounds.min.y, bounds.max.y - pos.y));
    return std::min(field->point_clearance(pos), db) - r_cover;
  };
  const double substep_len = config_.step / kArcSubsteps;

  int expansions = 0;
  int pops_since_shot = config_.rs_shot_period;  // allow an immediate try
  std::vector<RsSample> shot;   // successful analytic expansion
  int shot_parent = -1;

  // Frame-budget poll stride: cheap enough to keep latency bounded without
  // paying a clock read per expansion.
  constexpr int kBudgetPollStride = 128;

  while (!open.empty() && expansions < config_.max_expansions) {
    if (frame != nullptr && expansions % kBudgetPollStride == 0 &&
        frame->expired())
      return std::nullopt;  // budget gone: let the caller fall back
    const QueueEntry top = open.top();
    open.pop();
    const int ni = top.node;
    const Node snapshot = nodes[static_cast<std::size_t>(ni)];
    ++expansions;

    // Analytic expansion: a collision-checked Reeds-Shepp shot. Inside
    // rs_shot_radius every pop tries; farther out the attempt period grows
    // with distance so the shot stops burning RS solves across the lot.
    const double goal_dist =
        geom::distance(snapshot.pose.position, goal.position);
    const int shot_period =
        goal_dist < config_.rs_shot_radius
            ? 1
            : config_.rs_shot_period *
                  (1 + static_cast<int>(goal_dist / config_.rs_shot_radius));
    if (++pops_since_shot >= shot_period) {
      pops_since_shot = 0;
      ++st.rs_shot_attempts;
      if (const auto path = rs.shortest_path(snapshot.pose, goal)) {
        // Collision-check the samples from the GOAL end backward: when the
        // goal corridor is blocked, every attempt collides near the goal —
        // the one part all shots share — so the backward walk rejects each
        // in a handful of probes instead of re-checking the long clear run
        // from the start side. Consecutive samples sit at most sample_step
        // apart along the path, so one clearance probe certifies whole runs
        // of them (in either direction). Check order never changes the
        // verdict: every sample must be free either way.
        shot.clear();
        rs.for_each_sample(snapshot.pose, *path, config_.sample_step,
                           [&](const RsSample& s) {
                             shot.push_back(s);
                             return true;
                           });
        bool free = true;
        double certified = 0.0;
        for (std::size_t i = shot.size(); i-- > 0;) {
          if (certified >= config_.sample_step) {
            certified -= config_.sample_step;
            continue;
          }
          certified = certified_travel(shot[i].pose.position);
          if (certified <= 0.0) {
            certified = 0.0;
            if (!pose_free(shot[i].pose, obstacle_set, bounds, field)) {
              free = false;
              break;
            }
          }
        }
        if (free) {
          shot_parent = ni;
          st.solved_by_shot = true;
          st.solution_cost = snapshot.g + rs.length(*path);
          break;
        }
      }
    }

    // Expand motion primitives by transforming each template through the
    // node pose: one sin/cos per expansion, no allocation per node. One
    // clearance probe at the node certifies every substep within its travel
    // budget across ALL templates (substep k sits at most (k+1) substeps of
    // arc length from the node), skipping their narrow-phase checks.
    const double ch = std::cos(snapshot.pose.heading);
    const double sh = std::sin(snapshot.pose.heading);
    const double node_certified = certified_travel(snapshot.pose.position);
    for (const ArcTemplate& tmpl : templates) {
      Node next;
      next.arc_len = kArcSubsteps;
      bool free = true;
      for (int k = 0; k < kArcSubsteps; ++k) {
        const ArcTemplate::Sub& s = tmpl.sub[k];
        const geom::Pose2 p{
            snapshot.pose.position.x + s.lx * ch - s.ly * sh,
            snapshot.pose.position.y + s.lx * sh + s.ly * ch,
            geom::wrap_angle(snapshot.pose.heading + s.dheading)};
        if ((k + 1) * substep_len > node_certified &&
            !pose_free(p, obstacle_set, bounds, field)) {
          free = false;
          break;
        }
        next.arc[k] = p;
      }
      if (!free) continue;

      double cost = tmpl.base_cost;
      if (snapshot.parent >= 0 && tmpl.direction != snapshot.direction)
        cost += config_.switch_penalty;
      cost += config_.steer_change_penalty * std::abs(tmpl.steer - snapshot.steer);
      const double g = snapshot.g + cost;

      next.pose = next.arc[kArcSubsteps - 1];
      if (!best_g.improve(key_of(next.pose, tmpl.direction), g)) continue;

      next.g = g;
      next.steer = tmpl.steer;
      next.parent = ni;
      next.direction = tmpl.direction;
      nodes.push_back(next);
      open.push({g + heuristic(next.pose), static_cast<int>(nodes.size()) - 1});
    }
  }

  st.expansions = expansions;
  st.nodes = static_cast<int>(nodes.size());
  if (shot_parent < 0) return std::nullopt;

  // Backtrack primitives, then append the analytic expansion.
  std::vector<PathPoint> pts;
  {
    std::vector<int> chain;
    for (int i = shot_parent; i >= 0; i = nodes[static_cast<std::size_t>(i)].parent)
      chain.push_back(i);
    std::reverse(chain.begin(), chain.end());
    pts.push_back({nodes[static_cast<std::size_t>(chain.front())].pose, 1, 0.0});
    for (std::size_t c = 1; c < chain.size(); ++c) {
      const Node& n = nodes[static_cast<std::size_t>(chain[c])];
      for (int k = 0; k < n.arc_len; ++k)
        pts.push_back({n.arc[k], n.direction, 0.0});
    }
  }
  for (std::size_t i = 1; i < shot.size(); ++i)
    pts.push_back({shot[i].pose, shot[i].direction, 0.0});
  // Ensure the exact goal pose terminates the path.
  pts.push_back({goal, pts.empty() ? 1 : pts.back().direction, 0.0});

  // Fix up the direction of the first point.
  if (pts.size() >= 2) pts.front().direction = pts[1].direction;
  return RefPath(std::move(pts));
}

}  // namespace icoil::co
