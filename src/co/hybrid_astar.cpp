#include "co/hybrid_astar.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "co/reeds_shepp.hpp"
#include "geom/angles.hpp"

namespace icoil::co {

namespace {

struct Node {
  geom::Pose2 pose;
  int direction = 1;       ///< direction of the arc that reached this node
  double steer = 0.0;      ///< steer of the arc that reached this node
  double g = 0.0;
  int parent = -1;
  std::vector<geom::Pose2> arc;  ///< poses along the incoming primitive
};

struct QueueEntry {
  double f = 0.0;
  int node = 0;
  bool operator>(const QueueEntry& o) const { return f > o.f; }
};

}  // namespace

HybridAStar::HybridAStar(HybridAStarConfig config, vehicle::VehicleParams params)
    : config_(config), params_(params), model_(params) {}

bool HybridAStar::pose_free(const geom::Pose2& pose,
                            const std::vector<geom::Obb>& obstacles,
                            const geom::Aabb& bounds) const {
  const geom::Obb fp = model_.footprint(pose).inflated(config_.obstacle_margin);
  for (const geom::Vec2& c : fp.corners())
    if (!bounds.contains(c)) return false;
  for (const geom::Obb& o : obstacles)
    if (geom::overlaps(fp, o)) return false;
  return true;
}

bool HybridAStar::pose_free(const geom::Pose2& pose,
                            const geom::ObbSet& obstacles,
                            const geom::Aabb& bounds,
                            const world::DistanceField* field) const {
  const geom::Obb fp = model_.footprint(pose).inflated(config_.obstacle_margin);
  for (const geom::Vec2& c : fp.corners())
    if (!bounds.contains(c)) return false;
  if (field != nullptr &&
      field->probe(fp) == world::DistanceField::Probe::kFree)
    return true;
  return !obstacles.any_overlap(fp);
}

RefPath HybridAStar::reeds_shepp_fallback(const geom::Pose2& start,
                                          const geom::Pose2& goal) const {
  const ReedsShepp rs(params_.min_turn_radius() * config_.rs_radius_factor);
  const auto path = rs.shortest_path(start, goal);
  std::vector<PathPoint> pts;
  if (path) {
    for (const RsSample& s : rs.sample(start, *path, config_.sample_step))
      pts.push_back({s.pose, s.direction, 0.0});
  } else {
    pts.push_back({start, 1, 0.0});
    pts.push_back({goal, 1, 0.0});
  }
  return RefPath(std::move(pts));
}

std::optional<RefPath> HybridAStar::plan(const geom::Pose2& start,
                                         const geom::Pose2& goal,
                                         const std::vector<geom::Obb>& obstacles,
                                         const geom::Aabb& bounds,
                                         const core::FrameContext* frame,
                                         const world::DistanceField* field) const {
  const double radius = params_.min_turn_radius() * config_.rs_radius_factor;
  const ReedsShepp rs(radius);
  // Broad-phase cache: every expansion probes the same obstacle set.
  const geom::ObbSet obstacle_set(obstacles);

  auto heuristic = [&](const geom::Pose2& p) {
    const double euclid = geom::distance(p.position, goal.position);
    const auto path = rs.shortest_path(p, goal);
    return path ? std::max(euclid, rs.length(*path)) : euclid;
  };

  auto key_of = [&](const geom::Pose2& p, int dir) {
    const long xi = std::lround(p.x() / config_.xy_resolution);
    const long yi = std::lround(p.y() / config_.xy_resolution);
    const double h = geom::wrap_angle_2pi(p.heading);
    const long ti = std::lround(h / (geom::kTwoPi / config_.heading_bins)) %
                    config_.heading_bins;
    return pack_grid_key(xi, yi, ti, dir);
  };

  std::vector<Node> nodes;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> open;
  std::unordered_map<std::int64_t, double> best_g;

  if (!pose_free(start, obstacle_set, bounds, field)) return std::nullopt;
  nodes.push_back({start, 1, 0.0, 0.0, -1, {}});
  open.push({heuristic(start), 0});
  best_g[key_of(start, 1)] = 0.0;

  // Steer levels across [-max_steer, +max_steer].
  std::vector<double> steers;
  for (int i = 0; i < config_.num_steer_levels; ++i)
    steers.push_back(config_.steer_fraction *
                     (-params_.max_steer +
                      2.0 * params_.max_steer * i /
                          (config_.num_steer_levels - 1)));

  const int kArcSubsteps = 4;
  int expansions = 0;
  std::vector<RsSample> shot;   // successful analytic expansion
  int shot_parent = -1;

  // Frame-budget poll stride: cheap enough to keep latency bounded without
  // paying a clock read per expansion.
  constexpr int kBudgetPollStride = 128;

  while (!open.empty() && expansions < config_.max_expansions) {
    if (frame != nullptr && expansions % kBudgetPollStride == 0 &&
        frame->expired())
      return std::nullopt;  // budget gone: let the caller fall back
    const QueueEntry top = open.top();
    open.pop();
    const int ni = top.node;
    const Node snapshot = nodes[static_cast<std::size_t>(ni)];
    ++expansions;

    // Analytic expansion: try a collision-checked Reeds-Shepp shot.
    if (geom::distance(snapshot.pose.position, goal.position) <
        config_.rs_shot_radius) {
      if (const auto path = rs.shortest_path(snapshot.pose, goal)) {
        const auto samples = rs.sample(snapshot.pose, *path, config_.sample_step);
        bool free = true;
        for (const RsSample& s : samples) {
          if (!pose_free(s.pose, obstacle_set, bounds, field)) {
            free = false;
            break;
          }
        }
        if (free) {
          shot = samples;
          shot_parent = ni;
          break;
        }
      }
    }

    // Expand motion primitives.
    for (int dir : {1, -1}) {
      for (double steer : steers) {
        geom::Pose2 p = snapshot.pose;
        std::vector<geom::Pose2> arc;
        bool free = true;
        const double ds = dir * config_.step / kArcSubsteps;
        const double yaw_rate = std::tan(steer) / params_.wheelbase;
        for (int k = 0; k < kArcSubsteps; ++k) {
          p.position.x += ds * std::cos(p.heading);
          p.position.y += ds * std::sin(p.heading);
          p.heading = geom::wrap_angle(p.heading + ds * yaw_rate);
          if (!pose_free(p, obstacle_set, bounds, field)) {
            free = false;
            break;
          }
          arc.push_back(p);
        }
        if (!free) continue;

        double cost = config_.step * (dir < 0 ? config_.reverse_penalty : 1.0);
        cost += config_.steer_penalty * std::abs(steer) * config_.step;
        if (snapshot.parent >= 0 && dir != snapshot.direction)
          cost += config_.switch_penalty;
        cost += config_.steer_change_penalty * std::abs(steer - snapshot.steer);
        const double g = snapshot.g + cost;

        const std::int64_t key = key_of(p, dir);
        const auto it = best_g.find(key);
        if (it != best_g.end() && it->second <= g) continue;
        best_g[key] = g;

        nodes.push_back({p, dir, steer, g, ni, std::move(arc)});
        open.push({g + heuristic(p), static_cast<int>(nodes.size()) - 1});
      }
    }
  }

  if (shot_parent < 0) return std::nullopt;

  // Backtrack primitives, then append the analytic expansion.
  std::vector<PathPoint> pts;
  {
    std::vector<int> chain;
    for (int i = shot_parent; i >= 0; i = nodes[static_cast<std::size_t>(i)].parent)
      chain.push_back(i);
    std::reverse(chain.begin(), chain.end());
    pts.push_back({nodes[static_cast<std::size_t>(chain.front())].pose, 1, 0.0});
    for (std::size_t c = 1; c < chain.size(); ++c) {
      const Node& n = nodes[static_cast<std::size_t>(chain[c])];
      for (const geom::Pose2& ap : n.arc) pts.push_back({ap, n.direction, 0.0});
    }
  }
  for (std::size_t i = 1; i < shot.size(); ++i)
    pts.push_back({shot[i].pose, shot[i].direction, 0.0});
  // Ensure the exact goal pose terminates the path.
  pts.push_back({goal, pts.empty() ? 1 : pts.back().direction, 0.0});

  // Fix up the direction of the first point.
  if (pts.size() >= 2) pts.front().direction = pts[1].direction;
  return RefPath(std::move(pts));
}

}  // namespace icoil::co
