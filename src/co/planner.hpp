#pragma once

#include <optional>
#include <vector>

#include "co/hybrid_astar.hpp"
#include "co/refpath.hpp"
#include "co/trajopt.hpp"
#include "sensing/detector.hpp"
#include "vehicle/kinematics.hpp"

namespace icoil::co {

/// Behaviour tuning of the CO driving module.
struct CoPlannerConfig {
  TrajOptConfig trajopt;
  HybridAStarConfig astar;
  double cruise_speed = 2.0;        ///< forward tracking speed [m/s]
  double reverse_speed = 0.9;       ///< reverse tracking speed [m/s]
  double approach_distance = 1.8;   ///< taper speed within this arc of a stop
  double min_speed = 0.35;          ///< floor of the taper [m/s]
  double goal_pos_tol = 0.25;       ///< [m] stop commanding when parked
  double goal_heading_tol = 0.15;   ///< [rad]
  // Phase handover: the path is tracked one directed segment at a time; the
  // planner moves to the next segment once the vehicle reaches the segment
  // end (or is stalled right next to it).
  double phase_pos_tol = 0.45;      ///< [m]
  double phase_heading_tol = 0.25;  ///< [rad]
  double phase_speed_tol = 0.35;    ///< [m/s]
  double stall_seconds = 3.0;       ///< advance anyway after stalling this long
  double dt = 0.05;                 ///< control period (for the stall clock)
  /// Straight run-through added at every direction switch: the vehicle
  /// crosses the switch pose aligned and at speed, stops on the extension,
  /// and starts the next maneuver already aligned with its arc.
  double switch_extension = 0.8;    ///< [m]
};

/// One directed segment of the reference path with its target waypoints
/// (including the straight switch extensions).
struct PathPhase {
  std::vector<PathPoint> points;  ///< s is cumulative within the phase
  int direction = 1;

  double length() const { return points.empty() ? 0.0 : points.back().s; }
};

/// The CO module f_CO of section IV-B: tracks a hybrid-A* reference path
/// with the SQP MPC and converts the first optimized control into a driving
/// command. Holds per-episode state (reference path, phase progress, warm
/// start).
class CoPlanner {
 public:
  CoPlanner(CoPlannerConfig config, vehicle::VehicleParams params);

  const CoPlannerConfig& config() const { return config_; }
  const RefPath& reference() const { return ref_; }
  bool has_reference() const { return !ref_.empty(); }
  const std::vector<PathPhase>& phases() const { return phases_; }
  std::size_t current_phase() const { return phase_; }

  /// Plan the reference path from `start` to `goal` around the static
  /// obstacles. Returns false when hybrid A* fails (search exhausted, or a
  /// `frame` budget tripped mid-search) and the Reeds-Shepp fallback was
  /// used instead.
  bool plan_reference(const geom::Pose2& start, const geom::Pose2& goal,
                      const std::vector<geom::Obb>& static_obstacles,
                      const geom::Aabb& bounds,
                      const core::FrameContext* frame = nullptr);

  /// Captures an episode's planning inputs WITHOUT running the search; the
  /// next ensure_reference()/act() plans them. Deferring lets the heavy
  /// hybrid-A* search run under the first control frame's budget context
  /// instead of unbudgeted at episode setup (how the controllers use it).
  void defer_reference(const geom::Pose2& start, const geom::Pose2& goal,
                       std::vector<geom::Obb> static_obstacles,
                       const geom::Aabb& bounds);

  /// Runs a deferred plan if one is pending (no-op otherwise). act() calls
  /// this itself; controllers that need the plan earlier in their frame
  /// (e.g. before a mode decision) call it explicitly.
  void ensure_reference(const core::FrameContext* frame = nullptr);

  /// Set an externally computed reference (tests / replay). Optional
  /// obstacles let the switch extensions be collision-checked.
  void set_reference(RefPath path, std::vector<geom::Obb> static_obstacles = {},
                     std::optional<geom::Aabb> bounds = std::nullopt);

  /// Distance field over the episode's static obstacles (grid collision
  /// backend). When set, hybrid-A* expansion probes use its O(1)
  /// certainly-free fast path. Non-owning; pass nullptr for the analytic
  /// backend. Cleared by defer_reference() so a stale field from a previous
  /// episode's world can never leak into the next plan — controllers re-set
  /// it from the live World each act().
  void set_distance_field(const world::DistanceField* field) { field_ = field; }

  /// One control step: track the reference while avoiding `detections`.
  /// With `frame` set, the trajectory optimizer polls the frame budget
  /// between SQP rounds and returns its best-so-far control when it trips
  /// (graceful per-frame degradation instead of a blown deadline).
  vehicle::Command act(const vehicle::State& state,
                       const std::vector<sense::Detection>& detections,
                       const core::FrameContext* frame = nullptr);

  /// The H target points the MPC would track from `state` (exposed for
  /// tests and telemetry).
  std::vector<TargetPoint> build_targets(const vehicle::State& state);

  /// Result of the most recent MPC solve.
  const TrajOptResult& last_result() const { return last_result_; }

  /// Search counters of the most recent hybrid-A* run (zeroed until the
  /// first plan). Exposed for the planner bench and telemetry.
  const PlanStats& last_plan_stats() const { return plan_stats_; }

  /// Reset per-episode progress (keeps the reference).
  void reset_progress();

 private:
  void rebuild_phases();
  void maybe_advance_phase(const vehicle::State& state);

  CoPlannerConfig config_;
  vehicle::VehicleParams params_;
  vehicle::BicycleModel model_;
  TrajOpt trajopt_;
  HybridAStar astar_;
  RefPath ref_;
  const world::DistanceField* field_ = nullptr;
  std::vector<geom::Obb> static_obstacles_;
  std::optional<geom::Aabb> bounds_;
  // Deferred-plan inputs (defer_reference -> ensure_reference).
  bool pending_plan_ = false;
  geom::Pose2 pending_start_, pending_goal_;
  std::vector<geom::Obb> pending_static_;
  geom::Aabb pending_bounds_;
  std::vector<PathPhase> phases_;
  std::size_t phase_ = 0;
  std::size_t progress_ = 0;   ///< nearest-index hint within the phase
  int stall_frames_ = 0;
  std::vector<vehicle::PlannerControl> warm_;
  TrajOptResult last_result_;
  PlanStats plan_stats_;
};

}  // namespace icoil::co
