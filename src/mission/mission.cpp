#include "mission/mission.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "mathkit/fnv.hpp"
#include "sim/session.hpp"

namespace icoil::mission {

const char* to_string(LegType t) {
  switch (t) {
    case LegType::kEnterLot: return "enter_lot";
    case LegType::kCruiseToBay: return "cruise_to_bay";
    case LegType::kPark: return "park";
    case LegType::kDwell: return "dwell";
    case LegType::kUnpark: return "unpark";
    case LegType::kExit: return "exit";
  }
  return "?";
}

const char* to_string(LegStatus s) {
  switch (s) {
    case LegStatus::kCompleted: return "completed";
    case LegStatus::kReplanned: return "replanned";
    case LegStatus::kFailed: return "failed";
  }
  return "?";
}

std::uint64_t MissionResult::fingerprint() const {
  math::Fnv1a h;
  h.add_int(version);
  h.add_string(mission);
  h.add_string(method);
  h.add_int(static_cast<std::int64_t>(seed));
  h.add_int(success ? 1 : 0);
  h.add_int(replans);
  h.add_int(parked_bay);
  h.add_double(park_time);
  h.add_double(exit_time);
  h.add_int(static_cast<std::int64_t>(legs.size()));
  for (const LegResult& leg : legs) {
    h.add_int(static_cast<std::int64_t>(leg.type));
    h.add_int(leg.target_bay);
    h.add_int(static_cast<std::int64_t>(leg.outcome));
    h.add_int(static_cast<std::int64_t>(leg.status));
    h.add_int(static_cast<std::int64_t>(leg.frames));
    h.add_double(leg.sim_seconds);
    h.add_double(leg.min_clearance);
    h.add_int(leg.deadline_hits);
    // leg.wall_seconds intentionally excluded: fingerprints must be
    // bit-identical across machines and thread counts.
  }
  return h.value();
}

std::uint64_t MissionSpec::fingerprint() const {
  math::Fnv1a h;
  h.add_string(name);
  h.add_string(generator);
  h.add_int(static_cast<std::int64_t>(params.values().size()));
  for (const auto& [key, value] : params.values()) {
    h.add_string(key);
    h.add_double(value);
  }
  h.add_int(static_cast<std::int64_t>(difficulty));
  h.add_double(dwell_seconds);
  h.add_double(leg_time_limit);
  h.add_int(max_replans);
  h.add_double(traffic.rival_claim_time);
  h.add_int(static_cast<std::int64_t>(traffic.agents.size()));
  for (const TrafficAgentSpec& a : traffic.agents) {
    h.add_int(static_cast<std::int64_t>(a.kind));
    h.add_string(a.name);
    h.add_double(a.speed);
    h.add_double(a.half_length);
    h.add_double(a.half_width);
    h.add_int(static_cast<std::int64_t>(a.route.size()));
    for (const geom::Vec2& p : a.route) {
      h.add_double(p.x);
      h.add_double(p.y);
    }
    h.add_double(a.start_offset);
    h.add_double(a.bay_claim_prob);
    h.add_double(a.dwell_seconds);
    h.add_int(a.rival ? 1 : 0);
    h.add_double(a.trigger.min.x);
    h.add_double(a.trigger.min.y);
    h.add_double(a.trigger.max.x);
    h.add_double(a.trigger.max.y);
    h.add_double(a.cooldown_seconds);
  }
  return h.value();
}

// ---------------------------------------------------------------- registry

namespace detail {
void register_builtin_missions(MissionRegistry& registry);  // templates.cpp
}

MissionRegistry::MissionRegistry() { detail::register_builtin_missions(*this); }

MissionRegistry& MissionRegistry::instance() {
  static MissionRegistry registry;
  return registry;
}

void MissionRegistry::add(MissionSpec spec) {
  for (MissionSpec& existing : specs_) {
    if (existing.name == spec.name) {
      existing = std::move(spec);
      return;
    }
  }
  specs_.push_back(std::move(spec));
}

const MissionSpec* MissionRegistry::find(const std::string& name) const {
  for (const MissionSpec& s : specs_)
    if (s.name == name) return &s;
  return nullptr;
}

const MissionSpec& MissionRegistry::at(const std::string& name) const {
  const MissionSpec* spec = find(name);
  if (spec != nullptr) return *spec;
  std::string known;
  for (const std::string& n : names()) known += (known.empty() ? "" : ", ") + n;
  throw std::invalid_argument("MissionRegistry: unknown mission template \"" +
                              name + "\" (known: " + known + ")");
}

std::vector<std::string> MissionRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const MissionSpec& s : specs_) out.push_back(s.name);
  std::sort(out.begin(), out.end());
  return out;
}

// ----------------------------------------------------------------- mission

namespace {

/// Base scenario of a mission: the template's generator instance with the
/// scripted dynamic obstacles stripped — the TrafficScript replaces them
/// with behaviour-driven agents.
world::Scenario make_base(const MissionSpec& spec, std::uint64_t seed) {
  world::ScenarioOptions opt;
  opt.generator = spec.generator;
  opt.params = spec.params;
  opt.difficulty = spec.difficulty;
  opt.start_class = world::StartClass::kRemote;
  opt.time_limit = spec.leg_time_limit;
  world::Scenario sc = world::make_scenario(opt, seed);
  sc.obstacles.erase(
      std::remove_if(sc.obstacles.begin(), sc.obstacles.end(),
                     [](const world::Obstacle& o) { return o.dynamic(); }),
      sc.obstacles.end());
  return sc;
}

double wall_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Mission::Mission(const MissionSpec& spec, std::uint64_t seed,
                 MissionConfig config)
    : spec_(spec), seed_(seed), config_(config),
      base_(make_base(spec, seed)), statics_(base_.obstacles),
      traffic_(spec.traffic, base_.map, seed ^ 0x7A5C3D2EB4F6E91Dull) {
  // Pre-claim every bay a scenario-static obstacle sits in, so neither the
  // ego nor the cruisers ever target an already-parked-in bay.
  for (std::size_t b = 0; b < base_.map.bays.size(); ++b)
    for (const world::Obstacle& o : statics_)
      if (base_.map.bays[b].contains(o.shape.center))
        traffic_.ledger().claim(b, BayLedger::kStaticOwner);
}

sim::SimConfig Mission::leg_config(LegType type) const {
  sim::SimConfig cfg = config_.sim;
  switch (type) {
    case LegType::kPark:
      break;  // the paper's parking tolerances, unchanged
    case LegType::kExit:
      cfg.goal_pos_tol = config_.cruise_pos_tol;
      cfg.goal_heading_tol = config_.exit_heading_tol;
      cfg.goal_speed_tol = config_.cruise_speed_tol;
      break;
    default:  // enter / cruise / unpark: pass-through waypoints
      cfg.goal_pos_tol = config_.cruise_pos_tol;
      cfg.goal_heading_tol = config_.cruise_heading_tol;
      cfg.goal_speed_tol = config_.cruise_speed_tol;
      break;
  }
  return cfg;
}

int Mission::pick_bay() const {
  int best = -1;
  double best_d = 0.0;
  for (std::size_t b = 0; b < traffic_.ledger().size(); ++b) {
    if (!traffic_.ledger().is_free(b)) continue;
    const double d = geom::distance(
        ego_.pose.position,
        TrafficSimulator::bay_staging_pose(base_.map, b).position);
    if (best < 0 || d < best_d) {
      best = static_cast<int>(b);
      best_d = d;
    }
  }
  return best;
}

LegResult Mission::run_leg(LegType type, int target_bay,
                           const geom::Pose2& goal, int monitor_bay,
                           core::Controller& controller,
                           const core::CancelToken* cancel) {
  const auto wall0 = std::chrono::steady_clock::now();

  world::Scenario sc = base_;
  sc.obstacles = statics_;
  const int first_traffic_id =
      (statics_.empty() ? 0 : statics_.back().id) + 100;
  const auto roster = traffic_.roster(first_traffic_id);
  sc.obstacles.insert(sc.obstacles.end(), roster.begin(), roster.end());
  sc.map.goal_pose = goal;
  sc.time_limit = spec_.leg_time_limit;
  leg_scenarios_.push_back(sc);

  const std::uint64_t leg_seed =
      seed_ ^ (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(ordinal_ + 1));
  ++ordinal_;

  sim::Session session = sim::Session::open(sc, controller, leg_seed, ego_,
                                            elapsed_, leg_config(type), cancel);
  traffic_.attach(session.world_mutable());
  traffic_.set_ego(ego_.pose);

  const auto claim_lost = [&] {
    return monitor_bay >= 0 &&
           traffic_.ledger().owner_of(static_cast<std::size_t>(monitor_bay)) !=
               BayLedger::kEgoOwner;
  };

  LegStatus status = LegStatus::kCompleted;
  if (claim_lost()) status = LegStatus::kReplanned;
  while (status != LegStatus::kReplanned && !session.done()) {
    session.step();
    // One-frame-lagged ego feedback: fixed ordering, so agent behaviour is
    // a pure function of the frame index — never of thread scheduling.
    traffic_.set_ego(session.state().pose);
    if (claim_lost()) status = LegStatus::kReplanned;
  }

  ego_ = session.state();
  elapsed_ += session.sim_time();

  LegResult lr;
  lr.type = type;
  lr.target_bay = target_bay;
  lr.outcome = session.result().outcome;
  lr.frames = session.frames();
  lr.sim_seconds = session.sim_time();
  lr.wall_seconds = wall_since(wall0);
  lr.min_clearance = session.result().min_clearance;
  lr.deadline_hits = session.result().deadline_hits;
  if (status == LegStatus::kReplanned)
    lr.status = LegStatus::kReplanned;
  else
    lr.status = session.result().success() ? LegStatus::kCompleted
                                           : LegStatus::kFailed;
  return lr;
}

LegResult Mission::run_dwell() {
  const auto wall0 = std::chrono::steady_clock::now();

  world::Scenario sc = base_;
  sc.obstacles = statics_;
  const int first_traffic_id =
      (statics_.empty() ? 0 : statics_.back().id) + 100;
  const auto roster = traffic_.roster(first_traffic_id);
  sc.obstacles.insert(sc.obstacles.end(), roster.begin(), roster.end());
  sc.time_limit = spec_.leg_time_limit;

  // No Session: the ego is parked (engine off), only traffic advances.
  world::World world(sc, world::WorldConfig{config_.sim.collision_backend,
                                            config_.sim.grid_resolution});
  world.set_time(elapsed_);
  traffic_.attach(world);
  traffic_.set_ego(ego_.pose);

  const auto frames = static_cast<std::size_t>(
      std::max(0.0, spec_.dwell_seconds) / config_.sim.dt + 0.5);
  for (std::size_t f = 0; f < frames; ++f) world.step(config_.sim.dt);
  elapsed_ += static_cast<double>(frames) * config_.sim.dt;

  LegResult lr;
  lr.type = LegType::kDwell;
  lr.outcome = sim::Outcome::kSuccess;
  lr.status = LegStatus::kCompleted;
  lr.frames = frames;
  lr.sim_seconds = static_cast<double>(frames) * config_.sim.dt;
  lr.wall_seconds = wall_since(wall0);
  return lr;
}

MissionResult Mission::run(core::Controller& controller,
                           const core::CancelToken* cancel) {
  const auto wall0 = std::chrono::steady_clock::now();

  MissionResult res;
  res.mission = spec_.name;
  res.method = controller.name();
  res.seed = seed_;

  ego_ = {};
  ego_.pose = base_.start_pose;
  elapsed_ = 0.0;
  ordinal_ = 0;
  leg_scenarios_.clear();

  const auto finish = [&](bool success) {
    res.success = success;
    res.wall_seconds = wall_since(wall0);
    return res;
  };

  // Leg 1 — EnterLot: from the remote spawn to the lot entrance (the close
  // spawn band's centre), any aisle-ish heading.
  const geom::Aabb& close = base_.map.spawn_close;
  const geom::Pose2 entrance{(close.min + close.max) * 0.5, 0.0};
  res.legs.push_back(
      run_leg(LegType::kEnterLot, -1, entrance, -1, controller, cancel));
  if (res.legs.back().status != LegStatus::kCompleted) return finish(false);

  // Claim a bay, cruise to its staging point, park. A lost claim (rival
  // steal, or a cruiser that physically beat us) aborts the current leg,
  // releases the claim and retargets — bounded by max_replans.
  int bay = pick_bay();
  bool parked = false;
  while (!parked) {
    if (bay < 0) {
      // Lot full: record the aborted search as a failed cruise leg.
      LegResult lr;
      lr.type = LegType::kCruiseToBay;
      lr.status = LegStatus::kFailed;
      res.legs.push_back(lr);
      return finish(false);
    }
    traffic_.ledger().claim(static_cast<std::size_t>(bay),
                            BayLedger::kEgoOwner);
    const auto b = static_cast<std::size_t>(bay);

    res.legs.push_back(run_leg(
        LegType::kCruiseToBay, bay,
        TrafficSimulator::bay_staging_pose(base_.map, b), bay, controller,
        cancel));
    LegStatus s = res.legs.back().status;
    if (s == LegStatus::kCompleted) {
      res.legs.push_back(run_leg(LegType::kPark, bay,
                                 base_.map.bay_parked_pose(b), bay, controller,
                                 cancel));
      s = res.legs.back().status;
      if (s == LegStatus::kCompleted) {
        parked = true;
        break;
      }
    }
    if (s == LegStatus::kFailed) return finish(false);
    // Replanned (in either leg): drop the claim if we still hold it and
    // retarget. The thief keeps the bay — pick_bay skips it.
    traffic_.ledger().release(b, BayLedger::kEgoOwner);
    ++res.replans;
    if (res.replans > spec_.max_replans) return finish(false);
    bay = pick_bay();
  }
  res.parked_bay = bay;
  res.park_time = elapsed_;

  // Dwell: traffic keeps moving around the parked ego.
  res.legs.push_back(run_dwell());
  res.legs.back().target_bay = bay;

  // Unpark: pull out to the staging point, then release the bay. The goal
  // heading faces the lot entrance rather than repeating the bay heading:
  // the parked pose is nose-out, so the pull-out becomes one forward arc
  // that leaves the ego already pointed the right way — instead of parking
  // it mid-aisle facing the bay row, forcing the exit leg to open with a
  // three-point turn in live traffic.
  const auto b = static_cast<std::size_t>(bay);
  geom::Pose2 unpark_goal = TrafficSimulator::bay_staging_pose(base_.map, b);
  unpark_goal.heading =
      (base_.start_pose.position - unpark_goal.position).angle();
  res.legs.push_back(
      run_leg(LegType::kUnpark, bay, unpark_goal, -1, controller, cancel));
  if (res.legs.back().status != LegStatus::kCompleted) return finish(false);
  traffic_.ledger().release(b, BayLedger::kEgoOwner);

  // Exit: back to where we came in. The goal heading is flipped to face OUT
  // of the lot — the planner would otherwise try to reverse-park into the
  // spawn pose's inbound heading, and exit_heading_tol accepts any heading
  // at this waypoint anyway.
  const geom::Pose2 exit_goal{base_.start_pose.position,
                              geom::wrap_angle(base_.start_pose.heading +
                                               geom::kPi)};
  res.legs.push_back(
      run_leg(LegType::kExit, -1, exit_goal, -1, controller, cancel));
  if (res.legs.back().status != LegStatus::kCompleted) return finish(false);

  res.exit_time = elapsed_;
  return finish(true);
}

}  // namespace icoil::mission
