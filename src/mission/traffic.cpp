#include "mission/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "geom/angles.hpp"
#include "mathkit/fnv.hpp"

namespace icoil::mission {
namespace {

/// Speed used for pull-in / pull-out maneuvers, independent of cruise speed.
constexpr double kManeuverSpeed = 1.1;
/// A cruiser considers claiming a bay once within this distance of its
/// staging point.
constexpr double kClaimRadius = 1.5;
/// Yield box in the cruiser's local frame: ego near this rectangle stops
/// the cruiser (simple right-of-way, keeps head-on aisle meetings from
/// becoming unavoidable collisions). The box tests the ego's CENTER, so it
/// must be padded by the worst-case ego half-footprint (~2.6 m): a car
/// nosing out of a staging point reaches into the lane while its center is
/// still ~4 m off it. The window also reaches back past the cruiser's rear
/// bumper: an ego dropping into the lane BESIDE the cruiser must keep it
/// braked too, or the cruiser advances into the ego's flank.
constexpr double kYieldBehind = -3.5;
constexpr double kYieldAhead = 8.0;
constexpr double kYieldHalfWidth = 4.5;
/// A parked cruiser will not pull out while the ego is this close.
constexpr double kPulloutEgoClearance = 8.0;
/// A mid-maneuver (pull-in / pull-out) cruiser freezes while the ego is this
/// close: a paused agent is a quasi-static obstacle the ego's planner routes
/// around, whereas two simultaneous maneuvers in one aisle section are not
/// resolvable by either side. The ego never waits on traffic, so freezing
/// cannot deadlock the mission.
constexpr double kManeuverPauseRadius = 4.5;
/// A crossing pedestrian pauses while the ego is this close. Must exceed the
/// ego's worst-case center-to-corner reach (~2.6 m) plus walking stride, or
/// the pedestrian steps into the bumper it was supposed to be yielding to.
constexpr double kPedPauseRadius = 4.5;

/// Ledger owner id of agent `i` (positive; 0 is the ego).
int agent_owner(std::size_t i) { return static_cast<int>(i) + 1; }

}  // namespace

TrafficSimulator::TrafficSimulator(TrafficScript script,
                                   const world::ParkingLotMap& map,
                                   std::uint64_t seed)
    : script_(std::move(script)), map_(&map), ledger_(map.bays.size()) {
  agents_.reserve(script_.agents.size());
  for (std::size_t i = 0; i < script_.agents.size(); ++i) {
    // Index-salted seeds: each agent owns an independent stream, so adding
    // or reordering agents in a template never silently reshuffles another
    // agent's dice.
    Agent a(script_.agents[i], seed ^ (0x9E3779B97F4A7C15ull * (i + 1)));
    if (a.spec.kind == TrafficAgentSpec::Kind::kCruiser) {
      a.route_len = 0.0;
      const auto& r = a.spec.route;
      for (std::size_t k = 0; k < r.size(); ++k)
        a.route_len += geom::distance(r[k], r[(k + 1) % r.size()]);
      a.phase = Phase::kCruise;
      a.arc = std::fmod(a.spec.start_offset, std::max(a.route_len, 1e-9));
      a.pose = loop_pose(a, a.arc);
    } else {
      a.phase = Phase::kWait;
      a.cross_dir = 0;
      const geom::Vec2 from = a.spec.route[0];
      const geom::Vec2 to = a.spec.route[1];
      a.pose = {from, (to - from).angle()};
    }
    agents_.push_back(std::move(a));
  }
}

geom::Pose2 TrafficSimulator::bay_staging_pose(const world::ParkingLotMap& map,
                                               std::size_t bay) {
  const geom::Obb& b = map.bays[bay];
  const geom::Vec2 dir{std::cos(b.heading), std::sin(b.heading)};
  // Nose pointing away from the bay: reversing straight from here reaches
  // ParkingLotMap::bay_parked_pose without a heading change.
  return {b.center + dir * (b.half_length + 2.2), b.heading};
}

geom::Pose2 TrafficSimulator::loop_pose(const Agent& a, double arc) const {
  const auto& r = a.spec.route;
  double s = std::fmod(arc, std::max(a.route_len, 1e-9));
  if (s < 0.0) s += a.route_len;
  for (std::size_t k = 0; k < r.size(); ++k) {
    const geom::Vec2 from = r[k];
    const geom::Vec2 to = r[(k + 1) % r.size()];
    const double len = geom::distance(from, to);
    if (s <= len || k + 1 == r.size()) {
      const double u = len > 1e-9 ? std::min(s / len, 1.0) : 0.0;
      return {geom::lerp(from, to, u), (to - from).angle()};
    }
    s -= len;
  }
  return {r[0], 0.0};
}

double TrafficSimulator::nearest_arc(const Agent& a,
                                     const geom::Vec2& p) const {
  const auto& r = a.spec.route;
  double best_d = std::numeric_limits<double>::max();
  double best_arc = 0.0;
  double base = 0.0;
  for (std::size_t k = 0; k < r.size(); ++k) {
    const geom::Vec2 from = r[k];
    const geom::Vec2 to = r[(k + 1) % r.size()];
    const geom::Vec2 seg = to - from;
    const double len2 = seg.norm_sq();
    const double t =
        len2 > 1e-12 ? std::clamp((p - from).dot(seg) / len2, 0.0, 1.0) : 0.0;
    const geom::Vec2 q = geom::lerp(from, to, t);
    const double d = geom::distance(p, q);
    if (d < best_d) {
      best_d = d;
      best_arc = base + t * std::sqrt(len2);
    }
    base += std::sqrt(len2);
  }
  return best_arc;
}

void TrafficSimulator::begin_maneuver(Agent& a, std::vector<geom::Pose2> poses,
                                      double speed) {
  a.path = std::move(poses);
  a.path_t.assign(a.path.size(), 0.0);
  for (std::size_t k = 1; k < a.path.size(); ++k) {
    const double d =
        geom::distance(a.path[k - 1].position, a.path[k].position);
    a.path_t[k] = a.path_t[k - 1] + std::max(d / speed, 1e-6);
  }
  a.path_clock = 0.0;
}

bool TrafficSimulator::step_maneuver(Agent& a, double dt) {
  a.path_clock += dt;
  if (a.path_clock >= a.path_t.back()) {
    a.pose = a.path.back();
    a.velocity = {};
    return true;
  }
  std::size_t k = 1;
  while (a.path_clock >= a.path_t[k]) ++k;
  const double span = a.path_t[k] - a.path_t[k - 1];
  const double u = (a.path_clock - a.path_t[k - 1]) / span;
  a.pose = {geom::lerp(a.path[k - 1].position, a.path[k].position, u),
            geom::slerp_angle(a.path[k - 1].heading, a.path[k].heading, u)};
  a.velocity = (a.path[k].position - a.path[k - 1].position) / span;
  return false;
}

void TrafficSimulator::step_cruiser(Agent& a, world::World& world, double dt) {
  const std::size_t self =
      static_cast<std::size_t>(&a - agents_.data());
  a.cooldown = std::max(0.0, a.cooldown - dt);

  switch (a.phase) {
    case Phase::kCruise: {
      // Rival steal: one-shot, time-triggered, only while the ego holds a
      // claim and is not already inside the bay (no stealing from under a
      // parked ego — the contest is for the approach, not an eviction).
      if (a.spec.rival && !rival_fired_ && script_.rival_claim_time >= 0.0 &&
          world.time() >= script_.rival_claim_time) {
        for (std::size_t b = 0; b < ledger_.size(); ++b) {
          if (ledger_.owner_of(b) != BayLedger::kEgoOwner) continue;
          if (world.bay_occupied(b)) continue;
          if (have_ego_ && map_->bays[b].contains(ego_.position)) continue;
          ledger_.steal(b, agent_owner(self));
          rival_fired_ = true;
          a.bay = static_cast<int>(b);
          const geom::Pose2 staging = bay_staging_pose(*map_, b);
          a.return_arc = nearest_arc(a, staging.position);
          begin_maneuver(a, {a.pose, staging, map_->bay_parked_pose(b)},
                         kManeuverSpeed);
          a.phase = Phase::kPullIn;
          return;
        }
      }

      double v = a.spec.speed;
      if (have_ego_) {
        const geom::Vec2 local =
            (ego_.position - a.pose.position).rotated(-a.pose.heading);
        if (local.x > kYieldBehind && local.x < kYieldAhead &&
            std::abs(local.y) < kYieldHalfWidth)
          v = 0.0;
      }
      a.arc = std::fmod(a.arc + v * dt, a.route_len);
      const geom::Pose2 p = loop_pose(a, a.arc);
      a.pose = p;
      a.velocity = geom::Vec2{std::cos(p.heading), std::sin(p.heading)} * v;

      if (a.spec.bay_claim_prob > 0.0 && a.cooldown <= 0.0) {
        int candidate = -1;
        for (std::size_t b = 0; b < ledger_.size(); ++b) {
          if (geom::distance(a.pose.position,
                             bay_staging_pose(*map_, b).position) <
              kClaimRadius) {
            candidate = static_cast<int>(b);
            break;
          }
        }
        // One dice roll per bay approach, not per frame: re-rolling at
        // 20 Hz would turn any claim_prob into near-certainty.
        if (candidate != a.considered_bay) {
          a.considered_bay = candidate;
          if (candidate >= 0) {
            const auto b = static_cast<std::size_t>(candidate);
            // Don't start a pull-in next to the ego: two simultaneous
            // maneuvers in one aisle section end badly (same rationale as
            // the pull-out clearance).
            const bool ego_clear =
                !have_ego_ ||
                geom::distance(ego_.position,
                               bay_staging_pose(*map_, b).position) >
                    kPulloutEgoClearance;
            if (ego_clear && ledger_.is_free(b) && !world.bay_occupied(b) &&
                a.rng.bernoulli(a.spec.bay_claim_prob)) {
              ledger_.claim(b, agent_owner(self));
              a.bay = candidate;
              const geom::Pose2 staging = bay_staging_pose(*map_, b);
              a.return_arc = nearest_arc(a, staging.position);
              begin_maneuver(a, {a.pose, staging, map_->bay_parked_pose(b)},
                             kManeuverSpeed);
              a.phase = Phase::kPullIn;
            }
          }
        }
      }
      break;
    }
    case Phase::kPullIn:
      if (have_ego_ && geom::distance(ego_.position, a.pose.position) <
                           kManeuverPauseRadius) {
        a.velocity = {};
        break;
      }
      if (step_maneuver(a, dt)) {
        a.phase = Phase::kParked;
        a.timer = a.spec.dwell_seconds;
      }
      break;
    case Phase::kParked:
      a.timer -= dt;
      if (a.timer <= 0.0 &&
          (!have_ego_ ||
           geom::distance(ego_.position, a.pose.position) >
               kPulloutEgoClearance)) {
        const auto b = static_cast<std::size_t>(a.bay);
        begin_maneuver(a,
                       {a.pose, bay_staging_pose(*map_, b),
                        loop_pose(a, a.return_arc)},
                       kManeuverSpeed);
        a.phase = Phase::kPullOut;
      }
      break;
    case Phase::kPullOut:
      if (have_ego_ && geom::distance(ego_.position, a.pose.position) <
                           kManeuverPauseRadius) {
        a.velocity = {};
        break;
      }
      if (step_maneuver(a, dt)) {
        ledger_.release(static_cast<std::size_t>(a.bay), agent_owner(self));
        a.bay = -1;
        a.considered_bay = -1;
        a.cooldown = a.spec.cooldown_seconds;
        a.arc = a.return_arc;
        a.phase = Phase::kCruise;
      }
      break;
    case Phase::kWait:
    case Phase::kCross:
      break;  // pedestrian phases, unreachable for cruisers
  }
}

void TrafficSimulator::step_pedestrian(Agent& a, double dt) {
  a.cooldown = std::max(0.0, a.cooldown - dt);
  switch (a.phase) {
    case Phase::kWait:
      if (have_ego_ && a.cooldown <= 0.0 &&
          a.spec.trigger.contains(ego_.position))
        a.phase = Phase::kCross;
      break;
    case Phase::kCross: {
      const geom::Vec2 target = a.spec.route[1 - a.cross_dir];
      if (have_ego_ &&
          geom::distance(ego_.position, a.pose.position) < kPedPauseRadius) {
        a.velocity = {};
        break;
      }
      const geom::Vec2 delta = target - a.pose.position;
      const double dist = delta.norm();
      const double stride = a.spec.speed * dt;
      if (dist <= stride) {
        a.pose.position = target;
        a.velocity = {};
        a.cross_dir = 1 - a.cross_dir;
        a.cooldown = a.spec.cooldown_seconds;
        a.phase = Phase::kWait;
      } else {
        const geom::Vec2 dir = delta / dist;
        a.pose = {a.pose.position + dir * stride, dir.angle()};
        a.velocity = dir * a.spec.speed;
      }
      break;
    }
    default:
      break;  // cruiser phases, unreachable for pedestrians
  }
}

std::vector<world::Obstacle> TrafficSimulator::roster(int first_id) const {
  std::vector<world::Obstacle> out;
  out.reserve(agents_.size());
  for (const Agent& a : agents_) {
    world::Obstacle o;
    o.id = first_id++;
    o.name = "traffic_" + a.spec.name;
    o.shape = geom::Obb{a.pose.position, a.pose.heading, a.spec.half_length,
                        a.spec.half_width};
    o.driven = true;
    out.push_back(std::move(o));
  }
  return out;
}

void TrafficSimulator::attach(world::World& world) {
  obstacle_index_.assign(agents_.size(), 0);
  const auto& obstacles = world.scenario().obstacles;
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const std::string wanted = "traffic_" + agents_[i].spec.name;
    bool found = false;
    for (std::size_t j = 0; j < obstacles.size(); ++j) {
      if (obstacles[j].name == wanted) {
        obstacle_index_[i] = j;
        found = true;
        break;
      }
    }
    if (!found)
      throw std::logic_error("TrafficSimulator::attach: scenario has no \"" +
                             wanted + "\" obstacle (roster not appended?)");
  }
  world.set_driver(this);
}

void TrafficSimulator::step(world::World& world, double dt) {
  if (dt > 0.0) {
    for (Agent& a : agents_) {
      if (a.spec.kind == TrafficAgentSpec::Kind::kCruiser)
        step_cruiser(a, world, dt);
      else
        step_pedestrian(a, dt);
    }
  }
  if (obstacle_index_.size() == agents_.size()) {
    for (std::size_t i = 0; i < agents_.size(); ++i)
      world.drive_obstacle(obstacle_index_[i], agents_[i].pose,
                           agents_[i].velocity);
  }
}

std::uint64_t TrafficSimulator::state_fingerprint() const {
  math::Fnv1a h;
  for (const Agent& a : agents_) {
    h.add_string(a.spec.name);
    h.add_int(static_cast<std::int64_t>(a.phase));
    h.add_double(a.pose.x());
    h.add_double(a.pose.y());
    h.add_double(a.pose.heading);
    h.add_double(a.velocity.x);
    h.add_double(a.velocity.y);
    h.add_double(a.arc);
    h.add_int(a.bay);
    h.add_double(a.timer);
    h.add_double(a.cooldown);
  }
  for (std::size_t b = 0; b < ledger_.size(); ++b) h.add_int(ledger_.owner_of(b));
  h.add_int(rival_fired_ ? 1 : 0);
  return h.value();
}

}  // namespace icoil::mission
