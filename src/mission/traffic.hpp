#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/pose2.hpp"
#include "mathkit/rng.hpp"
#include "world/map.hpp"
#include "world/obstacle.hpp"
#include "world/world.hpp"

namespace icoil::mission {

/// Intent half of bay contention: who has CLAIMED each bay, independent of
/// who is physically inside it (world::World::bay_occupied answers that).
/// The ego and traffic cruisers claim before maneuvering, so the mission
/// state machine can detect "my target was taken" one leg early instead of
/// discovering a parked car at the bay mouth. Single-threaded by design —
/// all mutation happens inside the simulation loop (the TrafficSimulator
/// step and the Mission's between-frame checks), never from pool workers.
class BayLedger {
 public:
  static constexpr int kFree = -1;         ///< no claim
  static constexpr int kStaticOwner = -2;  ///< parked car from the scenario
  static constexpr int kEgoOwner = 0;      ///< the mission's ego vehicle

  explicit BayLedger(std::size_t bays) : owners_(bays, kFree) {}

  std::size_t size() const { return owners_.size(); }
  int owner_of(std::size_t bay) const { return owners_[bay]; }
  bool is_free(std::size_t bay) const { return owners_[bay] == kFree; }

  /// Claim `bay` for `owner`. Succeeds when the bay is free or already held
  /// by the same owner; a held bay is NOT taken over (see steal).
  bool claim(std::size_t bay, int owner) {
    if (owners_[bay] != kFree && owners_[bay] != owner) return false;
    owners_[bay] = owner;
    return true;
  }

  /// Forcibly take `bay` for `owner`; returns the evicted owner (kFree when
  /// the bay was unclaimed). Rival agents use this to trigger ego replans.
  int steal(std::size_t bay, int owner) {
    const int prev = owners_[bay];
    owners_[bay] = owner;
    return prev;
  }

  /// Release `bay` if (and only if) `owner` holds it.
  void release(std::size_t bay, int owner) {
    if (owners_[bay] == owner) owners_[bay] = kFree;
  }

 private:
  std::vector<int> owners_;
};

/// One behaviour-driven traffic participant. Cruisers follow a closed route
/// loop, yield to the ego, and may pull into free bays (claiming them in the
/// BayLedger first); a `rival` cruiser steals the ego's claimed bay at the
/// script's rival_claim_time, forcing a deterministic replan. Pedestrians
/// wait at one end of a two-point route and cross when the ego enters their
/// trigger zone.
struct TrafficAgentSpec {
  enum class Kind { kCruiser, kPedestrian };

  Kind kind = Kind::kCruiser;
  std::string name;                ///< roster name becomes "traffic_<name>"
  double speed = 1.2;              ///< cruise / walk speed [m/s]
  double half_length = 2.1;
  double half_width = 0.9;
  /// Cruiser: closed loop polyline (last point connects back to the first).
  /// Pedestrian: exactly two points, the crossing's end posts.
  std::vector<geom::Vec2> route;
  double start_offset = 0.0;       ///< metres along the route at t = 0
  double bay_claim_prob = 0.0;     ///< cruiser: chance to park at a passed bay
  double dwell_seconds = 6.0;      ///< cruiser: parked time before pulling out
  bool rival = false;              ///< steals the ego's bay (see TrafficScript)
  geom::Aabb trigger;              ///< pedestrian: ego-inside-this fires a cross
  double cooldown_seconds = 20.0;  ///< min time between parks / crossings
};

/// The full traffic cast of one mission template.
struct TrafficScript {
  std::vector<TrafficAgentSpec> agents;
  /// World time at which a rival agent steals the ego's claimed bay; < 0
  /// disables the steal. The steal fires once per mission.
  double rival_claim_time = -1.0;
};

/// Steps a TrafficScript inside the simulation loop as a world::WorldDriver.
/// Determinism contract: behaviour depends only on (world time, ego pose
/// fed through set_ego, bay occupancy, the agent's own seeded RNG stream) —
/// never on wall-clock or thread scheduling — so the same seed replays
/// bit-for-bit at any TaskPool width.
class TrafficSimulator final : public world::WorldDriver {
 public:
  TrafficSimulator(TrafficScript script, const world::ParkingLotMap& map,
                   std::uint64_t seed);

  /// Obstacle roster entries for the agents (driven = true, shapes at the
  /// agents' CURRENT poses), ids starting at `first_id`. Mission legs append
  /// this to the scenario statics each time they open a Session.
  std::vector<world::Obstacle> roster(int first_id) const;

  /// Resolve agent -> obstacle indices in `world`'s scenario (by roster
  /// name) and attach as its driver; poses apply immediately (dt = 0 step).
  void attach(world::World& world);

  /// world::WorldDriver: advance behaviours by dt (dt = 0 re-applies poses
  /// without advancing) and push every agent pose into the world.
  void step(world::World& world, double dt) override;

  /// Ego pose feedback, fed once per frame by the mission loop (after the
  /// vehicle integrates, so agents react with a one-frame lag — fixed and
  /// deterministic). Yield checks and pedestrian triggers read it.
  void set_ego(const geom::Pose2& pose) {
    ego_ = pose;
    have_ego_ = true;
  }

  BayLedger& ledger() { return ledger_; }
  const BayLedger& ledger() const { return ledger_; }

  std::size_t agent_count() const { return agents_.size(); }
  const geom::Pose2& agent_pose(std::size_t i) const { return agents_[i].pose; }
  const TrafficAgentSpec& agent_spec(std::size_t i) const {
    return agents_[i].spec;
  }
  /// True once the script's rival steal has fired.
  bool rival_fired() const { return rival_fired_; }

  /// FNV-1a digest of every agent's kinematic+behavioural state plus the
  /// ledger — the traffic half of MissionResult::fingerprint().
  std::uint64_t state_fingerprint() const;

  /// Staging pose at the mouth of bay `bay`: where a vehicle pauses in the
  /// aisle before reversing in, facing along the bay opening direction.
  /// Shared by traffic pull-ins and the mission's CruiseToBay goal.
  static geom::Pose2 bay_staging_pose(const world::ParkingLotMap& map,
                                      std::size_t bay);

 private:
  enum class Phase { kCruise, kPullIn, kParked, kPullOut, kWait, kCross };

  struct Agent {
    TrafficAgentSpec spec;
    math::Rng rng;
    Phase phase = Phase::kCruise;
    geom::Pose2 pose;
    geom::Vec2 velocity;
    double arc = 0.0;       ///< cruiser: metres along the closed route
    double route_len = 0.0; ///< cruiser: closed-loop perimeter
    int bay = -1;           ///< cruiser: bay claimed/occupied (-1 none)
    int considered_bay = -1;///< cruiser: last bay the claim dice rolled for
    double timer = 0.0;     ///< dwell countdown
    double cooldown = 0.0;  ///< park/cross cooldown countdown
    double return_arc = 0.0;///< cruiser: loop position to resume after a park
    int cross_dir = 0;      ///< pedestrian: resting end (0 = route[0])
    /// Piecewise-linear maneuver (pull-in/out, pedestrian cross): waypoint
    /// poses and the cumulative time at which each is reached.
    std::vector<geom::Pose2> path;
    std::vector<double> path_t;
    double path_clock = 0.0;

    Agent(TrafficAgentSpec s, std::uint64_t seed)
        : spec(std::move(s)), rng(seed) {}
  };

  geom::Pose2 loop_pose(const Agent& a, double arc) const;
  double nearest_arc(const Agent& a, const geom::Vec2& p) const;
  void begin_maneuver(Agent& a, std::vector<geom::Pose2> poses, double speed);
  /// Advance the active maneuver; true when it completed this step.
  bool step_maneuver(Agent& a, double dt);
  void step_cruiser(Agent& a, world::World& world, double dt);
  void step_pedestrian(Agent& a, double dt);

  TrafficScript script_;
  const world::ParkingLotMap* map_;  ///< mission-owned; outlives the sim
  std::vector<Agent> agents_;
  std::vector<std::size_t> obstacle_index_;  ///< agent -> scenario index
  BayLedger ledger_;
  geom::Pose2 ego_;
  bool have_ego_ = false;
  bool rival_fired_ = false;
};

}  // namespace icoil::mission
