#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cancel_token.hpp"
#include "core/controller.hpp"
#include "mission/traffic.hpp"
#include "sim/simulator.hpp"
#include "world/scenario.hpp"

namespace icoil::mission {

/// The task legs of a parking mission, in canonical order. Replans repeat
/// kCruiseToBay (and possibly kPark) with a new target bay; every completed
/// mission ends with the kExit leg.
enum class LegType {
  kEnterLot,    ///< remote spawn -> lot entrance
  kCruiseToBay, ///< entrance/aisle -> staging point of the claimed bay
  kPark,        ///< staging point -> parked inside the bay
  kDwell,       ///< parked, engine off; traffic keeps moving (no Session)
  kUnpark,      ///< bay -> staging point
  kExit,        ///< staging point -> back to the lot entrance/spawn
};

const char* to_string(LegType t);

/// How a leg ended. kReplanned means the leg was ABORTED because the
/// targeted bay's ledger claim was lost (rival steal or physical occupancy):
/// the Session was cut mid-episode, so the LegResult's `outcome` still holds
/// the running placeholder — `status` is authoritative.
enum class LegStatus { kCompleted, kReplanned, kFailed };

const char* to_string(LegStatus s);

/// Per-leg record inside a MissionResult.
struct LegResult {
  LegType type = LegType::kEnterLot;
  int target_bay = -1;             ///< bay pursued during this leg (-1 n/a)
  sim::Outcome outcome = sim::Outcome::kTimeout;
  LegStatus status = LegStatus::kCompleted;
  std::size_t frames = 0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;       ///< excluded from fingerprints
  double min_clearance = geom::kMaxClearance;
  int deadline_hits = 0;
};

/// Versioned so persisted results (RunReport mission rows hash over these)
/// stay comparable across revisions of the mission layer.
inline constexpr int kMissionResultVersion = 1;

/// Outcome of one full mission: the per-leg records plus mission-level
/// tallies. fingerprint() digests every outcome-bearing field and is the
/// value the determinism gates compare across TaskPool widths — wall-clock
/// fields are excluded by construction.
struct MissionResult {
  int version = kMissionResultVersion;
  std::string mission;             ///< MissionSpec::name
  std::string method;              ///< controller name
  std::uint64_t seed = 0;
  bool success = false;
  int replans = 0;
  int parked_bay = -1;
  double park_time = 0.0;          ///< mission seconds at end of kPark
  double exit_time = 0.0;          ///< mission seconds at end of kExit
  double wall_seconds = 0.0;       ///< excluded from fingerprint
  std::vector<LegResult> legs;

  std::uint64_t fingerprint() const;
};

/// Mission-level knobs layered over the per-leg SimConfig. Cruise legs
/// (enter, cruise-to-bay, unpark, exit) use relaxed arrival tolerances —
/// they end at waypoints the vehicle passes through, not at a parking fit;
/// the kPark leg uses the SimConfig's own (paper) tolerances.
struct MissionConfig {
  sim::SimConfig sim;
  double cruise_pos_tol = 0.9;
  double cruise_heading_tol = 0.7;
  double cruise_speed_tol = 2.0;   ///< cruise waypoints may be passed at speed
  double exit_heading_tol = 3.2;   ///< any heading counts as "left the lot"
};

/// A reusable mission template: scenario family + traffic cast + pacing.
struct MissionSpec {
  std::string name;
  std::string description;
  std::string generator = "multi_row_lot";
  world::GeneratorParams params;
  world::Difficulty difficulty = world::Difficulty::kNormal;
  TrafficScript traffic;
  double dwell_seconds = 3.0;      ///< kDwell duration
  double leg_time_limit = 45.0;    ///< per-leg sim-time budget [s]
  int max_replans = 3;             ///< mission fails beyond this many

  /// FNV-1a over every behaviour-affecting knob (generator, params, traffic
  /// cast, pacing) — the RunReport mission block records it so baselines
  /// never compare runs of different template revisions.
  std::uint64_t fingerprint() const;
};

/// Process-wide, string-keyed registry of mission templates — the mission
/// mirror of world::GeneratorRegistry. Built-ins (quiet_lot, contested_lot,
/// rush_hour) are seeded on first access; applications may add or replace
/// templates before evaluation starts.
class MissionRegistry {
 public:
  static MissionRegistry& instance();

  void add(MissionSpec spec);
  const MissionSpec* find(const std::string& name) const;
  /// Throws std::invalid_argument naming the known templates when unknown.
  const MissionSpec& at(const std::string& name) const;
  std::vector<std::string> names() const;
  std::size_t size() const { return specs_.size(); }

 private:
  MissionRegistry();  // seeds the built-in templates (templates.cpp)

  std::vector<MissionSpec> specs_;
};

/// Deterministic multi-leg mission runner. One Mission instance runs once:
/// it owns the persistent facts of the episode chain — the base scenario
/// (statics), the TrafficSimulator (agents + BayLedger), the ego state and
/// the elapsed mission clock — and chains each leg as a sim::Session over
/// them. Controllers are reset at each leg open (Session does it), so one
/// controller instance serves the whole mission but must not be shared
/// across concurrent missions.
class Mission {
 public:
  Mission(const MissionSpec& spec, std::uint64_t seed,
          MissionConfig config = {});

  /// Run the state machine to completion (or failure). `controller` drives
  /// every leg; `cancel`, when given, is polled each frame and aborts the
  /// mission with a failed leg (outcome kBudgetExceeded).
  MissionResult run(core::Controller& controller,
                    const core::CancelToken* cancel = nullptr);

  const world::Scenario& base_scenario() const { return base_; }
  const TrafficSimulator& traffic() const { return traffic_; }
  /// Ego state / mission clock after the last (or mid-failure final) leg.
  const vehicle::State& ego_state() const { return ego_; }
  double elapsed() const { return elapsed_; }

  /// The per-leg scenarios of the last run (driving legs only, in order):
  /// statics + traffic roster frozen at leg start, goal_pose set to the
  /// leg's goal. The curriculum's mission expander records expert episodes
  /// from these.
  const std::vector<world::Scenario>& leg_scenarios() const {
    return leg_scenarios_;
  }

 private:
  /// Runs one driving leg; advances ego_ / elapsed_. `monitor_bay` >= 0
  /// aborts with kReplanned when the ego's ledger claim on it is lost.
  LegResult run_leg(LegType type, int target_bay, const geom::Pose2& goal,
                    int monitor_bay, core::Controller& controller,
                    const core::CancelToken* cancel);
  /// Dwell: steps traffic over a fresh world without a Session.
  LegResult run_dwell();
  /// Nearest ledger-free bay by staging-point distance from the ego
  /// (tie-break: lower index); -1 when the lot is full.
  int pick_bay() const;
  sim::SimConfig leg_config(LegType type) const;

  MissionSpec spec_;
  std::uint64_t seed_;
  MissionConfig config_;
  world::Scenario base_;                   ///< statics only, remote start
  std::vector<world::Obstacle> statics_;   ///< base_.obstacles (scripted
                                           ///< dynamics stripped)
  TrafficSimulator traffic_;
  vehicle::State ego_;
  double elapsed_ = 0.0;                   ///< mission sim-clock [s]
  int ordinal_ = 0;                        ///< legs opened so far (seed salt)
  std::vector<world::Scenario> leg_scenarios_;
};

/// Registers the sim::Curriculum mission-leg expander: "mission:<name>"
/// curriculum entries expand into the driving-leg scenarios of a CO-driven
/// run of that template, with the traffic frozen at each leg's start. Call
/// once at startup in binaries that train from mission curricula.
void install_curriculum_expander();

}  // namespace icoil::mission
