// Built-in mission templates. All three run on the multi_row_lot family and
// its fixed geometry (48x36, goal column at x = 25.5 for the default and
// rush-hour bay counts): the traffic routes below reference those aisle
// coordinates directly. The loop rectangle circulates cruisers through both
// aisles and the bay-free side corridors; pedestrians cross the bottom
// aisle near the goal column, triggered by the ego approaching.
//
//   quiet_lot      light traffic, no contention — the baseline mission
//   contested_lot  a rival steals the ego's claimed bay (forced replan) and
//                  a second cruiser parks opportunistically
//   rush_hour      dense lot, three cruisers, two crossings

#include "core/controller_registry.hpp"
#include "mission/mission.hpp"
#include "sim/curriculum.hpp"

namespace icoil::mission {
namespace {

/// Two-aisle circulation loop shared by every built-in cruiser: bottom
/// aisle eastbound, top aisle westbound, side corridors connecting them.
std::vector<geom::Vec2> circulation_loop() {
  return {{5.0, 10.9}, {43.0, 10.9}, {43.0, 25.9}, {5.0, 25.9}};
}

TrafficAgentSpec cruiser(const std::string& name, double speed,
                         double start_offset) {
  TrafficAgentSpec a;
  a.kind = TrafficAgentSpec::Kind::kCruiser;
  a.name = name;
  a.speed = speed;
  a.route = circulation_loop();
  a.start_offset = start_offset;
  return a;
}

/// Pedestrian crossing the bottom aisle at `x`, triggered by the ego
/// entering the aisle stretch around the goal column.
TrafficAgentSpec crossing(const std::string& name, double x,
                          double cooldown) {
  TrafficAgentSpec a;
  a.kind = TrafficAgentSpec::Kind::kPedestrian;
  a.name = name;
  a.speed = 0.7;
  a.half_length = 0.35;
  a.half_width = 0.35;
  a.route = {{x, 5.8}, {x, 12.2}};
  a.trigger = {{x - 9.0, 5.5}, {x + 2.0, 12.5}};
  a.cooldown_seconds = cooldown;
  return a;
}

MissionSpec quiet_lot() {
  MissionSpec m;
  m.name = "quiet_lot";
  m.description =
      "multi_row_lot at 0.45 occupancy; one circulating cruiser and one "
      "pedestrian crossing, no bay contention";
  m.params.set("occupancy", 0.45);
  m.traffic.agents = {cruiser("cruiser_a", 1.2, 60.0),
                      crossing("ped_goal", 30.0, 18.0)};
  m.dwell_seconds = 3.0;
  m.leg_time_limit = 40.0;
  m.max_replans = 3;
  return m;
}

MissionSpec contested_lot() {
  MissionSpec m;
  m.name = "contested_lot";
  m.description =
      "multi_row_lot at 0.55 occupancy; a rival steals the ego's claimed "
      "bay (forced replan), a second cruiser parks opportunistically";
  m.params.set("occupancy", 0.55);

  TrafficAgentSpec rival = cruiser("rival", 1.3, 45.0);
  rival.rival = true;
  rival.dwell_seconds = 1e9;  // the stolen bay stays taken

  TrafficAgentSpec opportunist = cruiser("opportunist", 1.2, 85.0);
  opportunist.bay_claim_prob = 0.5;
  opportunist.dwell_seconds = 12.0;
  opportunist.cooldown_seconds = 25.0;

  m.traffic.agents = {rival, opportunist, crossing("ped_goal", 30.0, 18.0)};
  // Armed from t=2s; actually fires the moment the ego first claims a bay.
  m.traffic.rival_claim_time = 2.0;
  m.dwell_seconds = 3.0;
  m.leg_time_limit = 45.0;
  m.max_replans = 4;
  return m;
}

MissionSpec rush_hour() {
  MissionSpec m;
  m.name = "rush_hour";
  m.description =
      "dense multi_row_lot (10 bays/row, 0.7 occupancy); three cruisers, "
      "one parking opportunistically, two pedestrian crossings";
  m.params.set("bays_per_row", 10);
  m.params.set("occupancy", 0.7);

  TrafficAgentSpec parker = cruiser("parker", 1.2, 20.0);
  parker.bay_claim_prob = 0.4;
  parker.dwell_seconds = 10.0;
  parker.cooldown_seconds = 30.0;

  m.traffic.agents = {parker, cruiser("cruiser_b", 1.3, 55.0),
                      cruiser("cruiser_c", 1.4, 90.0),
                      crossing("ped_goal", 30.0, 15.0),
                      crossing("ped_west", 16.0, 20.0)};
  m.dwell_seconds = 2.0;
  m.leg_time_limit = 50.0;
  m.max_replans = 4;
  return m;
}

}  // namespace

namespace detail {
void register_builtin_missions(MissionRegistry& registry) {
  registry.add(quiet_lot());
  registry.add(contested_lot());
  registry.add(rush_hour());
}
}  // namespace detail

void install_curriculum_expander() {
  sim::set_mission_leg_expander(
      [](const std::string& name, std::uint64_t seed) {
        const MissionSpec& spec = MissionRegistry::instance().at(name);
        Mission mission(spec, seed);
        const auto controller =
            core::ControllerRegistry::instance().build("co");
        mission.run(*controller);

        // Freeze the traffic where each leg opened: driven obstacles become
        // plain statics, so the recorder's planner treats the snapshot as a
        // (harder, contested) static scene.
        std::vector<world::Scenario> legs = mission.leg_scenarios();
        for (world::Scenario& sc : legs) {
          for (world::Obstacle& o : sc.obstacles) {
            o.driven = false;
            o.motion = {};
          }
          sc.generator = "mission:" + name;
        }
        return legs;
      });
}

}  // namespace icoil::mission
