#pragma once

#include <string>
#include <vector>

#include "world/scenario.hpp"

namespace icoil::sim {

/// One evaluation cell: a scenario family pinned to a difficulty, start
/// class and generator parameters. A suite run evaluates `episodes` seeds
/// of every cell (see EvalConfig), so a cell corresponds to one row/point
/// of a results table or sensitivity sweep.
struct SuiteCell {
  std::string generator = "canonical";
  world::Difficulty difficulty = world::Difficulty::kEasy;
  world::StartClass start_class = world::StartClass::kRandom;
  world::GeneratorParams params;
  int num_obstacles_override = -1;  ///< -1 = level default
  double time_limit = 60.0;
  /// Wall-clock budget [s] for the WHOLE cell (all of its episodes across
  /// all workers, measured from when its first episode starts). Episodes
  /// still running or not yet started when it trips report
  /// Outcome::kBudgetExceeded instead of silently finishing late.
  /// <= 0 means unlimited. Budgets make results timing-dependent, so leave
  /// them off when bit-identical reproducibility matters.
  double wall_budget = 0.0;
  std::string label;  ///< display label; empty -> "generator/difficulty/start"

  /// The ScenarioOptions this cell expands to.
  world::ScenarioOptions options() const;
  /// The inverse of options(): a cell whose options() reproduce `opt`
  /// field-for-field (no label, no wall budget) — how single-family
  /// evaluations route through the one suite fan-out path.
  static SuiteCell from_options(const world::ScenarioOptions& opt);
  /// `label` when set, otherwise "generator/difficulty/start".
  std::string display_label() const;
};

/// An ordered list of cells batch-evaluated in one threaded fan-out.
struct ScenarioSuite {
  std::string name = "suite";
  std::vector<SuiteCell> cells;

  ScenarioSuite& add(SuiteCell cell) {
    cells.push_back(std::move(cell));
    return *this;
  }

  /// Cartesian-product helper: one cell per (generator, difficulty, start).
  static ScenarioSuite cross(const std::vector<std::string>& generators,
                             const std::vector<world::Difficulty>& difficulties,
                             const std::vector<world::StartClass>& starts);
};

}  // namespace icoil::sim
