#include "sim/simulator.hpp"

#include "sim/session.hpp"

namespace icoil::sim {

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kSuccess: return "success";
    case Outcome::kCollision: return "collision";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kBudgetExceeded: return "budget_exceeded";
  }
  return "?";
}

EpisodeResult Simulator::run(const world::Scenario& scenario,
                             core::Controller& controller, std::uint64_t seed,
                             const core::CancelToken* cancel) const {
  Session session(scenario, controller, seed, config_, cancel);
  while (session.step() == Session::Status::kRunning) {
  }
  return session.result();
}

}  // namespace icoil::sim
