#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

namespace icoil::sim {

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kSuccess: return "success";
    case Outcome::kCollision: return "collision";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kBudgetExceeded: return "budget_exceeded";
  }
  return "?";
}

EpisodeResult Simulator::run(const world::Scenario& scenario,
                             core::Controller& controller, std::uint64_t seed,
                             const core::CancelToken* cancel) const {
  EpisodeResult res;
  math::Rng rng(seed ^ 0x51D5EEDull);

  world::World world(scenario);
  vehicle::BicycleModel model;  // default params (matches controllers)
  vehicle::State state;
  state.pose = scenario.start_pose;
  state.speed = 0.0;

  controller.reset(scenario);

  core::Mode prev_mode = core::Mode::kCo;
  std::size_t il_frames = 0;
  const std::size_t max_frames =
      static_cast<std::size_t>(scenario.time_limit / config_.dt);

  for (std::size_t frame = 0; frame < max_frames; ++frame) {
    const double t = static_cast<double>(frame) * config_.dt;

    if (cancel != nullptr && cancel->cancelled()) {
      res.outcome = Outcome::kBudgetExceeded;
      res.park_time = t;
      res.il_fraction = res.frames > 0 ? static_cast<double>(il_frames) /
                                             static_cast<double>(res.frames)
                                       : 0.0;
      return res;
    }

    const vehicle::Command cmd = controller.act(world, state, rng);
    const core::FrameInfo& info = controller.last_frame();

    if (config_.record_trace) res.trace.push_back({t, state, info});
    if (frame > 0 && info.mode != prev_mode) ++res.mode_switches;
    prev_mode = info.mode;
    if (info.mode == core::Mode::kIl) ++il_frames;

    state = model.step(state, cmd, config_.dt);
    world.step(config_.dt);
    ++res.frames;

    const geom::Obb fp = model.footprint(state);
    res.min_clearance = std::min(res.min_clearance, world.clearance(fp));
    if (world.in_collision(fp)) {
      res.outcome = Outcome::kCollision;
      res.park_time = t + config_.dt;
      res.il_fraction =
          static_cast<double>(il_frames) / static_cast<double>(res.frames);
      return res;
    }

    if (world.at_goal(state.pose, config_.goal_pos_tol, config_.goal_heading_tol) &&
        std::abs(state.speed) <= config_.goal_speed_tol) {
      res.outcome = Outcome::kSuccess;
      res.park_time = t + config_.dt;
      res.il_fraction =
          static_cast<double>(il_frames) / static_cast<double>(res.frames);
      return res;
    }
  }

  res.outcome = Outcome::kTimeout;
  res.park_time = scenario.time_limit;
  res.il_fraction = res.frames > 0 ? static_cast<double>(il_frames) /
                                         static_cast<double>(res.frames)
                                   : 0.0;
  return res;
}

}  // namespace icoil::sim
