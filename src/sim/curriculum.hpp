#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "world/scenario.hpp"

namespace icoil::sim {

/// One weighted cell of a training curriculum: a scenario family pinned to a
/// difficulty / start class / parameter set, plus the share of expert
/// episodes it should receive relative to the other entries.
struct CurriculumEntry {
  std::string generator = "canonical";
  world::Difficulty difficulty = world::Difficulty::kEasy;
  world::StartClass start_class = world::StartClass::kRandom;
  world::GeneratorParams params;
  int num_obstacles_override = -1;  ///< -1 = level default
  double time_limit = 60.0;
  double weight = 1.0;  ///< episode share (relative to the sum of weights)

  /// The ScenarioOptions this entry expands to.
  world::ScenarioOptions options() const;
  /// "generator/difficulty" display label.
  std::string label() const;
};

/// A training curriculum: the list of weighted scenario cells the expert
/// recorder draws demonstration episodes from. Episode->entry assignment is
/// deterministic (largest-remainder quotas, quota-interleaved), so a
/// curriculum + episode count fully determines which scenario family every
/// episode uses — datasets are reproducible and cacheable by fingerprint.
class Curriculum {
 public:
  std::string name = "canonical";
  std::vector<CurriculumEntry> entries;

  bool empty() const { return entries.empty(); }
  std::size_t size() const { return entries.size(); }

  /// Exact per-entry episode counts for a run of `episodes` episodes:
  /// largest-remainder apportionment of the weights (ties favour earlier
  /// entries). Zero-filled when the curriculum is empty.
  std::vector<int> episode_counts(int episodes) const;

  /// Entry index for every episode of a run of `episodes` episodes. The
  /// counts come from episode_counts() and families are interleaved by
  /// running quota, so short prefixes of a long run already mix families.
  std::vector<int> assignments(int episodes) const;

  /// Order-sensitive 64-bit FNV-1a hash of the entry list (generator,
  /// difficulty, start class, params, overrides, weight). The name is
  /// display-only and excluded, so equal specs share caches.
  std::uint64_t fingerprint() const;

  /// The pre-curriculum recorder behaviour: a single canonical/easy cell.
  static Curriculum canonical();

  /// One easy-difficulty cell per registered generator family, equal weight.
  static Curriculum all_families();

  /// One easy-difficulty cell per named generator, equal weight. Throws
  /// std::invalid_argument on a name the registry does not know.
  static Curriculum for_generators(const std::vector<std::string>& generators);

  /// Parse a CLI-style spec: "all", "canonical", or a comma-separated list
  /// of generator names ("crowded_lot,parallel_street"). Throws
  /// std::invalid_argument on an unknown generator name.
  static Curriculum parse(const std::string& spec);
};

}  // namespace icoil::sim
