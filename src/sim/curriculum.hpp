#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "world/scenario.hpp"

namespace icoil::sim {

/// One weighted cell of a training curriculum: a scenario family pinned to a
/// difficulty / start class / parameter set, plus the share of expert
/// episodes it should receive relative to the other entries.
struct CurriculumEntry {
  std::string generator = "canonical";
  world::Difficulty difficulty = world::Difficulty::kEasy;
  world::StartClass start_class = world::StartClass::kRandom;
  world::GeneratorParams params;
  int num_obstacles_override = -1;  ///< -1 = level default
  double time_limit = 60.0;
  double weight = 1.0;  ///< episode share (relative to the sum of weights)
  /// When non-empty this cell references a mission template instead of a
  /// generator: each episode expands (via the installed mission-leg
  /// expander) into the driving-leg scenarios of one mission run, so the
  /// recorder collects demonstrations from contested multi-leg traffic
  /// instead of single spawn-to-bay episodes. The other scenario fields are
  /// ignored for mission cells.
  std::string mission;

  /// The ScenarioOptions this entry expands to (generator cells only).
  world::ScenarioOptions options() const;
  /// "generator/difficulty" (or "mission:<name>") display label.
  std::string label() const;
};

/// Expands a mission template name + seed into per-leg recording scenarios
/// (statics + traffic frozen at each leg start, goal set to the leg goal).
/// Lives behind a hook so the sim layer never depends on mission:: —
/// mission::install_curriculum_expander() provides the implementation.
using MissionLegExpander = std::function<std::vector<world::Scenario>(
    const std::string& mission, std::uint64_t seed)>;

/// Install / read the process-wide mission-leg expander. Set once at
/// startup, before any recording begins; the recorder throws a
/// std::logic_error naming the installer when a mission cell is hit with no
/// expander installed.
void set_mission_leg_expander(MissionLegExpander expander);
const MissionLegExpander& mission_leg_expander();

/// A training curriculum: the list of weighted scenario cells the expert
/// recorder draws demonstration episodes from. Episode->entry assignment is
/// deterministic (largest-remainder quotas, quota-interleaved), so a
/// curriculum + episode count fully determines which scenario family every
/// episode uses — datasets are reproducible and cacheable by fingerprint.
class Curriculum {
 public:
  std::string name = "canonical";
  std::vector<CurriculumEntry> entries;

  bool empty() const { return entries.empty(); }
  std::size_t size() const { return entries.size(); }

  /// Exact per-entry episode counts for a run of `episodes` episodes:
  /// largest-remainder apportionment of the weights (ties favour earlier
  /// entries). Zero-filled when the curriculum is empty.
  std::vector<int> episode_counts(int episodes) const;

  /// Entry index for every episode of a run of `episodes` episodes. The
  /// counts come from episode_counts() and families are interleaved by
  /// running quota, so short prefixes of a long run already mix families.
  std::vector<int> assignments(int episodes) const;

  /// Order-sensitive 64-bit FNV-1a hash of the entry list (generator,
  /// difficulty, start class, params, overrides, weight). The name is
  /// display-only and excluded, so equal specs share caches.
  std::uint64_t fingerprint() const;

  /// The pre-curriculum recorder behaviour: a single canonical/easy cell.
  static Curriculum canonical();

  /// One easy-difficulty cell per registered generator family, equal weight.
  static Curriculum all_families();

  /// One easy-difficulty cell per named generator, equal weight. Throws
  /// std::invalid_argument on a name the registry does not know.
  static Curriculum for_generators(const std::vector<std::string>& generators);

  /// Parse a CLI-style spec: "all", "canonical", or a comma-separated list
  /// of generator names and/or "mission:<template>" tokens
  /// ("crowded_lot,mission:contested_lot"). Generator names are validated
  /// against the registry; mission names are validated lazily by the
  /// expander (the sim layer cannot see the mission registry). Throws
  /// std::invalid_argument on an unknown generator name.
  static Curriculum parse(const std::string& spec);
};

}  // namespace icoil::sim
