#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mathkit/stats.hpp"
#include "sim/simulator.hpp"
#include "sim/suite.hpp"
#include "world/scenario.hpp"

namespace icoil::sim {

/// Aggregated metrics over a batch of episodes — one Table II cell group.
struct Aggregate {
  std::string method;
  std::string level;
  int episodes = 0;
  int successes = 0;
  int collisions = 0;
  int timeouts = 0;
  math::RunningStats park_time;        ///< over successful episodes only
  math::RunningStats il_fraction;
  math::RunningStats min_clearance;

  double success_ratio() const {
    return episodes > 0 ? static_cast<double>(successes) / episodes : 0.0;
  }
};

/// One suite cell's outcome: the cell spec plus its episode aggregate.
struct SuiteCellResult {
  SuiteCell cell;
  Aggregate aggregate;
};

/// Batch evaluation settings.
struct EvalConfig {
  int episodes = 30;
  std::uint64_t base_seed = 1000;
  int num_threads = 0;   ///< 0 = hardware concurrency (capped at thread_cap)
  int thread_cap = 16;   ///< pool-width ceiling; raise it on wide machines
  SimConfig sim;
};

/// Runs many seeded episodes of a scenario family through a controller
/// factory, fanned out across worker threads (one controller per worker —
/// controllers are stateful). Deterministic per (seed, options).
class Evaluator {
 public:
  explicit Evaluator(EvalConfig config = {}) : config_(config) {}

  const EvalConfig& config() const { return config_; }

  Aggregate evaluate(const core::ControllerFactory& factory,
                     const world::ScenarioOptions& options,
                     const std::string& method_label) const;

  /// Per-episode results in seed order (for distribution plots).
  std::vector<EpisodeResult> evaluate_detailed(
      const core::ControllerFactory& factory,
      const world::ScenarioOptions& options) const;

  /// Invoked (serialized, but from a worker thread) as each suite cell
  /// finishes its last episode: (cell, cells completed so far, cell count).
  using SuiteProgress =
      std::function<void(const SuiteCell& cell, int completed, int total)>;

  /// Batch-evaluates `episodes` seeds of EVERY suite cell in one threaded
  /// fan-out — workers pull (cell, episode) jobs from a shared queue, so a
  /// slow cell never serializes the others. Per-cell aggregates come back
  /// in suite order; episode seeds match a per-cell evaluate() call, so
  /// results are identical to evaluating each cell separately.
  std::vector<SuiteCellResult> evaluate_suite(
      const core::ControllerFactory& factory, const ScenarioSuite& suite,
      const std::string& method_label,
      const SuiteProgress& progress = nullptr) const;

 private:
  EvalConfig config_;
};

}  // namespace icoil::sim
