#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/task_pool.hpp"
#include "mathkit/stats.hpp"
#include "sim/simulator.hpp"
#include "sim/suite.hpp"
#include "world/scenario.hpp"

namespace icoil::sim {

/// Aggregated metrics over a batch of episodes — one Table II cell group.
struct Aggregate {
  std::string method;
  std::string level;
  int episodes = 0;
  int successes = 0;
  int collisions = 0;
  int timeouts = 0;
  int budget_exceeded = 0;             ///< cut short by a wall-clock budget
  int deadline_hits = 0;               ///< frames degraded by a frame deadline
  math::RunningStats park_time;        ///< over successful episodes only
  math::RunningStats il_fraction;
  math::RunningStats min_clearance;

  double success_ratio() const {
    return episodes > 0 ? static_cast<double>(successes) / episodes : 0.0;
  }
};

/// Folds per-episode results into one Aggregate (shared by the evaluator,
/// the bench drivers and the report writer).
Aggregate aggregate_episodes(const std::vector<EpisodeResult>& results,
                             const std::string& method,
                             const std::string& level);

/// One suite cell's outcome: the cell spec plus its episode aggregate.
struct SuiteCellResult {
  SuiteCell cell;
  Aggregate aggregate;
};

/// One suite cell's raw per-episode results (seed order).
struct SuiteCellEpisodes {
  SuiteCell cell;
  std::vector<EpisodeResult> episodes;
};

/// Folds detailed suite results into per-cell aggregates (suite order,
/// labelled by each cell's display label) — the ONE fold between
/// evaluate_suite_detailed and every aggregate consumer.
std::vector<SuiteCellResult> aggregate_suite(
    const std::vector<SuiteCellEpisodes>& detailed,
    const std::string& method_label);

/// Batch evaluation settings.
struct EvalConfig {
  int episodes = 30;
  std::uint64_t base_seed = 1000;
  int num_threads = 0;   ///< explicit worker count; 0 = hardware concurrency
  /// Ceiling on the hardware-derived default width (num_threads == 0). An
  /// explicit num_threads request is honoured above the cap.
  int thread_cap = 16;
  /// Pool-level abort (e.g. a SIGINT handler's token): every per-cell
  /// cancellation token links to it, so tripping it drains the whole
  /// fan-out promptly — remaining episodes come back as kBudgetExceeded and
  /// the partial aggregates are still returned. Must outlive the run.
  const core::CancelToken* abort = nullptr;
  SimConfig sim;
};

/// Runs many seeded episodes of a scenario family through a controller
/// factory, fanned out across worker threads (one controller per worker —
/// controllers are stateful). Deterministic per (seed, options).
class Evaluator {
 public:
  explicit Evaluator(EvalConfig config = {}) : config_(config) {}

  const EvalConfig& config() const { return config_; }

  /// The worker count this evaluator's pool will actually use for `jobs`
  /// tasks — the one source of truth for run-provenance metadata.
  int resolved_workers(int jobs) const {
    return core::TaskPool::recommended_workers(config_.num_threads, jobs,
                                               config_.thread_cap);
  }

  Aggregate evaluate(const core::ControllerFactory& factory,
                     const world::ScenarioOptions& options,
                     const std::string& method_label) const;

  /// Per-episode results in seed order (for distribution plots). A one-cell
  /// suite through evaluate_suite_detailed — the ONE episode fan-out path —
  /// so it shares its seeding, cancellation and episodes > 0 contract.
  std::vector<EpisodeResult> evaluate_detailed(
      const core::ControllerFactory& factory,
      const world::ScenarioOptions& options) const;

  /// Invoked (serialized, but from a worker thread) as each suite cell
  /// finishes its last episode: (cell, cells completed so far, cell count).
  using SuiteProgress =
      std::function<void(const SuiteCell& cell, int completed, int total)>;

  /// Batch-evaluates `episodes` seeds of EVERY suite cell in one threaded
  /// fan-out — workers pull (cell, episode) jobs from a shared core::TaskPool
  /// queue, so a slow cell never serializes the others. Per-cell aggregates
  /// come back in suite order; episode seeds match a per-cell evaluate()
  /// call, so results are identical to evaluating each cell separately.
  /// Cells with a positive wall_budget report episodes that run past the
  /// budget as Outcome::kBudgetExceeded. Throws std::invalid_argument when
  /// config().episodes <= 0 (a silent empty run is always a bug upstream).
  std::vector<SuiteCellResult> evaluate_suite(
      const core::ControllerFactory& factory, const ScenarioSuite& suite,
      const std::string& method_label,
      const SuiteProgress& progress = nullptr) const;

  /// Same fan-out as evaluate_suite but returning the raw per-episode
  /// results per cell (for RunReport episode records and distribution
  /// plots). evaluate_suite is this plus aggregate_episodes per cell.
  std::vector<SuiteCellEpisodes> evaluate_suite_detailed(
      const core::ControllerFactory& factory, const ScenarioSuite& suite,
      const SuiteProgress& progress = nullptr) const;

 private:
  EvalConfig config_;
};

}  // namespace icoil::sim
