#include "sim/report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <sstream>
#include <utility>

#include "mathkit/fnv.hpp"

#ifndef ICOIL_GIT_DESCRIBE
#define ICOIL_GIT_DESCRIBE "unknown"
#endif

namespace icoil::sim {

namespace {

// ------------------------------------------------------------- JSON writer

std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Comma-managed appender for one JSON object/array scope.
class JsonScope {
 public:
  JsonScope(std::string& out, char open, char close)
      : out_(out), close_(close) {
    out_.push_back(open);
  }
  ~JsonScope() { out_.push_back(close_); }

  std::string& field(const std::string& key) {
    sep();
    out_ += '"';
    out_ += json_escape(key);
    out_ += "\":";
    return out_;
  }
  std::string& element() {
    sep();
    return out_;
  }

 private:
  void sep() {
    if (!first_) out_ += ',';
    first_ = false;
  }
  std::string& out_;
  char close_;
  bool first_ = true;
};

void append_string(std::string& out, const std::string& s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

// ------------------------------------------------------------- JSON parser
//
// Minimal recursive-descent JSON reader — just enough to load the documents
// this file writes (objects, arrays, strings with standard escapes, finite
// numbers, booleans, null). Unknown keys are ignored so old loaders keep
// working as the schema grows.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    pos_ = 0;
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_ && error_->empty())
      *error_ = "JSON parse error at offset " + std::to_string(pos_) + ": " +
                what;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return parse_string(&out->string);
    }
    if (c == 't' || c == 'f') return parse_keyword(out);
    if (c == 'n') return parse_keyword(out);
    return parse_number(out);
  }

  bool parse_keyword(JsonValue* out) {
    auto match = [&](const char* kw) {
      const std::size_t n = std::char_traits<char>::length(kw);
      if (text_.compare(pos_, n, kw) != 0) return false;
      pos_ += n;
      return true;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return fail("unknown keyword");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    // strtod must consume the WHOLE scanned token: a prefix parse would
    // silently accept merge-mangled numbers like "1..0" as 1.0.
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the code point (surrogate pairs unsupported; our
          // writer only emits \u00XX for control characters).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue* out) {
    if (!consume('[')) return fail("expected '['");
    out->kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue element;
      if (!parse_value(&element)) return false;
      out->array.push_back(std::move(element));
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue* out) {
    if (!consume('{')) return fail("expected '{'");
    out->kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      std::string key;
      skip_ws();
      if (!parse_string(&key)) return false;
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

// Tolerant field readers: missing/mistyped keys keep the default, so
// loading a report written by an older schema fills in zeros.
double get_number(const JsonValue& obj, const std::string& key,
                  double fallback = 0.0) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : fallback;
}

int get_int(const JsonValue& obj, const std::string& key, int fallback = 0) {
  return static_cast<int>(
      std::llround(get_number(obj, key, static_cast<double>(fallback))));
}

std::string get_string(const JsonValue& obj, const std::string& key,
                       const std::string& fallback = {}) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->string
                                                             : fallback;
}

bool get_bool(const JsonValue& obj, const std::string& key,
              bool fallback = false) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kBool ? v->boolean
                                                           : fallback;
}

std::uint64_t get_hex64(const JsonValue& obj, const std::string& key) {
  const std::string s = get_string(obj, key);
  if (s.empty()) return 0;
  return std::strtoull(s.c_str(), nullptr, 16);
}

/// uint64 serialized as a decimal string (exact beyond 2^53); tolerates a
/// plain JSON number for hand-written documents.
std::uint64_t get_u64_string(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return 0;
  if (v->kind == JsonValue::Kind::kNumber) {
    // Negative or > 2^64 doubles would be UB to cast; treat as absent.
    if (!(v->number >= 0.0) || v->number >= 18446744073709551616.0) return 0;
    return static_cast<std::uint64_t>(v->number);
  }
  if (v->kind == JsonValue::Kind::kString)
    return std::strtoull(v->string.c_str(), nullptr, 10);
  return 0;
}

void write_cell(std::string& out, const CellRecord& cell) {
  JsonScope c(out, '{', '}');
  append_string(c.field("label"), cell.label);
  append_string(c.field("method"), cell.method);
  append_string(c.field("generator"), cell.generator);
  c.field("episodes") += std::to_string(cell.episodes);
  c.field("successes") += std::to_string(cell.successes);
  c.field("collisions") += std::to_string(cell.collisions);
  c.field("timeouts") += std::to_string(cell.timeouts);
  c.field("budget_exceeded") += std::to_string(cell.budget_exceeded);
  c.field("deadline_hits") += std::to_string(cell.deadline_hits);
  c.field("success_ratio") += fmt_double(cell.success_ratio);
  c.field("park_time_mean") += fmt_double(cell.park_time_mean);
  c.field("park_time_min") += fmt_double(cell.park_time_min);
  c.field("park_time_max") += fmt_double(cell.park_time_max);
  c.field("park_time_stddev") += fmt_double(cell.park_time_stddev);
  c.field("il_fraction_mean") += fmt_double(cell.il_fraction_mean);
  c.field("min_clearance_mean") += fmt_double(cell.min_clearance_mean);
  if (!cell.episode_records.empty()) {
    JsonScope eps(c.field("episode_records"), '[', ']');
    for (const EpisodeRecord& ep : cell.episode_records) {
      JsonScope e(eps.element(), '{', '}');
      append_string(e.field("outcome"), ep.outcome);
      e.field("park_time") += fmt_double(ep.park_time);
      e.field("min_clearance") += fmt_double(ep.min_clearance);
      e.field("il_fraction") += fmt_double(ep.il_fraction);
      e.field("mode_switches") += std::to_string(ep.mode_switches);
      e.field("deadline_hits") += std::to_string(ep.deadline_hits);
    }
  }
}

CellRecord read_cell(const JsonValue& v) {
  CellRecord cell;
  cell.label = get_string(v, "label");
  cell.method = get_string(v, "method");
  cell.generator = get_string(v, "generator");
  cell.episodes = get_int(v, "episodes");
  cell.successes = get_int(v, "successes");
  cell.collisions = get_int(v, "collisions");
  cell.timeouts = get_int(v, "timeouts");
  cell.budget_exceeded = get_int(v, "budget_exceeded");
  cell.deadline_hits = get_int(v, "deadline_hits");
  cell.success_ratio = get_number(v, "success_ratio");
  cell.park_time_mean = get_number(v, "park_time_mean");
  cell.park_time_min = get_number(v, "park_time_min");
  cell.park_time_max = get_number(v, "park_time_max");
  cell.park_time_stddev = get_number(v, "park_time_stddev");
  cell.il_fraction_mean = get_number(v, "il_fraction_mean");
  cell.min_clearance_mean = get_number(v, "min_clearance_mean");
  if (const JsonValue* eps = v.find("episode_records");
      eps != nullptr && eps->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& e : eps->array) {
      EpisodeRecord ep;
      ep.outcome = get_string(e, "outcome");
      ep.park_time = get_number(e, "park_time");
      ep.min_clearance = get_number(e, "min_clearance");
      ep.il_fraction = get_number(e, "il_fraction");
      ep.mode_switches = get_int(e, "mode_switches");
      ep.deadline_hits = get_int(e, "deadline_hits");
      cell.episode_records.push_back(std::move(ep));
    }
  }
  return cell;
}

void write_latency_summary(std::string& out, const core::LatencySummary& s) {
  JsonScope o(out, '{', '}');
  o.field("count") += std::to_string(s.count);
  o.field("mean_ms") += fmt_double(s.mean_ms);
  o.field("p50_ms") += fmt_double(s.p50_ms);
  o.field("p90_ms") += fmt_double(s.p90_ms);
  o.field("p99_ms") += fmt_double(s.p99_ms);
  o.field("max_ms") += fmt_double(s.max_ms);
}

void write_load_level(std::string& out, const ServeLoadLevel& level) {
  JsonScope l(out, '{', '}');
  l.field("offered") += std::to_string(level.offered);
  l.field("admitted") += std::to_string(level.admitted);
  l.field("shed") += std::to_string(level.shed);
  l.field("frames") += std::to_string(level.frames);
  l.field("wall_seconds") += fmt_double(level.wall_seconds);
  l.field("frames_per_second") += fmt_double(level.frames_per_second);
  l.field("frame_p50_ms") += fmt_double(level.frame_p50_ms);
  l.field("frame_p99_ms") += fmt_double(level.frame_p99_ms);
  l.field("queue_p99_ms") += fmt_double(level.queue_p99_ms);
  l.field("deadline_hits") += std::to_string(level.deadline_hits);
  l.field("knee") += level.knee ? "true" : "false";
}

core::LatencySummary read_latency_summary(const JsonValue& v) {
  core::LatencySummary s;
  s.count = get_u64_string(v, "count");
  s.mean_ms = get_number(v, "mean_ms");
  s.p50_ms = get_number(v, "p50_ms");
  s.p90_ms = get_number(v, "p90_ms");
  s.p99_ms = get_number(v, "p99_ms");
  s.max_ms = get_number(v, "max_ms");
  return s;
}

CellRecord cell_from_aggregate(const SuiteCell& cell, const Aggregate& agg) {
  CellRecord rec;
  rec.label = agg.level;
  rec.method = agg.method;
  rec.generator = cell.generator;
  rec.episodes = agg.episodes;
  rec.successes = agg.successes;
  rec.collisions = agg.collisions;
  rec.timeouts = agg.timeouts;
  rec.budget_exceeded = agg.budget_exceeded;
  rec.deadline_hits = agg.deadline_hits;
  rec.success_ratio = agg.success_ratio();
  rec.park_time_mean = agg.park_time.mean();
  rec.park_time_min = agg.park_time.min();
  rec.park_time_max = agg.park_time.max();
  rec.park_time_stddev = agg.park_time.stddev();
  rec.il_fraction_mean = agg.il_fraction.mean();
  rec.min_clearance_mean = agg.min_clearance.mean();
  return rec;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::uint64_t config_fingerprint(const EvalConfig& config) {
  math::Fnv1a h;
  h.add_int(config.episodes);
  h.add_int(static_cast<std::int64_t>(config.base_seed));
  h.add_double(config.sim.dt);
  h.add_double(config.sim.goal_pos_tol);
  h.add_double(config.sim.goal_heading_tol);
  h.add_double(config.sim.goal_speed_tol);
  // A frame deadline changes which commands controllers emit, so two runs
  // with different deadlines are not outcome-comparable.
  h.add_double(config.sim.frame_deadline_ms);
  // The grid backend keeps collision verdicts exact, but reported clearance
  // values become conservative lower bounds (resolution sets the band), so
  // clearance-bearing stats are only comparable within one backend setting.
  h.add_int(static_cast<std::int64_t>(config.sim.collision_backend));
  h.add_double(config.sim.grid_resolution);
  // Heuristic modes steer the search through different node orders, so two
  // runs under different modes may return different paths for one scenario.
  h.add_int(static_cast<std::int64_t>(config.sim.planner_heuristic));
  return h.value();
}

std::string build_git_describe() { return ICOIL_GIT_DESCRIBE; }

void RunReport::add_cells(const std::vector<SuiteCellResult>& results) {
  for (const SuiteCellResult& r : results)
    cells.push_back(cell_from_aggregate(r.cell, r.aggregate));
}

void RunReport::add_cells_detailed(
    const std::vector<SuiteCellResult>& results,
    const std::vector<SuiteCellEpisodes>& detailed) {
  if (results.size() != detailed.size())
    throw std::invalid_argument(
        "RunReport::add_cells_detailed: " + std::to_string(results.size()) +
        " aggregates for " + std::to_string(detailed.size()) +
        " detailed cells — both must come from the same suite run");
  for (std::size_t c = 0; c < detailed.size(); ++c) {
    const SuiteCellEpisodes& cell = detailed[c];
    CellRecord rec = cell_from_aggregate(results[c].cell, results[c].aggregate);
    rec.episode_records.reserve(cell.episodes.size());
    for (const EpisodeResult& ep : cell.episodes) {
      EpisodeRecord r;
      r.outcome = to_string(ep.outcome);
      r.park_time = ep.park_time;
      r.min_clearance = ep.min_clearance;
      r.il_fraction = ep.il_fraction;
      r.mode_switches = ep.mode_switches;
      r.deadline_hits = ep.deadline_hits;
      rec.episode_records.push_back(std::move(r));
    }
    cells.push_back(std::move(rec));
  }
}

std::string RunReport::to_json() const {
  std::string out;
  {
    JsonScope doc(out, '{', '}');
    doc.field("schema_version") += std::to_string(meta.schema_version);
    {
      JsonScope m(doc.field("meta"), '{', '}');
      append_string(m.field("suite"), meta.suite);
      append_string(m.field("git_describe"), meta.git_describe);
      m.field("threads") += std::to_string(meta.threads);
      m.field("episodes_per_cell") += std::to_string(meta.episodes_per_cell);
      // uint64 values travel as strings: a JSON number is a double on load
      // and would corrupt seeds >= 2^53.
      append_string(m.field("base_seed"), std::to_string(meta.base_seed));
      append_string(m.field("config_fingerprint"),
                    fmt_hex64(meta.config_fingerprint));
      m.field("aborted") += meta.aborted ? "true" : "false";
    }
    {
      JsonScope cs(doc.field("cells"), '[', ']');
      for (const CellRecord& cell : cells) write_cell(cs.element(), cell);
    }
    if (serve.has_value()) {
      JsonScope s(doc.field("serve"), '{', '}');
      s.field("version") += std::to_string(kServeStatsVersion);
      append_string(s.field("method"), serve->method);
      s.field("sessions") += std::to_string(serve->sessions);
      s.field("threads") += std::to_string(serve->threads);
      s.field("offered") += std::to_string(serve->offered);
      s.field("admitted") += std::to_string(serve->admitted);
      s.field("queued") += std::to_string(serve->queued);
      s.field("shed") += std::to_string(serve->shed);
      s.field("frames") += std::to_string(serve->frames);
      s.field("wall_seconds") += fmt_double(serve->wall_seconds);
      s.field("frames_per_second") += fmt_double(serve->frames_per_second);
      write_latency_summary(s.field("frame"), serve->frame);
      write_latency_summary(s.field("queue"), serve->queue);
      write_latency_summary(s.field("warmup"), serve->warmup);
      s.field("warmup_frames_per_session") +=
          std::to_string(serve->warmup_frames_per_session);
      s.field("frame_deadline_ms") += fmt_double(serve->frame_deadline_ms);
      s.field("deadline_hits") += std::to_string(serve->deadline_hits);
      if (serve->tuning.has_value()) {
        const ServeStats::Tuning& t = *serve->tuning;
        JsonScope ts(s.field("tuning"), '{', '}');
        ts.field("min_ms") += fmt_double(t.min_ms);
        ts.field("max_ms") += fmt_double(t.max_ms);
        ts.field("headroom") += fmt_double(t.headroom);
        ts.field("window") += std::to_string(t.window);
        ts.field("deadline_min_ms") += fmt_double(t.deadline_min_ms);
        ts.field("deadline_mean_ms") += fmt_double(t.deadline_mean_ms);
        ts.field("deadline_max_ms") += fmt_double(t.deadline_max_ms);
      }
      if (!serve->levels.empty()) {
        {
          JsonScope ls(s.field("levels"), '[', ']');
          for (const ServeLoadLevel& level : serve->levels)
            write_load_level(ls.element(), level);
        }
        s.field("knee_offered") += std::to_string(serve->knee_offered);
      }
      if (serve->batching.has_value()) {
        const ServeStats::Batching& b = *serve->batching;
        JsonScope bs(s.field("batching"), '{', '}');
        bs.field("ticks") += std::to_string(b.ticks);
        bs.field("requests") += std::to_string(b.requests);
        bs.field("batches") += std::to_string(b.batches);
        bs.field("max_batch") += std::to_string(b.max_batch);
        bs.field("mean_batch") += fmt_double(b.mean_batch);
        bs.field("gather_seconds") += fmt_double(b.gather_seconds);
        bs.field("forward_seconds") += fmt_double(b.forward_seconds);
        bs.field("scatter_seconds") += fmt_double(b.scatter_seconds);
      }
    }
    if (collision.has_value()) {
      JsonScope col(doc.field("collision"), '{', '}');
      col.field("version") += std::to_string(kCollisionStatsVersion);
      append_string(col.field("generator"), collision->generator);
      col.field("grid_resolution") += fmt_double(collision->grid_resolution);
      JsonScope rows(col.field("rows"), '[', ']');
      for (const CollisionDensityRow& r : collision->rows) {
        JsonScope row(rows.element(), '{', '}');
        row.field("density") += fmt_double(r.density);
        row.field("obstacles") += std::to_string(r.obstacles);
        row.field("analytic_qps") += fmt_double(r.analytic_qps);
        row.field("grid_qps") += fmt_double(r.grid_qps);
        row.field("speedup") += fmt_double(r.speedup);
        row.field("analytic_episode_seconds") +=
            fmt_double(r.analytic_episode_seconds);
        row.field("grid_episode_seconds") += fmt_double(r.grid_episode_seconds);
        row.field("clearance_err_mean") += fmt_double(r.clearance_err_mean);
        row.field("clearance_err_max") += fmt_double(r.clearance_err_max);
        row.field("episodes") += std::to_string(r.episodes);
        row.field("verdicts_match") += r.verdicts_match ? "true" : "false";
      }
    }
    if (mission.has_value()) {
      JsonScope ms(doc.field("mission"), '{', '}');
      ms.field("version") += std::to_string(kMissionStatsVersion);
      JsonScope rows(ms.field("rows"), '[', ']');
      for (const MissionTemplateRow& r : mission->rows) {
        JsonScope row(rows.element(), '{', '}');
        append_string(row.field("mission"), r.mission);
        append_string(row.field("method"), r.method);
        row.field("missions") += std::to_string(r.missions);
        row.field("succeeded") += std::to_string(r.succeeded);
        row.field("success_ratio") += fmt_double(r.success_ratio);
        row.field("legs") += std::to_string(r.legs);
        row.field("legs_per_mission") += fmt_double(r.legs_per_mission);
        row.field("replans") += std::to_string(r.replans);
        row.field("replans_per_mission") += fmt_double(r.replans_per_mission);
        row.field("collisions") += std::to_string(r.collisions);
        row.field("timeouts") += std::to_string(r.timeouts);
        row.field("park_time_p50") += fmt_double(r.park_time_p50);
        row.field("park_time_p95") += fmt_double(r.park_time_p95);
        row.field("exit_time_p50") += fmt_double(r.exit_time_p50);
        row.field("exit_time_p95") += fmt_double(r.exit_time_p95);
        row.field("wall_seconds_mean") += fmt_double(r.wall_seconds_mean);
        append_string(row.field("spec_fingerprint"),
                      fmt_hex64(r.spec_fingerprint));
        append_string(row.field("result_fingerprint"),
                      fmt_hex64(r.result_fingerprint));
      }
    }
    if (planner.has_value()) {
      JsonScope pl(doc.field("planner"), '{', '}');
      pl.field("version") += std::to_string(kPlannerStatsVersion);
      JsonScope rows(pl.field("rows"), '[', ']');
      for (const PlannerFamilyRow& r : planner->rows) {
        JsonScope row(rows.element(), '{', '}');
        append_string(row.field("generator"), r.generator);
        row.field("density") += fmt_double(r.density);
        append_string(row.field("heuristic"), r.heuristic);
        row.field("plans") += std::to_string(r.plans);
        row.field("solved") += std::to_string(r.solved);
        row.field("plan_ms_mean") += fmt_double(r.plan_ms_mean);
        row.field("plan_ms_max") += fmt_double(r.plan_ms_max);
        row.field("expansions_mean") += fmt_double(r.expansions_mean);
        row.field("rs_shots_mean") += fmt_double(r.rs_shots_mean);
        row.field("path_cost_mean") += fmt_double(r.path_cost_mean);
        row.field("speedup") += fmt_double(r.speedup);
        row.field("deadline_ms") += fmt_double(r.deadline_ms);
        row.field("deadline_hits") += std::to_string(r.deadline_hits);
      }
    }
  }
  out.push_back('\n');
  return out;
}

bool RunReport::save(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << to_json();
  if (!out) {
    if (error) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool RunReport::parse(const std::string& json, RunReport* out,
                      std::string* error) {
  JsonValue root;
  JsonParser parser(json, error);
  if (!parser.parse(&root)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    if (error) *error = "report root is not a JSON object";
    return false;
  }
  RunReport report;
  report.meta.schema_version = get_int(root, "schema_version", -1);
  if (report.meta.schema_version < 1 ||
      report.meta.schema_version > kRunReportSchemaVersion) {
    if (error)
      *error = "unsupported schema_version " +
               std::to_string(report.meta.schema_version) + " (this build reads <= " +
               std::to_string(kRunReportSchemaVersion) + ")";
    return false;
  }
  if (const JsonValue* m = root.find("meta");
      m != nullptr && m->kind == JsonValue::Kind::kObject) {
    report.meta.suite = get_string(*m, "suite");
    report.meta.git_describe = get_string(*m, "git_describe");
    report.meta.threads = get_int(*m, "threads");
    report.meta.episodes_per_cell = get_int(*m, "episodes_per_cell");
    report.meta.base_seed = get_u64_string(*m, "base_seed");
    report.meta.config_fingerprint = get_hex64(*m, "config_fingerprint");
    report.meta.aborted = get_bool(*m, "aborted");
  }
  if (const JsonValue* s = root.find("serve");
      s != nullptr && s->kind == JsonValue::Kind::kObject) {
    ServeStats stats;
    stats.version = get_int(*s, "version", 1);
    stats.method = get_string(*s, "method");
    stats.sessions = get_int(*s, "sessions");
    stats.threads = get_int(*s, "threads");
    stats.frames = get_u64_string(*s, "frames");
    stats.wall_seconds = get_number(*s, "wall_seconds");
    stats.frames_per_second = get_number(*s, "frames_per_second");
    // Admission counters arrived in v2; a v1 block admitted everything.
    stats.offered = get_int(*s, "offered", stats.sessions);
    stats.admitted = get_int(*s, "admitted", stats.sessions);
    stats.queued = get_int(*s, "queued");
    stats.shed = get_int(*s, "shed");
    if (const JsonValue* f = s->find("frame");
        f != nullptr && f->kind == JsonValue::Kind::kObject) {
      stats.frame = read_latency_summary(*f);
    } else {
      // v1 fallback: flat frame_p50_ms/p99/max scalars, every served frame
      // counted (v1 had no warmup split).
      stats.frame.count = stats.frames;
      stats.frame.p50_ms = get_number(*s, "frame_p50_ms");
      stats.frame.p99_ms = get_number(*s, "frame_p99_ms");
      stats.frame.max_ms = get_number(*s, "frame_max_ms");
    }
    if (const JsonValue* q = s->find("queue");
        q != nullptr && q->kind == JsonValue::Kind::kObject)
      stats.queue = read_latency_summary(*q);
    if (const JsonValue* w = s->find("warmup");
        w != nullptr && w->kind == JsonValue::Kind::kObject)
      stats.warmup = read_latency_summary(*w);
    stats.warmup_frames_per_session =
        get_int(*s, "warmup_frames_per_session");
    stats.frame_deadline_ms = get_number(*s, "frame_deadline_ms");
    stats.deadline_hits = get_int(*s, "deadline_hits");
    if (const JsonValue* t = s->find("tuning");
        t != nullptr && t->kind == JsonValue::Kind::kObject) {
      ServeStats::Tuning tuning;
      tuning.min_ms = get_number(*t, "min_ms");
      tuning.max_ms = get_number(*t, "max_ms");
      tuning.headroom = get_number(*t, "headroom");
      tuning.window = get_int(*t, "window");
      tuning.deadline_min_ms = get_number(*t, "deadline_min_ms");
      tuning.deadline_mean_ms = get_number(*t, "deadline_mean_ms");
      tuning.deadline_max_ms = get_number(*t, "deadline_max_ms");
      stats.tuning = tuning;
    }
    if (const JsonValue* ls = s->find("levels");
        ls != nullptr && ls->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& l : ls->array) {
        if (l.kind != JsonValue::Kind::kObject) continue;
        ServeLoadLevel level;
        level.offered = get_int(l, "offered");
        level.admitted = get_int(l, "admitted");
        level.shed = get_int(l, "shed");
        level.frames = get_u64_string(l, "frames");
        level.wall_seconds = get_number(l, "wall_seconds");
        level.frames_per_second = get_number(l, "frames_per_second");
        level.frame_p50_ms = get_number(l, "frame_p50_ms");
        level.frame_p99_ms = get_number(l, "frame_p99_ms");
        level.queue_p99_ms = get_number(l, "queue_p99_ms");
        level.deadline_hits = get_int(l, "deadline_hits");
        level.knee = get_bool(l, "knee");
        stats.levels.push_back(level);
      }
      stats.knee_offered = get_int(*s, "knee_offered");
    }
    if (const JsonValue* b = s->find("batching");
        b != nullptr && b->kind == JsonValue::Kind::kObject) {
      ServeStats::Batching batching;
      batching.ticks = get_u64_string(*b, "ticks");
      batching.requests = get_u64_string(*b, "requests");
      batching.batches = get_u64_string(*b, "batches");
      batching.max_batch = get_u64_string(*b, "max_batch");
      batching.mean_batch = get_number(*b, "mean_batch");
      batching.gather_seconds = get_number(*b, "gather_seconds");
      batching.forward_seconds = get_number(*b, "forward_seconds");
      batching.scatter_seconds = get_number(*b, "scatter_seconds");
      stats.batching = batching;
    }
    report.serve = stats;
  }
  if (const JsonValue* col = root.find("collision");
      col != nullptr && col->kind == JsonValue::Kind::kObject) {
    CollisionStats stats;
    stats.version = get_int(*col, "version", 1);
    stats.generator = get_string(*col, "generator");
    stats.grid_resolution = get_number(*col, "grid_resolution");
    if (const JsonValue* rows = col->find("rows");
        rows != nullptr && rows->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& r : rows->array) {
        if (r.kind != JsonValue::Kind::kObject) continue;
        CollisionDensityRow row;
        row.density = get_number(r, "density", 1.0);
        row.obstacles = get_int(r, "obstacles");
        row.analytic_qps = get_number(r, "analytic_qps");
        row.grid_qps = get_number(r, "grid_qps");
        row.speedup = get_number(r, "speedup");
        row.analytic_episode_seconds =
            get_number(r, "analytic_episode_seconds");
        row.grid_episode_seconds = get_number(r, "grid_episode_seconds");
        row.clearance_err_mean = get_number(r, "clearance_err_mean");
        row.clearance_err_max = get_number(r, "clearance_err_max");
        row.episodes = get_int(r, "episodes");
        row.verdicts_match = get_bool(r, "verdicts_match", true);
        stats.rows.push_back(row);
      }
    }
    report.collision = stats;
  }
  if (const JsonValue* ms = root.find("mission");
      ms != nullptr && ms->kind == JsonValue::Kind::kObject) {
    MissionStats stats;
    stats.version = get_int(*ms, "version", 1);
    if (const JsonValue* rows = ms->find("rows");
        rows != nullptr && rows->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& r : rows->array) {
        if (r.kind != JsonValue::Kind::kObject) continue;
        MissionTemplateRow row;
        row.mission = get_string(r, "mission");
        row.method = get_string(r, "method");
        row.missions = get_int(r, "missions");
        row.succeeded = get_int(r, "succeeded");
        row.success_ratio = get_number(r, "success_ratio");
        row.legs = get_int(r, "legs");
        row.legs_per_mission = get_number(r, "legs_per_mission");
        row.replans = get_int(r, "replans");
        row.replans_per_mission = get_number(r, "replans_per_mission");
        row.collisions = get_int(r, "collisions");
        row.timeouts = get_int(r, "timeouts");
        row.park_time_p50 = get_number(r, "park_time_p50");
        row.park_time_p95 = get_number(r, "park_time_p95");
        row.exit_time_p50 = get_number(r, "exit_time_p50");
        row.exit_time_p95 = get_number(r, "exit_time_p95");
        row.wall_seconds_mean = get_number(r, "wall_seconds_mean");
        row.spec_fingerprint = get_hex64(r, "spec_fingerprint");
        row.result_fingerprint = get_hex64(r, "result_fingerprint");
        stats.rows.push_back(row);
      }
    }
    report.mission = stats;
  }
  if (const JsonValue* pl = root.find("planner");
      pl != nullptr && pl->kind == JsonValue::Kind::kObject) {
    PlannerStats stats;
    stats.version = get_int(*pl, "version", 1);
    if (const JsonValue* rows = pl->find("rows");
        rows != nullptr && rows->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& r : rows->array) {
        if (r.kind != JsonValue::Kind::kObject) continue;
        PlannerFamilyRow row;
        row.generator = get_string(r, "generator");
        row.density = get_number(r, "density", 1.0);
        row.heuristic = get_string(r, "heuristic");
        row.plans = get_int(r, "plans");
        row.solved = get_int(r, "solved");
        row.plan_ms_mean = get_number(r, "plan_ms_mean");
        row.plan_ms_max = get_number(r, "plan_ms_max");
        row.expansions_mean = get_number(r, "expansions_mean");
        row.rs_shots_mean = get_number(r, "rs_shots_mean");
        row.path_cost_mean = get_number(r, "path_cost_mean");
        row.speedup = get_number(r, "speedup");
        row.deadline_ms = get_number(r, "deadline_ms");
        row.deadline_hits = get_int(r, "deadline_hits");
        stats.rows.push_back(row);
      }
    }
    report.planner = stats;
  }
  if (const JsonValue* cs = root.find("cells");
      cs != nullptr && cs->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& c : cs->array) {
      if (c.kind != JsonValue::Kind::kObject) {
        if (error) *error = "cells[] entry is not an object";
        return false;
      }
      report.cells.push_back(read_cell(c));
    }
  }
  *out = std::move(report);
  return true;
}

bool RunReport::load(const std::string& path, RunReport* out,
                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), out, error);
}

std::string aggregate_json_line(const std::string& bench,
                                const std::string& cell,
                                const Aggregate& agg) {
  std::string out;
  JsonScope line(out, '{', '}');
  append_string(line.field("bench"), bench);
  append_string(line.field("cell"), cell);
  append_string(line.field("method"), agg.method);
  line.field("episodes") += std::to_string(agg.episodes);
  line.field("successes") += std::to_string(agg.successes);
  line.field("collisions") += std::to_string(agg.collisions);
  line.field("timeouts") += std::to_string(agg.timeouts);
  line.field("budget_exceeded") += std::to_string(agg.budget_exceeded);
  line.field("deadline_hits") += std::to_string(agg.deadline_hits);
  line.field("success_ratio") += fmt_double(agg.success_ratio());
  line.field("park_time_mean") += fmt_double(agg.park_time.mean());
  line.field("park_time_min") += fmt_double(agg.park_time.min());
  line.field("park_time_max") += fmt_double(agg.park_time.max());
  line.field("il_fraction_mean") += fmt_double(agg.il_fraction.mean());
  line.field("min_clearance_mean") += fmt_double(agg.min_clearance.mean());
  return out;
}

std::string BaselineVerdict::summary() const {
  std::ostringstream out;
  if (ok) {
    out << "baseline check OK";
  } else {
    out << "baseline check FAILED (" << failures.size() << " regression"
        << (failures.size() == 1 ? "" : "s") << ")";
  }
  for (const std::string& f : failures) out << "\n  FAIL  " << f;
  for (const std::string& n : notes) out << "\n  note  " << n;
  return out.str();
}

BaselineVerdict compare_to_baseline(const RunReport& current,
                                    const RunReport& baseline,
                                    const BaselineTolerance& tolerance) {
  BaselineVerdict verdict;
  if (current.meta.config_fingerprint != baseline.meta.config_fingerprint)
    verdict.notes.push_back(
        "config fingerprints differ — the baseline run used different eval "
        "settings; numbers may legitimately differ");

  auto find_current = [&](const CellRecord& want) -> const CellRecord* {
    for (const CellRecord& c : current.cells)
      if (c.method == want.method && c.label == want.label) return &c;
    return nullptr;
  };

  for (const CellRecord& base : baseline.cells) {
    const CellRecord* cur = find_current(base);
    const std::string id = base.method + " / " + base.label;
    if (cur == nullptr) {
      verdict.failures.push_back(id + ": cell missing from current run");
      continue;
    }
    const double drop = base.success_ratio - cur->success_ratio;
    if (drop > tolerance.success_drop + 1e-12) {
      std::ostringstream why;
      why << id << ": success ratio " << cur->success_ratio << " vs baseline "
          << base.success_ratio << " (drop " << drop << " > tol "
          << tolerance.success_drop << ")";
      verdict.failures.push_back(why.str());
    }
    // Park time only compares when both runs actually parked: a mean over
    // zero successes is the RunningStats 0.0 placeholder, not a time.
    if (base.successes > 0 && cur->successes > 0 && base.park_time_mean > 0) {
      const double slowdown =
          cur->park_time_mean / base.park_time_mean - 1.0;
      if (slowdown > tolerance.park_time_slowdown + 1e-12) {
        std::ostringstream why;
        why << id << ": park time mean " << cur->park_time_mean
            << " s vs baseline " << base.park_time_mean << " s (+"
            << 100.0 * slowdown << "% > tol "
            << 100.0 * tolerance.park_time_slowdown << "%)";
        verdict.failures.push_back(why.str());
      }
    }
    if (cur->budget_exceeded > base.budget_exceeded)
      verdict.notes.push_back(id + ": budget_exceeded rose to " +
                              std::to_string(cur->budget_exceeded) + " (from " +
                              std::to_string(base.budget_exceeded) + ")");
  }

  for (const CellRecord& cur : current.cells) {
    bool known = false;
    for (const CellRecord& base : baseline.cells)
      if (base.method == cur.method && base.label == cur.label) known = true;
    if (!known)
      verdict.notes.push_back(cur.method + " / " + cur.label +
                              ": new cell (not in baseline)");
  }

  // Mission rows (matched on template + method). A spec-fingerprint mismatch
  // means the template itself changed since the baseline was recorded: the
  // numbers are not comparable, so it is flagged as a note and the row is
  // skipped rather than failed.
  if (baseline.mission.has_value()) {
    const std::vector<MissionTemplateRow> empty;
    const std::vector<MissionTemplateRow>& cur_rows =
        current.mission.has_value() ? current.mission->rows : empty;
    for (const MissionTemplateRow& base : baseline.mission->rows) {
      const MissionTemplateRow* cur = nullptr;
      for (const MissionTemplateRow& c : cur_rows)
        if (c.mission == base.mission && c.method == base.method) cur = &c;
      const std::string id = base.method + " / mission:" + base.mission;
      if (cur == nullptr) {
        verdict.failures.push_back(id + ": mission row missing from current run");
        continue;
      }
      if (cur->spec_fingerprint != base.spec_fingerprint) {
        verdict.notes.push_back(
            id + ": template fingerprint changed — baseline not comparable, "
                 "re-record it");
        continue;
      }
      const double drop = base.success_ratio - cur->success_ratio;
      if (drop > tolerance.mission_success_drop + 1e-12) {
        std::ostringstream why;
        why << id << ": mission success ratio " << cur->success_ratio
            << " vs baseline " << base.success_ratio << " (drop " << drop
            << " > tol " << tolerance.mission_success_drop << ")";
        verdict.failures.push_back(why.str());
      }
      const double replan_delta =
          std::abs(cur->replans_per_mission - base.replans_per_mission);
      if (replan_delta > tolerance.mission_replan_delta + 1e-12) {
        std::ostringstream why;
        why << id << ": replans per mission " << cur->replans_per_mission
            << " vs baseline " << base.replans_per_mission << " (|delta| "
            << replan_delta << " > tol " << tolerance.mission_replan_delta
            << ")";
        verdict.failures.push_back(why.str());
      }
    }
  }

  verdict.ok = verdict.failures.empty();
  return verdict;
}

}  // namespace icoil::sim
