#pragma once

#include <cstdint>

#include "core/cancel_token.hpp"
#include "core/controller.hpp"
#include "sim/simulator.hpp"
#include "world/world.hpp"

namespace icoil::sim {

/// Stepwise episode runner — the open/step/result decomposition of the
/// closed `Simulator::run` loop. A Session owns the episode state (world,
/// vehicle, RNG, partial result); the caller owns the cadence: call step()
/// once per control frame until it returns kDone, then read result().
/// `Simulator::run` is a thin loop over a Session (bit-for-bit identical
/// results), and serving drivers interleave many Sessions on one
/// core::TaskPool, timing each step() as one served frame.
///
/// Per-frame budgets: every step() hands the controller a FrameContext
/// carrying SimConfig::frame_deadline_ms (and the episode CancelToken), so
/// budget-aware controllers degrade per frame; frames that hit the deadline
/// are counted in EpisodeResult::deadline_hits.
class Session {
 public:
  enum class Status { kRunning, kDone };

  /// Opens an episode: copies the scenario into a live world, seeds the
  /// episode RNG and resets `controller` (which must outlive the Session,
  /// and drives only this Session until it is done). When `cancel` is given
  /// it is polled every frame and ends the episode with kBudgetExceeded.
  Session(const world::Scenario& scenario, core::Controller& controller,
          std::uint64_t seed, SimConfig config = {},
          const core::CancelToken* cancel = nullptr);

  /// Convenience spelling mirroring the open/step/result vocabulary.
  static Session open(const world::Scenario& scenario,
                      core::Controller& controller, std::uint64_t seed,
                      SimConfig config = {},
                      const core::CancelToken* cancel = nullptr) {
    return Session(scenario, controller, seed, config, cancel);
  }

  /// Advance one control frame (sense -> act -> integrate -> check).
  /// Returns kDone once the episode reached a terminal condition; further
  /// calls are no-ops that keep returning kDone.
  Status step();

  bool done() const { return done_; }

  /// The episode outcome; only meaningful once done() (until then it holds
  /// the running partial tallies with a kTimeout placeholder outcome).
  const EpisodeResult& result() const { return result_; }

  /// Frames stepped so far / the simulated clock they add up to.
  std::size_t frame() const { return frame_; }
  double sim_time() const { return static_cast<double>(frame_) * config_.dt; }

  const SimConfig& config() const { return config_; }
  const vehicle::State& state() const { return state_; }
  const world::World& world() const { return world_; }

 private:
  void finish(Outcome outcome, double park_time);

  SimConfig config_;
  core::Controller* controller_;
  const core::CancelToken* cancel_;
  math::Rng rng_;
  world::World world_;
  vehicle::BicycleModel model_;
  vehicle::State state_;
  std::size_t max_frames_;
  std::size_t frame_ = 0;
  std::size_t il_frames_ = 0;
  core::Mode prev_mode_ = core::Mode::kCo;
  bool done_ = false;
  EpisodeResult result_;
};

}  // namespace icoil::sim
