#pragma once

#include <cstdint>
#include <optional>

#include "core/cancel_token.hpp"
#include "core/controller.hpp"
#include "core/frame_context.hpp"
#include "sim/simulator.hpp"
#include "world/world.hpp"

namespace icoil::core {
class BatchClient;
}
namespace icoil::il {
class BatchInferencer;
}

namespace icoil::sim {

/// Stepwise episode runner — the open/step/result decomposition of the
/// closed `Simulator::run` loop. A Session owns the episode state (world,
/// vehicle, RNG, partial result); the caller owns the cadence: call step()
/// once per control frame until it returns kDone, then read result().
/// `Simulator::run` is a thin loop over a Session (bit-for-bit identical
/// results), and serving drivers interleave many Sessions on one
/// core::TaskPool, timing each step() as one served frame.
///
/// Per-frame budgets: every step() hands the controller a FrameContext
/// carrying SimConfig::frame_deadline_ms (and the episode CancelToken), so
/// budget-aware controllers degrade per frame; frames that hit the deadline
/// are counted in EpisodeResult::deadline_hits.
class Session {
 public:
  enum class Status { kRunning, kDone };

  /// Opens an episode: copies the scenario into a live world, seeds the
  /// episode RNG and resets `controller` (which must outlive the Session,
  /// and drives only this Session until it is done). When `cancel` is given
  /// it is polled every frame and ends the episode with kBudgetExceeded.
  Session(const world::Scenario& scenario, core::Controller& controller,
          std::uint64_t seed, SimConfig config = {},
          const core::CancelToken* cancel = nullptr);

  /// Leg-chaining constructor: the ego starts from an explicit state
  /// (pose AND carried speed) instead of the scenario's start_pose, and the
  /// world clock starts at `world_time` so scripted obstacle phases stay
  /// continuous across chained episodes. The scenario's start_pose is
  /// rewritten to `start.pose` before the controller reset, so reference
  /// planners plan from the true start. The episode timeout still allows
  /// scenario.time_limit of LEG time (frames are counted from zero).
  Session(const world::Scenario& scenario, core::Controller& controller,
          std::uint64_t seed, const vehicle::State& start, double world_time,
          SimConfig config = {}, const core::CancelToken* cancel = nullptr);

  /// Convenience spelling mirroring the open/step/result vocabulary.
  static Session open(const world::Scenario& scenario,
                      core::Controller& controller, std::uint64_t seed,
                      SimConfig config = {},
                      const core::CancelToken* cancel = nullptr) {
    return Session(scenario, controller, seed, config, cancel);
  }

  /// open() overload starting from an explicit ego state (mission legs).
  static Session open(const world::Scenario& scenario,
                      core::Controller& controller, std::uint64_t seed,
                      const vehicle::State& start, double world_time,
                      SimConfig config = {},
                      const core::CancelToken* cancel = nullptr) {
    return Session(scenario, controller, seed, start, world_time, config,
                   cancel);
  }

  /// Advance one control frame (sense -> act -> integrate -> check).
  /// Returns kDone once the episode reached a terminal condition; further
  /// calls are no-ops that keep returning kDone.
  Status step();

  /// True when this Session's controller implements core::BatchClient and
  /// can therefore be stepped through stage()/commit().
  bool supports_batching() const { return batch_client_ != nullptr; }

  /// Batched alternative to step(), split around the shared inference tick.
  /// stage() runs the pre-inference half of the frame — frame/cancel
  /// checks, sensing, observation submit to `service` — and returns true
  /// when an observation was staged; false means the episode finished (or
  /// already was) without needing inference. After service.run_tick(),
  /// commit() completes the frame exactly like step() would have.
  /// stage()+commit() replays step() bit for bit: the controller consumes
  /// the episode RNG in the same order and the batched forward itself is
  /// bit-identical to per-session inference (see il::BatchInferencer).
  bool stage(il::BatchInferencer& service);
  Status commit(il::BatchInferencer& service);

  bool done() const { return done_; }

  /// The episode outcome; only meaningful once done() (until then it holds
  /// the running partial tallies with a kTimeout placeholder outcome).
  const EpisodeResult& result() const { return result_; }

  /// Frames stepped so far / the simulated clock they add up to. frames()
  /// is frame() under its aggregate-count name — callers tallying per-leg
  /// totals read better with it.
  std::size_t frame() const { return frame_; }
  std::size_t frames() const { return frame_; }
  double sim_time() const { return static_cast<double>(frame_) * config_.dt; }

  /// Replaces the per-frame wall-clock budget applied to FUTURE frames —
  /// the serve::DeadlineTuner feedback hook. Takes effect on the next
  /// step()/stage(); <= 0 removes the deadline. Call only between frames,
  /// from the thread driving this Session.
  void set_frame_deadline_ms(double ms) { config_.frame_deadline_ms = ms; }

  const SimConfig& config() const { return config_; }
  const vehicle::State& state() const { return state_; }
  const world::World& world() const { return world_; }
  /// Mutable world access for co-simulation: the mission layer attaches a
  /// world::WorldDriver (traffic agents) here before the first step. Don't
  /// mutate the world mid-frame from anywhere else — the episode's
  /// determinism is only guaranteed for driver-applied changes.
  world::World& world_mutable() { return world_; }

 private:
  void finish(Outcome outcome, double park_time);
  /// Pre-act frame admission: terminal/cancel checks. False = episode over.
  bool begin_frame();
  /// Post-act bookkeeping, integration and terminal checks.
  Status execute_frame(const vehicle::Command& cmd);

  SimConfig config_;
  core::Controller* controller_;
  core::BatchClient* batch_client_;  ///< controller's batching capability
  const core::CancelToken* cancel_;
  math::Rng rng_;
  world::World world_;
  vehicle::BicycleModel model_;
  vehicle::State state_;
  std::size_t max_frames_;
  std::size_t frame_ = 0;
  std::size_t il_frames_ = 0;
  core::Mode prev_mode_ = core::Mode::kCo;
  bool done_ = false;
  EpisodeResult result_;
  /// Lives from stage() to commit(): both halves of a batched frame share
  /// one context, exactly like the single context a step() frame gets.
  std::optional<core::FrameContext> staged_ctx_;
};

}  // namespace icoil::sim
