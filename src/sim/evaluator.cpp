#include "sim/evaluator.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/task_pool.hpp"

namespace icoil::sim {

namespace {

/// Per-worker evaluation state: controllers are stateful and policies cache
/// activations, so every pool worker drives its own controller clone
/// (created lazily on the worker's first episode).
struct WorkerState {
  std::unique_ptr<core::Controller> controller;
};

core::Controller& worker_controller(std::vector<WorkerState>& states,
                                    const core::TaskPool::Context& ctx,
                                    const core::ControllerFactory& factory) {
  WorkerState& state = states[static_cast<std::size_t>(ctx.worker)];
  if (!state.controller) state.controller = factory();
  return *state.controller;
}

}  // namespace

Aggregate aggregate_episodes(const std::vector<EpisodeResult>& results,
                             const std::string& method,
                             const std::string& level) {
  Aggregate agg;
  agg.method = method;
  agg.level = level;
  for (const EpisodeResult& r : results) {
    ++agg.episodes;
    switch (r.outcome) {
      case Outcome::kSuccess:
        ++agg.successes;
        agg.park_time.add(r.park_time);
        break;
      case Outcome::kCollision:
        ++agg.collisions;
        break;
      case Outcome::kTimeout:
        ++agg.timeouts;
        break;
      case Outcome::kBudgetExceeded:
        ++agg.budget_exceeded;
        break;
    }
    agg.deadline_hits += r.deadline_hits;
    agg.il_fraction.add(r.il_fraction);
    // Episodes that never saw an obstacle keep the sentinel; they carry no
    // clearance information, so they are excluded from the statistic.
    if (r.min_clearance < geom::kMaxClearance)
      agg.min_clearance.add(r.min_clearance);
  }
  return agg;
}

std::vector<EpisodeResult> Evaluator::evaluate_detailed(
    const core::ControllerFactory& factory,
    const world::ScenarioOptions& options) const {
  ScenarioSuite suite;
  suite.add(SuiteCell::from_options(options));
  return std::move(evaluate_suite_detailed(factory, suite).front().episodes);
}

Aggregate Evaluator::evaluate(const core::ControllerFactory& factory,
                              const world::ScenarioOptions& options,
                              const std::string& method_label) const {
  return aggregate_episodes(evaluate_detailed(factory, options), method_label,
                            world::to_string(options.difficulty));
}

std::vector<SuiteCellEpisodes> Evaluator::evaluate_suite_detailed(
    const core::ControllerFactory& factory, const ScenarioSuite& suite,
    const SuiteProgress& progress) const {
  const int per_cell = config_.episodes;
  if (per_cell <= 0)
    throw std::invalid_argument(
        "Evaluator::evaluate_suite: config.episodes must be positive (got " +
        std::to_string(per_cell) + ") — an empty run is always a bug upstream");
  const int num_cells = static_cast<int>(suite.cells.size());

  // Expand every cell's options once up front; workers only read them.
  std::vector<world::ScenarioOptions> options;
  options.reserve(suite.cells.size());
  for (const SuiteCell& cell : suite.cells) options.push_back(cell.options());

  std::vector<SuiteCellEpisodes> out(suite.cells.size());
  for (std::size_t c = 0; c < suite.cells.size(); ++c) {
    out[c].cell = suite.cells[c];
    out[c].episodes.resize(static_cast<std::size_t>(per_cell));
  }

  // One shared (cell, episode) job queue: a slow cell (crowded lot, long
  // time limit) never serializes the rest of the suite, and the per-episode
  // seeds match what a per-cell evaluate() would use. Every cell's episodes
  // share one CancelToken, so a positive wall_budget bounds the WHOLE
  // cell's wall-clock time from its first episode's start.
  // Each cell token links the pool-level abort token (when configured), so
  // a SIGINT-style abort drains every cell at once.
  std::vector<std::shared_ptr<core::CancelToken>> cell_tokens;
  cell_tokens.reserve(suite.cells.size());
  for (std::size_t c = 0; c < suite.cells.size(); ++c) {
    cell_tokens.push_back(std::make_shared<core::CancelToken>());
    if (config_.abort != nullptr) cell_tokens.back()->link_parent(config_.abort);
  }

  std::vector<std::atomic<int>> episodes_left(suite.cells.size());
  for (auto& e : episodes_left) e.store(per_cell);
  std::mutex progress_mutex;
  int cells_done = 0;  // guarded by progress_mutex

  // Everything tasks capture must outlive the pool: the pool is declared
  // LAST so an exception mid-submit joins the workers before any of it is
  // torn down.
  std::vector<WorkerState> states(
      static_cast<std::size_t>(resolved_workers(per_cell * num_cells)));
  const Simulator sim(config_.sim);
  core::TaskPool pool(static_cast<int>(states.size()));

  for (int cell = 0; cell < num_cells; ++cell) {
    for (int episode = 0; episode < per_cell; ++episode) {
      pool.submit(
          [&, cell, episode](const core::TaskPool::Context& ctx) {
            EpisodeResult& result =
                out[static_cast<std::size_t>(cell)]
                    .episodes[static_cast<std::size_t>(episode)];
            if (ctx.cancelled()) {
              // The cell's budget already tripped: skip scenario
              // construction entirely (matches what sim.run would return
              // when cancelled before its first frame).
              result.outcome = Outcome::kBudgetExceeded;
            } else {
              const std::uint64_t seed =
                  config_.base_seed + static_cast<std::uint64_t>(episode);
              const world::Scenario scenario = world::make_scenario(
                  options[static_cast<std::size_t>(cell)], seed);
              result = sim.run(scenario,
                               worker_controller(states, ctx, factory), seed,
                               ctx.token);
            }
            if (episodes_left[static_cast<std::size_t>(cell)].fetch_sub(1) ==
                    1 &&
                progress) {
              // The increment must happen under the same lock as the
              // callback: otherwise two workers finishing cells back-to-back
              // can take the lock in swapped order and deliver `done` counts
              // out of order.
              const std::lock_guard<std::mutex> lock(progress_mutex);
              const int done = ++cells_done;
              progress(suite.cells[static_cast<std::size_t>(cell)], done,
                       num_cells);
            }
          },
          cell_tokens[static_cast<std::size_t>(cell)],
          suite.cells[static_cast<std::size_t>(cell)].wall_budget);
    }
  }
  pool.wait_idle();
  return out;
}

std::vector<SuiteCellResult> aggregate_suite(
    const std::vector<SuiteCellEpisodes>& detailed,
    const std::string& method_label) {
  std::vector<SuiteCellResult> out;
  out.reserve(detailed.size());
  for (const SuiteCellEpisodes& cell : detailed) {
    out.push_back({cell.cell,
                   aggregate_episodes(cell.episodes, method_label,
                                      cell.cell.display_label())});
  }
  return out;
}

std::vector<SuiteCellResult> Evaluator::evaluate_suite(
    const core::ControllerFactory& factory, const ScenarioSuite& suite,
    const std::string& method_label, const SuiteProgress& progress) const {
  return aggregate_suite(evaluate_suite_detailed(factory, suite, progress),
                         method_label);
}

}  // namespace icoil::sim
