#include "sim/evaluator.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

namespace icoil::sim {

std::vector<EpisodeResult> Evaluator::evaluate_detailed(
    const core::ControllerFactory& factory,
    const world::ScenarioOptions& options) const {
  const int n = config_.episodes;
  std::vector<EpisodeResult> results(static_cast<std::size_t>(n));

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int threads = std::max(
      1, std::min(config_.num_threads > 0 ? config_.num_threads : hw,
                  std::min(16, n)));

  std::atomic<int> next{0};
  auto worker = [&] {
    auto controller = factory();
    Simulator sim(config_.sim);
    for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      const std::uint64_t seed = config_.base_seed + static_cast<std::uint64_t>(i);
      const world::Scenario scenario = world::make_scenario(options, seed);
      results[static_cast<std::size_t>(i)] = sim.run(scenario, *controller, seed);
    }
  };

  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return results;
}

Aggregate Evaluator::evaluate(const core::ControllerFactory& factory,
                              const world::ScenarioOptions& options,
                              const std::string& method_label) const {
  Aggregate agg;
  agg.method = method_label;
  agg.level = world::to_string(options.difficulty);
  for (const EpisodeResult& r : evaluate_detailed(factory, options)) {
    ++agg.episodes;
    switch (r.outcome) {
      case Outcome::kSuccess:
        ++agg.successes;
        agg.park_time.add(r.park_time);
        break;
      case Outcome::kCollision:
        ++agg.collisions;
        break;
      case Outcome::kTimeout:
        ++agg.timeouts;
        break;
    }
    agg.il_fraction.add(r.il_fraction);
    if (r.min_clearance < 1e8) agg.min_clearance.add(r.min_clearance);
  }
  return agg;
}

}  // namespace icoil::sim
