#include "sim/evaluator.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

namespace icoil::sim {

namespace {

int worker_count(int requested, int jobs, int cap) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, std::min(requested > 0 ? requested : hw,
                              std::min(std::max(1, cap), jobs)));
}

Aggregate aggregate_episodes(const std::vector<EpisodeResult>& results,
                             const std::string& method,
                             const std::string& level) {
  Aggregate agg;
  agg.method = method;
  agg.level = level;
  for (const EpisodeResult& r : results) {
    ++agg.episodes;
    switch (r.outcome) {
      case Outcome::kSuccess:
        ++agg.successes;
        agg.park_time.add(r.park_time);
        break;
      case Outcome::kCollision:
        ++agg.collisions;
        break;
      case Outcome::kTimeout:
        ++agg.timeouts;
        break;
    }
    agg.il_fraction.add(r.il_fraction);
    // Episodes that never saw an obstacle keep the sentinel; they carry no
    // clearance information, so they are excluded from the statistic.
    if (r.min_clearance < geom::kMaxClearance)
      agg.min_clearance.add(r.min_clearance);
  }
  return agg;
}

}  // namespace

std::vector<EpisodeResult> Evaluator::evaluate_detailed(
    const core::ControllerFactory& factory,
    const world::ScenarioOptions& options) const {
  const int n = config_.episodes;
  std::vector<EpisodeResult> results(static_cast<std::size_t>(n));

  std::atomic<int> next{0};
  auto worker = [&] {
    auto controller = factory();
    Simulator sim(config_.sim);
    for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      const std::uint64_t seed = config_.base_seed + static_cast<std::uint64_t>(i);
      const world::Scenario scenario = world::make_scenario(options, seed);
      results[static_cast<std::size_t>(i)] = sim.run(scenario, *controller, seed);
    }
  };

  std::vector<std::thread> pool;
  const int threads = worker_count(config_.num_threads, n, config_.thread_cap);
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return results;
}

Aggregate Evaluator::evaluate(const core::ControllerFactory& factory,
                              const world::ScenarioOptions& options,
                              const std::string& method_label) const {
  return aggregate_episodes(evaluate_detailed(factory, options), method_label,
                            world::to_string(options.difficulty));
}

std::vector<SuiteCellResult> Evaluator::evaluate_suite(
    const core::ControllerFactory& factory, const ScenarioSuite& suite,
    const std::string& method_label, const SuiteProgress& progress) const {
  const int per_cell = config_.episodes;
  const int num_cells = static_cast<int>(suite.cells.size());
  const int total = per_cell * num_cells;

  // Expand every cell's options once up front; workers only read them.
  std::vector<world::ScenarioOptions> options;
  options.reserve(suite.cells.size());
  for (const SuiteCell& cell : suite.cells) options.push_back(cell.options());

  std::vector<std::vector<EpisodeResult>> results(
      suite.cells.size(),
      std::vector<EpisodeResult>(static_cast<std::size_t>(per_cell)));

  // One shared (cell, episode) job queue: a slow cell (crowded lot, long
  // time limit) never serializes the rest of the suite, and the per-episode
  // seeds match what a per-cell evaluate() would use.
  std::atomic<int> next{0};
  std::vector<std::atomic<int>> episodes_left(suite.cells.size());
  for (auto& e : episodes_left) e.store(per_cell);
  std::mutex progress_mutex;
  int cells_done = 0;  // guarded by progress_mutex
  auto worker = [&] {
    auto controller = factory();
    Simulator sim(config_.sim);
    for (int j = next.fetch_add(1); j < total; j = next.fetch_add(1)) {
      const int cell = j / per_cell;
      const int episode = j % per_cell;
      const std::uint64_t seed =
          config_.base_seed + static_cast<std::uint64_t>(episode);
      const world::Scenario scenario =
          world::make_scenario(options[static_cast<std::size_t>(cell)], seed);
      results[static_cast<std::size_t>(cell)][static_cast<std::size_t>(episode)] =
          sim.run(scenario, *controller, seed);
      if (episodes_left[static_cast<std::size_t>(cell)].fetch_sub(1) == 1 &&
          progress) {
        // The increment must happen under the same lock as the callback:
        // otherwise two workers finishing cells back-to-back can take the
        // lock in swapped order and deliver `done` counts out of order.
        const std::lock_guard<std::mutex> lock(progress_mutex);
        const int done = ++cells_done;
        progress(suite.cells[static_cast<std::size_t>(cell)], done, num_cells);
      }
    }
  };

  std::vector<std::thread> pool;
  const int threads =
      worker_count(config_.num_threads, total, config_.thread_cap);
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();

  std::vector<SuiteCellResult> out;
  out.reserve(suite.cells.size());
  for (std::size_t c = 0; c < suite.cells.size(); ++c) {
    out.push_back({suite.cells[c],
                   aggregate_episodes(results[c], method_label,
                                      suite.cells[c].display_label())});
  }
  return out;
}

}  // namespace icoil::sim
