#include "sim/curriculum.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "mathkit/fnv.hpp"
#include "world/generators/registry.hpp"

namespace icoil::sim {

world::ScenarioOptions CurriculumEntry::options() const {
  world::ScenarioOptions opt;
  opt.generator = generator;
  opt.params = params;
  opt.difficulty = difficulty;
  opt.start_class = start_class;
  opt.num_obstacles_override = num_obstacles_override;
  opt.time_limit = time_limit;
  return opt;
}

std::string CurriculumEntry::label() const {
  if (!mission.empty()) return "mission:" + mission;
  return generator + "/" + world::to_string(difficulty);
}

namespace {
MissionLegExpander& expander_slot() {
  static MissionLegExpander expander;
  return expander;
}
}  // namespace

void set_mission_leg_expander(MissionLegExpander expander) {
  expander_slot() = std::move(expander);
}

const MissionLegExpander& mission_leg_expander() { return expander_slot(); }

std::vector<int> Curriculum::episode_counts(int episodes) const {
  std::vector<int> counts(entries.size(), 0);
  if (entries.empty() || episodes <= 0) return counts;
  double total_weight = 0.0;
  for (const CurriculumEntry& e : entries) total_weight += std::max(0.0, e.weight);
  if (total_weight <= 0.0) {
    // Degenerate weights: fall back to a uniform split.
    for (std::size_t i = 0; i < counts.size(); ++i)
      counts[i] = episodes / static_cast<int>(entries.size()) +
                  (static_cast<int>(i) <
                           episodes % static_cast<int>(entries.size())
                       ? 1
                       : 0);
    return counts;
  }

  // Largest-remainder apportionment: floor quotas, then hand the leftover
  // episodes to the largest fractional remainders (ties -> earlier entries).
  std::vector<double> remainder(entries.size());
  int assigned = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const double quota =
        episodes * std::max(0.0, entries[i].weight) / total_weight;
    counts[i] = static_cast<int>(quota);
    remainder[i] = quota - counts[i];
    assigned += counts[i];
  }
  std::vector<std::size_t> order(entries.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return remainder[a] > remainder[b];
  });
  for (int leftover = episodes - assigned; leftover > 0; --leftover)
    ++counts[order[static_cast<std::size_t>(episodes - assigned - leftover)]];
  return counts;
}

std::vector<int> Curriculum::assignments(int episodes) const {
  std::vector<int> out;
  if (episodes <= 0) return out;
  out.reserve(static_cast<std::size_t>(episodes));
  if (entries.empty()) return out;

  const std::vector<int> counts = episode_counts(episodes);
  // Quota interleaving: at episode ep, pick the entry furthest behind its
  // running quota counts[i] * (ep + 1) / episodes. Deterministic, sums to
  // exactly `counts`, and mixes families from the first episodes onward.
  std::vector<int> given(entries.size(), 0);
  for (int ep = 0; ep < episodes; ++ep) {
    int pick = -1;
    double best_deficit = -1.0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (given[i] >= counts[i]) continue;
      const double quota = static_cast<double>(counts[i]) * (ep + 1) / episodes;
      const double deficit = quota - given[i];
      if (deficit > best_deficit) {
        best_deficit = deficit;
        pick = static_cast<int>(i);
      }
    }
    out.push_back(pick < 0 ? 0 : pick);
    if (pick >= 0) ++given[static_cast<std::size_t>(pick)];
  }
  return out;
}

std::uint64_t Curriculum::fingerprint() const {
  math::Fnv1a h;
  h.add_int(static_cast<std::int64_t>(entries.size()));
  for (const CurriculumEntry& e : entries) {
    h.add_string(e.generator);
    h.add_int(static_cast<std::int64_t>(e.difficulty));
    h.add_int(static_cast<std::int64_t>(e.start_class));
    h.add_int(static_cast<std::int64_t>(e.params.values().size()));
    for (const auto& [key, value] : e.params.values()) {
      h.add_string(key);
      h.add_double(value);
    }
    h.add_int(e.num_obstacles_override);
    h.add_double(e.time_limit);
    h.add_double(e.weight);
    // Hashed only when set, so every pre-mission curriculum keeps its
    // fingerprint (and its cached datasets/policies) unchanged.
    if (!e.mission.empty()) {
      h.add_string("mission");
      h.add_string(e.mission);
    }
  }
  return h.value();
}

Curriculum Curriculum::canonical() {
  Curriculum c;
  c.name = "canonical";
  c.entries.push_back(CurriculumEntry{});
  return c;
}

Curriculum Curriculum::all_families() {
  Curriculum c = for_generators(world::GeneratorRegistry::instance().names());
  c.name = "all";
  return c;
}

Curriculum Curriculum::for_generators(
    const std::vector<std::string>& generators) {
  Curriculum c;
  c.name = "custom";
  for (const std::string& g : generators) {
    if (world::GeneratorRegistry::instance().find(g) == nullptr) {
      std::string known;
      for (const std::string& n : world::GeneratorRegistry::instance().names())
        known += (known.empty() ? "" : ", ") + n;
      throw std::invalid_argument("Curriculum: unknown generator \"" + g +
                                  "\" (known: " + known + ")");
    }
    CurriculumEntry e;
    e.generator = g;
    c.entries.push_back(std::move(e));
  }
  return c;
}

Curriculum Curriculum::parse(const std::string& spec) {
  if (spec.empty() || spec == "canonical") return canonical();
  if (spec == "all") return all_families();
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > start) names.push_back(spec.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (names.empty())
    throw std::invalid_argument("Curriculum: empty spec \"" + spec + "\"");

  static const std::string kMissionPrefix = "mission:";
  Curriculum c;
  c.name = spec;
  for (const std::string& token : names) {
    if (token.rfind(kMissionPrefix, 0) == 0) {
      const std::string mission = token.substr(kMissionPrefix.size());
      if (mission.empty())
        throw std::invalid_argument("Curriculum: empty mission name in \"" +
                                    spec + "\"");
      CurriculumEntry e;
      e.mission = mission;
      c.entries.push_back(std::move(e));
    } else {
      // Reuse the generator-name validation (and its error message).
      c.entries.push_back(for_generators({token}).entries.front());
    }
  }
  return c;
}

}  // namespace icoil::sim
