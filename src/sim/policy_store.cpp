#include "sim/policy_store.hpp"

#include <cstdio>
#include <cstdlib>

namespace icoil::sim {

PolicyStoreOptions default_policy_options() {
  PolicyStoreOptions options;
  options.expert.episodes = 30;
  options.train.epochs = 40;
  options.train.batch_size = 64;
  if (const char* env = std::getenv("ICOIL_EPOCHS"))
    options.train.epochs = std::max(1, std::atoi(env));
  if (const char* env = std::getenv("ICOIL_EXPERT_EPISODES"))
    options.expert.episodes = std::max(1, std::atoi(env));
  return options;
}

std::unique_ptr<il::IlPolicy> get_or_train_policy(
    const PolicyStoreOptions& options) {
  auto policy = std::make_unique<il::IlPolicy>(options.policy);
  if (policy->load(options.cache_path)) {
    if (options.verbose)
      std::fprintf(stderr, "[policy_store] loaded cached policy from %s\n",
                   options.cache_path.c_str());
    return policy;
  }

  if (options.verbose)
    std::fprintf(stderr,
                 "[policy_store] no cache at %s; recording expert "
                 "demonstrations (%d episodes)...\n",
                 options.cache_path.c_str(), options.expert.episodes);

  il::Dataset dataset;
  if (!options.dataset_cache_path.empty() &&
      dataset.load(options.dataset_cache_path)) {
    if (options.verbose)
      std::fprintf(stderr, "[policy_store] loaded %zu cached samples from %s\n",
                   dataset.size(), options.dataset_cache_path.c_str());
  } else {
    ExpertRecorder recorder(options.expert, options.policy);
    ExpertStats stats;
    dataset = recorder.record(&stats);
    if (options.verbose)
      std::fprintf(stderr,
                   "[policy_store] %zu samples (%zu forward, %zu reverse), "
                   "%d/%d expert episodes parked\n",
                   stats.samples, stats.forward_samples, stats.reverse_samples,
                   stats.episodes_succeeded, stats.episodes_run);
    if (!options.dataset_cache_path.empty())
      dataset.save(options.dataset_cache_path);
  }
  if (options.verbose)
    std::fprintf(stderr, "[policy_store] training %d epochs on %zu samples...\n",
                 options.train.epochs, dataset.size());

  il::Trainer trainer(options.train);
  trainer.train(*policy, dataset, [&](const il::EpochStats& e) {
    if (options.verbose)
      std::fprintf(stderr,
                   "[policy_store] epoch %d: loss %.4f, train acc %.3f, "
                   "val acc %.3f\n",
                   e.epoch, e.train_loss, e.train_accuracy, e.val_accuracy);
  });

  if (!policy->save(options.cache_path) && options.verbose)
    std::fprintf(stderr, "[policy_store] warning: could not save cache to %s\n",
                 options.cache_path.c_str());
  return policy;
}

}  // namespace icoil::sim
