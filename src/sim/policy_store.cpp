#include "sim/policy_store.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "mathkit/fnv.hpp"

namespace icoil::sim {

namespace {

// Every CoPlannerConfig knob shapes the expert's demonstrations, so all of
// it (including the nested trajopt / hybrid-A* configs) goes into the
// dataset fingerprint. Field added to a config? Hash it here too.
void hash_co_config(math::Fnv1a& h, const co::CoPlannerConfig& co) {
  const co::TrajOptConfig& t = co.trajopt;
  h.add_int(t.horizon);
  h.add_double(t.dt);
  h.add_int(t.sqp_iterations);
  h.add_double(t.w_pos);
  h.add_double(t.w_heading);
  h.add_double(t.w_speed);
  h.add_double(t.w_accel);
  h.add_double(t.w_steer);
  h.add_double(t.w_daccel);
  h.add_double(t.w_dsteer);
  h.add_double(t.trust_pos);
  h.add_double(t.trust_heading);
  h.add_double(t.trust_speed);
  h.add_double(t.safety_margin);
  h.add_double(t.obstacle_active_range);
  h.add_int(t.collision_discs);
  h.add_int(t.qp.max_iterations);
  h.add_double(t.qp.eps_abs);
  h.add_double(t.qp.eps_rel);
  const co::HybridAStarConfig& a = co.astar;
  h.add_double(a.xy_resolution);
  h.add_int(a.heading_bins);
  h.add_double(a.step);
  h.add_int(a.num_steer_levels);
  h.add_double(a.reverse_penalty);
  h.add_double(a.switch_penalty);
  h.add_double(a.steer_penalty);
  h.add_double(a.steer_change_penalty);
  h.add_double(a.rs_shot_radius);
  h.add_double(a.obstacle_margin);
  h.add_double(a.sample_step);
  h.add_int(a.max_expansions);
  h.add_double(a.steer_fraction);
  h.add_double(a.rs_radius_factor);
  h.add_double(co.cruise_speed);
  h.add_double(co.reverse_speed);
  h.add_double(co.approach_distance);
  h.add_double(co.min_speed);
  h.add_double(co.goal_pos_tol);
  h.add_double(co.goal_heading_tol);
  h.add_double(co.phase_pos_tol);
  h.add_double(co.phase_heading_tol);
  h.add_double(co.phase_speed_tol);
  h.add_double(co.stall_seconds);
  h.add_double(co.dt);
  h.add_double(co.switch_extension);
}

}  // namespace

int env_int_or(const char* name, int fallback, int min_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0') {
    std::fprintf(stderr,
                 "[policy_store] warning: %s=\"%s\" is not an integer; "
                 "using %d\n",
                 name, env, fallback);
    return fallback;
  }
  if (value < min_value || value > 1000000000L) {
    std::fprintf(stderr,
                 "[policy_store] warning: %s=%ld out of range [%d, 1e9]; "
                 "using %d\n",
                 name, value, min_value, fallback);
    return fallback;
  }
  return static_cast<int>(value);
}

std::uint64_t dataset_fingerprint(const ExpertConfig& expert,
                                  const il::IlPolicyConfig& policy) {
  // ExpertRecorder normalizes an empty curriculum to canonical(); hash the
  // normalized form so both spellings share one cache.
  math::Fnv1a h(expert.curriculum.empty()
                    ? Curriculum::canonical().fingerprint()
                    : expert.curriculum.fingerprint());
  h.add_int(expert.episodes);
  h.add_int(static_cast<std::int64_t>(expert.base_seed));
  h.add_int(expert.frame_stride);
  h.add_double(expert.dt);
  hash_co_config(h, expert.co);
  h.add_int(expert.mix_start_classes ? 1 : 0);
  h.add_int(policy.bev_size);
  h.add_double(policy.bev_range);
  return h.value();
}

std::uint64_t policy_fingerprint(const PolicyStoreOptions& options) {
  math::Fnv1a h(dataset_fingerprint(options.expert, options.policy));
  for (int c : options.policy.conv_channels) h.add_int(c);
  for (int w : options.policy.fc_sizes) h.add_int(w);
  h.add_int(options.train.epochs);
  h.add_int(options.train.batch_size);
  h.add_double(options.train.learning_rate);
  h.add_double(options.train.validation_fraction);
  h.add_int(static_cast<std::int64_t>(options.train.shuffle_seed));
  return h.value();
}

std::string fingerprinted_path(const std::string& path,
                               std::uint64_t fingerprint) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  const bool has_ext =
      dot != std::string::npos && (slash == std::string::npos || dot > slash);
  if (!has_ext) return path + "-" + hex;
  return path.substr(0, dot) + "-" + hex + path.substr(dot);
}

std::string policy_cache_path(const PolicyStoreOptions& options) {
  return fingerprinted_path(options.cache_path, policy_fingerprint(options));
}

std::string dataset_cache_path(const PolicyStoreOptions& options) {
  return fingerprinted_path(options.dataset_cache_path,
                            dataset_fingerprint(options.expert, options.policy));
}

PolicyStoreOptions default_policy_options() {
  PolicyStoreOptions options;
  options.expert.episodes = 30;
  options.train.epochs = 40;
  options.train.batch_size = 64;
  options.train.epochs = env_int_or("ICOIL_EPOCHS", options.train.epochs);
  options.expert.episodes =
      env_int_or("ICOIL_EXPERT_EPISODES", options.expert.episodes);
  return options;
}

std::unique_ptr<il::IlPolicy> get_or_train_policy(
    const PolicyStoreOptions& options) {
  const std::string cache_path = policy_cache_path(options);
  auto policy = std::make_unique<il::IlPolicy>(options.policy);
  if (policy->load(cache_path)) {
    if (options.verbose)
      std::fprintf(stderr,
                   "[policy_store] loaded cached policy from %s "
                   "(curriculum \"%s\")\n",
                   cache_path.c_str(), options.expert.curriculum.name.c_str());
    return policy;
  }

  if (options.verbose)
    std::fprintf(stderr,
                 "[policy_store] no cache at %s; recording expert "
                 "demonstrations (%d episodes, curriculum \"%s\")...\n",
                 cache_path.c_str(), options.expert.episodes,
                 options.expert.curriculum.name.c_str());

  il::Dataset dataset;
  const std::string dataset_path =
      options.dataset_cache_path.empty() ? std::string()
                                         : dataset_cache_path(options);
  if (!dataset_path.empty() && dataset.load(dataset_path)) {
    if (options.verbose)
      std::fprintf(stderr, "[policy_store] loaded %zu cached samples from %s\n",
                   dataset.size(), dataset_path.c_str());
  } else {
    ExpertRecorder recorder(options.expert, options.policy);
    ExpertStats stats;
    dataset = recorder.record(&stats);
    if (options.verbose) {
      std::fprintf(stderr,
                   "[policy_store] %zu samples (%zu forward, %zu reverse), "
                   "%d/%d expert episodes parked\n",
                   stats.samples, stats.forward_samples, stats.reverse_samples,
                   stats.episodes_succeeded, stats.episodes_run);
      for (const auto& [family, episodes] : stats.episodes_by_family)
        std::fprintf(stderr, "[policy_store]   %-18s %d episodes\n",
                     family.c_str(), episodes);
    }
    if (!dataset_path.empty()) dataset.save(dataset_path);
  }
  if (options.verbose)
    std::fprintf(stderr, "[policy_store] training %d epochs on %zu samples...\n",
                 options.train.epochs, dataset.size());

  il::Trainer trainer(options.train);
  trainer.train(*policy, dataset, [&](const il::EpochStats& e) {
    if (options.verbose)
      std::fprintf(stderr,
                   "[policy_store] epoch %d: loss %.4f, train acc %.3f, "
                   "val acc %.3f\n",
                   e.epoch, e.train_loss, e.train_accuracy, e.val_accuracy);
  });

  if (!policy->save(cache_path) && options.verbose)
    std::fprintf(stderr, "[policy_store] warning: could not save cache to %s\n",
                 cache_path.c_str());
  return policy;
}

}  // namespace icoil::sim
