#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "co/planner.hpp"
#include "il/dataset.hpp"
#include "il/policy.hpp"
#include "sim/curriculum.hpp"
#include "world/scenario.hpp"

namespace icoil::sim {

/// Demonstration-collection settings. The paper collected 5171 samples
/// (2624 forward-moving, 2547 reverse-parking) from a human driver; our
/// scripted expert is the CO planner whose commands pass through the same
/// action discretization the IL network predicts, so the demonstrations
/// are exactly representable by the policy class.
struct ExpertConfig {
  int episodes = 20;
  std::uint64_t base_seed = 500;
  int frame_stride = 2;      ///< record every k-th frame
  double dt = 0.05;
  co::CoPlannerConfig co;
  /// Scenario cells episodes are drawn from (deterministic weighted
  /// assignment; see Curriculum). Defaults to the canonical/easy-only
  /// behaviour of the pre-curriculum recorder.
  Curriculum curriculum = Curriculum::canonical();
  /// Mix of start classes so the dataset covers the whole lot: when set, the
  /// per-episode start class cycles random/close/remote regardless of the
  /// curriculum entry's start_class.
  bool mix_start_classes = true;
  /// Upper bound on recorder worker threads.
  int thread_cap = 16;
};

/// Statistics of a recording run.
struct ExpertStats {
  int episodes_run = 0;
  int episodes_succeeded = 0;
  std::size_t samples = 0;
  std::size_t forward_samples = 0;
  std::size_t reverse_samples = 0;
  /// Episodes recorded per scenario family (curriculum composition).
  std::map<std::string, int> episodes_by_family;
};

/// Rolls out the CO expert on curriculum-sampled scenarios and records
/// (BEV image, discretized action) pairs into a behaviour-cloning dataset,
/// tagging every sample with its scenario family and difficulty. The expert
/// executes the discretized command it records (the MPC replans around
/// discretization error), so closed-loop IL behaviour matches the
/// demonstrations.
class ExpertRecorder {
 public:
  ExpertRecorder(ExpertConfig config, il::IlPolicyConfig policy_config);

  /// Record demonstrations; `stats_out` is optional.
  il::Dataset record(ExpertStats* stats_out = nullptr) const;

 private:
  void record_episode(int ep, const CurriculumEntry& entry,
                      il::Dataset& dataset, ExpertStats& stats) const;
  /// Rolls the CO expert through one concrete scenario, recording samples.
  /// Generator episodes call it once; mission episodes call it per leg.
  void record_scenario(const world::Scenario& scenario, std::uint64_t seed,
                       il::Dataset& dataset, ExpertStats& stats) const;

  ExpertConfig config_;
  il::IlPolicyConfig policy_config_;
};

}  // namespace icoil::sim
