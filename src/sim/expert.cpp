#include "sim/expert.hpp"

#include <cmath>
#include <stdexcept>

#include "core/task_pool.hpp"
#include "geom/angles.hpp"
#include "il/action.hpp"
#include "il/observation.hpp"
#include "sensing/bev.hpp"
#include "sensing/detector.hpp"
#include "world/world.hpp"

namespace icoil::sim {

ExpertRecorder::ExpertRecorder(ExpertConfig config,
                               il::IlPolicyConfig policy_config)
    : config_(config), policy_config_(policy_config) {
  if (config_.curriculum.empty()) config_.curriculum = Curriculum::canonical();
}

il::Dataset ExpertRecorder::record(ExpertStats* stats_out) const {
  // Episodes are independent: record them in parallel, then merge in
  // episode order so the dataset is deterministic regardless of thread
  // scheduling. The curriculum fixes each episode's scenario cell up front.
  const std::vector<int> cell_of_episode =
      config_.curriculum.assignments(config_.episodes);
  std::vector<il::Dataset> episode_data(static_cast<std::size_t>(config_.episodes));
  std::vector<ExpertStats> episode_stats(static_cast<std::size_t>(config_.episodes));

  core::TaskPool pool(core::TaskPool::recommended_workers(
      /*requested=*/0, config_.episodes, config_.thread_cap));
  for (int ep = 0; ep < config_.episodes; ++ep) {
    pool.submit([&, ep](const core::TaskPool::Context&) {
      const CurriculumEntry& entry =
          config_.curriculum
              .entries[static_cast<std::size_t>(cell_of_episode[static_cast<std::size_t>(ep)])];
      record_episode(ep, entry, episode_data[static_cast<std::size_t>(ep)],
                     episode_stats[static_cast<std::size_t>(ep)]);
    });
  }
  pool.wait_idle();

  il::Dataset dataset;
  ExpertStats stats;
  for (int ep = 0; ep < config_.episodes; ++ep) {
    dataset.append(episode_data[static_cast<std::size_t>(ep)]);
    const ExpertStats& es = episode_stats[static_cast<std::size_t>(ep)];
    stats.episodes_run += es.episodes_run;
    stats.episodes_succeeded += es.episodes_succeeded;
    stats.samples += es.samples;
    stats.forward_samples += es.forward_samples;
    stats.reverse_samples += es.reverse_samples;
    for (const auto& [family, count] : es.episodes_by_family)
      stats.episodes_by_family[family] += count;
  }
  if (stats_out) *stats_out = stats;
  return dataset;
}

void ExpertRecorder::record_episode(int ep, const CurriculumEntry& entry,
                                    il::Dataset& dataset,
                                    ExpertStats& stats) const {
  const std::uint64_t seed = config_.base_seed + static_cast<std::uint64_t>(ep);

  if (!entry.mission.empty()) {
    // Mission cell: one "episode" is one mission run's worth of driving
    // legs, each recorded as its own expert rollout (statics + traffic
    // frozen at the leg start, goal set to the leg goal).
    const MissionLegExpander& expand = mission_leg_expander();
    if (!expand)
      throw std::logic_error(
          "ExpertRecorder: curriculum entry \"mission:" + entry.mission +
          "\" needs a mission-leg expander — call "
          "mission::install_curriculum_expander() at startup");
    const std::vector<world::Scenario> legs = expand(entry.mission, seed);
    for (std::size_t leg = 0; leg < legs.size(); ++leg)
      record_scenario(legs[leg],
                      seed ^ (0xC2B2AE3D27D4EB4Full * (leg + 1)), dataset,
                      stats);
    return;
  }

  const world::StartClass classes[3] = {world::StartClass::kRandom,
                                        world::StartClass::kClose,
                                        world::StartClass::kRemote};
  world::ScenarioOptions options = entry.options();
  if (config_.mix_start_classes) options.start_class = classes[ep % 3];
  record_scenario(world::make_scenario(options, seed), seed, dataset, stats);
}

void ExpertRecorder::record_scenario(const world::Scenario& scenario,
                                     std::uint64_t seed, il::Dataset& dataset,
                                     ExpertStats& stats) const {
  const sense::BevSpec bev_spec{policy_config_.bev_size, policy_config_.bev_range};
  const sense::BevRasterizer rasterizer(bev_spec);
  const vehicle::VehicleParams params;
  const vehicle::BicycleModel model(params);

  const std::int16_t family =
      static_cast<std::int16_t>(dataset.intern_family(scenario.generator));
  const std::uint8_t difficulty =
      static_cast<std::uint8_t>(scenario.difficulty);
  ++stats.episodes_by_family[scenario.generator];

  world::World world(scenario);
  math::Rng rng(seed ^ 0xE4BE27ull);
  sense::Detector detector(scenario.noise);

  co::CoPlanner planner(config_.co, params);
  std::vector<geom::Obb> static_boxes;
  for (const world::Obstacle& o : scenario.obstacles)
    if (!o.dynamic()) static_boxes.push_back(o.shape);
  planner.plan_reference(scenario.start_pose, scenario.map.goal_pose,
                         static_boxes, scenario.map.bounds);

  vehicle::State state;
  state.pose = scenario.start_pose;

  const std::size_t max_frames =
      static_cast<std::size_t>(scenario.time_limit / config_.dt);
  bool success = false;
  for (std::size_t frame = 0; frame < max_frames; ++frame) {
    const auto detections = detector.detect(world, state.pose.position, rng);
    const vehicle::Command raw = planner.act(state, detections);
    const int label = il::ActionDiscretizer::to_class(raw);
    const vehicle::Command cmd = il::ActionDiscretizer::to_command(label);

    if (frame % static_cast<std::size_t>(config_.frame_stride) == 0) {
      il::Sample sample;
      sample.observation =
          il::make_observation(rasterizer.render(world, state.pose), state.speed);
      sample.label = label;
      sample.family = family;
      sample.difficulty = difficulty;
      dataset.add(std::move(sample));
      ++stats.samples;
      if (cmd.reverse)
        ++stats.reverse_samples;
      else
        ++stats.forward_samples;
    }

    state = model.step(state, cmd, config_.dt);
    world.step(config_.dt);

    if (world.in_collision(model.footprint(state))) break;
    if (world.at_goal(state.pose) && std::abs(state.speed) < 0.15) {
      success = true;
      break;
    }
  }
  ++stats.episodes_run;
  if (success) ++stats.episodes_succeeded;
}

}  // namespace icoil::sim
