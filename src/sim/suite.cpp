#include "sim/suite.hpp"

namespace icoil::sim {

world::ScenarioOptions SuiteCell::options() const {
  world::ScenarioOptions opt;
  opt.generator = generator;
  opt.params = params;
  opt.difficulty = difficulty;
  opt.start_class = start_class;
  opt.num_obstacles_override = num_obstacles_override;
  opt.time_limit = time_limit;
  return opt;
}

SuiteCell SuiteCell::from_options(const world::ScenarioOptions& opt) {
  SuiteCell cell;
  cell.generator = opt.generator;
  cell.params = opt.params;
  cell.difficulty = opt.difficulty;
  cell.start_class = opt.start_class;
  cell.num_obstacles_override = opt.num_obstacles_override;
  cell.time_limit = opt.time_limit;
  return cell;
}

std::string SuiteCell::display_label() const {
  if (!label.empty()) return label;
  return generator + "/" + world::to_string(difficulty) + "/" +
         world::to_string(start_class);
}

ScenarioSuite ScenarioSuite::cross(
    const std::vector<std::string>& generators,
    const std::vector<world::Difficulty>& difficulties,
    const std::vector<world::StartClass>& starts) {
  ScenarioSuite suite;
  for (const std::string& g : generators) {
    for (world::Difficulty d : difficulties) {
      for (world::StartClass s : starts) {
        SuiteCell cell;
        cell.generator = g;
        cell.difficulty = d;
        cell.start_class = s;
        suite.cells.push_back(std::move(cell));
      }
    }
  }
  return suite;
}

}  // namespace icoil::sim
