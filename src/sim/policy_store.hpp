#pragma once

#include <memory>
#include <string>

#include "il/policy.hpp"
#include "il/trainer.hpp"
#include "sim/expert.hpp"

namespace icoil::sim {

/// Options controlling on-demand policy training.
struct PolicyStoreOptions {
  std::string cache_path = "il_policy.bin";
  std::string dataset_cache_path = "il_dataset.bin";
  ExpertConfig expert;
  il::TrainConfig train;
  il::IlPolicyConfig policy;
  bool verbose = true;
};

/// Loads the trained IL policy from `cache_path` if present, otherwise
/// records expert demonstrations, trains the network and saves it. Benches
/// and examples share one trained policy this way, so the (one-time)
/// training cost is amortized across the whole harness.
std::unique_ptr<il::IlPolicy> get_or_train_policy(
    const PolicyStoreOptions& options = {});

/// Default options used by the benchmark harness: ~5000 samples
/// (paper: 5171) and enough epochs to converge. Respects the
/// ICOIL_EPOCHS / ICOIL_EXPERT_EPISODES environment variables for quick
/// runs.
PolicyStoreOptions default_policy_options();

}  // namespace icoil::sim
