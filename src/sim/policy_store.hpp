#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "il/policy.hpp"
#include "il/trainer.hpp"
#include "sim/expert.hpp"

namespace icoil::sim {

/// Options controlling on-demand policy training. `cache_path` /
/// `dataset_cache_path` are base names: the store inserts a fingerprint of
/// the training spec before the extension (see fingerprinted_path), so
/// caches trained under a different curriculum / recorder / architecture
/// spec are never silently reused and differently-trained policies coexist
/// on disk.
struct PolicyStoreOptions {
  std::string cache_path = "il_policy.bin";
  std::string dataset_cache_path = "il_dataset.bin";
  ExpertConfig expert;
  il::TrainConfig train;
  il::IlPolicyConfig policy;
  bool verbose = true;
};

/// Fingerprint of everything that determines the recorded dataset: the
/// training curriculum plus the recorder knobs and the observation geometry
/// (BEV size/range).
std::uint64_t dataset_fingerprint(const ExpertConfig& expert,
                                  const il::IlPolicyConfig& policy);

/// Fingerprint of everything that determines the trained policy: the
/// dataset fingerprint plus the network architecture and the training
/// hyperparameters.
std::uint64_t policy_fingerprint(const PolicyStoreOptions& options);

/// `path` with "-<16 hex digits>" inserted before the extension
/// ("il_policy.bin" -> "il_policy-0123456789abcdef.bin").
std::string fingerprinted_path(const std::string& path, std::uint64_t fingerprint);

/// The on-disk cache paths get_or_train_policy will use for `options`.
std::string policy_cache_path(const PolicyStoreOptions& options);
std::string dataset_cache_path(const PolicyStoreOptions& options);

/// Loads the trained IL policy from the fingerprinted cache path if present,
/// otherwise records expert demonstrations (per the configured curriculum),
/// trains the network and saves it. Benches and examples share one trained
/// policy per training spec this way, so the (one-time) training cost is
/// amortized across the whole harness.
std::unique_ptr<il::IlPolicy> get_or_train_policy(
    const PolicyStoreOptions& options = {});

/// Default options used by the benchmark harness: ~5000 samples
/// (paper: 5171) and enough epochs to converge. Respects the
/// ICOIL_EPOCHS / ICOIL_EXPERT_EPISODES environment variables for quick
/// runs.
PolicyStoreOptions default_policy_options();

/// Strictly-parsed integer environment variable: returns `fallback` when
/// `name` is unset, and warns on stderr (keeping `fallback`) when the value
/// is malformed, has trailing junk, or is below `min_value`.
int env_int_or(const char* name, int fallback, int min_value = 1);

}  // namespace icoil::sim
