#include "sim/session.hpp"

#include <algorithm>
#include <cmath>

#include "core/frame_context.hpp"

namespace icoil::sim {

Session::Session(const world::Scenario& scenario, core::Controller& controller,
                 std::uint64_t seed, SimConfig config,
                 const core::CancelToken* cancel)
    : config_(config), controller_(&controller), cancel_(cancel),
      rng_(seed ^ 0x51D5EEDull), world_(scenario),
      model_() /* default params (matches controllers) */,
      max_frames_(
          static_cast<std::size_t>(scenario.time_limit / config.dt)) {
  state_.pose = scenario.start_pose;
  state_.speed = 0.0;
  controller_->reset(world_.scenario());
}

void Session::finish(Outcome outcome, double park_time) {
  result_.outcome = outcome;
  result_.park_time = park_time;
  result_.il_fraction =
      result_.frames > 0 ? static_cast<double>(il_frames_) /
                               static_cast<double>(result_.frames)
                         : 0.0;
  done_ = true;
}

Session::Status Session::step() {
  if (done_) return Status::kDone;

  if (frame_ >= max_frames_) {
    finish(Outcome::kTimeout, world_.scenario().time_limit);
    return Status::kDone;
  }

  const double t = static_cast<double>(frame_) * config_.dt;

  if (cancel_ != nullptr && cancel_->cancelled()) {
    finish(Outcome::kBudgetExceeded, t);
    return Status::kDone;
  }

  core::FrameContext frame_ctx(rng_, cancel_, config_.frame_deadline_ms);
  const vehicle::Command cmd = controller_->act(world_, state_, frame_ctx);
  const core::FrameInfo& info = controller_->last_frame();

  if (config_.record_trace) result_.trace.push_back({t, state_, info});
  if (frame_ > 0 && info.mode != prev_mode_) ++result_.mode_switches;
  prev_mode_ = info.mode;
  if (info.mode == core::Mode::kIl) ++il_frames_;
  if (info.deadline_hit) ++result_.deadline_hits;

  state_ = model_.step(state_, cmd, config_.dt);
  world_.step(config_.dt);
  ++result_.frames;
  ++frame_;

  const geom::Obb fp = model_.footprint(state_);
  result_.min_clearance = std::min(result_.min_clearance, world_.clearance(fp));
  if (world_.in_collision(fp)) {
    finish(Outcome::kCollision, t + config_.dt);
    return Status::kDone;
  }

  if (world_.at_goal(state_.pose, config_.goal_pos_tol,
                     config_.goal_heading_tol) &&
      std::abs(state_.speed) <= config_.goal_speed_tol) {
    finish(Outcome::kSuccess, t + config_.dt);
    return Status::kDone;
  }

  return Status::kRunning;
}

}  // namespace icoil::sim
