#include "sim/session.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/batch_client.hpp"
#include "core/frame_context.hpp"

namespace icoil::sim {

namespace {
world::Scenario with_start(world::Scenario scenario, const geom::Pose2& pose) {
  scenario.start_pose = pose;
  return scenario;
}
}  // namespace

Session::Session(const world::Scenario& scenario, core::Controller& controller,
                 std::uint64_t seed, const vehicle::State& start,
                 double world_time, SimConfig config,
                 const core::CancelToken* cancel)
    : Session(with_start(scenario, start.pose), controller, seed, config,
              cancel) {
  state_ = start;  // carry the full state (speed, steer) across legs
  world_.set_time(world_time);
}

Session::Session(const world::Scenario& scenario, core::Controller& controller,
                 std::uint64_t seed, SimConfig config,
                 const core::CancelToken* cancel)
    : config_(config), controller_(&controller),
      batch_client_(dynamic_cast<core::BatchClient*>(&controller)),
      cancel_(cancel), rng_(seed ^ 0x51D5EEDull),
      world_(scenario,
             world::WorldConfig{config.collision_backend,
                                config.grid_resolution}),
      model_() /* default params (matches controllers) */,
      max_frames_(
          static_cast<std::size_t>(scenario.time_limit / config.dt)) {
  state_.pose = scenario.start_pose;
  state_.speed = 0.0;
  controller_->reset(world_.scenario());
}

void Session::finish(Outcome outcome, double park_time) {
  result_.outcome = outcome;
  result_.park_time = park_time;
  result_.il_fraction =
      result_.frames > 0 ? static_cast<double>(il_frames_) /
                               static_cast<double>(result_.frames)
                         : 0.0;
  done_ = true;
}

bool Session::begin_frame() {
  if (done_) return false;

  if (frame_ >= max_frames_) {
    finish(Outcome::kTimeout, world_.scenario().time_limit);
    return false;
  }

  if (cancel_ != nullptr && cancel_->cancelled()) {
    finish(Outcome::kBudgetExceeded, static_cast<double>(frame_) * config_.dt);
    return false;
  }

  return true;
}

Session::Status Session::step() {
  if (!begin_frame()) return Status::kDone;
  core::FrameContext frame_ctx(rng_, cancel_, config_.frame_deadline_ms);
  const vehicle::Command cmd = controller_->act(world_, state_, frame_ctx);
  return execute_frame(cmd);
}

bool Session::stage(il::BatchInferencer& service) {
  assert(batch_client_ != nullptr &&
         "Session::stage requires a BatchClient controller");
  if (!begin_frame()) return false;
  staged_ctx_.emplace(rng_, cancel_, config_.frame_deadline_ms);
  batch_client_->stage(world_, state_, *staged_ctx_, service);
  return true;
}

Session::Status Session::commit(il::BatchInferencer& service) {
  if (!staged_ctx_.has_value())
    return done_ ? Status::kDone : Status::kRunning;
  const vehicle::Command cmd =
      batch_client_->commit(world_, state_, *staged_ctx_, service);
  staged_ctx_.reset();
  return execute_frame(cmd);
}

Session::Status Session::execute_frame(const vehicle::Command& cmd) {
  const double t = static_cast<double>(frame_) * config_.dt;
  const core::FrameInfo& info = controller_->last_frame();

  if (config_.record_trace) result_.trace.push_back({t, state_, info});
  if (frame_ > 0 && info.mode != prev_mode_) ++result_.mode_switches;
  prev_mode_ = info.mode;
  if (info.mode == core::Mode::kIl) ++il_frames_;
  if (info.deadline_hit) ++result_.deadline_hits;

  state_ = model_.step(state_, cmd, config_.dt);
  world_.step(config_.dt);
  ++result_.frames;
  ++frame_;

  const geom::Obb fp = model_.footprint(state_);
  result_.min_clearance = std::min(result_.min_clearance, world_.clearance(fp));
  if (world_.in_collision(fp)) {
    finish(Outcome::kCollision, t + config_.dt);
    return Status::kDone;
  }

  if (world_.at_goal(state_.pose, config_.goal_pos_tol,
                     config_.goal_heading_tol) &&
      std::abs(state_.speed) <= config_.goal_speed_tol) {
    finish(Outcome::kSuccess, t + config_.dt);
    return Status::kDone;
  }

  return Status::kRunning;
}

}  // namespace icoil::sim
