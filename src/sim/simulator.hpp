#pragma once

#include <cstdint>
#include <vector>

#include "co/heuristic.hpp"
#include "core/cancel_token.hpp"
#include "core/controller.hpp"
#include "world/world.hpp"

namespace icoil::sim {

/// How an episode ended. kBudgetExceeded means the episode's wall-clock
/// budget (a core::CancelToken deadline) tripped before any simulated
/// terminal condition — the episode was cut short, not finished late.
enum class Outcome { kSuccess, kCollision, kTimeout, kBudgetExceeded };

const char* to_string(Outcome o);

/// One recorded frame of an episode (the time series behind Figs 5-7).
struct FrameRecord {
  double t = 0.0;
  vehicle::State state;
  core::FrameInfo info;
};

/// Result of one simulated parking episode.
struct EpisodeResult {
  Outcome outcome = Outcome::kTimeout;
  double park_time = 0.0;            ///< seconds from start to parked (or end)
  std::size_t frames = 0;
  /// Closest approach to any obstacle [m]; stays at the geom::kMaxClearance
  /// sentinel when no obstacle was ever within range.
  double min_clearance = geom::kMaxClearance;
  int mode_switches = 0;             ///< iCOIL CO<->IL transitions
  double il_fraction = 0.0;          ///< fraction of frames driven by IL
  /// Frames whose FrameContext deadline tripped (the controller returned a
  /// degraded best-so-far command). Always 0 without a frame_deadline_ms.
  int deadline_hits = 0;
  std::vector<FrameRecord> trace;    ///< full trace (empty unless recording)

  bool success() const { return outcome == Outcome::kSuccess; }
};

/// Simulation loop settings. The paper's "time stamps" correspond to
/// control frames (dt = 0.05 s -> a ~25 s episode is ~500 stamps).
struct SimConfig {
  double dt = 0.05;
  bool record_trace = false;
  double goal_pos_tol = 0.6;
  double goal_heading_tol = 0.35;
  double goal_speed_tol = 0.15;
  /// Wall-clock budget per control frame [ms], handed to the controller via
  /// core::FrameContext each step. <= 0 = unlimited. Budgets make results
  /// timing-dependent; leave off when bit-identical reproducibility matters.
  double frame_deadline_ms = 0.0;
  /// Static-collision backend for the episode's World. The grid backend
  /// builds a world::DistanceField per scenario and fast-paths
  /// certainly-free queries; collision VERDICTS stay exact (uncertain
  /// lookups fall back to the analytic narrow phase) — only reported
  /// clearance values become conservative lower bounds.
  world::CollisionBackend collision_backend = world::CollisionBackend::kAnalytic;
  double grid_resolution = world::DistanceField::kDefaultResolution;  ///< [m]
  /// Hybrid-A* heuristic mode of the run's CO-backed controllers. The sim
  /// loop itself never reads this: drivers (suite_runner, bench_planner)
  /// copy it into the controller configs they build, and it is recorded
  /// here so the config fingerprint separates runs whose planners searched
  /// differently. Different modes expand different node orders, so paths —
  /// and occasionally outcomes — are only comparable within one mode.
  co::HeuristicMode planner_heuristic = co::HeuristicMode::kMax;
};

/// Runs one controller through one scenario episode: sense -> act ->
/// integrate -> check collision/goal/timeout. A thin whole-episode loop
/// over sim::Session (which see for the stepwise API). When `cancel` is
/// given the loop polls it every frame and bails out with kBudgetExceeded
/// once it trips (wall-clock budgets, ctrl-C style aborts).
class Simulator {
 public:
  explicit Simulator(SimConfig config = {}) : config_(config) {}

  const SimConfig& config() const { return config_; }

  EpisodeResult run(const world::Scenario& scenario, core::Controller& controller,
                    std::uint64_t seed,
                    const core::CancelToken* cancel = nullptr) const;

 private:
  SimConfig config_;
};

}  // namespace icoil::sim
