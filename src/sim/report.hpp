#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/latency_histogram.hpp"
#include "sim/evaluator.hpp"

namespace icoil::sim {

/// Schema version written into every report; the loader rejects documents
/// from the future and fills defaults for fields added since an old one.
/// v1: meta + cells + optional serve/collision/planner blocks.
/// v2: adds the optional `mission` block (bench_mission); v1 documents
///     still load — they simply have no mission stats.
inline constexpr int kRunReportSchemaVersion = 2;

/// Escapes `"` `\` and control characters for embedding in a JSON string
/// literal (the one escaping routine every JSON we emit goes through).
std::string json_escape(const std::string& s);

/// Fingerprint of the EvalConfig knobs that determine episode outcomes
/// (episodes, base seed, sim dt and goal tolerances — NOT thread counts,
/// which never change results). Two reports are outcome-comparable only if
/// their fingerprints match.
std::uint64_t config_fingerprint(const EvalConfig& config);

/// The git description of the build ("v1.2-3-gabcdef" / "abcdef-dirty"),
/// stamped at configure time; "unknown" outside a git checkout.
std::string build_git_describe();

/// Run-level metadata: enough to tell whether two reports are comparable
/// and where a regression came from.
struct RunReportMeta {
  int schema_version = kRunReportSchemaVersion;
  std::string suite;                 ///< suite name ("table2", "zoo", ...)
  std::string git_describe;          ///< build stamp (build_git_describe())
  int threads = 0;                   ///< resolved worker count of the run
  int episodes_per_cell = 0;
  std::uint64_t base_seed = 0;
  std::uint64_t config_fingerprint = 0;  ///< sim::config_fingerprint
  /// True when the run was cut short (e.g. a SIGINT tripping the abort
  /// token): the document is a valid but PARTIAL record — cells evaluated
  /// after the abort carry kBudgetExceeded episodes, not real outcomes.
  bool aborted = false;
};

/// One recorded episode (optional detail; off by default to keep reports
/// small and diffable).
struct EpisodeRecord {
  std::string outcome;               ///< sim::to_string(Outcome)
  double park_time = 0.0;
  double min_clearance = 0.0;
  double il_fraction = 0.0;
  int mode_switches = 0;
  int deadline_hits = 0;             ///< frames degraded by a frame deadline
};

/// One (cell, method) aggregate row of a run.
struct CellRecord {
  std::string label;                 ///< cell display label
  std::string method;
  std::string generator;
  int episodes = 0;
  int successes = 0;
  int collisions = 0;
  int timeouts = 0;
  int budget_exceeded = 0;
  int deadline_hits = 0;             ///< total degraded frames in the cell
  double success_ratio = 0.0;
  double park_time_mean = 0.0;
  double park_time_min = 0.0;
  double park_time_max = 0.0;
  double park_time_stddev = 0.0;
  double il_fraction_mean = 0.0;
  double min_clearance_mean = 0.0;
  std::vector<EpisodeRecord> episode_records;  ///< empty unless requested
};

/// Version of the `serve` block inside a report. v1 carried flat
/// frame_p50_ms/p99/max scalars and no admission fields; v2 carries
/// core::LatencySummary digests (frame/queue/warmup), admission counters,
/// tuned-deadline stats and the per-load-level sweep rows. The loader
/// still reads v1 blocks (legacy scalars land in the frame summary).
inline constexpr int kServeStatsVersion = 2;

/// One row of a saturation sweep (`bench_serve --sessions 1,10,100,...`):
/// the headline numbers of one load level, offered load ascending.
struct ServeLoadLevel {
  int offered = 0;                   ///< sessions offered at this level
  int admitted = 0;                  ///< sessions actually served
  int shed = 0;                      ///< sessions dropped by admission
  std::uint64_t frames = 0;          ///< frames served (incl. warmup)
  double wall_seconds = 0.0;
  double frames_per_second = 0.0;
  double frame_p50_ms = 0.0;         ///< warmup-excluded frame latency
  double frame_p99_ms = 0.0;
  double queue_p99_ms = 0.0;         ///< admission queue-time tail
  int deadline_hits = 0;
  bool knee = false;                 ///< the identified saturation knee row
};

/// Serving-workload metrics of one serve::Frontend run: N concurrent
/// stepwise sessions interleaved on one pool behind admission control, each
/// step() timed as one served frame.
struct ServeStats {
  /// Batched-inference service counters (il::BatchStats), recorded when the
  /// run used --batch-inference: tick/batch shape plus where the service's
  /// time went (the shared forwards vs the gather/scatter around them).
  struct Batching {
    std::uint64_t ticks = 0;        ///< service ticks that had work
    std::uint64_t requests = 0;     ///< observations batched
    std::uint64_t batches = 0;      ///< batched forward passes
    std::uint64_t max_batch = 0;    ///< largest single forward batch
    double mean_batch = 0.0;        ///< requests / batches
    double gather_seconds = 0.0;    ///< observation packing overhead
    double forward_seconds = 0.0;   ///< shared batched forwards
    double scatter_seconds = 0.0;   ///< result unpacking overhead
  };

  /// serve::DeadlineTuner provenance + what it actually applied: the config
  /// echo plus min/mean/max over every deadline the tuner handed a session.
  struct Tuning {
    double min_ms = 0.0;            ///< configured clamp floor
    double max_ms = 0.0;            ///< configured clamp ceiling
    double headroom = 0.0;          ///< configured p99 multiplier
    int window = 0;                 ///< configured rolling-window length
    double deadline_min_ms = 0.0;   ///< tightest deadline ever applied
    double deadline_mean_ms = 0.0;  ///< mean applied deadline
    double deadline_max_ms = 0.0;   ///< loosest deadline ever applied
  };

  int version = kServeStatsVersion;
  std::string method;                ///< controller registry key
  int sessions = 0;                  ///< sessions offered (== offered)
  int threads = 0;                   ///< pool worker count
  int offered = 0;                   ///< arrivals offered to admission
  int admitted = 0;                  ///< arrivals served (now or from queue)
  int queued = 0;                    ///< admitted arrivals that had to wait
  int shed = 0;                      ///< arrivals dropped (queue full)
  std::uint64_t frames = 0;          ///< total frames served (incl. warmup)
  double wall_seconds = 0.0;
  double frames_per_second = 0.0;
  core::LatencySummary frame;        ///< per-frame latency, warmup excluded
  core::LatencySummary queue;        ///< admission queue time per admission
  core::LatencySummary warmup;       ///< cold-start frames, kept separately
  int warmup_frames_per_session = 0; ///< leading frames classed as warmup
  double frame_deadline_ms = 0.0;    ///< configured static budget (0 = none)
  int deadline_hits = 0;             ///< frames degraded by a frame budget
  std::optional<Tuning> tuning;      ///< present when autotuning ran
  std::optional<Batching> batching;  ///< present for --batch-inference runs
  std::vector<ServeLoadLevel> levels;  ///< sweep rows (empty for one level)
  int knee_offered = 0;              ///< offered load at the saturation
                                     ///< knee; 0 = none identified
};

/// Version of the `collision` block inside a report.
inline constexpr int kCollisionStatsVersion = 1;

/// One density level of the collision-backend ablation (bench_collision):
/// static-query rate for both backends, mean episode wall time, the
/// grid backend's conservative clearance error, and whether episode
/// verdicts matched the analytic backend seed-for-seed.
struct CollisionDensityRow {
  double density = 1.0;              ///< crowded_lot clutter multiplier
  int obstacles = 0;                 ///< static obstacles in the sampled world
  double analytic_qps = 0.0;         ///< clearance+collision queries / second
  double grid_qps = 0.0;
  double speedup = 0.0;              ///< grid_qps / analytic_qps
  double analytic_episode_seconds = 0.0;  ///< mean episode wall time
  double grid_episode_seconds = 0.0;
  double clearance_err_mean = 0.0;   ///< analytic minus grid clearance [m]
  double clearance_err_max = 0.0;
  int episodes = 0;                  ///< episodes run per backend
  bool verdicts_match = true;        ///< identical outcomes per seed
};

/// Collision-backend ablation metrics of one bench_collision run.
struct CollisionStats {
  int version = kCollisionStatsVersion;
  std::string generator;             ///< scenario family swept
  double grid_resolution = 0.0;      ///< [m]
  std::vector<CollisionDensityRow> rows;  ///< density ascending
};

/// Version of the `mission` block inside a report.
inline constexpr int kMissionStatsVersion = 1;

/// One (mission template, method) aggregate row of a bench_mission run:
/// multi-leg mission outcomes over a fixed seed set. The fingerprints make
/// rows self-describing: `spec_fingerprint` identifies the template revision
/// the numbers were measured on (baselines refuse to compare across template
/// edits), `result_fingerprint` digests every per-mission result fingerprint
/// in seed order — two runs of the same build, seeds and template produce
/// the same value regardless of thread count.
struct MissionTemplateRow {
  std::string mission;               ///< template name (quiet_lot, ...)
  std::string method;                ///< controller registry key
  int missions = 0;                  ///< missions attempted
  int succeeded = 0;                 ///< full enter->park->exit successes
  double success_ratio = 0.0;
  int legs = 0;                      ///< total legs opened (incl. aborted)
  double legs_per_mission = 0.0;
  int replans = 0;                   ///< bay-contention retargets
  double replans_per_mission = 0.0;
  int collisions = 0;                ///< legs ended by a collision
  int timeouts = 0;                  ///< legs ended by the leg time limit
  double park_time_p50 = 0.0;        ///< mission seconds to end of kPark
  double park_time_p95 = 0.0;        ///< (successful missions only)
  double exit_time_p50 = 0.0;        ///< mission seconds to end of kExit
  double exit_time_p95 = 0.0;
  double wall_seconds_mean = 0.0;    ///< mean wall clock per mission
  std::uint64_t spec_fingerprint = 0;    ///< mission::MissionSpec digest
  std::uint64_t result_fingerprint = 0;  ///< FNV over per-mission results
};

/// Mission-benchmark metrics of one bench_mission run.
struct MissionStats {
  int version = kMissionStatsVersion;
  std::vector<MissionTemplateRow> rows;  ///< template-major, method-minor
};

inline constexpr int kPlannerStatsVersion = 1;

/// One (family, density, heuristic-mode) cell of the planner ablation
/// (bench_planner): hybrid-A* wall time and search-effort counters over a
/// fixed seed set, plus the deadline-hit count of an optional budgeted
/// pass. `speedup` is this mode's mean plan time relative to euclid-rs on
/// the same (family, density) — 0 until the baseline row exists.
struct PlannerFamilyRow {
  std::string generator;
  double density = 1.0;          ///< generator clutter multiplier
  std::string heuristic;         ///< co::to_string(HeuristicMode)
  int plans = 0;                 ///< scenarios attempted
  int solved = 0;
  double plan_ms_mean = 0.0;
  double plan_ms_max = 0.0;
  double expansions_mean = 0.0;  ///< nodes popped per plan
  double rs_shots_mean = 0.0;    ///< analytic expansions tried per plan
  double path_cost_mean = 0.0;   ///< solution cost (g + analytic tail) per solved plan
  double speedup = 0.0;          ///< euclid-rs plan_ms_mean / this mode's
  double deadline_ms = 0.0;      ///< budgeted pass frame deadline (0 = off)
  int deadline_hits = 0;         ///< budgeted plans that tripped the frame
};

/// Planner-heuristic ablation metrics of one bench_planner run.
struct PlannerStats {
  int version = kPlannerStatsVersion;
  std::vector<PlannerFamilyRow> rows;  ///< family-major, mode-minor
};

/// A versioned, machine-readable record of one bench/suite run: run
/// metadata plus per-(cell, method) aggregates, optional per-episode
/// records, and (for serving runs) the ServeStats block. Writer AND loader
/// live here so a committed reference report can gate CI (see
/// compare_to_baseline).
struct RunReport {
  RunReportMeta meta;
  std::vector<CellRecord> cells;
  std::optional<ServeStats> serve;   ///< present for bench_serve runs
  std::optional<CollisionStats> collision;  ///< bench_collision runs
  std::optional<PlannerStats> planner;      ///< bench_planner runs
  std::optional<MissionStats> mission;      ///< bench_mission runs

  /// Appends one aggregate row per suite cell for `results`; call once per
  /// method when a run covers several.
  void add_cells(const std::vector<SuiteCellResult>& results);
  /// Same, with the per-episode records from `detailed` attached. `results`
  /// must be the aggregates of exactly those episodes (cell-for-cell) —
  /// passing them in keeps the fold in one place so table and artifact
  /// cannot disagree.
  void add_cells_detailed(const std::vector<SuiteCellResult>& results,
                          const std::vector<SuiteCellEpisodes>& detailed);

  std::string to_json() const;
  bool save(const std::string& path, std::string* error = nullptr) const;
  static bool parse(const std::string& json, RunReport* out,
                    std::string* error = nullptr);
  static bool load(const std::string& path, RunReport* out,
                   std::string* error = nullptr);
};

/// One per-cell JSON line for the BENCH_JSON append hook (same writer and
/// escaping as RunReport, no trailing newline).
std::string aggregate_json_line(const std::string& bench,
                                const std::string& cell, const Aggregate& agg);

/// What compare_to_baseline tolerates before calling a change a regression.
struct BaselineTolerance {
  /// Allowed absolute drop in per-cell success ratio.
  double success_drop = 0.02;
  /// Allowed relative increase in mean park time over successful episodes.
  double park_time_slowdown = 0.10;
  /// Allowed absolute drop in per-template mission success ratio.
  double mission_success_drop = 0.02;
  /// Allowed absolute change (either direction) in replans per mission: a
  /// contested template that stops forcing replans is as broken as one that
  /// starts thrashing.
  double mission_replan_delta = 0.5;
};

/// Outcome of comparing a fresh report against a committed baseline.
struct BaselineVerdict {
  bool ok = true;
  std::vector<std::string> failures;  ///< per-cell regression reasons
  std::vector<std::string> notes;     ///< non-fatal observations

  std::string summary() const;
};

/// Compares `current` against `baseline` cell by cell (matched on
/// method + label). Regressions: a baseline cell missing from the current
/// run, a success-ratio drop beyond tolerance, or a park-time slowdown
/// beyond tolerance. Mismatched config fingerprints are flagged as a note
/// (the numbers may legitimately differ).
BaselineVerdict compare_to_baseline(const RunReport& current,
                                    const RunReport& baseline,
                                    const BaselineTolerance& tolerance = {});

}  // namespace icoil::sim
