// Fig. 7 of the paper: the HSA scenario-uncertainty series over one iCOIL
// parking episode, the CO->IL mode switch, and the control commands
// (reverse engages after the switch; steering settles near zero once the
// vehicle enters the bay).

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/controller_registry.hpp"
#include "mathkit/table.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace icoil;
  const auto policy = bench::shared_policy();

  world::ScenarioOptions options;
  options.difficulty = world::Difficulty::kEasy;
  const world::Scenario scenario = world::make_scenario(options, 911);

  sim::SimConfig sim_config;
  sim_config.record_trace = true;
  sim::Simulator simulator(sim_config);

  const auto controller = core::ControllerRegistry::instance().build(
      "icoil", {.policy = policy.get()});
  const sim::EpisodeResult run = simulator.run(scenario, *controller, 911);

  std::printf("Fig. 7 — HSA timeline over one iCOIL episode (seed 911): %s in "
              "%.1f s, %d mode switches\n\n",
              sim::to_string(run.outcome), run.park_time, run.mode_switches);

  math::TextTable table({"stamp", "t [s]", "U_i", "C_i (norm)", "U/C", "mode",
                         "steer", "reverse"});
  for (std::size_t i = 0; i < run.trace.size(); i += 20) {
    const sim::FrameRecord& f = run.trace[i];
    table.add_row({std::to_string(i), math::format_double(f.t, 1),
                   math::format_double(f.info.uncertainty, 3),
                   math::format_double(f.info.complexity, 3),
                   math::format_double(f.info.ratio, 3),
                   core::to_string(f.info.mode),
                   math::format_double(f.info.command.steer, 2),
                   f.info.command.reverse ? "on" : "off"});
  }
  table.print(std::cout);
  table.save_csv("fig7_hsa_timeline.csv");

  // Paper's qualitative claims on this figure.
  double early_u = 0.0, late_u = 0.0;
  std::size_t early_n = 0, late_n = 0;
  std::size_t first_switch = run.trace.size();
  for (std::size_t i = 0; i < run.trace.size(); ++i) {
    const auto& f = run.trace[i];
    if (f.t < run.park_time * 0.3) {
      early_u += f.info.uncertainty;
      ++early_n;
    } else if (f.t > run.park_time * 0.7) {
      late_u += f.info.uncertainty;
      ++late_n;
    }
    if (first_switch == run.trace.size() && i > 0 &&
        f.info.mode != run.trace[i - 1].info.mode)
      first_switch = i;
  }
  if (early_n > 0) early_u /= static_cast<double>(early_n);
  if (late_n > 0) late_u /= static_cast<double>(late_n);
  std::printf("\nmean uncertainty: first 30%% of episode %.3f, last 30%% %.3f "
              "(paper: drops and stabilizes late)\n",
              early_u, late_u);
  if (first_switch < run.trace.size())
    std::printf("first mode switch at stamp %zu (t = %.1f s), guard time %d "
                "frames\n",
                first_switch, run.trace[first_switch].t,
                core::HsaConfig{}.guard_frames);
  return 0;
}
