#pragma once

// Frozen copy of the pre-refactor hybrid-A* search loop, kept ONLY as the
// baseline of bench_planner's speedup column. This is the planner as it
// stood before the arena/heuristic-cache rework: per-node heap-allocated
// arcs, std::unordered_map best-g table, an exact Reeds-Shepp solve inside
// the heuristic on every improved push, and an un-throttled analytic
// expansion attempted on every pop inside rs_shot_radius. Do not "fix" or
// modernize it — its value is that it does not change.

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "co/hybrid_astar.hpp"
#include "co/reeds_shepp.hpp"
#include "geom/aabb.hpp"
#include "geom/angles.hpp"
#include "geom/broadphase.hpp"
#include "geom/obb.hpp"
#include "vehicle/kinematics.hpp"
#include "world/distance_field.hpp"

namespace icoil::bench {

struct LegacyStats {
  int expansions = 0;
  int rs_shot_attempts = 0;
  double solution_cost = 0.0;  ///< g at the shot node + analytic tail length
};

namespace legacy_detail {

struct Node {
  geom::Pose2 pose;
  int direction = 1;
  double steer = 0.0;
  double g = 0.0;
  int parent = -1;
  std::vector<geom::Pose2> arc;
};

struct QueueEntry {
  double f = 0.0;
  int node = 0;
  bool operator>(const QueueEntry& o) const { return f > o.f; }
};

inline bool pose_free(const vehicle::BicycleModel& model,
                      const co::HybridAStarConfig& config,
                      const geom::Pose2& pose, const geom::ObbSet& obstacles,
                      const geom::Aabb& bounds,
                      const world::DistanceField* field) {
  const geom::Obb fp = model.footprint(pose).inflated(config.obstacle_margin);
  for (const geom::Vec2& c : fp.corners())
    if (!bounds.contains(c)) return false;
  if (field != nullptr &&
      field->probe(fp) == world::DistanceField::Probe::kFree)
    return true;
  return !obstacles.any_overlap(fp);
}

}  // namespace legacy_detail

/// The seed planner's plan(): success/failure and path shape match the
/// pre-refactor code exactly (same expansion order, same tie behaviour from
/// the same queue discipline). Returns true when a path was found.
inline bool legacy_plan(const co::HybridAStarConfig& config,
                        const vehicle::VehicleParams& params,
                        const geom::Pose2& start, const geom::Pose2& goal,
                        const std::vector<geom::Obb>& obstacles,
                        const geom::Aabb& bounds,
                        const world::DistanceField* field,
                        LegacyStats* stats = nullptr) {
  using legacy_detail::Node;
  using legacy_detail::QueueEntry;

  const vehicle::BicycleModel model(params);
  const double radius = params.min_turn_radius() * config.rs_radius_factor;
  const co::ReedsShepp rs(radius);
  const geom::ObbSet obstacle_set(obstacles);

  auto pose_free = [&](const geom::Pose2& p) {
    return legacy_detail::pose_free(model, config, p, obstacle_set, bounds,
                                    field);
  };

  auto heuristic = [&](const geom::Pose2& p) {
    const double euclid = geom::distance(p.position, goal.position);
    const auto path = rs.shortest_path(p, goal);
    return path ? std::max(euclid, rs.length(*path)) : euclid;
  };

  auto key_of = [&](const geom::Pose2& p, int dir) {
    const long xi = std::lround(p.x() / config.xy_resolution);
    const long yi = std::lround(p.y() / config.xy_resolution);
    const double h = geom::wrap_angle_2pi(p.heading);
    const long ti = std::lround(h / (geom::kTwoPi / config.heading_bins)) %
                    config.heading_bins;
    return ((xi * 4096 + yi) * 64 + ti) * 2 + (dir > 0 ? 1 : 0);
  };

  std::vector<Node> nodes;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> open;
  std::unordered_map<long, double> best_g;

  if (!pose_free(start)) return false;
  nodes.push_back({start, 1, 0.0, 0.0, -1, {}});
  open.push({heuristic(start), 0});
  best_g[key_of(start, 1)] = 0.0;

  std::vector<double> steers;
  for (int i = 0; i < config.num_steer_levels; ++i)
    steers.push_back(config.steer_fraction *
                     (-params.max_steer + 2.0 * params.max_steer * i /
                                              (config.num_steer_levels - 1)));

  const int kArcSubsteps = 4;
  int expansions = 0;
  int shot_attempts = 0;
  int shot_parent = -1;
  double shot_cost = 0.0;

  while (!open.empty() && expansions < config.max_expansions) {
    const QueueEntry top = open.top();
    open.pop();
    const int ni = top.node;
    const Node snapshot = nodes[static_cast<std::size_t>(ni)];
    ++expansions;

    if (geom::distance(snapshot.pose.position, goal.position) <
        config.rs_shot_radius) {
      ++shot_attempts;
      if (const auto path = rs.shortest_path(snapshot.pose, goal)) {
        const auto samples = rs.sample(snapshot.pose, *path, config.sample_step);
        bool free = true;
        for (const co::RsSample& s : samples) {
          if (!pose_free(s.pose)) {
            free = false;
            break;
          }
        }
        if (free) {
          shot_parent = ni;
          shot_cost = snapshot.g + rs.length(*path);
          break;
        }
      }
    }

    for (int dir : {1, -1}) {
      for (double steer : steers) {
        geom::Pose2 p = snapshot.pose;
        std::vector<geom::Pose2> arc;
        bool free = true;
        const double ds = dir * config.step / kArcSubsteps;
        for (int k = 0; k < kArcSubsteps; ++k) {
          const double yaw_rate = std::tan(steer) / params.wheelbase;
          p.position.x += ds * std::cos(p.heading);
          p.position.y += ds * std::sin(p.heading);
          p.heading = geom::wrap_angle(p.heading + ds * yaw_rate);
          if (!pose_free(p)) {
            free = false;
            break;
          }
          arc.push_back(p);
        }
        if (!free) continue;

        double cost = config.step * (dir < 0 ? config.reverse_penalty : 1.0);
        cost += config.steer_penalty * std::abs(steer) * config.step;
        if (snapshot.parent >= 0 && dir != snapshot.direction)
          cost += config.switch_penalty;
        cost += config.steer_change_penalty * std::abs(steer - snapshot.steer);
        const double g = snapshot.g + cost;

        const long key = key_of(p, dir);
        const auto it = best_g.find(key);
        if (it != best_g.end() && it->second <= g) continue;
        best_g[key] = g;

        nodes.push_back({p, dir, steer, g, ni, std::move(arc)});
        open.push({g + heuristic(p), static_cast<int>(nodes.size()) - 1});
      }
    }
  }

  if (stats != nullptr) {
    stats->expansions = expansions;
    stats->rs_shot_attempts = shot_attempts;
    stats->solution_cost = shot_cost;
  }
  return shot_parent >= 0;
}

}  // namespace icoil::bench
