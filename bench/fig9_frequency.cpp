// Fig. 9 / section V-E of the paper: execution frequency of the two working
// modes. The paper measures IL at ~75 Hz and CO at ~18 Hz — IL is several
// times faster per frame, which is why HSA switching matters. This harness
// times each module with google-benchmark and derives the equivalent Hz.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/controller_registry.hpp"
#include "il/observation.hpp"
#include "sensing/bev.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace icoil;

std::unique_ptr<il::IlPolicy> g_policy;

world::Scenario bench_scenario() {
  world::ScenarioOptions options;
  options.difficulty = world::Difficulty::kNormal;
  return world::make_scenario(options, 77);
}

// A mid-maneuver ego state near the bay row (obstacles in range).
vehicle::State bench_state() {
  vehicle::State s;
  s.pose = {26.0, 8.0, -0.3};
  s.speed = 1.2;
  return s;
}

void BM_IlMode(benchmark::State& state) {
  const world::Scenario sc = bench_scenario();
  world::World world(sc);
  const auto controller = core::ControllerRegistry::instance().build(
      "il", {.policy = g_policy.get()});
  controller->reset(sc);
  math::Rng rng(1);
  const vehicle::State ego = bench_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller->act(world, ego, rng));
  }
}
BENCHMARK(BM_IlMode)->Unit(benchmark::kMillisecond);

void BM_CoMode(benchmark::State& state) {
  const world::Scenario sc = bench_scenario();
  world::World world(sc);
  const auto controller = core::ControllerRegistry::instance().build("co");
  controller->reset(sc);
  math::Rng rng(1);
  const vehicle::State ego = bench_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller->act(world, ego, rng));
  }
}
BENCHMARK(BM_CoMode)->Unit(benchmark::kMillisecond);

void BM_BevRender(benchmark::State& state) {
  const world::Scenario sc = bench_scenario();
  world::World world(sc);
  const sense::BevRasterizer raster(g_policy->bev_spec());
  const vehicle::State ego = bench_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(raster.render(world, ego.pose));
  }
}
BENCHMARK(BM_BevRender)->Unit(benchmark::kMillisecond);

void BM_DnnForward(benchmark::State& state) {
  const world::Scenario sc = bench_scenario();
  world::World world(sc);
  const sense::BevRasterizer raster(g_policy->bev_spec());
  const vehicle::State ego = bench_state();
  const sense::BevImage obs =
      il::make_observation(raster.render(world, ego.pose), ego.speed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_policy->infer(obs));
  }
}
BENCHMARK(BM_DnnForward)->Unit(benchmark::kMillisecond);

/// Measure wall-clock of full controller frames over an episode and derive
/// the equivalent execution frequency (the number the paper reports).
void report_frequencies() {
  const world::Scenario sc = bench_scenario();

  auto measure = [&](core::Controller& controller) {
    sim::SimConfig cfg;
    cfg.record_trace = true;
    sim::Simulator simulator(cfg);
    const sim::EpisodeResult run = simulator.run(sc, controller, 77);
    double total_ms = 0.0;
    for (const auto& f : run.trace) total_ms += f.info.solve_ms;
    return run.trace.empty() ? 0.0
                             : 1000.0 / (total_ms / static_cast<double>(
                                                        run.trace.size()));
  };

  const auto& registry = core::ControllerRegistry::instance();
  const auto il = registry.build("il", {.policy = g_policy.get()});
  const auto co = registry.build("co");
  const double il_hz = measure(*il);
  const double co_hz = measure(*co);
  std::printf("\nFig. 9 / V-E — average execution frequency over an episode:\n");
  std::printf("  IL mode: %.0f Hz (paper: ~75 Hz)\n", il_hz);
  std::printf("  CO mode: %.0f Hz (paper: ~18 Hz)\n", co_hz);
  std::printf("  ratio IL/CO: %.1fx (paper: ~4.2x)\n",
              co_hz > 0 ? il_hz / co_hz : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  g_policy = bench::shared_policy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_frequencies();
  benchmark::Shutdown();
  return 0;
}
