// Planner-heuristic ablation: hybrid-A* under every heuristic mode
// (euclid-rs | lut | dijkstra | max) across the scenario generator
// families, with crowded_lot additionally swept over clutter density.
// Each cell also runs `legacy` — the frozen pre-refactor planner
// (bench/legacy_planner.hpp) — as the speedup reference, so the euclid-rs
// row isolates the search-core restructure and the cached rows add the
// heuristic effect on top. Three measurements per (family, density, mode):
//
//   1. Plan wall time over a fixed seed set (mean/max ms) plus the search
//      counters (expansions and RS-shot attempts per plan).
//   2. Success parity: every scenario the legacy planner or the euclid-rs
//      baseline solves must still be solved by every other mode — the
//      cached heuristics change node order, not completeness, so a drop is
//      a bug (the CI gate).
//   3. Deadline-hit rate: an optional second pass re-plans each scenario
//      under a core::FrameContext budget and counts tripped frames.
//
// Results land in the `planner` block of a sim::RunReport; `speedup` is
// each mode's mean plan time relative to the legacy planner on the cell.
//
// Usage:
//   bench_planner [options]
//     --plans N             scenarios per (family, density) cell (default 10)
//     --reps K              timing repetitions per plan; the per-plan time
//                           is the minimum of K runs (default 3) — the
//                           planner is deterministic, so spread across reps
//                           is scheduler noise, not work
//     --families LIST       generator families to run (default: all five)
//     --densities LIST      crowded_lot clutter multipliers (default 1,4)
//     --frame-deadline-ms X budgeted-pass deadline (default 50; 0 = skip)
//     --lut-res X           override HybridAStarConfig::lut_xy_resolution
//     --lut-bins N          override HybridAStarConfig::lut_heading_bins
//     --report PATH         write the RunReport JSON artifact
//     --quick               smoke mode: 3 plans, no budgeted pass
//
// Exit codes: 0 ok, 1 success-parity failure, 2 usage error, 3 I/O error.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "legacy_planner.hpp"
#include "co/heuristic.hpp"
#include "co/hybrid_astar.hpp"
#include "mathkit/rng.hpp"
#include "mathkit/table.hpp"
#include "sim/evaluator.hpp"
#include "sim/report.hpp"
#include "sim/suite.hpp"
#include "world/distance_field.hpp"
#include "world/scenario.hpp"

namespace {

using icoil::bench::parse_double_arg;
using icoil::bench::parse_int_arg;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--plans N] [--reps K] [--families LIST] "
               "[--densities LIST] [--frame-deadline-ms X] [--lut-res X] "
               "[--lut-bins N] [--report PATH] [--per-plan] [--quick]\n",
               argv0);
  return 2;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// One planning problem: the scenario's statics, bounds and start/goal,
/// plus the distance field the production co::Planner would query (the
/// bench mirrors the real collision path, not the analytic-only fallback).
struct Problem {
  icoil::geom::Pose2 start, goal;
  std::vector<icoil::geom::Obb> obstacles;
  icoil::geom::Aabb bounds;
  icoil::world::DistanceField field;
};

Problem make_problem(const icoil::world::Scenario& scenario) {
  Problem p;
  p.start = scenario.start_pose;
  p.goal = scenario.map.goal_pose;
  p.bounds = scenario.map.bounds;
  for (const icoil::world::Obstacle& o : scenario.obstacles)
    if (!o.dynamic()) p.obstacles.push_back(o.shape);
  p.field = icoil::world::DistanceField(p.bounds, p.obstacles);
  return p;
}

struct ModeResult {
  icoil::sim::PlannerFamilyRow row;
  std::vector<bool> solved;  ///< per problem index
};

double g_lut_res = 0.0;   ///< --lut-res override (0 = planner default)
int g_lut_bins = 0;       ///< --lut-bins override (0 = planner default)
int g_reps = 3;           ///< --reps: timing repetitions per plan
bool g_per_plan = false;  ///< --per-plan: dump per-scenario lines to stderr

ModeResult run_mode(const std::vector<Problem>& problems,
                    icoil::co::HeuristicMode mode, double deadline_ms) {
  using namespace icoil;
  ModeResult out;
  co::HybridAStarConfig config;
  config.heuristic = mode;
  if (g_lut_res > 0.0) config.lut_xy_resolution = g_lut_res;
  if (g_lut_bins > 0) config.lut_heading_bins = g_lut_bins;
  const co::HybridAStar astar(config, vehicle::VehicleParams{});

  // Warm pass: pays the one-time shared-LUT build (and touches the code
  // paths) outside the timed loop, as a long-lived process would.
  if (!problems.empty()) {
    const Problem& w = problems.front();
    (void)astar.plan(w.start, w.goal, w.obstacles, w.bounds, nullptr,
                     &w.field);
  }

  double total_ms = 0.0, max_ms = 0.0;
  double total_exp = 0.0, total_shots = 0.0, total_cost = 0.0;
  for (const Problem& p : problems) {
    co::PlanStats stats;
    bool solved = false;
    double ms = 0.0;
    // The planner is deterministic, so every rep does identical work: the
    // minimum is the run least perturbed by the scheduler.
    for (int rep = 0; rep < g_reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto path = astar.plan(p.start, p.goal, p.obstacles, p.bounds,
                                   nullptr, &p.field, &stats);
      const double rep_ms = ms_since(t0);
      ms = rep == 0 ? rep_ms : std::min(ms, rep_ms);
      solved = path.has_value();
    }
    if (g_per_plan)
      std::fprintf(stderr, "[plan] %-9s #%zu %s %.2f ms exp %d shots %d\n",
                   co::to_string(mode), out.solved.size(),
                   solved ? "ok  " : "FAIL", ms, stats.expansions,
                   stats.rs_shot_attempts);
    total_ms += ms;
    max_ms = std::max(max_ms, ms);
    total_exp += stats.expansions;
    total_shots += stats.rs_shot_attempts;
    if (solved) total_cost += stats.solution_cost;
    out.solved.push_back(solved);
    if (solved) ++out.row.solved;
    ++out.row.plans;
  }

  // Budgeted pass: same problems under a per-frame deadline; count plans
  // that tripped it (returned early without a path).
  if (deadline_ms > 0.0) {
    out.row.deadline_ms = deadline_ms;
    math::Rng rng(42);
    for (std::size_t i = 0; i < problems.size(); ++i) {
      const Problem& p = problems[i];
      core::FrameContext frame(rng, nullptr, deadline_ms);
      const auto path = astar.plan(p.start, p.goal, p.obstacles, p.bounds,
                                   &frame, &p.field);
      if (!path.has_value() && frame.deadline_hit()) ++out.row.deadline_hits;
    }
  }

  const int n = out.row.plans;
  out.row.heuristic = co::to_string(mode);
  out.row.plan_ms_mean = n > 0 ? total_ms / n : 0.0;
  out.row.plan_ms_max = max_ms;
  out.row.expansions_mean = n > 0 ? total_exp / n : 0.0;
  out.row.rs_shots_mean = n > 0 ? total_shots / n : 0.0;
  out.row.path_cost_mean = out.row.solved > 0 ? total_cost / out.row.solved : 0.0;
  return out;
}

/// The pre-refactor planner on the same problems: the speedup denominator.
/// No budgeted pass — the legacy loop predates stats/deadline plumbing and
/// is kept byte-for-byte faithful instead.
ModeResult run_legacy(const std::vector<Problem>& problems) {
  using namespace icoil;
  ModeResult out;
  const co::HybridAStarConfig config;  // planner defaults, heuristic unused
  const vehicle::VehicleParams params;

  double total_ms = 0.0, max_ms = 0.0;
  double total_exp = 0.0, total_shots = 0.0, total_cost = 0.0;
  for (const Problem& p : problems) {
    bench::LegacyStats stats;
    bool solved = false;
    double ms = 0.0;
    for (int rep = 0; rep < g_reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      solved = bench::legacy_plan(config, params, p.start, p.goal, p.obstacles,
                                  p.bounds, &p.field, &stats);
      const double rep_ms = ms_since(t0);
      ms = rep == 0 ? rep_ms : std::min(ms, rep_ms);
    }
    if (g_per_plan)
      std::fprintf(stderr, "[plan] %-9s #%zu %s %.2f ms exp %d shots %d\n",
                   "legacy", out.solved.size(), solved ? "ok  " : "FAIL", ms,
                   stats.expansions, stats.rs_shot_attempts);
    total_ms += ms;
    max_ms = std::max(max_ms, ms);
    total_exp += stats.expansions;
    total_shots += stats.rs_shot_attempts;
    if (solved) total_cost += stats.solution_cost;
    out.solved.push_back(solved);
    if (solved) ++out.row.solved;
    ++out.row.plans;
  }

  const int n = out.row.plans;
  out.row.heuristic = "legacy";
  out.row.plan_ms_mean = n > 0 ? total_ms / n : 0.0;
  out.row.plan_ms_max = max_ms;
  out.row.expansions_mean = n > 0 ? total_exp / n : 0.0;
  out.row.rs_shots_mean = n > 0 ? total_shots / n : 0.0;
  out.row.path_cost_mean = out.row.solved > 0 ? total_cost / out.row.solved : 0.0;
  return out;
}

std::vector<double> parse_densities(const std::string& csv) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) {
      double v = 0.0;
      if (!parse_double_arg(item.c_str(), &v) || v <= 0.0) return {};
      out.push_back(v);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icoil;

  int plans = 10;
  double deadline_ms = 50.0;
  std::string densities_csv = "1,4";
  std::string families_csv =
      "canonical,perpendicular,parallel_street,crowded_lot,dynamic_gauntlet";
  std::string report_path;
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--plans") {
      const char* v = next_value();
      if (v == nullptr || !parse_int_arg(v, &plans) || plans <= 0)
        return usage(argv[0]);
    } else if (arg == "--reps") {
      const char* v = next_value();
      if (v == nullptr || !parse_int_arg(v, &g_reps) || g_reps <= 0)
        return usage(argv[0]);
    } else if (arg == "--densities") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      densities_csv = v;
    } else if (arg == "--families") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      families_csv = v;
    } else if (arg == "--frame-deadline-ms") {
      const char* v = next_value();
      if (v == nullptr || !parse_double_arg(v, &deadline_ms) ||
          deadline_ms < 0.0)
        return usage(argv[0]);
    } else if (arg == "--report") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      report_path = v;
    } else if (arg == "--lut-res") {
      const char* v = next_value();
      if (v == nullptr || !parse_double_arg(v, &g_lut_res) || g_lut_res <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--lut-bins") {
      const char* v = next_value();
      if (v == nullptr || !parse_int_arg(v, &g_lut_bins) || g_lut_bins <= 0)
        return usage(argv[0]);
    } else if (arg == "--per-plan") {
      g_per_plan = true;
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "bench_planner: unknown argument \"%s\"\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }
  if (quick) {
    plans = std::min(plans, 3);
    g_reps = 1;
    deadline_ms = 0.0;
  }

  const std::vector<double> densities = parse_densities(densities_csv);
  if (densities.empty()) {
    std::fprintf(stderr, "bench_planner: bad --densities \"%s\"\n",
                 densities_csv.c_str());
    return usage(argv[0]);
  }

  constexpr std::uint64_t kScenarioSeed = 300;
  std::vector<std::string> families;
  {
    std::size_t start = 0;
    while (start <= families_csv.size()) {
      const std::size_t comma = families_csv.find(',', start);
      const std::string item = families_csv.substr(
          start,
          comma == std::string::npos ? std::string::npos : comma - start);
      if (!item.empty()) families.push_back(item);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (families.empty()) return usage(argv[0]);
  }
  const std::vector<co::HeuristicMode> modes = {
      co::HeuristicMode::kEuclidRs, co::HeuristicMode::kLut,
      co::HeuristicMode::kDijkstra, co::HeuristicMode::kMax};

  sim::PlannerStats stats;
  bool parity_ok = true;
  math::TextTable table({"family", "density", "heuristic", "solved",
                         "plan [ms]", "max [ms]", "expansions", "rs shots",
                         "cost", "speedup", "ddl hits"});

  for (const std::string& family : families) {
    // Density sweeps only the family whose generator reads it.
    const std::vector<double> family_densities =
        family == "crowded_lot" ? densities : std::vector<double>{1.0};
    for (const double density : family_densities) {
      sim::SuiteCell cell;
      cell.generator = family;
      cell.difficulty = world::Difficulty::kNormal;
      if (density != 1.0) cell.params.set("density", density);

      std::vector<Problem> problems;
      problems.reserve(static_cast<std::size_t>(plans));
      for (int s = 0; s < plans; ++s)
        problems.push_back(make_problem(
            world::make_scenario(cell.options(), kScenarioSeed + s)));

      auto emit = [&](ModeResult& r, bool is_reference) {
        r.row.generator = family;
        r.row.density = density;
        stats.rows.push_back(r.row);
        table.add_row(
            {family, math::format_double(density, 1), r.row.heuristic,
             std::to_string(r.row.solved) + "/" + std::to_string(r.row.plans),
             math::format_double(r.row.plan_ms_mean, 2),
             math::format_double(r.row.plan_ms_max, 2),
             math::format_double(r.row.expansions_mean, 0),
             math::format_double(r.row.rs_shots_mean, 1),
             math::format_double(r.row.path_cost_mean, 1),
             is_reference ? std::string("1.00x")
                          : math::format_double(r.row.speedup, 2) + "x",
             r.row.deadline_ms > 0.0 ? std::to_string(r.row.deadline_hits)
                                     : "-"});
      };
      auto check_parity = [&](const std::vector<bool>& ref_solved,
                              const char* ref_name, const ModeResult& r) {
        for (std::size_t s = 0; s < ref_solved.size(); ++s) {
          if (ref_solved[s] && !r.solved[s]) {
            parity_ok = false;
            std::fprintf(stderr,
                         "[planner] PARITY: %s density %.1f seed %llu "
                         "solved by %s but not by %s\n",
                         family.c_str(), density,
                         static_cast<unsigned long long>(kScenarioSeed + s),
                         ref_name, r.row.heuristic.c_str());
          }
        }
      };

      ModeResult legacy = run_legacy(problems);
      const double legacy_ms = legacy.row.plan_ms_mean;
      emit(legacy, /*is_reference=*/true);

      std::vector<bool> baseline_solved;
      for (const co::HeuristicMode mode : modes) {
        ModeResult r = run_mode(problems, mode, deadline_ms);
        r.row.speedup =
            r.row.plan_ms_mean > 0.0 ? legacy_ms / r.row.plan_ms_mean : 0.0;
        // Success parity: every scenario the pre-refactor planner solves
        // must stay solved; cached modes must also keep everything the
        // euclid-rs baseline solves.
        check_parity(legacy.solved, "legacy", r);
        if (mode == co::HeuristicMode::kEuclidRs)
          baseline_solved = r.solved;
        else
          check_parity(baseline_solved, "euclid-rs", r);
        emit(r, /*is_reference=*/false);
      }
      std::fprintf(stderr, "[planner] %s density %.1fx done (%d plans/mode)\n",
                   family.c_str(), density, plans);
    }
  }

  std::printf("\nPlanner heuristic ablation — %d plans per cell, "
              "budgeted pass %s\n\n",
              plans,
              deadline_ms > 0.0
                  ? (math::format_double(deadline_ms, 0) + " ms").c_str()
                  : "off");
  table.print(std::cout);

  if (!report_path.empty()) {
    sim::RunReport report;
    report.meta.suite = "planner";
    report.meta.git_describe = sim::build_git_describe();
    report.meta.threads = 1;
    report.meta.episodes_per_cell = plans;
    report.meta.base_seed = kScenarioSeed;
    sim::EvalConfig eval_config;
    eval_config.episodes = plans;
    eval_config.base_seed = kScenarioSeed;
    report.meta.config_fingerprint = sim::config_fingerprint(eval_config);
    report.planner = stats;
    std::string error;
    if (!report.save(report_path, &error)) {
      std::fprintf(stderr, "bench_planner: %s\n", error.c_str());
      return 3;
    }
    std::fprintf(stderr, "[planner] report written to %s\n",
                 report_path.c_str());
  }

  if (!parity_ok) {
    std::fprintf(stderr,
                 "bench_planner: FAIL — a cached heuristic lost a scenario "
                 "the euclid-rs baseline solves\n");
    return 1;
  }
  return 0;
}
