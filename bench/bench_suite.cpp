// The one bench driver: runs a named evaluation suite (table2 | fig8 | zoo)
// through sim::Evaluator, prints the aggregate table, and optionally writes
// a versioned sim::RunReport JSON artifact and/or gates the run against a
// committed baseline report (nonzero exit on success-rate or park-time
// regression beyond tolerance). Subsumes the duplicated main()s of the
// table2_success / fig8_sensitivity binaries, which remain as thin wrappers.
//
// Ctrl-C is clean: SIGINT trips a shared core::CancelToken, the evaluation
// fan-out drains, and the partial report is still written (meta.aborted)
// before the process exits 130.
//
// Usage:
//   bench_suite [table2|fig8|zoo] [options]
//     --episodes N       episodes per cell (default: suite-specific;
//                        ICOIL_EPISODES honoured)
//     --methods LIST     comma list of controller registry keys
//                        (default: suite-specific; see --list-methods)
//     --list-methods     print the registered method keys and exit 0
//     --list-generators  print the registered scenario generators and exit 0
//     --collision-backend NAME  static-collision backend: analytic | grid
//     --grid-resolution X       grid backend cell size in metres
//     --planner-heuristic NAME  hybrid-A* heuristic for CO-backed methods:
//                        euclid-rs | lut | dijkstra | max (default: max)
//     --report PATH      write the RunReport JSON artifact
//     --baseline PATH    load a reference RunReport and exit 1 on regression
//     --success-tol X    allowed absolute success-ratio drop (default 0.02)
//     --park-tol X       allowed relative park-time slowdown (default 0.10)
//     --budget S         per-cell wall-clock budget in seconds
//     --frame-deadline-ms X  per-frame controller budget in milliseconds
//     --per-episode      include per-episode records in the report
//     --threads N        evaluator worker threads (0 = hardware)
//     --csv PATH         also save the table as CSV
//     --quick            smoke mode: 2 episodes, CO only (no training);
//                        default suite: zoo
//
// Exit codes: 0 ok, 1 baseline regression, 2 usage error, 3 I/O error,
// 130 aborted by SIGINT (partial report written).

#include <cstdio>
#include <cstring>
#include <string>

#include "suite_runner.hpp"

namespace {

using icoil::bench::parse_double_arg;
using icoil::bench::parse_int_arg;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [table2|fig8|zoo] [--episodes N] [--methods LIST] "
               "[--list-methods] [--list-generators] [--report PATH] "
               "[--baseline PATH] [--success-tol X] [--park-tol X] "
               "[--budget S] [--frame-deadline-ms X] "
               "[--collision-backend analytic|grid] [--grid-resolution X] "
               "[--planner-heuristic euclid-rs|lut|dijkstra|max] "
               "[--per-episode] [--threads N] [--csv PATH] [--quick]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icoil;

  std::string which;
  bench::RunSuiteOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "table2" || arg == "fig8" || arg == "zoo") {
      if (!which.empty()) return usage(argv[0]);
      which = arg;
    } else if (arg == "--list-methods") {
      bench::print_registered_methods(stdout);
      return 0;
    } else if (arg == "--list-generators") {
      bench::print_registered_generators(stdout);
      return 0;
    } else if (arg == "--collision-backend") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      opts.collision_backend = v;
    } else if (arg == "--grid-resolution") {
      const char* v = next_value();
      if (v == nullptr || !parse_double_arg(v, &opts.grid_resolution) ||
          opts.grid_resolution <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--planner-heuristic") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      opts.planner_heuristic = v;
    } else if (arg == "--episodes") {
      const char* v = next_value();
      if (v == nullptr || !parse_int_arg(v, &opts.episodes) || opts.episodes <= 0)
        return usage(argv[0]);
    } else if (arg == "--methods") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      opts.methods = v;
    } else if (arg == "--report") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      opts.report_path = v;
    } else if (arg == "--baseline") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      opts.baseline_path = v;
    } else if (arg == "--csv") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      opts.csv_path = v;
    } else if (arg == "--success-tol") {
      const char* v = next_value();
      if (v == nullptr || !parse_double_arg(v, &opts.tolerance.success_drop) ||
          opts.tolerance.success_drop < 0.0)
        return usage(argv[0]);
    } else if (arg == "--park-tol") {
      const char* v = next_value();
      if (v == nullptr ||
          !parse_double_arg(v, &opts.tolerance.park_time_slowdown) ||
          opts.tolerance.park_time_slowdown < 0.0)
        return usage(argv[0]);
    } else if (arg == "--budget") {
      // A negative budget is a typo, not "no budget": reject it rather than
      // silently running without the wall-clock gate.
      const char* v = next_value();
      if (v == nullptr || !parse_double_arg(v, &opts.wall_budget) ||
          opts.wall_budget <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--frame-deadline-ms") {
      const char* v = next_value();
      if (v == nullptr || !parse_double_arg(v, &opts.frame_deadline_ms) ||
          opts.frame_deadline_ms <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--threads") {
      const char* v = next_value();
      if (v == nullptr || !parse_int_arg(v, &opts.threads) || opts.threads < 0)
        return usage(argv[0]);
    } else if (arg == "--per-episode") {
      opts.per_episode = true;
    } else if (arg == "--quick") {
      opts.quick = true;
    } else {
      std::fprintf(stderr, "bench_suite: unknown argument \"%s\"\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }

  if (which.empty()) {
    if (!opts.quick) return usage(argv[0]);
    which = "zoo";  // the smoke default: fast, no trained policy
  }

  // Ctrl-C trips the shared token; the suite drains and the partial report
  // is still written instead of the process dying mid-write.
  opts.abort = &bench::sigint_token();
  bench::install_sigint_handler();

  return bench::run_suite_command(which, opts);
}
