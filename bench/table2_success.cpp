// Table II of the paper: parking time (average / max / min over successful
// episodes) and success ratio for iCOIL vs the conventional IL baseline on
// the easy / normal / hard task levels. We additionally report the pure-CO
// policy as a reference row (not in the paper's table).
//
// The default path is a thin wrapper over the shared suite runner — run
// `bench_suite table2` for the full option set (reports, baselines,
// budgets). Only the --curriculum-compare experiment lives here, because it
// evaluates two differently-trained policies side by side.
//
// Paper's reported values for comparison:
//   easy:   iCOIL 26.02/27.21/24.89 94%   | IL 23.65/25.16/22.52 72%
//   normal: iCOIL 25.40/26.29/24.01 91%   | IL 25.81/26.54/23.77 36%
//   hard:   iCOIL 25.72/26.70/24.58 92%   | IL 24.12/26.44/23.31 33%

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "sim/curriculum.hpp"
#include "suite_runner.hpp"

namespace {

// --curriculum-compare: canonical-trained vs curriculum-trained iCOIL over
// the full generator suite — the cross-family generalization experiment the
// paper's canonical-only table cannot show. Each policy comes from the
// fingerprint-keyed store, so both caches coexist.
int run_curriculum_compare() {
  using namespace icoil;

  sim::PolicyStoreOptions canonical_opts = sim::default_policy_options();
  sim::PolicyStoreOptions curriculum_opts = sim::default_policy_options();
  curriculum_opts.expert.curriculum = sim::Curriculum::all_families();

  const auto canonical_policy = sim::get_or_train_policy(canonical_opts);
  const auto curriculum_policy = sim::get_or_train_policy(curriculum_opts);

  sim::EvalConfig eval_config;
  eval_config.episodes = bench::episodes_override(30);
  sim::Evaluator evaluator(eval_config);

  sim::ScenarioSuite suite = sim::ScenarioSuite::cross(
      world::GeneratorRegistry::instance().names(),
      {world::Difficulty::kEasy, world::Difficulty::kNormal},
      {world::StartClass::kRandom});
  suite.name = "table2_curriculum";

  // Same registry method, two differently-trained policies: the factory is
  // resolved through the controller registry, only the policy (and the row
  // label) differs per row.
  const auto& registry = core::ControllerRegistry::instance();
  auto icoil_with = [&](const il::IlPolicy& policy) {
    core::ControllerBuildArgs args;
    args.policy = &policy;
    return registry.factory("icoil", args);
  };
  struct Row {
    const char* name;
    core::ControllerFactory factory;
  };
  const Row rows[] = {
      {"iCOIL/canonical", icoil_with(*canonical_policy)},
      {"iCOIL/all", icoil_with(*curriculum_policy)},
  };

  std::vector<std::vector<sim::SuiteCellResult>> per_method;
  for (const Row& row : rows) {
    per_method.push_back(evaluator.evaluate_suite(
        row.factory, suite, row.name,
        [&](const sim::SuiteCell& cell, int completed, int total) {
          std::fprintf(stderr, "[table2] %s / %s done (%d/%d)\n",
                       cell.display_label().c_str(), row.name, completed,
                       total);
        }));
    bench::append_bench_json("table2_curriculum", per_method.back());
  }

  math::TextTable table({"cell", "method", "avg [s]", "success", "episodes"});
  for (std::size_t cell = 0; cell < suite.cells.size(); ++cell) {
    for (std::size_t m = 0; m < per_method.size(); ++m) {
      const sim::Aggregate& agg = per_method[m][cell].aggregate;
      table.add_row({suite.cells[cell].display_label(), rows[m].name,
                     math::format_double(agg.park_time.mean(), 2),
                     math::format_double(100.0 * agg.success_ratio(), 0) + "%",
                     std::to_string(agg.episodes)});
    }
  }

  std::printf("\nCanonical-trained vs curriculum-trained iCOIL over the "
              "generator suite (%d episodes/cell)\n\n",
              eval_config.episodes);
  table.print(std::cout);
  table.save_csv("table2_curriculum.csv");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icoil;
  if (argc > 1) {
    if (std::strcmp(argv[1], "--curriculum-compare") == 0)
      return run_curriculum_compare();
    std::fprintf(stderr,
                 "table2_success: unknown argument \"%s\" "
                 "(usage: table2_success [--curriculum-compare]; see "
                 "bench_suite table2 for reports/baselines)\n",
                 argv[1]);
    return 2;
  }
  return bench::run_suite_command("table2", bench::RunSuiteOptions{});
}
