// Fig. 6 of the paper: parking processes and trajectories of iCOIL vs IL on
// a normal-level scenario (dynamic obstacles present). The paper's
// qualitative result: iCOIL completes the maneuver (red = CO mode, yellow =
// IL mode), the pure IL baseline fails.

#include <cstdint>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/controller_registry.hpp"
#include "mathkit/table.hpp"
#include "sim/simulator.hpp"

namespace {

void print_trajectory(const icoil::sim::EpisodeResult& run, const char* name,
                      const std::string& csv_path) {
  using namespace icoil;
  std::printf("\n%s trajectory (%s after %.1f s, %d mode switches):\n", name,
              sim::to_string(run.outcome), run.park_time, run.mode_switches);
  math::TextTable table({"t [s]", "x [m]", "y [m]", "heading", "v [m/s]", "mode"});
  for (std::size_t i = 0; i < run.trace.size(); i += 25) {
    const sim::FrameRecord& f = run.trace[i];
    table.add_row({math::format_double(f.t, 1), math::format_double(f.state.x(), 2),
                   math::format_double(f.state.y(), 2),
                   math::format_double(f.state.heading(), 2),
                   math::format_double(f.state.speed, 2),
                   core::to_string(f.info.mode)});
  }
  if (!run.trace.empty()) {
    const sim::FrameRecord& f = run.trace.back();
    table.add_row({math::format_double(f.t, 1), math::format_double(f.state.x(), 2),
                   math::format_double(f.state.y(), 2),
                   math::format_double(f.state.heading(), 2),
                   math::format_double(f.state.speed, 2),
                   core::to_string(f.info.mode)});
  }
  table.print(std::cout);
  table.save_csv(csv_path);
}

}  // namespace

int main() {
  using namespace icoil;
  const auto policy = bench::shared_policy();

  // The paper's figure shows a normal-level episode where pure IL fails
  // while iCOIL completes the maneuver. Scan a fixed candidate list for
  // such a showcase seed (deterministic: the first match wins; falls back
  // to the first candidate when none matches).
  world::ScenarioOptions options;
  options.difficulty = world::Difficulty::kNormal;

  sim::SimConfig sim_config;
  sim_config.record_trace = true;
  sim::Simulator simulator(sim_config);

  const auto& registry = core::ControllerRegistry::instance();
  const core::ControllerBuildArgs build_args{.policy = policy.get()};

  std::uint64_t seed = 1200;
  sim::EpisodeResult icoil_run, il_run;
  for (std::uint64_t candidate = 1200; candidate < 1240; ++candidate) {
    const world::Scenario sc = world::make_scenario(options, candidate);
    const auto il_probe = registry.build("il", build_args);
    const sim::EpisodeResult il_res = simulator.run(sc, *il_probe, candidate);
    if (il_res.success()) continue;
    const auto icoil_probe = registry.build("icoil", build_args);
    const sim::EpisodeResult icoil_res =
        simulator.run(sc, *icoil_probe, candidate);
    if (!icoil_res.success()) continue;
    seed = candidate;
    il_run = il_res;
    icoil_run = std::move(icoil_res);
    break;
  }
  if (icoil_run.trace.empty()) {
    const world::Scenario sc = world::make_scenario(options, seed);
    const auto icoil = registry.build("icoil", build_args);
    icoil_run = simulator.run(sc, *icoil, seed);
    const auto il = registry.build("il", build_args);
    il_run = simulator.run(sc, *il, seed);
  }
  const world::Scenario scenario = world::make_scenario(options, seed);

  std::printf("Fig. 6 — iCOIL vs IL on a normal-level scenario (seed %llu)\n",
              static_cast<unsigned long long>(seed));
  std::printf("goal pose: (%.1f, %.1f, %.2f)\n", scenario.map.goal_pose.x(),
              scenario.map.goal_pose.y(), scenario.map.goal_pose.heading);

  print_trajectory(icoil_run, "iCOIL", "fig6_icoil_trajectory.csv");
  print_trajectory(il_run, "IL", "fig6_il_trajectory.csv");

  std::printf("\nsummary: iCOIL %s, IL %s (paper: iCOIL parks, IL fails on "
              "normal level)\n",
              sim::to_string(icoil_run.outcome), sim::to_string(il_run.outcome));
  return 0;
}
